package hublab

// End-to-end coverage of the path/eccentricity surface through the public
// facade: build → persist (v2 container) → load → serve, with witness
// paths validated against the graph and eccentricities against search.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hublab/internal/hub"
	"hublab/internal/sssp"
)

// TestIntegrationPathSurfaceEndToEnd round-trips the shared PLL labeling
// through a container and drives paths and eccentricities through the
// serving layer.
func TestIntegrationPathSurfaceEndToEnd(t *testing.T) {
	g, labels := sharedGnmPLL(t)
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, labels.Freeze(), ContainerOptions{Compress: true}); err != nil {
		t.Fatalf("WriteContainer: %v", err)
	}
	flat, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadContainer: %v", err)
	}
	if !flat.HasParents() {
		t.Fatal("container round trip lost the parent column")
	}

	idx := NewHubLabelsIndex(flat.Thaw())
	srv := NewServer(idx, ServerOptions{Shards: 2})
	defer srv.Close()

	if _, ok := any(idx).(IndexPathReporter); !ok {
		t.Fatal("hub-labels index does not report paths")
	}
	rng := rand.New(rand.NewSource(8))
	var path []NodeID
	for i := 0; i < 100; i++ {
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		path, err = srv.TryPath("it", u, v, path[:0])
		if err != nil {
			t.Fatalf("TryPath: %v", err)
		}
		want := sssp.Distance(g, u, v)
		if len(path) == 0 {
			t.Fatalf("no path for reachable pair (%d,%d)", u, v)
		}
		if path[0] != u || path[len(path)-1] != v {
			t.Fatalf("path endpoints %d..%d for (%d,%d)", path[0], path[len(path)-1], u, v)
		}
		var sum Weight
		for k := 1; k < len(path); k++ {
			w, ok := g.EdgeWeight(path[k-1], path[k])
			if !ok {
				t.Fatalf("path step %d–%d is not an edge", path[k-1], path[k])
			}
			sum += w
		}
		if sum != want {
			t.Fatalf("path weighs %d, distance is %d", sum, want)
		}
	}
	for i := 0; i < 20; i++ {
		v := NodeID(rng.Intn(g.NumNodes()))
		ecc, err := srv.TryEccentricity("it", v)
		if err != nil {
			t.Fatalf("TryEccentricity: %v", err)
		}
		want, _ := sssp.Eccentricity(g, v)
		if ecc != want {
			t.Fatalf("ecc(%d) = %d, want %d", v, ecc, want)
		}
	}
}

// TestIntegrationV1ContainerDegradesGracefully: a parentless labeling
// (version-1 container) serves distances fine while paths degrade to the
// documented sentinel all the way up through the server.
func TestIntegrationV1ContainerDegradesGracefully(t *testing.T) {
	_, labels := sharedGnmPLL(t)
	// Strip parents by rebuilding the labels through the mutable Add path.
	stripped := copyWithoutParents(labels)
	var buf bytes.Buffer
	if _, err := WriteContainer(&buf, stripped.Freeze(), ContainerOptions{}); err != nil {
		t.Fatalf("WriteContainer: %v", err)
	}
	flat, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadContainer: %v", err)
	}
	if flat.HasParents() {
		t.Fatal("stripped labeling still has parents")
	}
	srv := NewServer(NewHubLabelsIndex(flat.Thaw()), ServerOptions{Shards: 1})
	defer srv.Close()
	if _, err := srv.TryQuery("it", 0, 5); err != nil {
		t.Fatalf("TryQuery on v1 index: %v", err)
	}
	if _, err := srv.TryPath("it", 0, 5, nil); !errors.Is(err, ErrNoParents) {
		t.Fatalf("TryPath on v1 index = %v, want ErrNoParents", err)
	}
	// Eccentricity needs no parents and must still work.
	if _, err := srv.TryEccentricity("it", 0); err != nil {
		t.Fatalf("TryEccentricity on v1 index: %v", err)
	}
}

// copyWithoutParents deep-copies labels through the mutable Add path,
// which deliberately drops the parent column.
func copyWithoutParents(l *Labeling) *Labeling {
	out := hub.NewLabeling(l.NumVertices())
	for v := NodeID(0); int(v) < l.NumVertices(); v++ {
		for _, h := range l.Label(v) {
			out.Add(v, h.Node, h.Dist)
		}
	}
	out.Canonicalize()
	return out
}
