package hublab

// Shared test fixtures: the expensive objects several root-level tests
// need (a PLL labeling of a mid-size random graph, the paper's H_{2,2}
// hardness instance) are built once per `go test` process and shared,
// instead of every test paying its own construction. TestMain owns the
// process lifecycle; the fixtures themselves are lazy so `go test -run X`
// only builds what X touches.

import (
	"os"
	"sync"
	"testing"
)

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

var gnmFixture struct {
	once   sync.Once
	g      *Graph
	labels *Labeling
	err    error
}

// sharedGnmPLL returns the process-wide Gnm(400, 720) graph and its PLL
// labeling. Tests must treat both as read-only.
func sharedGnmPLL(t testing.TB) (*Graph, *Labeling) {
	t.Helper()
	gnmFixture.once.Do(func() {
		g, err := GenerateGnm(400, 720, 21)
		if err != nil {
			gnmFixture.err = err
			return
		}
		labels, err := BuildPLL(g, PLLOptions{})
		if err != nil {
			gnmFixture.err = err
			return
		}
		gnmFixture.g, gnmFixture.labels = g, labels
	})
	if gnmFixture.err != nil {
		t.Fatalf("shared Gnm/PLL fixture: %v", gnmFixture.err)
	}
	return gnmFixture.g, gnmFixture.labels
}

var layeredFixture struct {
	once sync.Once
	h    *LayeredGraph
	err  error
}

// sharedLayered22 returns the process-wide H_{2,2} hardness instance.
// Tests must treat it as read-only.
func sharedLayered22(t testing.TB) *LayeredGraph {
	t.Helper()
	layeredFixture.once.Do(func() {
		layeredFixture.h, layeredFixture.err = BuildLayered(LayeredParams{B: 2, L: 2})
	})
	if layeredFixture.err != nil {
		t.Fatalf("shared H_{2,2} fixture: %v", layeredFixture.err)
	}
	return layeredFixture.h
}
