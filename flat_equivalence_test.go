package hublab

import (
	"math/rand"
	"testing"

	"hublab/internal/cover"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hhl"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/pll"
	"hublab/internal/sparsehub"
	"hublab/internal/ubound"
)

// TestFlatSliceEquivalenceAcrossBuilders asserts, for every construction
// path, that the frozen flat CSR representation and the mutable
// slice-of-slices representation decode identical distances (and
// minimizing hubs) on random sparse graphs.
func TestFlatSliceEquivalenceAcrossBuilders(t *testing.T) {
	// Force a multi-worker pool so the builders' parallel paths run
	// concurrently even on single-CPU machines.
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	g, err := gen.Gnm(180, 320, 13)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	order := make([]graph.NodeID, g.NumNodes())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	builders := []struct {
		name  string
		build func() (*hub.Labeling, error)
	}{
		{"pll", func() (*hub.Labeling, error) { return pll.Build(g, pll.Options{}) }},
		{"greedy-cover", func() (*hub.Labeling, error) { return cover.Greedy(g) }},
		{"sparse-hubs", func() (*hub.Labeling, error) {
			res, err := sparsehub.Build(g, sparsehub.Options{Seed: 5})
			if err != nil {
				return nil, err
			}
			return res.Labeling, nil
		}},
		{"theorem41", func() (*hub.Labeling, error) {
			res, err := ubound.Build(g, ubound.Options{D: 2, Seed: 5})
			if err != nil {
				return nil, err
			}
			return res.Labeling, nil
		}},
		{"canonical-hhl", func() (*hub.Labeling, error) { return hhl.Canonical(g, order) }},
	}
	for _, bc := range builders {
		t.Run(bc.name, func(t *testing.T) {
			l, err := bc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if !l.Frozen() {
				t.Errorf("%s did not return a frozen labeling", bc.name)
			}
			f := l.Freeze()
			slices := f.Thaw() // unfrozen: queries run the slice merge
			n := g.NumNodes()
			rng := rand.New(rand.NewSource(99))
			check := func(u, v graph.NodeID) {
				df, viaF, okF := f.QueryVia(u, v)
				ds, viaS, okS := slices.QueryVia(u, v)
				if df != ds || viaF != viaS || okF != okS {
					t.Fatalf("(%d,%d): flat (%d,%d,%v) vs slices (%d,%d,%v)",
						u, v, df, viaF, okF, ds, viaS, okS)
				}
			}
			for u := graph.NodeID(0); int(u) < n; u++ {
				check(u, u)
			}
			for k := 0; k < 3000; k++ {
				check(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			}
		})
	}
}

// TestFrozenQueryMatchesGraphDistances spot-checks that frozen queries
// agree with true graph distances end to end for the PLL path, over the
// shared process-wide fixture.
func TestFrozenQueryMatchesGraphDistances(t *testing.T) {
	g, l := sharedGnmPLL(t)
	if err := l.VerifyCover(g); err != nil {
		t.Fatalf("VerifyCover: %v", err)
	}
}
