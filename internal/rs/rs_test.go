package rs

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBehrendSetProgressionFree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 10, 50, 100, 500, 1000, 5000} {
		set := BehrendSet(n)
		if len(set) == 0 {
			t.Errorf("BehrendSet(%d) empty", n)
			continue
		}
		for _, v := range set {
			if v < 0 || v >= n {
				t.Errorf("BehrendSet(%d) contains out-of-range %d", n, v)
			}
		}
		if !IsProgressionFree(set) {
			t.Errorf("BehrendSet(%d) = %v contains an AP", n, set)
		}
	}
}

func TestBehrendSetGrowsSuperlinearlyInDensity(t *testing.T) {
	// |B(n)| should grow clearly faster than √n for moderate n — Behrend
	// sets are n^{1-o(1)}. We check |B(4096)| > 3·|B(64)| as a loose shape
	// test.
	small := len(BehrendSet(64))
	large := len(BehrendSet(4096))
	if large <= 3*small {
		t.Errorf("Behrend growth too slow: |B(64)|=%d |B(4096)|=%d", small, large)
	}
}

func TestIsProgressionFree(t *testing.T) {
	cases := []struct {
		set  []int
		want bool
	}{
		{nil, true},
		{[]int{5}, true},
		{[]int{1, 2}, true},
		{[]int{1, 2, 3}, false},
		{[]int{0, 1, 3}, true},
		{[]int{0, 2, 4}, false},
		{[]int{1, 5, 9}, false},
		{[]int{0, 1, 5, 11}, true},
	}
	for _, tc := range cases {
		if got := IsProgressionFree(tc.set); got != tc.want {
			t.Errorf("IsProgressionFree(%v) = %v, want %v", tc.set, got, tc.want)
		}
	}
}

func TestTriangleGraph(t *testing.T) {
	n := 200
	b := BehrendSet(n / 3) // keep x+2a < 3n comfortably
	tg, err := NewTriangleGraph(n, b)
	if err != nil {
		t.Fatalf("NewTriangleGraph: %v", err)
	}
	if tg.NumVertices() != 6*n {
		t.Errorf("NumVertices = %d, want %d", tg.NumVertices(), 6*n)
	}
	if tg.NumEdges() != 3*n*len(b) {
		t.Errorf("NumEdges = %d, want %d", tg.NumEdges(), 3*n*len(b))
	}
	if err := tg.VerifyUniqueTriangles(); err != nil {
		t.Errorf("VerifyUniqueTriangles: %v", err)
	}
}

func TestTriangleGraphRejectsAP(t *testing.T) {
	if _, err := NewTriangleGraph(10, []int{1, 2, 3}); !errors.Is(err, ErrBadParam) {
		t.Errorf("AP set accepted: %v", err)
	}
	if _, err := NewTriangleGraph(10, []int{11}); !errors.Is(err, ErrBadParam) {
		t.Errorf("out-of-range element accepted: %v", err)
	}
	if _, err := NewTriangleGraph(0, nil); !errors.Is(err, ErrBadParam) {
		t.Errorf("n=0 accepted: %v", err)
	}
}

func TestMatchingFamilyBasics(t *testing.T) {
	mf, err := NewMatchingFamily(4, 2, 1)
	if err != nil {
		t.Fatalf("NewMatchingFamily: %v", err)
	}
	if mf.NumEdges() == 0 {
		t.Fatal("family has no edges")
	}
	if err := mf.VerifyInduced(); err != nil {
		t.Errorf("VerifyInduced: %v", err)
	}
	// Midpoint classes partition the edges.
	total := 0
	for _, idxs := range mf.ByMidpoint {
		total += len(idxs)
	}
	if total != mf.NumEdges() {
		t.Errorf("classes cover %d edges, want %d", total, mf.NumEdges())
	}
}

func TestMatchingFamilyInducedAcrossParams(t *testing.T) {
	for _, tc := range []struct{ s, l, rho int }{
		{2, 2, 1}, {4, 1, 1}, {4, 2, 2}, {4, 3, 1}, {6, 2, 2}, {8, 2, 5},
	} {
		mf, err := NewMatchingFamily(tc.s, tc.l, tc.rho)
		if err != nil {
			t.Fatalf("NewMatchingFamily(%+v): %v", tc, err)
		}
		if err := mf.VerifyInduced(); err != nil {
			t.Errorf("params %+v: %v", tc, err)
		}
	}
}

func TestMatchingFamilyErrors(t *testing.T) {
	cases := []struct{ s, l, rho int }{
		{3, 2, 1},  // odd side
		{0, 1, 1},  // bad side
		{4, 0, 1},  // bad dimension
		{4, 2, 0},  // bad shell
		{4, 30, 1}, // too large
	}
	for _, tc := range cases {
		if _, err := NewMatchingFamily(tc.s, tc.l, tc.rho); !errors.Is(err, ErrBadParam) {
			t.Errorf("params %+v accepted: %v", tc, err)
		}
	}
}

func TestBestShell(t *testing.T) {
	rho, edges, err := BestShell(4, 2, 8)
	if err != nil {
		t.Fatalf("BestShell: %v", err)
	}
	if rho < 1 || rho > 8 || edges <= 0 {
		t.Errorf("BestShell = (%d,%d)", rho, edges)
	}
	// The best shell must dominate shell 1.
	mf1, err := NewMatchingFamily(4, 2, 1)
	if err != nil {
		t.Fatalf("NewMatchingFamily: %v", err)
	}
	if edges < mf1.NumEdges() {
		t.Errorf("best shell %d has %d edges < shell 1's %d", rho, edges, mf1.NumEdges())
	}
}

// TestMatchingFamilyCanonicalOrientation: property check that edges are
// never duplicated in reverse.
func TestMatchingFamilyCanonicalOrientation(t *testing.T) {
	f := func(seed int64) bool {
		s := 2 + 2*int(uint64(seed)%3) // 2,4,6
		l := 1 + int(uint64(seed)%2)   // 1,2
		rho := 1 + int(uint64(seed)%4)
		mf, err := NewMatchingFamily(s, l, rho)
		if err != nil {
			return false
		}
		seen := map[[2]int]bool{}
		for _, e := range mf.Edges {
			if seen[e] || seen[[2]int{e[1], e[0]}] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
