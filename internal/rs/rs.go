// Package rs implements the Ruzsa–Szemerédi substrate of the paper:
// Behrend's construction of large progression-free sets (the source of the
// upper bound RS(n) ≤ 2^{O(√log n)}), the classical tripartite graph whose
// every edge lies in exactly one triangle, and the norm-shell induced
// matching family (the Alon–Moitra–Sudakov mechanism that the paper tweaks
// into its layered lower-bound graph H_{b,ℓ}).
package rs

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadParam reports invalid parameters.
var ErrBadParam = errors.New("rs: invalid parameter")

// BehrendSet returns a progression-free subset of [0, n): no three distinct
// elements x, y, z satisfy x + z = 2y. It searches Behrend's sphere
// construction over a small range of dimensions and returns the largest
// shell found (falling back to tiny explicit sets for small n).
func BehrendSet(n int) []int {
	if n <= 0 {
		return nil
	}
	var best []int
	switch {
	case n == 1:
		return []int{0}
	case n <= 3:
		return []int{0, 1}
	default:
		best = []int{0, 1, 3}
	}
	maxDim := int(math.Max(2, math.Round(math.Sqrt(math.Log2(float64(n))))))
	for d := 2; d <= maxDim+2; d++ {
		base := int(math.Floor(math.Pow(float64(n), 1.0/float64(d))))
		if base < 3 {
			continue
		}
		// Digits in [0, m) with m = ⌈base/2⌉ avoid carries when adding two
		// set elements digit-wise, so digit-vector equations lift to ℤ.
		m := (base + 1) / 2
		if m < 2 {
			continue
		}
		shells := make(map[int][]int)
		digits := make([]int, d)
		for {
			norm, value, pow := 0, 0, 1
			for k := 0; k < d; k++ {
				norm += digits[k] * digits[k]
				value += digits[k] * pow
				pow *= base
			}
			if value < n {
				shells[norm] = append(shells[norm], value)
			}
			k := 0
			for k < d {
				digits[k]++
				if digits[k] < m {
					break
				}
				digits[k] = 0
				k++
			}
			if k == d {
				break
			}
		}
		for _, shell := range shells {
			if len(shell) > len(best) {
				best = shell
			}
		}
	}
	sort.Ints(best)
	return best
}

// IsProgressionFree verifies that no three distinct elements of set form an
// arithmetic progression x + z = 2y (O(|set|²) with a member lookup).
func IsProgressionFree(set []int) bool {
	member := make(map[int]bool, len(set))
	for _, v := range set {
		member[v] = true
	}
	for i, x := range set {
		for j, z := range set {
			if i == j {
				continue
			}
			sum := x + z
			if sum%2 != 0 {
				continue
			}
			y := sum / 2
			if y != x && y != z && member[y] {
				return false
			}
		}
	}
	return true
}

// TriangleGraph is the classical Ruzsa–Szemerédi tripartite structure built
// from a progression-free set B ⊆ [0,n): parts X = [0,n), Y = [0,2n),
// Z = [0,3n); for every x ∈ X and a ∈ B a triangle {x, x+a, x+2a}.
// Progression-freeness makes these n·|B| triangles edge-disjoint and the
// only triangles of the graph — the (6,3) structure behind Definition 1.3.
type TriangleGraph struct {
	N int
	B []int
	// Triangles counts n·|B|.
	Triangles int
}

// NewTriangleGraph validates B against n and constructs the descriptor.
func NewTriangleGraph(n int, b []int) (*TriangleGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	for _, a := range b {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("%w: element %d outside [0,%d)", ErrBadParam, a, n)
		}
	}
	if !IsProgressionFree(b) {
		return nil, fmt.Errorf("%w: set is not progression-free", ErrBadParam)
	}
	return &TriangleGraph{N: n, B: append([]int(nil), b...), Triangles: n * len(b)}, nil
}

// NumVertices returns 6n.
func (t *TriangleGraph) NumVertices() int { return 6 * t.N }

// NumEdges returns 3·n·|B| (three edges per triangle, all distinct).
func (t *TriangleGraph) NumEdges() int { return 3 * t.Triangles }

// VerifyUniqueTriangles exhaustively checks that every XY edge of the graph
// lies in exactly one triangle — the executable content of the RS/(6,3)
// structure. A triangle on (x, x+a, x+a+a') needs a” = (a+a')/2 ∈ B, and
// progression-freeness forces a = a' = a”. Cost O(n·|B|²).
func (t *TriangleGraph) VerifyUniqueTriangles() error {
	inB := make(map[int]bool, len(t.B))
	for _, a := range t.B {
		inB[a] = true
	}
	for x := 0; x < t.N; x++ {
		for _, a := range t.B {
			count := 0
			for _, ap := range t.B {
				sum := a + ap
				if sum%2 == 0 && inB[sum/2] {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("rs: edge (x=%d, a=%d) lies in %d triangles, want 1", x, a, count)
			}
		}
	}
	return nil
}

// MatchingFamily is the norm-shell induced matching family: bipartite
// vertex sets L = R = [0,s)^ℓ, an edge (x, z) whenever z-x is
// coordinate-wise even with canonical sign and Σ((z_k-x_k)/2)² equals the
// shell norm ρ, and matchings indexed by the midpoint y = (x+z)/2. The
// parallelogram identity sends any cross pair to a strictly smaller shell,
// so every midpoint class is an induced matching — the mechanism that makes
// the midpoints of H_{b,ℓ} unavoidable hubs.
type MatchingFamily struct {
	S, L, Rho int
	// Edges lists the (xIndex, zIndex) pairs.
	Edges [][2]int
	// ByMidpoint groups edge indices by midpoint index.
	ByMidpoint map[int][]int
}

// NewMatchingFamily enumerates the family for side s (even), dimension ℓ
// and shell ρ ≥ 1.
func NewMatchingFamily(s, l, rho int) (*MatchingFamily, error) {
	if s < 2 || s%2 != 0 || l < 1 || rho < 1 {
		return nil, fmt.Errorf("%w: s=%d l=%d rho=%d", ErrBadParam, s, l, rho)
	}
	size := 1
	for k := 0; k < l; k++ {
		size *= s
		if size > 1<<20 {
			return nil, fmt.Errorf("%w: [0,%d)^%d too large", ErrBadParam, s, l)
		}
	}
	mf := &MatchingFamily{S: s, L: l, Rho: rho, ByMidpoint: make(map[int][]int)}
	deltas := enumerateDeltas(l, s, rho)
	y := make([]int, l)
	x := make([]int, l)
	z := make([]int, l)
	var enumY func(k int)
	enumY = func(k int) {
		if k == l {
			yIdx := indexOf(y, s)
			for _, d := range deltas {
				ok := true
				for kk := 0; kk < l; kk++ {
					x[kk] = y[kk] - d[kk]
					z[kk] = y[kk] + d[kk]
					if x[kk] < 0 || x[kk] >= s || z[kk] < 0 || z[kk] >= s {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				mf.ByMidpoint[yIdx] = append(mf.ByMidpoint[yIdx], len(mf.Edges))
				mf.Edges = append(mf.Edges, [2]int{indexOf(x, s), indexOf(z, s)})
			}
			return
		}
		for v := 0; v < s; v++ {
			y[k] = v
			enumY(k + 1)
		}
	}
	enumY(0)
	return mf, nil
}

// enumerateDeltas lists integer vectors δ of squared norm rho whose first
// nonzero coordinate is positive (one canonical representative per ±δ
// pair).
func enumerateDeltas(l, s, rho int) [][]int {
	var out [][]int
	cur := make([]int, l)
	var rec func(k, norm int)
	rec = func(k, norm int) {
		if norm > rho {
			return
		}
		if k == l {
			if norm != rho {
				return
			}
			first := 0
			for first < l && cur[first] == 0 {
				first++
			}
			if first == l || cur[first] < 0 {
				return
			}
			out = append(out, append([]int(nil), cur...))
			return
		}
		for d := -(s - 1); d <= s-1; d++ {
			cur[k] = d
			rec(k+1, norm+d*d)
		}
		cur[k] = 0
	}
	rec(0, 0)
	return out
}

func indexOf(vec []int, s int) int {
	idx := 0
	for k := len(vec) - 1; k >= 0; k-- {
		idx = idx*s + vec[k]
	}
	return idx
}

// NumEdges returns the number of edges across all matchings.
func (mf *MatchingFamily) NumEdges() int { return len(mf.Edges) }

// NumMatchings returns the number of nonempty midpoint classes.
func (mf *MatchingFamily) NumMatchings() int { return len(mf.ByMidpoint) }

// VerifyInduced checks that every midpoint class is an induced matching in
// the shell graph: classes are matchings, and no shell edge connects
// endpoints of two different edges of the same class.
func (mf *MatchingFamily) VerifyInduced() error {
	present := make(map[[2]int]bool, len(mf.Edges))
	for _, e := range mf.Edges {
		present[e] = true
	}
	for mid, idxs := range mf.ByMidpoint {
		seenL := map[int]bool{}
		seenR := map[int]bool{}
		for _, i := range idxs {
			e := mf.Edges[i]
			if seenL[e[0]] || seenR[e[1]] {
				return fmt.Errorf("rs: midpoint %d class is not a matching", mid)
			}
			seenL[e[0]] = true
			seenR[e[1]] = true
		}
		for _, i := range idxs {
			for _, j := range idxs {
				if i == j {
					continue
				}
				cross := [2]int{mf.Edges[i][0], mf.Edges[j][1]}
				if present[cross] {
					return fmt.Errorf("rs: midpoint %d class has cross edge %v", mid, cross)
				}
			}
		}
	}
	return nil
}

// BestShell returns the ρ ∈ [1, maxRho] maximizing the edge count of the
// matching family for (s, ℓ).
func BestShell(s, l, maxRho int) (rho, edges int, err error) {
	best, bestEdges := 1, -1
	for r := 1; r <= maxRho; r++ {
		mf, ferr := NewMatchingFamily(s, l, r)
		if ferr != nil {
			return 0, 0, ferr
		}
		if mf.NumEdges() > bestEdges {
			bestEdges = mf.NumEdges()
			best = r
		}
	}
	return best, bestEdges, nil
}
