// Package sssp implements single-source shortest path algorithms (BFS,
// 0-1 BFS, Dijkstra, bidirectional Dijkstra), truncated searches, shortest
// path counting and extraction, and small all-pairs helpers.
//
// All distances use graph.Weight with graph.Infinity marking unreachable
// vertices.
package sssp

import (
	"sort"

	"hublab/internal/graph"
	"hublab/internal/par"
	"hublab/internal/pqueue"
)

// Result holds the output of a single-source search.
type Result struct {
	// Dist[v] is the shortest-path distance from the source to v, or
	// graph.Infinity if unreachable.
	Dist []graph.Weight
	// Parent[v] is the predecessor of v on one shortest path from the
	// source, or -1 for the source and unreachable vertices.
	Parent []graph.NodeID
}

func newResult(n int) *Result {
	r := &Result{
		Dist:   make([]graph.Weight, n),
		Parent: make([]graph.NodeID, n),
	}
	for i := 0; i < n; i++ {
		r.Dist[i] = graph.Infinity
		r.Parent[i] = -1
	}
	return r
}

// BFS computes unit-weight shortest paths from src. Edge weights, if any,
// are ignored; use Search for weight-aware dispatch.
func BFS(g *graph.Graph, src graph.NodeID) *Result {
	r := newResult(g.NumNodes())
	r.Dist[src] = 0
	queue := make([]graph.NodeID, 0, g.NumNodes())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := r.Dist[u]
		for _, v := range g.Neighbors(u) {
			if r.Dist[v] == graph.Infinity {
				r.Dist[v] = du + 1
				r.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return r
}

// Dijkstra computes weighted shortest paths from src.
func Dijkstra(g *graph.Graph, src graph.NodeID) *Result {
	r := newResult(g.NumNodes())
	r.Dist[src] = 0
	h := pqueue.New(g.NumNodes())
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > r.Dist[u] {
			continue
		}
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[i]
			}
			if nd := du + w; nd < r.Dist[v] {
				r.Dist[v] = nd
				r.Parent[v] = u
				h.Push(v, nd)
			}
		}
	}
	return r
}

// ZeroOneBFS computes shortest paths from src on graphs whose edge weights
// are all 0 or 1, using a deque in O(n+m) time.
func ZeroOneBFS(g *graph.Graph, src graph.NodeID) *Result {
	r := newResult(g.NumNodes())
	r.Dist[src] = 0
	dq := newDeque(g.NumNodes())
	dq.pushBack(src)
	for dq.len() > 0 {
		u := dq.popFront()
		du := r.Dist[u]
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[i]
			}
			if nd := du + w; nd < r.Dist[v] {
				r.Dist[v] = nd
				r.Parent[v] = u
				if w == 0 {
					dq.pushFront(v)
				} else {
					dq.pushBack(v)
				}
			}
		}
	}
	return r
}

// deque is a growable ring buffer of vertex ids.
type deque struct {
	buf  []graph.NodeID
	head int
	size int
}

func newDeque(capacity int) *deque {
	if capacity < 4 {
		capacity = 4
	}
	return &deque{buf: make([]graph.NodeID, capacity)}
}

func (d *deque) len() int { return d.size }

func (d *deque) grow() {
	if d.size < len(d.buf) {
		return
	}
	next := make([]graph.NodeID, 2*len(d.buf))
	for i := 0; i < d.size; i++ {
		next[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = next
	d.head = 0
}

func (d *deque) pushBack(v graph.NodeID) {
	d.grow()
	d.buf[(d.head+d.size)%len(d.buf)] = v
	d.size++
}

func (d *deque) pushFront(v graph.NodeID) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.size++
}

func (d *deque) popFront() graph.NodeID {
	v := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	return v
}

// MaxEdgeWeight returns the largest edge weight in g (1 when unweighted,
// 0 for the empty graph).
func MaxEdgeWeight(g *graph.Graph) graph.Weight {
	if !g.Weighted() {
		if g.NumEdges() == 0 {
			return 0
		}
		return 1
	}
	var max graph.Weight
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.NeighborWeights(v) {
			if w > max {
				max = w
			}
		}
	}
	return max
}

// Search dispatches to the cheapest correct algorithm for g: BFS when
// unweighted, 0-1 BFS when all weights are ≤ 1, Dijkstra otherwise.
func Search(g *graph.Graph, src graph.NodeID) *Result {
	if !g.Weighted() {
		return BFS(g, src)
	}
	if MaxEdgeWeight(g) <= 1 {
		return ZeroOneBFS(g, src)
	}
	return Dijkstra(g, src)
}

// Distance returns the shortest-path distance between u and v using a
// bidirectional search (Dijkstra from both ends on weighted graphs).
func Distance(g *graph.Graph, u, v graph.NodeID) graph.Weight {
	if u == v {
		return 0
	}
	return bidirectional(g, u, v)
}

func bidirectional(g *graph.Graph, s, t graph.NodeID) graph.Weight {
	n := g.NumNodes()
	distF := make([]graph.Weight, n)
	distB := make([]graph.Weight, n)
	for i := 0; i < n; i++ {
		distF[i] = graph.Infinity
		distB[i] = graph.Infinity
	}
	distF[s], distB[t] = 0, 0
	hf, hb := pqueue.New(n), pqueue.New(n)
	hf.Push(s, 0)
	hb.Push(t, 0)
	best := graph.Infinity
	settledF := make([]bool, n)
	settledB := make([]bool, n)
	for hf.Len() > 0 || hb.Len() > 0 {
		var topF, topB graph.Weight = graph.Infinity, graph.Infinity
		if hf.Len() > 0 {
			_, topF = hf.Peek()
		}
		if hb.Len() > 0 {
			_, topB = hb.Peek()
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			expand(g, hf, distF, settledF, distB, &best)
		} else {
			expand(g, hb, distB, settledB, distF, &best)
		}
	}
	return best
}

func expand(g *graph.Graph, h *pqueue.IndexedHeap, dist []graph.Weight,
	settled []bool, other []graph.Weight, best *graph.Weight) {
	u, du := h.Pop()
	if settled[u] || du > dist[u] {
		return
	}
	settled[u] = true
	if other[u] < graph.Infinity {
		if total := du + other[u]; total < *best {
			*best = total
		}
	}
	ws := g.NeighborWeights(u)
	for i, v := range g.Neighbors(u) {
		w := graph.Weight(1)
		if ws != nil {
			w = ws[i]
		}
		if nd := du + w; nd < dist[v] {
			dist[v] = nd
			h.Push(v, nd)
			if other[v] < graph.Infinity {
				if total := nd + other[v]; total < *best {
					*best = total
				}
			}
		}
	}
}

// PathTo reconstructs one shortest path from the search source to v, ending
// at v, using the parent pointers in r. It returns nil if v is unreachable.
func (r *Result) PathTo(v graph.NodeID) []graph.NodeID {
	if r.Dist[v] == graph.Infinity {
		return nil
	}
	var rev []graph.NodeID
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Truncated computes distances from src only up to the given radius. It
// returns the visited vertices (in distance order) and their distances.
// Unit-weight graphs only.
func Truncated(g *graph.Graph, src graph.NodeID, radius graph.Weight) (nodes []graph.NodeID, dist []graph.Weight) {
	seen := make(map[graph.NodeID]graph.Weight, 16)
	seen[src] = 0
	queue := []graph.NodeID{src}
	nodes = append(nodes, src)
	dist = append(dist, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := seen[u]
		if du >= radius {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if _, ok := seen[v]; !ok {
				seen[v] = du + 1
				queue = append(queue, v)
				nodes = append(nodes, v)
				dist = append(dist, du+1)
			}
		}
	}
	return nodes, dist
}

// AllPairs computes the full distance matrix by running one search per
// vertex across the worker pool. Intended for small graphs (n up to a few
// thousand).
func AllPairs(g *graph.Graph) [][]graph.Weight {
	n := g.NumNodes()
	weighted := g.Weighted()
	zeroOne := weighted && MaxEdgeWeight(g) <= 1
	out := make([][]graph.Weight, n)
	par.For(n, func(v int) {
		var r *Result
		switch {
		case !weighted:
			r = BFS(g, graph.NodeID(v))
		case zeroOne:
			r = ZeroOneBFS(g, graph.NodeID(v))
		default:
			r = Dijkstra(g, graph.NodeID(v))
		}
		out[v] = r.Dist
	})
	return out
}

// CountShortestPaths returns, for every v, the number of distinct shortest
// src-v paths saturated at the given limit (counts never exceed limit). A
// count of exactly 1 certifies a unique shortest path.
func CountShortestPaths(g *graph.Graph, src graph.NodeID, limit int64) (*Result, []int64) {
	r := Search(g, src)
	n := g.NumNodes()
	order := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if r.Dist[v] < graph.Infinity {
			order = append(order, graph.NodeID(v))
		}
	}
	// Process vertices in increasing distance order; counts accumulate over
	// tight edges.
	sort.Slice(order, func(i, j int) bool { return r.Dist[order[i]] < r.Dist[order[j]] })
	counts := make([]int64, n)
	counts[src] = 1
	for _, u := range order {
		if counts[u] == 0 && u != src {
			continue
		}
		ws := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[i]
			}
			if r.Dist[u]+w == r.Dist[v] && r.Dist[v] != graph.Infinity {
				counts[v] += counts[u]
				if counts[v] > limit {
					counts[v] = limit
				}
			}
		}
	}
	return r, counts
}

// UniqueShortestPath reports whether the shortest path between u and v is
// unique, along with its length.
func UniqueShortestPath(g *graph.Graph, u, v graph.NodeID) (graph.Weight, bool) {
	r, counts := CountShortestPaths(g, u, 4)
	if r.Dist[v] == graph.Infinity {
		return graph.Infinity, false
	}
	return r.Dist[v], counts[v] == 1
}

// Eccentricity returns the maximum finite distance from v, and whether any
// vertex was unreachable.
func Eccentricity(g *graph.Graph, v graph.NodeID) (graph.Weight, bool) {
	r := Search(g, v)
	var ecc graph.Weight
	disconnected := false
	for _, d := range r.Dist {
		if d == graph.Infinity {
			disconnected = true
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, disconnected
}

// Diameter computes the exact diameter over the (possibly disconnected)
// graph, ignoring infinite pairs. Intended for small graphs.
func Diameter(g *graph.Graph) graph.Weight {
	var diam graph.Weight
	for v := 0; v < g.NumNodes(); v++ {
		ecc, _ := Eccentricity(g, graph.NodeID(v))
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Connected reports whether g is connected (vacuously true for n ≤ 1).
func Connected(g *graph.Graph) bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	r := BFS(g, 0)
	for _, d := range r.Dist {
		if d == graph.Infinity {
			return false
		}
	}
	return true
}
