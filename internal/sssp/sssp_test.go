package sssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/graph"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, n-1)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func gridGraph(t *testing.T, rows, cols int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// randomWeighted builds a connected weighted graph; inputs are always valid
// so the build cannot fail.
func randomWeighted(seed int64, n, m, maxW int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	// Spanning path keeps the graph connected.
	for i := 0; i < n-1; i++ {
		b.AddWeightedEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Weight(1+rng.Intn(maxW)))
	}
	for i := n - 1; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), graph.Weight(1+rng.Intn(maxW)))
		}
	}
	return b.MustBuild()
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(t, 6)
	r := BFS(g, 0)
	for v := 0; v < 6; v++ {
		if r.Dist[v] != graph.Weight(v) {
			t.Errorf("Dist[%d] = %d, want %d", v, r.Dist[v], v)
		}
	}
	if r.Parent[0] != -1 {
		t.Errorf("Parent[src] = %d, want -1", r.Parent[0])
	}
	p := r.PathTo(5)
	want := []graph.NodeID{0, 1, 2, 3, 4, 5}
	if len(p) != len(want) {
		t.Fatalf("PathTo(5) = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("PathTo(5) = %v, want %v", p, want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, 1)
	b.AddEdge(0, 1)
	b.Grow(4)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := BFS(g, 0)
	if r.Dist[2] != graph.Infinity || r.Dist[3] != graph.Infinity {
		t.Errorf("unreachable distances = %d,%d, want Infinity", r.Dist[2], r.Dist[3])
	}
	if p := r.PathTo(3); p != nil {
		t.Errorf("PathTo(3) = %v, want nil", p)
	}
	if Connected(g) {
		t.Error("Connected = true, want false")
	}
}

func TestDijkstraVsBFSOnUnitWeights(t *testing.T) {
	g := gridGraph(t, 7, 9)
	for _, src := range []graph.NodeID{0, 31, 62} {
		bfs := BFS(g, src)
		dij := Dijkstra(g, src)
		for v := range bfs.Dist {
			if bfs.Dist[v] != dij.Dist[v] {
				t.Fatalf("src %d: Dist[%d]: bfs %d, dijkstra %d", src, v, bfs.Dist[v], dij.Dist[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the direct edge is more expensive than the detour.
	b := graph.NewBuilder(3, 3)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(0, 2, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := Dijkstra(g, 0)
	if r.Dist[1] != 3 {
		t.Errorf("Dist[1] = %d, want 3 (via vertex 2)", r.Dist[1])
	}
	if r.Parent[1] != 2 {
		t.Errorf("Parent[1] = %d, want 2", r.Parent[1])
	}
}

func TestZeroOneBFSMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n, 3*n)
		for i := 0; i < n-1; i++ {
			b.AddWeightedEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Weight(rng.Intn(2)))
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), graph.Weight(rng.Intn(2)))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		src := graph.NodeID(rng.Intn(n))
		zo := ZeroOneBFS(g, src)
		dj := Dijkstra(g, src)
		for v := range zo.Dist {
			if zo.Dist[v] != dj.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSearchDispatch(t *testing.T) {
	unit := pathGraph(t, 4)
	if got := Search(unit, 0).Dist[3]; got != 3 {
		t.Errorf("Search on unweighted: Dist[3] = %d, want 3", got)
	}
	weighted := randomWeighted(7, 30, 60, 9)
	want := Dijkstra(weighted, 5)
	got := Search(weighted, 5)
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("Search weighted mismatch at %d", v)
		}
	}
}

func TestBidirectionalDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := n + rng.Intn(2*n)
		g := randomWeighted(seed, n, m, 10)
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		return Distance(g, u, v) == Dijkstra(g, u).Dist[v]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	g := pathGraph(t, 3)
	if d := Distance(g, 1, 1); d != 0 {
		t.Errorf("Distance(v,v) = %d, want 0", d)
	}
}

func TestDistanceUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, 1)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d := Distance(g, 0, 3); d != graph.Infinity {
		t.Errorf("Distance across components = %d, want Infinity", d)
	}
}

func TestTruncated(t *testing.T) {
	g := gridGraph(t, 5, 5)
	nodes, dist := Truncated(g, 12, 2) // center of the grid
	full := BFS(g, 12)
	seen := map[graph.NodeID]graph.Weight{}
	for i, v := range nodes {
		seen[v] = dist[i]
	}
	for v := 0; v < g.NumNodes(); v++ {
		d, ok := seen[graph.NodeID(v)]
		if full.Dist[v] <= 2 {
			if !ok || d != full.Dist[v] {
				t.Errorf("vertex %d: truncated (%d,%v), want (%d,true)", v, d, ok, full.Dist[v])
			}
		} else if ok {
			t.Errorf("vertex %d at distance %d should not be visited at radius 2", v, full.Dist[v])
		}
	}
}

func TestCountShortestPathsGrid(t *testing.T) {
	// On a grid from the corner, the number of shortest paths to (r,c) is
	// binomial(r+c, r); count saturation keeps values bounded.
	g := gridGraph(t, 3, 3)
	_, counts := CountShortestPaths(g, 0, 1000)
	wants := map[int]int64{
		0: 1, 1: 1, 2: 1, // top row
		3: 1, 4: 2, 5: 3,
		6: 1, 7: 3, 8: 6,
	}
	for v, want := range wants {
		if counts[v] != want {
			t.Errorf("counts[%d] = %d, want %d", v, counts[v], want)
		}
	}
}

func TestCountShortestPathsSaturation(t *testing.T) {
	g := gridGraph(t, 5, 5)
	_, counts := CountShortestPaths(g, 0, 3)
	for v, c := range counts {
		if c > 3 {
			t.Errorf("counts[%d] = %d exceeds saturation limit 3", v, c)
		}
	}
	if counts[24] != 3 {
		t.Errorf("far corner count = %d, want saturated 3", counts[24])
	}
}

func TestUniqueShortestPath(t *testing.T) {
	// Path graph: unique. Cycle of even length: two shortest paths to the
	// antipode.
	p := pathGraph(t, 5)
	if d, uniq := UniqueShortestPath(p, 0, 4); d != 4 || !uniq {
		t.Errorf("path: (%d,%v), want (4,true)", d, uniq)
	}
	b := graph.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6))
	}
	c6, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d, uniq := UniqueShortestPath(c6, 0, 3); d != 3 || uniq {
		t.Errorf("C6 antipode: (%d,%v), want (3,false)", d, uniq)
	}
	if d, uniq := UniqueShortestPath(c6, 0, 2); d != 2 || !uniq {
		t.Errorf("C6 near pair: (%d,%v), want (2,true)", d, uniq)
	}
}

func TestAllPairsSymmetry(t *testing.T) {
	g := randomWeighted(99, 40, 80, 7)
	d := AllPairs(g)
	for u := 0; u < g.NumNodes(); u++ {
		if d[u][u] != 0 {
			t.Errorf("d[%d][%d] = %d, want 0", u, u, d[u][u])
		}
		for v := 0; v < g.NumNodes(); v++ {
			if d[u][v] != d[v][u] {
				t.Errorf("asymmetry d[%d][%d]=%d d[%d][%d]=%d", u, v, d[u][v], v, u, d[v][u])
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := randomWeighted(seed, n, 2*n, 8)
		d := AllPairs(g)
		for i := 0; i < 20; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			c := rng.Intn(n)
			if d[a][b] > d[a][c]+d[c][b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(t, 7)
	ecc, disconnected := Eccentricity(g, 3)
	if ecc != 3 || disconnected {
		t.Errorf("Eccentricity(center) = (%d,%v), want (3,false)", ecc, disconnected)
	}
	if d := Diameter(g); d != 6 {
		t.Errorf("Diameter = %d, want 6", d)
	}
	grid := gridGraph(t, 4, 6)
	if d := Diameter(grid); d != 8 {
		t.Errorf("grid Diameter = %d, want 8", d)
	}
}

func TestMaxEdgeWeight(t *testing.T) {
	if w := MaxEdgeWeight(pathGraph(t, 3)); w != 1 {
		t.Errorf("unweighted MaxEdgeWeight = %d, want 1", w)
	}
	empty, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if w := MaxEdgeWeight(empty); w != 0 {
		t.Errorf("empty MaxEdgeWeight = %d, want 0", w)
	}
	g := randomWeighted(3, 10, 20, 9)
	if w := MaxEdgeWeight(g); w < 1 || w > 9 {
		t.Errorf("MaxEdgeWeight = %d, want in [1,9]", w)
	}
}
