package dlabel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

func TestHubLabelsDecode(t *testing.T) {
	g, err := gen.Gnm(60, 110, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	hl, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatalf("pll.Build: %v", err)
	}
	labels, err := HubLabels(hl)
	if err != nil {
		t.Fatalf("HubLabels: %v", err)
	}
	d := sssp.AllPairs(g)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			got, err := labels.Decode(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatalf("Decode(%d,%d): %v", u, v, err)
			}
			if got != d[u][v] {
				t.Fatalf("Decode(%d,%d) = %d, want %d", u, v, got, d[u][v])
			}
		}
	}
	if labels.AvgBits() <= 0 || labels.MaxBits() <= 0 {
		t.Errorf("sizes: avg=%v max=%d", labels.AvgBits(), labels.MaxBits())
	}
}

func TestEulerTourExact(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"path", func() (*graph.Graph, error) { return gen.Path(17) }},
		{"cycle", func() (*graph.Graph, error) { return gen.Cycle(12) }},
		{"grid", func() (*graph.Graph, error) { return gen.Grid(5, 6) }},
		{"gnm", func() (*graph.Graph, error) { return gen.Gnm(40, 80, 9) }},
		{"tree", func() (*graph.Graph, error) { return gen.RandomTree(30, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			labels, err := EulerTour(g)
			if err != nil {
				t.Fatalf("EulerTour: %v", err)
			}
			d := sssp.AllPairs(g)
			for u := 0; u < g.NumNodes(); u++ {
				for v := 0; v < g.NumNodes(); v++ {
					got, err := labels.Decode(graph.NodeID(u), graph.NodeID(v))
					if err != nil {
						t.Fatalf("Decode(%d,%d): %v", u, v, err)
					}
					if got != d[u][v] {
						t.Fatalf("Decode(%d,%d) = %d, want %d", u, v, got, d[u][v])
					}
				}
			}
		})
	}
}

// TestEulerTourBitBudget: label size must be ≈ (2n-1)·log₂3 + O(log n)
// bits — the scheme's selling point versus n·log n.
func TestEulerTourBitBudget(t *testing.T) {
	g, err := gen.Gnm(200, 400, 13)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	labels, err := EulerTour(g)
	if err != nil {
		t.Fatalf("EulerTour: %v", err)
	}
	n := float64(g.NumNodes())
	budget := (2*n-1)*math.Log2(3) + 4*math.Log2(n) + 16
	if avg := labels.AvgBits(); avg > budget {
		t.Errorf("AvgBits = %v exceeds budget %v", avg, budget)
	}
}

func TestEulerTourErrors(t *testing.T) {
	empty, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := EulerTour(empty); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v, want ErrBadInput", err)
	}
	b := graph.NewBuilder(4, 1)
	b.AddEdge(0, 1)
	b.Grow(4)
	disc, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := EulerTour(disc); !errors.Is(err, ErrBadInput) {
		t.Errorf("disconnected err = %v, want ErrBadInput", err)
	}
	wb := graph.NewBuilder(2, 1)
	wb.AddWeightedEdge(0, 1, 3)
	wg, err := wb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := EulerTour(wg); !errors.Is(err, ErrBadInput) {
		t.Errorf("weighted err = %v, want ErrBadInput", err)
	}
}

func TestCentroidTree(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%120)
		g, err := gen.RandomTree(n, seed)
		if err != nil {
			return false
		}
		l, err := Centroid(g)
		if err != nil {
			return false
		}
		return l.VerifyCover(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCentroidLabelSizeLogarithmic: every label has O(log n) hubs — the
// defining property of the centroid scheme.
func TestCentroidLabelSizeLogarithmic(t *testing.T) {
	for _, n := range []int{15, 63, 255, 1023} {
		g, err := gen.RandomTree(n, int64(n))
		if err != nil {
			t.Fatalf("RandomTree(%d): %v", n, err)
		}
		l, err := Centroid(g)
		if err != nil {
			t.Fatalf("Centroid: %v", err)
		}
		maxHubs := l.ComputeStats().Max
		bound := int(2*math.Log2(float64(n))) + 3
		if maxHubs > bound {
			t.Errorf("n=%d: max hubs %d exceeds 2·log2(n)+3 = %d", n, maxHubs, bound)
		}
	}
}

func TestCentroidPathTree(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Centroid(g)
	if err != nil {
		t.Fatalf("Centroid: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	// Path centroid decomposition is perfectly balanced: max 7 hubs
	// (log2 64 + 1).
	if maxHubs := l.ComputeStats().Max; maxHubs > 7 {
		t.Errorf("max hubs on P64 = %d, want ≤ 7", maxHubs)
	}
}

func TestCentroidErrors(t *testing.T) {
	c, err := gen.Cycle(5)
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	if _, err := Centroid(c); !errors.Is(err, ErrBadInput) {
		t.Errorf("cycle err = %v, want ErrBadInput", err)
	}
	wb := graph.NewBuilder(2, 1)
	wb.AddWeightedEdge(0, 1, 2)
	wg, err := wb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Centroid(wg); !errors.Is(err, ErrBadInput) {
		t.Errorf("weighted err = %v, want ErrBadInput", err)
	}
}

func TestCentroidSingleVertex(t *testing.T) {
	g, err := gen.Path(1)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Centroid(g)
	if err != nil {
		t.Fatalf("Centroid: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

// TestSchemeSizeComparison is a miniature of experiment E9: on a sparse
// graph, hub-gamma labels must be much smaller than the Euler-tour distance
// vectors; on trees, centroid labels must beat both.
func TestSchemeSizeComparison(t *testing.T) {
	g, err := gen.RandomRegular(256, 3, 21)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	hl, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatalf("pll.Build: %v", err)
	}
	hubBits, err := HubLabels(hl)
	if err != nil {
		t.Fatalf("HubLabels: %v", err)
	}
	eulerBits, err := EulerTour(g)
	if err != nil {
		t.Fatalf("EulerTour: %v", err)
	}
	if hubBits.AvgBits() >= eulerBits.AvgBits() {
		t.Errorf("hub labels (%.0f bits) should beat Euler tour (%.0f bits) on sparse graphs",
			hubBits.AvgBits(), eulerBits.AvgBits())
	}
	tree, err := gen.RandomTree(256, 4)
	if err != nil {
		t.Fatalf("RandomTree: %v", err)
	}
	cl, err := Centroid(tree)
	if err != nil {
		t.Fatalf("Centroid: %v", err)
	}
	centroidBits, err := HubLabels(cl)
	if err != nil {
		t.Fatalf("HubLabels: %v", err)
	}
	treeEuler, err := EulerTour(tree)
	if err != nil {
		t.Fatalf("EulerTour: %v", err)
	}
	if centroidBits.AvgBits() >= treeEuler.AvgBits() {
		t.Errorf("centroid labels (%.0f bits) should beat Euler tour (%.0f bits) on trees",
			centroidBits.AvgBits(), treeEuler.AvgBits())
	}
}

func randomConnected(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 2*n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.MustBuild()
}

// TestEulerTourProperty: decode matches BFS on random connected graphs.
func TestEulerTourProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomConnected(seed, n)
		labels, err := EulerTour(g)
		if err != nil {
			return false
		}
		u := graph.NodeID(rng.Intn(n))
		dist := sssp.BFS(g, u).Dist
		for v := graph.NodeID(0); int(v) < n; v++ {
			got, err := labels.Decode(u, v)
			if err != nil || got != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
