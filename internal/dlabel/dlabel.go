// Package dlabel implements bit-measured distance labeling schemes — the
// general object whose size the paper lower-bounds. Three schemes are
// provided:
//
//   - HubLabels: any hub labeling compressed with Elias-gamma gap coding
//     (the route every known sparse-graph construction takes);
//   - EulerTour: the folklore O(n)-bits-per-label scheme for connected
//     unweighted graphs — each label stores the full distance vector along
//     an Euler tour of a spanning tree, where consecutive entries differ by
//     at most 1 and cost log₂3 bits each;
//   - Centroid: the Θ(log² n)-bit tree scheme via centroid decomposition
//     (each vertex stores its O(log n) centroid ancestors as hubs).
package dlabel

import (
	"errors"
	"fmt"

	"hublab/internal/bitio"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

var (
	// ErrBadInput reports an unsupported input graph.
	ErrBadInput = errors.New("dlabel: unsupported input graph")
	// ErrCorrupt reports an undecodable label.
	ErrCorrupt = errors.New("dlabel: corrupt label")
)

// Labels is a set of per-vertex binary distance labels with a decoder.
type Labels struct {
	// Name identifies the scheme.
	Name string
	// Data[v] is the label bit stream of v; Bits[v] its exact bit length.
	Data [][]byte
	Bits []int
	// decode computes the distance from two labels alone.
	decode func(u, v []byte, ub, vb int) (graph.Weight, error)
}

// Decode answers a distance query from the two labels alone.
func (l *Labels) Decode(u, v graph.NodeID) (graph.Weight, error) {
	return l.decode(l.Data[u], l.Data[v], l.Bits[u], l.Bits[v])
}

// AvgBits returns the average label size in bits.
func (l *Labels) AvgBits() float64 {
	if len(l.Bits) == 0 {
		return 0
	}
	total := 0
	for _, b := range l.Bits {
		total += b
	}
	return float64(total) / float64(len(l.Bits))
}

// MaxBits returns the maximum label size in bits.
func (l *Labels) MaxBits() int {
	max := 0
	for _, b := range l.Bits {
		if b > max {
			max = b
		}
	}
	return max
}

// HubLabels converts a hub labeling into binary distance labels.
func HubLabels(hl *hub.Labeling) (*Labels, error) {
	n := hl.NumVertices()
	out := &Labels{
		Name: "hub-gamma",
		Data: make([][]byte, n),
		Bits: make([]int, n),
		decode: func(u, v []byte, ub, vb int) (graph.Weight, error) {
			lu, err := hub.DecodeLabel(u, ub)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			lv, err := hub.DecodeLabel(v, vb)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			d, ok := hub.MergeQuery(lu, lv)
			if !ok {
				return graph.Infinity, nil
			}
			return d, nil
		},
	}
	if err := par.FirstError(n, func(i int) error {
		data, bits, err := hl.EncodeLabel(graph.NodeID(i))
		if err != nil {
			return err
		}
		out.Data[i] = data
		out.Bits[i] = bits
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// EulerTour builds the log₂3-per-tour-step scheme for a connected
// unweighted graph. Label layout: fixed-width tour position of v, then
// fixed-width d(v, tour[0]), then (tourLen-1) trits Δ_i =
// d(v,tour[i+1])-d(v,tour[i]) ∈ {-1,0,+1}, packed 5 per byte. Any two
// labels answer a query: read d(u, ·) at v's tour position.
func EulerTour(g *graph.Graph) (*Labels, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadInput)
	}
	if g.Weighted() {
		return nil, fmt.Errorf("%w: weighted graph", ErrBadInput)
	}
	if !sssp.Connected(g) {
		return nil, fmt.Errorf("%w: disconnected graph", ErrBadInput)
	}
	tour := eulerTour(g)
	tourLen := len(tour)
	// First tour position of every vertex.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range tour {
		if pos[v] == -1 {
			pos[v] = i
		}
	}
	posBits := bitsFor(tourLen)
	distBits := bitsFor(n) // distances < n in a connected unweighted graph
	out := &Labels{
		Name: "euler-log3",
		Data: make([][]byte, n),
		Bits: make([]int, n),
	}
	par.For(n, func(i int) {
		v := graph.NodeID(i)
		dist := sssp.BFS(g, v).Dist
		var w bitio.Writer
		w.WriteBits(uint64(pos[v]), posBits)
		w.WriteBits(uint64(dist[tour[0]]), distBits)
		// Pack trits base-3, 5 per byte (3^5 = 243 ≤ 255).
		trits := make([]byte, 0, tourLen-1)
		for i := 0; i+1 < tourLen; i++ {
			delta := dist[tour[i+1]] - dist[tour[i]]
			trits = append(trits, byte(delta+1)) // 0,1,2
		}
		for i := 0; i < len(trits); i += 5 {
			var packed uint64
			count := 0
			for j := i; j < i+5 && j < len(trits); j++ {
				packed = packed*3 + uint64(trits[j])
				count++
			}
			// Each group of k trits uses ⌈k·log₂3⌉ = 8 bits for k=5 (243
			// fits in 8 bits); shorter tail groups use 2 bits per trit.
			if count == 5 {
				w.WriteBits(packed, 8)
			} else {
				w.WriteBits(packed, 2*count)
			}
		}
		out.Data[v] = w.Bytes()
		out.Bits[v] = w.Len()
	})
	decodeVector := func(data []byte, bits int) (int, []graph.Weight, error) {
		r := bitio.NewReaderBits(data, bits)
		p, err := r.ReadBits(posBits)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		d0, err := r.ReadBits(distBits)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		dists := make([]graph.Weight, tourLen)
		dists[0] = graph.Weight(d0)
		i := 1
		for i < tourLen {
			remaining := tourLen - i
			group := 5
			if remaining < 5 {
				group = remaining
			}
			var packed uint64
			if group == 5 {
				packed, err = r.ReadBits(8)
			} else {
				packed, err = r.ReadBits(2 * group)
			}
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			// Unpack most-significant trit first.
			powers := [5]uint64{1, 3, 9, 27, 81}
			for j := 0; j < group; j++ {
				trit := packed / powers[group-1-j] % 3
				dists[i] = dists[i-1] + graph.Weight(trit) - 1
				i++
			}
		}
		return int(p), dists, nil
	}
	out.decode = func(u, v []byte, ub, vb int) (graph.Weight, error) {
		_, distU, err := decodeVector(u, ub)
		if err != nil {
			return 0, err
		}
		posV, _, err := decodeVector(v, vb)
		if err != nil {
			return 0, err
		}
		return distU[posV], nil
	}
	return out, nil
}

// eulerTour returns a closed walk visiting every vertex of a BFS spanning
// tree, consecutive entries adjacent in g.
func eulerTour(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	r := sssp.BFS(g, 0)
	children := make([][]graph.NodeID, n)
	for v := graph.NodeID(1); int(v) < n; v++ {
		p := r.Parent[v]
		children[p] = append(children[p], v)
	}
	tour := make([]graph.NodeID, 0, 2*n-1)
	// Iterative DFS recording entry and post-child returns.
	type frame struct {
		v    graph.NodeID
		next int
	}
	stack := []frame{{v: 0}}
	tour = append(tour, 0)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(children[top.v]) {
			c := children[top.v][top.next]
			top.next++
			stack = append(stack, frame{v: c})
			tour = append(tour, c)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].v)
		}
	}
	return tour
}

func bitsFor(m int) int {
	bits := 1
	for 1<<uint(bits) < m {
		bits++
	}
	return bits
}

// Centroid builds the centroid-decomposition hub labeling of a tree (the
// classical Θ(log² n)-bit scheme of Peleg). The result can be consumed as a
// hub labeling or converted with HubLabels for bit accounting.
func Centroid(g *graph.Graph) (*hub.Labeling, error) {
	n := g.NumNodes()
	if n == 0 {
		return hub.NewLabeling(0), nil
	}
	if g.Weighted() {
		return nil, fmt.Errorf("%w: weighted trees not supported", ErrBadInput)
	}
	if g.NumEdges() != n-1 || !sssp.Connected(g) {
		return nil, fmt.Errorf("%w: not a tree (n=%d, m=%d)", ErrBadInput, n, g.NumEdges())
	}
	l := hub.NewLabeling(n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	size := make([]int, n)
	var component []graph.NodeID

	var collect func(v, parent graph.NodeID)
	collect = func(v, parent graph.NodeID) {
		component = append(component, v)
		size[v] = 1
		for _, u := range g.Neighbors(v) {
			if u != parent && alive[u] {
				collect(u, v)
				size[v] += size[u]
			}
		}
	}
	var decompose func(root graph.NodeID)
	decompose = func(root graph.NodeID) {
		component = component[:0]
		collect(root, -1)
		total := len(component)
		// Find the centroid: a vertex whose removal leaves components of
		// size ≤ total/2.
		centroid := root
		parent := graph.NodeID(-1)
		for {
			next := graph.NodeID(-1)
			for _, u := range g.Neighbors(centroid) {
				if u == parent || !alive[u] {
					continue
				}
				su := size[u]
				if su > size[centroid] {
					// u is toward the collect root; its "subtree" size is
					// total - size[centroid].
					su = total - size[centroid]
				}
				if su > total/2 {
					next = u
					break
				}
			}
			if next == -1 {
				break
			}
			parent = centroid
			centroid = next
			// Recompute orientation: sizes remain valid relative to the
			// original collect root; the su adjustment above handles it.
		}
		// Add the centroid as hub of every component vertex with exact
		// distances (BFS restricted to alive vertices).
		distFromCentroid(g, centroid, alive, l)
		alive[centroid] = false
		for _, u := range g.Neighbors(centroid) {
			if alive[u] {
				decompose(u)
			}
		}
	}
	decompose(0)
	l.Canonicalize()
	// In a tree, the path from any vertex to its centroid ancestor stays
	// inside the component the centroid was chosen for, so the stored
	// restricted-BFS distances are the true tree distances and the parent
	// column attaches cleanly.
	if err := l.ComputeParents(g); err != nil {
		return nil, err
	}
	l.Freeze()
	return l, nil
}

func distFromCentroid(g *graph.Graph, c graph.NodeID, alive []bool, l *hub.Labeling) {
	type item struct {
		v graph.NodeID
		d graph.Weight
	}
	queue := []item{{c, 0}}
	seen := map[graph.NodeID]bool{c: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		l.Add(it.v, c, it.d)
		for _, u := range g.Neighbors(it.v) {
			if alive[u] && !seen[u] {
				seen[u] = true
				queue = append(queue, item{u, it.d + 1})
			}
		}
	}
}
