package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	// Force a multi-worker pool even on single-CPU machines so the
	// concurrent path is exercised (and race-checked) everywhere.
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		seen := make([]int64, n)
		For(n, func(i int) { atomic.AddInt64(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForSerialFallback(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	order := make([]int, 0, 10)
	For(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial For out of order: %v", order)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if w := Workers(100); w != 3 {
		t.Errorf("Workers(100) with limit 3 = %d", w)
	}
	if w := Workers(2); w != 2 {
		t.Errorf("Workers(2) with limit 3 = %d, want 2", w)
	}
}

func TestFirstErrorReturnsSmallestIndex(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	// Fail at several indices; the reported error must always be the
	// smallest, matching a sequential early-return loop.
	fail := map[int]bool{3: true, 50: true, 7: true, 999: true}
	for trial := 0; trial < 20; trial++ {
		err := FirstError(1000, func(i int) error {
			if fail[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("trial %d: err = %v, want fail@3", trial, err)
		}
	}
}

func TestFirstErrorNil(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	if err := FirstError(100, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if err := FirstError(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 err = %v", err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(100, func(i int) {
		if i == 42 {
			panic("boom")
		}
	})
	t.Fatal("For returned instead of panicking")
}

func TestFirstErrorPanicPropagates(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	FirstError(100, func(i int) error {
		if i == 42 {
			panic("boom")
		}
		return nil
	})
	t.Fatal("FirstError returned instead of panicking")
}

func TestFirstErrorSerial(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	calls := 0
	err := FirstError(10, func(i int) error {
		calls++
		if i == 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || calls != 5 {
		t.Fatalf("err=%v calls=%d, want early return after 5", err, calls)
	}
}
