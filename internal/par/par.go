// Package par provides a small bounded worker pool for the embarrassingly
// parallel per-vertex loops of the hub-labeling pipeline (cover
// verification, per-hub shortest-path searches, canonical label
// construction). Parallelism is bounded by runtime.NumCPU() and every
// helper is deterministic as long as callers write results only into the
// slot of the index they were handed.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers overrides the worker count when positive; 0 means
// runtime.NumCPU(). It exists so benchmarks can pin a serial baseline and
// tests can exercise both code paths.
var maxWorkers int64

// SetWorkers bounds the pool to k workers (k ≤ 0 restores the
// runtime.NumCPU() default) and returns the previous setting. Not intended
// for concurrent use with running loops.
func SetWorkers(k int) int {
	prev := int(atomic.LoadInt64(&maxWorkers))
	if k < 0 {
		k = 0
	}
	atomic.StoreInt64(&maxWorkers, int64(k))
	return prev
}

// Workers returns the number of workers a loop over n items will use.
func Workers(n int) int {
	w := int(atomic.LoadInt64(&maxWorkers))
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n), distributing indices over the
// worker pool and blocking until all calls return. Output is deterministic
// when fn(i) writes only to position i of shared slices. A panic inside
// fn is recovered on its worker, the loop drains, and the first panic
// value is re-raised on the calling goroutine.
func For(n int, fn func(i int)) { ForN(Workers(n), n, fn) }

// ForN is For with an explicit worker count instead of the global pool
// bound. It exists for callers that manage their own per-call parallelism
// (the batched PLL builder runs concurrent builds with different widths,
// which a global SetWorkers cannot express). w is clamped to [1, n].
func ForN(w, n int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// FirstError runs fn(i) for every i in [0, n) in parallel and returns the
// error with the smallest index, or nil if every call succeeds — exactly
// what a sequential loop with an early return would report, regardless of
// scheduling. Indices above the smallest failing one seen so far are
// skipped best-effort, so the full range is not necessarily evaluated
// after a failure. Panics in fn propagate like For's.
func FirstError(n int, fn func(i int) error) error {
	w := Workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int64
		mu       sync.Mutex
		bestIdx  = int64(n)
		bestErr  error
		panicVal any
		wg       sync.WaitGroup
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				skip := int64(i) > bestIdx
				mu.Unlock()
				if skip {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if int64(i) < bestIdx {
						bestIdx, bestErr = int64(i), err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return bestErr
}
