package hub

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"hublab/internal/graph"
)

// compactBytes serializes f as a version-4 compact container.
func compactBytes(t testing.TB, f *FlatLabeling) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteContainer(&buf, ContainerOptions{Compact: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refreshHeaderCRCV4 recomputes the version-4 header checksum (the
// extended header carries an extra escape-count word v3 does not, so the
// checksum sits 8 bytes later).
func refreshHeaderCRCV4(data []byte) []byte {
	k := int(binary.LittleEndian.Uint64(data[32:40]))
	he := 32 + 8 + 8 + 16*k + 4
	binary.LittleEndian.PutUint32(data[he-4:he], crc32.Checksum(data[:he-4], castagnoli))
	return data
}

// v4SectionOff reads section i's file offset from the table.
func v4SectionOff(data []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(data[48+16*i:])
}

// escFixture is a labeling whose compact form exercises every v4
// feature a forger can aim at: hub-rank escapes, the wide distance
// column, and a populated shared escape array.
func escFixture(t testing.TB) *FlatLabeling {
	t.Helper()
	f := randomFlat(t, 700, 12, 1<<27, 2)
	c := CompactFromFlat(f)
	if !c.wide || len(c.esc) == 0 {
		t.Fatal("escape fixture lost its escapes")
	}
	return f
}

// TestOpenStoreMmapHostileV4 drives the v4 quick open through the
// hostile-writer corpus: every structural forgery — even with all
// checksums recomputed by the attacker — must be refused by the O(n)
// validation, at the bytes door, the decode door and the file door
// alike.
func TestOpenStoreMmapHostileV4(t *testing.T) {
	base := compactBytes(t, escFixture(t))
	for _, tc := range []struct {
		name   string
		tamper func([]byte) []byte
	}{
		{"truncated-mid-column", func(d []byte) []byte { return d[:len(d)/2] }},
		{"truncated-trailer", func(d []byte) []byte { return d[:len(d)-2] }},
		{"trailing-garbage (mmap-only)", func(d []byte) []byte { return refreshCRC(append(d, 0, 0, 0, 0)) }},
		{"wrong-section-count", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[32:40], 9)
			return refreshCRC(d)
		}},
		{"forged-escape-count", func(d []byte) []byte {
			escs := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint64(d[40:48], escs+1)
			return refreshCRC(refreshHeaderCRCV4(d))
		}},
		{"huge-escape-count", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[40:48], 1<<40)
			return refreshCRC(refreshHeaderCRCV4(d))
		}},
		{"misaligned-section-offset", func(d []byte) []byte {
			off := v4SectionOff(d, 0)
			binary.LittleEndian.PutUint64(d[48:56], off+4)
			return refreshCRC(refreshHeaderCRCV4(d))
		}},
		{"wide-flag-flip", func(d []byte) []byte {
			// Narrowing the declared stride halves the expected distance
			// column; the CRC-consistent table no longer matches the layout.
			d[10] ^= byte(containerFlagWideDist)
			return refreshCRC(refreshHeaderCRCV4(d))
		}},
		{"stale-header-crc", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[48+16:], 1<<20) // remap offset, checksum left stale
			return refreshCRC(d)
		}},
		{"remap-duplicate", func(d []byte) []byte {
			// Two ranks mapping to one hub: not a permutation, so inverse
			// lookups would alias. buildInv must refuse it at the quick open.
			off := v4SectionOff(d, 1)
			copy(d[off:off+4], d[off+4:off+8])
			return refreshCRC(d)
		}},
		{"remap-out-of-range", func(d []byte) []byte {
			off := v4SectionOff(d, 1)
			binary.LittleEndian.PutUint32(d[off:], 1<<20)
			return refreshCRC(d)
		}},
		{"escape-csr-overrun", func(d []byte) []byte {
			// escOff[n] beyond the escape array: cursors would start out of
			// range. The quick cover check must catch it.
			n := binary.LittleEndian.Uint64(d[16:24])
			off := v4SectionOff(d, 2) + 4*n
			v := binary.LittleEndian.Uint32(d[off:])
			binary.LittleEndian.PutUint32(d[off:], v+4)
			return refreshCRC(d)
		}},
		{"broken-entry-csr", func(d []byte) []byte {
			off := v4SectionOff(d, 0)
			binary.LittleEndian.PutUint32(d[off+4:], 1<<30)
			return refreshCRC(d)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.tamper(append([]byte(nil), base...))
			if s, err := openStoreBytes(data); err == nil {
				t.Fatalf("hostile v4 container accepted (%s)", s.Representation())
			}
			if !strings.Contains(tc.name, "mmap-only") {
				if _, err := ReadContainerStore(bytes.NewReader(data)); err == nil {
					t.Fatal("ReadContainerStore accepted the hostile container")
				}
			}
			if _, err := OpenStoreMmap(writeTemp(t, data)); err == nil {
				t.Fatal("OpenStoreMmap accepted the hostile container")
			}
		})
	}
}

// TestCompactQuickValidationTrustModel pins the v4 trust delta: interior
// forgeries the O(n) open knowingly does not audit — out-of-range
// escape slots, garbage delta bytes, forged parent hops — are accepted
// as views, every query path stays panic-free and in-bounds on them,
// and both the full audit and the decoding reader (which always audits)
// reject the same bytes.
func TestCompactQuickValidationTrustModel(t *testing.T) {
	probe := func(t *testing.T, s LabelStore) {
		t.Helper()
		n := graph.NodeID(s.NumVertices())
		probes := [][2]graph.NodeID{{0, 0}, {0, n - 1}, {n - 1, 0}, {n / 2, n / 2}, {1, n / 2}}
		out := make([]graph.Weight, len(probes))
		for _, p := range probes {
			s.Query(p[0], p[1])
			s.QueryVia(p[0], p[1])
			s.Label(p[0], nil, nil)
			if s.HasParents() {
				if _, err := s.AppendPath(nil, p[0], p[1]); err != nil {
					_ = err // forged hops must error, not panic
				}
			}
		}
		s.QueryBatch(probes, out)
		e := NewEccIndex(s)
		e.Eccentricity(0)
		e.EccentricityUpperBound(n - 1)
	}
	open := func(t *testing.T, data []byte) *CompactLabeling {
		t.Helper()
		if _, err := ReadContainerStore(bytes.NewReader(data)); err == nil {
			t.Fatal("decoding reader accepted the forged interior")
		}
		s, err := openStoreBytes(data)
		if err != nil {
			t.Fatalf("quick open rejected a structurally valid forgery: %v", err)
		}
		c := s.(*CompactLabeling)
		if err := c.Validate(); err == nil {
			t.Fatal("full audit accepted the forged interior")
		}
		return c
	}

	t.Run("escape-slot-out-of-range", func(t *testing.T) {
		data := compactBytes(t, escFixture(t))
		off := v4SectionOff(data, 5)
		// -1 is invalid whichever kind of slot this is: as a rank it is
		// out of range, as a raw distance it is negative.
		binary.LittleEndian.PutUint32(data[off:], 0xFFFFFFFF)
		refreshCRC(data)
		c := open(t, data)
		defer c.Release()
		probe(t, c)
	})

	t.Run("delta-garbage-stale-trailer", func(t *testing.T) {
		// Accidental bit rot with the trailer left stale: the decoder's
		// whole-file checksum rejects it; the quick open knowingly accepts
		// (a flipped delta can even still audit clean) and must stay safe.
		data := compactBytes(t, escFixture(t))
		off := v4SectionOff(data, 4)
		data[off+17] ^= 0xFF
		if _, err := ReadContainerStore(bytes.NewReader(data)); err == nil {
			t.Fatal("decoder accepted a stale trailer checksum")
		}
		s, err := openStoreBytes(data)
		if err != nil {
			t.Fatalf("quick open rejected a stale-trailer delta flip: %v", err)
		}
		defer s.Release()
		probe(t, s)
	})

	t.Run("forged-parent-hop", func(t *testing.T) {
		_, star := parentFixture(t)
		data := compactBytes(t, star)
		off := v4SectionOff(data, 6)
		binary.LittleEndian.PutUint32(data[off:], 1<<20)
		refreshCRC(data)
		c := open(t, data)
		defer c.Release()
		if !c.HasParents() {
			t.Fatal("parent column lost")
		}
		probe(t, c)
	})
}

// TestCompactHostileRankNeverLeaks pins the Label/Expand escape-rank
// bound: a hostile quick-validated view whose escape slots hold ranks
// ≥ n must surface those entries as the invalid hub id -1 — loudly,
// like every other hostile-interior path — never as the raw rank, which
// callers would mistake for a real vertex id. (Regression: Label used
// to fall through to the unmapped rank when the range check failed.)
func TestCompactHostileRankNeverLeaks(t *testing.T) {
	data := compactBytes(t, escFixture(t))
	escs := binary.LittleEndian.Uint64(data[40:48])
	if escs == 0 {
		t.Fatal("fixture has no escape slots to forge")
	}
	// Aim every shared escape slot far outside [0, n): each hub-rank
	// escape now decodes to a rank no remap row covers.
	off := v4SectionOff(data, 5)
	for i := uint64(0); i < escs; i++ {
		binary.LittleEndian.PutUint32(data[off+4*i:], 1<<20)
	}
	refreshCRC(data)
	s, err := openStoreBytes(data)
	if err != nil {
		t.Fatalf("quick open rejected a forged-escape view: %v", err)
	}
	c := s.(*CompactLabeling)
	defer c.Release()
	if err := c.Validate(); err == nil {
		t.Fatal("full audit accepted forged escape slots")
	}
	n := graph.NodeID(c.NumVertices())
	checkIDs := func(where string, ids []graph.NodeID) {
		t.Helper()
		for _, h := range ids {
			if h != -1 && (h < 0 || h >= n) {
				t.Fatalf("%s leaked raw rank %d as a hub id (n=%d)", where, h, n)
			}
		}
	}
	leaked := false
	var idBuf []graph.NodeID
	var dBuf []graph.Weight
	for v := graph.NodeID(0); v < n; v++ {
		ids, _ := c.Label(v, idBuf, dBuf)
		checkIDs("Label", ids)
		for _, h := range ids {
			if h == -1 {
				leaked = true
			}
		}
		idBuf, dBuf = ids[:0], dBuf[:0]
	}
	if !leaked {
		t.Fatal("no forged escape reached a hub byte — the fixture no longer covers the bug")
	}
	x := c.Expand()
	for v := graph.NodeID(0); v < n; v++ {
		checkIDs("Expand", x.LabelIDs(v))
	}
}

// hostileV4Seeds is the version-4 face of the fuzz corpus: intact
// compact containers plus every forgery class of the hostile tests, so
// the fuzzers start from inputs that already reach the deep v4 paths.
func hostileV4Seeds(tb testing.TB) [][]byte {
	_, star := parentFixture(tb)
	base := compactBytes(tb, escFixture(tb))
	tamper := func(fn func([]byte) []byte) []byte {
		return fn(append([]byte(nil), base...))
	}
	return [][]byte{
		base,
		compactBytes(tb, star),
		compactBytes(tb, NewLabeling(0).Freeze()),
		compactBytes(tb, randomFlat(tb, 40, 6, 30, 4)),
		tamper(func(d []byte) []byte { return d[:len(d)/2] }),
		tamper(func(d []byte) []byte {
			off := v4SectionOff(d, 1)
			copy(d[off:off+4], d[off+4:off+8]) // remap duplicate
			return refreshCRC(d)
		}),
		tamper(func(d []byte) []byte {
			off := v4SectionOff(d, 5)
			binary.LittleEndian.PutUint32(d[off:], 1<<20) // escape slot out of range
			return refreshCRC(d)
		}),
		tamper(func(d []byte) []byte {
			n := binary.LittleEndian.Uint64(d[16:24])
			off := v4SectionOff(d, 2) + 4*n
			binary.LittleEndian.PutUint32(d[off:], 1<<30) // escape CSR overrun
			return refreshCRC(d)
		}),
		tamper(func(d []byte) []byte {
			d[10] ^= byte(containerFlagWideDist)
			return refreshCRC(refreshHeaderCRCV4(d))
		}),
		tamper(func(d []byte) []byte {
			escs := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint64(d[40:48], escs+1)
			return refreshCRC(refreshHeaderCRCV4(d))
		}),
	}
}
