package hub

import (
	"fmt"
	"testing"

	"hublab/internal/graph"
)

// skewPairFixture builds a two-run fixture: vertex 0 carries shortLen
// hubs strided evenly across vertex 1's longLen consecutive hubs, so
// every short entry matches somewhere inside the long run and both
// kernels do their full work.
func skewPairFixture(tb testing.TB, shortLen, longLen int) *FlatLabeling {
	tb.Helper()
	n := longLen + 2
	l := NewLabeling(n)
	l.Add(0, 0, 0)
	l.Add(1, 1, 0)
	for k := 0; k < longLen; k++ {
		l.Add(1, graph.NodeID(2+k), graph.Weight(1+k%64))
	}
	stride := longLen / shortLen
	for k := 0; k < shortLen; k++ {
		l.Add(0, graph.NodeID(2+k*stride), graph.Weight(1+k%64))
	}
	l.Canonicalize()
	return l.Freeze()
}

var benchSkewSink graph.Weight

// BenchmarkE25SkewCrossover measures the linear and galloping kernels
// head-to-head on the same run pair across length ratios — the
// measurement gallopRatio in skew.go is picked from. The dispatch in
// Query is bypassed so both kernels are timed at every ratio, including
// below the production threshold.
func BenchmarkE25SkewCrossover(b *testing.B) {
	const shortLen = 16
	for _, ratio := range []int{2, 4, 8, 16, 32, 64} {
		f := skewPairFixture(b, shortLen, shortLen*ratio)
		i0, i1 := int(f.offsets[0]), int(f.offsets[1])-1
		j0, j1 := int(f.offsets[1]), int(f.offsets[2])-1
		b.Run(fmt.Sprintf("linear/r%d", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSkewSink = f.mergeLinear(i0, j0, graph.Infinity)
			}
		})
		b.Run(fmt.Sprintf("gallop/r%d", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSkewSink = f.mergeGallop(i0, i1, j0, j1, graph.Infinity)
			}
		})
	}
}

// BenchmarkE25SkewQuery times the dispatching Query on a realistically
// skewed labeling — the end-to-end effect of the threshold.
func BenchmarkE25SkewQuery(b *testing.B) {
	f := skewedFlat(b, 4000, 5)
	n := f.NumVertices()
	var pairs [][2]graph.NodeID
	for v := 0; v < n; v += 31 {
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(v), graph.NodeID((v*7 + 13) % n)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		benchSkewSink, _ = f.Query(p[0], p[1])
	}
}
