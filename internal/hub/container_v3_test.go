package hub

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hublab/internal/graph"
	"hublab/internal/mmapio"
)

// alignedBytes serializes f as a version-3 container.
func alignedBytes(t testing.TB, f *FlatLabeling) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteContainer(&buf, ContainerOptions{Aligned: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refreshCRC recomputes the trailer so tampered bytes stay
// CRC-consistent — the hostile-writer model: an attacker controls the
// whole file, checksum included.
func refreshCRC(data []byte) []byte {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(data[:len(data)-4], castagnoli))
	return data
}

// refreshHeaderCRC recomputes the version-3 header checksum after a
// header or section-table tamper, so the deeper layout validation (not
// just the checksum) is what rejects the forgery.
func refreshHeaderCRC(data []byte) []byte {
	k := int(binary.LittleEndian.Uint64(data[32:40]))
	he := 32 + 8 + 16*k + 4
	binary.LittleEndian.PutUint32(data[he-4:he], crc32.Checksum(data[:he-4], castagnoli))
	return data
}

// openBytes runs the mmap open path over an in-memory buffer (the heap
// Mapping exercises byte-for-byte the same parsing and casting code as a
// file mapping).
func openBytes(data []byte) (*FlatLabeling, error) {
	s, err := openStoreBytes(data)
	if err != nil {
		return nil, err
	}
	if c, ok := s.(*CompactLabeling); ok {
		f := c.Expand()
		c.Release()
		return f, nil
	}
	return s.(*FlatLabeling), nil
}

// openStoreBytes is openBytes without the expansion: the store comes
// back in the container's native representation.
func openStoreBytes(data []byte) (LabelStore, error) {
	m := mmapio.FromBytes(data)
	s, err := openStore(m)
	if err != nil || s.Owned() {
		m.Close()
	}
	return s, err
}

// writeTemp drops data into a fresh temp file and returns its path.
func writeTemp(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.hli")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAlignedRoundTrip pins the v3 format: both the streaming decoder
// and the mmap opener recover the exact labeling, with and without the
// parent column, and every section sits 64-byte aligned in the file.
func TestAlignedRoundTrip(t *testing.T) {
	_, withParents := parentFixture(t)
	for _, tc := range []struct {
		name string
		f    *FlatLabeling
	}{
		{"plain", containerFixture(t)},
		{"parents", withParents},
		{"empty", NewLabeling(0).Freeze()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := alignedBytes(t, tc.f)
			if v := binary.LittleEndian.Uint16(data[8:10]); v != 3 {
				t.Fatalf("aligned container has version %d, want 3", v)
			}
			k := int(binary.LittleEndian.Uint64(data[32:40]))
			wantK := 3
			if tc.f.HasParents() {
				wantK = 4
			}
			if k != wantK {
				t.Fatalf("%d sections, want %d", k, wantK)
			}
			for i := 0; i < k; i++ {
				off := binary.LittleEndian.Uint64(data[40+16*i:])
				if off%containerAlign != 0 {
					t.Errorf("section %d at offset %d, not %d-byte aligned", i, off, containerAlign)
				}
			}

			dec, err := ReadContainer(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadContainer(v3): %v", err)
			}
			if !flatEqual(dec, tc.f) || dec.HasParents() != tc.f.HasParents() {
				t.Fatal("decoded v3 container differs from the original")
			}

			view, err := OpenContainerMmap(writeTemp(t, data))
			if err != nil {
				t.Fatalf("OpenContainerMmap: %v", err)
			}
			defer view.Release()
			if tc.f.NumVertices() > 0 && view.Owned() {
				t.Fatal("v3 open produced an owned labeling, want a view")
			}
			if !flatEqual(view, tc.f) || view.HasParents() != tc.f.HasParents() {
				t.Fatal("mmap view differs from the original")
			}
			if err := view.Validate(); err != nil {
				t.Fatalf("view fails the full audit: %v", err)
			}
		})
	}
}

// TestAlignedRejectsCompress pins that the two payload styles cannot be
// combined: gamma bits cannot be pointed at zero-copy.
func TestAlignedRejectsCompress(t *testing.T) {
	var buf bytes.Buffer
	_, err := containerFixture(t).WriteContainer(&buf, ContainerOptions{Aligned: true, Compress: true})
	if err == nil {
		t.Fatal("Aligned+Compress accepted")
	}
}

// TestOpenContainerMmapFallback: version-1/2 and gamma containers have
// no alignment to point at, so the mmap door falls back to a decoded,
// owned load with identical content.
func TestOpenContainerMmapFallback(t *testing.T) {
	_, withParents := parentFixture(t)
	for _, tc := range []struct {
		name string
		f    *FlatLabeling
		opts ContainerOptions
	}{
		{"v1-raw", containerFixture(t), ContainerOptions{}},
		{"v1-gamma", containerFixture(t), ContainerOptions{Compress: true}},
		{"v2-parents", withParents, ContainerOptions{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := tc.f.WriteContainer(&buf, tc.opts); err != nil {
				t.Fatal(err)
			}
			got, err := OpenContainerMmap(writeTemp(t, buf.Bytes()))
			if err != nil {
				t.Fatalf("OpenContainerMmap fallback: %v", err)
			}
			if !got.Owned() {
				t.Fatal("old-format open returned a view")
			}
			if !flatEqual(got, tc.f) || got.HasParents() != tc.f.HasParents() {
				t.Fatal("fallback load differs from the original")
			}
		})
	}
}

// TestOpenContainerMmapHostile drives the mmap opener through the
// hostile-writer corpus: truncations, misaligned and oversized section
// tables (with the CRC recomputed, so the checksum attests the forgery),
// forged padding, and header corruption must all error — never panic,
// never yield a view that reads outside the map.
func TestOpenContainerMmapHostile(t *testing.T) {
	_, fixture := parentFixture(t)
	base := alignedBytes(t, fixture)
	for _, tc := range []struct {
		name   string
		tamper func([]byte) []byte
	}{
		{"empty", func(d []byte) []byte { return nil }},
		{"magic-only", func(d []byte) []byte { return d[:8] }},
		{"truncated-header", func(d []byte) []byte { return d[:20] }},
		{"truncated-mid-column", func(d []byte) []byte { return d[:len(d)/2] }},
		{"truncated-trailer", func(d []byte) []byte { return d[:len(d)-2] }},
		// Streaming readers legitimately stop at the trailer and leave
		// trailing bytes unconsumed, so this case is mmap-only: the strict
		// whole-file layout check must refuse slack an attacker could park
		// data in.
		{"trailing-garbage (mmap-only)", func(d []byte) []byte { return refreshCRC(append(d, 0, 0, 0, 0)) }},
		{"bad-magic", func(d []byte) []byte { d[0] ^= 0xFF; return refreshCRC(d) }},
		{"future-version", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[8:10], ContainerVersion+1)
			return refreshCRC(d)
		}},
		{"v4-stamp-on-v3-body", func(d []byte) []byte {
			// A v3 layout relabeled as the compact format must be refused
			// by the v4 extended-header validation, not misparsed.
			binary.LittleEndian.PutUint16(d[8:10], 4)
			return refreshCRC(d)
		}},
		{"gamma-flag-in-v3", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[10:12], containerFlagGamma|containerFlagParents)
			return refreshCRC(d)
		}},
		{"nonzero-reserved", func(d []byte) []byte { d[13] = 1; return refreshCRC(d) }},
		{"huge-slots", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[24:32], 1<<40)
			return refreshCRC(d)
		}},
		{"n-exceeds-slots", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:24], 1<<20)
			return refreshCRC(d)
		}},
		{"wrong-section-count", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[32:40], 7)
			return refreshCRC(d)
		}},
		{"misaligned-section-offset", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint64(d[40:48], off+4)
			return refreshCRC(refreshHeaderCRC(d))
		}},
		{"crc-valid-oversized-length", func(d []byte) []byte {
			l := binary.LittleEndian.Uint64(d[48:56])
			binary.LittleEndian.PutUint64(d[48:56], l+64)
			return refreshCRC(refreshHeaderCRC(d))
		}},
		{"crc-valid-huge-length", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[48:56], 1<<40)
			return refreshCRC(refreshHeaderCRC(d))
		}},
		{"section-overlap", func(d []byte) []byte {
			// Point section 1 back at section 0's aligned offset.
			off0 := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint64(d[56:64], off0)
			return refreshCRC(refreshHeaderCRC(d))
		}},
		{"forged-padding", func(d []byte) []byte {
			// The byte right after the header checksum is padding up to
			// the first 64-aligned section.
			k := int(binary.LittleEndian.Uint64(d[32:40]))
			d[44+16*k] = 0xAB
			return refreshCRC(d)
		}},
		{"stale-header-crc", func(d []byte) []byte {
			// A table tamper without recomputing the header checksum: the
			// O(1) authentication must catch it before any column is
			// trusted.
			binary.LittleEndian.PutUint64(d[48:56], 1<<20)
			return refreshCRC(d)
		}},
		{"broken-run-structure", func(d []byte) []byte {
			// Forge the offsets column (first section): a wildly large
			// offsets[1] must be caught by the quick run validation even
			// though the CRC is consistent.
			off := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint32(d[off+4:], 1<<30)
			return refreshCRC(d)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.tamper(append([]byte(nil), base...))
			if f, err := openBytes(data); err == nil {
				t.Fatalf("hostile container accepted (owned=%v)", f.Owned())
			}
			// The streaming decoder must reject the same bytes (except the
			// documented mmap-only strictness cases).
			if !strings.Contains(tc.name, "mmap-only") {
				if _, err := ReadContainer(bytes.NewReader(data)); err == nil {
					t.Fatal("ReadContainer accepted the hostile container")
				}
			}
			// And the file-based door agrees with the bytes-based one.
			if _, err := OpenContainerMmap(writeTemp(t, data)); err == nil {
				t.Fatal("OpenContainerMmap accepted the hostile container")
			}
		})
	}
}

// TestMmapQuickValidationTrustModel pins the documented trade: a
// CRC-consistent v3 file with forged interior entries (a hub id far out
// of range, with runs intact) is accepted by the quick open — but every
// query path stays panic-free on it, the full Validate audit rejects it,
// and the decoding reader (which always runs the audit) rejects it too.
func TestMmapQuickValidationTrustModel(t *testing.T) {
	_, fixture := parentFixture(t)
	data := alignedBytes(t, fixture)
	// Sections: 0=offsets, 1=hubIDs, 2=dists, 3=parents. Forge the first
	// interior hub id and the first interior parent hop.
	idOff := binary.LittleEndian.Uint64(data[40+16:])
	binary.LittleEndian.PutUint32(data[idOff:], 1<<20) // hub id 1048576 on a 6-vertex graph
	parOff := binary.LittleEndian.Uint64(data[40+48:])
	binary.LittleEndian.PutUint32(data[parOff:], uint32(1<<20))
	refreshCRC(data)

	if _, err := ReadContainer(bytes.NewReader(data)); err == nil {
		t.Fatal("decoding reader accepted forged interior entries")
	}
	f, err := openBytes(data)
	if err != nil {
		t.Fatalf("quick open rejected a run-valid forgery: %v", err)
	}
	defer f.Release()
	if err := f.Validate(); err == nil {
		t.Fatal("full audit accepted forged interior entries")
	}
	// Wrong answers are allowed; panics and out-of-bounds reads are not.
	n := graph.NodeID(f.NumVertices())
	for u := graph.NodeID(0); u < n; u++ {
		for v := graph.NodeID(0); v < n; v++ {
			f.Query(u, v)
			f.QueryVia(u, v)
			if _, err := f.Path(u, v); err == nil && u != v {
				// A successful unpack on intact entries is fine; the forged
				// ones must error, not panic — both outcomes pass.
				continue
			}
		}
	}
	pairs := [][2]graph.NodeID{{0, 1}, {2, 3}, {4, 5}, {1, 4}}
	out := make([]graph.Weight, len(pairs))
	f.QueryBatch(pairs, out)
	e := NewEccIndex(f)
	for v := graph.NodeID(0); v < n; v++ {
		e.Eccentricity(v)
		e.EccentricityUpperBound(v)
	}

	// The second face of the trade: a column bit flip with a now-stale
	// trailer is the accidental corruption the quick open knowingly does
	// not audit — the decoding reader rejects it, the quick open accepts
	// it and must still never panic. Flip well inside the hubIDs section
	// (negative ids included: the overflow-safe merge advance is what
	// keeps the cursors in bounds on them).
	stale := alignedBytes(t, fixture)
	staleIDOff := binary.LittleEndian.Uint64(stale[40+16:])
	stale[staleIDOff+3] ^= 0x80 // sign bit of the first interior hub id
	if _, err := ReadContainer(bytes.NewReader(stale)); err == nil {
		t.Fatal("decoder accepted a stale trailer checksum")
	}
	sf, err := openBytes(stale)
	if err != nil {
		t.Fatalf("quick open rejected a stale-trailer column flip: %v", err)
	}
	defer sf.Release()
	for u := graph.NodeID(0); u < n; u++ {
		for v := graph.NodeID(0); v < n; v++ {
			sf.Query(u, v)
		}
	}
}

// TestViewOwnership pins the ownership API: a view is not Owned, its
// CopyOwned detaches fully (surviving Release), Release is idempotent,
// and an owned labeling's Release is a no-op.
func TestViewOwnership(t *testing.T) {
	fixture := containerFixture(t)
	if !fixture.Owned() {
		t.Fatal("built labeling is not owned")
	}
	if err := fixture.Release(); err != nil {
		t.Fatalf("owned Release: %v", err)
	}

	view, err := OpenContainerMmap(writeTemp(t, alignedBytes(t, fixture)))
	if err != nil {
		t.Fatal(err)
	}
	if view.Owned() {
		t.Fatal("v3 open is owned, want view")
	}
	clone := view.CopyOwned()
	if !clone.Owned() {
		t.Fatal("CopyOwned returned a view")
	}
	if err := view.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := view.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
	// The detached copy must answer from its own storage.
	if !flatEqual(clone, fixture) {
		t.Fatal("CopyOwned clone differs after the view released")
	}
	// Query(0,2) meets at hub 3: 2 + 1 = 3 (beating hub 0's 0 + 4).
	if d, ok := clone.Query(0, 2); !ok || d != 3 {
		t.Fatalf("clone query = (%d,%v), want (3,true)", d, ok)
	}
}

// TestViewThawAndComputeParentsNeverWriteMapping is the regression test
// for the copy-on-write contract: Thaw of a view deep-copies, mutating
// the thawed labeling (including ComputeParents and re-freezing) leaves
// the mapped file byte-identical, and the in-place
// FlatLabeling.ComputeParents refuses the view outright with
// ErrViewImmutable.
func TestViewThawAndComputeParentsNeverWriteMapping(t *testing.T) {
	g, fixture := parentFixture(t)
	// Serve a parentless aligned container, so ComputeParents has work.
	bare := fixture.CopyOwned()
	bare.parents = nil
	data := alignedBytes(t, bare)
	path := writeTemp(t, data)
	before := append([]byte(nil), data...)

	view, err := OpenContainerMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	if view.HasParents() {
		t.Fatal("bare view has parents")
	}

	// In-place retrofit on the view must be refused, not attempted.
	if err := view.ComputeParents(g); !errors.Is(err, ErrViewImmutable) {
		t.Fatalf("view ComputeParents = %v, want ErrViewImmutable", err)
	}

	// The two sanctioned routes: Thaw (deep copy, mutable) and CopyOwned
	// (flat copy-on-write). Both must yield working paths without a single
	// byte of the mapping changing.
	thawed := view.Thaw()
	if err := thawed.ComputeParents(g); err != nil {
		t.Fatal(err)
	}
	if p, err := thawed.Freeze().Path(1, 2); err != nil || len(p) != 3 {
		t.Fatalf("thawed path = %v, %v", p, err)
	}
	thawed.Add(0, 3, 1) // arbitrary further mutation of the thawed form

	clone := view.CopyOwned()
	if err := clone.ComputeParents(g); err != nil {
		t.Fatal(err)
	}
	if p, err := clone.Path(1, 2); err != nil || len(p) != 3 {
		t.Fatalf("clone path = %v, %v", p, err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutating thawed/copied labelings wrote through the mapped container")
	}
	// The view itself still answers and still has no parents.
	if view.HasParents() {
		t.Fatal("view grew a parent column")
	}
	if d, ok := view.Query(1, 2); !ok || d != 2 {
		t.Fatalf("view query after mutations = (%d,%v), want (2,true)", d, ok)
	}
}

// TestFlatComputeParentsOwned pins the owned in-place retrofit: a
// parentless flat labeling gains a working parent column without a Thaw
// round-trip, and a distance mismatch is rejected.
func TestFlatComputeParentsOwned(t *testing.T) {
	g, fixture := parentFixture(t)
	bare := fixture.CopyOwned()
	bare.parents = nil
	if err := bare.ComputeParents(g); err != nil {
		t.Fatal(err)
	}
	if !bare.HasParents() {
		t.Fatal("no parent column attached")
	}
	for u := graph.NodeID(0); u < 6; u++ {
		for v := graph.NodeID(0); v < 6; v++ {
			p, err := bare.Path(u, v)
			if err != nil {
				t.Fatalf("Path(%d,%d): %v", u, v, err)
			}
			want, _ := fixture.Query(u, v)
			if got := graph.Weight(len(p) - 1); got != want {
				t.Fatalf("Path(%d,%d) has %d hops, distance is %d", u, v, got, want)
			}
		}
	}

	wrong := fixture.CopyOwned()
	wrong.parents = nil
	wrong.dists[0] += 3 // no longer the true graph distance
	if err := wrong.ComputeParents(g); err == nil {
		t.Fatal("ComputeParents accepted wrong stored distances")
	}
	if wrong.HasParents() {
		t.Fatal("failed ComputeParents left a parent column behind")
	}
}

// TestReadFromViewPanics pins the documented mutation guard: loading a
// container into a view-backed struct would orphan the mapping, so it
// panics rather than leak.
func TestReadFromViewPanics(t *testing.T) {
	view, err := OpenContainerMmap(writeTemp(t, alignedBytes(t, containerFixture(t))))
	if err != nil {
		t.Fatal(err)
	}
	defer view.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("ReadFrom into a view did not panic")
		}
	}()
	view.ReadFrom(bytes.NewReader(nil))
}
