package hub

import (
	"fmt"
	"io"
	"slices"

	"hublab/internal/graph"
	"hublab/internal/mmapio"
)

// CompactLabeling is the compressed queryable representation of a hub
// labeling — the second LabelStore implementation, and what the
// version-4 container stores.
//
// Three ideas compose:
//
//   - Frequency-ranked hub-id remapping. Hub ids are renamed so the hubs
//     carried by the most labels get the smallest ids (rank 0 = hottest).
//     remap[rank] is the original id, inv[orig] the rank. Label entries
//     are stored sorted by rank, which concentrates almost every run in
//     a tiny id range and makes consecutive-rank deltas small.
//   - Narrow delta columns with escape slots. Per entry, one byte stores
//     the rank delta to the previous entry minus one (0xFF escapes to a
//     raw int32 in the shared esc array), and one byte (or two, when the
//     wide flag is set) stores the zig-zag delta of the distance to the
//     previous entry's distance (0xFF / 0xFFFF escapes to the raw
//     distance). Escapes land in the esc array interleaved in decode
//     order, CSR'd per vertex by escOff, so decoding is one forward
//     scan with no random access.
//   - Canonical encoding. An escape is used exactly when the value does
//     not fit the narrow code; Validate rejects any non-canonical byte,
//     so a given labeling has exactly one compact encoding — the
//     byte-identity guarantees between the freeze-path and streaming
//     writers rest on this.
//
// At two bytes per entry (narrow distances) against the expanded form's
// eight, the merge working set shrinks ~4×. The merge kernel decodes
// both runs in lockstep — same two-pointer scan as the flat kernel, with
// the loads narrowed; on hostile (quick-validated mmap) interiors every
// escape-slot read is bounds-checked and rank/distance accumulators may
// wrap, producing wrong answers but never an out-of-bounds access.
//
// The parent column, when present, is stored raw (one int32 per entry,
// original-id space, entry order): parents are near-incompressible
// next-hop ids, and keeping them columnar means a distance-only workload
// never faults their pages in.
//
// A CompactLabeling is immutable and safe for concurrent queries. Like
// FlatLabeling it is either owned or an mmap view (see Owned, Release);
// inv is always heap-owned — it is rebuilt (and remap verified to be a
// permutation) at every open, which is what keeps remap lookups
// in-bounds even on forged containers.
type CompactLabeling struct {
	n       int
	offsets []int32 // len n+1: entry CSR (no sentinels; empty runs allowed)
	remap   []graph.NodeID
	inv     []int32
	escOff  []int32 // len n+1: CSR into esc
	// hubDelta[k] codes entry k's rank; distDelta codes its distance
	// (stride 1, or 2 little-endian when wide).
	hubDelta  []byte
	distDelta []byte
	esc       []int32
	parents   []graph.NodeID // len entries or nil
	wide      bool
	ref       *mmapio.Mapping
}

// Compact byte-code constants: a one-byte code stores values in
// [0, maxDelta8]; escByte (and escWord for two-byte codes, up to
// maxZig16) marks an escape to the raw int32 in the esc array.
const (
	escByte   = 0xFF
	escWord   = 0xFFFF
	maxDelta8 = 254
	maxZig16  = 65534
)

// zig32 maps a signed delta to its zig-zag code (0, -1, 1, -2, … →
// 0, 1, 2, 3, …) so small negative deltas stay in the narrow byte range.
func zig32(d int32) uint32 { return uint32(d)<<1 ^ uint32(d>>31) }

// unzig32 inverts zig32.
func unzig32(z uint32) graph.Weight { return graph.Weight(int32(z>>1) ^ -int32(z&1)) }

// NumVertices returns the number of vertices the labeling covers.
func (c *CompactLabeling) NumVertices() int { return c.n }

// NumHubs returns the total label entries, in O(1).
func (c *CompactLabeling) NumHubs() int { return len(c.hubDelta) }

// LabelLen returns |S(v)|.
func (c *CompactLabeling) LabelLen(v graph.NodeID) int {
	return int(c.offsets[v+1] - c.offsets[v])
}

// Wide reports whether the distance column uses two-byte codes.
func (c *CompactLabeling) Wide() bool { return c.wide }

// Owned reports whether the labeling's arrays are heap-owned; false for
// mmap views (see FlatLabeling.Owned for the lifetime contract).
func (c *CompactLabeling) Owned() bool { return c.ref == nil }

// Release ends a view's lifetime and unmaps its container (no-op when
// owned or already released). See FlatLabeling.Release.
func (c *CompactLabeling) Release() error {
	if c.ref == nil {
		return nil
	}
	return c.ref.Close()
}

// Representation implements LabelStore.
func (c *CompactLabeling) Representation() string { return RepCompact }

// HasParents reports whether the parent column is present.
func (c *CompactLabeling) HasParents() bool { return c.parents != nil }

// SpaceBytes returns the exact resident storage: the three CSR arrays,
// the remap table and its heap-built inverse, the narrow delta columns,
// the escape slots and the optional parent column.
func (c *CompactLabeling) SpaceBytes() int64 {
	return 4*(int64(len(c.offsets))+int64(len(c.remap))+int64(len(c.inv))+
		int64(len(c.escOff))+int64(len(c.esc))+int64(len(c.parents))) +
		int64(len(c.hubDelta)) + int64(len(c.distDelta))
}

// QueryBytes returns the bytes a distance merge can touch — everything
// except the parent column. This is the resident working set of a
// distance-only serving workload on a mapped container (parent pages are
// only ever faulted in by path queries); E24 reports it next to the
// expanded form's equivalent.
func (c *CompactLabeling) QueryBytes() int64 {
	return c.SpaceBytes() - 4*int64(len(c.parents))
}

// ComputeStats returns size statistics (entries only; no sentinels
// exist in this representation).
func (c *CompactLabeling) ComputeStats() Stats {
	s := Stats{Vertices: c.n}
	for v := 0; v < c.n; v++ {
		sz := int(c.offsets[v+1] - c.offsets[v])
		s.Total += sz
		if sz > s.Max {
			s.Max = sz
		}
	}
	if s.Vertices > 0 {
		s.Avg = float64(s.Total) / float64(s.Vertices)
	}
	return s
}

// escSlot reads escape slot e, returning the raw value and the advanced
// cursor. The read is bounds-checked rather than trusted: on a
// quick-validated mmap view a hostile escOff interior can aim e past the
// escape section, and the merge must degrade to a wrong value (zero),
// never an out-of-bounds read. Outlined from the step decoders so they
// stay within the inlining budget.
func escSlot(esc []int32, e int32) (int32, int32) {
	if int(e) < len(esc) {
		return esc[e], e + 1
	}
	return 0, e
}

// stepHub decodes the hub byte of entry k, advancing the rank
// accumulator r and the escape cursor e. k is trusted (the caller
// ranges it over a validated offsets run). Split from the distance
// half so each piece fits the compiler's inlining budget — the merge
// kernels run one hub/dist pair per entry and must not pay a function
// call for it.
func stepHub(hd []byte, esc []int32, k int, e, r int32) (int32, int32) {
	if b := hd[k]; b != escByte {
		return e, r + int32(b) + 1
	}
	r, e = escSlot(esc, e)
	return e, r
}

// stepDistNarrow decodes the one-byte distance code of entry k,
// advancing the distance accumulator d and the escape cursor e.
// Inlinable, like stepHub.
func stepDistNarrow(dd []byte, esc []int32, k int, e int32, d graph.Weight) (int32, graph.Weight) {
	if b := dd[k]; b != escByte {
		return e, d + unzig32(uint32(b))
	}
	raw, e := escSlot(esc, e)
	return e, graph.Weight(raw)
}

// stepDistWide is stepDistNarrow for the two-byte distance layout.
func stepDistWide(dd []byte, esc []int32, k int, e int32, d graph.Weight) (int32, graph.Weight) {
	if z := uint32(dd[2*k]) | uint32(dd[2*k+1])<<8; z != escWord {
		return e, d + unzig32(z)
	}
	raw, e := escSlot(esc, e)
	return e, graph.Weight(raw)
}

// stepNarrow decodes entry k of the narrow (one-byte distance) layout —
// the hub half then the distance half. The cold decode paths (Label,
// path unpacking, expansion, audits) call it for clarity; the hot merge
// kernels call the two halves directly so both inline.
func stepNarrow(hd, dd []byte, esc []int32, k, e, r int32, d graph.Weight) (int32, int32, graph.Weight) {
	e, r = stepHub(hd, esc, int(k), e, r)
	e, d = stepDistNarrow(dd, esc, int(k), e, d)
	return e, r, d
}

// stepWide is stepNarrow for the two-byte distance layout.
func stepWide(hd, dd []byte, esc []int32, k, e, r int32, d graph.Weight) (int32, int32, graph.Weight) {
	e, r = stepHub(hd, esc, int(k), e, r)
	e, d = stepDistWide(dd, esc, int(k), e, d)
	return e, r, d
}

// Query decodes the distance between u and v by merging the two
// rank-sorted runs in one lockstep decode pass. Zero allocations;
// returns Infinity and false when the labels share no hub.
//
// Unlike the flat kernel there are no sentinels: termination rides the
// entry counters (each loop iteration advances at least one cursor, and
// a cursor at its run end stops the scan), so hostile delta bytes can
// wrap the rank accumulators without affecting safety.
//
// The kernel works on per-run subslices with int cursors: every load is
// dominated by a cursor-vs-length test, so the compiler drops the
// per-entry bounds checks. The subslicing itself cannot panic — offsets
// are validated monotone and within the columns at every open, including
// quick-validated hostile views.
func (c *CompactLabeling) Query(u, v graph.NodeID) (graph.Weight, bool) {
	if c.wide {
		return c.queryWide(u, v)
	}
	i0, i1 := c.offsets[u], c.offsets[u+1]
	j0, j1 := c.offsets[v], c.offsets[v+1]
	if i0 == i1 || j0 == j1 {
		return graph.Infinity, false
	}
	hdA, ddA := c.hubDelta[i0:i1], c.distDelta[i0:i1]
	hdB, ddB := c.hubDelta[j0:j1], c.distDelta[j0:j1]
	esc := c.esc
	eA, eB := c.escOff[u], c.escOff[v]
	ra, da := int32(-1), graph.Weight(0)
	rb, db := int32(-1), graph.Weight(0)
	ka, kb := 0, 0
	best := graph.Infinity
	eA, ra = stepHub(hdA, esc, ka, eA, ra)
	eA, da = stepDistNarrow(ddA, esc, ka, eA, da)
	ka++
	eB, rb = stepHub(hdB, esc, kb, eB, rb)
	eB, db = stepDistNarrow(ddB, esc, kb, eB, db)
	kb++
	for {
		if ra == rb {
			if d := da + db; d < best {
				best = d
			}
			if ka >= len(hdA) || kb >= len(hdB) {
				break
			}
			eA, ra = stepHub(hdA, esc, ka, eA, ra)
			eA, da = stepDistNarrow(ddA, esc, ka, eA, da)
			ka++
			eB, rb = stepHub(hdB, esc, kb, eB, rb)
			eB, db = stepDistNarrow(ddB, esc, kb, eB, db)
			kb++
		} else if ra < rb {
			if ka >= len(hdA) {
				break
			}
			eA, ra = stepHub(hdA, esc, ka, eA, ra)
			eA, da = stepDistNarrow(ddA, esc, ka, eA, da)
			ka++
		} else {
			if kb >= len(hdB) {
				break
			}
			eB, rb = stepHub(hdB, esc, kb, eB, rb)
			eB, db = stepDistNarrow(ddB, esc, kb, eB, db)
			kb++
		}
	}
	return best, best < graph.Infinity
}

func (c *CompactLabeling) queryWide(u, v graph.NodeID) (graph.Weight, bool) {
	i0, i1 := c.offsets[u], c.offsets[u+1]
	j0, j1 := c.offsets[v], c.offsets[v+1]
	if i0 == i1 || j0 == j1 {
		return graph.Infinity, false
	}
	hdA, ddA := c.hubDelta[i0:i1], c.distDelta[2*i0:2*i1]
	hdB, ddB := c.hubDelta[j0:j1], c.distDelta[2*j0:2*j1]
	esc := c.esc
	eA, eB := c.escOff[u], c.escOff[v]
	ra, da := int32(-1), graph.Weight(0)
	rb, db := int32(-1), graph.Weight(0)
	ka, kb := 0, 0
	best := graph.Infinity
	eA, ra = stepHub(hdA, esc, ka, eA, ra)
	eA, da = stepDistWide(ddA, esc, ka, eA, da)
	ka++
	eB, rb = stepHub(hdB, esc, kb, eB, rb)
	eB, db = stepDistWide(ddB, esc, kb, eB, db)
	kb++
	for {
		if ra == rb {
			if d := da + db; d < best {
				best = d
			}
			if ka >= len(hdA) || kb >= len(hdB) {
				break
			}
			eA, ra = stepHub(hdA, esc, ka, eA, ra)
			eA, da = stepDistWide(ddA, esc, ka, eA, da)
			ka++
			eB, rb = stepHub(hdB, esc, kb, eB, rb)
			eB, db = stepDistWide(ddB, esc, kb, eB, db)
			kb++
		} else if ra < rb {
			if ka >= len(hdA) {
				break
			}
			eA, ra = stepHub(hdA, esc, ka, eA, ra)
			eA, da = stepDistWide(ddA, esc, ka, eA, da)
			ka++
		} else {
			if kb >= len(hdB) {
				break
			}
			eB, rb = stepHub(hdB, esc, kb, eB, rb)
			eB, db = stepDistWide(ddB, esc, kb, eB, db)
			kb++
		}
	}
	return best, best < graph.Infinity
}

// QueryVia is Query but also returns the minimizing hub as an original
// vertex id. The runs are scanned in rank order, not id order, so ties
// on the distance are broken explicitly toward the smallest original
// id — exactly the hub the expanded kernel's first-strict-improvement
// scan settles on. This is what keeps unpacked witness paths identical
// between the two representations.
func (c *CompactLabeling) QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool) {
	step := stepNarrow
	if c.wide {
		step = stepWide
	}
	hd, dd, esc := c.hubDelta, c.distDelta, c.esc
	i, iEnd := c.offsets[u], c.offsets[u+1]
	j, jEnd := c.offsets[v], c.offsets[v+1]
	if i == iEnd || j == jEnd {
		return graph.Infinity, -1, false
	}
	eA, eB := c.escOff[u], c.escOff[v]
	ra, da := int32(-1), graph.Weight(0)
	rb, db := int32(-1), graph.Weight(0)
	best := graph.Infinity
	via := graph.NodeID(-1)
	eA, ra, da = step(hd, dd, esc, i, eA, ra, da)
	i++
	eB, rb, db = step(hd, dd, esc, j, eB, rb, db)
	j++
	for {
		if ra == rb {
			// Hostile ranks outside [0, n) (possible only on a
			// quick-validated view) cannot name a hub; they still update
			// best so Query and QueryVia agree on the distance.
			if d := da + db; d < best || (d == best && via >= 0) {
				if orig := graph.NodeID(-1); ra >= 0 && int(ra) < c.n {
					orig = c.remap[ra]
					if d < best || orig < via {
						via = orig
					}
				}
				if d < best {
					best = d
				}
			}
			if i >= iEnd || j >= jEnd {
				break
			}
			eA, ra, da = step(hd, dd, esc, i, eA, ra, da)
			i++
			eB, rb, db = step(hd, dd, esc, j, eB, rb, db)
			j++
		} else if ra < rb {
			if i >= iEnd {
				break
			}
			eA, ra, da = step(hd, dd, esc, i, eA, ra, da)
			i++
		} else {
			if j >= jEnd {
				break
			}
			eB, rb, db = step(hd, dd, esc, j, eB, rb, db)
			j++
		}
	}
	return best, via, via >= 0
}

// QueryBatch answers pairs[k] into out[k] by keeping two decode
// streams in flight per pair and two merges in flight per batch (see
// compact_batch.go): each run is decoded into pooled scratch by a
// tight sequential loop, and the resulting L1-hot runs are merged two
// pairs at a time in lockstep so their load→advance chains overlap.
// Skewed pairs (per skewed()) peel off to the galloping kernel
// instead of joining the lockstep, which would burn lockstep
// iterations on the long run. Measured on gnm10k (E25) this brings
// the batched compact premium over the expanded batch to ~1.33–1.40×
// — down from 1.46× for the serial decode-then-merge (the E24 scalar
// premium) and ~1.9× for an interleave of the byte-decoding scalar
// merge, whose dependent decode chains never overlap.
func (c *CompactLabeling) QueryBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	if len(pairs) == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	if batchKernel == 1 {
		c.queryBatchScalarMerge(sc, pairs, out)
	} else {
		c.queryBatchLockstep(sc, pairs, out)
	}
	batchScratchPool.Put(sc)
}

// Label implements LabelStore: the run of v is decoded into the
// provided buffers (grown as needed) with hub ids mapped back to
// original vertex ids. The order is rank order — ascending hub
// frequency rank, not ascending id.
func (c *CompactLabeling) Label(v graph.NodeID, idBuf []graph.NodeID, dBuf []graph.Weight) ([]graph.NodeID, []graph.Weight) {
	ids, ds := idBuf[:0], dBuf[:0]
	step := stepNarrow
	if c.wide {
		step = stepWide
	}
	i, iEnd := c.offsets[v], c.offsets[v+1]
	e := c.escOff[v]
	r, d := int32(-1), graph.Weight(0)
	for ; i < iEnd; i++ {
		e, r, d = step(c.hubDelta, c.distDelta, c.esc, i, e, r, d)
		// A rank outside [0, n) can only come from a hostile
		// quick-validated interior; it names no hub, so it must surface as
		// the invalid id -1 — the same loud failure every other hostile
		// path produces — never as the raw rank, which a caller could
		// mistake for a real (and wrong) vertex id.
		orig := graph.NodeID(-1)
		if r >= 0 && int(r) < c.n {
			orig = c.remap[r]
		}
		ids = append(ids, orig)
		ds = append(ds, d)
	}
	return ids, ds
}

// NextHop returns the stored next hop from v toward hub h (-1 for the
// self entry); ok is false when h ∉ S(v) or there is no parent column.
// The run is decoded forward until the rank of h is met — O(|S(v)|).
func (c *CompactLabeling) NextHop(v, h graph.NodeID) (graph.NodeID, bool) {
	if c.parents == nil {
		return -1, false
	}
	return c.hopToward(v, h)
}

func (c *CompactLabeling) hopToward(v, h graph.NodeID) (graph.NodeID, bool) {
	if h < 0 || int(h) >= c.n {
		return -1, false
	}
	target := c.inv[h]
	step := stepNarrow
	if c.wide {
		step = stepWide
	}
	i, iEnd := c.offsets[v], c.offsets[v+1]
	e := c.escOff[v]
	r, d := int32(-1), graph.Weight(0)
	for ; i < iEnd; i++ {
		e, r, d = step(c.hubDelta, c.distDelta, c.esc, i, e, r, d)
		if r >= target {
			if r == target {
				return c.parents[i], true
			}
			return -1, false
		}
	}
	return -1, false
}

// AppendPath unpacks one shortest u–v path through the parent column;
// see FlatLabeling.AppendPath for the full contract. The walk is the
// shared two-ended kernel, so the unpacked path is identical to the
// expanded representation's.
func (c *CompactLabeling) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	return appendPathOver(c, dst, u, v)
}

// Path returns one shortest u–v path as a fresh slice.
func (c *CompactLabeling) Path(u, v graph.NodeID) ([]graph.NodeID, error) {
	return c.AppendPath(nil, u, v)
}

// Thaw materializes a mutable Labeling as a deep copy (never aliasing a
// mapped container), with labels in canonical id order.
func (c *CompactLabeling) Thaw() *Labeling { return c.Expand().Thaw() }

// expandEntry is one decoded label entry during Expand.
type expandEntry struct {
	orig   graph.NodeID
	dist   graph.Weight
	parent graph.NodeID
}

// Expand decodes the compact labeling into an owned FlatLabeling —
// original-id-sorted sentinel-terminated runs, exactly what Freeze of
// the same labeling builds, so the two representations' containers
// round-trip into byte-identical expanded forms. Expand of a view is a
// deep copy and stays valid after Release. The output's structural
// invariants hold even when c is a quick-validated hostile view (the
// decoded values may then be garbage, but the flat arrays are
// well-formed).
func (c *CompactLabeling) Expand() *FlatLabeling {
	n := c.n
	entries := len(c.hubDelta)
	f := &FlatLabeling{
		offsets: make([]int32, n+1),
		hubIDs:  make([]graph.NodeID, entries+n),
		dists:   make([]graph.Weight, entries+n),
	}
	if c.parents != nil {
		f.parents = make([]graph.NodeID, entries+n)
	}
	step := stepNarrow
	if c.wide {
		step = stepWide
	}
	var es []expandEntry
	pos := int32(0)
	for v := 0; v < n; v++ {
		i, iEnd := c.offsets[v], c.offsets[v+1]
		e := c.escOff[v]
		r, d := int32(-1), graph.Weight(0)
		es = es[:0]
		for ; i < iEnd; i++ {
			e, r, d = step(c.hubDelta, c.distDelta, c.esc, i, e, r, d)
			// Hostile out-of-range ranks surface as -1, matching Label —
			// the raw rank must never leak as a fake hub id.
			ent := expandEntry{orig: graph.NodeID(-1), dist: d, parent: -1}
			if r >= 0 && int(r) < n {
				ent.orig = c.remap[r]
			}
			if c.parents != nil {
				ent.parent = c.parents[i]
			}
			es = append(es, ent)
		}
		slices.SortFunc(es, func(a, b expandEntry) int {
			if a.orig != b.orig {
				if a.orig < b.orig {
					return -1
				}
				return 1
			}
			if a.dist != b.dist {
				if a.dist < b.dist {
					return -1
				}
				return 1
			}
			return 0
		})
		f.offsets[v] = pos
		for _, ent := range es {
			f.hubIDs[pos] = ent.orig
			f.dists[pos] = ent.dist
			if f.parents != nil {
				f.parents[pos] = ent.parent
			}
			pos++
		}
		f.hubIDs[pos] = flatSentinel
		f.dists[pos] = graph.Infinity
		if f.parents != nil {
			f.parents[pos] = -1
		}
		pos++
	}
	f.offsets[n] = pos
	return f
}

// compactPlan is the deterministic global layout of a compact encoding:
// the frequency-ranked remap table, the distance-column width, and the
// exact entry and escape-slot totals. The freeze-path writer and the
// streaming writer compute identical plans from the same labeling, which
// is one half of the byte-identity guarantee (the shared per-vertex
// encoder is the other).
type compactPlan struct {
	remap   []graph.NodeID
	inv     []int32
	wide    bool
	entries int64
	escs    int64
}

// compactEntry is one label entry in rank space, the unit the per-vertex
// encoder consumes (sorted ascending by rank).
type compactEntry struct {
	rank   int32
	dist   graph.Weight
	parent graph.NodeID
}

// sortCompactEntries orders a vertex's entries by rank. Ranks within one
// vertex are distinct (the remap is a bijection over distinct hub ids),
// so the order — and with it the encoded bytes — is deterministic.
func sortCompactEntries(es []compactEntry) {
	slices.SortFunc(es, func(a, b compactEntry) int {
		if a.rank < b.rank {
			return -1
		}
		if a.rank > b.rank {
			return 1
		}
		return 0
	})
}

// planCompactFrom computes the compact plan for n vertices whose labels
// the callback yields (ids in [0, n), any order; the returned slices are
// only read before the next call). Two passes: hub frequencies → remap,
// then a per-vertex rank-sort to count escapes exactly. The distance
// column goes wide when more than 1 in 8 entries would escape a one-byte
// zig-zag delta — past that, paying one extra byte on every entry is
// cheaper than four on every escape, and the threshold is deterministic
// so every writer picks the same width.
func planCompactFrom(n int, label func(v int) ([]graph.NodeID, []graph.Weight)) *compactPlan {
	freq := make([]int64, n)
	var entries int64
	for v := 0; v < n; v++ {
		ids, _ := label(v)
		for _, h := range ids {
			freq[h]++
		}
		entries += int64(len(ids))
	}
	remap := make([]graph.NodeID, n)
	for i := range remap {
		remap[i] = graph.NodeID(i)
	}
	slices.SortFunc(remap, func(a, b graph.NodeID) int {
		if freq[a] != freq[b] {
			if freq[a] > freq[b] {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	inv := make([]int32, n)
	for r, h := range remap {
		inv[h] = int32(r)
	}
	var hubEsc, dist8Esc, dist16Esc int64
	var es []compactEntry
	for v := 0; v < n; v++ {
		ids, ds := label(v)
		es = es[:0]
		for k, h := range ids {
			es = append(es, compactEntry{rank: inv[h], dist: ds[k]})
		}
		sortCompactEntries(es)
		prevRank, prevDist := int32(-1), graph.Weight(0)
		for _, ent := range es {
			if ent.rank-prevRank-1 > maxDelta8 {
				hubEsc++
			}
			z := zig32(int32(ent.dist - prevDist))
			if z > maxDelta8 {
				dist8Esc++
			}
			if z > maxZig16 {
				dist16Esc++
			}
			prevRank, prevDist = ent.rank, ent.dist
		}
	}
	p := &compactPlan{remap: remap, inv: inv, entries: entries}
	p.wide = dist8Esc*8 > entries
	if p.wide {
		p.escs = hubEsc + dist16Esc
	} else {
		p.escs = hubEsc + dist8Esc
	}
	return p
}

// planCompactLabeling is planCompactFrom over the mutable (canonical)
// labeling form — the streaming writer's entry point.
func planCompactLabeling(l *Labeling) *compactPlan {
	var idBuf []graph.NodeID
	var dBuf []graph.Weight
	return planCompactFrom(len(l.labels), func(v int) ([]graph.NodeID, []graph.Weight) {
		idBuf, dBuf = idBuf[:0], dBuf[:0]
		for _, h := range l.labels[v] {
			idBuf = append(idBuf, h.Node)
			dBuf = append(dBuf, h.Dist)
		}
		return idBuf, dBuf
	})
}

// appendVertexCompact encodes one vertex's rank-sorted entries onto the
// compact columns, appending to the passed slices and returning them.
// It is THE encoder — both the freeze-path writer (CompactFromFlat) and
// the streaming writer feed their per-vertex entries through it, so the
// emitted bytes cannot diverge. Escapes are canonical: used exactly when
// the value does not fit the narrow code.
func appendVertexCompact(hd, dd []byte, esc []int32, par []graph.NodeID,
	es []compactEntry, wide, withParents bool) ([]byte, []byte, []int32, []graph.NodeID) {
	prevRank, prevDist := int32(-1), graph.Weight(0)
	for _, ent := range es {
		if delta := ent.rank - prevRank - 1; delta >= 0 && delta <= maxDelta8 {
			hd = append(hd, byte(delta))
		} else {
			hd = append(hd, escByte)
			esc = append(esc, ent.rank)
		}
		z := zig32(int32(ent.dist - prevDist))
		if !wide {
			if z <= maxDelta8 {
				dd = append(dd, byte(z))
			} else {
				dd = append(dd, escByte)
				esc = append(esc, int32(ent.dist))
			}
		} else {
			if z <= maxZig16 {
				dd = append(dd, byte(z), byte(z>>8))
			} else {
				dd = append(dd, escByte, escByte)
				esc = append(esc, int32(ent.dist))
			}
		}
		if withParents {
			par = append(par, ent.parent)
		}
		prevRank, prevDist = ent.rank, ent.dist
	}
	return hd, dd, esc, par
}

// CompactFromFlat re-encodes a flat labeling into the compact
// representation. f must be structurally valid (every freshly built or
// decoded labeling is; run Validate first on labelings of unknown
// provenance — hub ids outside [0, n) cannot be rank-mapped).
func CompactFromFlat(f *FlatLabeling) *CompactLabeling {
	n := f.NumVertices()
	plan := planCompactFrom(n, func(v int) ([]graph.NodeID, []graph.Weight) {
		return f.LabelIDs(graph.NodeID(v)), f.LabelDists(graph.NodeID(v))
	})
	c := &CompactLabeling{
		n:       n,
		offsets: make([]int32, n+1),
		remap:   plan.remap,
		inv:     plan.inv,
		escOff:  make([]int32, n+1),
		wide:    plan.wide,
	}
	c.hubDelta = make([]byte, 0, plan.entries)
	stride := int64(1)
	if plan.wide {
		stride = 2
	}
	c.distDelta = make([]byte, 0, stride*plan.entries)
	c.esc = make([]int32, 0, plan.escs)
	withParents := f.HasParents()
	if withParents {
		c.parents = make([]graph.NodeID, 0, plan.entries)
	}
	var es []compactEntry
	for v := 0; v < n; v++ {
		c.offsets[v] = int32(len(c.hubDelta))
		c.escOff[v] = int32(len(c.esc))
		ids, ds := f.LabelIDs(graph.NodeID(v)), f.LabelDists(graph.NodeID(v))
		es = es[:0]
		for k, h := range ids {
			ent := compactEntry{rank: plan.inv[h], dist: ds[k], parent: -1}
			if withParents {
				ent.parent = f.parents[int(f.offsets[v])+k]
			}
			es = append(es, ent)
		}
		sortCompactEntries(es)
		c.hubDelta, c.distDelta, c.esc, c.parents =
			appendVertexCompact(c.hubDelta, c.distDelta, c.esc, c.parents, es, c.wide, withParents)
	}
	c.offsets[n] = int32(len(c.hubDelta))
	c.escOff[n] = int32(len(c.esc))
	return c
}

// WriteContainer serializes the labeling: Compact emits the version-4
// container natively; any other option set expands first (an O(entries)
// decode) and defers to the flat writer — so a compact store can still
// produce v1–v3 files when asked.
func (c *CompactLabeling) WriteContainer(w io.Writer, opts ContainerOptions) (int64, error) {
	if opts.Compact {
		if opts.Compress || opts.Aligned {
			return 0, errCompactCompose
		}
		return c.writeV4(w)
	}
	return c.Expand().WriteContainer(w, opts)
}

// buildInv verifies that remap is a permutation of [0, n) and returns
// its heap-owned inverse. Run at every open of a compact container: it
// is what makes remap[rank] lookups in QueryVia/Label/Expand, and
// inv[h] lookups in NextHop, unconditionally in-bounds afterwards — part
// of the O(n) quick-open validation budget.
func (c *CompactLabeling) buildInv() error {
	inv := make([]int32, c.n)
	seen := make([]bool, c.n)
	for r, h := range c.remap {
		if h < 0 || int(h) >= c.n || seen[h] {
			return fmt.Errorf("hub: remap table is not a permutation (rank %d maps to %d)", r, h)
		}
		seen[h] = true
		inv[h] = int32(r)
	}
	c.inv = inv
	return nil
}

// validateQuick asserts the O(n) invariants that make every compact
// query path memory-safe on arbitrary interior data — the whole
// validation budget of the zero-copy open (the compact analogue of
// FlatLabeling.validateOffsets):
//
//   - column lengths agree with the entry CSR and the declared stride;
//   - offsets is a monotone cover of [0, entries] (empty runs are legal:
//     there are no sentinels), so every entry index a kernel derives is
//     in range for hubDelta, distDelta and parents;
//   - escOff is a monotone cover of [0, len(esc)], so escape cursors
//     start in range (every subsequent escape read is bounds-checked in
//     the step functions);
//   - remap is a permutation of [0, n) (buildInv), so unremapping and
//     inverse lookups are always in-bounds.
//
// Rank and distance accumulators are intentionally NOT validated here:
// they can wrap on hostile deltas, which yields wrong answers but never
// an out-of-bounds access (the merge terminates on entry counters, not
// values). Validate adds the full interior audit.
func (c *CompactLabeling) validateQuick() error {
	n := c.n
	if n < 0 || len(c.offsets) != n+1 || len(c.escOff) != n+1 || len(c.remap) != n {
		return fmt.Errorf("hub: compact arrays disagree with %d vertices", n)
	}
	entries := len(c.hubDelta)
	stride := 1
	if c.wide {
		stride = 2
	}
	if len(c.distDelta) != stride*entries {
		return fmt.Errorf("hub: distance column has %d bytes for %d entries (stride %d)", len(c.distDelta), entries, stride)
	}
	if c.parents != nil && len(c.parents) != entries {
		return fmt.Errorf("hub: parent column has %d slots, labels have %d entries", len(c.parents), entries)
	}
	if c.offsets[0] != 0 || int(c.offsets[n]) != entries {
		return fmt.Errorf("hub: entry CSR covers [%d,%d], want [0,%d]", c.offsets[0], c.offsets[n], entries)
	}
	if c.escOff[0] != 0 || int(c.escOff[n]) != len(c.esc) {
		return fmt.Errorf("hub: escape CSR covers [%d,%d], want [0,%d]", c.escOff[0], c.escOff[n], len(c.esc))
	}
	for v := 0; v < n; v++ {
		if c.offsets[v+1] < c.offsets[v] {
			return fmt.Errorf("hub: vertex %d entry run [%d,%d) is not monotone", v, c.offsets[v], c.offsets[v+1])
		}
		if c.escOff[v+1] < c.escOff[v] {
			return fmt.Errorf("hub: vertex %d escape run [%d,%d) is not monotone", v, c.escOff[v], c.escOff[v+1])
		}
	}
	if len(c.inv) != n {
		return c.buildInv()
	}
	return nil
}

// Validate runs the full structural audit: validateQuick plus a decode
// of every entry checking rank monotonicity and range, distance range,
// exact per-vertex escape-slot consumption, parent-column invariants,
// and encoding canonicality (an escape byte where the narrow code would
// have fit, or vice versa, is rejected — each labeling has exactly one
// valid compact encoding). Decoded containers always pass through here;
// for mmap views it is the opt-in audit.
func (c *CompactLabeling) Validate() error {
	if err := c.validateQuick(); err != nil {
		return err
	}
	n := int32(c.n)
	for v := 0; v < c.n; v++ {
		i, iEnd := c.offsets[v], c.offsets[v+1]
		e, eEnd := c.escOff[v], c.escOff[v+1]
		prevRank, prevDist := int32(-1), graph.Weight(0)
		for ; i < iEnd; i++ {
			var rank int32
			if b := c.hubDelta[i]; b != escByte {
				rank = prevRank + 1 + int32(b)
			} else {
				if e >= eEnd {
					return fmt.Errorf("hub: vertex %d escape slots overrun at entry %d", v, i)
				}
				rank = c.esc[e]
				e++
				if rank-prevRank-1 <= maxDelta8 {
					return fmt.Errorf("hub: vertex %d entry %d escapes a rank delta that fits the narrow code", v, i)
				}
			}
			if rank <= prevRank || rank >= n {
				return fmt.Errorf("hub: vertex %d entry %d rank %d out of order or range", v, i, rank)
			}
			var dist graph.Weight
			var z uint32
			var zmax uint32 = maxDelta8
			if !c.wide {
				z = uint32(c.distDelta[i])
			} else {
				z = uint32(c.distDelta[2*i]) | uint32(c.distDelta[2*i+1])<<8
				zmax = maxZig16
			}
			if z != zmax+1 { // zmax+1 == escByte / escWord
				dist = prevDist + unzig32(z)
			} else {
				if e >= eEnd {
					return fmt.Errorf("hub: vertex %d escape slots overrun at entry %d", v, i)
				}
				dist = graph.Weight(c.esc[e])
				e++
				if zig32(int32(dist-prevDist)) <= zmax {
					return fmt.Errorf("hub: vertex %d entry %d escapes a distance delta that fits the narrow code", v, i)
				}
			}
			if dist < 0 || dist > graph.Infinity {
				return fmt.Errorf("hub: vertex %d entry %d distance %d out of range", v, i, dist)
			}
			if c.parents != nil {
				p := c.parents[i]
				if orig := c.remap[rank]; orig == graph.NodeID(v) {
					if p != -1 {
						return fmt.Errorf("hub: vertex %d self entry carries parent %d", v, p)
					}
				} else if p < 0 || p >= graph.NodeID(n) || p == graph.NodeID(v) {
					return fmt.Errorf("hub: vertex %d parent out of range at entry %d", v, i)
				}
			}
			prevRank, prevDist = rank, dist
		}
		if e != eEnd {
			return fmt.Errorf("hub: vertex %d consumes %d of its %d escape slots", v, e-c.escOff[v], eEnd-c.escOff[v])
		}
	}
	return nil
}
