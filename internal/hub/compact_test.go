package hub

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"hublab/internal/graph"
)

// pathAncestorLabeling builds an exact cover on the path graph
// 0-1-…-(n-1): S(v) = {v..n-1} when desc (so the remap reverses vertex
// order — hub n-1 is hottest), else S(v) = {0..v}. Dists are exact path
// distances; no parent column.
func pathAncestorLabeling(n int, desc bool) *FlatLabeling {
	l := NewLabeling(n)
	for v := 0; v < n; v++ {
		if desc {
			for h := v; h < n; h++ {
				l.Add(graph.NodeID(v), graph.NodeID(h), graph.Weight(h-v))
			}
		} else {
			for h := 0; h <= v; h++ {
				l.Add(graph.NodeID(v), graph.NodeID(h), graph.Weight(v-h))
			}
		}
	}
	return l.Freeze()
}

// randomFlat builds a canonical pseudo-random labeling: sorted distinct
// hub ids spread over [0, n) (rank deltas routinely exceed 254 → hub
// escapes) and distances bounded by maxDist (large bounds force distance
// escapes and, past the 1-in-8 threshold, the wide column).
func randomFlat(t testing.TB, n, perVertex int, maxDist int32, seed int64) *FlatLabeling {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := NewLabeling(n)
	for v := 0; v < n; v++ {
		seen := map[graph.NodeID]bool{graph.NodeID(v): true}
		l.Add(graph.NodeID(v), graph.NodeID(v), 0)
		for k := rng.Intn(perVertex); k > 0; k-- {
			h := graph.NodeID(rng.Intn(n))
			if seen[h] {
				continue
			}
			seen[h] = true
			l.Add(graph.NodeID(v), h, graph.Weight(rng.Int31n(maxDist)))
		}
	}
	l.Canonicalize()
	return l.Freeze()
}

type compactFixture struct {
	name string
	f    *FlatLabeling
}

func compactFixtures(t testing.TB) []compactFixture {
	t.Helper()
	_, star := parentFixture(t)
	return []compactFixture{
		{"container", containerFixture(t)},
		{"parents-star", star},
		{"empty", NewLabeling(0).Freeze()},
		{"one-vertex", NewLabeling(1).Freeze()},
		{"path-asc", pathAncestorLabeling(24, false)},
		{"path-desc", pathAncestorLabeling(24, true)},
		{"random-narrow", randomFlat(t, 700, 12, 40, 1)},
		{"random-escapes", randomFlat(t, 700, 12, 1<<27, 2)},
	}
}

// TestCompactExpandRoundTrip pins CompactFromFlat ∘ Expand as the
// identity on the flat arrays (including the parent column), and that
// every compact encoding passes its own full validation.
func TestCompactExpandRoundTrip(t *testing.T) {
	for _, tc := range compactFixtures(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := CompactFromFlat(tc.f)
			if err := c.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			got := c.Expand()
			if !flatEqual(got, tc.f) {
				t.Fatal("Expand(CompactFromFlat(f)) differs from f")
			}
			if c.HasParents() != tc.f.HasParents() {
				t.Fatalf("HasParents %v, want %v", c.HasParents(), tc.f.HasParents())
			}
			if tc.f.HasParents() && !slices.Equal(got.parents, tc.f.parents) {
				t.Fatal("parent column did not round-trip")
			}
			if c.NumHubs() != tc.f.NumHubs() {
				t.Fatalf("NumHubs %d, want %d", c.NumHubs(), tc.f.NumHubs())
			}
			if c.ComputeStats() != tc.f.ComputeStats() {
				t.Fatalf("stats %+v, want %+v", c.ComputeStats(), tc.f.ComputeStats())
			}
		})
	}
}

// TestCompactRemapIsFrequencyRanked pins the remap order on a labeling
// with strictly decreasing hub frequencies under the reversed id order:
// hub n-1 (carried by everyone) must get rank 0.
func TestCompactRemapIsFrequencyRanked(t *testing.T) {
	n := 24
	c := CompactFromFlat(pathAncestorLabeling(n, true))
	for r := 0; r < n; r++ {
		if want := graph.NodeID(n - 1 - r); c.remap[r] != want {
			t.Fatalf("rank %d maps to %d, want %d", r, c.remap[r], want)
		}
	}
	if c.wide {
		t.Fatal("unit-weight path labeling should not select the wide column")
	}
}

// TestCompactWideSelection pins the deterministic width choice: huge
// random distances push the 8-bit escape fraction past 1/8 and flip the
// distance column to 16-bit codes.
func TestCompactWideSelection(t *testing.T) {
	if c := CompactFromFlat(randomFlat(t, 700, 12, 1<<27, 2)); !c.wide {
		t.Fatal("escape-heavy labeling should select the wide distance column")
	}
	if c := CompactFromFlat(randomFlat(t, 700, 12, 40, 1)); c.wide {
		t.Fatal("small-distance labeling should stay narrow")
	}
}

// TestCompactQueryAgreement pins Query/QueryVia/QueryBatch/Label
// answers byte-identical between the two representations on every
// fixture, sampling all pairs on the small ones.
func TestCompactQueryAgreement(t *testing.T) {
	for _, tc := range compactFixtures(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := CompactFromFlat(tc.f)
			n := tc.f.NumVertices()
			pairs := make([][2]graph.NodeID, 0, 1024)
			rng := rand.New(rand.NewSource(7))
			for k := 0; k < 1024; k++ {
				if n == 0 {
					break
				}
				pairs = append(pairs, [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))})
			}
			for _, p := range pairs {
				fd, fok := tc.f.Query(p[0], p[1])
				cd, cok := c.Query(p[0], p[1])
				if fd != cd || fok != cok {
					t.Fatalf("Query(%d,%d): compact (%d,%v), expanded (%d,%v)", p[0], p[1], cd, cok, fd, fok)
				}
				fd, fvia, fok := tc.f.QueryVia(p[0], p[1])
				cd, cvia, cok := c.QueryVia(p[0], p[1])
				if fd != cd || fvia != cvia || fok != cok {
					t.Fatalf("QueryVia(%d,%d): compact (%d,%d,%v), expanded (%d,%d,%v)",
						p[0], p[1], cd, cvia, cok, fd, fvia, fok)
				}
			}
			fout := make([]graph.Weight, len(pairs))
			cout := make([]graph.Weight, len(pairs))
			tc.f.QueryBatch(pairs, fout)
			c.QueryBatch(pairs, cout)
			if !slices.Equal(fout, cout) {
				t.Fatal("QueryBatch answers differ")
			}
			var idBuf []graph.NodeID
			var dBuf []graph.Weight
			for v := 0; v < n; v++ {
				fids, fds := tc.f.Label(graph.NodeID(v), nil, nil)
				cids, cds := c.Label(graph.NodeID(v), idBuf, dBuf)
				if c.LabelLen(graph.NodeID(v)) != len(fids) || len(cids) != len(fids) {
					t.Fatalf("vertex %d label length %d, want %d", v, len(cids), len(fids))
				}
				// Entry order is representation-specific; compare as sets of
				// (id, dist) pairs.
				type ent struct {
					id graph.NodeID
					d  graph.Weight
				}
				fe := make([]ent, len(fids))
				ce := make([]ent, len(cids))
				for i := range fids {
					fe[i] = ent{fids[i], fds[i]}
					ce[i] = ent{cids[i], cds[i]}
				}
				cmp := func(a, b ent) int {
					if a.id != b.id {
						return int(a.id - b.id)
					}
					return int(a.d - b.d)
				}
				slices.SortFunc(ce, cmp)
				slices.SortFunc(fe, cmp)
				if !slices.Equal(fe, ce) {
					t.Fatalf("vertex %d label entries differ", v)
				}
				idBuf, dBuf = cids[:0], cds[:0]
			}
		})
	}
}

// TestCompactPathAgreement pins NextHop and full path unpacking
// identical across representations — parents must chase correctly under
// remapped hub ids.
func TestCompactPathAgreement(t *testing.T) {
	_, f := parentFixture(t)
	c := CompactFromFlat(f)
	n := f.NumVertices()
	for v := 0; v < n; v++ {
		for h := -1; h <= n; h++ {
			fp, fok := f.NextHop(graph.NodeID(v), graph.NodeID(h))
			cp, cok := c.NextHop(graph.NodeID(v), graph.NodeID(h))
			if fp != cp || fok != cok {
				t.Fatalf("NextHop(%d,%d): compact (%d,%v), expanded (%d,%v)", v, h, cp, cok, fp, fok)
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			fp, ferr := f.Path(graph.NodeID(u), graph.NodeID(v))
			cp, cerr := c.Path(graph.NodeID(u), graph.NodeID(v))
			if !errors.Is(cerr, ferr) || !slices.Equal(fp, cp) {
				t.Fatalf("Path(%d,%d): compact %v (%v), expanded %v (%v)", u, v, cp, cerr, fp, ferr)
			}
		}
	}
	// A labeling without parents answers ErrNoParents through both doors.
	noPar := CompactFromFlat(pathAncestorLabeling(8, false))
	if _, err := noPar.Path(0, 3); !errors.Is(err, ErrNoParents) {
		t.Fatalf("Path without parents: %v, want ErrNoParents", err)
	}
	if _, ok := noPar.NextHop(0, 0); ok {
		t.Fatal("NextHop without parents must report !ok")
	}
}

// TestCompactEccAgreement pins the eccentricity index — bounds and
// exact queries — identical over the two representations.
func TestCompactEccAgreement(t *testing.T) {
	for _, tc := range compactFixtures(t) {
		if tc.f.NumVertices() == 0 || tc.f.NumVertices() > 100 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			fe := NewEccIndex(tc.f)
			ce := NewEccIndex(CompactFromFlat(tc.f))
			for v := 0; v < tc.f.NumVertices(); v++ {
				if fb, cb := fe.EccentricityUpperBound(graph.NodeID(v)), ce.EccentricityUpperBound(graph.NodeID(v)); fb != cb {
					t.Fatalf("EccentricityUpperBound(%d): compact %d, expanded %d", v, cb, fb)
				}
				fd, fu := fe.Eccentricity(graph.NodeID(v))
				cd, cu := ce.Eccentricity(graph.NodeID(v))
				if fd != cd || fu != cu {
					t.Fatalf("Eccentricity(%d): compact (%d,%d), expanded (%d,%d)", v, cd, cu, fd, fu)
				}
			}
		})
	}
}

// TestCompactContainerRoundTrip pins the v4 container through all four
// doors: the store-preserving decode and mmap open return compact
// stores answering identically, and the expanded doors
// (ReadContainer/openBytes) recover the original flat labeling exactly.
func TestCompactContainerRoundTrip(t *testing.T) {
	for _, tc := range compactFixtures(t) {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			wrote, err := tc.f.WriteContainer(&buf, ContainerOptions{Compact: true})
			if err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if wrote != int64(buf.Len()) {
				t.Fatalf("reported %d bytes, wrote %d", wrote, buf.Len())
			}
			if v := binary.LittleEndian.Uint16(buf.Bytes()[8:10]); v != 4 {
				t.Fatalf("compact container has version %d, want 4", v)
			}

			s, err := ReadContainerStore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadContainerStore: %v", err)
			}
			dec, ok := s.(*CompactLabeling)
			if !ok {
				t.Fatalf("decoded store is %T, want *CompactLabeling", s)
			}
			if !dec.Owned() {
				t.Fatal("decoded store must be owned")
			}
			if !flatEqual(dec.Expand(), tc.f) {
				t.Fatal("decoded store expands to a different labeling")
			}

			mm, err := openStoreBytes(bytes.Clone(buf.Bytes()))
			if err != nil {
				t.Fatalf("openStore: %v", err)
			}
			view, ok := mm.(*CompactLabeling)
			if !ok {
				t.Fatalf("mapped store is %T, want *CompactLabeling", mm)
			}
			if tc.f.NumHubs() > 0 && view.Owned() {
				t.Fatal("mapped compact store should be a view")
			}
			if err := view.Validate(); err != nil {
				t.Fatalf("mapped view Validate: %v", err)
			}
			if !flatEqual(view.Expand(), tc.f) {
				t.Fatal("mapped view expands to a different labeling")
			}
			if err := view.Release(); err != nil {
				t.Fatalf("Release: %v", err)
			}

			exp, err := ReadContainer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadContainer: %v", err)
			}
			if !flatEqual(exp, tc.f) {
				t.Fatal("ReadContainer of a v4 file differs from the original")
			}
			exp2, err := openBytes(bytes.Clone(buf.Bytes()))
			if err != nil {
				t.Fatalf("openBytes: %v", err)
			}
			if !flatEqual(exp2, tc.f) {
				t.Fatal("mmap-expanded v4 differs from the original")
			}
		})
	}
}

// TestCompactStreamingByteIdentity pins the streaming writer's v4 bytes
// against the freeze-path writer's for every fixture — the same
// guarantee the v1–v3 formats carry. The fixtures include labelings
// built from unsorted Adds (canonicalized), so Canonicalize ordering is
// part of what round-trips.
func TestCompactStreamingByteIdentity(t *testing.T) {
	for _, tc := range compactFixtures(t) {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.f.Thaw()
			var want bytes.Buffer
			if _, err := l.Freeze().WriteContainer(&want, ContainerOptions{Compact: true}); err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			var got memWriterAt
			wrote, err := l.WriteContainerStreaming(&got, ContainerOptions{Compact: true})
			if err != nil {
				t.Fatalf("WriteContainerStreaming: %v", err)
			}
			if wrote != int64(len(got.buf)) || !bytes.Equal(got.buf, want.Bytes()) {
				t.Fatalf("streamed v4 bytes differ (%d vs %d bytes)", len(got.buf), want.Len())
			}
		})
	}
}

// TestCompactThawDeepCopy pins Thaw semantics on the compressed
// representation: the thawed labeling owns every byte, survives the
// view's release, and mutating it leaves the view's answers unchanged.
func TestCompactThawDeepCopy(t *testing.T) {
	f := randomFlat(t, 200, 8, 1000, 3)
	var buf bytes.Buffer
	if _, err := f.WriteContainer(&buf, ContainerOptions{Compact: true}); err != nil {
		t.Fatal(err)
	}
	s, err := openStoreBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	view := s.(*CompactLabeling)
	d0, ok0 := view.Query(1, 2)

	l := view.Thaw()
	l.Add(1, 199, 1)
	l.Canonicalize()
	if d, ok := view.Query(1, 2); d != d0 || ok != ok0 {
		t.Fatal("mutating the thawed labeling changed the view's answers")
	}

	l2 := view.Thaw()
	if err := view.Release(); err != nil {
		t.Fatal(err)
	}
	if !flatEqual(l2.Freeze(), f) {
		t.Fatal("thawed labeling differs from the original after Release")
	}
}

// TestCompactOptionConflicts pins the option-combination errors on
// every write door.
func TestCompactOptionConflicts(t *testing.T) {
	f := containerFixture(t)
	c := CompactFromFlat(f)
	for _, opts := range []ContainerOptions{
		{Compact: true, Compress: true},
		{Compact: true, Aligned: true},
	} {
		if _, err := f.WriteContainer(&bytes.Buffer{}, opts); err == nil {
			t.Fatalf("flat WriteContainer accepted %+v", opts)
		}
		if _, err := c.WriteContainer(&bytes.Buffer{}, opts); err == nil {
			t.Fatalf("compact WriteContainer accepted %+v", opts)
		}
		if _, err := f.Thaw().WriteContainerStreaming(&memWriterAt{}, opts); err == nil {
			t.Fatalf("WriteContainerStreaming accepted %+v", opts)
		}
	}
	if _, err := NewContainerWriter(&memWriterAt{}, 1, 1, false, ContainerOptions{Compact: true}); err == nil {
		t.Fatal("NewContainerWriter accepted the compact payload")
	}
}

// TestCompactWriteContainerConverts pins the representation-conversion
// write paths: a compact store still writes v1–v3 (via expansion) and a
// compact write of an expanded store round-trips — so every (store,
// option) pair serializes.
func TestCompactWriteContainerConverts(t *testing.T) {
	_, f := parentFixture(t)
	c := CompactFromFlat(f)
	for _, tc := range []struct {
		name string
		opts ContainerOptions
	}{
		{"raw", ContainerOptions{}},
		{"gamma", ContainerOptions{Compress: true}},
		{"aligned", ContainerOptions{Aligned: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var fromCompact, fromFlat bytes.Buffer
			if _, err := c.WriteContainer(&fromCompact, tc.opts); err != nil {
				t.Fatalf("compact WriteContainer: %v", err)
			}
			if _, err := f.WriteContainer(&fromFlat, tc.opts); err != nil {
				t.Fatalf("flat WriteContainer: %v", err)
			}
			if !bytes.Equal(fromCompact.Bytes(), fromFlat.Bytes()) {
				t.Fatal("compact store writes different v1-v3 bytes than the flat store")
			}
		})
	}
}
