package hub

import (
	"bytes"
	"testing"

	"hublab/internal/graph"
)

// containerFixture builds a small canonical labeling with uneven label
// sizes, including an empty label.
func containerFixture(t testing.TB) *FlatLabeling {
	t.Helper()
	l := NewLabeling(6)
	l.Add(0, 0, 0)
	l.Add(0, 3, 2)
	l.Add(0, 5, 7)
	l.Add(1, 1, 0)
	l.Add(2, 0, 4)
	l.Add(2, 2, 0)
	l.Add(2, 3, 1)
	l.Add(2, 4, 9)
	l.Add(3, 3, 0)
	l.Add(4, 4, 0)
	l.Add(5, 5, 0)
	// vertex 5 also gets a far hub; vertex 1 stays tiny.
	l.Add(5, 0, 7)
	return l.Freeze()
}

func flatEqual(a, b *FlatLabeling) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	if len(a.hubIDs) != len(b.hubIDs) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.hubIDs {
		if a.hubIDs[i] != b.hubIDs[i] {
			return false
		}
	}
	for v := graph.NodeID(0); int(v) < a.NumVertices(); v++ {
		ad, bd := a.LabelDists(v), b.LabelDists(v)
		for i := range ad {
			if ad[i] != bd[i] {
				return false
			}
		}
	}
	return true
}

func TestContainerRoundTripRawAndGamma(t *testing.T) {
	f := containerFixture(t)
	for _, tc := range []struct {
		name string
		opts ContainerOptions
	}{
		{"raw", ContainerOptions{}},
		{"gamma", ContainerOptions{Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			n, err := f.WriteContainer(&buf, tc.opts)
			if err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteContainer reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadContainer: %v", err)
			}
			if !flatEqual(f, got) {
				t.Fatal("round trip changed the labeling")
			}
			if err := got.validate(); err != nil {
				t.Fatalf("loaded labeling invalid: %v", err)
			}
		})
	}
}

func TestContainerReadFrom(t *testing.T) {
	f := containerFixture(t)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var got FlatLabeling
	n, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("ReadFrom consumed %d of %d bytes", n, buf.Len())
	}
	if !flatEqual(f, &got) {
		t.Fatal("ReadFrom changed the labeling")
	}
}

// TestContainerGammaMatchesEncode pins the compressed section to the
// Labeling.Encode stream format: Decode must parse it.
func TestContainerGammaMatchesEncode(t *testing.T) {
	f := containerFixture(t)
	stream, err := f.encodeGamma()
	if err != nil {
		t.Fatalf("encodeGamma: %v", err)
	}
	want, err := f.Thaw().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatal("encodeGamma differs from Labeling.Encode")
	}
	dec, err := Decode(stream)
	if err != nil {
		t.Fatalf("Decode(gamma section): %v", err)
	}
	if !flatEqual(f, dec.Freeze()) {
		t.Fatal("Decode round trip changed the labeling")
	}
}

func TestContainerEmptyLabeling(t *testing.T) {
	for _, compress := range []bool{false, true} {
		f := NewLabeling(0).Freeze()
		var buf bytes.Buffer
		if _, err := f.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			t.Fatalf("WriteContainer(empty, compress=%v): %v", compress, err)
		}
		got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadContainer(empty, compress=%v): %v", compress, err)
		}
		if got.NumVertices() != 0 {
			t.Fatalf("empty round trip has %d vertices", got.NumVertices())
		}
	}
}

// TestContainerCorruption flips, truncates and rewrites containers; every
// mutation must surface as an error wrapping ErrContainer — never a panic,
// never a silently wrong labeling.
func TestContainerCorruption(t *testing.T) {
	f := containerFixture(t)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := f.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			t.Fatalf("WriteContainer: %v", err)
		}
		data := buf.Bytes()
		mutations := []struct {
			name   string
			mutate func([]byte) []byte
		}{
			{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
			{"bad version", func(b []byte) []byte { b[8] = 99; return b }},
			{"unknown flag", func(b []byte) []byte { b[11] |= 0x80; return b }},
			{"nonzero reserved", func(b []byte) []byte { b[13] = 1; return b }},
			{"huge slot count", func(b []byte) []byte { b[30] = 0xFF; b[31] = 0x7F; return b }},
			{"truncated header", func(b []byte) []byte { return b[:16] }},
			{"truncated columns", func(b []byte) []byte { return b[:len(b)/2] }},
			{"missing checksum", func(b []byte) []byte { return b[:len(b)-4] }},
			{"checksum mismatch", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
			{"payload bit flip", func(b []byte) []byte { b[containerHeaderLen+2] ^= 0x10; return b }},
			{"empty input", func(b []byte) []byte { return nil }},
		}
		for _, m := range mutations {
			t.Run(m.name, func(t *testing.T) {
				cp := append([]byte(nil), data...)
				cp = m.mutate(cp)
				got, err := ReadContainer(bytes.NewReader(cp))
				if err == nil {
					t.Fatalf("compress=%v: corrupt container accepted (got %d vertices)",
						compress, got.NumVertices())
				}
			})
		}
	}
}

// TestContainerRejectsInvalidArrays writes containers whose checksums are
// valid but whose arrays violate the flat invariants — a hostile writer
// can always produce a matching CRC, so validation has to catch these.
func TestContainerRejectsInvalidArrays(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(f *FlatLabeling)
	}{
		{"negative distance", func(f *FlatLabeling) { f.dists[1] = -5 }},
		{"distance above infinity", func(f *FlatLabeling) { f.dists[1] = graph.Infinity + 1 }},
		{"sentinel id in label body", func(f *FlatLabeling) { f.hubIDs[2] = flatSentinel }},
		{"negative hub id", func(f *FlatLabeling) { f.hubIDs[0] = -1 }},
		{"unsorted label", func(f *FlatLabeling) { f.hubIDs[0], f.hubIDs[1] = f.hubIDs[1], f.hubIDs[0] }},
		{"non-infinite sentinel distance", func(f *FlatLabeling) {
			f.dists[f.offsets[1]-1] = 7
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := containerFixture(t)
			cp := &FlatLabeling{
				offsets: append([]int32(nil), f.offsets...),
				hubIDs:  append([]graph.NodeID(nil), f.hubIDs...),
				dists:   append([]graph.Weight(nil), f.dists...),
			}
			m.mutate(cp)
			var buf bytes.Buffer
			if _, err := cp.WriteContainer(&buf, ContainerOptions{}); err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if _, err := ReadContainer(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatal("structurally invalid container accepted")
			}
		})
	}
}

// FuzzReadContainer hammers the parser with arbitrary bytes; the only
// acceptable outcomes are a clean error or a labeling that passes
// validation.
func FuzzReadContainer(f *testing.F) {
	fixture := containerFixture(f)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := fixture.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("HUBLABIX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.validate(); err != nil {
			t.Fatalf("accepted container fails validation: %v", err)
		}
	})
}
