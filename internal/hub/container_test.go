package hub

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"hublab/internal/bitio"
	"hublab/internal/graph"
)

// containerFixture builds a small canonical labeling with uneven label
// sizes, including an empty label.
func containerFixture(t testing.TB) *FlatLabeling {
	t.Helper()
	l := NewLabeling(6)
	l.Add(0, 0, 0)
	l.Add(0, 3, 2)
	l.Add(0, 5, 7)
	l.Add(1, 1, 0)
	l.Add(2, 0, 4)
	l.Add(2, 2, 0)
	l.Add(2, 3, 1)
	l.Add(2, 4, 9)
	l.Add(3, 3, 0)
	l.Add(4, 4, 0)
	l.Add(5, 5, 0)
	// vertex 5 also gets a far hub; vertex 1 stays tiny.
	l.Add(5, 0, 7)
	return l.Freeze()
}

func flatEqual(a, b *FlatLabeling) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	if len(a.hubIDs) != len(b.hubIDs) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.hubIDs {
		if a.hubIDs[i] != b.hubIDs[i] {
			return false
		}
	}
	for v := graph.NodeID(0); int(v) < a.NumVertices(); v++ {
		ad, bd := a.LabelDists(v), b.LabelDists(v)
		for i := range ad {
			if ad[i] != bd[i] {
				return false
			}
		}
	}
	return true
}

func TestContainerRoundTripRawAndGamma(t *testing.T) {
	f := containerFixture(t)
	for _, tc := range []struct {
		name string
		opts ContainerOptions
	}{
		{"raw", ContainerOptions{}},
		{"gamma", ContainerOptions{Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			n, err := f.WriteContainer(&buf, tc.opts)
			if err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteContainer reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadContainer: %v", err)
			}
			if !flatEqual(f, got) {
				t.Fatal("round trip changed the labeling")
			}
			if err := got.validate(); err != nil {
				t.Fatalf("loaded labeling invalid: %v", err)
			}
		})
	}
}

func TestContainerReadFrom(t *testing.T) {
	f := containerFixture(t)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var got FlatLabeling
	n, err := got.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("ReadFrom consumed %d of %d bytes", n, buf.Len())
	}
	if !flatEqual(f, &got) {
		t.Fatal("ReadFrom changed the labeling")
	}
}

// TestContainerGammaMatchesEncode pins the compressed section to the
// Labeling.Encode stream format: Decode must parse it.
func TestContainerGammaMatchesEncode(t *testing.T) {
	f := containerFixture(t)
	stream, err := f.encodeGamma()
	if err != nil {
		t.Fatalf("encodeGamma: %v", err)
	}
	want, err := f.Thaw().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatal("encodeGamma differs from Labeling.Encode")
	}
	dec, err := Decode(stream)
	if err != nil {
		t.Fatalf("Decode(gamma section): %v", err)
	}
	if !flatEqual(f, dec.Freeze()) {
		t.Fatal("Decode round trip changed the labeling")
	}
}

func TestContainerEmptyLabeling(t *testing.T) {
	for _, compress := range []bool{false, true} {
		f := NewLabeling(0).Freeze()
		var buf bytes.Buffer
		if _, err := f.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			t.Fatalf("WriteContainer(empty, compress=%v): %v", compress, err)
		}
		got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadContainer(empty, compress=%v): %v", compress, err)
		}
		if got.NumVertices() != 0 {
			t.Fatalf("empty round trip has %d vertices", got.NumVertices())
		}
	}
}

// TestContainerCorruption flips, truncates and rewrites containers; every
// mutation must surface as an error wrapping ErrContainer — never a panic,
// never a silently wrong labeling.
func TestContainerCorruption(t *testing.T) {
	f := containerFixture(t)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := f.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			t.Fatalf("WriteContainer: %v", err)
		}
		data := buf.Bytes()
		mutations := []struct {
			name   string
			mutate func([]byte) []byte
		}{
			{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
			{"bad version", func(b []byte) []byte { b[8] = 99; return b }},
			{"unknown flag", func(b []byte) []byte { b[11] |= 0x80; return b }},
			{"nonzero reserved", func(b []byte) []byte { b[13] = 1; return b }},
			{"huge slot count", func(b []byte) []byte { b[30] = 0xFF; b[31] = 0x7F; return b }},
			{"truncated header", func(b []byte) []byte { return b[:16] }},
			{"truncated columns", func(b []byte) []byte { return b[:len(b)/2] }},
			{"missing checksum", func(b []byte) []byte { return b[:len(b)-4] }},
			{"checksum mismatch", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
			{"payload bit flip", func(b []byte) []byte { b[containerHeaderLen+2] ^= 0x10; return b }},
			{"empty input", func(b []byte) []byte { return nil }},
		}
		for _, m := range mutations {
			t.Run(m.name, func(t *testing.T) {
				cp := append([]byte(nil), data...)
				cp = m.mutate(cp)
				got, err := ReadContainer(bytes.NewReader(cp))
				if err == nil {
					t.Fatalf("compress=%v: corrupt container accepted (got %d vertices)",
						compress, got.NumVertices())
				}
			})
		}
	}
}

// TestContainerRejectsInvalidArrays writes containers whose checksums are
// valid but whose arrays violate the flat invariants — a hostile writer
// can always produce a matching CRC, so validation has to catch these.
func TestContainerRejectsInvalidArrays(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(f *FlatLabeling)
	}{
		{"negative distance", func(f *FlatLabeling) { f.dists[1] = -5 }},
		{"distance above infinity", func(f *FlatLabeling) { f.dists[1] = graph.Infinity + 1 }},
		{"sentinel id in label body", func(f *FlatLabeling) { f.hubIDs[2] = flatSentinel }},
		{"negative hub id", func(f *FlatLabeling) { f.hubIDs[0] = -1 }},
		// Sorted after hub 0 and below the sentinel, so only the [0, n)
		// bound catches it.
		{"hub id beyond vertex count", func(f *FlatLabeling) { f.hubIDs[1] = 100 }},
		{"unsorted label", func(f *FlatLabeling) { f.hubIDs[0], f.hubIDs[1] = f.hubIDs[1], f.hubIDs[0] }},
		{"non-infinite sentinel distance", func(f *FlatLabeling) {
			f.dists[f.offsets[1]-1] = 7
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := containerFixture(t)
			cp := &FlatLabeling{
				offsets: append([]int32(nil), f.offsets...),
				hubIDs:  append([]graph.NodeID(nil), f.hubIDs...),
				dists:   append([]graph.Weight(nil), f.dists...),
			}
			m.mutate(cp)
			var buf bytes.Buffer
			if _, err := cp.WriteContainer(&buf, ContainerOptions{}); err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if _, err := ReadContainer(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatal("structurally invalid container accepted")
			}
		})
	}
}

// craftGammaContainer assembles a checksummed gamma container whose
// header declares n vertices and slots, and whose stream is the gamma
// codes of values in order. The CRC is valid, so only the decode-time
// bound checks stand between these streams and the flat arrays.
func craftGammaContainer(t testing.TB, n, slots uint64, values []uint64) []byte {
	t.Helper()
	var bw bitio.Writer
	for _, v := range values {
		if err := bw.WriteGamma(v); err != nil {
			t.Fatalf("WriteGamma(%d): %v", v, err)
		}
	}
	stream := bw.Bytes()

	var buf bytes.Buffer
	var header [containerHeaderLen]byte
	copy(header[0:8], containerMagic[:])
	binary.LittleEndian.PutUint16(header[8:10], ContainerVersion)
	binary.LittleEndian.PutUint16(header[10:12], containerFlagGamma)
	binary.LittleEndian.PutUint64(header[16:24], n)
	binary.LittleEndian.PutUint64(header[24:32], slots)
	buf.Write(header[:])
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(stream)))
	buf.Write(lenBuf[:])
	buf.Write(stream)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(buf.Bytes(), castagnoli))
	buf.Write(trailer[:])
	return buf.Bytes()
}

// gammaSizeOverflowContainer declares a label size code of 2^63:
// converting it to a signed int before bound-checking wraps pos+sz+1
// negative, and the decode loop then writes past the 2-slot arrays. The
// fuzzer cannot plausibly reach this (63 consecutive zero bits), so the
// stream is pinned here and seeded into the fuzz corpus.
func gammaSizeOverflowContainer(t testing.TB) []byte {
	vals := []uint64{2, 1 << 63} // vertex count n+1=2, then szPlus=2^63
	for i := 0; i < 16; i++ {    // gap/dist pairs: enough data to overrun 2 slots
		vals = append(vals, 1)
	}
	return craftGammaContainer(t, 1, 2, vals)
}

// gammaGapOverflowContainer declares one hub whose gap code wraps prev to
// -2^32: unbounded, the int32 conversion truncates that back to the valid
// hub id 0 and the container loads with attacker-chosen labels.
func gammaGapOverflowContainer(t testing.TB) []byte {
	return craftGammaContainer(t, 1, 2, []uint64{
		2,                 // vertex count n+1
		2,                 // szPlus: one hub
		1<<64 - 1<<32 + 1, // gap: -1 + int64(gap) == -2^32
		1,                 // distPlus
	})
}

// TestContainerGammaOverflowCodes pins the hostile streams above to clean
// errors: ReadContainer must reject them — never index out of range, and
// never a successfully loaded forged labeling.
func TestContainerGammaOverflowCodes(t *testing.T) {
	for name, data := range map[string][]byte{
		"size code 2^63": gammaSizeOverflowContainer(t),
		"gap wraps prev": gammaGapOverflowContainer(t),
	} {
		if _, err := ReadContainer(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile container accepted", name)
		}
	}
}

// FuzzReadContainer hammers the parser with arbitrary bytes; the only
// acceptable outcomes are a clean error or a labeling that passes
// validation.
func FuzzReadContainer(f *testing.F) {
	fixture := containerFixture(f)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := fixture.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("HUBLABIX"))
	f.Add([]byte{})
	f.Add(gammaSizeOverflowContainer(f))
	f.Add(gammaGapOverflowContainer(f))
	// Version-2 seeds: parent column present, whole and truncated.
	_, withParents := parentFixture(f)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := withParents.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-8])
	}
	// Version-3 seeds: the aligned layout, whole and hostile.
	for _, seed := range hostileV3Seeds(f) {
		f.Add(seed)
	}
	// Version-4 seeds: the compact layout, whole and hostile.
	for _, seed := range hostileV4Seeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.validate(); err != nil {
			t.Fatalf("accepted container fails validation: %v", err)
		}
		// The store-preserving door must agree on acceptance and content.
		s, err := ReadContainerStore(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadContainer accepted what ReadContainerStore rejects: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted store fails validation: %v", err)
		}
		if !flatEqual(storeFlat(s), got) {
			t.Fatal("the two decode doors disagree on the same bytes")
		}
	})
}
