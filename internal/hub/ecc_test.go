package hub_test

import (
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// bruteEcc returns max finite distance from v and a smallest-id vertex
// attaining it.
func bruteEcc(g *graph.Graph, v graph.NodeID) (graph.Weight, graph.NodeID) {
	r := sssp.Search(g, v)
	ecc, far := graph.Weight(0), v
	for u, d := range r.Dist {
		if d < graph.Infinity && d > ecc {
			ecc, far = d, graph.NodeID(u)
		}
	}
	return ecc, far
}

// eccLabeling builds a PLL labeling via the pll package (kept out of
// package hub to avoid an import cycle, so this helper goes through
// hub.FromSets on the PLL hub sets instead).
func eccTestLabeling(t *testing.T, g *graph.Graph) *hub.FlatLabeling {
	t.Helper()
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l.Freeze()
}

// TestEccIndexExact checks exact eccentricities and farthest vertices
// against brute-force SSSP on several families, including a disconnected
// graph (eccentricity is over the reachable component only).
func TestEccIndexExact(t *testing.T) {
	disconnected := func() (*graph.Graph, error) {
		b := graph.NewBuilder(61, 100)
		ga, err := gen.Gnm(40, 70, 3)
		if err != nil {
			return nil, err
		}
		for _, e := range ga.Edges() {
			b.AddEdge(e.U, e.V)
		}
		for i := graph.NodeID(40); i < 59; i++ {
			b.AddEdge(i, i+1)
		}
		b.Grow(61) // vertex 60 isolated
		return b.Build()
	}
	graphs := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"gnm", func() (*graph.Graph, error) { return gen.Gnm(120, 210, 17) }},
		{"grid", func() (*graph.Graph, error) { return gen.Grid(8, 9) }},
		{"tree", func() (*graph.Graph, error) { return gen.RandomTree(90, 5) }},
		{"road", func() (*graph.Graph, error) { return gen.RoadLike(7, 7, 3, 9) }},
		{"disconnected", disconnected},
	}
	for _, gc := range graphs {
		t.Run(gc.name, func(t *testing.T) {
			g, err := gc.g()
			if err != nil {
				t.Fatal(err)
			}
			f := eccTestLabeling(t, g)
			e := hub.NewEccIndex(f)
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				wantEcc, _ := bruteEcc(g, v)
				gotEcc, far := e.Eccentricity(v)
				if gotEcc != wantEcc {
					t.Fatalf("ecc(%d) = %d, want %d", v, gotEcc, wantEcc)
				}
				if ub := e.EccentricityUpperBound(v); ub < wantEcc {
					t.Fatalf("upper bound %d below ecc(%d) = %d", ub, v, wantEcc)
				}
				// The reported farthest vertex must attain the eccentricity.
				if far == v {
					if wantEcc != 0 {
						t.Fatalf("farthest(%d) = self but ecc is %d", v, wantEcc)
					}
				} else if d, ok := f.Query(v, far); !ok || d != wantEcc {
					t.Fatalf("farthest(%d) = %d at distance %d, ecc is %d", v, far, d, wantEcc)
				}
			}
		})
	}
}

// TestEccIndexNonHierarchical runs the same exactness check over a
// hub.FromSets cover with extra random hubs mixed in (a valid but
// non-hierarchical cover), where the naive one-scan bound genuinely
// overshoots — the refinement must still land exactly.
func TestEccIndexNonHierarchical(t *testing.T) {
	g, err := gen.Gnm(90, 160, 23)
	if err != nil {
		t.Fatal(err)
	}
	l, err := hub.FromSets(g, pllSetsPlusNoise(t, g, 4))
	if err != nil {
		t.Fatal(err)
	}
	e := hub.NewEccIndex(l.Freeze())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		want, _ := bruteEcc(g, v)
		if got, _ := e.Eccentricity(v); got != want {
			t.Fatalf("ecc(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestEccIndexOvershootRegression pins the C4 instance where the pure
// max-scan is provably wrong (scan says 3, ecc is 2): the exact query must
// refine past it.
func TestEccIndexOvershootRegression(t *testing.T) {
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.Build(g, pll.Options{Order: pll.OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	e := hub.NewEccIndex(l.Freeze())
	for v := graph.NodeID(0); v < 4; v++ {
		if got, _ := e.Eccentricity(v); got != 2 {
			t.Fatalf("ecc(%d) = %d, want 2", v, got)
		}
	}
	if ub := e.EccentricityUpperBound(1); ub < 2 {
		t.Fatalf("upper bound %d below ecc 2", ub)
	}
}
