package hub

import (
	"errors"
	"fmt"

	"hublab/internal/bitio"
	"hublab/internal/graph"
)

// ErrCorrupt reports malformed serialized labeling data.
var ErrCorrupt = errors.New("hub: corrupt serialized labeling")

// Encode serializes the labeling into a compact bit stream: per vertex, the
// label size in Elias gamma, then hub ids as gamma-coded gaps (+1) and
// distances as gamma-coded values (+1). This is the "careful encoding"
// direction the paper attributes to hub-based distance labelings.
func (l *Labeling) Encode() ([]byte, error) {
	var w bitio.Writer
	if err := w.WriteGamma(uint64(len(l.labels)) + 1); err != nil {
		return nil, err
	}
	for _, hubs := range l.labels {
		if err := w.WriteGamma(uint64(len(hubs)) + 1); err != nil {
			return nil, err
		}
		prev := int64(-1)
		for _, h := range hubs {
			gap := int64(h.Node) - prev
			if gap <= 0 {
				return nil, fmt.Errorf("%w: unsorted label", ErrCorrupt)
			}
			if err := w.WriteGamma(uint64(gap)); err != nil {
				return nil, err
			}
			if err := w.WriteGamma(uint64(h.Dist) + 1); err != nil {
				return nil, err
			}
			prev = int64(h.Node)
		}
	}
	return w.Bytes(), nil
}

// Decode reverses Encode.
func Decode(data []byte) (*Labeling, error) {
	r := bitio.NewReader(data)
	nPlus, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := int(nPlus - 1)
	l := NewLabeling(n)
	for v := 0; v < n; v++ {
		szPlus, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d: %v", ErrCorrupt, v, err)
		}
		sz := int(szPlus - 1)
		hubs := make([]Hub, 0, sz)
		prev := int64(-1)
		for i := 0; i < sz; i++ {
			gap, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrCorrupt, v, i, err)
			}
			distPlus, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrCorrupt, v, i, err)
			}
			prev += int64(gap)
			hubs = append(hubs, Hub{Node: graph.NodeID(prev), Dist: graph.Weight(distPlus - 1)})
		}
		l.labels[v] = hubs
	}
	return l, nil
}

// EncodeLabel serializes a single vertex label in the per-vertex format of
// Encode, returning the byte stream and its exact bit length. This is the
// "message" form used by the Sum-Index protocol of Theorem 1.6.
func (l *Labeling) EncodeLabel(v graph.NodeID) (data []byte, bits int, err error) {
	var w bitio.Writer
	hubs := l.labels[v]
	if err := w.WriteGamma(uint64(len(hubs)) + 1); err != nil {
		return nil, 0, err
	}
	prev := int64(-1)
	for _, h := range hubs {
		gap := int64(h.Node) - prev
		if gap <= 0 {
			return nil, 0, fmt.Errorf("%w: unsorted label", ErrCorrupt)
		}
		if err := w.WriteGamma(uint64(gap)); err != nil {
			return nil, 0, err
		}
		if err := w.WriteGamma(uint64(h.Dist) + 1); err != nil {
			return nil, 0, err
		}
		prev = int64(h.Node)
	}
	return w.Bytes(), w.Len(), nil
}

// DecodeLabel reverses EncodeLabel.
func DecodeLabel(data []byte, bits int) ([]Hub, error) {
	r := bitio.NewReaderBits(data, bits)
	szPlus, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	sz := int(szPlus - 1)
	hubs := make([]Hub, 0, sz)
	prev := int64(-1)
	for i := 0; i < sz; i++ {
		gap, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: hub %d: %v", ErrCorrupt, i, err)
		}
		distPlus, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: hub %d: %v", ErrCorrupt, i, err)
		}
		prev += int64(gap)
		hubs = append(hubs, Hub{Node: graph.NodeID(prev), Dist: graph.Weight(distPlus - 1)})
	}
	return hubs, nil
}

// MergeQuery decodes the distance between the owners of two standalone
// labels (as produced by EncodeLabel and DecodeLabel): the minimum of
// a.Dist+b.Dist over common hubs, with ok=false when no hub is shared.
func MergeQuery(a, b []Hub) (graph.Weight, bool) {
	best := graph.Infinity
	found := false
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Node < b[j].Node:
			i++
		case a[i].Node > b[j].Node:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < best {
				best = d
				found = true
			}
			i++
			j++
		}
	}
	return best, found
}

// BitSize returns the per-vertex bit sizes under the Encode format, without
// materializing the stream.
func (l *Labeling) BitSize() []int {
	out := make([]int, len(l.labels))
	for v, hubs := range l.labels {
		bits := bitio.GammaLen(uint64(len(hubs)) + 1)
		prev := int64(-1)
		for _, h := range hubs {
			gap := int64(h.Node) - prev
			bits += bitio.GammaLen(uint64(gap))
			bits += bitio.GammaLen(uint64(h.Dist) + 1)
			prev = int64(h.Node)
		}
		out[v] = bits
	}
	return out
}

// AvgBits returns the average per-vertex label size in bits under Encode.
func (l *Labeling) AvgBits() float64 {
	if len(l.labels) == 0 {
		return 0
	}
	total := 0
	for _, b := range l.BitSize() {
		total += b
	}
	return float64(total) / float64(len(l.labels))
}
