package hub

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/mmapio"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// flatSentinel terminates every per-vertex run in the flat arrays. It
// compares greater than any real hub id, so the merge scan needs no bounds
// or length checks: when one side reaches its sentinel the other side
// advances until both sides agree on the sentinel.
const flatSentinel = graph.NodeID(math.MaxInt32)

// FlatLabeling is the frozen CSR/structure-of-arrays form of a Labeling:
// one contiguous offsets array plus parallel hub-id and distance arrays.
// The layout is chosen for the merge-query hot path — the scan touches
// only the hub-id array until ids match, every label is terminated by a
// sentinel id so the inner loop carries no length comparisons, and a query
// performs zero allocations.
//
// FlatLabeling is immutable. Obtain one with Labeling.Freeze and convert
// back to the mutable builder form with Thaw. Labels must be canonical
// (sorted by hub id, no duplicates); Freeze canonicalizes first when
// needed.
//
// A FlatLabeling is either owned — its arrays live on the Go heap — or a
// view, whose arrays point directly into a memory-mapped container (see
// OpenContainerMmap). Views answer queries identically but add a
// lifetime contract: Release must not run before the last query on the
// view finishes, Thaw always deep-copies (the mutable form never aliases
// the mapping), and the in-place mutations owned labelings allow
// (ComputeParents, ReadFrom) are refused — copy-on-write via CopyOwned
// instead. See Owned, Release.
type FlatLabeling struct {
	offsets []int32        // len n+1; label of v occupies [offsets[v], offsets[v+1]-1), sentinel at offsets[v+1]-1
	hubIDs  []graph.NodeID // len Total + n, sentinel-terminated runs
	dists   []graph.Weight // parallel to hubIDs (sentinel slots hold Infinity)
	// parents, when non-nil, parallels hubIDs: the next hop from the
	// vertex toward each hub on one shortest path (-1 for self entries and
	// sentinel slots). It is what AppendPath unpacks witness paths from.
	parents []graph.NodeID
	// ref, when non-nil, is the mapped container at least one of the
	// columns above aliases; the labeling is then a view (see Owned).
	ref *mmapio.Mapping
}

// Owned reports whether the labeling's arrays are heap-owned. A view
// (Owned() == false) aliases a mapped container: it is immutable shared
// memory with an explicit lifetime — see Release.
func (f *FlatLabeling) Owned() bool { return f.ref == nil }

// Release ends a view's lifetime and unmaps its container. The caller
// owns the contract that no query (and no slice obtained from LabelIDs,
// LabelDists or Thaw-free accessors) is in flight or used afterwards —
// the serving layer enforces it by refcounting snapshots and releasing
// only after the last in-flight query drains. Release on an owned
// labeling, and any call after the first, is a no-op returning nil.
func (f *FlatLabeling) Release() error {
	if f.ref == nil {
		return nil
	}
	return f.ref.Close()
}

// CopyOwned returns a deep, heap-owned copy of f — the copy-on-write
// escape hatch for views: the copy answers identically, allows the
// in-place mutations views refuse, and survives Release of the original.
func (f *FlatLabeling) CopyOwned() *FlatLabeling {
	c := &FlatLabeling{
		offsets: append([]int32(nil), f.offsets...),
		hubIDs:  append([]graph.NodeID(nil), f.hubIDs...),
		dists:   append([]graph.Weight(nil), f.dists...),
	}
	if f.parents != nil {
		c.parents = append([]graph.NodeID(nil), f.parents...)
	}
	return c
}

// ErrViewImmutable reports an in-place mutation attempted on a
// view-backed labeling. The mapped container may be shared with other
// processes and is read-only; CopyOwned first, then mutate the copy.
var ErrViewImmutable = errors.New("hub: labeling is a read-only mmap view (CopyOwned first)")

// Freeze builds the flat CSR/SoA form of the labeling and caches it, so
// subsequent Query/QueryVia calls on l run on the flat representation.
// Labels are canonicalized first if any label is unsorted or contains
// duplicates. The returned FlatLabeling is immutable and safe for
// concurrent queries; any later mutation of l (Add, SetLabel,
// Canonicalize) discards the cache.
func (l *Labeling) Freeze() *FlatLabeling {
	if l.flat != nil {
		return l.flat
	}
	if !l.canonical() {
		l.Canonicalize()
	}
	l.flat = l.buildFlat()
	return l.flat
}

// buildFlat constructs the flat arrays from the (canonical) labels without
// touching the cache — a pure read of l, so it is safe while other
// goroutines query l.
func (l *Labeling) buildFlat() *FlatLabeling {
	n := len(l.labels)
	total := 0
	for _, hubs := range l.labels {
		total += len(hubs)
	}
	f := &FlatLabeling{
		offsets: make([]int32, n+1),
		hubIDs:  make([]graph.NodeID, total+n),
		dists:   make([]graph.Weight, total+n),
	}
	if l.parents != nil {
		f.parents = make([]graph.NodeID, total+n)
	}
	pos := int32(0)
	for v, hubs := range l.labels {
		f.offsets[v] = pos
		for i, h := range hubs {
			f.hubIDs[pos] = h.Node
			f.dists[pos] = h.Dist
			if f.parents != nil {
				f.parents[pos] = l.parents[v][i]
			}
			pos++
		}
		f.hubIDs[pos] = flatSentinel
		f.dists[pos] = graph.Infinity
		if f.parents != nil {
			f.parents[pos] = -1
		}
		pos++
	}
	f.offsets[n] = pos
	return f
}

// Frozen reports whether l currently carries a flat representation (and
// thus answers queries on it).
func (l *Labeling) Frozen() bool { return l.flat != nil }

// canonical reports whether every label is strictly sorted by hub id.
func (l *Labeling) canonical() bool {
	for _, hubs := range l.labels {
		for i := 1; i < len(hubs); i++ {
			if hubs[i-1].Node >= hubs[i].Node {
				return false
			}
		}
	}
	return true
}

// Thaw materializes a mutable Labeling holding a copy of the flat labels
// (including the parent column, when present). The copy is always deep —
// in particular, thawing a view never aliases the mapped container, so
// the result (and anything computed from it, e.g. ComputeParents) stays
// valid after Release and never writes through the shared mapping.
func (f *FlatLabeling) Thaw() *Labeling {
	n := f.NumVertices()
	l := NewLabeling(n)
	if f.parents != nil {
		l.parents = make([][]graph.NodeID, n)
	}
	for v := 0; v < n; v++ {
		lo, hi := f.offsets[v], f.offsets[v+1]-1
		hubs := make([]Hub, hi-lo)
		for i := lo; i < hi; i++ {
			hubs[i-lo] = Hub{Node: f.hubIDs[i], Dist: f.dists[i]}
		}
		l.labels[v] = hubs
		if f.parents != nil {
			l.parents[v] = append([]graph.NodeID(nil), f.parents[lo:hi]...)
		}
	}
	return l
}

// HasParents reports whether the labeling carries the parent column that
// path unpacking (AppendPath) requires.
func (f *FlatLabeling) HasParents() bool { return f.parents != nil }

// ComputeParents attaches a parent column in place by one shortest-path
// search per distinct hub — the retrofit for labelings loaded from
// parentless (version-1) containers, without a Thaw round-trip through
// the mutable form. The stored distances must be the exact graph
// distances; a mismatch is reported and leaves f unchanged.
//
// A view-backed labeling (Owned() == false) is immutable shared memory:
// the call returns ErrViewImmutable instead of writing anywhere near the
// mapping. Copy-on-write callers do f.CopyOwned().ComputeParents(g).
func (f *FlatLabeling) ComputeParents(g *graph.Graph) error {
	if !f.Owned() {
		return ErrViewImmutable
	}
	n := f.NumVertices()
	if n != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", n, g.NumNodes())
	}
	// users[h] = vertices whose label carries hub h.
	users := make(map[graph.NodeID][]graph.NodeID)
	for v := 0; v < n; v++ {
		for _, h := range f.LabelIDs(graph.NodeID(v)) {
			users[h] = append(users[h], graph.NodeID(v))
		}
	}
	order := make([]graph.NodeID, 0, len(users))
	for h := range users {
		order = append(order, h)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	col := make([]graph.NodeID, len(f.hubIDs))
	for i := range col {
		col[i] = -1 // sentinel and self slots stay -1
	}
	err := par.FirstError(len(order), func(i int) error {
		h := order[i]
		r := sssp.Search(g, h)
		for _, v := range users[h] {
			ids := f.LabelIDs(v)
			slot := sort.Search(len(ids), func(k int) bool { return ids[k] >= h })
			pos := int(f.offsets[v]) + slot
			if r.Dist[v] != f.dists[pos] {
				return fmt.Errorf("hub: entry (%d,%d) stores distance %d, graph says %d",
					v, h, f.dists[pos], r.Dist[v])
			}
			if v != h {
				col[pos] = r.Parent[v]
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	f.parents = col
	return nil
}

// NumVertices returns the number of vertices the labeling covers.
func (f *FlatLabeling) NumVertices() int { return len(f.offsets) - 1 }

// LabelLen returns |S(v)|.
func (f *FlatLabeling) LabelLen(v graph.NodeID) int {
	return int(f.offsets[v+1] - f.offsets[v] - 1)
}

// LabelIDs returns the hub ids of S(v) sorted ascending, excluding the
// sentinel. The slice aliases internal storage and must not be modified.
func (f *FlatLabeling) LabelIDs(v graph.NodeID) []graph.NodeID {
	return f.hubIDs[f.offsets[v] : f.offsets[v+1]-1]
}

// LabelDists returns the distances parallel to LabelIDs(v). The slice
// aliases internal storage and must not be modified.
func (f *FlatLabeling) LabelDists(v graph.NodeID) []graph.Weight {
	return f.dists[f.offsets[v] : f.offsets[v+1]-1]
}

// Query decodes the distance between u and v by merging the two
// sentinel-terminated runs. It performs zero allocations and returns
// Infinity and false when the labels share no hub.
//
// The scan is branch-reduced: hub ids of distinct labels compare
// unpredictably, so the advance of the smaller cursor is computed from the
// sign bit of the id difference instead of a data-dependent branch; the
// only branches left (match, sentinel) are rare and well predicted. The
// sentinel is the maximum id, so no length checks are needed: when one
// run is exhausted the other side advances to its own sentinel and the
// cursors meet there.
//
// Skewed pairs — one run at least gallopRatio× longer than the other —
// are routed to the galloping kernel instead (see skew.go), which skips
// the long run in O(short·log long) probes.
func (f *FlatLabeling) Query(u, v graph.NodeID) (graph.Weight, bool) {
	i, j := int(f.offsets[u]), int(f.offsets[v])
	iEnd, jEnd := int(f.offsets[u+1])-1, int(f.offsets[v+1])-1
	if swap, ok := skewed(iEnd-i, jEnd-j); ok {
		var best graph.Weight
		if swap {
			best = f.mergeGallop(j, jEnd, i, iEnd, graph.Infinity)
		} else {
			best = f.mergeGallop(i, iEnd, j, jEnd, graph.Infinity)
		}
		return best, best < graph.Infinity
	}
	ids, ds := f.hubIDs, f.dists
	best := graph.Infinity
	for {
		a, b := ids[i], ids[j]
		if a == b {
			if a == flatSentinel {
				break
			}
			if d := ds[i] + ds[j]; d < best {
				best = d
			}
			i++
			j++
			continue
		}
		// lt = 1 iff a < b. The subtraction is widened to int64 so it can
		// never overflow — not an idle precaution: the sentinel is the
		// maximum *signed* id, so on a quick-validated mmap view whose
		// interior a hostile writer controls, overflow-correct ordering is
		// exactly what pins every cursor at or before its final sentinel
		// slot (see validateOffsets for the termination argument).
		lt := int(uint64(int64(a)-int64(b)) >> 63)
		i += lt
		j += 1 - lt
	}
	return best, best < graph.Infinity
}

// QueryVia is Query but also returns the minimizing hub (-1 when none).
// Like Query it routes skewed pairs to the galloping kernel; both
// kernels break distance ties toward the smallest hub id, so the
// witness never depends on which kernel the skew selected.
func (f *FlatLabeling) QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool) {
	i, j := int(f.offsets[u]), int(f.offsets[v])
	iEnd, jEnd := int(f.offsets[u+1])-1, int(f.offsets[v+1])-1
	if swap, ok := skewed(iEnd-i, jEnd-j); ok {
		var best graph.Weight
		var via graph.NodeID
		if swap {
			best, via = f.mergeGallopVia(j, jEnd, i, iEnd)
		} else {
			best, via = f.mergeGallopVia(i, iEnd, j, jEnd)
		}
		return best, via, via >= 0
	}
	ids, ds := f.hubIDs, f.dists
	best := graph.Infinity
	via := graph.NodeID(-1)
	for {
		a, b := ids[i], ids[j]
		if a == b {
			if a == flatSentinel {
				break
			}
			if d := ds[i] + ds[j]; d < best {
				best = d
				via = a
			}
			i++
			j++
			continue
		}
		lt := int(uint64(int64(a)-int64(b)) >> 63)
		i += lt
		j += 1 - lt
	}
	return best, via, via >= 0
}

// queryStream is the saved state of one in-flight merge inside
// QueryBatch: cursors, run ends (exclusive of the sentinel — the hot
// interleave never reads them, only the skew dispatch in mergeRest
// does), the running minimum, and the batch slot the result belongs to.
type queryStream struct {
	i, j, o    int
	iEnd, jEnd int
	best       graph.Weight
}

// QueryBatch answers pairs[k] = (u, v) into out[k] for every k, writing
// graph.Infinity for pairs with no common hub. out must have at least
// len(pairs) entries.
//
// Three merges are kept in flight at all times, their scans interleaved
// in one loop: the merge is latency-bound on its load→compare→advance
// dependency chain, so three independent chains overlap in the pipeline
// and roughly double throughput over repeated Query calls. Whenever one
// merge completes, the next pair of the batch is loaded into the freed
// stream. Zero allocations.
func (f *FlatLabeling) QueryBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	if len(pairs) < 3 {
		for k, p := range pairs {
			out[k], _ = f.Query(p[0], p[1])
		}
		return
	}
	ids, ds := f.hubIDs, f.dists
	var s [3]queryStream
	for t := 0; t < 3; t++ {
		s[t] = queryStream{
			i: int(f.offsets[pairs[t][0]]), j: int(f.offsets[pairs[t][1]]),
			iEnd: int(f.offsets[pairs[t][0]+1]) - 1, jEnd: int(f.offsets[pairs[t][1]+1]) - 1,
			o: t, best: graph.Infinity,
		}
	}
	k := 3 // next pair to feed into a freed stream
	for active := 3; active == 3; {
		// Hoist stream state into scalars so the hot loop runs on
		// registers; the refill bookkeeping only touches the array.
		i0, j0, b0 := s[0].i, s[0].j, s[0].best
		i1, j1, b1 := s[1].i, s[1].j, s[1].best
		i2, j2, b2 := s[2].i, s[2].j, s[2].best
		fin := -1
		for fin < 0 {
			a0, c0 := ids[i0], ids[j0]
			a1, c1 := ids[i1], ids[j1]
			a2, c2 := ids[i2], ids[j2]
			if a0 == c0 {
				// The sentinel only ever surfaces as a match, so stream
				// completion rides the rare match branch instead of
				// costing a comparison every iteration.
				if a0 == flatSentinel {
					fin = 0
					break
				}
				if d := ds[i0] + ds[j0]; d < b0 {
					b0 = d
				}
				i0++
				j0++
			} else {
				lt := int(uint64(int64(a0)-int64(c0)) >> 63)
				i0 += lt
				j0 += 1 - lt
			}
			if a1 == c1 {
				if a1 == flatSentinel {
					fin = 1
					break
				}
				if d := ds[i1] + ds[j1]; d < b1 {
					b1 = d
				}
				i1++
				j1++
			} else {
				lt := int(uint64(int64(a1)-int64(c1)) >> 63)
				i1 += lt
				j1 += 1 - lt
			}
			if a2 == c2 {
				if a2 == flatSentinel {
					fin = 2
					break
				}
				if d := ds[i2] + ds[j2]; d < b2 {
					b2 = d
				}
				i2++
				j2++
			} else {
				lt := int(uint64(int64(a2)-int64(c2)) >> 63)
				i2 += lt
				j2 += 1 - lt
			}
		}
		s[0].i, s[0].j, s[0].best = i0, j0, b0
		s[1].i, s[1].j, s[1].best = i1, j1, b1
		s[2].i, s[2].j, s[2].best = i2, j2, b2
		out[s[fin].o] = s[fin].best
		if k < len(pairs) {
			s[fin] = queryStream{
				i: int(f.offsets[pairs[k][0]]), j: int(f.offsets[pairs[k][1]]),
				iEnd: int(f.offsets[pairs[k][0]+1]) - 1, jEnd: int(f.offsets[pairs[k][1]+1]) - 1,
				o: k, best: graph.Infinity,
			}
			k++
		} else {
			s[fin] = s[2]
			active = 2
		}
	}
	// Batch exhausted: drain the two remaining streams single-file.
	out[s[0].o] = f.mergeRest(s[0].i, s[0].iEnd, s[0].j, s[0].jEnd, s[0].best)
	out[s[1].o] = f.mergeRest(s[1].i, s[1].iEnd, s[1].j, s[1].jEnd, s[1].best)
}

// mergeRest continues a single merge from saved cursors. The remaining
// tails decide the kernel: skewed tails gallop, balanced tails run the
// sentinel-terminated linear scan (which never consults the ends).
func (f *FlatLabeling) mergeRest(i, iEnd, j, jEnd int, best graph.Weight) graph.Weight {
	if swap, ok := skewed(iEnd-i, jEnd-j); ok {
		if swap {
			return f.mergeGallop(j, jEnd, i, iEnd, best)
		}
		return f.mergeGallop(i, iEnd, j, jEnd, best)
	}
	return f.mergeLinear(i, j, best)
}

// mergeLinear is the branch-reduced sentinel-terminated scan from saved
// cursors — the balanced-tail half of mergeRest, and the baseline the
// gallop crossover benchmark measures against.
func (f *FlatLabeling) mergeLinear(i, j int, best graph.Weight) graph.Weight {
	ids, ds := f.hubIDs, f.dists
	for {
		a, b := ids[i], ids[j]
		if a == b {
			if a == flatSentinel {
				return best
			}
			if d := ds[i] + ds[j]; d < best {
				best = d
			}
			i++
			j++
			continue
		}
		lt := int(uint64(int64(a)-int64(b)) >> 63)
		i += lt
		j += 1 - lt
	}
}

// ComputeStats returns size statistics for the flat labeling (sentinels
// excluded).
func (f *FlatLabeling) ComputeStats() Stats {
	s := Stats{Vertices: f.NumVertices()}
	for v := 0; v < s.Vertices; v++ {
		sz := f.LabelLen(graph.NodeID(v))
		s.Total += sz
		if sz > s.Max {
			s.Max = sz
		}
	}
	if s.Vertices > 0 {
		s.Avg = float64(s.Total) / float64(s.Vertices)
	}
	return s
}

// NumHubs returns the total number of label entries across all vertices,
// sentinels excluded, in O(1) — it equals ComputeStats().Total.
func (f *FlatLabeling) NumHubs() int { return len(f.hubIDs) - f.NumVertices() }

// SpaceBytes returns the exact storage of the flat arrays: 4 bytes per
// offset plus 8 bytes per slot (hub id + distance), sentinels included,
// plus 4 more per slot when the parent column is present.
func (f *FlatLabeling) SpaceBytes() int64 {
	return int64(len(f.offsets))*4 + int64(len(f.hubIDs))*4 + int64(len(f.dists))*4 +
		int64(len(f.parents))*4
}

// QueryBytes returns the bytes a distance merge can touch — the offsets
// and the hub/distance columns, excluding the parent column (see the
// LabelStore contract; E24 compares this figure across representations).
func (f *FlatLabeling) QueryBytes() int64 {
	return f.SpaceBytes() - 4*int64(len(f.parents))
}

// FromSlices builds a canonical, frozen Labeling directly from raw
// per-vertex hub slices, taking ownership of them. It is the emit path the
// construction algorithms use so their output carries the flat
// representation without an extra copy of the mutable form.
func FromSlices(labels [][]Hub) *Labeling {
	l := &Labeling{labels: labels}
	l.Canonicalize()
	l.Freeze()
	return l
}

// FromSlicesParents is FromSlices for builders that also recorded the
// parent column during their shortest-path passes: parents[v][i] is the
// next hop from v toward labels[v][i] (-1 for self entries). Both slices
// are owned by the result and canonicalized in lockstep.
func FromSlicesParents(labels [][]Hub, parents [][]graph.NodeID) *Labeling {
	if len(parents) != len(labels) {
		panic("hub: parent column does not parallel the labels")
	}
	for v := range labels {
		if len(parents[v]) != len(labels[v]) {
			panic(fmt.Sprintf("hub: vertex %d has %d parents for %d hubs", v, len(parents[v]), len(labels[v])))
		}
	}
	l := &Labeling{labels: labels, parents: parents}
	l.Canonicalize()
	l.Freeze()
	return l
}

// AssembleSlicesParents is FromSlicesParents without the final Freeze: the
// result is canonical but carries no flat copy. It is the emit path for
// builds that stream straight into a container (index.SaveStreaming) —
// freezing a million-vertex labeling just to write it out would double
// peak RSS for nothing. Freeze the result when in-RAM queries are needed.
func AssembleSlicesParents(labels [][]Hub, parents [][]graph.NodeID) *Labeling {
	if len(parents) != len(labels) {
		panic("hub: parent column does not parallel the labels")
	}
	for v := range labels {
		if len(parents[v]) != len(labels[v]) {
			panic(fmt.Sprintf("hub: vertex %d has %d parents for %d hubs", v, len(parents[v]), len(labels[v])))
		}
	}
	l := &Labeling{labels: labels, parents: parents}
	l.Canonicalize()
	return l
}

// sortHubs sorts a label slice by (hub id, distance) — the canonical
// per-vertex order.
func sortHubs(hubs []Hub) {
	sort.Slice(hubs, func(i, j int) bool {
		if hubs[i].Node != hubs[j].Node {
			return hubs[i].Node < hubs[j].Node
		}
		return hubs[i].Dist < hubs[j].Dist
	})
}

// sortHubsParents is sortHubs with the parent column permuted in lockstep.
func sortHubsParents(hubs []Hub, parents []graph.NodeID) {
	sort.Sort(&hubParentSorter{h: hubs, p: parents})
}

type hubParentSorter struct {
	h []Hub
	p []graph.NodeID
}

func (s *hubParentSorter) Len() int { return len(s.h) }
func (s *hubParentSorter) Less(i, j int) bool {
	if s.h[i].Node != s.h[j].Node {
		return s.h[i].Node < s.h[j].Node
	}
	return s.h[i].Dist < s.h[j].Dist
}
func (s *hubParentSorter) Swap(i, j int) {
	s.h[i], s.h[j] = s.h[j], s.h[i]
	s.p[i], s.p[j] = s.p[j], s.p[i]
}

// validate asserts the full structural invariants of the flat arrays. It
// must stay fully defensive — ReadContainer runs it on untrusted input
// after the checksum passes, so every index derived from the data is
// bounds-checked before use. It is validateRuns plus validateEntries;
// the split exists for the mmap open path, which runs only the O(n) run
// checks (see OpenContainerMmap for why that suffices for memory
// safety) and leaves the O(slots) entry scan to Validate callers.
func (f *FlatLabeling) validate() error {
	if err := f.validateRuns(); err != nil {
		return err
	}
	return f.validateEntries()
}

// Validate checks every structural invariant of the labeling — the runs
// and every interior entry. Decoded containers are always validated on
// load; for mmap views, which are opened with only the cheap run checks,
// Validate is the opt-in full audit.
func (f *FlatLabeling) Validate() error { return f.validate() }

// validateOffsets asserts the invariants that make every query path
// memory-safe on arbitrary column data, touching only the offsets column
// (a few KB) plus one final slot — never the label pages themselves.
// This is the whole validation budget of the zero-copy open, so the
// safety argument is spelled out:
//
//   - lengths agree and offsets form a monotone, in-bounds cover with
//     non-empty runs, so every slice a query takes (LabelIDs, LabelDists,
//     nextHop, Thaw) is within the arrays;
//   - the very last slot holds the sentinel, the maximum signed int32.
//     A merge cursor advances only while strictly below the other
//     cursor's value under overflow-safe signed comparison (the widened
//     advance in Query and friends — a hostile negative id must order
//     below the sentinel, not wrap past it), or on an equal non-sentinel
//     match; a cursor sitting on the final slot therefore carries the
//     maximum value and can never advance again, and two cursors meeting
//     there terminate the scan. No interior sentinel is needed for
//     safety — interior checks exist for integrity, in validateRuns and
//     validateEntries.
//
// Hostile interiors past these checks can only produce wrong answers
// (the quick-open trust model, see OpenContainerMmap), never an
// out-of-bounds access.
func (f *FlatLabeling) validateOffsets() error {
	n := f.NumVertices()
	if n < 0 {
		return fmt.Errorf("hub: flat labeling missing offsets array")
	}
	if len(f.hubIDs) != len(f.dists) {
		return fmt.Errorf("hub: flat arrays disagree: %d ids, %d dists", len(f.hubIDs), len(f.dists))
	}
	if f.parents != nil && len(f.parents) != len(f.hubIDs) {
		return fmt.Errorf("hub: parent column has %d slots, labels have %d", len(f.parents), len(f.hubIDs))
	}
	if f.offsets[0] != 0 {
		return fmt.Errorf("hub: first offset is %d, want 0", f.offsets[0])
	}
	if int(f.offsets[n]) != len(f.hubIDs) {
		return fmt.Errorf("hub: last offset %d does not cover %d slots", f.offsets[n], len(f.hubIDs))
	}
	for v := 0; v < n; v++ {
		lo, hi := f.offsets[v], f.offsets[v+1]
		if hi <= lo || lo < 0 || int(hi) > len(f.hubIDs) {
			return fmt.Errorf("hub: vertex %d has invalid run [%d,%d)", v, lo, hi)
		}
	}
	if last := len(f.hubIDs) - 1; last >= 0 && f.hubIDs[last] != flatSentinel {
		return fmt.Errorf("hub: final slot holds %d, not the sentinel", f.hubIDs[last])
	}
	return nil
}

// validateRuns asserts the O(n) shape invariants: validateOffsets plus
// every per-vertex run sentinel-terminated (with Infinity, and -1 in the
// parent column).
func (f *FlatLabeling) validateRuns() error {
	if err := f.validateOffsets(); err != nil {
		return err
	}
	n := f.NumVertices()
	for v := 0; v < n; v++ {
		hi := f.offsets[v+1]
		if f.hubIDs[hi-1] != flatSentinel || f.dists[hi-1] != graph.Infinity {
			return fmt.Errorf("hub: vertex %d run not sentinel-terminated", v)
		}
		if f.parents != nil && f.parents[hi-1] != -1 {
			return fmt.Errorf("hub: vertex %d sentinel slot carries parent %d", v, f.parents[hi-1])
		}
	}
	return nil
}

// validateEntries asserts the O(slots) interior invariants (ids sorted
// and in range, distances in range, parents in range). It assumes
// validateRuns already passed.
func (f *FlatLabeling) validateEntries() error {
	n := f.NumVertices()
	for v := 0; v < n; v++ {
		lo, hi := f.offsets[v], f.offsets[v+1]
		for i := lo; i < hi-1; i++ {
			// Hubs are vertices of the same graph, so ids must lie in
			// [0, n) — merely being below the sentinel still lets a
			// hostile container smuggle out-of-graph ids that panic any
			// caller indexing adjacency by hub.
			if f.hubIDs[i] < 0 || int(f.hubIDs[i]) >= n {
				return fmt.Errorf("hub: vertex %d hub id out of range at slot %d", v, i)
			}
			if i > lo && f.hubIDs[i-1] >= f.hubIDs[i] {
				return fmt.Errorf("hub: vertex %d label unsorted at slot %d", v, i)
			}
			// Distances above Infinity could overflow the int32 sum in the
			// merge; negatives would serve nonsense. Infinity itself is
			// allowed (and overflow-safe by its choice of value).
			if f.dists[i] < 0 || f.dists[i] > graph.Infinity {
				return fmt.Errorf("hub: vertex %d distance out of range at slot %d", v, i)
			}
			if f.parents != nil {
				// A self entry (hub == vertex) has no hop and must store -1;
				// every other entry names a real next-hop vertex distinct
				// from v — AppendPath indexes labels by it, so a hostile
				// container must not smuggle ids that escape [0, n) or
				// self-loop the walk.
				p := f.parents[i]
				if f.hubIDs[i] == graph.NodeID(v) {
					if p != -1 {
						return fmt.Errorf("hub: vertex %d self entry carries parent %d", v, p)
					}
				} else if p < 0 || int(p) >= n || p == graph.NodeID(v) {
					return fmt.Errorf("hub: vertex %d parent out of range at slot %d", v, i)
				}
			}
		}
	}
	return nil
}
