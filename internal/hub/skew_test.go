package hub

import (
	"math/rand"
	"testing"

	"hublab/internal/graph"
)

// skewedFlat builds a labeling with extreme run-length skew: most
// vertices carry a handful of hubs, every 31st carries hundreds — the
// shape frequency-ranked orderings produce, and the one that routes
// pairs through the galloping kernel. Hub 0 is shared by everyone so
// queries stay connected; a sprinkle of private hubs creates matches at
// unpredictable positions inside the long runs.
func skewedFlat(t testing.TB, n int, seed int64) *FlatLabeling {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := NewLabeling(n)
	for v := 0; v < n; v++ {
		vid := graph.NodeID(v)
		l.Add(vid, vid, 0)
		l.Add(vid, 0, graph.Weight(1+rng.Int31n(50)))
		per := 1 + rng.Intn(3)
		if v%31 == 0 {
			per = 20*gallopRatio + rng.Intn(100)
		}
		seen := map[graph.NodeID]bool{vid: true, 0: true}
		for k := 0; k < per; k++ {
			h := graph.NodeID(rng.Intn(n))
			if seen[h] {
				continue
			}
			seen[h] = true
			l.Add(vid, h, graph.Weight(rng.Int31n(1000)))
		}
	}
	l.Canonicalize()
	return l.Freeze()
}

// refQueryVia is the quadratic reference merge: scan both full labels,
// keep the minimum distance with ties broken toward the smallest hub id
// — the contract both the linear and the galloping kernels must meet.
func refQueryVia(f *FlatLabeling, u, v graph.NodeID) (graph.Weight, graph.NodeID) {
	idsU, dsU := f.LabelIDs(u), f.LabelDists(u)
	idsV, dsV := f.LabelIDs(v), f.LabelDists(v)
	best, via := graph.Infinity, graph.NodeID(-1)
	for i, h := range idsU {
		for j, g := range idsV {
			if h != g {
				continue
			}
			if d := dsU[i] + dsV[j]; d < best || (d == best && via >= 0 && h < via) {
				best, via = d, h
			}
		}
	}
	return best, via
}

// TestSkewQueryMatchesReference drives Query/QueryVia/QueryBatch over a
// heavily skewed labeling and checks every answer (distance and
// witness) against the quadratic reference. It also counts how many
// probed pairs actually crossed the gallop threshold, so threshold
// drift can never quietly turn this into a linear-kernel-only test.
func TestSkewQueryMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		f := skewedFlat(t, 400, seed)
		rng := rand.New(rand.NewSource(seed * 977))
		n := f.NumVertices()
		var pairs [][2]graph.NodeID
		for k := 0; k < 600; k++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if k%3 == 0 {
				u = graph.NodeID((rng.Intn(n/31) * 31) % n) // hot vertex: long run
			}
			pairs = append(pairs, [2]graph.NodeID{u, v})
		}
		galloped := 0
		for _, p := range pairs {
			if _, ok := skewed(f.LabelLen(p[0]), f.LabelLen(p[1])); ok {
				galloped++
			}
			wantD, wantVia := refQueryVia(f, p[0], p[1])
			gotD, ok := f.Query(p[0], p[1])
			if gotD != wantD || ok != (wantD < graph.Infinity) {
				t.Fatalf("Query(%d,%d) = %d,%v want %d", p[0], p[1], gotD, ok, wantD)
			}
			gotD, gotVia, ok := f.QueryVia(p[0], p[1])
			if gotD != wantD || gotVia != wantVia || ok != (wantVia >= 0) {
				t.Fatalf("QueryVia(%d,%d) = %d,%d,%v want %d,%d",
					p[0], p[1], gotD, gotVia, ok, wantD, wantVia)
			}
		}
		if galloped == 0 {
			t.Fatal("no probed pair crossed the gallop threshold — the skew kernel went untested")
		}
		out := make([]graph.Weight, len(pairs))
		f.QueryBatch(pairs, out)
		for k, p := range pairs {
			if want, _ := refQueryVia(f, p[0], p[1]); out[k] != want {
				t.Fatalf("QueryBatch[%d] (%d,%d) = %d want %d", k, p[0], p[1], out[k], want)
			}
		}
	}
}

// TestGallopKernelDirect pins the galloping kernel itself (both
// short-first orderings, empty windows, running best carried in) against
// the reference, independent of the dispatch threshold.
func TestGallopKernelDirect(t *testing.T) {
	f := skewedFlat(t, 300, 3)
	n := f.NumVertices()
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 400; k++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		iu, ju := int(f.offsets[u]), int(f.offsets[u+1])-1
		iv, jv := int(f.offsets[v]), int(f.offsets[v+1])-1
		want, _ := refQueryVia(f, u, v)
		if got := f.mergeGallop(iu, ju, iv, jv, graph.Infinity); got != want {
			t.Fatalf("mergeGallop(u-short) (%d,%d) = %d want %d", u, v, got, want)
		}
		if got := f.mergeGallop(iv, jv, iu, ju, graph.Infinity); got != want {
			t.Fatalf("mergeGallop(v-short) (%d,%d) = %d want %d", u, v, got, want)
		}
		if got, via := f.mergeGallopVia(iu, ju, iv, jv); got != want {
			t.Fatalf("mergeGallopVia (%d,%d) = %d,%d want %d", u, v, got, via, want)
		}
		// A best carried in from a partial linear scan must only improve.
		if got := f.mergeGallop(iu, ju, iv, jv, 1); got > 1 {
			t.Fatalf("mergeGallop ignored carried-in best: %d", got)
		}
	}
	// Empty windows terminate immediately with the carried best.
	if got := f.mergeGallop(3, 3, 0, int(f.offsets[1])-1, 42); got != 42 {
		t.Fatalf("empty short window: %d want 42", got)
	}
	if got := f.mergeGallop(0, int(f.offsets[1])-1, 5, 5, 42); got != 42 {
		t.Fatalf("empty long window: %d want 42", got)
	}
}
