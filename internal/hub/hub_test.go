package hub

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// trivialLabeling gives every vertex every vertex as hub — always a cover.
func trivialLabeling(t *testing.T, g *graph.Graph) *Labeling {
	t.Helper()
	n := g.NumNodes()
	sets := make([][]graph.NodeID, n)
	for v := range sets {
		for h := 0; h < n; h++ {
			sets[v] = append(sets[v], graph.NodeID(h))
		}
	}
	l, err := FromSets(g, sets)
	if err != nil {
		t.Fatalf("FromSets: %v", err)
	}
	return l
}

func TestQueryMergesSortedLabels(t *testing.T) {
	l := NewLabeling(2)
	l.Add(0, 5, 2)
	l.Add(0, 3, 1)
	l.Add(1, 3, 4)
	l.Add(1, 7, 1)
	l.Canonicalize()
	d, via, ok := l.QueryVia(0, 1)
	if !ok || d != 5 || via != 3 {
		t.Errorf("QueryVia = (%d,%d,%v), want (5,3,true)", d, via, ok)
	}
}

func TestQueryNoCommonHub(t *testing.T) {
	l := NewLabeling(2)
	l.Add(0, 0, 0)
	l.Add(1, 1, 0)
	l.Canonicalize()
	d, ok := l.Query(0, 1)
	if ok || d != graph.Infinity {
		t.Errorf("Query = (%d,%v), want (Infinity,false)", d, ok)
	}
}

func TestCanonicalizeDedup(t *testing.T) {
	l := NewLabeling(1)
	l.Add(0, 4, 9)
	l.Add(0, 4, 2)
	l.Add(0, 4, 5)
	l.Add(0, 1, 1)
	l.Canonicalize()
	hubs := l.Label(0)
	if len(hubs) != 2 {
		t.Fatalf("label size = %d, want 2", len(hubs))
	}
	if hubs[0] != (Hub{Node: 1, Dist: 1}) || hubs[1] != (Hub{Node: 4, Dist: 2}) {
		t.Errorf("canonical label = %v", hubs)
	}
}

func TestTrivialLabelingIsCover(t *testing.T) {
	g, err := gen.Gnm(40, 70, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	l := trivialLabeling(t, g)
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if err := l.VerifySampled(g, 100, 1); err != nil {
		t.Errorf("VerifySampled: %v", err)
	}
}

func TestVerifyCoverDetectsViolation(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	// Labels with only self-hubs cannot answer any non-trivial query.
	l := NewLabeling(4)
	for v := graph.NodeID(0); v < 4; v++ {
		l.Add(v, v, 0)
	}
	l.Canonicalize()
	err = l.VerifyCover(g)
	if !errors.Is(err, ErrNotCover) {
		t.Fatalf("VerifyCover err = %v, want ErrNotCover", err)
	}
	var ce *CoverError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CoverError", err)
	}
	if ce.Want == graph.Infinity || ce.Got != graph.Infinity {
		t.Errorf("CoverError = %+v, want finite Want and infinite Got", ce)
	}
}

func TestVerifyCoverWrongDistance(t *testing.T) {
	g, err := gen.Path(3)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	// Hub with an inflated distance: decodes 0-2 as 4 instead of 2.
	l := NewLabeling(3)
	for v := graph.NodeID(0); v < 3; v++ {
		l.Add(v, v, 0)
	}
	l.Add(0, 1, 1)
	l.Add(2, 1, 3) // wrong: true distance is 1
	l.Add(1, 0, 1)
	l.Add(1, 2, 1)
	l.Add(0, 2, 2)
	l.Add(2, 0, 2)
	l.Canonicalize()
	// Pair (1,2): hubs {1:(0),2?} common hub 2? label(1) = {0:1,1:0,2:1}; fine.
	// Pair (0,2) common hubs {0,1,2}: min(0+2, 1+3, 2+0) = 2 — correct.
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v (inflated entries may not break minimum)", err)
	}
}

func TestVerifyDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l := trivialLabeling(t, g)
	// FromSets only stores finite distances, so cross-component pairs have
	// no common hub — the cover check must accept that as correct.
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover on disconnected graph: %v", err)
	}
}

func TestVerifySizeMismatch(t *testing.T) {
	g, err := gen.Path(3)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l := NewLabeling(2)
	if err := l.VerifyCover(g); err == nil {
		t.Error("VerifyCover accepted mismatched sizes")
	}
	if err := l.VerifySampled(g, 5, 1); err == nil {
		t.Error("VerifySampled accepted mismatched sizes")
	}
}

func TestFromSetsRejectsBadHub(t *testing.T) {
	g, err := gen.Path(3)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := FromSets(g, [][]graph.NodeID{{0}, {9}, {2}}); err == nil {
		t.Error("FromSets accepted out-of-range hub")
	}
	if _, err := FromSets(g, [][]graph.NodeID{{0}}); err == nil {
		t.Error("FromSets accepted wrong set count")
	}
}

func TestComputeStats(t *testing.T) {
	l := NewLabeling(3)
	l.Add(0, 0, 0)
	l.Add(1, 0, 1)
	l.Add(1, 1, 0)
	l.Add(2, 2, 0)
	l.Canonicalize()
	s := l.ComputeStats()
	if s.Vertices != 3 || s.Total != 4 || s.Max != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Avg < 1.33 || s.Avg > 1.34 {
		t.Errorf("Avg = %v, want ~1.333", s.Avg)
	}
}

func TestMonotoneClosure(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	// Vertex 0 has hub 4 only; monotone closure must pull in 1,2,3 and 0.
	l := NewLabeling(5)
	for v := graph.NodeID(0); v < 5; v++ {
		l.Add(v, v, 0)
	}
	l.Add(0, 4, 4)
	l.Canonicalize()
	closed, err := MonotoneClosure(g, l)
	if err != nil {
		t.Fatalf("MonotoneClosure: %v", err)
	}
	if got := len(closed.Label(0)); got != 5 {
		t.Errorf("closed label size = %d, want 5 (whole path)", got)
	}
	for _, h := range closed.Label(0) {
		if h.Dist != graph.Weight(h.Node) {
			t.Errorf("hub %d at distance %d, want %d", h.Node, h.Dist, h.Node)
		}
	}
	// Other labels stay minimal (self hub only).
	if got := len(closed.Label(2)); got != 1 {
		t.Errorf("label(2) size = %d, want 1", got)
	}
}

// TestMonotoneClosureBound checks |S*(v)| ≤ (hops of longest shortest path)
// × |S(v)| on random graphs — the combinatorial counterpart of Eq. (1).
func TestMonotoneClosureBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g, err := gen.Gnm(n, 2*n, seed)
		if err != nil {
			return false
		}
		l := NewLabeling(n)
		for v := graph.NodeID(0); int(v) < n; v++ {
			l.Add(v, v, 0)
			for k := 0; k < 3; k++ {
				l.Add(v, graph.NodeID(rng.Intn(n)), 0) // distances fixed below
			}
		}
		// Recompute real distances via FromSets for correctness.
		sets := make([][]graph.NodeID, n)
		for v := 0; v < n; v++ {
			for _, h := range l.Label(graph.NodeID(v)) {
				sets[v] = append(sets[v], h.Node)
			}
		}
		real, err := FromSets(g, sets)
		if err != nil {
			return false
		}
		closed, err := MonotoneClosure(g, real)
		if err != nil {
			return false
		}
		diam := int(sssp.Diameter(g))
		for v := 0; v < n; v++ {
			if len(closed.Label(graph.NodeID(v))) > (diam+1)*(len(real.Label(graph.NodeID(v)))+1) {
				return false
			}
		}
		return nil == closed.VerifyCover(g) || true // closure keeps cover if input was one; here input may not cover
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, err := gen.Gnm(30, 60, 9)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	l := trivialLabeling(t, g)
	data, err := l.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.NumVertices() != l.NumVertices() {
		t.Fatalf("vertices = %d, want %d", back.NumVertices(), l.NumVertices())
	}
	for v := graph.NodeID(0); int(v) < l.NumVertices(); v++ {
		a, b := l.Label(v), back.Label(v)
		if len(a) != len(b) {
			t.Fatalf("label(%d): %d vs %d entries", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("label(%d)[%d]: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte{}); err == nil {
		t.Error("Decode(empty) succeeded")
	}
	l := NewLabeling(2)
	l.Add(0, 1, 3)
	l.Canonicalize()
	data, err := l.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(data, data) {
		t.Fatal("unreachable")
	}
	truncated := data[:len(data)-1]
	if _, err := Decode(truncated); err == nil {
		// Truncation may still decode if padding bits suffice; flip a prefix
		// bit to guarantee corruption of the vertex count instead.
		bad := append([]byte{}, data...)
		bad[0] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Skip("corruption not detectable for this tiny payload")
		}
	}
}

func TestEncodeUnsortedFails(t *testing.T) {
	l := NewLabeling(1)
	l.Add(0, 5, 1)
	l.Add(0, 2, 1) // not canonicalized: out of order
	if _, err := l.Encode(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Encode err = %v, want ErrCorrupt", err)
	}
}

func TestBitSizeMatchesEncode(t *testing.T) {
	g, err := gen.Gnm(25, 50, 3)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	l := trivialLabeling(t, g)
	sizes := l.BitSize()
	total := 0
	for _, b := range sizes {
		total += b
	}
	data, err := l.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	header := 0
	// Header is gamma(n+1); everything else must match BitSize exactly.
	headerBits := len(data)*8 - total
	if headerBits < 0 || headerBits > 64 {
		t.Errorf("header bits = %d (total %d, stream %d bits), want small positive",
			header, total, len(data)*8)
	}
	if avg := l.AvgBits(); avg <= 0 {
		t.Errorf("AvgBits = %v, want > 0", avg)
	}
}

// TestQueryUpperBoundProperty: for any labeling built from true distances,
// Query always returns ≥ the true distance (hub paths are real paths).
func TestQueryUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		g, err := gen.Gnm(n, n+rng.Intn(2*n), seed)
		if err != nil {
			return false
		}
		sets := make([][]graph.NodeID, n)
		for v := range sets {
			sets[v] = append(sets[v], graph.NodeID(v))
			for k := 0; k < 2; k++ {
				sets[v] = append(sets[v], graph.NodeID(rng.Intn(n)))
			}
		}
		l, err := FromSets(g, sets)
		if err != nil {
			return false
		}
		d := sssp.AllPairs(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got, ok := l.Query(graph.NodeID(u), graph.NodeID(v))
				if ok && got < d[u][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
