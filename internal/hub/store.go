package hub

import (
	"io"

	"hublab/internal/graph"
)

// LabelStore is the pluggable label-storage abstraction the serving
// layers query through: a frozen, immutable hub labeling in some
// concrete representation. Two representations exist —
//
//   - FlatLabeling ("expanded"): sentinel-terminated int32 CSR columns,
//     the fastest merge kernel and the historical container formats 1–3;
//   - CompactLabeling ("compact"): frequency-ranked hub-id remapping
//     over narrow delta-encoded byte columns with escape slots, the
//     version-4 container, roughly 3–4× smaller resident bytes at a
//     modest merge-cost premium.
//
// Every implementation answers the same queries with identical results
// on the same labeling (pinned by the indextest property harness): the
// decoded distances, the unpacked witness paths, and the eccentricities
// agree entry for entry. What differs is storage layout, SpaceBytes,
// and the per-representation invariants documented on each method.
//
// Kernel assumptions per representation (what the merge/path/ecc code
// may rely on) are part of each concrete type's contract, not of this
// interface: the flat kernel assumes sentinel-terminated runs and
// offsets validated by validateOffsets; the compact kernel assumes
// monotone entry/escape CSRs and a remap table validated to be a
// permutation, and bounds-checks every escape-slot read. Both therefore
// stay memory-safe on quick-validated mmap views with hostile
// interiors — wrong answers are possible there, out-of-bounds access is
// not (see OpenContainerMmap for the trust model).
type LabelStore interface {
	// NumVertices returns the number of vertices the labeling covers.
	NumVertices() int
	// NumHubs returns the total label entries across all vertices
	// (sentinels and encoding overhead excluded), in O(1).
	NumHubs() int
	// LabelLen returns |S(v)|.
	LabelLen(v graph.NodeID) int
	// Label returns the hub ids and distances of S(v), using idBuf/dBuf
	// as backing storage when the representation must decode (pass nil
	// to allocate, or reuse growing buffers across calls). The expanded
	// representation returns aliasing views of its columns and ignores
	// the buffers. Hub ids are always original vertex ids; the entry
	// ORDER is representation-specific (expanded: ascending id; compact:
	// ascending frequency rank) — callers needing a fixed order must
	// sort.
	Label(v graph.NodeID, idBuf []graph.NodeID, dBuf []graph.Weight) ([]graph.NodeID, []graph.Weight)
	// Query returns the exact distance between u and v (false when the
	// labels share no hub). Zero allocations.
	Query(u, v graph.NodeID) (graph.Weight, bool)
	// QueryVia is Query but also returns the minimizing hub as an
	// original vertex id, ties broken toward the smallest id (-1/false
	// when none) — both representations agree exactly, which is what
	// keeps unpacked paths identical across them.
	QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool)
	// QueryBatch answers pairs[k] into out[k], Infinity for no common
	// hub. out must have at least len(pairs) entries.
	QueryBatch(pairs [][2]graph.NodeID, out []graph.Weight)
	// HasParents reports whether the parent column for path unpacking is
	// present.
	HasParents() bool
	// NextHop returns the stored next hop from v toward hub h (-1 for
	// the self entry); ok is false when h ∉ S(v) or there are no parents.
	NextHop(v, h graph.NodeID) (graph.NodeID, bool)
	// AppendPath appends one shortest u–v path to dst (see
	// FlatLabeling.AppendPath for the full contract and error cases).
	AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error)
	// ComputeStats returns label-size statistics.
	ComputeStats() Stats
	// SpaceBytes returns the exact resident storage of the
	// representation's arrays, in bytes — heap or mapped.
	SpaceBytes() int64
	// QueryBytes returns the resident working set of a distance-only
	// workload: every column the merge kernel reads, excluding the
	// parent column (on a mapped container only path queries fault
	// those pages in).
	QueryBytes() int64
	// Validate runs the full structural audit (every interior entry, not
	// just the O(n) quick-open checks).
	Validate() error
	// Owned reports whether storage is heap-owned; false for mmap views,
	// which carry the Release lifetime.
	Owned() bool
	// Release unmaps a view's container (no-op when owned). No query may
	// be in flight or issued afterwards.
	Release() error
	// Thaw materializes a mutable Labeling as a deep copy — never
	// aliasing a mapped container, in any representation.
	Thaw() *Labeling
	// WriteContainer serializes the labeling in the container format
	// selected by opts, converting representation as needed.
	WriteContainer(w io.Writer, opts ContainerOptions) (int64, error)
	// Representation names the concrete storage form: RepExpanded or
	// RepCompact.
	Representation() string
}

// Representation names returned by LabelStore.Representation.
const (
	RepExpanded = "expanded"
	RepCompact  = "compact"
)

var (
	_ LabelStore = (*FlatLabeling)(nil)
	_ LabelStore = (*CompactLabeling)(nil)
)

// Label implements LabelStore for the expanded representation: the
// returned slices alias the flat columns (the buffers are ignored) and
// are sorted ascending by hub id.
func (f *FlatLabeling) Label(v graph.NodeID, _ []graph.NodeID, _ []graph.Weight) ([]graph.NodeID, []graph.Weight) {
	return f.LabelIDs(v), f.LabelDists(v)
}

// Representation implements LabelStore.
func (f *FlatLabeling) Representation() string { return RepExpanded }
