package hub

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"

	"hublab/internal/graph"
)

// memWriterAt is an in-memory io.WriterAt that grows on demand, for
// comparing streamed bytes against the reference writer.
type memWriterAt struct {
	buf []byte
}

func (m *memWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if need := off + int64(len(p)); need > int64(len(m.buf)) {
		m.buf = append(m.buf, make([]byte, need-int64(len(m.buf)))...)
	}
	copy(m.buf[off:], p)
	return len(p), nil
}

func TestCrc32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, split := range []struct{ a, b int }{
		{0, 0}, {0, 17}, {17, 0}, {1, 1}, {13, 4096}, {4096, 13}, {100000, 3}, {7, 1 << 20},
	} {
		data := make([]byte, split.a+split.b)
		rng.Read(data)
		want := crc32.Checksum(data, castagnoli)
		crcA := crc32.Checksum(data[:split.a], castagnoli)
		crcB := crc32.Checksum(data[split.a:], castagnoli)
		if got := crc32Combine(crcA, crcB, int64(split.b)); got != want {
			t.Errorf("combine(%d,%d): got %#x, want %#x", split.a, split.b, got, want)
		}
	}
}

// streamTestLabeling builds a small canonical labeling with a parent
// column: hub sets are downward-closed prefixes {0..k} so parents can
// point at hub 0 trivially while staying structurally valid.
func streamTestLabeling(t *testing.T, n int, withParents bool) *Labeling {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	labels := make([][]Hub, n)
	parents := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		k := rng.Intn(5)
		for h := 0; h <= k && h < n; h++ {
			d := graph.Weight(rng.Intn(50))
			p := graph.NodeID(-1)
			if graph.NodeID(h) != graph.NodeID(v) {
				d++ // non-self entries get a nonzero distance for variety
				p = graph.NodeID((v + 1) % n)
				if p == graph.NodeID(v) {
					p = graph.NodeID((v + 2) % n)
				}
			} else {
				d = 0
			}
			labels[v] = append(labels[v], Hub{Node: graph.NodeID(h), Dist: d})
			parents[v] = append(parents[v], p)
		}
	}
	if !withParents {
		l := &Labeling{labels: labels}
		l.Canonicalize()
		return l
	}
	return AssembleSlicesParents(labels, parents)
}

func TestContainerWriterByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		parents bool
		opts    ContainerOptions
	}{
		{"v1-no-parents", 40, false, ContainerOptions{}},
		{"v2-parents", 40, true, ContainerOptions{}},
		{"v3-aligned", 40, true, ContainerOptions{Aligned: true}},
		{"v3-aligned-no-parents", 40, false, ContainerOptions{Aligned: true}},
		{"v1-empty", 0, false, ContainerOptions{}},
		{"v3-empty", 0, true, ContainerOptions{Aligned: true}},
		{"v2-large", 3000, true, ContainerOptions{}},
		{"v3-large", 3000, true, ContainerOptions{Aligned: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := streamTestLabeling(t, tc.n, tc.parents)
			var want bytes.Buffer
			if _, err := l.Freeze().WriteContainer(&want, tc.opts); err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			// Stream from a thawed twin so the flat form cannot leak in.
			l2 := streamTestLabeling(t, tc.n, tc.parents)
			var got memWriterAt
			total, err := l2.WriteContainerStreaming(&got, tc.opts)
			if err != nil {
				t.Fatalf("WriteContainerStreaming: %v", err)
			}
			if total != int64(len(got.buf)) {
				t.Errorf("reported %d bytes, wrote %d", total, len(got.buf))
			}
			if !bytes.Equal(got.buf, want.Bytes()) {
				t.Fatalf("streamed container differs from reference (%d vs %d bytes)", len(got.buf), want.Len())
			}
			// And the bytes round-trip through the ordinary reader.
			back, err := ReadContainer(bytes.NewReader(got.buf))
			if err != nil {
				t.Fatalf("ReadContainer: %v", err)
			}
			if back.NumVertices() != tc.n {
				t.Errorf("round-trip has %d vertices, want %d", back.NumVertices(), tc.n)
			}
		})
	}
}

func TestContainerWriterRejectsGamma(t *testing.T) {
	var w memWriterAt
	if _, err := NewContainerWriter(&w, 1, 0, false, ContainerOptions{Compress: true}); err == nil {
		t.Fatal("gamma payload accepted by the streaming writer")
	}
}

func TestContainerWriterContractErrors(t *testing.T) {
	mk := func(n int, entries int64, parents bool) *ContainerWriter {
		t.Helper()
		cw, err := NewContainerWriter(&memWriterAt{}, n, entries, parents, ContainerOptions{})
		if err != nil {
			t.Fatalf("NewContainerWriter: %v", err)
		}
		return cw
	}
	t.Run("unsorted-label", func(t *testing.T) {
		cw := mk(3, 2, false)
		err := cw.AppendVertex([]Hub{{Node: 1, Dist: 1}, {Node: 0, Dist: 1}}, nil)
		if err == nil {
			t.Fatal("unsorted label accepted")
		}
		if _, err := cw.Finish(); err == nil {
			t.Fatal("error was not sticky")
		}
	})
	t.Run("too-many-vertices", func(t *testing.T) {
		cw := mk(1, 1, false)
		if err := cw.AppendVertex([]Hub{{Node: 0, Dist: 0}}, nil); err != nil {
			t.Fatal(err)
		}
		if err := cw.AppendVertex(nil, nil); err == nil {
			t.Fatal("appended past the declared vertex count")
		}
	})
	t.Run("short-finish", func(t *testing.T) {
		cw := mk(2, 3, false)
		if err := cw.AppendVertex([]Hub{{Node: 0, Dist: 0}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := cw.Finish(); err == nil {
			t.Fatal("Finish accepted a half-filled container")
		}
	})
	t.Run("entries-mismatch", func(t *testing.T) {
		cw := mk(1, 5, false)
		if err := cw.AppendVertex([]Hub{{Node: 0, Dist: 0}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := cw.Finish(); err == nil {
			t.Fatal("Finish accepted an under-filled slot count")
		}
	})
	t.Run("parents-mismatch", func(t *testing.T) {
		cw := mk(1, 1, true)
		if err := cw.AppendVertex([]Hub{{Node: 0, Dist: 0}}, nil); err == nil {
			t.Fatal("missing parent column accepted")
		}
	})
	t.Run("bad-parent", func(t *testing.T) {
		cw := mk(2, 2, true)
		err := cw.AppendVertex([]Hub{{Node: 0, Dist: 0}, {Node: 1, Dist: 3}}, []graph.NodeID{-1, 5})
		if err == nil {
			t.Fatal("out-of-range parent accepted")
		}
	})
	t.Run("double-finish", func(t *testing.T) {
		cw := mk(0, 0, false)
		if _, err := cw.Finish(); err != nil {
			t.Fatal(err)
		}
		if _, err := cw.Finish(); err == nil {
			t.Fatal("second Finish did not error")
		}
	})
}
