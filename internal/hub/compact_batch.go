package hub

import (
	"sync"

	"hublab/internal/graph"
)

// Batched compact queries: decode-then-merge, two merges in flight.
//
// The compact scalar merge pays for every entry twice — a dependent
// byte-decode chain (delta add, escape test, zig-zag) feeding an
// unpredictable three-way merge branch. Interleaving two such
// byte-decoding merges was measured to hide none of the stall: the
// decode chain blocks at the head of the reorder window regardless of
// how many merges are in flight, and the extra stream state spills
// (the refilled-interleave variant ran at a ~1.9× premium over the
// expanded batch on gnm10k).
//
// Splitting the phases wins instead. Each run is decoded by a tight
// sequential loop into pooled scratch (the chain shrinks to a one-add
// prefix sum over bytes the hardware prefetcher streams, ~1.15 µs/query
// on gnm10k), and the merges then run over L1-hot int32 scratch where
// they are bound only by their own load→advance dependency chains —
// which two lockstep, independent merges genuinely overlap. Measured
// on the gnm10k fixture (1024 random pairs, min-of-10 alternating
// rounds): expanded batch ~2.4 µs/q, decode+serial merge ~3.6 µs/q
// (premium 1.47, matching the E24 scalar premium), decode+lockstep
// pair ~3.3 µs/q (premium 1.33–1.40).
//
// Variants tried and rejected by the same harness: lazy distance
// decode (stop at the last matching rank — random pairs share hubs
// deep into both runs, so the lazy prefix covered nearly everything
// and the extra passes doubled the cost); three lockstep streams
// (register spills, 1.46); sorting four pairs by decoded length to
// pair like-sized merges (no change); a shared decode arena with
// integer cursors instead of slice headers (no change, 1.47).
// Skewed pairs never enter the lockstep at all — fillStream peels
// them to gallopDecoded, the same policy the flat kernels apply.

// batchScratch holds the decoded runs of the two pairs a batch keeps
// in flight: slots 0,1 for stream 0, slots 2,3 for stream 1. Buffers
// grow to the longest run seen and are recycled through a pool so
// concurrent server shards never share or reallocate them.
type batchScratch struct {
	id [4][]int32
	d  [4][]graph.Weight
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// decodeRun decodes vertex v's run into ids/ds (grown as needed),
// returning the filled slices. Escape codes take the outlined slow
// path; everything else is a two-byte load and two adds per entry.
// Bounds come from the validated offsets/escOff arrays, so on a
// hostile quick-validated view this degrades to wrong decoded values,
// never to out-of-bounds access.
func (c *CompactLabeling) decodeRun(v graph.NodeID, ids []int32, ds []graph.Weight) ([]int32, []graph.Weight) {
	if c.wide {
		return c.decodeRunWide(v, ids, ds)
	}
	return c.decodeRunNarrow(v, ids, ds)
}

func (c *CompactLabeling) decodeRunNarrow(v graph.NodeID, ids []int32, ds []graph.Weight) ([]int32, []graph.Weight) {
	i0, i1 := c.offsets[v], c.offsets[v+1]
	hd, dd := c.hubDelta[i0:i1], c.distDelta[i0:i1]
	esc, e := c.esc, c.escOff[v]
	ln := len(hd)
	if cap(ids) < ln {
		ids = make([]int32, ln)
		ds = make([]graph.Weight, ln)
	}
	ids, ds = ids[:ln], ds[:ln]
	r, d := int32(-1), graph.Weight(0)
	k := 0
	for ; k+1 < ln; k += 2 {
		hb0, db0 := hd[k], dd[k]
		hb1, db1 := hd[k+1], dd[k+1]
		if hb0 == escByte || db0 == escByte || hb1 == escByte || db1 == escByte {
			e, r = stepHub(hd, esc, k, e, r)
			e, d = stepDistNarrow(dd, esc, k, e, d)
			ids[k] = r
			ds[k] = d
			e, r = stepHub(hd, esc, k+1, e, r)
			e, d = stepDistNarrow(dd, esc, k+1, e, d)
			ids[k+1] = r
			ds[k+1] = d
			continue
		}
		r += int32(hb0) + 1
		d += unzig32(uint32(db0))
		ids[k] = r
		ds[k] = d
		r += int32(hb1) + 1
		d += unzig32(uint32(db1))
		ids[k+1] = r
		ds[k+1] = d
	}
	for ; k < ln; k++ {
		e, r = stepHub(hd, esc, k, e, r)
		e, d = stepDistNarrow(dd, esc, k, e, d)
		ids[k] = r
		ds[k] = d
	}
	return ids, ds
}

func (c *CompactLabeling) decodeRunWide(v graph.NodeID, ids []int32, ds []graph.Weight) ([]int32, []graph.Weight) {
	i0, i1 := c.offsets[v], c.offsets[v+1]
	hd, dd := c.hubDelta[i0:i1], c.distDelta[2*i0:2*i1]
	esc, e := c.esc, c.escOff[v]
	ln := len(hd)
	if cap(ids) < ln {
		ids = make([]int32, ln)
		ds = make([]graph.Weight, ln)
	}
	ids, ds = ids[:ln], ds[:ln]
	r, d := int32(-1), graph.Weight(0)
	for k := 0; k < ln; k++ {
		hb := hd[k]
		z := uint32(dd[2*k]) | uint32(dd[2*k+1])<<8
		if hb == escByte || z == escWord {
			e, r = stepHub(hd, esc, k, e, r)
			e, d = stepDistWide(dd, esc, k, e, d)
		} else {
			r += int32(hb) + 1
			d += unzig32(z)
		}
		ids[k] = r
		ds[k] = d
	}
	return ids, ds
}

// mergeDecoded merges two decoded runs with the branch-reduced linear
// scan, starting from cursors i, j with a carried-in best.
func mergeDecoded(idA []int32, dA []graph.Weight, idB []int32, dB []graph.Weight, i, j int, best graph.Weight) graph.Weight {
	for i < len(idA) && j < len(idB) {
		a, b := idA[i], idB[j]
		if a == b {
			if d := dA[i] + dB[j]; d < best {
				best = d
			}
			i++
			j++
		} else {
			lt := int(uint64(int64(a)-int64(b)) >> 63)
			i += lt
			j += 1 - lt
		}
	}
	return best
}

// gallopDecoded is mergeGallop over decoded scratch: each short-run
// rank probes the long run exponentially, then binary-searches the
// overshot window. Dispatched when skewed() fires on the decoded
// lengths, so compact batches keep the same skew behavior as the flat
// kernels.
func gallopDecoded(idS []int32, dS []graph.Weight, idL []int32, dL []graph.Weight) graph.Weight {
	best := graph.Infinity
	si, li := 0, 0
	for si < len(idS) && li < len(idL) {
		h := idS[si]
		if idL[li] < h {
			step := 1
			for li+step < len(idL) && idL[li+step] < h {
				li += step
				step <<= 1
			}
			lo, hi := li+1, li+step
			if hi > len(idL) {
				hi = len(idL)
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if idL[mid] < h {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			li = lo
			if li >= len(idL) {
				break
			}
		}
		if idL[li] == h {
			if d := dS[si] + dL[li]; d < best {
				best = d
			}
			li++
		}
		si++
	}
	return best
}

// batchKernel selects the batched merge structure; settable from the
// measurement harness (export_test.go) to A/B the variants on the
// same fixture. 0 = lockstep pair merge with serial drains (default),
// 1 = per-pair scalar merge over decoded scratch (the baseline the
// lockstep is measured against).
var batchKernel = 0

// fillStream decodes the next mergeable pair into slot group s,
// answering empty and skewed pairs inline; returns the pair index and
// the next cursor, or ok=false when the batch is exhausted.
func (c *CompactLabeling) fillStream(sc *batchScratch, pairs [][2]graph.NodeID, out []graph.Weight, next, s int) (o, nxt int, ok bool) {
	for next < len(pairs) {
		p := pairs[next]
		o = next
		next++
		sc.id[s], sc.d[s] = c.decodeRun(p[0], sc.id[s], sc.d[s])
		sc.id[s+1], sc.d[s+1] = c.decodeRun(p[1], sc.id[s+1], sc.d[s+1])
		la, lb := len(sc.id[s]), len(sc.id[s+1])
		if la == 0 || lb == 0 {
			out[o] = graph.Infinity
			continue
		}
		if swap, sk := skewed(la, lb); sk {
			if swap {
				out[o] = gallopDecoded(sc.id[s+1], sc.d[s+1], sc.id[s], sc.d[s])
			} else {
				out[o] = gallopDecoded(sc.id[s], sc.d[s], sc.id[s+1], sc.d[s+1])
			}
			continue
		}
		return o, next, true
	}
	return 0, next, false
}

// mergeDecodedPair runs slots 0,1 and 2,3 in lockstep until either
// stream exhausts, then drains each serially. The two merges carry no
// data dependence on each other, so their load→advance chains overlap
// in the pipeline — the overlap the byte-decoding interleave could
// never reach.
func mergeDecodedPair(sc *batchScratch) (graph.Weight, graph.Weight) {
	b0, b1 := graph.Infinity, graph.Infinity
	idA0, dA0, idB0, dB0 := sc.id[0], sc.d[0], sc.id[1], sc.d[1]
	idA1, dA1, idB1, dB1 := sc.id[2], sc.d[2], sc.id[3], sc.d[3]
	i0, j0, i1, j1 := 0, 0, 0, 0
	for i0 < len(idA0) && j0 < len(idB0) && i1 < len(idA1) && j1 < len(idB1) {
		a0, c0 := idA0[i0], idB0[j0]
		a1, c1 := idA1[i1], idB1[j1]
		if a0 == c0 {
			if d := dA0[i0] + dB0[j0]; d < b0 {
				b0 = d
			}
			i0++
			j0++
		} else {
			lt := int(uint64(int64(a0)-int64(c0)) >> 63)
			i0 += lt
			j0 += 1 - lt
		}
		if a1 == c1 {
			if d := dA1[i1] + dB1[j1]; d < b1 {
				b1 = d
			}
			i1++
			j1++
		} else {
			lt := int(uint64(int64(a1)-int64(c1)) >> 63)
			i1 += lt
			j1 += 1 - lt
		}
	}
	b0 = mergeDecoded(idA0, dA0, idB0, dB0, i0, j0, b0)
	b1 = mergeDecoded(idA1, dA1, idB1, dB1, i1, j1, b1)
	return b0, b1
}

// queryBatchLockstep answers pairs two at a time: decode both pairs'
// runs into scratch, lockstep-merge them, repeat. An odd trailing pair
// drains serially.
func (c *CompactLabeling) queryBatchLockstep(sc *batchScratch, pairs [][2]graph.NodeID, out []graph.Weight) {
	next := 0
	for {
		o0, nxt, ok := c.fillStream(sc, pairs, out, next, 0)
		if !ok {
			return
		}
		o1, nxt2, ok := c.fillStream(sc, pairs, out, nxt, 2)
		if !ok {
			out[o0] = mergeDecoded(sc.id[0], sc.d[0], sc.id[1], sc.d[1], 0, 0, graph.Infinity)
			return
		}
		next = nxt2
		out[o0], out[o1] = mergeDecodedPair(sc)
	}
}

// queryBatchScalarMerge is the one-merge-at-a-time baseline over the
// same decoded scratch; kept for the A/B measurement harness.
func (c *CompactLabeling) queryBatchScalarMerge(sc *batchScratch, pairs [][2]graph.NodeID, out []graph.Weight) {
	next := 0
	for {
		o, nxt, ok := c.fillStream(sc, pairs, out, next, 0)
		if !ok {
			return
		}
		next = nxt
		out[o] = mergeDecoded(sc.id[0], sc.d[0], sc.id[1], sc.d[1], 0, 0, graph.Infinity)
	}
}
