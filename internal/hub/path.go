package hub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hublab/internal/graph"
)

// Path reporting on the flat labeling.
//
// A label entry (v, h, d) with a parent column stores the next hop from v
// toward h on one shortest v–h path. Unpacking a full u–v path walks both
// endpoints toward each other: each step queries the meeting hub of the
// current endpoints and advances whichever endpoint has a stored hop
// toward it. Advancing x by the hop p of entry (x, w) is always a step on
// a shortest x–y path when d(x,y) = d(x,w) + d(w,y): by the triangle
// inequality d(p,y) ≤ d(p,w) + d(w,y) = d(x,y) − w(x,p) and the reverse
// inequality is immediate, so the walk never leaves the set of shortest
// u–v paths. For hierarchical labelings (PLL, canonical HHL) the meeting
// hub stays in the advanced endpoint's label the whole way down, so the
// walk is pure parent-chasing; for arbitrary covers (FromSets, greedy
// cover) a step may need a fresh meeting-hub query, which the loop issues
// on demand.
//
// The contract assumes the labeling is a shortest-path cover — the
// paper's object, and what every builder in this module produces. On a
// non-cover labeling the decoded distances are only upper bounds and the
// unpacked walk (when one exists) realizes the decoded value, not the
// true distance.

// ErrNoParents reports a path query against a labeling without a parent
// column (built by a construction that does not record next hops, or
// loaded from a version-1 container).
var ErrNoParents = errors.New("hub: labeling carries no parent column for path reporting")

// ErrPathUnpack reports that path unpacking could not make progress
// within its step budget. This happens when the parent column is
// inconsistent with the labels (a corrupt container whose structural
// checks passed but whose hops do not descend toward their hubs) — and,
// as a documented limitation, it can also happen on graphs with
// zero-weight edges: a zero-weight hop does not strictly decrease the
// endpoint distance, so the two-ended walk may oscillate between
// endpoints instead of converging. Every generator and serving pipeline
// in this module uses strictly positive weights, where each hop makes
// strict progress and unpacking always succeeds on a valid cover.
var ErrPathUnpack = errors.New("hub: parent column does not unpack a shortest path")

// backBufs pools the reversed-tail scratch of AppendPath so steady-state
// path unpacking allocates nothing beyond growth of the caller's slice.
var backBufs = sync.Pool{New: func() any { return new([]graph.NodeID) }}

// NextHop returns the stored next hop from v toward hub h, looked up by
// binary search in S(v). ok is false when h ∉ S(v) or the labeling has no
// parent column; the hop is -1 for the self entry h == v.
func (f *FlatLabeling) NextHop(v, h graph.NodeID) (graph.NodeID, bool) {
	if f.parents == nil {
		return -1, false
	}
	return f.nextHop(v, h)
}

func (f *FlatLabeling) nextHop(v, h graph.NodeID) (graph.NodeID, bool) {
	ids := f.hubIDs[f.offsets[v] : f.offsets[v+1]-1]
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= h })
	if i == len(ids) || ids[i] != h {
		return -1, false
	}
	return f.parents[int(f.offsets[v])+i], true
}

// hopToward adapts nextHop to the pathStore interface.
func (f *FlatLabeling) hopToward(v, h graph.NodeID) (graph.NodeID, bool) {
	return f.nextHop(v, h)
}

// pathStore is the slice of LabelStore the shared path-unpacking walk
// needs: a representation-specific hop lookup plus the meeting-hub
// query. Both representations resolve ties in QueryVia toward the same
// hub (smallest original id among the minimizers), so the walk — and
// with it every unpacked path — is identical across them.
type pathStore interface {
	NumVertices() int
	QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool)
	hopToward(v, h graph.NodeID) (graph.NodeID, bool)
	HasParents() bool
}

// Path returns one shortest u–v path as a fresh slice. See AppendPath for
// the contract.
func (f *FlatLabeling) Path(u, v graph.NodeID) ([]graph.NodeID, error) {
	return f.AppendPath(nil, u, v)
}

// AppendPath appends the vertices of one shortest u–v path (inclusive of
// both endpoints, in order from u to v) to dst and returns the extended
// slice. When v is unreachable from u nothing is appended. It returns
// ErrNoParents when the labeling has no parent column and ErrPathUnpack
// when the column is inconsistent; on error dst is returned unchanged.
//
// Reusing dst across calls keeps the amortized cost at ≤ 2 allocations
// per query (the tail scratch is pooled, so steady state is
// allocation-free apart from growth of dst itself).
//
// Unpacking requires strictly positive edge weights to guarantee
// progress; on graphs with zero-weight edges a query may answer
// ErrPathUnpack (see that error's documentation) — it never returns a
// wrong path.
func (f *FlatLabeling) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	return appendPathOver(f, dst, u, v)
}

// appendPathOver is the representation-generic two-ended walk behind
// AppendPath; s supplies the hop lookups and meeting-hub queries.
func appendPathOver(s pathStore, dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	if !s.HasParents() {
		return dst, ErrNoParents
	}
	n := graph.NodeID(s.NumVertices())
	if u < 0 || u >= n || v < 0 || v >= n {
		return dst, fmt.Errorf("%w: (%d,%d) outside [0,%d)", graph.ErrVertexRange, u, v, n)
	}
	if u == v {
		return append(dst, u), nil
	}
	base := len(dst)
	bp := backBufs.Get().(*[]graph.NodeID)
	back := (*bp)[:0]
	x, y := u, v
	// Any simple shortest path has at most n vertices; a walk that takes
	// more steps is cycling on an inconsistent parent column (possible
	// only past the container's structural checks, e.g. along forged
	// zero-weight hops) and must error out rather than spin.
	for steps := 0; x != y; steps++ {
		if steps > 2*int(n) {
			*bp = back
			backBufs.Put(bp)
			return dst[:base], ErrPathUnpack
		}
		// Fast paths: one endpoint is a hub of the other, so the stored
		// hop advances without a merge query. Every hop is bounds-checked
		// before it becomes a cursor: a quick-validated mmap view may
		// carry a forged parent column, and an escaped id must degrade to
		// ErrPathUnpack, never index outside the arrays.
		if p, ok := s.hopToward(x, y); ok {
			if p < 0 || p >= n {
				*bp = back
				backBufs.Put(bp)
				return dst[:base], ErrPathUnpack
			}
			dst = append(dst, x)
			x = p
			continue
		}
		if p, ok := s.hopToward(y, x); ok {
			if p < 0 || p >= n {
				*bp = back
				backBufs.Put(bp)
				return dst[:base], ErrPathUnpack
			}
			back = append(back, y)
			y = p
			continue
		}
		// General step: find the meeting hub. Both fast paths missed, so
		// w ∉ {x, y} and the hop entry (x, w) exists with a real parent.
		_, w, ok := s.QueryVia(x, y)
		if !ok {
			*bp = back
			backBufs.Put(bp)
			if steps == 0 {
				return dst[:base], nil // unreachable: report the empty path
			}
			return dst[:base], ErrPathUnpack
		}
		p, ok := s.hopToward(x, w)
		if !ok || p < 0 || p >= n {
			*bp = back
			backBufs.Put(bp)
			return dst[:base], ErrPathUnpack
		}
		dst = append(dst, x)
		x = p
	}
	dst = append(dst, x)
	for i := len(back) - 1; i >= 0; i-- {
		dst = append(dst, back[i])
	}
	*bp = back
	backBufs.Put(bp)
	return dst, nil
}
