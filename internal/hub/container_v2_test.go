package hub

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"hublab/internal/graph"
)

// parentFixture builds a star labeling ({v, center} hub sets — an exact
// cover on a star) whose parent column comes from real search trees.
func parentFixture(t testing.TB) (*graph.Graph, *FlatLabeling) {
	t.Helper()
	b := graph.NewBuilder(6, 5)
	for v := graph.NodeID(1); v < 6; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	sets := make([][]graph.NodeID, 6)
	for v := range sets {
		sets[v] = []graph.NodeID{graph.NodeID(v), 0}
	}
	l, err := FromSets(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	f := l.Freeze()
	if !f.HasParents() {
		t.Fatal("fixture has no parent column")
	}
	return g, f
}

// TestContainerParentsRoundTrip round-trips the parent column through both
// payload kinds and checks paths unpack identically after the reload.
func TestContainerParentsRoundTrip(t *testing.T) {
	_, f := parentFixture(t)
	for _, tc := range []struct {
		name string
		opts ContainerOptions
	}{
		{"raw", ContainerOptions{}},
		{"gamma", ContainerOptions{Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := f.WriteContainer(&buf, tc.opts); err != nil {
				t.Fatalf("WriteContainer: %v", err)
			}
			if v := binary.LittleEndian.Uint16(buf.Bytes()[8:10]); v != 2 {
				t.Fatalf("container with parents has version %d, want 2", v)
			}
			got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadContainer: %v", err)
			}
			if !got.HasParents() {
				t.Fatal("parent column lost in round trip")
			}
			if !flatEqual(f, got) {
				t.Fatal("round trip changed the labeling")
			}
			for i := range f.parents {
				if f.parents[i] != got.parents[i] {
					t.Fatalf("parent slot %d: %d vs %d", i, f.parents[i], got.parents[i])
				}
			}
			want, err1 := f.Path(1, 5)
			back, err2 := got.Path(1, 5)
			if err1 != nil || err2 != nil || len(want) != 3 || len(back) != 3 {
				t.Fatalf("paths diverge after reload: %v/%v vs %v/%v", want, err1, back, err2)
			}
		})
	}
}

// TestContainerV1ReadByV2Code: a labeling without parents writes the
// historical version-1 bytes, loads cleanly, and Path reports the
// documented ErrNoParents.
func TestContainerV1ReadByV2Code(t *testing.T) {
	f := containerFixture(t) // Add-built: no parent column
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if _, err := f.WriteContainer(&buf, ContainerOptions{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint16(buf.Bytes()[8:10]); v != 1 {
			t.Fatalf("parentless container has version %d, want 1 (compress=%v)", v, compress)
		}
		got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadContainer(v1, compress=%v): %v", compress, err)
		}
		if got.HasParents() {
			t.Fatal("v1 container grew a parent column")
		}
		if _, err := got.Path(0, 3); !errors.Is(err, ErrNoParents) {
			t.Errorf("Path on v1 load = %v, want ErrNoParents", err)
		}
	}
}

// rewriteContainer re-serializes a (possibly invalid) flat labeling with a
// freshly computed, valid checksum — the hostile-writer scenario where
// only structural validation stands between the bytes and the query path.
func rewriteContainer(t testing.TB, f *FlatLabeling, opts ContainerOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteContainer(&buf, opts); err != nil {
		t.Fatalf("WriteContainer: %v", err)
	}
	return buf.Bytes()
}

// TestContainerRejectsInvalidParents: checksum-valid containers whose
// parent column violates the invariants must be rejected, not served.
func TestContainerRejectsInvalidParents(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(f *FlatLabeling)
	}{
		{"parent out of range", func(f *FlatLabeling) { f.parents[1] = 100 }},
		{"parent below -1", func(f *FlatLabeling) { f.parents[1] = -7 }},
		{"self entry with parent", func(f *FlatLabeling) {
			// Slot offsets[1] is vertex 1's self entry (hub 0 sorts first
			// only for vertex 0); locate the self entry of vertex 2.
			for i := f.offsets[2]; i < f.offsets[3]-1; i++ {
				if f.hubIDs[i] == 2 {
					f.parents[i] = 0
				}
			}
		}},
		{"hop to itself", func(f *FlatLabeling) {
			// A non-self entry whose stored hop is the vertex itself would
			// loop the unpacking walk forever.
			for i := f.offsets[1]; i < f.offsets[2]-1; i++ {
				if f.hubIDs[i] != 1 {
					f.parents[i] = 1
				}
			}
		}},
		{"parent on sentinel slot", func(f *FlatLabeling) { f.parents[f.offsets[1]-1] = 3 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			_, f := parentFixture(t)
			cp := &FlatLabeling{
				offsets: append([]int32(nil), f.offsets...),
				hubIDs:  append([]graph.NodeID(nil), f.hubIDs...),
				dists:   append([]graph.Weight(nil), f.dists...),
				parents: append([]graph.NodeID(nil), f.parents...),
			}
			m.mutate(cp)
			if _, err := ReadContainer(bytes.NewReader(rewriteContainer(t, cp, ContainerOptions{}))); err == nil {
				t.Fatal("container with invalid parent column accepted")
			}
		})
	}
}

// TestContainerParentsTruncated: cutting the stream inside or right before
// the parent column must error, never load a half-filled column.
func TestContainerParentsTruncated(t *testing.T) {
	_, f := parentFixture(t)
	for _, compress := range []bool{false, true} {
		data := rewriteContainer(t, f, ContainerOptions{Compress: compress})
		for _, cut := range []int{4, 1 + 4*len(f.parents)/2, 4 * len(f.parents)} {
			trunc := data[:len(data)-4-cut] // drop the trailer and cut into parents
			if _, err := ReadContainer(bytes.NewReader(trunc)); err == nil {
				t.Fatalf("compress=%v cut=%d: truncated parent column accepted", compress, cut)
			}
		}
	}
}

// TestContainerParentsFlagWithoutVersion2: flag bit 1 on a version-1
// header must be rejected — v1 readers never defined it.
func TestContainerParentsFlagWithoutVersion2(t *testing.T) {
	_, f := parentFixture(t)
	data := rewriteContainer(t, f, ContainerOptions{})
	data[8] = 1 // version 2 → 1, parents flag now unknown
	// Fix the checksum so only the flag check can reject.
	crc := crc32.Checksum(data[:len(data)-4], castagnoli)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
	if _, err := ReadContainer(bytes.NewReader(data)); err == nil {
		t.Fatal("version-1 container with parents flag accepted")
	}
}
