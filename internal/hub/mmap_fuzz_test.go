package hub

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hublab/internal/graph"
)

// hostileV3Seeds crafts the corpus of a hostile container writer: every
// class of forgery the mmap opener must refuse (or, for run-valid
// interior forgeries, accept without ever becoming unsafe). The helpers
// mirror TestOpenContainerMmapHostile so the fuzzer starts from inputs
// that already reach deep into the parser.
func hostileV3Seeds(tb testing.TB) [][]byte {
	_, fixture := parentFixture(tb)
	base := alignedBytes(tb, fixture)
	tamper := func(fn func([]byte) []byte) []byte {
		return fn(append([]byte(nil), base...))
	}
	return [][]byte{
		base,
		alignedBytes(tb, containerFixture(tb)),
		alignedBytes(tb, NewLabeling(0).Freeze()),
		tamper(func(d []byte) []byte { return d[:len(d)/2] }),
		tamper(func(d []byte) []byte { return refreshCRC(append(d, 1, 2, 3)) }),
		tamper(func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[40:48])
			binary.LittleEndian.PutUint64(d[40:48], off+4) // misaligned column offset
			return refreshCRC(refreshHeaderCRC(d))
		}),
		tamper(func(d []byte) []byte {
			l := binary.LittleEndian.Uint64(d[48:56])
			binary.LittleEndian.PutUint64(d[48:56], l+64) // CRC-valid oversized length
			return refreshCRC(refreshHeaderCRC(d))
		}),
		tamper(func(d []byte) []byte {
			k := int(binary.LittleEndian.Uint64(d[32:40]))
			d[44+16*k] = 0xAB // forged padding
			return refreshCRC(d)
		}),
		tamper(func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[40+16:])
			binary.LittleEndian.PutUint32(d[off:], 1<<20) // run-valid interior forgery
			return refreshCRC(d)
		}),
		tamper(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[24:32], 1<<40) // huge slots
			return refreshCRC(d)
		}),
	}
}

// storeFlat reduces a store of either representation to the expanded
// arrays, for cross-door agreement checks.
func storeFlat(s LabelStore) *FlatLabeling {
	if c, ok := s.(*CompactLabeling); ok {
		return c.Expand()
	}
	return s.(*FlatLabeling)
}

// FuzzOpenContainerMmap hammers the zero-copy open path with arbitrary
// bytes, across both serving representations. The invariants: opening
// never panics and never reads outside the buffer (the heap Mapping
// puts the Go bounds checker directly on the map boundary); whatever
// opens successfully must answer queries, batched queries, labels,
// paths and eccentricities without panicking; and a successful open
// must agree with the decoding reader whenever the decoder also accepts
// (the decoder is strictly stricter — it audits interior entries — so
// the reverse need not hold).
func FuzzOpenContainerMmap(f *testing.F) {
	for _, seed := range hostileV3Seeds(f) {
		f.Add(seed)
	}
	for _, seed := range hostileV4Seeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := openStoreBytes(data)
		if err != nil {
			return
		}
		defer s.Release()
		switch v := s.(type) {
		case *FlatLabeling:
			if err := v.validateOffsets(); err != nil {
				t.Fatalf("accepted labeling fails offsets validation: %v", err)
			}
		case *CompactLabeling:
			if err := v.validateQuick(); err != nil {
				t.Fatalf("accepted compact store fails quick validation: %v", err)
			}
		}
		if dec, derr := ReadContainerStore(bytes.NewReader(data)); derr == nil {
			if !flatEqual(storeFlat(dec), storeFlat(s)) {
				t.Fatal("mmap open and decode disagree on the same bytes")
			}
		}
		n := graph.NodeID(s.NumVertices())
		if n == 0 {
			return
		}
		// Query the corners and a stripe; answers may be garbage on forged
		// interiors, panics and out-of-bounds reads are the failure.
		probes := [][2]graph.NodeID{{0, 0}, {0, n - 1}, {n - 1, 0}, {n / 2, n / 2}, {0, n / 2}}
		out := make([]graph.Weight, len(probes))
		for _, p := range probes {
			s.Query(p[0], p[1])
			s.QueryVia(p[0], p[1])
			s.Label(p[0], nil, nil)
			if s.HasParents() {
				if _, err := s.AppendPath(nil, p[0], p[1]); err != nil {
					_ = err // forged hops must error, not panic
				}
			}
		}
		s.QueryBatch(probes, out)
		e := NewEccIndex(s)
		e.Eccentricity(0)
		e.EccentricityUpperBound(n - 1)
	})
}
