package hub

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hublab/internal/graph"
)

// Streaming container emission.
//
// WriteContainer needs the frozen flat arrays, so persisting a build the
// ordinary way costs 2× the labeling in RAM: the slice-of-slices form the
// builder produced plus the flat copy made just to serialize it. For a
// million-vertex build that doubling is the difference between fitting in
// a CI-class machine and not. ContainerWriter removes it: label runs are
// appended one vertex at a time and land directly in the file, and the
// output is byte-identical to WriteContainer's for every format version —
// pinned by test — so readers (Load, LoadMmap, hubserve) cannot tell the
// difference.
//
// The container formats are columnar (all offsets, then all hub ids, then
// all distances, …), so per-vertex emission writes to as many distinct
// file regions as there are columns. The writer therefore requires an
// io.WriterAt — a fresh *os.File in practice — and gives each column a
// region cursor with a small flush buffer. The one global in the format,
// the trailing crc32 of the whole stream, is recovered at Finish without
// re-reading anything: each column tracks the crc32 of its own bytes and
// the trailer combines them with crc32Combine (the GF(2) matrix trick —
// crc(A‖B) from crc(A), crc(B), len(B)).
//
// The Elias-gamma payload (ContainerOptions.Compress) is refused: its
// variable-width codes admit no per-column cursor. Gamma containers are a
// decode-path feature for small indexes; million-vertex builds use the
// raw or aligned layouts, which are the servable ones anyway.

// streamBufBytes is each column's flush buffer; four columns make the
// writer's total steady-state memory ~1 MB regardless of index size.
const streamBufBytes = 256 << 10

// columnWriter appends bytes to one contiguous file region, tracking the
// region's running crc32.
type columnWriter struct {
	w    io.WriterAt
	base int64 // file offset where the column starts
	n    int64 // bytes appended so far
	crc  uint32
	buf  []byte
}

func (c *columnWriter) appendInt32(x int32) error {
	if len(c.buf)+4 > streamBufBytes {
		if err := c.flush(); err != nil {
			return err
		}
	}
	c.buf = append(c.buf, byte(x), byte(uint32(x)>>8), byte(uint32(x)>>16), byte(uint32(x)>>24))
	return nil
}

// appendBytes appends a raw byte run (the compact layout's delta
// columns), flushing in streamBufBytes chunks.
func (c *columnWriter) appendBytes(p []byte) error {
	for len(c.buf)+len(p) > streamBufBytes {
		take := streamBufBytes - len(c.buf)
		c.buf = append(c.buf, p[:take]...)
		if err := c.flush(); err != nil {
			return err
		}
		p = p[take:]
	}
	c.buf = append(c.buf, p...)
	return nil
}

func (c *columnWriter) flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	if _, err := c.w.WriteAt(c.buf, c.base+c.n); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, castagnoli, c.buf)
	c.n += int64(len(c.buf))
	c.buf = c.buf[:0]
	return nil
}

// ContainerWriter emits a container incrementally, one vertex's label run
// per AppendVertex call, in vertex order. Construct with
// NewContainerWriter, append exactly n vertices totalling exactly the
// declared number of entries, then Finish. Any error is sticky: the
// writer refuses further use, and the output must be discarded.
type ContainerWriter struct {
	w       io.WriterAt
	n       int   // declared vertex count
	slots   int64 // declared slots (entries + n sentinels)
	parents bool
	aligned bool

	next      int   // vertices appended so far
	pos       int64 // slots consumed so far
	headerCrc uint32
	headerLen int64
	secs      []containerSection // one per column, all versions
	cols      []columnWriter     // offsets, hubIDs, dists[, parents]
	err       error
}

// NewContainerWriter starts a container for n vertices and `entries`
// label entries (sentinels excluded — the caller knows this total from
// its build counters). withParents declares the parent column; every
// AppendVertex call must then supply parents. The header is written
// immediately. Regions the writer skips are written explicitly, so w can
// be any io.WriterAt, not only a fresh sparse file.
func NewContainerWriter(w io.WriterAt, n int, entries int64, withParents bool, opts ContainerOptions) (*ContainerWriter, error) {
	if opts.Compress {
		return nil, fmt.Errorf("hub: streaming container emission cannot produce the gamma payload (write a raw or aligned container)")
	}
	if opts.Compact {
		// The compact layout needs the global plan (remap table, column
		// width, escape totals) before the first vertex lands, which the
		// incremental per-vertex protocol cannot supply.
		return nil, fmt.Errorf("hub: per-vertex container emission cannot produce the compact (v4) payload; use Labeling.WriteContainerStreaming, which plans the encoding in a pre-pass")
	}
	if n < 0 || entries < 0 {
		return nil, fmt.Errorf("hub: negative container dimensions n=%d entries=%d", n, entries)
	}
	cw := &ContainerWriter{
		w:       w,
		n:       n,
		slots:   entries + int64(n),
		parents: withParents,
		aligned: opts.Aligned,
	}
	var header []byte
	if opts.Aligned {
		cw.secs, _ = containerSections(int64(n), cw.slots, withParents)
		header = make([]byte, alignedHeaderLen(len(cw.secs)))
		copy(header[0:8], containerMagic[:])
		putU16(header[8:], containerVersionAligned)
		flags := uint16(0)
		if withParents {
			flags |= containerFlagParents
		}
		putU16(header[10:], flags)
		putU64(header[16:], uint64(n))
		putU64(header[24:], uint64(cw.slots))
		putU64(header[32:], uint64(len(cw.secs)))
		for i, s := range cw.secs {
			putU64(header[40+16*i:], uint64(s.off))
			putU64(header[48+16*i:], uint64(s.length))
		}
		putU32(header[len(header)-4:], crc32.Checksum(header[:len(header)-4], castagnoli))
	} else {
		header = make([]byte, containerHeaderLen)
		copy(header[0:8], containerMagic[:])
		version, flags := uint16(1), uint16(0)
		if withParents {
			version = containerVersionParents
			flags |= containerFlagParents
		}
		putU16(header[8:], version)
		putU16(header[10:], flags)
		putU64(header[16:], uint64(n))
		putU64(header[24:], uint64(cw.slots))
		// Versions 1/2 pack the columns back to back after the header.
		lengths := []int64{4 * (int64(n) + 1), 4 * cw.slots, 4 * cw.slots, 4 * cw.slots}
		k := 3
		if withParents {
			k = 4
		}
		pos := int64(containerHeaderLen)
		cw.secs = make([]containerSection, k)
		for i := 0; i < k; i++ {
			cw.secs[i] = containerSection{off: pos, length: lengths[i]}
			pos += lengths[i]
		}
	}
	cw.headerLen = int64(len(header))
	cw.headerCrc = crc32.Checksum(header, castagnoli)
	if _, err := w.WriteAt(header, 0); err != nil {
		cw.err = err
		return nil, err
	}
	cw.cols = make([]columnWriter, len(cw.secs))
	for i := range cw.cols {
		cw.cols[i] = columnWriter{w: w, base: cw.secs[i].off, buf: make([]byte, 0, streamBufBytes)}
	}
	return cw, nil
}

// AppendVertex emits vertex next's label run: hubs sorted strictly by id
// (the canonical form), with parents[i] the next hop toward hubs[i].Node
// (-1 for the self entry). parents must be nil exactly when the writer
// was created without a parent column. The sentinel slot every format
// version stores per vertex is appended automatically.
func (cw *ContainerWriter) AppendVertex(hubs []Hub, parents []graph.NodeID) error {
	if cw.err != nil {
		return cw.err
	}
	fail := func(err error) error { cw.err = err; return err }
	v := graph.NodeID(cw.next)
	if cw.next >= cw.n {
		return fail(fmt.Errorf("hub: AppendVertex beyond the declared %d vertices", cw.n))
	}
	if cw.parents != (parents != nil) {
		return fail(fmt.Errorf("hub: vertex %d parent column mismatch (writer declared withParents=%v)", v, cw.parents))
	}
	if parents != nil && len(parents) != len(hubs) {
		return fail(fmt.Errorf("hub: vertex %d has %d parents for %d hubs", v, len(parents), len(hubs)))
	}
	if cw.pos+int64(len(hubs))+1 > cw.slots {
		return fail(fmt.Errorf("hub: vertex %d overflows the declared %d slots", v, cw.slots))
	}
	if err := cw.cols[0].appendInt32(int32(cw.pos)); err != nil {
		return fail(err)
	}
	prev := graph.NodeID(-1)
	for i, h := range hubs {
		if h.Node <= prev || int(h.Node) >= cw.n {
			return fail(fmt.Errorf("hub: vertex %d label not canonical at entry %d (hub %d after %d, n=%d)", v, i, h.Node, prev, cw.n))
		}
		prev = h.Node
		if h.Dist < 0 || h.Dist >= graph.Infinity {
			return fail(fmt.Errorf("hub: vertex %d hub %d has distance %d outside [0, Infinity)", v, h.Node, h.Dist))
		}
		if parents != nil {
			p := parents[i]
			if h.Node == v {
				if p != -1 {
					return fail(fmt.Errorf("hub: vertex %d self entry has parent %d, want -1", v, p))
				}
			} else if p < 0 || int(p) >= cw.n || p == v {
				return fail(fmt.Errorf("hub: vertex %d hub %d has invalid parent %d", v, h.Node, p))
			}
		}
		if err := cw.cols[1].appendInt32(int32(h.Node)); err != nil {
			return fail(err)
		}
		if err := cw.cols[2].appendInt32(int32(h.Dist)); err != nil {
			return fail(err)
		}
		if parents != nil {
			if err := cw.cols[3].appendInt32(int32(parents[i])); err != nil {
				return fail(err)
			}
		}
	}
	// Sentinel slot, exactly as buildFlat lays it out.
	if err := cw.cols[1].appendInt32(int32(flatSentinel)); err != nil {
		return fail(err)
	}
	if err := cw.cols[2].appendInt32(int32(graph.Infinity)); err != nil {
		return fail(err)
	}
	if cw.parents {
		if err := cw.cols[3].appendInt32(-1); err != nil {
			return fail(err)
		}
	}
	cw.pos += int64(len(hubs)) + 1
	cw.next++
	return nil
}

// Finish writes the closing offset, inter-column padding and the combined
// crc32 trailer, and returns the container's total byte length. The
// writer must have received exactly the declared vertices and entries.
func (cw *ContainerWriter) Finish() (int64, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	fail := func(err error) (int64, error) { cw.err = err; return 0, err }
	if cw.next != cw.n {
		return fail(fmt.Errorf("hub: Finish after %d of %d vertices", cw.next, cw.n))
	}
	if cw.pos != cw.slots {
		return fail(fmt.Errorf("hub: labels fill %d of the declared %d slots", cw.pos, cw.slots))
	}
	if err := cw.cols[0].appendInt32(int32(cw.pos)); err != nil {
		return fail(err)
	}
	for i := range cw.cols {
		if err := cw.cols[i].flush(); err != nil {
			return fail(err)
		}
		if cw.cols[i].n != cw.secs[i].length {
			return fail(fmt.Errorf("hub: column %d wrote %d of %d bytes", i, cw.cols[i].n, cw.secs[i].length))
		}
	}
	// Assemble the stream crc left to right: header, then each column with
	// its zero padding (aligned layout only; versions 1/2 have none).
	crc := cw.headerCrc
	pos := cw.headerLen
	var pad [containerAlign]byte
	for i := range cw.cols {
		if gap := cw.secs[i].off - pos; gap > 0 {
			if _, err := cw.w.WriteAt(pad[:gap], pos); err != nil {
				return fail(err)
			}
			crc = crc32.Update(crc, castagnoli, pad[:gap])
		}
		crc = crc32Combine(crc, cw.cols[i].crc, cw.cols[i].n)
		pos = cw.secs[i].off + cw.secs[i].length
	}
	var trailer [4]byte
	putU32(trailer[:], crc)
	if _, err := cw.w.WriteAt(trailer[:], pos); err != nil {
		return fail(err)
	}
	cw.err = fmt.Errorf("hub: container writer already finished")
	return pos + 4, nil
}

// WriteContainerStreaming streams l into w per vertex, never building the
// flat arrays; the bytes are identical to Freeze().WriteContainer(...).
// The labeling must be canonical (every builder's output is; after manual
// Adds call Canonicalize first). The compact (v4) layout streams too: its
// global plan (remap table, column width, escape totals) is computed in a
// pre-pass over the labels, then the encoded columns land in the file one
// vertex at a time — still never materializing the flat arrays, and still
// byte-identical to the in-memory writer because both feed the same
// per-vertex encoder under the same plan.
func (l *Labeling) WriteContainerStreaming(w io.WriterAt, opts ContainerOptions) (int64, error) {
	if !l.canonical() {
		return 0, fmt.Errorf("hub: streaming emission needs canonical labels (call Canonicalize)")
	}
	if opts.Compact {
		if opts.Compress || opts.Aligned {
			return 0, errCompactCompose
		}
		return l.writeCompactStreaming(w)
	}
	var entries int64
	for v := range l.labels {
		entries += int64(len(l.labels[v]))
	}
	cw, err := NewContainerWriter(w, len(l.labels), entries, l.parents != nil, opts)
	if err != nil {
		return 0, err
	}
	for v := range l.labels {
		var parents []graph.NodeID
		if l.parents != nil {
			parents = l.parents[v]
			if parents == nil {
				parents = []graph.NodeID{}
			}
		}
		if err := cw.AppendVertex(l.labels[v], parents); err != nil {
			return 0, err
		}
	}
	return cw.Finish()
}

// writeCompactStreaming emits the version-4 compact container from the
// mutable labeling without ever building the flat arrays. Pass 1 is the
// plan (hub frequencies → remap, escape counts → width and exact section
// sizes, so the header and section table are final before any column
// byte lands); pass 2 rank-sorts each vertex's entries and feeds them
// through the same per-vertex encoder the in-memory writer uses, which
// is what pins the two outputs byte-identical.
func (l *Labeling) writeCompactStreaming(w io.WriterAt) (int64, error) {
	n := len(l.labels)
	plan := planCompactLabeling(l)
	if plan.entries > math.MaxInt32 {
		return 0, fmt.Errorf("hub: %d entries overflow the compact container's int32 CSR", plan.entries)
	}
	withParents := l.parents != nil
	secs, _ := containerSectionsV4(int64(n), plan.entries, plan.escs, plan.wide, withParents)
	hdr := buildCompactHeader(int64(n), plan.entries, plan.escs, plan.wide, withParents, secs)
	if _, err := w.WriteAt(hdr, 0); err != nil {
		return 0, err
	}
	// Columns in section order: offsets, remap, escOff, hubDelta,
	// distDelta, esc[, parents].
	cols := make([]columnWriter, len(secs))
	for i := range cols {
		cols[i] = columnWriter{w: w, base: secs[i].off, buf: make([]byte, 0, streamBufBytes)}
	}
	for _, h := range plan.remap {
		if err := cols[1].appendInt32(int32(h)); err != nil {
			return 0, err
		}
	}
	var (
		es      []compactEntry
		hb, db  []byte
		escRun  []int32
		parRun  []graph.NodeID
		entries int64
		escPos  int64
	)
	for v := range l.labels {
		if err := cols[0].appendInt32(int32(entries)); err != nil {
			return 0, err
		}
		if err := cols[2].appendInt32(int32(escPos)); err != nil {
			return 0, err
		}
		es = es[:0]
		for i, h := range l.labels[v] {
			ent := compactEntry{rank: plan.inv[h.Node], dist: h.Dist, parent: -1}
			if withParents {
				ent.parent = l.parents[v][i]
			}
			es = append(es, ent)
		}
		sortCompactEntries(es)
		hb, db, escRun, parRun = hb[:0], db[:0], escRun[:0], parRun[:0]
		hb, db, escRun, parRun = appendVertexCompact(hb, db, escRun, parRun, es, plan.wide, withParents)
		if err := cols[3].appendBytes(hb); err != nil {
			return 0, err
		}
		if err := cols[4].appendBytes(db); err != nil {
			return 0, err
		}
		for _, x := range escRun {
			if err := cols[5].appendInt32(x); err != nil {
				return 0, err
			}
		}
		if withParents {
			for _, p := range parRun {
				if err := cols[6].appendInt32(int32(p)); err != nil {
					return 0, err
				}
			}
		}
		entries += int64(len(es))
		escPos += int64(len(escRun))
	}
	if err := cols[0].appendInt32(int32(entries)); err != nil {
		return 0, err
	}
	if err := cols[2].appendInt32(int32(escPos)); err != nil {
		return 0, err
	}
	for i := range cols {
		if err := cols[i].flush(); err != nil {
			return 0, err
		}
		if cols[i].n != secs[i].length {
			return 0, fmt.Errorf("hub: compact column %d wrote %d of %d bytes", i, cols[i].n, secs[i].length)
		}
	}
	crc := crc32.Checksum(hdr, castagnoli)
	pos := int64(len(hdr))
	var pad [containerAlign]byte
	for i := range cols {
		if gap := secs[i].off - pos; gap > 0 {
			if _, err := w.WriteAt(pad[:gap], pos); err != nil {
				return 0, err
			}
			crc = crc32.Update(crc, castagnoli, pad[:gap])
		}
		crc = crc32Combine(crc, cols[i].crc, cols[i].n)
		pos = secs[i].off + secs[i].length
	}
	var trailer [4]byte
	putU32(trailer[:], crc)
	if _, err := w.WriteAt(trailer[:], pos); err != nil {
		return 0, err
	}
	return pos + 4, nil
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

// crc32Combine returns the crc32 (Castagnoli, the container polynomial)
// of the concatenation A‖B given crc32(A), crc32(B) and len(B), in
// O(log len(B)) — zlib's crc32_combine ported to the reflected Castagnoli
// polynomial. It is what lets Finish emit the format's single whole-file
// checksum from independently tracked per-column checksums without
// re-reading the file.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1 ^ crc2
	}
	var even, odd [32]uint32 // operators for 2^k zero bytes
	odd[0] = 0x82f63b78      // reflected Castagnoli polynomial
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	gf2Square(&even, &odd) // even = one zero byte (4 zero bits, twice)
	gf2Square(&odd, &even)
	for {
		gf2Square(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2Times(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2Square(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2Times(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// gf2Times multiplies the GF(2) matrix by the bit-vector vec.
func gf2Times(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2Square sets dst to mat·mat.
func gf2Square(dst, mat *[32]uint32) {
	for i := range dst {
		dst[i] = gf2Times(mat, mat[i])
	}
}
