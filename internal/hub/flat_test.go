package hub

import (
	"math/rand"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/par"
)

// buildSmall returns a labeling over 4 vertices exercising empty labels,
// shared hubs and disjoint hubs:
//
//	S(0) = {0:0, 2:1}, S(1) = {1:0, 2:2}, S(2) = {} (empty), S(3) = {3:0}.
func buildSmall() *Labeling {
	l := NewLabeling(4)
	l.Add(0, 0, 0)
	l.Add(0, 2, 1)
	l.Add(1, 1, 0)
	l.Add(1, 2, 2)
	l.Add(3, 3, 0)
	l.Canonicalize()
	return l
}

func TestQueryEdgeCases(t *testing.T) {
	l := buildSmall()
	for _, frozen := range []bool{false, true} {
		if frozen {
			l.Freeze()
			if !l.Frozen() {
				t.Fatal("Freeze did not stick")
			}
		}
		// Common hub 2: d = 1 + 2.
		if d, via, ok := l.QueryVia(0, 1); !ok || d != 3 || via != 2 {
			t.Errorf("frozen=%v Query(0,1) = (%d,%d,%v), want (3,2,true)", frozen, d, via, ok)
		}
		// Empty label on one side.
		if d, ok := l.Query(0, 2); ok || d != graph.Infinity {
			t.Errorf("frozen=%v Query(0,2) = (%d,%v), want (Infinity,false)", frozen, d, ok)
		}
		// Empty label on both sides (self-query on empty).
		if _, ok := l.Query(2, 2); ok {
			t.Errorf("frozen=%v Query(2,2) succeeded on empty label", frozen)
		}
		// No common hub.
		if _, ok := l.Query(0, 3); ok {
			t.Errorf("frozen=%v Query(0,3) found a hub", frozen)
		}
		// Self-query via self-hub.
		if d, via, ok := l.QueryVia(0, 0); !ok || d != 0 || via != 0 {
			t.Errorf("frozen=%v Query(0,0) = (%d,%d,%v), want (0,0,true)", frozen, d, via, ok)
		}
	}
}

func TestDuplicateHubsPreCanonicalize(t *testing.T) {
	// Duplicate hub with differing distances: Canonicalize must keep the
	// minimum, and Freeze on the raw labeling must canonicalize first.
	l := NewLabeling(2)
	l.Add(0, 1, 5)
	l.Add(0, 1, 2)
	l.Add(0, 0, 0)
	l.Add(1, 1, 0)
	f := l.Freeze()
	if err := f.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if d, ok := f.Query(0, 1); !ok || d != 2 {
		t.Errorf("Query(0,1) = (%d,%v), want (2,true)", d, ok)
	}
	if got := f.LabelLen(0); got != 2 {
		t.Errorf("LabelLen(0) = %d, want 2 after dedup", got)
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	l := buildSmall()
	f := l.Freeze()
	if err := f.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	back := f.Thaw()
	if back.NumVertices() != l.NumVertices() {
		t.Fatalf("Thaw lost vertices: %d vs %d", back.NumVertices(), l.NumVertices())
	}
	for v := graph.NodeID(0); int(v) < l.NumVertices(); v++ {
		a, b := l.Label(v), back.Label(v)
		if len(a) != len(b) {
			t.Fatalf("label(%d) sizes differ: %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("label(%d)[%d] differs: %v vs %v", v, i, a[i], b[i])
			}
		}
	}
	if back.Frozen() {
		t.Error("Thaw returned a frozen labeling")
	}
}

func TestMutationInvalidatesFlat(t *testing.T) {
	l := buildSmall()
	l.Freeze()
	l.Add(2, 2, 0)
	if l.Frozen() {
		t.Fatal("Add did not invalidate the flat form")
	}
	l.Canonicalize()
	l.Freeze()
	l.SetLabel(3, []Hub{{Node: 3, Dist: 0}})
	if l.Frozen() {
		t.Fatal("SetLabel did not invalidate the flat form")
	}
	l.Freeze()
	l.Canonicalize()
	if l.Frozen() {
		t.Fatal("Canonicalize did not invalidate the flat form")
	}
}

func TestFlatStatsMatchSlices(t *testing.T) {
	l := buildSmall()
	want := l.ComputeStats()
	got := l.Freeze().ComputeStats()
	if want != got {
		t.Errorf("stats differ: flat %+v vs slices %+v", got, want)
	}
}

// TestFlatSliceEquivalenceRandom asserts the flat and slice-of-slices
// representations decode identical distances on random Gnm graphs labeled
// from random hub sets (builder-level equivalence for PLL, greedy cover,
// sparse hubs, Theorem 4.1 and canonical HHL lives in the top-level
// package's TestFlatSliceEquivalenceAcrossBuilders).
func TestFlatSliceEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, err := gen.Gnm(300, 520, seed)
		if err != nil {
			t.Fatalf("Gnm: %v", err)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		sets := make([][]graph.NodeID, g.NumNodes())
		for v := range sets {
			sets[v] = append(sets[v], graph.NodeID(v), 0)
			for k := 0; k < 6; k++ {
				sets[v] = append(sets[v], graph.NodeID(rng.Intn(g.NumNodes())))
			}
		}
		l, err := FromSets(g, sets)
		if err != nil {
			t.Fatalf("FromSets: %v", err)
		}
		f := l.Freeze()
		if err := f.validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		slices := f.Thaw() // unfrozen copy: queries run the slice merge
		n := g.NumNodes()
		pairRng := rand.New(rand.NewSource(seed))
		for k := 0; k < 4000; k++ {
			u := graph.NodeID(pairRng.Intn(n))
			v := graph.NodeID(pairRng.Intn(n))
			df, vf, okf := f.QueryVia(u, v)
			ds, vs, oks := slices.QueryVia(u, v)
			if df != ds || vf != vs || okf != oks {
				t.Fatalf("seed %d pair (%d,%d): flat (%d,%d,%v) vs slices (%d,%d,%v)",
					seed, u, v, df, vf, okf, ds, vs, oks)
			}
		}
	}
}

func TestFromSetsDeterministic(t *testing.T) {
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	g, err := gen.Gnm(150, 260, 9)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(4))
	sets := make([][]graph.NodeID, n)
	for v := range sets {
		sets[v] = append(sets[v], graph.NodeID(v))
		for k := 0; k < 3; k++ {
			sets[v] = append(sets[v], graph.NodeID(rng.Intn(n)))
		}
	}
	a, err := FromSets(g, sets)
	if err != nil {
		t.Fatalf("FromSets: %v", err)
	}
	for trial := 0; trial < 3; trial++ {
		b, err := FromSets(g, sets)
		if err != nil {
			t.Fatalf("FromSets: %v", err)
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			la, lb := a.Label(v), b.Label(v)
			if len(la) != len(lb) {
				t.Fatalf("trial %d: label(%d) sizes differ: %d vs %d", trial, v, len(la), len(lb))
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("trial %d: label(%d)[%d] differs: %v vs %v", trial, v, i, la[i], lb[i])
				}
			}
		}
	}
	if !a.Frozen() {
		t.Error("FromSets result not frozen")
	}
}

func TestVerifyCoverDeterministicError(t *testing.T) {
	// Force a multi-worker pool (single-CPU machines would otherwise run
	// serial): a labeling with several violations must always report the
	// lowest (u, v) violation regardless of worker scheduling.
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	g, err := gen.Gnm(60, 100, 2)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	l := NewLabeling(60)
	for v := graph.NodeID(0); v < 60; v++ {
		l.Add(v, v, 0) // self-hubs only: every nonadjacent pair violates
	}
	l.Canonicalize()
	var want *CoverError
	for trial := 0; trial < 8; trial++ {
		err := l.VerifyCover(g)
		var ce *CoverError
		if !asCoverError(err, &ce) {
			t.Fatalf("trial %d: err = %v, want *CoverError", trial, err)
		}
		if want == nil {
			want = ce
			continue
		}
		if ce.U != want.U || ce.V != want.V {
			t.Fatalf("trial %d: violation (%d,%d), want stable (%d,%d)", trial, ce.U, ce.V, want.U, want.V)
		}
	}
}

func TestVerifyDoesNotMutate(t *testing.T) {
	// Verification must never freeze or canonicalize the receiver — a
	// concurrent reader of an unfrozen labeling would race with it.
	g, err := gen.Gnm(40, 70, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	sets := make([][]graph.NodeID, 40)
	for v := range sets {
		for h := graph.NodeID(0); h < 40; h++ {
			sets[v] = append(sets[v], h)
		}
	}
	l, err := FromSets(g, sets)
	if err != nil {
		t.Fatalf("FromSets: %v", err)
	}
	unfrozen := l.Freeze().Thaw()
	if err := unfrozen.VerifyCover(g); err != nil {
		t.Fatalf("VerifyCover: %v", err)
	}
	if unfrozen.Frozen() {
		t.Error("VerifyCover froze the labeling")
	}
	if err := unfrozen.VerifySampled(g, 50, 1); err != nil {
		t.Fatalf("VerifySampled: %v", err)
	}
	if unfrozen.Frozen() {
		t.Error("VerifySampled froze the labeling")
	}
}

func asCoverError(err error, out **CoverError) bool {
	ce, ok := err.(*CoverError)
	if ok {
		*out = ce
	}
	return ok
}
