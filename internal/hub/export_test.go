package hub

import "hublab/internal/graph"

// SetBatchKernelForTest switches the compact QueryBatch merge
// structure for A/B measurement.
func SetBatchKernelForTest(k int) { batchKernel = k }

// DecodeRunForTest exposes the batch decode loop for split timing.
func (c *CompactLabeling) DecodeRunForTest(v graph.NodeID, ids []int32, ds []graph.Weight) ([]int32, []graph.Weight) {
	return c.decodeRun(v, ids, ds)
}
