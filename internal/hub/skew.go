package hub

import "hublab/internal/graph"

// gallopRatio is the length-ratio threshold at which the flat merge
// kernels switch from the branch-reduced linear scan to a galloping
// probe of the longer run. Frequency-ranked orderings leave real
// workloads full of skewed pairs — a leaf's handful of hubs against a
// high-degree vertex's hundreds — and past this ratio the O(s·log l)
// gallop beats the O(s+l) scan.
//
// The value is picked by measurement, not theory:
// BenchmarkE25SkewCrossover times both kernels on the same run pair
// across ratios. On the reference amd64 box the gallop reaches parity
// already at 2× (59.6 vs 62.5 ns) and wins 2.1× at ratio 4, 3.6× at 8,
// 19× at 64 — binary-search mispredicts cost it a constant per probed
// element, which the skipped elements repay almost immediately. 4 keeps
// one doubling of margin over the parity point, so the E25 gate
// "gallop never slower than linear beyond the threshold" holds with
// room to spare on slower branch predictors.
const gallopRatio = 4

// mergeGallop merges the short run [si, sEnd) against the long run
// [li, lEnd) by galloping: for each short-run hub, an exponential probe
// of the long run followed by a binary search back over the overshot
// window. Both runs exclude their sentinels — termination rides the
// explicit bounds, not the sentinel values, because binary search on a
// hostile quick-validated interior cannot rely on order at all. Every
// index stays inside the two half-open windows (which come from
// validated offsets), so like the linear kernel this degrades to wrong
// answers on hostile interiors, never to out-of-bounds access: the
// outer loop advances si every iteration and the probe/search indices
// are clamped to lEnd, so the scan finishes in at most
// O((sEnd-si)·log(lEnd-li)) steps regardless of the bytes it reads.
func (f *FlatLabeling) mergeGallop(si, sEnd, li, lEnd int, best graph.Weight) graph.Weight {
	ids, ds := f.hubIDs, f.dists
	for si < sEnd && li < lEnd {
		h := ids[si]
		if ids[li] < h {
			// Exponential probe: double the step until the long run
			// reaches or overshoots h, then binary-search the last window.
			step := 1
			for li+step < lEnd && ids[li+step] < h {
				li += step
				step <<= 1
			}
			lo, hi := li+1, li+step
			if hi > lEnd {
				hi = lEnd
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if ids[mid] < h {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			li = lo
			if li >= lEnd {
				break
			}
		}
		if ids[li] == h {
			if d := ds[si] + ds[li]; d < best {
				best = d
			}
			li++
		}
		si++
	}
	return best
}

// mergeGallopVia is mergeGallop with witness tracking. The short run is
// scanned in ascending-id order and only strict improvements update the
// witness, so ties break toward the smallest hub id — the same rule as
// the linear QueryVia scan, which keeps unpacked paths identical no
// matter which kernel a pair's skew selects.
func (f *FlatLabeling) mergeGallopVia(si, sEnd, li, lEnd int) (graph.Weight, graph.NodeID) {
	ids, ds := f.hubIDs, f.dists
	best := graph.Infinity
	via := graph.NodeID(-1)
	for si < sEnd && li < lEnd {
		h := ids[si]
		if ids[li] < h {
			step := 1
			for li+step < lEnd && ids[li+step] < h {
				li += step
				step <<= 1
			}
			lo, hi := li+1, li+step
			if hi > lEnd {
				hi = lEnd
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if ids[mid] < h {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			li = lo
			if li >= lEnd {
				break
			}
		}
		if ids[li] == h {
			if d := ds[si] + ds[li]; d < best {
				best = d
				via = h
			}
			li++
		}
		si++
	}
	return best, via
}

// skewed reports whether the pair of run lengths is lopsided enough for
// the gallop, and orders them short-first. The comparison is widened to
// int64 so a pathological (hostile-view) length cannot overflow the
// multiply on 32-bit platforms.
func skewed(la, lb int) (swap, ok bool) {
	if la <= lb {
		return false, int64(lb) >= int64(la)*gallopRatio
	}
	return true, int64(la) >= int64(lb)*gallopRatio
}
