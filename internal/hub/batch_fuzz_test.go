package hub

import (
	"math/rand"
	"testing"

	"hublab/internal/graph"
)

// fuzzBatchLabeling builds a small labeling whose shape is selected by
// the fuzzed seed: narrow or wide (escape-heavy) distance columns,
// uniform or skewed run lengths, plus vertices with no label at all
// (every query touching them is disconnected) — the full edge-case
// surface of the batch kernels.
func fuzzBatchLabeling(t testing.TB, seed int64) *FlatLabeling {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 48
	maxDist := int32(60)
	if seed%2 == 0 {
		maxDist = 1 << 27 // forces distance escapes and the wide layout
	}
	l := NewLabeling(n)
	for v := 0; v < n; v++ {
		if v%7 == 3 {
			continue // empty label: disconnected from everything, even itself
		}
		vid := graph.NodeID(v)
		l.Add(vid, vid, 0)
		per := 1 + rng.Intn(5)
		if seed%3 == 0 && v%11 == 0 {
			per = 10 * gallopRatio // skewed runs: exercises the gallop drain
		}
		seen := map[graph.NodeID]bool{vid: true}
		for k := 0; k < per; k++ {
			h := graph.NodeID(rng.Intn(n))
			if seen[h] {
				continue
			}
			seen[h] = true
			l.Add(vid, h, graph.Weight(rng.Int31n(maxDist)))
		}
	}
	l.Canonicalize()
	return l.Freeze()
}

// FuzzQueryBatchEquivalence is the differential harness pinning every
// batch kernel to the scalar Query it must be indistinguishable from:
// flat (3-stream interleave + gallop-aware drain, and the <3 scalar
// fallback) and compact (2-stream interleave in both widths, and the <2
// fallback) across arbitrary pair sequences — u==v, repeated pairs, and
// disconnected vertices included. The fuzzed bytes choose the labeling
// shape and the pair list, so batch lengths sweep every stream count and
// every refill/drain path.
func FuzzQueryBatchEquivalence(f *testing.F) {
	f.Add(int64(0), []byte{})
	f.Add(int64(1), []byte{1, 2})
	f.Add(int64(2), []byte{0, 0, 3, 3, 3, 10})
	f.Add(int64(3), []byte{5, 9, 5, 9, 5, 9, 1, 44, 17, 3, 0, 33})
	f.Add(int64(6), []byte{11, 2, 11, 4, 11, 8, 22, 1, 33, 0, 44, 7, 3, 3})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 512 {
			t.Skip("bounded workload")
		}
		fl := fuzzBatchLabeling(t, seed)
		c := CompactFromFlat(fl)
		n := fl.NumVertices()
		pairs := make([][2]graph.NodeID, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pairs = append(pairs, [2]graph.NodeID{
				graph.NodeID(int(raw[i]) % n), graph.NodeID(int(raw[i+1]) % n),
			})
		}
		outFlat := make([]graph.Weight, len(pairs))
		outCompact := make([]graph.Weight, len(pairs))
		fl.QueryBatch(pairs, outFlat)
		c.QueryBatch(pairs, outCompact)
		for k, p := range pairs {
			want, _ := fl.Query(p[0], p[1])
			if outFlat[k] != want {
				t.Fatalf("flat batch[%d] (%d,%d) = %d, scalar says %d",
					k, p[0], p[1], outFlat[k], want)
			}
			wantC, _ := c.Query(p[0], p[1])
			if wantC != want {
				t.Fatalf("compact scalar (%d,%d) = %d, flat says %d", p[0], p[1], wantC, want)
			}
			if outCompact[k] != want {
				t.Fatalf("compact batch[%d] (%d,%d) = %d, scalar says %d",
					k, p[0], p[1], outCompact[k], want)
			}
		}
	})
}

// TestQueryBatchKernels runs the differential seed corpus under every
// batch merge structure so the A/B-measurable variants all stay
// correct, not just the default.
func TestQueryBatchKernels(t *testing.T) {
	defer SetBatchKernelForTest(0)
	for k := 0; k <= 1; k++ {
		SetBatchKernelForTest(k)
		for seed := int64(1); seed <= 6; seed++ {
			fuzzBatchLabeling(t, seed)
		}
	}
}
