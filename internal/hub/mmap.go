package hub

import (
	"bytes"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/mmapio"
)

// OpenContainerMmap opens a container file as a memory-mapped
// FlatLabeling. For version-3 (aligned) raw containers the load is
// zero-copy: after the header, checksum and run-structure checks pass,
// the CSR columns are typed views of the mapped region — no decode, no
// second copy of the index in anonymous memory, and the kernel page
// cache shares the physical pages between every process serving the same
// file. Version-1/2 and gamma containers have no alignment guarantees to
// point at, so they fall back to the ordinary decoded load and return an
// owned labeling; callers can branch on Owned() when the distinction
// matters.
//
// The returned view is immutable shared memory with an explicit
// lifetime: Release unmaps it, and must not run before the last query
// finishes (the serving layer refcounts snapshots for exactly this).
// Replace a served container file by atomic rename, never by in-place
// overwrite — a rename leaves the mapped inode untouched, an overwrite
// rewrites the live pages under running queries.
//
// Validation and the trust model: open verifies the header and its
// crc32 (which covers the section table, so the layout is
// authenticated), the canonical section placement (alignment, exact
// lengths, zero padding, exact file size) and the offsets-column
// invariants — everything it reads is O(n) metadata; the label columns
// themselves are never streamed through the CPU, which is what makes
// open O(1) in the index size and lets first-touch cost land lazily on
// the queries that actually fault each page in. The trade, relative to
// the decoding reader: the whole-file trailer crc32 and the interior
// entries are not audited at open. That is sound because every query
// path is memory-safe without interior trust — the merge cursors cannot
// escape the validated offsets cover (see validateOffsets for the
// termination argument), path unpacking bounds-checks each stored hop
// and answers ErrPathUnpack on escape, and the eccentricity index skips
// out-of-range ids. A corrupted or forged file can therefore produce
// wrong answers but never a panic or an out-of-map read; use index.Load
// (which audits everything including the trailer checksum) or run
// Validate when loading files of unknown provenance, and hubserve
// -selfcheck to spot-check served answers against the graph.
func OpenContainerMmap(path string) (*FlatLabeling, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := openMapped(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if f.Owned() {
		// Decode fallback (old version, gamma payload, or every column
		// copied by the cast guards): the labeling no longer needs the
		// mapping.
		m.Close()
	}
	return f, nil
}

// openMapped builds a labeling over an established mapping. On success
// the result either aliases the mapping (f.ref == m) or is fully owned;
// the caller closes the mapping in the latter case and on error.
func openMapped(m *mmapio.Mapping) (*FlatLabeling, error) {
	data := m.Bytes()
	if len(data) < containerHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrContainer, len(data))
	}
	version, flags, n64, slots64, err := parseContainerHeader(data[:containerHeaderLen])
	if err != nil {
		return nil, err
	}
	if version < 3 {
		// No alignment guarantees to point at: decode the old format.
		return ReadContainer(bytes.NewReader(data))
	}
	parents := flags&containerFlagParents != 0

	// The canonical layout pins the exact file size before anything else
	// is trusted: a table entry can then never name bytes outside the
	// map, and an oversized length is caught even when the file's
	// checksums are internally consistent.
	want, end := containerSections(int64(n64), int64(slots64), parents)
	if int64(len(data)) != end+4 {
		return nil, fmt.Errorf("%w: %d bytes, canonical layout needs %d", ErrContainer, len(data), end+4)
	}
	headerEnd := alignedHeaderLen(len(want))
	secs, err := validateAlignedExt(data[:containerHeaderLen], data[containerHeaderLen:headerEnd], want)
	if err != nil {
		return nil, err
	}
	pos := headerEnd
	for i, s := range secs {
		for _, b := range data[pos:s.off] {
			if b != 0 {
				return nil, fmt.Errorf("%w: nonzero padding before section %d", ErrContainer, i)
			}
		}
		pos = s.off + s.length
	}

	f := &FlatLabeling{}
	aliased := false
	view := func(s containerSection) []int32 {
		col, a := mmapio.View[int32](data[s.off : s.off+s.length])
		aliased = aliased || a
		return col
	}
	f.offsets = view(secs[0])
	f.hubIDs = view(secs[1])
	f.dists = view(secs[2])
	if parents {
		f.parents = view(secs[3])
	}
	if aliased {
		f.ref = m
	}
	if err := f.validateOffsets(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return f, nil
}

// ensure the alias types the casts rely on hold at compile time: the
// graph ids and weights must be exactly int32 for a column view to be
// well-typed.
var (
	_ []int32 = []graph.NodeID(nil)
	_ []int32 = []graph.Weight(nil)
)
