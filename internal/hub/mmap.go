package hub

import (
	"bytes"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/mmapio"
)

// OpenContainerMmap opens a container file as a memory-mapped
// FlatLabeling. For version-3 (aligned) raw containers the load is
// zero-copy: after the header, checksum and run-structure checks pass,
// the CSR columns are typed views of the mapped region — no decode, no
// second copy of the index in anonymous memory, and the kernel page
// cache shares the physical pages between every process serving the same
// file. Version-1/2 and gamma containers have no alignment guarantees to
// point at, so they fall back to the ordinary decoded load and return an
// owned labeling; callers can branch on Owned() when the distinction
// matters.
//
// The returned view is immutable shared memory with an explicit
// lifetime: Release unmaps it, and must not run before the last query
// finishes (the serving layer refcounts snapshots for exactly this).
// Replace a served container file by atomic rename, never by in-place
// overwrite — a rename leaves the mapped inode untouched, an overwrite
// rewrites the live pages under running queries.
//
// Validation and the trust model: open verifies the header and its
// crc32 (which covers the section table, so the layout is
// authenticated), the canonical section placement (alignment, exact
// lengths, zero padding, exact file size) and the offsets-column
// invariants — everything it reads is O(n) metadata; the label columns
// themselves are never streamed through the CPU, which is what makes
// open O(1) in the index size and lets first-touch cost land lazily on
// the queries that actually fault each page in. The trade, relative to
// the decoding reader: the whole-file trailer crc32 and the interior
// entries are not audited at open. That is sound because every query
// path is memory-safe without interior trust — the merge cursors cannot
// escape the validated offsets cover (see validateOffsets for the
// termination argument), path unpacking bounds-checks each stored hop
// and answers ErrPathUnpack on escape, and the eccentricity index skips
// out-of-range ids. A corrupted or forged file can therefore produce
// wrong answers but never a panic or an out-of-map read; use index.Load
// (which audits everything including the trailer checksum) or run
// Validate when loading files of unknown provenance, and hubserve
// -selfcheck to spot-check served answers against the graph.
//
// Version-4 (compact) containers get the same treatment through
// OpenStoreMmap; OpenContainerMmap itself expands them into an owned
// FlatLabeling, trading the compression away for the historical return
// type.
func OpenContainerMmap(path string) (*FlatLabeling, error) {
	s, err := OpenStoreMmap(path)
	if err != nil {
		return nil, err
	}
	if c, ok := s.(*CompactLabeling); ok {
		f := c.Expand()
		if err := c.Release(); err != nil {
			return nil, err
		}
		return f, nil
	}
	return s.(*FlatLabeling), nil
}

// OpenStoreMmap opens a container file as a memory-mapped LabelStore in
// its native representation: version-3 files as a zero-copy
// *FlatLabeling and version-4 files as a zero-copy *CompactLabeling
// (version-1/2 and gamma files fall back to an owned decode, exactly as
// OpenContainerMmap documents). The version-4 quick-open budget matches
// version 3 — O(n) metadata, never the label columns — with one
// addition: the remap table is verified to be a permutation (and its
// inverse heap-built) before the store is returned, which is what keeps
// every rank-to-id and id-to-rank lookup in-bounds on forged interiors.
// Escape-slot reads are bounds-checked in the kernels instead, so
// hostile delta or escape data degrades to wrong answers, never to an
// out-of-map access. Lifetime and rename discipline are identical to
// OpenContainerMmap.
func OpenStoreMmap(path string) (LabelStore, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := openStore(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if s.Owned() {
		// Decode fallback (old version, gamma payload, or every column
		// copied by the cast guards): the labeling no longer needs the
		// mapping.
		m.Close()
	}
	return s, nil
}

// openStore builds a label store over an established mapping. On success
// the result either aliases the mapping (ref == m) or is fully owned;
// the caller closes the mapping in the latter case and on error.
func openStore(m *mmapio.Mapping) (LabelStore, error) {
	data := m.Bytes()
	if len(data) < containerHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrContainer, len(data))
	}
	version, flags, n64, slots64, err := parseContainerHeader(data[:containerHeaderLen])
	if err != nil {
		return nil, err
	}
	if version < 3 {
		// No alignment guarantees to point at: decode the old format.
		return ReadContainer(bytes.NewReader(data))
	}
	if version >= 4 {
		return openCompactMapped(m, data, flags, int(n64), int(slots64))
	}
	parents := flags&containerFlagParents != 0

	// The canonical layout pins the exact file size before anything else
	// is trusted: a table entry can then never name bytes outside the
	// map, and an oversized length is caught even when the file's
	// checksums are internally consistent.
	want, end := containerSections(int64(n64), int64(slots64), parents)
	if int64(len(data)) != end+4 {
		return nil, fmt.Errorf("%w: %d bytes, canonical layout needs %d", ErrContainer, len(data), end+4)
	}
	headerEnd := alignedHeaderLen(len(want))
	secs, err := validateAlignedExt(data[:containerHeaderLen], data[containerHeaderLen:headerEnd], want)
	if err != nil {
		return nil, err
	}
	pos := headerEnd
	for i, s := range secs {
		for _, b := range data[pos:s.off] {
			if b != 0 {
				return nil, fmt.Errorf("%w: nonzero padding before section %d", ErrContainer, i)
			}
		}
		pos = s.off + s.length
	}

	f := &FlatLabeling{}
	aliased := false
	view := func(s containerSection) []int32 {
		col, a := mmapio.View[int32](data[s.off : s.off+s.length])
		aliased = aliased || a
		return col
	}
	f.offsets = view(secs[0])
	f.hubIDs = view(secs[1])
	f.dists = view(secs[2])
	if parents {
		f.parents = view(secs[3])
	}
	if aliased {
		f.ref = m
	}
	if err := f.validateOffsets(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return f, nil
}

// openCompactMapped builds a zero-copy CompactLabeling over a mapped
// version-4 container. Validation order mirrors openStore's v3 path:
// the extended header (escape-count bound, authenticated canonical
// section table) is checked reading only header bytes, the exact file
// size is then pinned from the canonical layout before any column view
// exists, the padding is verified zero, and finally the O(n) structural
// quick checks (CSR monotonicity, remap permutation) that the kernels'
// memory-safety argument rests on.
func openCompactMapped(m *mmapio.Mapping, data []byte, flags uint16, n, entries int) (*CompactLabeling, error) {
	wide := flags&containerFlagWideDist != 0
	parents := flags&containerFlagParents != 0
	k := 6
	if parents {
		k = 7
	}
	headerEnd := compactHeaderLen(k)
	if int64(len(data)) < headerEnd {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a version-4 header", ErrContainer, len(data))
	}
	secs, _, err := validateCompactExt(data[:containerHeaderLen], data[containerHeaderLen:headerEnd],
		int64(n), int64(entries), wide, parents)
	if err != nil {
		return nil, err
	}
	end := secs[len(secs)-1].off + secs[len(secs)-1].length
	if int64(len(data)) != end+4 {
		return nil, fmt.Errorf("%w: %d bytes, canonical layout needs %d", ErrContainer, len(data), end+4)
	}
	pos := headerEnd
	for i, s := range secs {
		for _, b := range data[pos:s.off] {
			if b != 0 {
				return nil, fmt.Errorf("%w: nonzero padding before section %d", ErrContainer, i)
			}
		}
		pos = s.off + s.length
	}

	c := &CompactLabeling{n: n, wide: wide}
	aliased := false
	view := func(s containerSection) []int32 {
		col, a := mmapio.View[int32](data[s.off : s.off+s.length])
		aliased = aliased || a
		return col
	}
	c.offsets = view(secs[0])
	c.remap = view(secs[1])
	c.escOff = view(secs[2])
	// The byte columns need no cast and alias the mapping directly.
	c.hubDelta = data[secs[3].off : secs[3].off+secs[3].length]
	c.distDelta = data[secs[4].off : secs[4].off+secs[4].length]
	c.esc = view(secs[5])
	if parents {
		c.parents = view(secs[6])
	}
	if aliased || entries > 0 {
		c.ref = m
	}
	if err := c.validateQuick(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return c, nil
}

// ensure the alias types the casts rely on hold at compile time: the
// graph ids and weights must be exactly int32 for a column view to be
// well-typed.
var (
	_ []int32 = []graph.NodeID(nil)
	_ []int32 = []graph.Weight(nil)
)
