// Package hub defines hub labelings (2-hop covers), the paper's central
// object: every vertex v stores a hub set S(v) together with exact
// distances, and the distance between u and v is recovered as
//
//	min_{w ∈ S(u) ∩ S(v)} dist(u,w) + dist(w,v),
//
// which is exact whenever the family {S(v)} is a shortest-path cover.
// The package provides the labeling container, the merge query, cover
// verification, monotone closure (the S* sets of Theorem 2.1's Eq. (1)),
// size statistics and bit-level serialization.
//
// # Freeze/Thaw lifecycle
//
// Labeling is the mutable builder form: construction algorithms Add hubs,
// Canonicalize, and hand the result out. Freeze converts the slice-of-
// slices storage into the immutable FlatLabeling — contiguous CSR offsets
// over structure-of-arrays hub-id/distance columns with sentinel-
// terminated runs — and caches it on the Labeling, so Query and QueryVia
// transparently run the zero-allocation flat merge. Every mutation (Add,
// SetLabel, Canonicalize) drops the cache; Thaw converts a FlatLabeling
// back into a fresh mutable Labeling. All construction paths in this
// module freeze their final result, so consumers get flat-speed queries
// without holding a second type.
package hub

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// Hub is one entry of a vertex label: a hub vertex and the exact distance
// to it.
type Hub struct {
	Node graph.NodeID
	Dist graph.Weight
}

// Labeling holds one hub set per vertex, each sorted by hub id, enabling
// O(|S(u)|+|S(v)|) merge queries. A frozen flat form (see Freeze) is
// cached after construction and used transparently by the query methods.
//
// A labeling may additionally carry a parent column: for every label entry
// (v, h, d), the next hop from v toward h on one shortest v–h path (-1 for
// the self entry h = v). Builders that run shortest-path searches record it
// for free (PLL, FromSets, canonical HHL); Add-based builders attach it
// after the fact with ComputeParents. The column is what powers
// FlatLabeling.AppendPath; any mutation (Add, SetLabel) discards it along
// with the frozen form.
type Labeling struct {
	labels  [][]Hub
	parents [][]graph.NodeID // nil when absent; parents[v] parallels labels[v]
	flat    *FlatLabeling    // non-nil iff frozen; invalidated by any mutation
}

// ErrNotCover reports that a labeling fails to cover some pair.
var ErrNotCover = errors.New("hub: labeling is not a shortest-path cover")

// CoverError describes a pair witnessing a cover violation.
type CoverError struct {
	U, V graph.NodeID
	Got  graph.Weight // distance decoded from labels (Infinity if no common hub)
	Want graph.Weight // true graph distance
}

func (e *CoverError) Error() string {
	return fmt.Sprintf("hub: pair (%d,%d) decodes to %d, true distance %d", e.U, e.V, e.Got, e.Want)
}

func (e *CoverError) Unwrap() error { return ErrNotCover }

// NewLabeling returns an empty labeling for n vertices.
func NewLabeling(n int) *Labeling {
	return &Labeling{labels: make([][]Hub, n)}
}

// NumVertices returns the number of vertices the labeling covers.
func (l *Labeling) NumVertices() int { return len(l.labels) }

// Add inserts hub h at distance d into S(v). Call Canonicalize after a
// batch of Adds to restore sorted, deduplicated labels. Adding discards
// any frozen flat form and any parent column (re-attach one with
// ComputeParents).
func (l *Labeling) Add(v graph.NodeID, h graph.NodeID, d graph.Weight) {
	l.flat = nil
	l.parents = nil
	l.labels[v] = append(l.labels[v], Hub{Node: h, Dist: d})
}

// Label returns S(v) sorted by hub id. The slice aliases internal storage.
func (l *Labeling) Label(v graph.NodeID) []Hub { return l.labels[v] }

// SetLabel replaces S(v) wholesale (taking ownership of hubs) and discards
// any frozen flat form and any parent column.
func (l *Labeling) SetLabel(v graph.NodeID, hubs []Hub) {
	l.flat = nil
	l.parents = nil
	l.labels[v] = hubs
}

// Canonicalize sorts every label by hub id and merges duplicates keeping
// the minimum distance. It discards any frozen flat form (Freeze again
// afterwards to restore it). A parent column, when present, is permuted
// and deduplicated in lockstep so it stays parallel to the labels.
func (l *Labeling) Canonicalize() {
	l.flat = nil
	for v := range l.labels {
		hubs := l.labels[v]
		if l.parents != nil {
			sortHubsParents(hubs, l.parents[v])
		} else {
			sortHubs(hubs)
		}
		out := hubs[:0]
		keep := 0
		for i, h := range hubs {
			if i == 0 || h.Node != hubs[i-1].Node {
				if l.parents != nil {
					l.parents[v][keep] = l.parents[v][i]
				}
				out = append(out, h)
				keep++
			}
		}
		l.labels[v] = out
		if l.parents != nil {
			l.parents[v] = l.parents[v][:keep]
		}
	}
}

// Query decodes the distance between u and v from their labels alone. It
// returns Infinity and false if the labels share no hub. On a frozen
// labeling the zero-allocation flat merge is used.
func (l *Labeling) Query(u, v graph.NodeID) (graph.Weight, bool) {
	if f := l.flat; f != nil {
		return f.Query(u, v)
	}
	d, _, ok := l.queryViaSlices(u, v)
	return d, ok
}

// QueryVia is Query but also returns the minimizing hub.
func (l *Labeling) QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool) {
	if f := l.flat; f != nil {
		return f.QueryVia(u, v)
	}
	return l.queryViaSlices(u, v)
}

// queryViaSlices is the merge query over the mutable slice-of-slices form.
func (l *Labeling) queryViaSlices(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool) {
	a, b := l.labels[u], l.labels[v]
	best := graph.Infinity
	var via graph.NodeID = -1
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Node < b[j].Node:
			i++
		case a[i].Node > b[j].Node:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < best {
				best = d
				via = a[i].Node
			}
			i++
			j++
		}
	}
	return best, via, via >= 0
}

// Stats summarizes label sizes.
type Stats struct {
	Vertices int
	Total    int     // sum of |S(v)|
	Max      int     // max |S(v)|
	Avg      float64 // Total / Vertices
}

// ComputeStats returns size statistics for the labeling.
func (l *Labeling) ComputeStats() Stats {
	s := Stats{Vertices: len(l.labels)}
	for _, hubs := range l.labels {
		s.Total += len(hubs)
		if len(hubs) > s.Max {
			s.Max = len(hubs)
		}
	}
	if s.Vertices > 0 {
		s.Avg = float64(s.Total) / float64(s.Vertices)
	}
	return s
}

// verifyQueryFunc returns the query function verification should use
// without mutating the receiver (so a concurrent reader of l is safe):
// the cached flat form when present, a locally built flat form when the
// labels are canonical, and the plain slice merge otherwise.
func (l *Labeling) verifyQueryFunc() func(u, v graph.NodeID) (graph.Weight, bool) {
	if f := l.flat; f != nil {
		return f.Query
	}
	if l.canonical() {
		return l.buildFlat().Query
	}
	return l.Query
}

// VerifyCover exhaustively checks that the labeling decodes the exact
// distance for every vertex pair of g (one SSSP per vertex; intended for
// graphs up to a few thousand vertices). The per-source checks run on a
// runtime.NumCPU()-bounded worker pool over the flat form (built locally
// when the labeling is not already frozen — the receiver is never
// mutated); the reported *CoverError is deterministic — the same first
// violation (lowest u, then lowest v) a sequential scan would find.
func (l *Labeling) VerifyCover(g *graph.Graph) error {
	if len(l.labels) != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", len(l.labels), g.NumNodes())
	}
	query := l.verifyQueryFunc()
	n := g.NumNodes()
	return par.FirstError(n, func(i int) error {
		u := graph.NodeID(i)
		r := sssp.Search(g, u)
		for v := u; int(v) < n; v++ {
			if err := checkPairQuery(query, u, v, r.Dist[v]); err != nil {
				return err
			}
		}
		return nil
	})
}

// VerifySampled checks the labeling on `pairs` random vertex pairs. The
// pair sequence is drawn up front from the seed and the checks are
// batched across the worker pool; the reported error is the one a
// sequential scan of the same sequence would hit first. Like VerifyCover
// it never mutates the receiver.
func (l *Labeling) VerifySampled(g *graph.Graph, pairs int, seed int64) error {
	if len(l.labels) != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", len(l.labels), g.NumNodes())
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	// Unlike VerifyCover, a sampled check touches only `pairs` pairs, so it
	// never pays to materialize a temporary flat copy of an unfrozen
	// labeling — for a streamed million-vertex build that copy would double
	// peak RSS just to check a few thousand pairs. Use the cached flat form
	// when present and the plain merge otherwise.
	query := l.Query
	if f := l.flat; f != nil {
		query = f.Query
	}
	batch := make([][2]graph.NodeID, pairs)
	for i := range batch {
		batch[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	return par.FirstError(len(batch), func(i int) error {
		u, v := batch[i][0], batch[i][1]
		return checkPairQuery(query, u, v, sssp.Distance(g, u, v))
	})
}

func checkPairQuery(query func(u, v graph.NodeID) (graph.Weight, bool), u, v graph.NodeID, want graph.Weight) error {
	got, ok := query(u, v)
	if want == graph.Infinity {
		if ok {
			return &CoverError{U: u, V: v, Got: got, Want: want}
		}
		return nil
	}
	if !ok || got != want {
		if !ok {
			got = graph.Infinity
		}
		return &CoverError{U: u, V: v, Got: got, Want: want}
	}
	return nil
}

// FromSets builds a labeling with exact distances from bare hub sets by
// running one shortest-path search per distinct hub. Hubs are processed in
// sorted id order (so construction is deterministic run-to-run) and the
// per-hub searches run on the worker pool; the result is canonical and
// frozen.
func FromSets(g *graph.Graph, sets [][]graph.NodeID) (*Labeling, error) {
	if len(sets) != g.NumNodes() {
		return nil, fmt.Errorf("hub: %d sets for %d vertices", len(sets), g.NumNodes())
	}
	// users[h] = vertices that want h as hub.
	users := make(map[graph.NodeID][]graph.NodeID)
	for v, hubs := range sets {
		for _, h := range hubs {
			if int(h) < 0 || int(h) >= g.NumNodes() {
				return nil, fmt.Errorf("hub: %w: hub %d", graph.ErrVertexRange, h)
			}
			users[h] = append(users[h], graph.NodeID(v))
		}
	}
	order := make([]graph.NodeID, 0, len(users))
	for h := range users {
		order = append(order, h)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	// One search per distinct hub, in parallel; entry lists land in the
	// slot of their hub's rank, so assembly order is deterministic. The
	// search tree also yields the parent column for free: Parent[v] in the
	// tree rooted at h is the next hop from v toward h.
	type entry struct {
		v   graph.NodeID
		d   graph.Weight
		par graph.NodeID
	}
	perHub := make([][]entry, len(order))
	par.For(len(order), func(i int) {
		h := order[i]
		r := sssp.Search(g, h)
		vs := users[h]
		list := make([]entry, 0, len(vs))
		for _, v := range vs {
			if r.Dist[v] < graph.Infinity {
				list = append(list, entry{v, r.Dist[v], r.Parent[v]})
			}
		}
		perHub[i] = list
	})
	n := g.NumNodes()
	labels := make([][]Hub, n)
	parents := make([][]graph.NodeID, n)
	for i, h := range order {
		for _, e := range perHub[i] {
			labels[e.v] = append(labels[e.v], Hub{Node: h, Dist: e.d})
			parents[e.v] = append(parents[e.v], e.par)
		}
	}
	return FromSlicesParents(labels, parents), nil
}

// ComputeParents attaches a parent column to an existing labeling by
// running one shortest-path search per distinct hub: for every entry
// (v, h, d) the recorded parent is the next hop from v toward h along the
// search tree rooted at h. It is the retrofit path for Add-based builders
// (greedy cover, centroid labels, monotone closure); construction
// algorithms that already run per-hub searches record parents inline
// instead. The labeling's stored distances must be the exact graph
// distances — a mismatch is reported as an error and leaves l without a
// parent column. The labeling is re-frozen if it was frozen before.
func (l *Labeling) ComputeParents(g *graph.Graph) error {
	if l.NumVertices() != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", l.NumVertices(), g.NumNodes())
	}
	if !l.canonical() {
		l.Canonicalize()
	}
	// users[h] = positions (v, slot) that carry h.
	users := make(map[graph.NodeID][]graph.NodeID)
	for v, hubs := range l.labels {
		for _, h := range hubs {
			users[h.Node] = append(users[h.Node], graph.NodeID(v))
		}
	}
	order := make([]graph.NodeID, 0, len(users))
	for h := range users {
		order = append(order, h)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	parents := make([][]graph.NodeID, len(l.labels))
	for v, hubs := range l.labels {
		parents[v] = make([]graph.NodeID, len(hubs))
	}
	err := par.FirstError(len(order), func(i int) error {
		h := order[i]
		r := sssp.Search(g, h)
		for _, v := range users[h] {
			slot := sort.Search(len(l.labels[v]), func(k int) bool { return l.labels[v][k].Node >= h })
			e := l.labels[v][slot]
			if r.Dist[v] != e.Dist {
				return fmt.Errorf("hub: entry (%d,%d) stores distance %d, graph says %d",
					v, h, e.Dist, r.Dist[v])
			}
			if v == h {
				parents[v][slot] = -1
			} else {
				parents[v][slot] = r.Parent[v]
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	wasFrozen := l.flat != nil
	l.flat = nil
	l.parents = parents
	if wasFrozen {
		l.Freeze()
	}
	return nil
}

// MonotoneClosure returns the monotone labeling {S*(v)}: for every hub
// x ∈ S(v), all vertices of one shortest v-x path (along a fixed
// shortest-path tree rooted at v) are added to S*(v). This is the object
// the paper's Eq. (1) bounds: |S*(v)| ≤ diam · |S(v)|.
func MonotoneClosure(g *graph.Graph, l *Labeling) (*Labeling, error) {
	if l.NumVertices() != g.NumNodes() {
		return nil, fmt.Errorf("hub: labeling has %d vertices, graph has %d", l.NumVertices(), g.NumNodes())
	}
	n := g.NumNodes()
	outLabels := make([][]Hub, n)
	par.For(n, func(i int) {
		v := graph.NodeID(i)
		r := sssp.Search(g, v)
		added := make(map[graph.NodeID]bool, len(l.labels[v]))
		var hubs []Hub
		for _, h := range l.labels[v] {
			// Walk from the hub back to v along the shortest-path tree.
			for x := h.Node; x != -1 && !added[x]; x = r.Parent[x] {
				if r.Dist[x] == graph.Infinity {
					break // hub unreachable from v: keep original entry only
				}
				added[x] = true
				hubs = append(hubs, Hub{Node: x, Dist: r.Dist[x]})
			}
		}
		if !added[v] {
			hubs = append(hubs, Hub{Node: v, Dist: 0})
		}
		outLabels[i] = hubs
	})
	out := FromSlices(outLabels)
	if err := out.ComputeParents(g); err != nil {
		return nil, err
	}
	return out, nil
}
