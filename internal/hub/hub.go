// Package hub defines hub labelings (2-hop covers), the paper's central
// object: every vertex v stores a hub set S(v) together with exact
// distances, and the distance between u and v is recovered as
//
//	min_{w ∈ S(u) ∩ S(v)} dist(u,w) + dist(w,v),
//
// which is exact whenever the family {S(v)} is a shortest-path cover.
// The package provides the labeling container, the merge query, cover
// verification, monotone closure (the S* sets of Theorem 2.1's Eq. (1)),
// size statistics and bit-level serialization.
package hub

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// Hub is one entry of a vertex label: a hub vertex and the exact distance
// to it.
type Hub struct {
	Node graph.NodeID
	Dist graph.Weight
}

// Labeling holds one hub set per vertex, each sorted by hub id, enabling
// O(|S(u)|+|S(v)|) merge queries.
type Labeling struct {
	labels [][]Hub
}

// ErrNotCover reports that a labeling fails to cover some pair.
var ErrNotCover = errors.New("hub: labeling is not a shortest-path cover")

// CoverError describes a pair witnessing a cover violation.
type CoverError struct {
	U, V graph.NodeID
	Got  graph.Weight // distance decoded from labels (Infinity if no common hub)
	Want graph.Weight // true graph distance
}

func (e *CoverError) Error() string {
	return fmt.Sprintf("hub: pair (%d,%d) decodes to %d, true distance %d", e.U, e.V, e.Got, e.Want)
}

func (e *CoverError) Unwrap() error { return ErrNotCover }

// NewLabeling returns an empty labeling for n vertices.
func NewLabeling(n int) *Labeling {
	return &Labeling{labels: make([][]Hub, n)}
}

// NumVertices returns the number of vertices the labeling covers.
func (l *Labeling) NumVertices() int { return len(l.labels) }

// Add inserts hub h at distance d into S(v). Call Canonicalize after a
// batch of Adds to restore sorted, deduplicated labels.
func (l *Labeling) Add(v graph.NodeID, h graph.NodeID, d graph.Weight) {
	l.labels[v] = append(l.labels[v], Hub{Node: h, Dist: d})
}

// Label returns S(v) sorted by hub id. The slice aliases internal storage.
func (l *Labeling) Label(v graph.NodeID) []Hub { return l.labels[v] }

// SetLabel replaces S(v) wholesale (taking ownership of hubs).
func (l *Labeling) SetLabel(v graph.NodeID, hubs []Hub) { l.labels[v] = hubs }

// Canonicalize sorts every label by hub id and merges duplicates keeping
// the minimum distance.
func (l *Labeling) Canonicalize() {
	for v := range l.labels {
		hubs := l.labels[v]
		sort.Slice(hubs, func(i, j int) bool {
			if hubs[i].Node != hubs[j].Node {
				return hubs[i].Node < hubs[j].Node
			}
			return hubs[i].Dist < hubs[j].Dist
		})
		out := hubs[:0]
		for i, h := range hubs {
			if i == 0 || h.Node != hubs[i-1].Node {
				out = append(out, h)
			}
		}
		l.labels[v] = out
	}
}

// Query decodes the distance between u and v from their labels alone. It
// returns Infinity and false if the labels share no hub.
func (l *Labeling) Query(u, v graph.NodeID) (graph.Weight, bool) {
	d, _, ok := l.QueryVia(u, v)
	return d, ok
}

// QueryVia is Query but also returns the minimizing hub.
func (l *Labeling) QueryVia(u, v graph.NodeID) (graph.Weight, graph.NodeID, bool) {
	a, b := l.labels[u], l.labels[v]
	best := graph.Infinity
	var via graph.NodeID = -1
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Node < b[j].Node:
			i++
		case a[i].Node > b[j].Node:
			j++
		default:
			if d := a[i].Dist + b[j].Dist; d < best {
				best = d
				via = a[i].Node
			}
			i++
			j++
		}
	}
	return best, via, via >= 0
}

// Stats summarizes label sizes.
type Stats struct {
	Vertices int
	Total    int     // sum of |S(v)|
	Max      int     // max |S(v)|
	Avg      float64 // Total / Vertices
}

// ComputeStats returns size statistics for the labeling.
func (l *Labeling) ComputeStats() Stats {
	s := Stats{Vertices: len(l.labels)}
	for _, hubs := range l.labels {
		s.Total += len(hubs)
		if len(hubs) > s.Max {
			s.Max = len(hubs)
		}
	}
	if s.Vertices > 0 {
		s.Avg = float64(s.Total) / float64(s.Vertices)
	}
	return s
}

// VerifyCover exhaustively checks that the labeling decodes the exact
// distance for every vertex pair of g (one SSSP per vertex; intended for
// graphs up to a few thousand vertices). It returns a *CoverError on the
// first violation.
func (l *Labeling) VerifyCover(g *graph.Graph) error {
	if len(l.labels) != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", len(l.labels), g.NumNodes())
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		r := sssp.Search(g, u)
		for v := u; int(v) < g.NumNodes(); v++ {
			if err := l.checkPair(u, v, r.Dist[v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifySampled checks the labeling on `pairs` random vertex pairs.
func (l *Labeling) VerifySampled(g *graph.Graph, pairs int, seed int64) error {
	if len(l.labels) != g.NumNodes() {
		return fmt.Errorf("hub: labeling has %d vertices, graph has %d", len(l.labels), g.NumNodes())
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	for i := 0; i < pairs; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		want := sssp.Distance(g, u, v)
		if err := l.checkPair(u, v, want); err != nil {
			return err
		}
	}
	return nil
}

func (l *Labeling) checkPair(u, v graph.NodeID, want graph.Weight) error {
	got, ok := l.Query(u, v)
	if want == graph.Infinity {
		if ok {
			return &CoverError{U: u, V: v, Got: got, Want: want}
		}
		return nil
	}
	if !ok || got != want {
		if !ok {
			got = graph.Infinity
		}
		return &CoverError{U: u, V: v, Got: got, Want: want}
	}
	return nil
}

// FromSets builds a labeling with exact distances from bare hub sets by
// running one shortest-path search per distinct hub.
func FromSets(g *graph.Graph, sets [][]graph.NodeID) (*Labeling, error) {
	if len(sets) != g.NumNodes() {
		return nil, fmt.Errorf("hub: %d sets for %d vertices", len(sets), g.NumNodes())
	}
	// users[h] = vertices that want h as hub.
	users := make(map[graph.NodeID][]graph.NodeID)
	for v, hubs := range sets {
		for _, h := range hubs {
			if int(h) < 0 || int(h) >= g.NumNodes() {
				return nil, fmt.Errorf("hub: %w: hub %d", graph.ErrVertexRange, h)
			}
			users[h] = append(users[h], graph.NodeID(v))
		}
	}
	l := NewLabeling(g.NumNodes())
	for h, vs := range users {
		r := sssp.Search(g, h)
		for _, v := range vs {
			if r.Dist[v] < graph.Infinity {
				l.Add(v, h, r.Dist[v])
			}
		}
	}
	l.Canonicalize()
	return l, nil
}

// MonotoneClosure returns the monotone labeling {S*(v)}: for every hub
// x ∈ S(v), all vertices of one shortest v-x path (along a fixed
// shortest-path tree rooted at v) are added to S*(v). This is the object
// the paper's Eq. (1) bounds: |S*(v)| ≤ diam · |S(v)|.
func MonotoneClosure(g *graph.Graph, l *Labeling) (*Labeling, error) {
	if l.NumVertices() != g.NumNodes() {
		return nil, fmt.Errorf("hub: labeling has %d vertices, graph has %d", l.NumVertices(), g.NumNodes())
	}
	out := NewLabeling(g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		r := sssp.Search(g, v)
		added := make(map[graph.NodeID]bool, len(l.labels[v]))
		for _, h := range l.labels[v] {
			// Walk from the hub back to v along the shortest-path tree.
			for x := h.Node; x != -1 && !added[x]; x = r.Parent[x] {
				if r.Dist[x] == graph.Infinity {
					break // hub unreachable from v: keep original entry only
				}
				added[x] = true
				out.Add(v, x, r.Dist[x])
			}
		}
		if !added[v] {
			out.Add(v, v, 0)
		}
	}
	out.Canonicalize()
	return out, nil
}
