package hub

import (
	"sort"
	"sync"

	"hublab/internal/graph"
	"hublab/internal/par"
)

// EccIndex answers exact eccentricity and farthest-vertex queries from a
// hub labeling, in the spirit of Ducoffe's "Eccentricity queries and
// beyond using Hub Labels": every hub w stores the vertices that carry it,
// sorted by their distance to w descending, so
//
//	ecc(v) ≤ max_{w ∈ S(v)} ( d(v,w) + max_{u: w ∈ S(u)} d(w,u) )
//
// is a one-scan upper bound (EccentricityUpperBound). The scan alone can
// overshoot — d(v,w) + d(w,u) is only an upper bound on d(v,u) when w is
// off the shortest v–u path — so exact queries refine it: candidates are
// drawn best-first from the per-hub lists and their true distances decoded
// with the label merge until the best exact distance found dominates every
// remaining candidate's bound. Because every reachable u appears under its
// meeting hub with a tight bound, the refinement always terminates at the
// exact eccentricity; the number of candidates inspected adapts to how
// tight the hub geometry is instead of scanning all n vertices.
//
// On hub geometries where the bounds are loose — expander-like random
// graphs, where distances concentrate and nearly every candidate's bound
// exceeds the true eccentricity (the same regime this paper's hardness
// results live in) — best-first refinement degenerates toward scanning
// the whole inverted index. The query therefore carries a pop budget:
// once refinement has consumed it, the remaining unseen vertices are
// finished off with one batched label scan, bounding every query at
// O(n · merge) while structured instances (roads, trees, grids) stay far
// below it.
//
// The inverted lists reuse the labeling's own entries (one id and one
// distance per label entry), matching the compact per-hub auxiliary data
// that sublinear-space labeling schemes argue for.
//
// An EccIndex is immutable and safe for concurrent queries (per-query
// scratch is pooled). It is representation-generic: the labeling behind
// it may be expanded or compact, and because the inverted lists are
// fully sorted by a total order, the index — and every answer drawn
// from it — is identical across representations of the same labeling.
type EccIndex struct {
	s LabelStore
	// CSR over hubs: users of hub w sit at [start[w], start[w+1]) in the
	// id/dist arrays, sorted by distance descending (ties: id ascending).
	start     []int32
	userIDs   []graph.NodeID
	userDists []graph.Weight
	// scratch pools per-query state (seen bitmap, heap, batch and label
	// decode buffers) so concurrent queries allocate nothing in steady
	// state.
	scratch sync.Pool
}

// eccScratch is the reusable per-query state.
type eccScratch struct {
	seen  []bool
	heap  []eccCand
	pairs [][2]graph.NodeID
	out   []graph.Weight
	ids   []graph.NodeID
	ds    []graph.Weight
}

// NewEccIndex inverts the labeling into per-hub farthest-first user lists.
// Build cost is O(total · log) time and O(total) space.
func NewEccIndex(s LabelStore) *EccIndex {
	n := s.NumVertices()
	total := s.NumHubs()
	e := &EccIndex{
		s:         s,
		start:     make([]int32, n+1),
		userIDs:   make([]graph.NodeID, total),
		userDists: make([]graph.Weight, total),
	}
	// Hub ids outside [0, n) are skipped rather than indexed: a quick-
	// validated mmap view may carry forged interior ids, and the
	// inversion must stay in bounds on them (on validated labelings the
	// branch never fires).
	var idBuf []graph.NodeID
	var dBuf []graph.Weight
	for v := 0; v < n; v++ {
		ids, ds := s.Label(graph.NodeID(v), idBuf, dBuf)
		for _, h := range ids {
			if h >= 0 && int(h) < n {
				e.start[h+1]++
			}
		}
		idBuf, dBuf = ids[:0], ds[:0]
	}
	for w := 0; w < n; w++ {
		e.start[w+1] += e.start[w]
	}
	next := make([]int32, n)
	copy(next, e.start[:n])
	for v := 0; v < n; v++ {
		ids, ds := s.Label(graph.NodeID(v), idBuf, dBuf)
		for i, h := range ids {
			if h < 0 || int(h) >= n {
				continue
			}
			e.userIDs[next[h]] = graph.NodeID(v)
			e.userDists[next[h]] = ds[i]
			next[h]++
		}
		idBuf, dBuf = ids[:0], ds[:0]
	}
	// The per-hub sort is by a total order ((dist desc, id asc); a vertex
	// appears at most once per hub list), so the lists come out identical
	// no matter what entry order the representation yielded above.
	par.For(n, func(w int) {
		lo, hi := e.start[w], e.start[w+1]
		sort.Sort(&userSorter{ids: e.userIDs[lo:hi], ds: e.userDists[lo:hi]})
	})
	return e
}

type userSorter struct {
	ids []graph.NodeID
	ds  []graph.Weight
}

func (s *userSorter) Len() int { return len(s.ids) }
func (s *userSorter) Less(i, j int) bool {
	if s.ds[i] != s.ds[j] {
		return s.ds[i] > s.ds[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *userSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ds[i], s.ds[j] = s.ds[j], s.ds[i]
}

// getScratch pops (or makes) a per-query scratch sized for n vertices.
func (e *EccIndex) getScratch(n int) *eccScratch {
	sc, _ := e.scratch.Get().(*eccScratch)
	if sc == nil || len(sc.seen) < n {
		sc = &eccScratch{seen: make([]bool, n)}
	}
	return sc
}

// EccentricityUpperBound returns the one-scan hub bound on ecc(v) — the
// quantity the exact query refines. It never underestimates.
func (e *EccIndex) EccentricityUpperBound(v graph.NodeID) graph.Weight {
	n := e.s.NumVertices()
	sc := e.getScratch(n)
	defer e.scratch.Put(sc)
	ids, ds := e.s.Label(v, sc.ids, sc.ds)
	sc.ids, sc.ds = ids[:0], ds[:0]
	var ub graph.Weight
	for i, w := range ids {
		if w < 0 || int(w) >= n {
			continue // forged id on a quick-validated view: not inverted
		}
		if lo := e.start[w]; lo < e.start[w+1] {
			if b := ds[i] + e.userDists[lo]; b > ub {
				ub = b
			}
		}
	}
	return ub
}

// eccCand is one in-flight per-hub cursor of the best-first refinement:
// the next candidate of hub run [pos, end) with bound key = d(v,hub) +
// d(hub, userIDs[pos]).
type eccCand struct {
	key      graph.Weight
	pos, end int32
	dw       graph.Weight
}

// Eccentricity returns the exact eccentricity of v — the maximum distance
// from v over all reachable vertices — together with a vertex attaining
// it (v itself when v reaches nothing else). v must be in range.
func (e *EccIndex) Eccentricity(v graph.NodeID) (graph.Weight, graph.NodeID) {
	n := e.s.NumVertices()
	sc := e.getScratch(n)
	defer func() {
		clear(sc.seen)
		e.scratch.Put(sc)
	}()

	ids, ds := e.s.Label(v, sc.ids, sc.ds)
	sc.ids, sc.ds = ids[:0], ds[:0]
	heap := sc.heap[:0]
	for i, w := range ids {
		if w < 0 || int(w) >= n {
			continue // forged id on a quick-validated view: not inverted
		}
		if lo := e.start[w]; lo < e.start[w+1] {
			heap = append(heap, eccCand{key: ds[i] + e.userDists[lo], pos: lo, end: e.start[w+1], dw: ds[i]})
		}
	}
	sc.heap = heap
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i)
	}
	best, bestU := graph.Weight(0), v
	sc.seen[v] = true
	// Each heap pop is cheap, but on loose hub geometries the number of
	// candidates with bound > ecc can approach the inverted-index size;
	// past the budget a single batched scan of the unseen vertices is
	// strictly cheaper and settles the query exactly.
	budget := 2*n + 16*len(heap) + 64
	for len(heap) > 0 && heap[0].key > best {
		if budget--; budget < 0 {
			best, bestU = e.scanRemaining(v, sc, best, bestU)
			return best, bestU
		}
		c := heap[0]
		u := e.userIDs[c.pos]
		if !sc.seen[u] {
			sc.seen[u] = true
			// The exact distance: u shares a hub with v, so the merge is
			// always finite and ≤ the candidate's bound.
			if d, ok := e.s.Query(v, u); ok && d > best {
				best, bestU = d, u
			}
		}
		if c.pos+1 < c.end {
			heap[0] = eccCand{key: c.dw + e.userDists[c.pos+1], pos: c.pos + 1, end: c.end, dw: c.dw}
			siftDown(heap, 0)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(heap, 0)
			}
		}
	}
	return best, bestU
}

// scanRemaining settles an over-budget query: every vertex not yet seen
// gets one exact merge, batched through the interleaved QueryBatch path.
// Ties keep the earlier (refinement or lower-id) vertex, so the result
// stays deterministic.
func (e *EccIndex) scanRemaining(v graph.NodeID, sc *eccScratch, best graph.Weight, bestU graph.NodeID) (graph.Weight, graph.NodeID) {
	const chunk = 512
	if cap(sc.pairs) < chunk {
		sc.pairs = make([][2]graph.NodeID, chunk)
		sc.out = make([]graph.Weight, chunk)
	}
	pairs, out := sc.pairs[:0], sc.out[:chunk]
	n := e.s.NumVertices()
	flush := func() {
		e.s.QueryBatch(pairs, out)
		for i := range pairs {
			if d := out[i]; d < graph.Infinity && d > best {
				best, bestU = d, pairs[i][1]
			}
		}
		pairs = pairs[:0]
	}
	for u := 0; u < n; u++ {
		if sc.seen[u] {
			continue
		}
		pairs = append(pairs, [2]graph.NodeID{v, graph.NodeID(u)})
		if len(pairs) == chunk {
			flush()
		}
	}
	if len(pairs) > 0 {
		flush()
	}
	sc.pairs = pairs[:0]
	return best, bestU
}

// Farthest returns a vertex at maximum distance from v and that distance.
func (e *EccIndex) Farthest(v graph.NodeID) (graph.NodeID, graph.Weight) {
	d, u := e.Eccentricity(v)
	return u, d
}

// siftDown restores the max-heap property (by key; ties broken by lower
// position for determinism) at index i.
func siftDown(h []eccCand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && candLess(h[m], h[l]) {
			m = l
		}
		if r < len(h) && candLess(h[m], h[r]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// candLess orders a strictly below b in the max-heap.
func candLess(a, b eccCand) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.pos > b.pos
}
