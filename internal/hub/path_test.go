package hub_test

import (
	"errors"
	"math/rand"
	"testing"

	"hublab/internal/cover"
	"hublab/internal/dlabel"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hhl"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// checkPathValid asserts path is an edge-valid shortest u–v path: correct
// endpoints, every consecutive pair an edge of g, and weights summing to
// the true distance.
func checkPathValid(t *testing.T, g *graph.Graph, u, v graph.NodeID, path []graph.NodeID, want graph.Weight) {
	t.Helper()
	if want == graph.Infinity {
		if len(path) != 0 {
			t.Fatalf("pair (%d,%d) unreachable but got path %v", u, v, path)
		}
		return
	}
	if len(path) == 0 {
		t.Fatalf("pair (%d,%d) reachable (d=%d) but got empty path", u, v, want)
	}
	if path[0] != u || path[len(path)-1] != v {
		t.Fatalf("pair (%d,%d): path endpoints %d..%d", u, v, path[0], path[len(path)-1])
	}
	var sum graph.Weight
	for i := 1; i < len(path); i++ {
		w, ok := g.EdgeWeight(path[i-1], path[i])
		if !ok {
			t.Fatalf("pair (%d,%d): path step %d–%d is not an edge", u, v, path[i-1], path[i])
		}
		sum += w
	}
	if sum != want {
		t.Fatalf("pair (%d,%d): path weighs %d, distance is %d (path %v)", u, v, sum, want, path)
	}
}

// pllSetsPlusNoise converts a PLL labeling into bare hub sets with extra
// random hubs mixed in: still a shortest-path cover (supersets of a cover
// with exact distances stay exact) but no longer hierarchical, so the
// unpacking loop's re-query fallback is exercised.
func pllSetsPlusNoise(t *testing.T, g *graph.Graph, seed int64) [][]graph.NodeID {
	t.Helper()
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	sets := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		for _, h := range l.Label(graph.NodeID(v)) {
			sets[v] = append(sets[v], h.Node)
		}
		for k := 0; k < 3; k++ {
			sets[v] = append(sets[v], graph.NodeID(rng.Intn(n)))
		}
	}
	return sets
}

// TestAppendPathAcrossBuilders unpacks sampled paths from every
// parent-recording construction on several graph families and checks them
// edge by edge against true distances.
func TestAppendPathAcrossBuilders(t *testing.T) {
	graphs := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"gnm", func() (*graph.Graph, error) { return gen.Gnm(150, 270, 7) }},
		{"grid", func() (*graph.Graph, error) { return gen.Grid(9, 10) }},
		{"tree", func() (*graph.Graph, error) { return gen.RandomTree(120, 3) }},
		{"road", func() (*graph.Graph, error) { return gen.RoadLike(8, 8, 4, 5) }},
	}
	for _, gc := range graphs {
		g, err := gc.g()
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		n := g.NumNodes()
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		builders := []struct {
			name string
			skip bool
			b    func() (*hub.Labeling, error)
		}{
			{"pll", false, func() (*hub.Labeling, error) { return pll.Build(g, pll.Options{}) }},
			{"hhl", false, func() (*hub.Labeling, error) { return hhl.Canonical(g, order) }},
			{"greedy-cover", g.Weighted(), func() (*hub.Labeling, error) { return cover.Greedy(g) }},
			{"fromsets-noisy", false, func() (*hub.Labeling, error) {
				return hub.FromSets(g, pllSetsPlusNoise(t, g, 11))
			}},
			{"monotone", false, func() (*hub.Labeling, error) {
				base, err := pll.Build(g, pll.Options{})
				if err != nil {
					return nil, err
				}
				return hub.MonotoneClosure(g, base)
			}},
			{"centroid", gc.name != "tree", func() (*hub.Labeling, error) { return dlabel.Centroid(g) }},
		}
		for _, bc := range builders {
			if bc.skip {
				continue
			}
			t.Run(gc.name+"/"+bc.name, func(t *testing.T) {
				l, err := bc.b()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				f := l.Freeze()
				if !f.HasParents() {
					t.Fatal("builder did not record a parent column")
				}
				rng := rand.New(rand.NewSource(21))
				var buf []graph.NodeID
				for k := 0; k < 400; k++ {
					u := graph.NodeID(rng.Intn(n))
					v := graph.NodeID(rng.Intn(n))
					want := sssp.Distance(g, u, v)
					if got, ok := f.Query(u, v); (want == graph.Infinity) == ok || (ok && got != want) {
						t.Fatalf("labels are not a cover at (%d,%d)", u, v)
					}
					buf = buf[:0]
					buf, err = f.AppendPath(buf, u, v)
					if err != nil {
						t.Fatalf("AppendPath(%d,%d): %v", u, v, err)
					}
					checkPathValid(t, g, u, v, buf, want)
				}
			})
		}
	}
}

// TestAppendPathEdgeCases pins the corner contracts: self paths, the
// unreachable empty path, missing parents, and out-of-range ids.
func TestAppendPathEdgeCases(t *testing.T) {
	// Two components: 0–1–2 and 3–4.
	b := graph.NewBuilder(5, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := l.Freeze()

	if p, err := f.Path(2, 2); err != nil || len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v, %v", p, err)
	}
	if p, err := f.Path(0, 3); err != nil || len(p) != 0 {
		t.Errorf("cross-component path = %v, %v (want empty, nil)", p, err)
	}
	if p, err := f.Path(0, 2); err != nil || len(p) != 3 {
		t.Errorf("path(0,2) = %v, %v", p, err)
	}
	if _, err := f.Path(-1, 2); !errors.Is(err, graph.ErrVertexRange) {
		t.Errorf("negative id error = %v", err)
	}
	if _, err := f.Path(0, 99); !errors.Is(err, graph.ErrVertexRange) {
		t.Errorf("big id error = %v", err)
	}

	// A labeling without parents must refuse with the documented sentinel.
	bare := hub.NewLabeling(2)
	bare.Add(0, 0, 0)
	bare.Add(1, 0, 1)
	bare.Add(1, 1, 0)
	bare.Canonicalize()
	if _, err := bare.Freeze().Path(0, 1); !errors.Is(err, hub.ErrNoParents) {
		t.Errorf("parentless path error = %v, want ErrNoParents", err)
	}
}

// TestAppendPathAllocs pins the amortized allocation bound of the
// acceptance criteria: with a reused destination buffer, path unpacking
// performs at most 2 allocations per query (steady state is 0).
func TestAppendPathAllocs(t *testing.T) {
	g, err := gen.Gnm(400, 720, 5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := l.Freeze()
	buf := make([]graph.NodeID, 0, 512)
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]graph.NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(400)), graph.NodeID(rng.Intn(400))}
	}
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		p := pairs[i%len(pairs)]
		i++
		var err error
		buf, err = f.AppendPath(buf[:0], p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Errorf("AppendPath allocates %.2f/query, want ≤ 2 amortized", avg)
	}
}

// TestThawCarriesParents: flat → mutable → flat keeps the parent column.
func TestThawCarriesParents(t *testing.T) {
	g, err := gen.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := l.Freeze()
	back := f.Thaw().Freeze()
	if !back.HasParents() {
		t.Fatal("Thaw dropped the parent column")
	}
	p1, err1 := f.Path(0, 15)
	p2, err2 := back.Path(0, 15)
	if err1 != nil || err2 != nil || len(p1) != len(p2) {
		t.Fatalf("paths diverge after thaw: %v/%v %v/%v", p1, err1, p2, err2)
	}
}

// TestMutationDropsParents: Add and SetLabel invalidate the column rather
// than leaving it silently out of sync, and ComputeParents re-attaches it.
func TestMutationDropsParents(t *testing.T) {
	g, err := gen.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Add(0, 8, 4) // redundant exact entry: cover stays intact
	l.Canonicalize()
	if _, err := l.Freeze().Path(0, 8); !errors.Is(err, hub.ErrNoParents) {
		t.Errorf("path after Add = %v, want ErrNoParents", err)
	}
	if err := l.ComputeParents(g); err != nil {
		t.Fatalf("ComputeParents: %v", err)
	}
	if p, err := l.Freeze().Path(0, 8); err != nil || len(p) != 5 {
		t.Errorf("path after ComputeParents = %v, %v", p, err)
	}
}
