package hub_test

// Manual A/B premium measurement for E25: alternates timed rounds of
// the expanded and compact batched kernels so thermal drift hits both
// sides equally. Run with:
//
//	E25_MEASURE=1 go test -run TestE25PremiumMeasure -v ./internal/hub/
import (
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
)

var measure10k struct {
	once  sync.Once
	c     *hub.CompactLabeling
	f     *hub.FlatLabeling
	pairs [][2]graph.NodeID
	err   error
}

func measureFixture(t testing.TB) (*hub.FlatLabeling, *hub.CompactLabeling, [][2]graph.NodeID) {
	t.Helper()
	measure10k.once.Do(func() {
		g, err := gen.Gnm(10000, 18000, 17)
		if err != nil {
			measure10k.err = err
			return
		}
		labels, err := pll.Build(g, pll.Options{})
		if err != nil {
			measure10k.err = err
			return
		}
		measure10k.f = labels.Freeze()
		measure10k.c = hub.CompactFromFlat(measure10k.f)
		rng := rand.New(rand.NewSource(5))
		measure10k.pairs = make([][2]graph.NodeID, 1024)
		for i := range measure10k.pairs {
			measure10k.pairs[i] = [2]graph.NodeID{
				graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
		}
	})
	if measure10k.err != nil {
		t.Fatal(measure10k.err)
	}
	return measure10k.f, measure10k.c, measure10k.pairs
}

func TestE25PremiumMeasure(t *testing.T) {
	if os.Getenv("E25_MEASURE") == "" {
		t.Skip("set E25_MEASURE=1 to run")
	}
	flat, compact, pairs := measureFixture(t)
	out := make([]graph.Weight, len(pairs))
	const rounds = 10
	const reps = 30
	kernels := []int{0, 1}
	minE := time.Duration(1 << 62)
	minC := map[int]time.Duration{}
	for _, k := range kernels {
		minC[k] = 1 << 62
	}
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			flat.QueryBatch(pairs, out)
		}
		if e := time.Since(t0); e < minE {
			minE = e
		}
		for _, k := range kernels {
			hub.SetBatchKernelForTest(k)
			t0 = time.Now()
			for i := 0; i < reps; i++ {
				compact.QueryBatch(pairs, out)
			}
			if c := time.Since(t0); c < minC[k] {
				minC[k] = c
			}
		}
	}
	hub.SetBatchKernelForTest(0)
	var ids0, ids1 []int32
	var ds0, ds1 []graph.Weight
	minD := time.Duration(1 << 62)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			for _, p := range pairs {
				ids0, ds0 = compact.DecodeRunForTest(p[0], ids0, ds0)
				ids1, ds1 = compact.DecodeRunForTest(p[1], ids1, ds1)
			}
		}
		if d := time.Since(t0); d < minD {
			minD = d
		}
	}
	_ = ids0
	_ = ids1
	perQ := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(reps*len(pairs)) }
	t.Logf("expanded       %6.0f ns/q", perQ(minE))
	t.Logf("decode-only    %6.0f ns/q", perQ(minD))
	for _, k := range kernels {
		t.Logf("compact k=%d    %6.0f ns/q  premium %.3f", k, perQ(minC[k]), float64(minC[k])/float64(minE))
	}
}
