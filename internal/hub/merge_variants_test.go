package hub

// Merge-loop ablations for the flat representation. The shipped Query uses
// a branch-reduced advance (sign-bit arithmetic) because the hub-id
// comparison of two random labels is unpredictable; the classic three-way
// branchy merge is kept here as the measured alternative. QueryBatch keeps
// three merges in flight because the single merge is latency-bound on its
// load→compare→advance chain; 2- and 4-stream variants measured worse or
// equal (tail drain waste and register spills respectively).

import (
	"math/rand"
	"sort"
	"testing"

	"hublab/internal/graph"
)

// buildSyntheticFlat builds labels mimicking the Gnm(10k) PLL shape:
// ~`avg` hubs per label, skewed toward low ids (hierarchical labelings
// share important hubs, so merges see realistic match density).
func buildSyntheticFlat(n, avg int, seed int64) *FlatLabeling {
	rng := rand.New(rand.NewSource(seed))
	labels := make([][]Hub, n)
	for v := range labels {
		m := avg/2 + rng.Intn(avg)
		seen := map[graph.NodeID]bool{}
		hubs := make([]Hub, 0, m)
		for len(hubs) < m {
			var h graph.NodeID
			if rng.Intn(2) == 0 {
				h = graph.NodeID(rng.Intn(100))
			} else {
				h = graph.NodeID(rng.Intn(n))
			}
			if !seen[h] {
				seen[h] = true
				hubs = append(hubs, Hub{Node: h, Dist: graph.Weight(rng.Intn(30))})
			}
		}
		sort.Slice(hubs, func(i, j int) bool { return hubs[i].Node < hubs[j].Node })
		labels[v] = hubs
	}
	return FromSlices(labels).Freeze()
}

// queryBranchy is the classic three-way branchy merge over the flat
// arrays — the measured alternative to the shipped branch-reduced Query.
func queryBranchy(f *FlatLabeling, u, v graph.NodeID) (graph.Weight, bool) {
	i, j := int(f.offsets[u]), int(f.offsets[v])
	ids, ds := f.hubIDs, f.dists
	best := graph.Infinity
	a, b := ids[i], ids[j]
	for {
		if a == b {
			if a == flatSentinel {
				break
			}
			if d := ds[i] + ds[j]; d < best {
				best = d
			}
			i++
			j++
			a, b = ids[i], ids[j]
		} else if a < b {
			i++
			a = ids[i]
		} else {
			j++
			b = ids[j]
		}
	}
	return best, best < graph.Infinity
}

func TestMergeVariantsAgree(t *testing.T) {
	f := buildSyntheticFlat(500, 40, 3)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 20000; k++ {
		u := graph.NodeID(rng.Intn(500))
		v := graph.NodeID(rng.Intn(500))
		d0, ok0 := f.Query(u, v)
		d1, ok1 := queryBranchy(f, u, v)
		if d0 != d1 || ok0 != ok1 {
			t.Fatalf("(%d,%d): branchless (%d,%v) vs branchy (%d,%v)", u, v, d0, ok0, d1, ok1)
		}
	}
}

func TestQueryBatchAgrees(t *testing.T) {
	f := buildSyntheticFlat(500, 40, 3)
	rng := rand.New(rand.NewSource(1))
	// Cover the small-batch fallback (<3), refill, and drain paths.
	for _, count := range []int{0, 1, 2, 3, 4, 5, 7, 101} {
		pairs := make([][2]graph.NodeID, count)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(500)), graph.NodeID(rng.Intn(500))}
		}
		out := make([]graph.Weight, count)
		f.QueryBatch(pairs, out)
		for i, p := range pairs {
			want, _ := f.Query(p[0], p[1])
			if out[i] != want {
				t.Fatalf("count %d: batch[%d] (%d,%d) = %d, want %d", count, i, p[0], p[1], out[i], want)
			}
		}
	}
}

func benchFlatVariant(b *testing.B, fn func(*FlatLabeling, graph.NodeID, graph.NodeID) (graph.Weight, bool)) {
	f := buildSyntheticFlat(10000, 338, 7)
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		fn(f, p[0], p[1])
	}
}

func BenchmarkMergeBranchless(b *testing.B) {
	benchFlatVariant(b, (*FlatLabeling).Query)
}

func BenchmarkMergeBranchy(b *testing.B) { benchFlatVariant(b, queryBranchy) }

func BenchmarkMergeBatch(b *testing.B) {
	f := buildSyntheticFlat(10000, 338, 7)
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(10000)), graph.NodeID(rng.Intn(10000))}
	}
	out := make([]graph.Weight, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(pairs) {
		f.QueryBatch(pairs, out)
	}
}
