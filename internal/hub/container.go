package hub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hublab/internal/bitio"
	"hublab/internal/graph"
)

// Container format: the persistent on-disk form of a FlatLabeling.
//
// A container is a little-endian byte stream:
//
//	header (32 bytes)
//	  [ 0: 8)  magic  "HUBLABIX"
//	  [ 8:10)  format version (1, 2 or 3)
//	  [10:12)  flags (bit 0: payload is Elias-gamma compressed, version ≤ 2;
//	           bit 1, version ≥ 2 only: a parent column follows the payload)
//	  [12:16)  reserved (must be zero)
//	  [16:24)  n      — vertex count
//	  [24:32)  slots  — len of the hub-id/distance columns, sentinels included
//	payload (version 1 and 2)
//	  raw    flag clear: offsets (n+1)·int32, hubIDs slots·int32,
//	         dists slots·int32 — the flat arrays verbatim, so loading is a
//	         sequential read plus one pass of byte→int32 conversion
//	  gamma  flag set: a single gamma section in exactly the stream format
//	         of Labeling.Encode (vertex count, then per vertex the label
//	         size and gap/distance pairs, all Elias gamma), preceded by its
//	         byte length as uint64
//	parent column (version 2, only when flag bit 1 is set)
//	  parents slots·int32 — the next-hop column verbatim (-1 on self
//	  entries and sentinel slots), raw even in gamma containers: parents
//	  are near-incompressible neighbor ids, and keeping them columnar
//	  preserves the near-memcpy load
//	payload (version 4 — the compact, mmap-servable layout)
//	  [32:40)  section count (6, or 7 with the parent flag)
//	  [40:48)  escape-slot count
//	  then the same {offset, length} table + header crc32 scheme as
//	  version 3, over the compact columns in fixed order: offsets
//	  (n+1)·int32 (entry CSR, no sentinels), remap n·int32 (rank →
//	  original hub id), escOff (n+1)·int32 (escape CSR), hubDelta
//	  entries·u8, distDelta entries·u8 (or ·u16LE with flag bit 2),
//	  esc escapes·int32, and optionally parents entries·int32. Same
//	  64-byte alignment, zero padding and canonical-layout rejection
//	  discipline as version 3; see CompactLabeling for the encoding and
//	  OpenContainerMmap for the quick-open trust model (identical to v3
//	  plus one O(n) addition: the remap table is verified to be a
//	  permutation before any query runs). Flag bit 0 (gamma) and the
//	  version-3 layout are both invalid in version 4 — the compact
//	  payload composes with nothing else.
//	payload (version 3 — the aligned, mmap-servable layout)
//	  [32:40)  section count (3, or 4 with the parent flag)
//	  then per section {file offset u64, byte length u64}: the table for
//	  the offsets, hubIDs, dists (and parents) columns in that fixed
//	  order, followed by a crc32 (Castagnoli) of everything before it —
//	  the header checksum, which lets the zero-copy open authenticate the
//	  layout in O(1) without streaming the (possibly multi-GB) columns
//	  through the CPU. Every section starts at the next 64-byte file
//	  boundary after its predecessor (so each column is cache-line
//	  aligned both in the file and, since mappings are page-aligned, in
//	  memory), its length is exactly the column's raw size, and every
//	  padding byte between sections is zero. The table is deliberately
//	  redundant — the reader recomputes the canonical layout and rejects
//	  any deviation (misaligned offsets, over- or undersized lengths,
//	  nonzero padding), so a hostile writer cannot smuggle unchecked
//	  bytes or force out-of-map column views. The gamma flag is invalid
//	  in version 3: a compressed payload cannot be pointed at zero-copy.
//	trailer (4 bytes)
//	  crc32 (Castagnoli) of everything before it
//
// The writer emits version 1 — byte-identical to the historical format —
// whenever the labeling carries no parent column, version 2 with flag
// bit 1 when it does, and version 3 only when ContainerOptions.Aligned
// asks for it, so old files load unchanged, new files without parents
// stay readable by old code, and no format drift happens silently. A
// version-1 file loads with no parent column; Path queries on it report
// ErrNoParents.
//
// Both the writer and the reader work directly on the flat arrays: the
// slice-of-slices Labeling form is never materialized, and the raw path in
// particular loads near-memcpy. Version-3 containers additionally support
// OpenContainerMmap, which skips even the memcpy: the columns are typed
// views of the mapped file. All multi-byte fields are little-endian
// regardless of host order.

// ContainerVersion is the newest container format version this package
// writes and reads. Version 1 (no parent column), version 2 and
// version 3 (Aligned) files remain readable; version 4 is only written
// on request (Compact).
const ContainerVersion = 4

// containerMagic identifies hub-labeling index containers.
var containerMagic = [8]byte{'H', 'U', 'B', 'L', 'A', 'B', 'I', 'X'}

const (
	containerHeaderLen   = 32
	containerFlagGamma   = 1 << 0
	containerFlagParents = 1 << 1
	// containerFlagWideDist (version 4 only) widens the distance column
	// to two-byte codes; set deterministically by the plan when narrow
	// distance escapes would exceed 1 in 8 entries.
	containerFlagWideDist = 1 << 2
	containerKnownFlagsV1 = containerFlagGamma
	containerKnownFlagsV2 = containerFlagGamma | containerFlagParents
	containerKnownFlagsV3 = containerFlagParents
	containerKnownFlagsV4 = containerFlagParents | containerFlagWideDist
	// containerVersionParents is the version emitted for labelings with a
	// parent column when no alignment is requested.
	containerVersionParents = 2
	// containerVersionAligned is the version of the expanded aligned
	// layout (written on Aligned; version 4 is the compact layout).
	containerVersionAligned = 3
	// containerAlign is the file-offset alignment of every version-3
	// section: one cache line, which page-aligned mappings carry through
	// to memory addresses.
	containerAlign = 64
)

// alignUp rounds n up to the next containerAlign boundary.
func alignUp(n int64) int64 {
	return (n + containerAlign - 1) &^ (containerAlign - 1)
}

// ErrContainer reports a malformed or corrupt index container.
var ErrContainer = errors.New("hub: corrupt index container")

// ContainerOptions configures WriteContainer.
type ContainerOptions struct {
	// Compress selects the Elias-gamma payload (smaller, slower to load)
	// over the raw column payload (larger, near-memcpy to load).
	Compress bool
	// Aligned selects the version-3 layout: every column 64-byte aligned
	// with explicit zero padding, servable zero-copy via
	// OpenContainerMmap. Without it the writer emits the historical
	// version 1/2 stream byte-identically. Incompatible with Compress.
	Aligned bool
	// Compact selects the version-4 layout: the queryable compressed
	// representation (frequency-ranked remap, narrow delta columns with
	// escape slots), 64-byte aligned and servable zero-copy like
	// version 3 at roughly a quarter of the resident bytes. Incompatible
	// with both Compress and Aligned — the compact payload IS the
	// compression and IS aligned.
	Compact bool
}

// errCompactCompose rejects option sets that try to combine the compact
// payload with another payload transform.
var errCompactCompose = errors.New("hub: the compact (v4) container composes with no other payload option (drop -compress/-aligned)")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes f as a raw (uncompressed) container. It implements
// io.WriterTo.
func (f *FlatLabeling) WriteTo(w io.Writer) (int64, error) {
	return f.WriteContainer(w, ContainerOptions{})
}

// WriteContainer serializes f in the container format described above and
// returns the number of bytes written.
func (f *FlatLabeling) WriteContainer(w io.Writer, opts ContainerOptions) (int64, error) {
	if opts.Compact {
		if opts.Compress || opts.Aligned {
			return 0, errCompactCompose
		}
		// Re-encoding rank-maps every hub id, so the labels must be
		// structurally valid — always true for built or decoded labelings,
		// not guaranteed for quick-validated mmap views. The audit is
		// O(entries), the same order as the write itself.
		if err := f.validate(); err != nil {
			return 0, fmt.Errorf("hub: compact re-encode: %w", err)
		}
		return CompactFromFlat(f).writeV4(w)
	}
	if opts.Aligned {
		if opts.Compress {
			return 0, fmt.Errorf("hub: aligned containers cannot use the gamma payload")
		}
		return f.writeAligned(w)
	}
	var header [containerHeaderLen]byte
	copy(header[0:8], containerMagic[:])
	version := uint16(1)
	flags := uint16(0)
	if opts.Compress {
		flags |= containerFlagGamma
	}
	if f.parents != nil {
		version = containerVersionParents
		flags |= containerFlagParents
	}
	binary.LittleEndian.PutUint16(header[8:10], version)
	binary.LittleEndian.PutUint16(header[10:12], flags)
	binary.LittleEndian.PutUint64(header[16:24], uint64(f.NumVertices()))
	binary.LittleEndian.PutUint64(header[24:32], uint64(len(f.hubIDs)))

	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: w}
	body := io.MultiWriter(cw, crc)
	if _, err := body.Write(header[:]); err != nil {
		return cw.n, err
	}
	if opts.Compress {
		stream, err := f.encodeGamma()
		if err != nil {
			return cw.n, err
		}
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(stream)))
		if _, err := body.Write(lenBuf[:]); err != nil {
			return cw.n, err
		}
		if _, err := body.Write(stream); err != nil {
			return cw.n, err
		}
		if err := writeColumns(body, [][]int32{f.parents}); err != nil {
			return cw.n, err
		}
	} else {
		// Stream the columns through one reused chunk buffer instead of
		// materializing a second full copy of the arrays. A nil parents
		// column simply contributes nothing.
		if err := writeColumns(body, [][]int32{f.offsets, f.hubIDs, f.dists, f.parents}); err != nil {
			return cw.n, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeColumns streams int32 columns little-endian through one reused
// chunk buffer instead of materializing a full byte copy of the arrays.
func writeColumns(w io.Writer, cols [][]int32) error {
	chunk := make([]byte, 4<<20)
	for _, col := range cols {
		for len(col) > 0 {
			n := len(col)
			if n > len(chunk)/4 {
				n = len(chunk) / 4
			}
			putInt32s(chunk, 0, col[:n])
			if _, err := w.Write(chunk[:4*n]); err != nil {
				return err
			}
			col = col[n:]
		}
	}
	return nil
}

// containerSection is one column's place in a version-3 container.
type containerSection struct {
	off, length int64
}

// alignedHeaderLen is the byte length of the version-3 extended header:
// base header, section count, k table entries, header crc32.
func alignedHeaderLen(k int) int64 {
	return containerHeaderLen + 8 + 16*int64(k) + 4
}

// containerSections computes the canonical version-3 layout for n
// vertices and slots label slots: each column's file offset and byte
// length in fixed order (offsets, hubIDs, dists, then parents when
// present), plus the position of the crc trailer. Every section starts
// at the first 64-byte boundary at or after its predecessor's end; the
// reader rejects any file that deviates from exactly this layout.
func containerSections(n, slots int64, parents bool) (secs []containerSection, end int64) {
	k := 3
	if parents {
		k = 4
	}
	lengths := []int64{4 * (n + 1), 4 * slots, 4 * slots, 4 * slots}[:k]
	pos := alignedHeaderLen(k)
	secs = make([]containerSection, k)
	for i, l := range lengths {
		pos = alignUp(pos)
		secs[i] = containerSection{off: pos, length: l}
		pos += l
	}
	return secs, pos
}

// writeAligned emits the version-3 aligned container.
func (f *FlatLabeling) writeAligned(w io.Writer) (int64, error) {
	n, slots := int64(f.NumVertices()), int64(len(f.hubIDs))
	secs, _ := containerSections(n, slots, f.parents != nil)
	hdr := make([]byte, alignedHeaderLen(len(secs)))
	copy(hdr[0:8], containerMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], containerVersionAligned)
	flags := uint16(0)
	if f.parents != nil {
		flags |= containerFlagParents
	}
	binary.LittleEndian.PutUint16(hdr[10:12], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(slots))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(secs)))
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[40+16*i:], uint64(s.off))
		binary.LittleEndian.PutUint64(hdr[48+16*i:], uint64(s.length))
	}
	binary.LittleEndian.PutUint32(hdr[len(hdr)-4:], crc32.Checksum(hdr[:len(hdr)-4], castagnoli))

	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: w}
	body := io.MultiWriter(cw, crc)
	if _, err := body.Write(hdr); err != nil {
		return cw.n, err
	}
	var pad [containerAlign]byte
	pos := int64(len(hdr))
	cols := [][]int32{f.offsets, f.hubIDs, f.dists, f.parents}
	sec := 0
	for _, col := range cols {
		if col == nil {
			continue
		}
		s := secs[sec]
		sec++
		if _, err := body.Write(pad[:s.off-pos]); err != nil {
			return cw.n, err
		}
		if err := writeColumns(body, [][]int32{col}); err != nil {
			return cw.n, err
		}
		pos = s.off + s.length
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// countingWriter tracks bytes written to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadFrom parses a container produced by WriteContainer into f,
// implementing io.ReaderFrom. Malformed input of any kind — bad magic,
// an unknown version or flag, truncated sections, checksum mismatch, or
// structurally invalid arrays — is reported as an error wrapping
// ErrContainer; parsing never panics on hostile input. Loading into a
// view-backed labeling is a programmer error and panics: overwriting the
// struct would orphan the mapping with live column views outstanding —
// Release the view and load into a fresh FlatLabeling instead.
func (f *FlatLabeling) ReadFrom(r io.Reader) (int64, error) {
	if !f.Owned() {
		panic("hub: ReadFrom into a view-backed FlatLabeling would orphan its mapping (Release it and load into a fresh labeling)")
	}
	loaded, n, err := readContainer(r)
	if err != nil {
		return n, err
	}
	*f = *loaded
	return n, nil
}

// ReadContainer parses a container produced by WriteContainer and
// returns the loaded FlatLabeling. See (*FlatLabeling).ReadFrom for the
// error contract; ReadContainer never panics on hostile input. A
// version-4 container is decoded, fully validated, and then expanded —
// use ReadContainerStore to keep the compact representation.
func ReadContainer(r io.Reader) (*FlatLabeling, error) {
	f, _, err := readContainer(r)
	return f, err
}

// ReadContainerStore parses a container in whatever representation it
// was written: version 1–3 files load as a *FlatLabeling, version-4
// files as a *CompactLabeling. Every load is fully validated (structure
// and trailer checksum); errors wrap ErrContainer and parsing never
// panics on hostile input.
func ReadContainerStore(r io.Reader) (LabelStore, error) {
	s, _, err := readContainerStore(r)
	return s, err
}

// readContainer is readContainerStore pinned to the expanded
// representation: compact loads are expanded before returning.
func readContainer(r io.Reader) (*FlatLabeling, int64, error) {
	s, read, err := readContainerStore(r)
	if err != nil {
		return nil, read, err
	}
	if c, ok := s.(*CompactLabeling); ok {
		return c.Expand(), read, nil
	}
	return s.(*FlatLabeling), read, nil
}

// parseContainerHeader validates the fixed 32-byte header shared by all
// container versions — magic, version, the version-appropriate flag
// mask, the reserved field, and the n/slots plausibility bounds that
// cap hostile allocations before any buffer is reserved (the flat
// offsets are int32, so slots — and a fortiori n — must fit). Both the
// streaming reader and the mmap opener go through here, so a hardening
// fix lands in every door at once.
func parseContainerHeader(header []byte) (version, flags uint16, n64, slots64 uint64, err error) {
	if [8]byte(header[0:8]) != containerMagic {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrContainer, header[0:8])
	}
	version = binary.LittleEndian.Uint16(header[8:10])
	if version < 1 || version > ContainerVersion {
		return 0, 0, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrContainer, version)
	}
	known := uint16(containerKnownFlagsV1)
	switch {
	case version >= 4:
		known = containerKnownFlagsV4
	case version == 3:
		known = containerKnownFlagsV3
	case version == 2:
		known = containerKnownFlagsV2
	}
	flags = binary.LittleEndian.Uint16(header[10:12])
	if flags&^known != 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: unknown flags %#x for version %d", ErrContainer, flags, version)
	}
	if rsv := binary.LittleEndian.Uint32(header[12:16]); rsv != 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: nonzero reserved field", ErrContainer)
	}
	n64 = binary.LittleEndian.Uint64(header[16:24])
	slots64 = binary.LittleEndian.Uint64(header[24:32])
	if version >= 4 {
		// Version 4 stores entries (no sentinels) in the slots field, so
		// slots < n is legal (empty labels cost nothing); n itself must
		// leave room for int32 vertex ids.
		if slots64 > math.MaxInt32 || n64 >= math.MaxInt32 {
			return 0, 0, 0, 0, fmt.Errorf("%w: implausible sizes n=%d entries=%d", ErrContainer, n64, slots64)
		}
	} else if slots64 > math.MaxInt32 || n64 > slots64 {
		return 0, 0, 0, 0, fmt.Errorf("%w: implausible sizes n=%d slots=%d", ErrContainer, n64, slots64)
	}
	return version, flags, n64, slots64, nil
}

func readContainerStore(r io.Reader) (LabelStore, int64, error) {
	var header [containerHeaderLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: header: %v", ErrContainer, err)
	}
	read := int64(containerHeaderLen)
	version, flags, n64, slots64, err := parseContainerHeader(header[:])
	if err != nil {
		return nil, read, err
	}
	n, slots := int(n64), int(slots64)

	crc := crc32.New(castagnoli)
	crc.Write(header[:])
	body := io.TeeReader(r, crc)

	if version >= 4 {
		c, sread, err := readCompactSections(header[:], body, n, slots,
			flags&containerFlagWideDist != 0, flags&containerFlagParents != 0)
		read += sread
		if err != nil {
			return nil, read, err
		}
		var trailer [4]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return nil, read, fmt.Errorf("%w: checksum: %v", ErrContainer, err)
		}
		read += 4
		if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
			return nil, read, fmt.Errorf("%w: checksum mismatch (computed %#x, stored %#x)", ErrContainer, got, want)
		}
		if err := c.Validate(); err != nil {
			return nil, read, fmt.Errorf("%w: %v", ErrContainer, err)
		}
		return c, read, nil
	}

	if version == 3 {
		f, sread, err := readAlignedSections(header[:], body, n, slots, flags&containerFlagParents != 0)
		read += sread
		if err != nil {
			return nil, read, err
		}
		var trailer [4]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return nil, read, fmt.Errorf("%w: checksum: %v", ErrContainer, err)
		}
		read += 4
		if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
			return nil, read, fmt.Errorf("%w: checksum mismatch (computed %#x, stored %#x)", ErrContainer, got, want)
		}
		if err := f.validate(); err != nil {
			return nil, read, fmt.Errorf("%w: %v", ErrContainer, err)
		}
		return f, read, nil
	}

	var f *FlatLabeling
	if flags&containerFlagGamma != 0 {
		var lenBuf [8]byte
		if _, err := io.ReadFull(body, lenBuf[:]); err != nil {
			return nil, read, fmt.Errorf("%w: gamma section length: %v", ErrContainer, err)
		}
		read += 8
		streamLen := binary.LittleEndian.Uint64(lenBuf[:])
		if streamLen > 3*8*slots64+16 {
			return nil, read, fmt.Errorf("%w: implausible gamma section length %d", ErrContainer, streamLen)
		}
		// Every non-sentinel slot costs at least two gamma codes (gap +
		// distance) of one bit each, and every vertex one size code — so a
		// stream this short cannot fill the declared slots. Checking before
		// allocating keeps hostile headers from reserving huge arrays.
		if 2*(slots64-n64)+n64 > 8*streamLen {
			return nil, read, fmt.Errorf("%w: gamma section of %d bytes cannot fill %d slots",
				ErrContainer, streamLen, slots64)
		}
		stream, err := readExact(body, int64(streamLen))
		read += int64(len(stream))
		if err != nil {
			return nil, read, fmt.Errorf("%w: gamma section: %v", ErrContainer, err)
		}
		if f, err = decodeGamma(stream, n, slots); err != nil {
			return nil, read, err
		}
	} else {
		// Length arithmetic stays in int64 until the size is known to fit
		// the platform int — on 32-bit, a hostile header must error here
		// rather than overflow into a short read and a panic below.
		payloadLen := 4 * (int64(n64) + 1 + 2*int64(slots64))
		if payloadLen > math.MaxInt-containerHeaderLen {
			return nil, read, fmt.Errorf("%w: %d-byte payload exceeds address space", ErrContainer, payloadLen)
		}
		payload, err := readExact(body, payloadLen)
		read += int64(len(payload))
		if err != nil {
			return nil, read, fmt.Errorf("%w: columns: %v", ErrContainer, err)
		}
		f = &FlatLabeling{
			offsets: getInt32s(payload, 0, n+1),
			hubIDs:  getInt32s(payload, 4*(n+1), slots),
			dists:   getInt32s(payload, 4*(n+1+slots), slots),
		}
	}
	if flags&containerFlagParents != 0 {
		col, err := readExact(body, 4*int64(slots))
		read += int64(len(col))
		if err != nil {
			return nil, read, fmt.Errorf("%w: parent column: %v", ErrContainer, err)
		}
		f.parents = getInt32s(col, 0, slots)
	}

	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, read, fmt.Errorf("%w: checksum: %v", ErrContainer, err)
	}
	read += 4
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, read, fmt.Errorf("%w: checksum mismatch (computed %#x, stored %#x)", ErrContainer, got, want)
	}
	if err := f.validate(); err != nil {
		return nil, read, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return f, read, nil
}

// parseSectionTable validates a version-3 section table against the
// canonical layout for the header's n/slots/parents. Any deviation —
// a misaligned offset, an over- or undersized length, reordered or
// overlapping sections — is rejected: the table is redundant by design,
// so nothing an attacker writes into it can move or grow a column view.
func parseSectionTable(table []byte, want []containerSection) ([]containerSection, error) {
	for i := range want {
		off := binary.LittleEndian.Uint64(table[16*i:])
		length := binary.LittleEndian.Uint64(table[16*i+8:])
		if off%containerAlign != 0 {
			return nil, fmt.Errorf("%w: section %d misaligned at offset %d", ErrContainer, i, off)
		}
		if off != uint64(want[i].off) || length != uint64(want[i].length) {
			return nil, fmt.Errorf("%w: section %d at (%d,%d) deviates from the canonical layout (%d,%d)",
				ErrContainer, i, off, length, want[i].off, want[i].length)
		}
	}
	return want, nil
}

// validateAlignedExt validates a version-3 extended header — section
// count, canonical table, header checksum — given the 32-byte base
// header and the alignedHeaderLen-32 bytes after it. Shared by the
// streaming reader and the mmap opener, so the authentication and
// layout rules cannot drift between the two doors.
func validateAlignedExt(base, ext []byte, want []containerSection) ([]containerSection, error) {
	if got := binary.LittleEndian.Uint64(ext[0:8]); got != uint64(len(want)) {
		return nil, fmt.Errorf("%w: %d sections, layout has %d", ErrContainer, got, len(want))
	}
	hcrc := crc32.Checksum(base, castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, ext[:len(ext)-4])
	if stored := binary.LittleEndian.Uint32(ext[len(ext)-4:]); hcrc != stored {
		return nil, fmt.Errorf("%w: header checksum mismatch (computed %#x, stored %#x)", ErrContainer, hcrc, stored)
	}
	return parseSectionTable(ext[8:len(ext)-4], want)
}

// readAlignedSections streams the version-3 payload: section count,
// table, header checksum, and the zero-padded aligned columns. It
// returns the decoded (owned) labeling; structural validation and the
// trailer checksum stay with the caller.
func readAlignedSections(header []byte, body io.Reader, n, slots int, parents bool) (*FlatLabeling, int64, error) {
	want, _ := containerSections(int64(n), int64(slots), parents)
	var read int64
	ext, err := readExact(body, alignedHeaderLen(len(want))-containerHeaderLen)
	read += int64(len(ext))
	if err != nil {
		return nil, read, fmt.Errorf("%w: extended header: %v", ErrContainer, err)
	}
	secs, err := validateAlignedExt(header, ext, want)
	if err != nil {
		return nil, read, err
	}

	pos := alignedHeaderLen(len(secs))
	counts := []int{n + 1, slots, slots, slots}
	cols := make([][]int32, len(secs))
	for i, s := range secs {
		pad, err := readExact(body, s.off-pos)
		read += int64(len(pad))
		if err != nil {
			return nil, read, fmt.Errorf("%w: section %d padding: %v", ErrContainer, i, err)
		}
		for _, b := range pad {
			if b != 0 {
				return nil, read, fmt.Errorf("%w: nonzero padding before section %d", ErrContainer, i)
			}
		}
		if s.length > math.MaxInt-containerHeaderLen {
			return nil, read, fmt.Errorf("%w: %d-byte section exceeds address space", ErrContainer, s.length)
		}
		raw, err := readExact(body, s.length)
		read += int64(len(raw))
		if err != nil {
			return nil, read, fmt.Errorf("%w: section %d: %v", ErrContainer, i, err)
		}
		cols[i] = getInt32s(raw, 0, counts[i])
		pos = s.off + s.length
	}
	f := &FlatLabeling{offsets: cols[0], hubIDs: cols[1], dists: cols[2]}
	if parents {
		f.parents = cols[3]
	}
	return f, read, nil
}

// compactHeaderLen is the byte length of the version-4 extended header:
// base header, section count, escape-slot count, k table entries, header
// crc32.
func compactHeaderLen(k int) int64 {
	return containerHeaderLen + 8 + 8 + 16*int64(k) + 4
}

// containerSectionsV4 computes the canonical version-4 layout for n
// vertices, entries label entries and escs escape slots: each column's
// file offset and byte length in fixed order (offsets, remap, escOff,
// hubDelta, distDelta, esc, then parents when present). Alignment rules
// are exactly version 3's.
func containerSectionsV4(n, entries, escs int64, wide, parents bool) (secs []containerSection, end int64) {
	k := 6
	if parents {
		k = 7
	}
	stride := int64(1)
	if wide {
		stride = 2
	}
	lengths := []int64{4 * (n + 1), 4 * n, 4 * (n + 1), entries, stride * entries, 4 * escs, 4 * entries}[:k]
	pos := compactHeaderLen(k)
	secs = make([]containerSection, k)
	for i, l := range lengths {
		pos = alignUp(pos)
		secs[i] = containerSection{off: pos, length: l}
		pos += l
	}
	return secs, pos
}

// buildCompactHeader assembles the version-4 extended header, shared by
// the in-memory writer (writeV4) and the streaming writer so the two
// emit byte-identical files.
func buildCompactHeader(n, entries, escs int64, wide, parents bool, secs []containerSection) []byte {
	hdr := make([]byte, compactHeaderLen(len(secs)))
	copy(hdr[0:8], containerMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], ContainerVersion)
	flags := uint16(0)
	if parents {
		flags |= containerFlagParents
	}
	if wide {
		flags |= containerFlagWideDist
	}
	binary.LittleEndian.PutUint16(hdr[10:12], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(entries))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(secs)))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(escs))
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[48+16*i:], uint64(s.off))
		binary.LittleEndian.PutUint64(hdr[56+16*i:], uint64(s.length))
	}
	binary.LittleEndian.PutUint32(hdr[len(hdr)-4:], crc32.Checksum(hdr[:len(hdr)-4], castagnoli))
	return hdr
}

// validateCompactExt validates a version-4 extended header — section
// count, escape-slot plausibility, canonical table, header checksum —
// given the 32-byte base header and the compactHeaderLen-32 bytes after
// it. Shared by the streaming reader and the mmap opener. The escape
// count is bounded by construction (at most one hub and one distance
// escape per entry) before it sizes anything.
func validateCompactExt(base, ext []byte, n, entries int64, wide, parents bool) ([]containerSection, int64, error) {
	esc64 := binary.LittleEndian.Uint64(ext[8:16])
	if esc64 > 2*uint64(entries) {
		return nil, 0, fmt.Errorf("%w: %d escape slots for %d entries", ErrContainer, esc64, entries)
	}
	want, _ := containerSectionsV4(n, entries, int64(esc64), wide, parents)
	if got := binary.LittleEndian.Uint64(ext[0:8]); got != uint64(len(want)) {
		return nil, 0, fmt.Errorf("%w: %d sections, layout has %d", ErrContainer, got, len(want))
	}
	hcrc := crc32.Checksum(base, castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, ext[:len(ext)-4])
	if stored := binary.LittleEndian.Uint32(ext[len(ext)-4:]); hcrc != stored {
		return nil, 0, fmt.Errorf("%w: header checksum mismatch (computed %#x, stored %#x)", ErrContainer, hcrc, stored)
	}
	secs, err := parseSectionTable(ext[16:len(ext)-4], want)
	return secs, int64(esc64), err
}

// readCompactSections streams the version-4 payload into an owned
// CompactLabeling; structural validation and the trailer checksum stay
// with the caller.
func readCompactSections(header []byte, body io.Reader, n, entries int, wide, parents bool) (*CompactLabeling, int64, error) {
	k := 6
	if parents {
		k = 7
	}
	var read int64
	ext, err := readExact(body, compactHeaderLen(k)-containerHeaderLen)
	read += int64(len(ext))
	if err != nil {
		return nil, read, fmt.Errorf("%w: extended header: %v", ErrContainer, err)
	}
	secs, _, err := validateCompactExt(header, ext, int64(n), int64(entries), wide, parents)
	if err != nil {
		return nil, read, err
	}

	c := &CompactLabeling{n: n, wide: wide}
	pos := compactHeaderLen(len(secs))
	for i, s := range secs {
		pad, err := readExact(body, s.off-pos)
		read += int64(len(pad))
		if err != nil {
			return nil, read, fmt.Errorf("%w: section %d padding: %v", ErrContainer, i, err)
		}
		for _, b := range pad {
			if b != 0 {
				return nil, read, fmt.Errorf("%w: nonzero padding before section %d", ErrContainer, i)
			}
		}
		if s.length > math.MaxInt-containerHeaderLen {
			return nil, read, fmt.Errorf("%w: %d-byte section exceeds address space", ErrContainer, s.length)
		}
		raw, err := readExact(body, s.length)
		read += int64(len(raw))
		if err != nil {
			return nil, read, fmt.Errorf("%w: section %d: %v", ErrContainer, i, err)
		}
		switch i {
		case 0:
			c.offsets = getInt32s(raw, 0, n+1)
		case 1:
			c.remap = getInt32s(raw, 0, n)
		case 2:
			c.escOff = getInt32s(raw, 0, n+1)
		case 3:
			c.hubDelta = raw
		case 4:
			c.distDelta = raw
		case 5:
			c.esc = getInt32s(raw, 0, int(s.length/4))
		case 6:
			c.parents = getInt32s(raw, 0, entries)
		}
		pos = s.off + s.length
	}
	if err := c.buildInv(); err != nil {
		return nil, read, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return c, read, nil
}

// writeV4 emits the version-4 compact container.
func (c *CompactLabeling) writeV4(w io.Writer) (int64, error) {
	n, entries, escs := int64(c.n), int64(len(c.hubDelta)), int64(len(c.esc))
	secs, _ := containerSectionsV4(n, entries, escs, c.wide, c.parents != nil)
	hdr := buildCompactHeader(n, entries, escs, c.wide, c.parents != nil, secs)

	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: w}
	body := io.MultiWriter(cw, crc)
	if _, err := body.Write(hdr); err != nil {
		return cw.n, err
	}
	var pad [containerAlign]byte
	pos := int64(len(hdr))
	secIdx := 0
	enter := func() (containerSection, []byte) {
		s := secs[secIdx]
		secIdx++
		gap := pad[:s.off-pos]
		pos = s.off + s.length
		return s, gap
	}
	writeInts := func(col []int32) error {
		_, gap := enter()
		if _, err := body.Write(gap); err != nil {
			return err
		}
		return writeColumns(body, [][]int32{col})
	}
	writeBytes := func(col []byte) error {
		_, gap := enter()
		if _, err := body.Write(gap); err != nil {
			return err
		}
		_, err := body.Write(col)
		return err
	}
	for _, step := range []func() error{
		func() error { return writeInts(c.offsets) },
		func() error { return writeInts(c.remap) },
		func() error { return writeInts(c.escOff) },
		func() error { return writeBytes(c.hubDelta) },
		func() error { return writeBytes(c.distDelta) },
		func() error { return writeInts(c.esc) },
	} {
		if err := step(); err != nil {
			return cw.n, err
		}
	}
	if c.parents != nil {
		if err := writeInts(c.parents); err != nil {
			return cw.n, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// encodeGamma produces the gamma payload straight from the flat arrays, in
// exactly the stream format of Labeling.Encode (so hub.Decode can also
// parse it).
func (f *FlatLabeling) encodeGamma() ([]byte, error) {
	var w bitio.Writer
	n := f.NumVertices()
	if err := w.WriteGamma(uint64(n) + 1); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		ids, ds := f.LabelIDs(graph.NodeID(v)), f.LabelDists(graph.NodeID(v))
		if err := w.WriteGamma(uint64(len(ids)) + 1); err != nil {
			return nil, err
		}
		prev := int64(-1)
		for i, h := range ids {
			gap := int64(h) - prev
			if gap <= 0 {
				return nil, fmt.Errorf("%w: unsorted label", ErrCorrupt)
			}
			if err := w.WriteGamma(uint64(gap)); err != nil {
				return nil, err
			}
			if err := w.WriteGamma(uint64(ds[i]) + 1); err != nil {
				return nil, err
			}
			prev = int64(h)
		}
	}
	return w.Bytes(), nil
}

// decodeGamma reverses encodeGamma directly into freshly allocated flat
// arrays sized from the container header — the slice-of-slices form is
// never built.
func decodeGamma(stream []byte, n, slots int) (*FlatLabeling, error) {
	r := bitio.NewReader(stream)
	nPlus, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("%w: gamma vertex count: %v", ErrContainer, err)
	}
	if nPlus != uint64(n)+1 {
		return nil, fmt.Errorf("%w: gamma vertex count %d, header says %d", ErrContainer, nPlus-1, n)
	}
	f := &FlatLabeling{
		offsets: make([]int32, n+1),
		hubIDs:  make([]graph.NodeID, slots),
		dists:   make([]graph.Weight, slots),
	}
	pos := 0
	for v := 0; v < n; v++ {
		f.offsets[v] = int32(pos)
		szPlus, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d size: %v", ErrContainer, v, err)
		}
		// szPlus-1 hubs plus one sentinel need szPlus slots. Compare in
		// uint64: a 2^63-scale size code converted to int first would wrap
		// pos+sz+1 negative and slip past the bound check.
		if szPlus > uint64(slots-pos) {
			return nil, fmt.Errorf("%w: vertex %d overflows %d slots", ErrContainer, v, slots)
		}
		sz := int(szPlus - 1)
		prev := int64(-1)
		for i := 0; i < sz; i++ {
			gap, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrContainer, v, i, err)
			}
			distPlus, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrContainer, v, i, err)
			}
			// Hub ids increase strictly within [0, n); bound the gap in
			// uint64 like the size code above — a 2^63-scale gap would
			// wrap prev negative and the int32 conversion could truncate
			// it back into a valid id, loading attacker-chosen labels.
			if gap > uint64(int64(n-1)-prev) || distPlus-1 > uint64(graph.Infinity) {
				return nil, fmt.Errorf("%w: vertex %d hub %d out of range", ErrContainer, v, i)
			}
			prev += int64(gap)
			f.hubIDs[pos] = graph.NodeID(prev)
			f.dists[pos] = graph.Weight(distPlus - 1)
			pos++
		}
		f.hubIDs[pos] = flatSentinel
		f.dists[pos] = graph.Infinity
		pos++
	}
	if pos != slots {
		return nil, fmt.Errorf("%w: gamma stream fills %d of %d slots", ErrContainer, pos, slots)
	}
	f.offsets[n] = int32(pos)
	return f, nil
}

// putInt32s stores xs little-endian into buf starting at pos, returning
// the next write position.
func putInt32s(buf []byte, pos int, xs []int32) int {
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(x))
		pos += 4
	}
	return pos
}

// getInt32s decodes count little-endian int32s from buf starting at pos.
func getInt32s(buf []byte, pos, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	}
	return out
}

// readExact reads exactly n bytes. The up-front reservation is capped so
// a hostile header cannot force a huge allocation before the stream runs
// dry; within the cap the buffer is reserved once, so legitimate
// containers fill it without growth copies.
func readExact(r io.Reader, n int64) ([]byte, error) {
	const (
		chunk  = 4 << 20
		maxCap = 64 << 20
	)
	cap0 := n
	if cap0 > maxCap {
		cap0 = maxCap
	}
	buf := make([]byte, 0, cap0)
	for int64(len(buf)) < n {
		want := n - int64(len(buf))
		if want > chunk {
			want = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, want)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return buf[:old], err
		}
	}
	return buf, nil
}
