package hub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"hublab/internal/bitio"
	"hublab/internal/graph"
)

// Container format: the persistent on-disk form of a FlatLabeling.
//
// A container is a little-endian byte stream:
//
//	header (32 bytes)
//	  [ 0: 8)  magic  "HUBLABIX"
//	  [ 8:10)  format version (1 or 2)
//	  [10:12)  flags (bit 0: payload is Elias-gamma compressed;
//	           bit 1, version ≥ 2 only: a parent column follows the payload)
//	  [12:16)  reserved (must be zero)
//	  [16:24)  n      — vertex count
//	  [24:32)  slots  — len of the hub-id/distance columns, sentinels included
//	payload
//	  raw    flag clear: offsets (n+1)·int32, hubIDs slots·int32,
//	         dists slots·int32 — the flat arrays verbatim, so loading is a
//	         sequential read plus one pass of byte→int32 conversion
//	  gamma  flag set: a single gamma section in exactly the stream format
//	         of Labeling.Encode (vertex count, then per vertex the label
//	         size and gap/distance pairs, all Elias gamma), preceded by its
//	         byte length as uint64
//	parent column (only when flag bit 1 is set)
//	  parents slots·int32 — the next-hop column verbatim (-1 on self
//	  entries and sentinel slots), raw even in gamma containers: parents
//	  are near-incompressible neighbor ids, and keeping them columnar
//	  preserves the near-memcpy load
//	trailer (4 bytes)
//	  crc32 (Castagnoli) of header + payload (+ parent column)
//
// The writer emits version 1 — byte-identical to the historical format —
// whenever the labeling carries no parent column, and version 2 with flag
// bit 1 when it does, so old files load unchanged and new files without
// parents stay readable by old code. A version-1 file loads with no
// parent column; Path queries on it report ErrNoParents.
//
// Both the writer and the reader work directly on the flat arrays: the
// slice-of-slices Labeling form is never materialized, and the raw path in
// particular loads near-memcpy. All multi-byte fields are little-endian
// regardless of host order.

// ContainerVersion is the newest container format version this package
// writes and reads. Version 1 files (no parent column) remain readable.
const ContainerVersion = 2

// containerMagic identifies hub-labeling index containers.
var containerMagic = [8]byte{'H', 'U', 'B', 'L', 'A', 'B', 'I', 'X'}

const (
	containerHeaderLen    = 32
	containerFlagGamma    = 1 << 0
	containerFlagParents  = 1 << 1
	containerKnownFlagsV1 = containerFlagGamma
	containerKnownFlagsV2 = containerFlagGamma | containerFlagParents
)

// ErrContainer reports a malformed or corrupt index container.
var ErrContainer = errors.New("hub: corrupt index container")

// ContainerOptions configures WriteContainer.
type ContainerOptions struct {
	// Compress selects the Elias-gamma payload (smaller, slower to load)
	// over the raw column payload (larger, near-memcpy to load).
	Compress bool
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes f as a raw (uncompressed) container. It implements
// io.WriterTo.
func (f *FlatLabeling) WriteTo(w io.Writer) (int64, error) {
	return f.WriteContainer(w, ContainerOptions{})
}

// WriteContainer serializes f in the container format described above and
// returns the number of bytes written.
func (f *FlatLabeling) WriteContainer(w io.Writer, opts ContainerOptions) (int64, error) {
	var header [containerHeaderLen]byte
	copy(header[0:8], containerMagic[:])
	version := uint16(1)
	flags := uint16(0)
	if opts.Compress {
		flags |= containerFlagGamma
	}
	if f.parents != nil {
		version = ContainerVersion
		flags |= containerFlagParents
	}
	binary.LittleEndian.PutUint16(header[8:10], version)
	binary.LittleEndian.PutUint16(header[10:12], flags)
	binary.LittleEndian.PutUint64(header[16:24], uint64(f.NumVertices()))
	binary.LittleEndian.PutUint64(header[24:32], uint64(len(f.hubIDs)))

	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: w}
	body := io.MultiWriter(cw, crc)
	if _, err := body.Write(header[:]); err != nil {
		return cw.n, err
	}
	if opts.Compress {
		stream, err := f.encodeGamma()
		if err != nil {
			return cw.n, err
		}
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(stream)))
		if _, err := body.Write(lenBuf[:]); err != nil {
			return cw.n, err
		}
		if _, err := body.Write(stream); err != nil {
			return cw.n, err
		}
		if err := writeColumns(body, [][]int32{f.parents}); err != nil {
			return cw.n, err
		}
	} else {
		// Stream the columns through one reused chunk buffer instead of
		// materializing a second full copy of the arrays. A nil parents
		// column simply contributes nothing.
		if err := writeColumns(body, [][]int32{f.offsets, f.hubIDs, f.dists, f.parents}); err != nil {
			return cw.n, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeColumns streams int32 columns little-endian through one reused
// chunk buffer instead of materializing a full byte copy of the arrays.
func writeColumns(w io.Writer, cols [][]int32) error {
	chunk := make([]byte, 4<<20)
	for _, col := range cols {
		for len(col) > 0 {
			n := len(col)
			if n > len(chunk)/4 {
				n = len(chunk) / 4
			}
			putInt32s(chunk, 0, col[:n])
			if _, err := w.Write(chunk[:4*n]); err != nil {
				return err
			}
			col = col[n:]
		}
	}
	return nil
}

// countingWriter tracks bytes written to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadFrom parses a container produced by WriteContainer into f,
// implementing io.ReaderFrom. Malformed input of any kind — bad magic,
// an unknown version or flag, truncated sections, checksum mismatch, or
// structurally invalid arrays — is reported as an error wrapping
// ErrContainer; parsing never panics on hostile input.
func (f *FlatLabeling) ReadFrom(r io.Reader) (int64, error) {
	loaded, n, err := readContainer(r)
	if err != nil {
		return n, err
	}
	*f = *loaded
	return n, nil
}

// ReadContainer parses a container produced by WriteContainer and
// returns the loaded FlatLabeling. See (*FlatLabeling).ReadFrom for the
// error contract; ReadContainer never panics on hostile input.
func ReadContainer(r io.Reader) (*FlatLabeling, error) {
	f, _, err := readContainer(r)
	return f, err
}

func readContainer(r io.Reader) (*FlatLabeling, int64, error) {
	var header [containerHeaderLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: header: %v", ErrContainer, err)
	}
	read := int64(containerHeaderLen)
	if [8]byte(header[0:8]) != containerMagic {
		return nil, read, fmt.Errorf("%w: bad magic %q", ErrContainer, header[0:8])
	}
	version := binary.LittleEndian.Uint16(header[8:10])
	if version < 1 || version > ContainerVersion {
		return nil, read, fmt.Errorf("%w: unsupported version %d", ErrContainer, version)
	}
	known := uint16(containerKnownFlagsV1)
	if version >= 2 {
		known = containerKnownFlagsV2
	}
	flags := binary.LittleEndian.Uint16(header[10:12])
	if flags&^known != 0 {
		return nil, read, fmt.Errorf("%w: unknown flags %#x for version %d", ErrContainer, flags, version)
	}
	if rsv := binary.LittleEndian.Uint32(header[12:16]); rsv != 0 {
		return nil, read, fmt.Errorf("%w: nonzero reserved field", ErrContainer)
	}
	n64 := binary.LittleEndian.Uint64(header[16:24])
	slots64 := binary.LittleEndian.Uint64(header[24:32])
	// The flat offsets are int32, so total slots (and a fortiori n) must
	// fit; this also bounds allocations on hostile headers before any
	// large buffer is reserved.
	if slots64 > math.MaxInt32 || n64 > slots64 {
		return nil, read, fmt.Errorf("%w: implausible sizes n=%d slots=%d", ErrContainer, n64, slots64)
	}
	n, slots := int(n64), int(slots64)

	crc := crc32.New(castagnoli)
	crc.Write(header[:])
	body := io.TeeReader(r, crc)

	var f *FlatLabeling
	if flags&containerFlagGamma != 0 {
		var lenBuf [8]byte
		if _, err := io.ReadFull(body, lenBuf[:]); err != nil {
			return nil, read, fmt.Errorf("%w: gamma section length: %v", ErrContainer, err)
		}
		read += 8
		streamLen := binary.LittleEndian.Uint64(lenBuf[:])
		if streamLen > 3*8*slots64+16 {
			return nil, read, fmt.Errorf("%w: implausible gamma section length %d", ErrContainer, streamLen)
		}
		// Every non-sentinel slot costs at least two gamma codes (gap +
		// distance) of one bit each, and every vertex one size code — so a
		// stream this short cannot fill the declared slots. Checking before
		// allocating keeps hostile headers from reserving huge arrays.
		if 2*(slots64-n64)+n64 > 8*streamLen {
			return nil, read, fmt.Errorf("%w: gamma section of %d bytes cannot fill %d slots",
				ErrContainer, streamLen, slots64)
		}
		stream, err := readExact(body, int64(streamLen))
		read += int64(len(stream))
		if err != nil {
			return nil, read, fmt.Errorf("%w: gamma section: %v", ErrContainer, err)
		}
		if f, err = decodeGamma(stream, n, slots); err != nil {
			return nil, read, err
		}
	} else {
		// Length arithmetic stays in int64 until the size is known to fit
		// the platform int — on 32-bit, a hostile header must error here
		// rather than overflow into a short read and a panic below.
		payloadLen := 4 * (int64(n64) + 1 + 2*int64(slots64))
		if payloadLen > math.MaxInt-containerHeaderLen {
			return nil, read, fmt.Errorf("%w: %d-byte payload exceeds address space", ErrContainer, payloadLen)
		}
		payload, err := readExact(body, payloadLen)
		read += int64(len(payload))
		if err != nil {
			return nil, read, fmt.Errorf("%w: columns: %v", ErrContainer, err)
		}
		f = &FlatLabeling{
			offsets: getInt32s(payload, 0, n+1),
			hubIDs:  getInt32s(payload, 4*(n+1), slots),
			dists:   getInt32s(payload, 4*(n+1+slots), slots),
		}
	}
	if flags&containerFlagParents != 0 {
		col, err := readExact(body, 4*int64(slots))
		read += int64(len(col))
		if err != nil {
			return nil, read, fmt.Errorf("%w: parent column: %v", ErrContainer, err)
		}
		f.parents = getInt32s(col, 0, slots)
	}

	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, read, fmt.Errorf("%w: checksum: %v", ErrContainer, err)
	}
	read += 4
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, read, fmt.Errorf("%w: checksum mismatch (computed %#x, stored %#x)", ErrContainer, got, want)
	}
	if err := f.validate(); err != nil {
		return nil, read, fmt.Errorf("%w: %v", ErrContainer, err)
	}
	return f, read, nil
}

// encodeGamma produces the gamma payload straight from the flat arrays, in
// exactly the stream format of Labeling.Encode (so hub.Decode can also
// parse it).
func (f *FlatLabeling) encodeGamma() ([]byte, error) {
	var w bitio.Writer
	n := f.NumVertices()
	if err := w.WriteGamma(uint64(n) + 1); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		ids, ds := f.LabelIDs(graph.NodeID(v)), f.LabelDists(graph.NodeID(v))
		if err := w.WriteGamma(uint64(len(ids)) + 1); err != nil {
			return nil, err
		}
		prev := int64(-1)
		for i, h := range ids {
			gap := int64(h) - prev
			if gap <= 0 {
				return nil, fmt.Errorf("%w: unsorted label", ErrCorrupt)
			}
			if err := w.WriteGamma(uint64(gap)); err != nil {
				return nil, err
			}
			if err := w.WriteGamma(uint64(ds[i]) + 1); err != nil {
				return nil, err
			}
			prev = int64(h)
		}
	}
	return w.Bytes(), nil
}

// decodeGamma reverses encodeGamma directly into freshly allocated flat
// arrays sized from the container header — the slice-of-slices form is
// never built.
func decodeGamma(stream []byte, n, slots int) (*FlatLabeling, error) {
	r := bitio.NewReader(stream)
	nPlus, err := r.ReadGamma()
	if err != nil {
		return nil, fmt.Errorf("%w: gamma vertex count: %v", ErrContainer, err)
	}
	if nPlus != uint64(n)+1 {
		return nil, fmt.Errorf("%w: gamma vertex count %d, header says %d", ErrContainer, nPlus-1, n)
	}
	f := &FlatLabeling{
		offsets: make([]int32, n+1),
		hubIDs:  make([]graph.NodeID, slots),
		dists:   make([]graph.Weight, slots),
	}
	pos := 0
	for v := 0; v < n; v++ {
		f.offsets[v] = int32(pos)
		szPlus, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d size: %v", ErrContainer, v, err)
		}
		// szPlus-1 hubs plus one sentinel need szPlus slots. Compare in
		// uint64: a 2^63-scale size code converted to int first would wrap
		// pos+sz+1 negative and slip past the bound check.
		if szPlus > uint64(slots-pos) {
			return nil, fmt.Errorf("%w: vertex %d overflows %d slots", ErrContainer, v, slots)
		}
		sz := int(szPlus - 1)
		prev := int64(-1)
		for i := 0; i < sz; i++ {
			gap, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrContainer, v, i, err)
			}
			distPlus, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: vertex %d hub %d: %v", ErrContainer, v, i, err)
			}
			// Hub ids increase strictly within [0, n); bound the gap in
			// uint64 like the size code above — a 2^63-scale gap would
			// wrap prev negative and the int32 conversion could truncate
			// it back into a valid id, loading attacker-chosen labels.
			if gap > uint64(int64(n-1)-prev) || distPlus-1 > uint64(graph.Infinity) {
				return nil, fmt.Errorf("%w: vertex %d hub %d out of range", ErrContainer, v, i)
			}
			prev += int64(gap)
			f.hubIDs[pos] = graph.NodeID(prev)
			f.dists[pos] = graph.Weight(distPlus - 1)
			pos++
		}
		f.hubIDs[pos] = flatSentinel
		f.dists[pos] = graph.Infinity
		pos++
	}
	if pos != slots {
		return nil, fmt.Errorf("%w: gamma stream fills %d of %d slots", ErrContainer, pos, slots)
	}
	f.offsets[n] = int32(pos)
	return f, nil
}

// putInt32s stores xs little-endian into buf starting at pos, returning
// the next write position.
func putInt32s(buf []byte, pos int, xs []int32) int {
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(x))
		pos += 4
	}
	return pos
}

// getInt32s decodes count little-endian int32s from buf starting at pos.
func getInt32s(buf []byte, pos, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	}
	return out
}

// readExact reads exactly n bytes. The up-front reservation is capped so
// a hostile header cannot force a huge allocation before the stream runs
// dry; within the cap the buffer is reserved once, so legitimate
// containers fill it without growth copies.
func readExact(r io.Reader, n int64) ([]byte, error) {
	const (
		chunk  = 4 << 20
		maxCap = 64 << 20
	)
	cap0 := n
	if cap0 > maxCap {
		cap0 = maxCap
	}
	buf := make([]byte, 0, cap0)
	for int64(len(buf)) < n {
		want := n - int64(len(buf))
		if want > chunk {
			want = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, want)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return buf[:old], err
		}
	}
	return buf, nil
}
