// Package hotcache is a fixed-size, set-associative (u,v)→distance
// cache for the serving hot path. Real query traffic is heavily
// Zipf-skewed — a small set of popular pairs dominates — and for those
// pairs a hash probe (a handful of loads over two cache lines) should
// replace the linear-in-label-length hub merge entirely.
//
// The cache is deliberately not concurrent: each server shard owns one
// Cache, and only that shard's worker goroutine touches the key/value
// arrays, so lookups and inserts are plain loads and stores — no locks,
// no atomics, no false sharing between shards. The only cross-goroutine
// traffic is the hit/miss/evict counters (read by Stats) and the
// generation word, both atomic.
//
// Coherence is generational, not surgical: the server bumps its
// snapshot generation on every Swap/SwapRetire, and the owning worker
// calls ResetIfStale before probing. A stale cache is discarded
// wholesale — after a swap the served graph may differ arbitrarily, so
// there is nothing worth keeping, and the reset is O(size) of int64
// stores by the one goroutine that owns the arrays. Between the swap
// and the worker's next group the cache is never consulted, so a stale
// answer can never be served.
package hotcache

import (
	"sync/atomic"

	"hublab/internal/graph"
)

// ways is the set associativity. Four 8-byte keys are one cache line;
// a probe touches exactly two lines (keys, then values on a hit).
const ways = 4

// Cache is a set-associative pair→distance cache owned by a single
// goroutine. The zero value is not usable; call New.
type Cache struct {
	keys []uint64       // sets*ways, 0 = empty slot
	vals []graph.Weight // parallel to keys
	rr   []uint8        // per-set round-robin eviction cursor
	mask uint64         // set count - 1 (sets are a power of two)
	gen  uint64         // generation the current contents answer for
	// Counters are atomic only because Stats reads them from other
	// goroutines; the owner is the only writer.
	hits   atomic.Uint64
	misses atomic.Uint64
	evicts atomic.Uint64
}

// New builds a cache with capacity for at least entries pairs, rounded
// up to a power-of-two number of 4-way sets (minimum one set). Returns
// nil for entries <= 0 — a nil *Cache is the disabled state and every
// method on it is safe to skip-guard.
func New(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	sets := 1
	for sets*ways < entries {
		sets <<= 1
	}
	return &Cache{
		keys: make([]uint64, sets*ways),
		vals: make([]graph.Weight, sets*ways),
		rr:   make([]uint8, sets),
		mask: uint64(sets - 1),
	}
}

// Key canonicalizes an unordered pair into a nonzero probe key.
// Distances are symmetric, so (u,v) and (v,u) must hit the same slot:
// the smaller id goes in the high half. Both halves are offset by one
// so the zero key never occurs and can mark empty slots; ids ≥ 2³²-1
// (far beyond the int32 CSR limit) would alias, which a hostile caller
// can exploit only into a wrong-but-cached answer for itself.
func Key(u, v graph.NodeID) uint64 {
	a, b := uint64(uint32(u))+1, uint64(uint32(v))+1
	if a > b {
		a, b = b, a
	}
	return a<<32 | b
}

// set returns the slot base of key's set. Fibonacci hashing spreads
// the structured (small-id-biased) key space across sets using the
// high multiplier bits, which survive the power-of-two mask.
func (c *Cache) set(key uint64) int {
	h := key * 0x9E3779B97F4A7C15
	return int((h>>32)&c.mask) * ways
}

// Lookup probes for key and reports the cached distance. The miss is
// counted here so hit+miss equals the probe count exactly.
func (c *Cache) Lookup(key uint64) (graph.Weight, bool) {
	s := c.set(key)
	k := c.keys[s : s+ways : s+ways]
	for i := 0; i < ways; i++ {
		if k[i] == key {
			c.hits.Add(1)
			return c.vals[s+i], true
		}
	}
	c.misses.Add(1)
	return graph.Infinity, false
}

// Insert stores key→d, evicting round-robin within the set when all
// four ways are occupied. Inserting a key that is already present
// overwrites it in place (the served index can only have produced the
// same answer within a generation, but overwriting keeps Insert
// idempotent regardless).
func (c *Cache) Insert(key uint64, d graph.Weight) {
	s := c.set(key)
	k := c.keys[s : s+ways : s+ways]
	free := -1
	for i := 0; i < ways; i++ {
		if k[i] == key {
			c.vals[s+i] = d
			return
		}
		if k[i] == 0 && free < 0 {
			free = i
		}
	}
	if free < 0 {
		set := s / ways
		free = int(c.rr[set]) % ways
		c.rr[set]++
		c.evicts.Add(1)
	}
	k[free] = key
	c.vals[s+free] = d
}

// ResetIfStale discards the whole cache when gen differs from the
// generation the contents were filled under. Must be called by the
// owning goroutine before the first Lookup of every served group; the
// generation itself is published atomically only so tests and Stats
// can read it.
func (c *Cache) ResetIfStale(gen uint64) {
	if atomic.LoadUint64(&c.gen) == gen {
		return
	}
	clear(c.keys)
	for i := range c.rr {
		c.rr[i] = 0
	}
	atomic.StoreUint64(&c.gen, gen)
}

// Stats returns the cumulative hit/miss/evict counters. Safe to call
// from any goroutine.
func (c *Cache) Stats() (hits, misses, evicts uint64) {
	return c.hits.Load(), c.misses.Load(), c.evicts.Load()
}

// Len reports the slot capacity (sets × ways).
func (c *Cache) Len() int { return len(c.keys) }

// Sets reports the set count — exported for tests asserting the
// power-of-two rounding.
func (c *Cache) Sets() int { return len(c.rr) }
