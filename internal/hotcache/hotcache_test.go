package hotcache

import (
	"math/rand"
	"testing"

	"hublab/internal/graph"
)

func TestKeyCanonical(t *testing.T) {
	if Key(3, 7) != Key(7, 3) {
		t.Fatal("key not symmetric")
	}
	if Key(0, 0) == 0 {
		t.Fatal("zero pair maps to the empty-slot sentinel")
	}
	if Key(3, 7) == Key(3, 8) || Key(3, 7) == Key(2, 7) {
		t.Fatal("distinct pairs collide")
	}
	// The halves must not bleed into each other: (1, 2) vs (2, 1) is the
	// same pair, but (0, 258) must differ from (1, 2).
	if Key(0, 258) == Key(1, 2) {
		t.Fatal("pair halves alias")
	}
}

func TestNewSizing(t *testing.T) {
	if New(0) != nil || New(-5) != nil {
		t.Fatal("non-positive sizes must disable the cache")
	}
	for _, tc := range []struct{ entries, sets int }{
		{1, 1}, {4, 1}, {5, 2}, {16, 4}, {17, 8}, {4096, 1024},
	} {
		c := New(tc.entries)
		if c.Sets() != tc.sets {
			t.Fatalf("New(%d): got %d sets, want %d", tc.entries, c.Sets(), tc.sets)
		}
		if c.Len() != tc.sets*ways {
			t.Fatalf("New(%d): Len %d, want %d", tc.entries, c.Len(), tc.sets*ways)
		}
	}
}

func TestLookupInsert(t *testing.T) {
	c := New(64)
	c.ResetIfStale(1)
	k := Key(10, 20)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(k, 42)
	if d, ok := c.Lookup(k); !ok || d != 42 {
		t.Fatalf("got (%d, %v), want (42, true)", d, ok)
	}
	// Symmetric probe hits the same entry.
	if d, ok := c.Lookup(Key(20, 10)); !ok || d != 42 {
		t.Fatalf("reversed pair: got (%d, %v), want (42, true)", d, ok)
	}
	// Overwrite in place.
	c.Insert(k, 7)
	if d, _ := c.Lookup(k); d != 7 {
		t.Fatalf("overwrite: got %d, want 7", d)
	}
	hits, misses, _ := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("counters: hits=%d misses=%d, want 3/1", hits, misses)
	}
}

func TestEvictionWithinSet(t *testing.T) {
	c := New(4) // one set, four ways
	c.ResetIfStale(1)
	keys := make([]uint64, 0, 5)
	for u := graph.NodeID(0); len(keys) < 5; u++ {
		keys = append(keys, Key(u, u+1))
	}
	for i, k := range keys {
		c.Insert(k, graph.Weight(i))
	}
	_, _, evicts := c.Stats()
	if evicts != 1 {
		t.Fatalf("evicts=%d, want 1 (5 inserts into 4 ways)", evicts)
	}
	live := 0
	for i, k := range keys {
		if d, ok := c.Lookup(k); ok {
			live++
			if d != graph.Weight(i) {
				t.Fatalf("key %d: got %d, want %d", i, d, i)
			}
		}
	}
	if live != 4 {
		t.Fatalf("%d keys survive, want 4", live)
	}
}

func TestResetIfStale(t *testing.T) {
	c := New(64)
	c.ResetIfStale(1)
	k := Key(1, 2)
	c.Insert(k, 9)
	c.ResetIfStale(1) // same generation: contents survive
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("same-generation reset dropped the entry")
	}
	c.ResetIfStale(2) // new generation: wholesale discard
	if _, ok := c.Lookup(k); ok {
		t.Fatal("stale entry survived a generation bump")
	}
	c.Insert(k, 11)
	if d, ok := c.Lookup(k); !ok || d != 11 {
		t.Fatal("cache unusable after reset")
	}
}

// TestNeverWrong is the cache's core property: against a moving
// ground-truth oracle with generation bumps at random points, a Lookup
// hit must always equal what the current generation's oracle inserted —
// never a value from before the bump.
func TestNeverWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := New(32) // small, to force heavy eviction traffic
	gen := uint64(1)
	c.ResetIfStale(gen)
	truth := map[uint64]graph.Weight{}
	for step := 0; step < 20000; step++ {
		if rng.Intn(500) == 0 {
			gen++
			c.ResetIfStale(gen)
			truth = map[uint64]graph.Weight{}
		}
		u := graph.NodeID(rng.Intn(64))
		v := graph.NodeID(rng.Intn(64))
		k := Key(u, v)
		if d, ok := c.Lookup(k); ok {
			want, present := truth[k]
			if !present {
				t.Fatalf("step %d: hit on never-inserted key", step)
			}
			if d != want {
				t.Fatalf("step %d: cached %d, truth %d", step, d, want)
			}
		} else {
			d := graph.Weight(rng.Intn(1000)) + graph.Weight(gen)*1000
			truth[k] = d
			c.Insert(k, d)
		}
	}
	hits, misses, evicts := c.Stats()
	if hits == 0 || misses == 0 || evicts == 0 {
		t.Fatalf("test exercised nothing: hits=%d misses=%d evicts=%d", hits, misses, evicts)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(4096)
	c.ResetIfStale(1)
	const n = 512
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = Key(graph.NodeID(i), graph.NodeID(i+7777))
		c.Insert(keys[i], graph.Weight(i))
	}
	b.ResetTimer()
	var sink graph.Weight
	for i := 0; i < b.N; i++ {
		d, _ := c.Lookup(keys[i%n])
		sink += d
	}
	_ = sink
}
