// Package matching implements bipartite matching primitives used by the
// paper's upper-bound construction (Theorem 4.1): greedy maximal matchings,
// Hopcroft–Karp maximum matchings, König vertex covers, and verification of
// the induced-matching property central to Ruzsa–Szemerédi graphs.
package matching

import (
	"sort"
)

// Bipartite is a bipartite graph between a left set L and right set R,
// both addressed by dense int32 ids. Edges are stored as (left, right)
// pairs.
type Bipartite struct {
	nl, nr int
	adj    [][]int32 // adj[l] = sorted right neighbors
	m      int
}

// NewBipartite returns an empty bipartite graph with nl left and nr right
// vertices.
func NewBipartite(nl, nr int) *Bipartite {
	return &Bipartite{nl: nl, nr: nr, adj: make([][]int32, nl)}
}

// AddEdge inserts the edge (l, r). Duplicate edges are tolerated and
// removed by Finish.
func (b *Bipartite) AddEdge(l, r int32) {
	b.adj[l] = append(b.adj[l], r)
	b.m++
}

// Finish sorts and deduplicates adjacency lists. It must be called before
// queries or matching computations.
func (b *Bipartite) Finish() {
	b.m = 0
	for l := range b.adj {
		a := b.adj[l]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		out := a[:0]
		for i, r := range a {
			if i == 0 || r != a[i-1] {
				out = append(out, r)
			}
		}
		b.adj[l] = out
		b.m += len(out)
	}
}

// NumEdges returns the number of distinct edges (valid after Finish).
func (b *Bipartite) NumEdges() int { return b.m }

// LeftSize returns the number of left vertices.
func (b *Bipartite) LeftSize() int { return b.nl }

// RightSize returns the number of right vertices.
func (b *Bipartite) RightSize() int { return b.nr }

// HasEdge reports whether (l, r) is an edge (valid after Finish).
func (b *Bipartite) HasEdge(l, r int32) bool {
	a := b.adj[l]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= r })
	return i < len(a) && a[i] == r
}

// Neighbors returns the right neighbors of l. The slice aliases internal
// storage.
func (b *Bipartite) Neighbors(l int32) []int32 { return b.adj[l] }

// MatchEdge is one edge of a matching.
type MatchEdge struct {
	L, R int32
}

// GreedyMaximalMatching returns a maximal (not necessarily maximum)
// matching: every edge of b shares an endpoint with some matched edge.
func (b *Bipartite) GreedyMaximalMatching() []MatchEdge {
	usedL := make([]bool, b.nl)
	usedR := make([]bool, b.nr)
	var out []MatchEdge
	for l := int32(0); int(l) < b.nl; l++ {
		if usedL[l] {
			continue
		}
		for _, r := range b.adj[l] {
			if !usedR[r] {
				usedL[l] = true
				usedR[r] = true
				out = append(out, MatchEdge{L: l, R: r})
				break
			}
		}
	}
	return out
}

// MaximumMatching returns a maximum matching via Hopcroft–Karp.
func (b *Bipartite) MaximumMatching() []MatchEdge {
	const unmatched = -1
	matchL := make([]int32, b.nl)
	matchR := make([]int32, b.nr)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int32, b.nl)
	const inf = int32(1) << 30

	bfs := func() bool {
		queue := make([]int32, 0, b.nl)
		for l := int32(0); int(l) < b.nl; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			l := queue[0]
			queue = queue[1:]
			for _, r := range b.adj[l] {
				next := matchR[r]
				if next == unmatched {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}
	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range b.adj[l] {
			next := matchR[r]
			if next == unmatched || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}
	for bfs() {
		for l := int32(0); int(l) < b.nl; l++ {
			if matchL[l] == unmatched {
				dfs(l)
			}
		}
	}
	var out []MatchEdge
	for l := int32(0); int(l) < b.nl; l++ {
		if matchL[l] != unmatched {
			out = append(out, MatchEdge{L: l, R: matchL[l]})
		}
	}
	return out
}

// VertexCover holds a bipartite vertex cover as left and right vertex sets.
type VertexCover struct {
	Left, Right []int32
}

// Size returns the total number of cover vertices.
func (vc VertexCover) Size() int { return len(vc.Left) + len(vc.Right) }

// MinimumVertexCover computes a minimum vertex cover via König's theorem
// from a maximum matching.
func (b *Bipartite) MinimumVertexCover() VertexCover {
	matching := b.MaximumMatching()
	matchL := make([]int32, b.nl)
	matchR := make([]int32, b.nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	for _, e := range matching {
		matchL[e.L] = e.R
		matchR[e.R] = e.L
	}
	// Alternating BFS from unmatched left vertices.
	visitedL := make([]bool, b.nl)
	visitedR := make([]bool, b.nr)
	queue := make([]int32, 0, b.nl)
	for l := int32(0); int(l) < b.nl; l++ {
		if matchL[l] == -1 {
			visitedL[l] = true
			queue = append(queue, l)
		}
	}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		for _, r := range b.adj[l] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			if next := matchR[r]; next != -1 && !visitedL[next] {
				visitedL[next] = true
				queue = append(queue, next)
			}
		}
	}
	// König: cover = (L \ visitedL) ∪ (R ∩ visitedR).
	var vc VertexCover
	for l := int32(0); int(l) < b.nl; l++ {
		if !visitedL[l] {
			vc.Left = append(vc.Left, l)
		}
	}
	for r := int32(0); int(r) < b.nr; r++ {
		if visitedR[r] {
			vc.Right = append(vc.Right, r)
		}
	}
	return vc
}

// CoverFromMatching returns the 2-approximate vertex cover consisting of
// both endpoints of every matching edge (the form used in the paper's
// Lemma 4.2 accounting, |VC| ≤ 2|MM|).
func CoverFromMatching(matching []MatchEdge) VertexCover {
	vc := VertexCover{
		Left:  make([]int32, 0, len(matching)),
		Right: make([]int32, 0, len(matching)),
	}
	for _, e := range matching {
		vc.Left = append(vc.Left, e.L)
		vc.Right = append(vc.Right, e.R)
	}
	return vc
}

// IsVertexCover verifies that every edge of b has an endpoint in vc.
func (b *Bipartite) IsVertexCover(vc VertexCover) bool {
	inL := make([]bool, b.nl)
	inR := make([]bool, b.nr)
	for _, l := range vc.Left {
		inL[l] = true
	}
	for _, r := range vc.Right {
		inR[r] = true
	}
	for l := int32(0); int(l) < b.nl; l++ {
		if inL[l] {
			continue
		}
		for _, r := range b.adj[l] {
			if !inR[r] {
				return false
			}
		}
	}
	return true
}

// IsMatching verifies that no two edges share an endpoint.
func IsMatching(edges []MatchEdge) bool {
	seenL := map[int32]bool{}
	seenR := map[int32]bool{}
	for _, e := range edges {
		if seenL[e.L] || seenR[e.R] {
			return false
		}
		seenL[e.L] = true
		seenR[e.R] = true
	}
	return true
}

// IsInducedMatching verifies that m is an induced matching of b: m is a
// matching and no edge of b connects two distinct matched pairs.
func (b *Bipartite) IsInducedMatching(m []MatchEdge) bool {
	if !IsMatching(m) {
		return false
	}
	for i, e := range m {
		for j, f := range m {
			if i == j {
				continue
			}
			if b.HasEdge(e.L, f.R) {
				return false
			}
		}
	}
	return true
}
