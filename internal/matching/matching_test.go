package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func completeBipartite(nl, nr int) *Bipartite {
	b := NewBipartite(nl, nr)
	for l := int32(0); int(l) < nl; l++ {
		for r := int32(0); int(r) < nr; r++ {
			b.AddEdge(l, r)
		}
	}
	b.Finish()
	return b
}

func randomBipartite(seed int64, nl, nr, m int) *Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := NewBipartite(nl, nr)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(nl)), int32(rng.Intn(nr)))
	}
	b.Finish()
	return b
}

func TestFinishDedup(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	b.Finish()
	if b.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", b.NumEdges())
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(0, 0) || b.HasEdge(1, 0) {
		t.Error("HasEdge gives wrong answers after Finish")
	}
}

func TestGreedyMaximalMatching(t *testing.T) {
	b := completeBipartite(3, 3)
	m := b.GreedyMaximalMatching()
	if !IsMatching(m) {
		t.Fatal("greedy result is not a matching")
	}
	if len(m) != 3 {
		t.Errorf("matching size = %d, want 3 (greedy is perfect on K33)", len(m))
	}
}

func TestMaximalMatchingIsMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		b := randomBipartite(seed, nl, nr, 2*(nl+nr))
		m := b.GreedyMaximalMatching()
		if !IsMatching(m) {
			return false
		}
		usedL := make([]bool, nl)
		usedR := make([]bool, nr)
		for _, e := range m {
			usedL[e.L] = true
			usedR[e.R] = true
		}
		// Maximality: every edge touches a matched vertex.
		for l := int32(0); int(l) < nl; l++ {
			for _, r := range b.Neighbors(l) {
				if !usedL[l] && !usedR[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMaximumMatchingKnownValues(t *testing.T) {
	// A path l0-r0-l1-r1: maximum matching has size 2.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.Finish()
	m := b.MaximumMatching()
	if len(m) != 2 {
		t.Errorf("maximum matching size = %d, want 2", len(m))
	}
	if !IsMatching(m) {
		t.Error("not a matching")
	}
	// Star: l0 connected to r0..r4 — max matching 1.
	star := NewBipartite(1, 5)
	for r := int32(0); r < 5; r++ {
		star.AddEdge(0, r)
	}
	star.Finish()
	if m := star.MaximumMatching(); len(m) != 1 {
		t.Errorf("star matching size = %d, want 1", len(m))
	}
}

func TestMaximumAtLeastGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(25), 1+rng.Intn(25)
		b := randomBipartite(seed, nl, nr, 3*(nl+nr))
		greedy := b.GreedyMaximalMatching()
		max := b.MaximumMatching()
		// Maximal matching is a 2-approximation of maximum.
		return IsMatching(max) && len(max) >= len(greedy) && 2*len(greedy) >= len(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKonigCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		b := randomBipartite(seed, nl, nr, 2*(nl+nr))
		vc := b.MinimumVertexCover()
		if !b.IsVertexCover(vc) {
			return false
		}
		// König: |min cover| = |max matching|.
		return vc.Size() == len(b.MaximumMatching())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCoverFromMatching(t *testing.T) {
	b := completeBipartite(4, 4)
	m := b.GreedyMaximalMatching()
	vc := CoverFromMatching(m)
	if !b.IsVertexCover(vc) {
		t.Error("matched endpoints do not form a vertex cover")
	}
	if vc.Size() != 2*len(m) {
		t.Errorf("cover size = %d, want %d", vc.Size(), 2*len(m))
	}
}

func TestIsInducedMatching(t *testing.T) {
	// K22 has no induced matching of size 2 (all cross edges present).
	b := completeBipartite(2, 2)
	bad := []MatchEdge{{0, 0}, {1, 1}}
	if b.IsInducedMatching(bad) {
		t.Error("perfect matching of K22 reported as induced")
	}
	// Two disjoint edges with no cross edges are induced.
	b2 := NewBipartite(2, 2)
	b2.AddEdge(0, 0)
	b2.AddEdge(1, 1)
	b2.Finish()
	good := []MatchEdge{{0, 0}, {1, 1}}
	if !b2.IsInducedMatching(good) {
		t.Error("disjoint edges not reported as induced matching")
	}
	// A non-matching must be rejected.
	if b2.IsInducedMatching([]MatchEdge{{0, 0}, {0, 1}}) {
		t.Error("non-matching accepted")
	}
}

func TestEmptyBipartite(t *testing.T) {
	b := NewBipartite(0, 0)
	b.Finish()
	if len(b.MaximumMatching()) != 0 {
		t.Error("non-empty matching on empty graph")
	}
	if vc := b.MinimumVertexCover(); vc.Size() != 0 {
		t.Error("non-empty cover on empty graph")
	}
}
