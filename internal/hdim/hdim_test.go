package hdim

import (
	"errors"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
)

func TestEstimatePath(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	scales, err := Estimate(g)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if len(scales) == 0 {
		t.Fatal("no scales")
	}
	for _, s := range scales {
		// On a path, shortest paths at scale r are intervals of length
		// (r, 2r]; a 1/r fraction of vertices suffices, so the greedy cover
		// must be well below n.
		if s.Paths > 0 && s.GreedyCover > 64/int(s.R)+2 {
			t.Errorf("scale %d: greedy cover %d too large", s.R, s.GreedyCover)
		}
		if s.MaxBallCover > s.GreedyCover {
			t.Errorf("scale %d: ball count %d exceeds total %d", s.R, s.MaxBallCover, s.GreedyCover)
		}
	}
}

// TestRoadLikeVsRandom: the estimator must separate the structured
// road-like network (small covers at large scales) from a random
// bounded-degree graph at equal size — the highway-dimension story.
func TestRoadLikeVsRandom(t *testing.T) {
	road, err := gen.RoadLike(14, 14, 4, 3)
	if err != nil {
		t.Fatalf("RoadLike: %v", err)
	}
	random, err := gen.RandomRegular(196, 3, 3)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	roadScales, err := Estimate(road)
	if err != nil {
		t.Fatalf("Estimate(road): %v", err)
	}
	randScales, err := Estimate(random)
	if err != nil {
		t.Fatalf("Estimate(random): %v", err)
	}
	// Compare the largest scale with a meaningful number of paths on each.
	last := func(scales []ScaleEstimate) ScaleEstimate {
		best := scales[0]
		for _, s := range scales {
			if s.Paths >= 50 {
				best = s
			}
		}
		return best
	}
	r, q := last(roadScales), last(randScales)
	if r.MaxBallCover > 3*q.MaxBallCover+5 {
		t.Errorf("road-like ball cover %d not small vs random %d", r.MaxBallCover, q.MaxBallCover)
	}
}

func TestEstimateEmptyAndTiny(t *testing.T) {
	empty, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	scales, err := Estimate(empty)
	if err != nil || scales != nil {
		t.Errorf("Estimate(empty) = (%v,%v)", scales, err)
	}
	single, err := gen.Path(1)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := Estimate(single); err != nil {
		t.Errorf("Estimate(single): %v", err)
	}
}

func TestEstimateTooLarge(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	b.Grow(MaxVertices + 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Estimate(g); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestScaleCoverIsValid(t *testing.T) {
	// Every canonical shortest path in range must contain a chosen vertex:
	// indirectly tested by Estimate succeeding (the greedy loop errors if it
	// stalls); here we check the scale inventory is sane on a grid.
	g, err := gen.Grid(10, 10)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	scales, err := Estimate(g)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	totalPaths := 0
	for _, s := range scales {
		totalPaths += s.Paths
		if s.Paths > 0 && s.GreedyCover == 0 {
			t.Errorf("scale %d: %d paths but empty cover", s.R, s.Paths)
		}
	}
	if totalPaths == 0 {
		t.Error("no paths at any scale on a 10x10 grid")
	}
}
