// Package hdim estimates the highway dimension of a graph (Abraham,
// Delling, Fiat, Goldberg, Werneck — reference [ADF+16] of the paper): the
// smallest h such that for every scale r and every ball of radius 2r, some
// h vertices hit all shortest paths of length in (r, 2r] intersecting the
// ball. Small highway dimension is the structural reason road networks
// admit tiny hub labels, the counterpoint to the paper's hardness results
// on unstructured sparse graphs.
//
// The estimator is a greedy set-cover upper bound at each scale, suitable
// for graphs up to about a thousand vertices.
package hdim

import (
	"errors"
	"fmt"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// MaxVertices bounds the estimator's input size.
const MaxVertices = 1500

// ErrTooLarge reports a graph beyond MaxVertices.
var ErrTooLarge = errors.New("hdim: graph too large for the estimator")

// ScaleEstimate is the greedy cover size at one scale.
type ScaleEstimate struct {
	// R is the scale: paths of length in (R, 2R] are covered.
	R graph.Weight
	// Paths is the number of shortest paths at this scale (one canonical
	// path per unordered pair in range).
	Paths int
	// GreedyCover is the greedy hitting-set size — an upper bound on the
	// sparsest cover, and (up to the greedy's ln factor) a proxy for h.
	GreedyCover int
	// MaxBallCover is the maximum, over balls B(v, 2R), of the number of
	// chosen cover vertices inside the ball — the locally-measured highway
	// dimension proxy.
	MaxBallCover int
}

// Estimate computes greedy shortest-path cover sizes for doubling scales
// r = 1, 2, 4, ... up to the diameter.
func Estimate(g *graph.Graph) ([]ScaleEstimate, error) {
	n := g.NumNodes()
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (max %d)", ErrTooLarge, n, MaxVertices)
	}
	if n == 0 {
		return nil, nil
	}
	// One canonical shortest path per pair, via parent trees; the searches
	// are independent and fan out over the worker pool.
	results := make([]*sssp.Result, n)
	par.For(n, func(v int) {
		results[v] = sssp.Search(g, graph.NodeID(v))
	})
	diam := graph.Weight(0)
	for v := 0; v < n; v++ {
		for _, d := range results[v].Dist {
			if d != graph.Infinity && d > diam {
				diam = d
			}
		}
	}
	var out []ScaleEstimate
	for r := graph.Weight(1); r <= diam; r *= 2 {
		est, err := estimateScale(g, results, r)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

func estimateScale(g *graph.Graph, results []*sssp.Result, r graph.Weight) (ScaleEstimate, error) {
	n := g.NumNodes()
	// Collect canonical shortest paths with length in (r, 2r]; extraction
	// is per-source independent, and concatenating the per-source buckets
	// in id order keeps the path list deterministic.
	perSource := make([][][]graph.NodeID, n)
	par.For(n, func(u int) {
		var bucket [][]graph.NodeID
		for v := u + 1; v < n; v++ {
			d := results[u].Dist[v]
			if d == graph.Infinity || d <= r || d > 2*r {
				continue
			}
			bucket = append(bucket, results[u].PathTo(graph.NodeID(v)))
		}
		perSource[u] = bucket
	})
	var paths [][]graph.NodeID
	for _, bucket := range perSource {
		paths = append(paths, bucket...)
	}
	est := ScaleEstimate{R: r, Paths: len(paths)}
	if len(paths) == 0 {
		return est, nil
	}
	// Greedy hitting set: repeatedly pick the vertex on the most uncovered
	// paths.
	covered := make([]bool, len(paths))
	remaining := len(paths)
	var chosen []graph.NodeID
	counts := make([]int, n)
	for remaining > 0 {
		for i := range counts {
			counts[i] = 0
		}
		for i, p := range paths {
			if covered[i] {
				continue
			}
			for _, x := range p {
				counts[x]++
			}
		}
		best := 0
		for x := 1; x < n; x++ {
			if counts[x] > counts[best] {
				best = x
			}
		}
		if counts[best] == 0 {
			return est, errors.New("hdim: greedy cover stalled")
		}
		chosen = append(chosen, graph.NodeID(best))
		for i, p := range paths {
			if covered[i] {
				continue
			}
			for _, x := range p {
				if int(x) == best {
					covered[i] = true
					remaining--
					break
				}
			}
		}
	}
	est.GreedyCover = len(chosen)
	// Local density: max count of chosen vertices in any ball B(v, 2r).
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	for v := 0; v < n; v++ {
		inBall := 0
		for _, c := range chosen {
			if results[v].Dist[c] <= 2*r {
				inBall++
			}
		}
		if inBall > est.MaxBallCover {
			est.MaxBallCover = inBall
		}
	}
	return est, nil
}
