package flowctl

import "testing"

// TestSnapshotMergeMax pins the gossip contract: a snapshot of one
// controller max-merged into a same-shape peer transfers the shed
// decision for the flow that caused it.
func TestSnapshotMergeMax(t *testing.T) {
	opts := Options{Seed: 7, MaxDrop: 1}
	a, b := New(opts), New(opts)
	for i := 0; i < 200; i++ {
		a.OnQueueFull("flooder")
	}
	if p := a.Probability("flooder"); p != 1 {
		t.Fatalf("flooder probability on a = %v, want 1", p)
	}
	snap := a.Snapshot(nil)
	if len(snap) != a.Levels()*a.Buckets() {
		t.Fatalf("snapshot length %d, want %d", len(snap), a.Levels()*a.Buckets())
	}
	changed := 0
	for i, p := range snap {
		if p == 0 {
			continue
		}
		ch, err := b.MergeMax(i, p)
		if err != nil {
			t.Fatal(err)
		}
		if ch {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("merge changed no buckets")
	}
	if p := b.Probability("flooder"); p != 1 {
		t.Fatalf("flooder probability on b after merge = %v, want 1", p)
	}
	if p := b.Probability("polite"); p != 0 {
		t.Fatalf("merge throttled an innocent flow: %v", p)
	}
	// Merging is idempotent: replaying the same snapshot changes nothing.
	for i, p := range snap {
		if ch, _ := b.MergeMax(i, p); ch {
			t.Fatalf("replayed merge changed bucket %d", i)
		}
	}
}

// TestMergeMaxCaps checks that gossip respects the local MaxDrop cap
// (so remote state can never starve a flow's recovery trickle) and
// that it rejects out-of-range input.
func TestMergeMaxCaps(t *testing.T) {
	c := New(Options{MaxDrop: 0.5})
	if _, err := c.MergeMax(0, ProbOne); err != nil {
		t.Fatal(err)
	}
	if got := c.p[0].Load(); got != c.maxDrop {
		t.Fatalf("merged prob %d, want cap %d", got, c.maxDrop)
	}
	if _, err := c.MergeMax(-1, 1); err == nil {
		t.Fatal("negative bucket accepted")
	}
	if _, err := c.MergeMax(c.Levels()*c.Buckets(), 1); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
	if _, err := c.MergeMax(0, ProbOne+1); err == nil {
		t.Fatal("over-1.0 probability accepted")
	}
}

// TestMergeNeverLowers checks the monotone-up property: a merge with a
// smaller probability leaves the local (higher) state alone, so stale
// gossip replayed out of order is harmless.
func TestMergeNeverLowers(t *testing.T) {
	c := New(Options{})
	if _, err := c.MergeMax(3, 1000); err != nil {
		t.Fatal(err)
	}
	if ch, err := c.MergeMax(3, 10); err != nil || ch {
		t.Fatalf("stale merge lowered bucket: changed=%v err=%v", ch, err)
	}
	if got := c.p[3].Load(); got != 1000 {
		t.Fatalf("bucket = %d, want 1000", got)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	c := New(Options{})
	buf := make([]uint32, 0, c.Levels()*c.Buckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Snapshot(buf[:0])
	}
}
