package flowctl

import "fmt"

// This file is the fleet-sharing surface of the controller: replicas
// exchange bucket probabilities so a flow throttled on one node is
// throttled everywhere. Sharing is a max-merge — remote state can only
// raise a local bucket, never lower it — which makes gossip idempotent,
// commutative, and safe to replay out of order. Downward convergence is
// purely local: each node's own OnServed decay relaxes its buckets once
// the admitted trickle (MaxDrop < 1) starts succeeding again.

// Levels returns the configured number of hash levels (L).
func (c *Controller) Levels() int { return c.levels }

// Buckets returns the per-level bucket count after power-of-two
// rounding (B).
func (c *Controller) Buckets() int { return int(c.mask) + 1 }

// Seed returns the hash seed. Controllers can only meaningfully merge
// state when their seeds (and shapes) match: the seed determines which
// bucket a given client hashes to, so merging across different seeds
// would penalize unrelated flows.
func (c *Controller) Seed() uint64 { return c.seed }

// ProbOne is the fixed-point representation of probability 1.0 used by
// Snapshot and MergeMax values.
const ProbOne = probOne

// Snapshot appends the current fixed-point probability of every bucket
// (levels × buckets values, level-major) to dst and returns the
// extended slice. Pass a recycled slice to avoid allocation.
func (c *Controller) Snapshot(dst []uint32) []uint32 {
	for i := range c.p {
		dst = append(dst, c.p[i].Load())
	}
	return dst
}

// MergeMax raises bucket (a flat index in [0, Levels×Buckets)) to at
// least prob, saturating at the controller's MaxDrop cap so gossip can
// never pin a bucket at 1.0 and starve its flows' recovery trickle.
// It reports whether the bucket changed. Merging is lock-free and
// allocation free, like every other hot-path operation.
func (c *Controller) MergeMax(bucket int, prob uint32) (bool, error) {
	if bucket < 0 || bucket >= len(c.p) {
		return false, fmt.Errorf("flowctl: merge bucket %d out of range [0,%d)", bucket, len(c.p))
	}
	if prob > probOne {
		return false, fmt.Errorf("flowctl: merge probability %d above fixed-point 1.0", prob)
	}
	if prob > c.maxDrop {
		prob = c.maxDrop
	}
	b := &c.p[bucket]
	for {
		old := b.Load()
		if old >= prob {
			return false, nil
		}
		if b.CompareAndSwap(old, prob) {
			return true, nil
		}
	}
}
