package flowctl

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDefaults checks that the zero Options value selects the documented
// defaults and a usable controller.
func TestDefaults(t *testing.T) {
	c := New(Options{})
	if c.levels != DefaultLevels {
		t.Errorf("levels = %d, want %d", c.levels, DefaultLevels)
	}
	if got := int(c.mask) + 1; got != DefaultBuckets {
		t.Errorf("buckets = %d, want %d", got, DefaultBuckets)
	}
	if c.Shed("anyone") {
		t.Error("fresh controller sheds traffic")
	}
	if p := c.Probability("anyone"); p != 0 {
		t.Errorf("fresh probability = %v, want 0", p)
	}
}

// TestBucketRounding checks the power-of-two rounding of Buckets.
func TestBucketRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {200, 256}, {256, 256}, {257, 512},
	} {
		c := New(Options{Buckets: tc.in})
		if got := int(c.mask) + 1; got != tc.want {
			t.Errorf("Buckets %d rounds to %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestBadOptionsPanic pins the programmer-error panics.
func TestBadOptionsPanic(t *testing.T) {
	for _, opts := range []Options{
		{Inc: -0.5},
		{Inc: 1.5},
		{Dec: 2},
		{MaxDrop: -1},
		{Levels: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", opts)
				}
			}()
			New(opts)
		}()
	}
}

// TestSaturationAndDecay walks one client through the BLUE feedback
// cycle: queue-full events saturate its probability at MaxDrop, served
// requests decay it back to zero.
func TestSaturationAndDecay(t *testing.T) {
	c := New(Options{Inc: 0.1, Dec: 0.01, MaxDrop: 0.9})
	const client = "heavy"
	for i := 0; i < 100; i++ {
		c.OnQueueFull(client)
	}
	if p := c.Probability(client); p < 0.89 || p > 0.9+1e-9 {
		t.Fatalf("saturated probability = %v, want ≈0.9", p)
	}
	// MaxDrop < 1: the client must keep a trickle of admitted probes.
	admitted := 0
	for i := 0; i < 5000; i++ {
		if !c.Shed(client) {
			admitted++
		}
	}
	if admitted == 0 {
		t.Error("saturated client fully starved; MaxDrop cap not applied")
	}
	if admitted > 5000/2 {
		t.Errorf("saturated client admitted %d/5000, want ≈10%%", admitted)
	}
	for i := 0; i < 100; i++ {
		c.OnServed(client)
	}
	if p := c.Probability(client); p != 0 {
		t.Errorf("decayed probability = %v, want 0", p)
	}
	if c.Shed(client) {
		t.Error("decayed client still shed")
	}
}

// TestFreezeRateLimitsIncrements checks BLUE's freeze time: a burst of
// queue-full events lands at most one increment per bucket per window.
func TestFreezeRateLimitsIncrements(t *testing.T) {
	c := New(Options{Inc: 0.1, Freeze: time.Hour})
	for i := 0; i < 50; i++ {
		c.OnQueueFull("bursty")
	}
	if p := c.Probability("bursty"); p < 0.1-1e-6 || p > 0.1+1e-6 {
		t.Errorf("probability after frozen burst = %v, want exactly one 0.1 increment", p)
	}
	// Decay is not frozen.
	for i := 0; i < 100; i++ {
		c.OnServed("bursty")
	}
	if p := c.Probability("bursty"); p != 0 {
		t.Errorf("probability after decay = %v, want 0", p)
	}
}

// TestMinOverBuckets is the fairness core: a heavy client saturating its
// buckets must not drag light clients with it unless a light client
// collides in EVERY level.
func TestMinOverBuckets(t *testing.T) {
	c := New(Options{Levels: 3, Buckets: 64})
	for i := 0; i < 1000; i++ {
		c.OnQueueFull("attacker")
	}
	if p := c.Probability("attacker"); p < 0.9 {
		t.Fatalf("attacker probability = %v, want ≈MaxDrop", p)
	}
	// With 3 levels of 64 buckets, a single heavy flow pollutes one
	// bucket per level; the chance a given light client collides in all
	// three is 64^-3 ≈ 4e-6. Spot-check many distinct light ids.
	throttled := 0
	for i := 0; i < 500; i++ {
		if c.Probability(fmt.Sprintf("light-%d", i)) > 0 {
			throttled++
		}
	}
	if throttled > 0 {
		t.Errorf("%d/500 light clients inherit the attacker's probability", throttled)
	}
}

// TestStatsHotFlows checks the hot-flow estimate: two saturated flows,
// hundreds of clean ones.
func TestStatsHotFlows(t *testing.T) {
	c := New(Options{Levels: 3, Buckets: 128})
	for i := 0; i < 200; i++ {
		c.OnQueueFull("hot-a")
		c.OnQueueFull("hot-b")
	}
	for i := 0; i < 300; i++ {
		c.OnServed(fmt.Sprintf("cold-%d", i))
	}
	st := c.Stats()
	if st.HotFlows < 1 || st.HotFlows > 2 {
		t.Errorf("HotFlows = %d, want 1..2 (collisions may merge the two)", st.HotFlows)
	}
	if st.MaxDrop < 0.9 {
		t.Errorf("MaxDrop = %v, want ≈0.98", st.MaxDrop)
	}
	if st.Levels != 3 || st.Buckets != 128 {
		t.Errorf("shape = %d×%d, want 3×128", st.Levels, st.Buckets)
	}
}

// TestShedFrequency checks the coin flip tracks the bucket probability.
func TestShedFrequency(t *testing.T) {
	c := New(Options{Inc: 0.25, MaxDrop: 0.5})
	c.OnQueueFull("c") // p = 0.25
	shed := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Shed("c") {
			shed++
		}
	}
	got := float64(shed) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("shed fraction = %v, want ≈0.25", got)
	}
}

// TestConcurrentUpdates hammers all operations from many goroutines; run
// under -race this pins the lock-free bucket updates.
func TestConcurrentUpdates(t *testing.T) {
	c := New(Options{Levels: 2, Buckets: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("client-%d", g%4)
			for i := 0; i < 2000; i++ {
				switch i % 4 {
				case 0:
					c.OnQueueFull(id)
				case 1, 2:
					c.OnServed(id)
				default:
					c.Shed(id)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.MaxDrop < 0 || st.MaxDrop > 1 {
		t.Errorf("MaxDrop out of range after concurrent updates: %v", st.MaxDrop)
	}
}

// FuzzBucketHash feeds arbitrary client identities and seeds through the
// bucket derivation and the update cycle: indices must stay in range
// (the updates would panic otherwise), be deterministic for equal
// inputs, and the probability invariants must hold for any id —
// including empty and non-UTF-8 ones.
func FuzzBucketHash(f *testing.F) {
	f.Add("", uint64(0))
	f.Add("10.0.0.1", uint64(1))
	f.Add("conn-42", uint64(0xdeadbeef))
	f.Add(string([]byte{0xff, 0x00, 0xfe}), uint64(7))
	f.Fuzz(func(t *testing.T, client string, seed uint64) {
		c := New(Options{Levels: 4, Buckets: 32, Seed: seed})
		h := c.hash(client)
		if h != c.hash(client) {
			t.Fatal("hash not deterministic")
		}
		for l := 0; l < c.levels; l++ {
			idx := c.bucket(h, l)
			lo, hi := l*(int(c.mask)+1), (l+1)*(int(c.mask)+1)
			if idx < lo || idx >= hi {
				t.Fatalf("level %d bucket %d outside its level range [%d,%d)", l, idx, lo, hi)
			}
			if idx != c.bucket(h, l) {
				t.Fatalf("level %d bucket not deterministic", l)
			}
		}
		c.OnQueueFull(client)
		p1 := c.Probability(client)
		if p1 <= 0 || p1 > 1 {
			t.Fatalf("probability after one congestion event = %v, want (0,1]", p1)
		}
		for i := 0; i < 200; i++ {
			c.OnQueueFull(client)
		}
		if p := c.Probability(client); p > float64(c.maxDrop)/probOne+1e-9 {
			t.Fatalf("probability %v exceeds MaxDrop", p)
		}
		for i := 0; i < 10000; i++ {
			c.OnServed(client)
		}
		if p := c.Probability(client); p != 0 {
			t.Fatalf("probability after full decay = %v, want 0", p)
		}
		c.Shed(client) // must not panic for any id
	})
}
