// Package flowctl is a constant-memory fair admission controller for the
// serving layer, in the spirit of Stochastic Fair BLUE (Feng et al.):
// each client identity hashes into one bucket per level across L
// independent levels of B buckets, and every bucket holds a shedding
// probability that rises when the client's traffic hits a full queue and
// decays as its requests are served. A client's drop probability is the
// MINIMUM over its L buckets: a heavy client saturates all of its
// buckets, while a light client that shares some buckets with a heavy
// one keeps at least one uncontended bucket (with probability
// 1-(1/B)^L per heavy flow) and stays unthrottled.
//
// State is L×B fixed-point probabilities regardless of the number of
// clients — there is no per-client map to grow, evict, or lock. All
// operations are lock-free (atomic CAS on the buckets) and allocation
// free, so the controller can sit directly on the per-request serving
// hot path.
package flowctl

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// probOne is the fixed-point representation of probability 1.0. Bucket
// probabilities live in [0, probOne] inside an atomic uint32.
const probOne = 1 << 24

// Defaults for Options fields left zero.
const (
	DefaultLevels  = 3
	DefaultBuckets = 256
	DefaultInc     = 0.05
	DefaultDec     = 0.01
	DefaultMaxDrop = 0.98
)

// Options configures a Controller. The zero value selects the defaults,
// which suit a per-process serving layer with up to a few thousand
// concurrently active client identities.
type Options struct {
	// Levels is the number of independent hash levels (L). More levels
	// shrink the false-positive probability of a light client sharing
	// every bucket with heavy ones. Default 3.
	Levels int
	// Buckets is the number of buckets per level (B), rounded up to a
	// power of two. Memory is Levels×Buckets×4 bytes. Default 256.
	Buckets int
	// Inc is the probability added to each of a client's buckets when
	// one of its requests finds every queue slot taken (the congestion
	// signal). Default 0.05.
	Inc float64
	// Dec is the probability subtracted from each of a client's buckets
	// when one of its requests is served — the decay schedule. Inc should
	// clearly exceed Dec (the defaults are 5×): throttle quickly when
	// queues overflow, recover more cautiously to avoid retry storms.
	// Dec/(Dec+Inc) is also the queue-full fraction the feedback loop
	// steers toward under sustained overload. Default 0.01.
	Dec float64
	// MaxDrop caps every bucket's probability below 1 so a saturated
	// client keeps a trickle of admitted probes; those successes are what
	// decays its buckets back down once the overload ends (a bucket
	// pinned at 1.0 would starve its flows forever). Default 0.98.
	MaxDrop float64
	// Freeze, when positive, is BLUE's freeze time applied to the
	// congestion side: after a bucket is incremented, further increments
	// to it are ignored for this long, bounding the ramp rate during
	// event bursts. It is OFF by default and best left off when clients
	// differ mostly in rate: per-event increments penalize each flow in
	// proportion to its arrival rate (a flooder overflows queues orders
	// of magnitude more often than a polite client), and a freeze window
	// erases exactly that proportionality — within one window the
	// flooder and a polite client each absorb at most one increment.
	// Decay is never frozen; it is already bounded by the serve rate.
	Freeze time.Duration
	// Seed perturbs the bucket hash so restarts (or controller pairs)
	// pick different collision patterns. Zero is a valid fixed seed.
	Seed uint64
}

// Controller is the shared admission state. All methods are safe for
// concurrent use and never allocate.
type Controller struct {
	levels  int
	mask    uint32 // buckets-1, buckets a power of two
	shift   uint   // log2(buckets)
	inc     uint32
	dec     uint32
	maxDrop uint32
	seed    uint64
	freeze  int64 // nanoseconds; 0 = disabled
	// p holds levels runs of buckets fixed-point probabilities.
	p []atomic.Uint32
	// lastInc holds, per bucket, the UnixNano time of its last applied
	// increment (only allocated when the freeze is enabled).
	lastInc []atomic.Int64
	// rng is the lock-free state of the admission coin flips.
	rng atomic.Uint64
}

// New returns a controller for the given options, applying defaults to
// zero fields. It panics on nonsensical options (negative rates, rates
// above one) — controller parameters are programmer-chosen constants,
// not runtime input.
func New(opts Options) *Controller {
	if opts.Levels == 0 {
		opts.Levels = DefaultLevels
	}
	if opts.Buckets == 0 {
		opts.Buckets = DefaultBuckets
	}
	if opts.Inc == 0 {
		opts.Inc = DefaultInc
	}
	if opts.Dec == 0 {
		opts.Dec = DefaultDec
	}
	if opts.MaxDrop == 0 {
		opts.MaxDrop = DefaultMaxDrop
	}
	if opts.Levels < 0 || opts.Buckets < 0 {
		panic(fmt.Sprintf("flowctl: negative shape %d levels × %d buckets", opts.Levels, opts.Buckets))
	}
	if opts.Inc < 0 || opts.Inc > 1 || opts.Dec < 0 || opts.Dec > 1 || opts.MaxDrop < 0 || opts.MaxDrop > 1 {
		panic(fmt.Sprintf("flowctl: rates out of [0,1]: inc=%v dec=%v maxDrop=%v", opts.Inc, opts.Dec, opts.MaxDrop))
	}
	buckets := 1 << bits.Len(uint(opts.Buckets-1)) // round up to power of two
	if buckets < 1 {
		buckets = 1
	}
	c := &Controller{
		levels:  opts.Levels,
		mask:    uint32(buckets - 1),
		shift:   uint(bits.TrailingZeros(uint(buckets))),
		inc:     fixed(opts.Inc),
		dec:     fixed(opts.Dec),
		maxDrop: fixed(opts.MaxDrop),
		seed:    opts.Seed,
		p:       make([]atomic.Uint32, opts.Levels*buckets),
	}
	if opts.Freeze > 0 {
		c.freeze = int64(opts.Freeze)
		c.lastInc = make([]atomic.Int64, opts.Levels*buckets)
	}
	c.rng.Store(opts.Seed ^ 0x9e3779b97f4a7c15)
	return c
}

// fixed converts a probability in [0,1] to the fixed-point bucket scale.
func fixed(p float64) uint32 {
	v := math.Round(p * probOne)
	if v > probOne {
		v = probOne
	}
	if v < 0 {
		v = 0
	}
	return uint32(v)
}

// hash is 64-bit FNV-1a over the client id, folded with the controller
// seed and passed through a finalizing mixer. Operating directly on the
// string bytes keeps it allocation free. The mixer matters: the bucket
// derivation consumes only log2(B) bits from each half of the hash, and
// raw FNV-1a has no final avalanche, so similar ids (sequential
// addresses, "conn-1"/"conn-2") would collide across every level far
// above the ideal rate.
func (c *Controller) hash(client string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ c.seed
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= prime64
	}
	// splitmix64 finalizer: full avalanche into both 32-bit halves.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bucket returns the index into c.p of client's bucket at the given
// level, using the two-hash derivation h_i = h1 + i·h2 (Kirsch &
// Mitzenmacher) so one 64-bit hash yields all levels. h2 is forced odd
// so successive levels permute rather than collapse.
func (c *Controller) bucket(h uint64, level int) int {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1
	return level<<c.shift + int((h1+uint32(level)*h2)&c.mask)
}

// probFixed returns the client's current drop probability in fixed
// point: the minimum over its buckets.
func (c *Controller) probFixed(h uint64) uint32 {
	min := uint32(probOne)
	for l := 0; l < c.levels; l++ {
		if p := c.p[c.bucket(h, l)].Load(); p < min {
			min = p
		}
	}
	return min
}

// Shed reports whether one request from client should be dropped now,
// flipping a coin against the client's current drop probability. It is
// the admission decision and performs no bucket updates — congestion
// and service feedback arrive through OnQueueFull and OnServed.
func (c *Controller) Shed(client string) bool {
	p := c.probFixed(c.hash(client))
	if p == 0 {
		return false
	}
	// splitmix64 on an atomic counter: cheap, lock-free, well mixed.
	x := c.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)&(probOne-1) < p
}

// OnQueueFull records that a request from client found its queue full —
// the congestion signal. Every one of the client's buckets moves up by
// Inc (saturating at MaxDrop), so a flow only reaches a high drop
// probability by overflowing queues from every one of its buckets. With
// a freeze time configured, a bucket absorbs at most one increment per
// freeze window regardless of how fast the queue emits full events.
func (c *Controller) OnQueueFull(client string) {
	h := c.hash(client)
	now := int64(0)
	if c.freeze > 0 {
		now = time.Now().UnixNano()
	}
	for l := 0; l < c.levels; l++ {
		i := c.bucket(h, l)
		if c.freeze > 0 {
			last := c.lastInc[i].Load()
			if now-last < c.freeze || !c.lastInc[i].CompareAndSwap(last, now) {
				continue // frozen, or another event just claimed this window
			}
		}
		b := &c.p[i]
		for {
			old := b.Load()
			next := old + c.inc
			if next > c.maxDrop || next < old { // saturate (and guard wrap)
				next = c.maxDrop
			}
			if old == next || b.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// OnServed records that a request from client was served — the decay
// signal. Every one of the client's buckets moves down by Dec (flooring
// at zero), so probabilities relax as soon as the flow's admitted
// traffic fits the queues again.
func (c *Controller) OnServed(client string) {
	h := c.hash(client)
	for l := 0; l < c.levels; l++ {
		b := &c.p[c.bucket(h, l)]
		for {
			old := b.Load()
			if old == 0 {
				break
			}
			next := old - c.dec
			if next > old { // underflow
				next = 0
			}
			if b.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// Probability returns client's current drop probability in [0,1] — the
// minimum over its buckets. Intended for tests, stats and experiments;
// the serving path uses Shed.
func (c *Controller) Probability(client string) float64 {
	return float64(c.probFixed(c.hash(client))) / probOne
}

// hotFixed is the bucket probability at and above which a bucket counts
// as hot in Stats: one half.
const hotFixed = probOne / 2

// Stats is a point-in-time summary of the controller state.
type Stats struct {
	// Levels and Buckets echo the configured shape (buckets after
	// power-of-two rounding).
	Levels, Buckets int
	// HotFlows estimates the number of distinct throttled flows: every
	// throttled flow holds a bucket at probability ≥ ½ in each level, so
	// the minimum per-level count of such buckets bounds the estimate
	// (collisions can only merge hot buckets, never split them).
	HotFlows int
	// MaxDrop is the largest drop probability any bucket currently
	// holds.
	MaxDrop float64
}

// Stats scans the buckets (L×B loads) and summarizes them.
func (c *Controller) Stats() Stats {
	st := Stats{Levels: c.levels, Buckets: int(c.mask) + 1}
	var maxP uint32
	minHot := math.MaxInt
	for l := 0; l < c.levels; l++ {
		hot := 0
		for b := 0; b <= int(c.mask); b++ {
			p := c.p[l<<c.shift+b].Load()
			if p > maxP {
				maxP = p
			}
			if p >= hotFixed {
				hot++
			}
		}
		if hot < minHot {
			minHot = hot
		}
	}
	if c.levels == 0 {
		minHot = 0
	}
	st.HotFlows = minHot
	st.MaxDrop = float64(maxP) / probOne
	return st
}
