// Package index defines the unified lifecycle of distance-query
// structures: build from a graph (through a registry of named backends),
// persist to and load from index containers, and serve queries behind one
// Index interface. It subsumes the ad-hoc oracle backends of the S·T
// tradeoff discussion (paper §1) — the distance matrix, hub labels and
// plain bidirectional search are all registered backends — and is the
// layer the serving stack (internal/server, cmd/hubserve) is built on.
package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hublab/internal/graph"
)

// ErrTooLarge reports inputs beyond an implementation's size limit.
var ErrTooLarge = errors.New("index: graph too large")

// ErrUnknownKind reports a backend kind absent from the registry.
var ErrUnknownKind = errors.New("index: unknown backend kind")

// Index answers exact distance queries over a fixed graph and accounts
// for the bytes its query structure occupies.
type Index interface {
	// Distance returns the exact shortest-path distance (graph.Infinity if
	// unreachable).
	Distance(u, v graph.NodeID) graph.Weight
	// SpaceBytes returns the size of the query structure (excluding the
	// input graph unless the index retains it).
	SpaceBytes() int64
	// Name identifies the backend for reports.
	Name() string
	// Meta returns structural metadata about the index.
	Meta() Meta
}

// Meta describes an index for registries, reports and the S·T table.
type Meta struct {
	// Kind is the backend's registry name.
	Kind string
	// Vertices is the number of vertices the index covers.
	Vertices int
	// QueryOps approximates the time side T of the S·T tradeoff:
	// operations touched per query (matrix: 1; hub labels: average merged
	// label length; search: edges scanned estimate).
	QueryOps float64
	// Representation names the label storage form serving the queries
	// (hub.RepExpanded or hub.RepCompact); empty for backends without a
	// label store.
	Representation string
	// ResidentBytes is the byte size of the query structure as held in
	// memory (or mapped) — SpaceBytes, surfaced alongside ContainerBytes
	// so the two are comparable in one report.
	ResidentBytes int64
	// ContainerBytes is the on-disk size of the container the index was
	// loaded from; 0 for indexes built in-process.
	ContainerBytes int64
}

// Batcher is the optional batched-query fast path. Backends whose query
// is latency-bound (the hub-label merge) implement it to answer many
// pairs with interleaved scans; out must have at least len(pairs) slots.
type Batcher interface {
	DistanceBatch(pairs [][2]graph.NodeID, out []graph.Weight)
}

// PathReporter is the optional witness-path capability: backends that can
// reconstruct an actual shortest path (not just its length) implement it.
// AppendPath appends the vertices of one shortest u–v path — inclusive of
// both endpoints, in u→v order — to dst and returns the extended slice;
// nothing is appended when v is unreachable from u. Reusing dst across
// calls keeps queries allocation-free in steady state. Out-of-range ids
// and structurally unsupported queries (e.g. a hub-label index loaded
// from a version-1 container, which carries no parent column) are
// reported as errors, never panics.
type PathReporter interface {
	AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error)
}

// EccentricityReporter is the optional farthest-point capability:
// Eccentricity returns max_u dist(v,u) over the vertices reachable from v
// (0 when v reaches nothing), and Farthest additionally names a vertex
// attaining it (v itself when the eccentricity is 0). Out-of-range ids
// are reported as errors.
type EccentricityReporter interface {
	Eccentricity(v graph.NodeID) (graph.Weight, error)
	Farthest(v graph.NodeID) (graph.NodeID, graph.Weight, error)
}

// CapabilityWarmer is implemented by backends whose optional capability
// state materializes lazily on first use — the matrix's next-hop table
// (n searches), the hub-label index's inverted eccentricity lists. Both
// methods are idempotent, safe for concurrent callers, and cheap once
// the state exists; serving layers call them in the submitting
// goroutine so a one-time build never head-of-line blocks a shared
// worker.
type CapabilityWarmer interface {
	WarmPaths()
	WarmEccentricity()
}

// Releaser is implemented by indexes holding resources the garbage
// collector cannot reclaim — today the hub-label views over a
// memory-mapped container (LoadMmap). Release frees them; the index must
// not answer queries afterwards. Serving layers that take ownership of
// an index (server.Options.OwnIndex, Server.SwapRetire) call Release
// exactly once, after the last in-flight query on the index drains.
// Indexes without such resources may implement it as a no-op.
type Releaser interface {
	Release() error
}

// Options parameterizes backend construction.
type Options struct {
	// Seed drives any randomized choices of the builder.
	Seed int64
}

// BuildFunc constructs a backend's index from a graph.
type BuildFunc func(g *graph.Graph, opts Options) (Index, error)

var registry = struct {
	sync.RWMutex
	builders map[string]BuildFunc
}{builders: map[string]BuildFunc{}}

// Register adds a buildable backend under kind. Registering a kind twice
// panics — backend names are an API.
func Register(kind string, build BuildFunc) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.builders[kind]; dup {
		panic(fmt.Sprintf("index: backend %q registered twice", kind))
	}
	registry.builders[kind] = build
}

// Build constructs the registered backend kind over g.
func Build(kind string, g *graph.Graph, opts Options) (Index, error) {
	registry.RLock()
	build, ok := registry.builders[kind]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownKind, kind, Kinds())
	}
	return build(g, opts)
}

// Kinds returns the registered backend names, sorted.
func Kinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	kinds := make([]string, 0, len(registry.builders))
	for k := range registry.builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
