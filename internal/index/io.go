package index

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hublab/internal/faultinject"
	"hublab/internal/hub"
)

// Save writes idx to path as an index container. Only backends with a
// persistent form support this; today that is HubLabels (the paper's
// whole point is that the label structure is the thing worth storing).
//
// The write is crash-safe end to end: the container is written to a
// temporary sibling, fsynced, and renamed into place, and the parent
// directory is fsynced after the rename — so a crash (or a full disk, or
// an injected short write) at any point leaves either the complete old
// file or the complete new file at path, never a truncated container,
// and a completed Save survives power loss. This discipline is what the
// mmap serving path relies on: replacing a live container by anything
// other than atomic rename can SIGBUS readers of the mapped file.
func Save(path string, idx Index, opts hub.ContainerOptions) error {
	x, ok := idx.(*HubLabels)
	if !ok {
		return fmt.Errorf("index: backend %q has no container form", idx.Name())
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".hli-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp files are 0600; containers should be as readable as any
	// other artifact the tools write.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	// The faultinject wrap is how tests crash a save partway through: a
	// shortwrite trigger makes the writer fail after n bytes, the exact
	// observable shape of a torn write. Writing through the store lets a
	// compact index save any format (converting as needed) and an
	// expanded index emit the compact v4 layout via opts.Compact.
	if _, err := x.Store().WriteContainer(faultinject.WrapWriter(faultinject.PointContainerWrite, tmp), opts); err != nil {
		tmp.Close()
		return err
	}
	// Flush the temp file to stable storage before it can be renamed
	// over the destination: rename-before-fsync can leave a zero-length
	// or partial file at path after a crash, which is precisely the torn
	// container this function promises not to produce.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// And make the rename itself durable: the directory entry lives in
	// the parent directory's data.
	return syncDir(filepath.Dir(path))
}

// SaveStreaming writes a canonical (not necessarily frozen) labeling to
// path with the same crash-safety discipline as Save — temp sibling,
// fsync, rename, directory fsync — but through hub.ContainerWriter, so
// the flat representation is never materialized. This is the save path
// for million-vertex builds: the process's peak RSS stays at roughly one
// copy of the labeling instead of two (mutable + flat), and the
// on-disk bytes are identical to what Save would have produced.
//
// Gamma-compressed containers cannot be emitted incrementally (the
// payload is one bit-packed stream whose length is unknowable up
// front); callers wanting Compress must Freeze and use Save.
func SaveStreaming(path string, l *hub.Labeling, opts hub.ContainerOptions) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".hli-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	// Same chaos seam as Save: a shortwrite trigger on PointContainerWrite
	// tears the streamed save partway through, and the temp+rename
	// discipline must still leave path intact.
	w := faultinject.WrapWriterAt(faultinject.PointContainerWrite, tmp)
	if _, err := l.WriteContainerStreaming(w, opts); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// IsCorrupt reports whether a Load/LoadMmap error means the container
// file itself is damaged (torn write, truncation, bit rot, hostile
// edit) rather than missing or unreadable — the signal on which callers
// quarantine the file instead of retrying it.
func IsCorrupt(err error) bool { return errors.Is(err, hub.ErrContainer) }

// Quarantine moves a corrupt container aside as path+".quarantined"
// (replacing any previous quarantine of the same path) so startup and
// reload never spin on a file known to be garbage, while the bytes are
// preserved for diagnosis. It returns the quarantine path.
func Quarantine(path string) (string, error) {
	q := path + ".quarantined"
	if err := os.Rename(path, q); err != nil {
		return "", fmt.Errorf("index: quarantine %s: %w", path, err)
	}
	// Best effort: the rename is what matters, durability of it is nice
	// to have.
	_ = syncDir(filepath.Dir(path))
	return q, nil
}

// CleanPartials removes leftover temporary save files (the ".hli-*"
// siblings a crashed Save leaves behind) from dir, returning the names
// it removed. Tools that write containers call it at startup: partial
// temp files are never valid and only waste space, and removing them by
// name pattern can never touch a completed (renamed) container.
func CleanPartials(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, ".hli-*"))
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return removed, err
		}
		removed = append(removed, m)
	}
	return removed, nil
}

// Load reads an index container from path. The raw container path is
// near-memcpy: the flat arrays are reconstructed without ever touching
// the slice-of-slices labeling form. A version-4 (compact) container
// loads in its compressed representation and serves from it.
func Load(path string) (*HubLabels, error) {
	if err := faultinject.Fire(faultinject.PointContainerRead); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, err := LoadReader(f)
	if err != nil {
		return nil, err
	}
	x.containerBytes = statSize(path)
	return x, nil
}

// LoadReader is Load over an arbitrary stream.
func LoadReader(r io.Reader) (*HubLabels, error) {
	s, err := hub.ReadContainerStore(r)
	if err != nil {
		return nil, err
	}
	return FromStore(s), nil
}

// LoadMmap opens a container zero-copy: for version-3 (aligned) and
// version-4 (compact) files the index's columns are typed views of the
// memory-mapped region, so the open is O(n) plus one header checksum
// instead of a full decode, no second copy of the index exists in
// anonymous memory, and processes serving the same file share its
// physical pages. A compact container serves straight from its
// compressed form — queries decode on the fly and the resident working
// set is the compressed bytes actually touched. Old or gamma-compressed
// containers fall back to the decoded load transparently.
//
// A view-backed index must be released (Release, or a serving layer that
// owns it — server.Options.OwnIndex / SwapRetire) after its last query;
// see hub.OpenStoreMmap for the lifetime and validation contract.
func LoadMmap(path string) (*HubLabels, error) {
	if err := faultinject.Fire(faultinject.PointContainerRead); err != nil {
		return nil, err
	}
	s, err := hub.OpenStoreMmap(path)
	if err != nil {
		return nil, err
	}
	x := FromStore(s)
	x.containerBytes = statSize(path)
	return x, nil
}

// statSize returns the byte size of path, 0 when unknowable (the load
// already succeeded; metadata must not fail it).
func statSize(path string) int64 {
	if fi, err := os.Stat(path); err == nil {
		return fi.Size()
	}
	return 0
}
