package index

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hublab/internal/hub"
)

// Save writes idx to path as an index container. Only backends with a
// persistent form support this; today that is HubLabels (the paper's
// whole point is that the label structure is the thing worth storing).
// The file is written to a temporary sibling and renamed into place, so a
// crashed save never leaves a truncated container behind.
func Save(path string, idx Index, opts hub.ContainerOptions) error {
	x, ok := idx.(*HubLabels)
	if !ok {
		return fmt.Errorf("index: backend %q has no container form", idx.Name())
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".hli-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp files are 0600; containers should be as readable as any
	// other artifact the tools write.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if _, err := x.Flat().WriteContainer(tmp, opts); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads an index container from path. The raw container path is
// near-memcpy: the flat arrays are reconstructed without ever touching
// the slice-of-slices labeling form.
func Load(path string) (*HubLabels, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadReader(f)
}

// LoadReader is Load over an arbitrary stream.
func LoadReader(r io.Reader) (*HubLabels, error) {
	flat, err := hub.ReadContainer(r)
	if err != nil {
		return nil, err
	}
	return FromFlat(flat), nil
}

// LoadMmap opens a container zero-copy: for version-3 (aligned) files
// the index's CSR columns are typed views of the memory-mapped region,
// so the open is O(n) plus one checksum pass instead of a full decode,
// no second copy of the index exists in anonymous memory, and processes
// serving the same file share its physical pages. Old or compressed
// containers fall back to the decoded load transparently.
//
// A view-backed index must be released (Release, or a serving layer that
// owns it — server.Options.OwnIndex / SwapRetire) after its last query;
// see hub.OpenContainerMmap for the lifetime and validation contract.
func LoadMmap(path string) (*HubLabels, error) {
	flat, err := hub.OpenContainerMmap(path)
	if err != nil {
		return nil, err
	}
	return FromFlat(flat), nil
}
