package index

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/sssp"
)

func TestRegistryKinds(t *testing.T) {
	kinds := Kinds()
	for _, want := range []string{KindMatrix, KindHubLabels, KindSearch} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, kinds)
		}
	}
	if _, err := Build("no-such-backend", nil, Options{}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("Build(unknown) err = %v, want ErrUnknownKind", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(KindMatrix, nil)
}

func TestBackendsAgreeWithBFS(t *testing.T) {
	g, err := gen.Gnm(140, 250, 3)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	truth := sssp.AllPairs(g)
	for _, kind := range Kinds() {
		idx, err := Build(kind, g, Options{Seed: 7})
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		if idx.Name() != kind {
			t.Errorf("Build(%q).Name() = %q", kind, idx.Name())
		}
		meta := idx.Meta()
		if meta.Kind != kind || meta.Vertices != g.NumNodes() || meta.QueryOps <= 0 {
			t.Errorf("Build(%q).Meta() = %+v", kind, meta)
		}
		if idx.SpaceBytes() <= 0 {
			t.Errorf("Build(%q).SpaceBytes() = %d", kind, idx.SpaceBytes())
		}
		for u := 0; u < 140; u += 9 {
			for v := 0; v < 140; v += 7 {
				if got := idx.Distance(graph.NodeID(u), graph.NodeID(v)); got != truth[u][v] {
					t.Fatalf("%s.Distance(%d,%d) = %d, want %d", kind, u, v, got, truth[u][v])
				}
			}
		}
	}
}

func TestHubLabelsBatchMatchesScalar(t *testing.T) {
	g, err := gen.Gnm(200, 360, 11)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	idx, err := NewHubLabels(g)
	if err != nil {
		t.Fatalf("NewHubLabels: %v", err)
	}
	var b Batcher = idx
	pairs := make([][2]graph.NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(i * 3 % 200), graph.NodeID(i * 7 % 200)}
	}
	out := make([]graph.Weight, len(pairs))
	b.DistanceBatch(pairs, out)
	for i, p := range pairs {
		if want := idx.Distance(p[0], p[1]); out[i] != want {
			t.Fatalf("batch[%d] = %d, scalar = %d", i, out[i], want)
		}
	}
}

// TestDistanceOutOfRange pins the serving-door hardening: every backend
// must answer Infinity for ids outside [0, n) — hubserve passes
// client-supplied ids through, and before this guard a negative or ≥n id
// panicked inside Matrix.dist[u][v] / the flat-label offsets.
func TestDistanceOutOfRange(t *testing.T) {
	g, err := gen.Gnm(60, 110, 9)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	n := graph.NodeID(g.NumNodes())
	hostile := [][2]graph.NodeID{
		{-1, 0}, {0, -1}, {n, 0}, {0, n}, {n + 100, n + 100},
		{-1 << 30, 3}, {3, 1<<31 - 1},
	}
	for _, kind := range Kinds() {
		idx, err := Build(kind, g, Options{Seed: 1})
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		for _, p := range hostile {
			if got := idx.Distance(p[0], p[1]); got != graph.Infinity {
				t.Errorf("%s.Distance(%d,%d) = %d, want Infinity", kind, p[0], p[1], got)
			}
		}
		// In-range queries must be unaffected by the guard.
		if got, want := idx.Distance(0, 0), graph.Weight(0); got != want {
			t.Errorf("%s.Distance(0,0) = %d, want %d", kind, got, want)
		}
		if b, ok := idx.(Batcher); ok {
			// A batch mixing hostile and valid pairs must answer both.
			pairs := [][2]graph.NodeID{{0, 1}, {-5, n + 7}, {2, 3}}
			out := make([]graph.Weight, len(pairs))
			b.DistanceBatch(pairs, out)
			if out[1] != graph.Infinity {
				t.Errorf("%s batch hostile pair = %d, want Infinity", kind, out[1])
			}
			if out[0] != idx.Distance(0, 1) || out[2] != idx.Distance(2, 3) {
				t.Errorf("%s batch valid pairs disturbed by hostile neighbor", kind)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, err := gen.Gnm(150, 270, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	built, err := NewHubLabels(g)
	if err != nil {
		t.Fatalf("NewHubLabels: %v", err)
	}
	path := filepath.Join(t.TempDir(), "test.hli")
	if err := Save(path, built, hub.ContainerOptions{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Labeling() != nil {
		t.Error("container-loaded index materialized a mutable labeling")
	}
	if loaded.SpaceBytes() != built.SpaceBytes() {
		t.Errorf("loaded space %d, built space %d", loaded.SpaceBytes(), built.SpaceBytes())
	}
	for u := 0; u < 150; u += 4 {
		for v := 0; v < 150; v += 11 {
			uu, vv := graph.NodeID(u), graph.NodeID(v)
			if got, want := loaded.Distance(uu, vv), built.Distance(uu, vv); got != want {
				t.Fatalf("loaded.Distance(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestSaveUnsupportedBackend(t *testing.T) {
	g, err := gen.Gnm(30, 50, 1)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	if err := Save(filepath.Join(t.TempDir(), "x.hli"), NewSearch(g), hub.ContainerOptions{}); err == nil {
		t.Error("Save(search backend) succeeded, want error")
	}
}

func TestLoadReaderRejectsGarbage(t *testing.T) {
	if _, err := LoadReader(bytes.NewReader([]byte("not a container"))); !errors.Is(err, hub.ErrContainer) {
		t.Errorf("LoadReader(garbage) err = %v, want ErrContainer", err)
	}
}

// TestCapabilityWarming: warming materializes the lazy state up front —
// observable for the matrix backend through its space accounting, and
// idempotent for both warmers.
func TestCapabilityWarming(t *testing.T) {
	g, err := gen.Gnm(60, 110, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	base := m.SpaceBytes()
	m.WarmPaths()
	if got := m.SpaceBytes(); got != 2*base {
		t.Errorf("space after WarmPaths = %d, want %d", got, 2*base)
	}
	m.WarmPaths() // idempotent
	m.WarmEccentricity()

	hl, err := NewHubLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	hl.WarmPaths()
	hl.WarmEccentricity()
	if d, err := hl.Eccentricity(0); err != nil || d <= 0 {
		t.Errorf("ecc after warming = %d, %v", d, err)
	}
}
