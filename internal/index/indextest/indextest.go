// Package indextest provides a tiny synthetic index.Index for tests,
// benchmarks and load experiments: deterministic answers with an exactly
// controllable service time, so serving-layer behavior (queueing,
// overload, admission control) can be exercised without building a real
// labeling.
package indextest

import (
	"sync/atomic"
	"time"

	"hublab/internal/graph"
	"hublab/internal/index"
)

// Fixed answers Distance(u, v) = |u-v| over N vertices (Infinity for
// out-of-range ids). It deliberately implements no batch path, so every
// request through a server pays the full per-query cost.
//
// Two optional controls shape the service time: Delay adds a fixed
// sleep per query (a capacity-controlled backend: capacity =
// workers/Delay), and Gate, when non-nil, blocks every query until the
// channel is closed (a backend the test holds shut for as long as it
// needs the serving queues saturated). Started counts queries that have
// entered Distance, so tests can wait until a worker is verifiably busy.
type Fixed struct {
	N       int
	Delay   time.Duration
	Gate    <-chan struct{}
	Started atomic.Uint64
}

var _ index.Index = (*Fixed)(nil)

// Distance implements index.Index.
func (f *Fixed) Distance(u, v graph.NodeID) graph.Weight {
	f.Started.Add(1)
	if f.Gate != nil {
		<-f.Gate
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if u < 0 || int(u) >= f.N || v < 0 || int(v) >= f.N {
		return graph.Infinity
	}
	if u > v {
		u, v = v, u
	}
	return graph.Weight(v - u)
}

// SpaceBytes implements index.Index.
func (f *Fixed) SpaceBytes() int64 { return 0 }

// Name implements index.Index.
func (f *Fixed) Name() string { return "fixed" }

// Meta implements index.Index.
func (f *Fixed) Meta() index.Meta {
	return index.Meta{Kind: "fixed", Vertices: f.N, QueryOps: 1}
}
