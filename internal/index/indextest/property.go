package indextest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/sssp"
)

// Property harness: randomized cross-backend equivalence checking.
//
// Every registered index backend must present the same metric over the
// same graph. The harness builds a small brute-force distance matrix per
// graph family and asserts, on random samples:
//
//   - exactness: Distance(u,v) equals the true graph distance;
//   - symmetry: Distance(u,v) == Distance(v,u);
//   - the triangle inequality on sampled triples;
//   - batch/scalar agreement for Batcher backends;
//   - path validity for PathReporter backends: endpoints correct, every
//     consecutive pair an edge of the graph, weights summing to the
//     reported distance, empty exactly for unreachable pairs;
//   - ecc(v) == max_u dist(v,u) and the farthest vertex attaining it for
//     EccentricityReporter backends.
//
// The graph families deliberately include a disconnected graph (with an
// isolated vertex) and a weighted one, the two classic sources of
// backend-specific edge-case bugs.

// PropertyGraph is one named family instance for the harness.
type PropertyGraph struct {
	Name string
	G    *graph.Graph
}

// PropertyGraphs returns the harness families, deterministically derived
// from seed: a connected sparse Gnm, a grid, a random tree, a weighted
// road-like grid, a weighted random graph (uniform weights with no
// highway structure — shortest paths there rarely follow hop counts, the
// classic trap for backends that quietly assume unit weights), and a
// disconnected multi-component graph with an isolated vertex.
func PropertyGraphs(tb testing.TB, seed int64) []PropertyGraph {
	tb.Helper()
	must := func(g *graph.Graph, err error) *graph.Graph {
		tb.Helper()
		if err != nil {
			tb.Fatalf("property graph: %v", err)
		}
		return g
	}
	weightedGnm := func() (*graph.Graph, error) {
		// Re-weight a Gnm topology with uniform random weights in [1,9].
		ga, err := gen.Gnm(80, 150, seed+4)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 5))
		b := graph.NewBuilder(ga.NumNodes(), ga.NumEdges())
		for _, e := range ga.Edges() {
			b.AddWeightedEdge(e.U, e.V, 1+graph.Weight(rng.Intn(9)))
		}
		return b.Build()
	}
	disconnected := func() (*graph.Graph, error) {
		// Component A: Gnm on [0,40); component B: a cycle on [40,60);
		// vertex 60 isolated.
		b := graph.NewBuilder(61, 110)
		ga, err := gen.Gnm(40, 72, seed+3)
		if err != nil {
			return nil, err
		}
		for _, e := range ga.Edges() {
			b.AddEdge(e.U, e.V)
		}
		for i := graph.NodeID(40); i < 60; i++ {
			next := i + 1
			if next == 60 {
				next = 40
			}
			b.AddEdge(i, next)
		}
		b.Grow(61)
		return b.Build()
	}
	return []PropertyGraph{
		{"gnm", must(gen.Gnm(90, 170, seed))},
		{"grid", must(gen.Grid(8, 9))},
		{"tree", must(gen.RandomTree(70, seed+1))},
		{"road", must(gen.RoadLike(7, 8, 3, seed+2))},
		{"wgnm", must(weightedGnm())},
		{"disconnected", must(disconnected())},
	}
}

// RunProperties asserts the full property set for idx over g, sampling
// with the given seed. The brute-force reference is one search per vertex,
// so keep the harness graphs small (≲ 150 vertices).
func RunProperties(t *testing.T, g *graph.Graph, idx index.Index, seed int64) {
	t.Helper()
	n := g.NumNodes()
	truth := sssp.AllPairs(g)
	rng := rand.New(rand.NewSource(seed))
	const samples = 300

	// Exactness and symmetry.
	for k := 0; k < samples; k++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if got, want := idx.Distance(u, v), truth[u][v]; got != want {
			t.Fatalf("distance(%d,%d) = %d, want %d", u, v, got, want)
		}
		if a, b := idx.Distance(u, v), idx.Distance(v, u); a != b {
			t.Fatalf("asymmetric: distance(%d,%d)=%d but distance(%d,%d)=%d", u, v, a, v, u, b)
		}
	}

	// Triangle inequality on sampled triples of the reported metric.
	// (Infinity is additively safe by its choice of value, so the check
	// holds verbatim across components.)
	for k := 0; k < samples; k++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		w := graph.NodeID(rng.Intn(n))
		duw, duv, dvw := idx.Distance(u, w), idx.Distance(u, v), idx.Distance(v, w)
		if duw > duv+dvw {
			t.Fatalf("triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d+%d",
				u, w, duw, u, v, v, w, duv, dvw)
		}
	}

	// Batch door agrees with the scalar door.
	if b, ok := idx.(index.Batcher); ok {
		pairs := make([][2]graph.NodeID, 64)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		}
		out := make([]graph.Weight, len(pairs))
		b.DistanceBatch(pairs, out)
		for i, p := range pairs {
			if want := truth[p[0]][p[1]]; out[i] != want {
				t.Fatalf("batch[%d] = %d, want %d for (%d,%d)", i, out[i], want, p[0], p[1])
			}
		}
	}

	// Witness paths are edge-valid and weigh exactly the distance.
	if pr, ok := idx.(index.PathReporter); ok {
		var buf []graph.NodeID
		for k := 0; k < samples; k++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			var err error
			buf, err = pr.AppendPath(buf[:0], u, v)
			if err != nil {
				t.Fatalf("AppendPath(%d,%d): %v", u, v, err)
			}
			if msg := CheckPath(g, u, v, buf, truth[u][v]); msg != "" {
				t.Fatalf("path(%d,%d): %s", u, v, msg)
			}
		}
	}

	// Eccentricities match brute force; the farthest vertex attains them.
	if er, ok := idx.(index.EccentricityReporter); ok {
		for k := 0; k < samples/2; k++ {
			v := graph.NodeID(rng.Intn(n))
			var want graph.Weight
			for _, d := range truth[v] {
				if d < graph.Infinity && d > want {
					want = d
				}
			}
			got, err := er.Eccentricity(v)
			if err != nil {
				t.Fatalf("Eccentricity(%d): %v", v, err)
			}
			if got != want {
				t.Fatalf("ecc(%d) = %d, want %d", v, got, want)
			}
			far, fd, err := er.Farthest(v)
			if err != nil {
				t.Fatalf("Farthest(%d): %v", v, err)
			}
			if fd != want || far < 0 || int(far) >= n || truth[v][far] != want {
				t.Fatalf("farthest(%d) = (%d,%d), ecc is %d (true d=%d)",
					v, far, fd, want, truth[v][far])
			}
		}
	}
}

// RunContainerLoadEquivalence pins the serving paths against each other
// across formats and representations: it builds a hub-label index over
// g, persists it both as an aligned (v3, expanded) and a compact (v4,
// compressed) container, loads each back through both doors — the
// decoding reader and the mmap view — and asserts that all four
// resulting indexes satisfy the full property set and agree
// answer-for-answer on distances, witness paths and eccentricities.
// All four serve the same labeling, so even the path walks
// (deterministic given the labels) must be identical vertex-for-vertex
// — the compressed representation is required to be indistinguishable
// from the expanded one at every query door.
func RunContainerLoadEquivalence(t *testing.T, g *graph.Graph, seed int64) {
	t.Helper()
	built, err := index.Build(index.KindHubLabels, g, index.Options{Seed: 7})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	dir := t.TempDir()
	doors := make(map[string]*index.HubLabels, 4)
	for _, format := range []struct {
		name string
		rep  string
		opts hub.ContainerOptions
	}{
		{"v3", hub.RepExpanded, hub.ContainerOptions{Aligned: true}},
		{"v4", hub.RepCompact, hub.ContainerOptions{Compact: true}},
	} {
		path := filepath.Join(dir, "prop-"+format.name+".hli")
		if err := index.Save(path, built, format.opts); err != nil {
			t.Fatalf("save %s: %v", format.name, err)
		}
		dec, err := index.Load(path)
		if err != nil {
			t.Fatalf("%s decode load: %v", format.name, err)
		}
		view, err := index.LoadMmap(path)
		if err != nil {
			t.Fatalf("%s mmap load: %v", format.name, err)
		}
		defer view.Release()
		if g.NumNodes() > 0 && view.Owned() {
			t.Fatalf("mmap load of a %s container did not produce a view", format.name)
		}
		for door, x := range map[string]*index.HubLabels{"decode": dec, "mmap": view} {
			if rep := x.Meta().Representation; rep != format.rep {
				t.Fatalf("%s %s load serves representation %q, want %q", format.name, door, rep, format.rep)
			}
			doors[format.name+"-"+door] = x
		}
	}
	if a, b := doors["v4-decode"].SpaceBytes(), doors["v3-decode"].SpaceBytes(); a >= b {
		t.Fatalf("compact resident bytes %d not below expanded %d", a, b)
	}

	// Each door independently satisfies every property…
	for _, name := range []string{"v3-decode", "v3-mmap", "v4-decode", "v4-mmap"} {
		x := doors[name]
		t.Run(name, func(t *testing.T) { RunProperties(t, g, x, seed) })
	}

	// …and all doors agree with the v3 decode baseline answer-for-answer.
	base := doors["v3-decode"]
	n := g.NumNodes()
	for _, name := range []string{"v3-mmap", "v4-decode", "v4-mmap"} {
		other := doors[name]
		rng := rand.New(rand.NewSource(seed + 99))
		var pd, pv []graph.NodeID
		for k := 0; k < 200; k++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if a, b := base.Distance(u, v), other.Distance(u, v); a != b {
				t.Fatalf("distance(%d,%d): baseline %d, %s %d", u, v, a, name, b)
			}
			var errD, errV error
			pd, errD = base.AppendPath(pd[:0], u, v)
			pv, errV = other.AppendPath(pv[:0], u, v)
			if (errD == nil) != (errV == nil) {
				t.Fatalf("path(%d,%d): baseline err %v, %s err %v", u, v, errD, name, errV)
			}
			if len(pd) != len(pv) {
				t.Fatalf("path(%d,%d): baseline %v, %s %v", u, v, pd, name, pv)
			}
			for i := range pd {
				if pd[i] != pv[i] {
					t.Fatalf("path(%d,%d) diverges at hop %d: baseline %v, %s %v", u, v, i, pd, name, pv)
				}
			}
			ed, errD := base.Eccentricity(v)
			ev, errV := other.Eccentricity(v)
			if errD != nil || errV != nil || ed != ev {
				t.Fatalf("ecc(%d): baseline (%d,%v), %s (%d,%v)", v, ed, errD, name, ev, errV)
			}
			fd, fdd, _ := base.Farthest(v)
			fv, fvd, _ := other.Farthest(v)
			if fd != fv || fdd != fvd {
				t.Fatalf("farthest(%d): baseline (%d,%d), %s (%d,%d)", v, fd, fdd, name, fv, fvd)
			}
		}
	}
}

// CheckPath validates one reported path against the graph: empty iff
// unreachable, endpoints u and v, consecutive edges present, weights
// summing to want. It returns "" when valid, a description otherwise.
func CheckPath(g *graph.Graph, u, v graph.NodeID, path []graph.NodeID, want graph.Weight) string {
	if want >= graph.Infinity {
		if len(path) != 0 {
			return fmt.Sprintf("unreachable pair but path %v reported", path)
		}
		return ""
	}
	if len(path) == 0 {
		return fmt.Sprintf("reachable (d=%d) but empty path", want)
	}
	if path[0] != u || path[len(path)-1] != v {
		return fmt.Sprintf("endpoints %d..%d", path[0], path[len(path)-1])
	}
	var sum graph.Weight
	for i := 1; i < len(path); i++ {
		w, ok := g.EdgeWeight(path[i-1], path[i])
		if !ok {
			return fmt.Sprintf("step %d–%d is not an edge", path[i-1], path[i])
		}
		sum += w
	}
	if sum != want {
		return fmt.Sprintf("path weighs %d, distance is %d (%v)", sum, want, path)
	}
	return ""
}
