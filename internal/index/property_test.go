package index_test

import (
	"testing"

	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/server/servertest"
)

// TestPropertyBackends runs the randomized cross-backend property harness
// over every registered backend and every harness graph family: distance
// exactness and symmetry, the triangle inequality on sampled triples,
// batch/scalar agreement, edge-valid witness paths summing to the
// reported distance, and eccentricities matching brute-force search.
//
// CI runs this with -race and -count=2 as its own shard, so a backend
// registered later is property-checked with zero new test code.
func TestPropertyBackends(t *testing.T) {
	for _, kind := range index.Kinds() {
		t.Run(kind, func(t *testing.T) {
			for _, pg := range indextest.PropertyGraphs(t, 42) {
				t.Run(pg.Name, func(t *testing.T) {
					idx, err := index.Build(kind, pg.G, index.Options{Seed: 7})
					if err != nil {
						t.Fatalf("build %s over %s: %v", kind, pg.Name, err)
					}
					indextest.RunProperties(t, pg.G, idx, 1234)
				})
			}
		})
	}
}

// TestPropertyContainerLoads runs the dual-load equivalence harness over
// every graph family: the decode-loaded and mmap-loaded hub-label
// backends must each satisfy the full property set and agree
// answer-for-answer on distances, witness paths and eccentricities.
// This is what pins "byte-identical query answers" for the zero-copy
// serving path; CI runs it inside the -race -count=2 property shard.
func TestPropertyContainerLoads(t *testing.T) {
	for _, pg := range indextest.PropertyGraphs(t, 42) {
		t.Run(pg.Name, func(t *testing.T) {
			indextest.RunContainerLoadEquivalence(t, pg.G, 1234)
		})
	}
}

// TestPropertyCachedServing runs every backend kind over every harness
// family behind a hot-cached server and requires answers byte-identical
// to the bare index across cache hits, misses, and the post-swap cold
// state — the "zero wrong answers" half of the E25 cache gate. CI runs
// it inside the -race -count=2 property shard, so the single-writer
// cache arrays are also race-checked under concurrent shard traffic.
func TestPropertyCachedServing(t *testing.T) {
	for _, kind := range index.Kinds() {
		t.Run(kind, func(t *testing.T) {
			for _, pg := range indextest.PropertyGraphs(t, 42) {
				t.Run(pg.Name, func(t *testing.T) {
					idx, err := index.Build(kind, pg.G, index.Options{Seed: 7})
					if err != nil {
						t.Fatalf("build %s over %s: %v", kind, pg.Name, err)
					}
					servertest.RunCachedServing(t, pg.G, idx, 1234)
				})
			}
		})
	}
}

// TestPropertyNetworkServing drives every backend kind over every
// harness family through the binary network door on a real loopback
// TCP connection, requiring every wire answer — distances, witness
// paths, eccentricities — to be identical to the in-process
// TryQuery/TryPath/TryFarthest answer for the same input, and
// distances to match brute-force truth. This is the network half of
// the "byte-identical answers" contract: a backend registered later is
// network-property-checked with zero new test code, and CI runs it
// inside the -race -count=2 property shard so the door's per-conn
// buffer reuse is race-checked too.
func TestPropertyNetworkServing(t *testing.T) {
	for _, kind := range index.Kinds() {
		t.Run(kind, func(t *testing.T) {
			for _, pg := range indextest.PropertyGraphs(t, 42) {
				t.Run(pg.Name, func(t *testing.T) {
					idx, err := index.Build(kind, pg.G, index.Options{Seed: 7})
					if err != nil {
						t.Fatalf("build %s over %s: %v", kind, pg.Name, err)
					}
					servertest.RunNetworkServing(t, pg.G, idx, 1234)
				})
			}
		})
	}
}

// TestPropertyCapabilityCoverage pins that the capability interfaces are
// actually exercised: all three built-in backends must report paths and
// eccentricities (a silent type-assertion miss in the harness would
// otherwise pass vacuously).
func TestPropertyCapabilityCoverage(t *testing.T) {
	pg := indextest.PropertyGraphs(t, 42)[0]
	for _, kind := range []string{index.KindMatrix, index.KindHubLabels, index.KindSearch} {
		idx, err := index.Build(kind, pg.G, index.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := idx.(index.PathReporter); !ok {
			t.Errorf("%s does not implement PathReporter", kind)
		}
		if _, ok := idx.(index.EccentricityReporter); !ok {
			t.Errorf("%s does not implement EccentricityReporter", kind)
		}
	}
}
