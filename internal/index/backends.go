package index

import (
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// The three points of the paper's S·T curve register themselves as
// buildable backends; external packages can Register more.
func init() {
	Register(KindMatrix, func(g *graph.Graph, _ Options) (Index, error) { return NewMatrix(g) })
	Register(KindHubLabels, func(g *graph.Graph, opts Options) (Index, error) {
		l, err := pll.Build(g, pll.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return NewHubLabelsFrom(l), nil
	})
	Register(KindSearch, func(g *graph.Graph, _ Options) (Index, error) { return NewSearch(g), nil })
}

// Registered backend kinds.
const (
	KindMatrix    = "matrix"
	KindHubLabels = "hub-labels"
	KindSearch    = "search"
)

// Matrix is the S = n² endpoint: the full distance matrix.
type Matrix struct {
	dist [][]graph.Weight
}

var _ Index = (*Matrix)(nil)

// MaxMatrixVertices caps matrix indexes at ~1 GiB.
const MaxMatrixVertices = 16384

// NewMatrix precomputes all pairwise distances.
func NewMatrix(g *graph.Graph) (*Matrix, error) {
	if g.NumNodes() > MaxMatrixVertices {
		return nil, fmt.Errorf("%w: %d vertices for a distance matrix", ErrTooLarge, g.NumNodes())
	}
	return &Matrix{dist: sssp.AllPairs(g)}, nil
}

// Distance looks up the precomputed entry. Out-of-range ids return
// Infinity: the serving doors pass client-supplied ids straight through,
// and a hostile id must degrade to "unreachable", never panic the
// process.
func (m *Matrix) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, len(m.dist)) {
		return graph.Infinity
	}
	return m.dist[u][v]
}

// inRange reports whether both ids name vertices of an n-vertex index.
func inRange(u, v graph.NodeID, n int) bool {
	return u >= 0 && int(u) < n && v >= 0 && int(v) < n
}

// SpaceBytes counts 4 bytes per matrix entry.
func (m *Matrix) SpaceBytes() int64 {
	n := int64(len(m.dist))
	return n * n * 4
}

// Name implements Index.
func (m *Matrix) Name() string { return KindMatrix }

// Meta implements Index.
func (m *Matrix) Meta() Meta {
	return Meta{Kind: KindMatrix, Vertices: len(m.dist), QueryOps: 1}
}

// HubLabels is the hub labeling point of the tradeoff. Queries run on the
// frozen flat CSR form, so each Distance call is a zero-allocation merge,
// and DistanceBatch interleaves three merges per loop. A HubLabels index
// is the only backend with a persistent container form (see Load/Save).
type HubLabels struct {
	l *hub.Labeling // nil when loaded from a container
	f *hub.FlatLabeling
}

var (
	_ Index   = (*HubLabels)(nil)
	_ Batcher = (*HubLabels)(nil)
)

// NewHubLabels builds a PLL-backed hub-label index.
func NewHubLabels(g *graph.Graph) (*HubLabels, error) {
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		return nil, err
	}
	return NewHubLabelsFrom(l), nil
}

// NewHubLabelsFrom wraps an existing labeling, freezing it if necessary.
func NewHubLabelsFrom(l *hub.Labeling) *HubLabels { return &HubLabels{l: l, f: l.Freeze()} }

// FromFlat wraps an already-frozen flat labeling (e.g. one loaded from a
// container) without ever materializing the mutable form.
func FromFlat(f *hub.FlatLabeling) *HubLabels { return &HubLabels{f: f} }

// Distance decodes from the two labels. Out-of-range ids return
// Infinity rather than indexing outside the flat offsets array.
func (x *HubLabels) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, x.f.NumVertices()) {
		return graph.Infinity
	}
	d, ok := x.f.Query(u, v)
	if !ok {
		return graph.Infinity
	}
	return d
}

// DistanceBatch answers pairs[k] into out[k] with the interleaved merge.
// A batch containing out-of-range ids falls back to the bounds-checked
// scalar path (the common all-valid case pays one cheap scan).
func (x *HubLabels) DistanceBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	n := x.f.NumVertices()
	for _, p := range pairs {
		if !inRange(p[0], p[1], n) {
			for i, q := range pairs {
				out[i] = x.Distance(q[0], q[1])
			}
			return
		}
	}
	x.f.QueryBatch(pairs, out)
}

// SpaceBytes counts the flat storage exactly: 4 bytes per CSR offset plus
// 8 bytes per slot (hub id + distance), sentinels included.
func (x *HubLabels) SpaceBytes() int64 { return x.f.SpaceBytes() }

// Name implements Index.
func (x *HubLabels) Name() string { return KindHubLabels }

// Meta implements Index. It is O(1): the average label size falls out of
// the flat array lengths, so metadata reads never scan the offsets.
func (x *HubLabels) Meta() Meta {
	n := x.f.NumVertices()
	var avg float64
	if n > 0 {
		avg = float64(x.f.NumHubs()) / float64(n)
	}
	return Meta{
		Kind:     KindHubLabels,
		Vertices: n,
		QueryOps: 2 * avg,
	}
}

// Labeling exposes the underlying mutable labeling; it is nil for indexes
// loaded from a container (use Flat instead).
func (x *HubLabels) Labeling() *hub.Labeling { return x.l }

// Flat exposes the frozen flat labeling the queries run on.
func (x *HubLabels) Flat() *hub.FlatLabeling { return x.f }

// Search is the S = O(m) endpoint: store only the graph, search per query.
type Search struct {
	g *graph.Graph
}

var _ Index = (*Search)(nil)

// NewSearch wraps the graph.
func NewSearch(g *graph.Graph) *Search { return &Search{g: g} }

// Distance runs a bidirectional search. Out-of-range ids return
// Infinity, matching the other backends.
func (x *Search) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, x.g.NumNodes()) {
		return graph.Infinity
	}
	return sssp.Distance(x.g, u, v)
}

// SpaceBytes counts the CSR arrays: 8 bytes per directed edge entry plus
// 4 per offset.
func (x *Search) SpaceBytes() int64 {
	return int64(x.g.NumEdges())*2*8 + int64(x.g.NumNodes()+1)*4
}

// Name implements Index.
func (x *Search) Name() string { return KindSearch }

// Meta implements Index.
func (x *Search) Meta() Meta {
	return Meta{
		Kind:     KindSearch,
		Vertices: x.g.NumNodes(),
		QueryOps: float64(2 * x.g.NumEdges()),
	}
}
