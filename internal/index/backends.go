package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// The three points of the paper's S·T curve register themselves as
// buildable backends; external packages can Register more.
func init() {
	Register(KindMatrix, func(g *graph.Graph, _ Options) (Index, error) { return NewMatrix(g) })
	Register(KindHubLabels, func(g *graph.Graph, opts Options) (Index, error) {
		l, err := pll.Build(g, pll.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		return NewHubLabelsFrom(l), nil
	})
	Register(KindSearch, func(g *graph.Graph, _ Options) (Index, error) { return NewSearch(g), nil })
}

// Registered backend kinds.
const (
	KindMatrix    = "matrix"
	KindHubLabels = "hub-labels"
	KindSearch    = "search"
)

// Matrix is the S = n² endpoint: the full distance matrix. It retains the
// input graph so the path capability can materialize a next-hop matrix
// lazily on the first Path query (doubling the stored bytes only for
// deployments that actually report paths).
type Matrix struct {
	dist [][]graph.Weight
	g    *graph.Graph
	// nh[s][x] is the next hop from x toward s (the parent of x in the
	// shortest-path tree rooted at s), built once on demand. The atomic
	// pointer lets SpaceBytes observe the materialization without racing
	// a concurrent first path query.
	nhOnce sync.Once
	nh     atomic.Pointer[[][]graph.NodeID]
}

var (
	_ Index                = (*Matrix)(nil)
	_ PathReporter         = (*Matrix)(nil)
	_ EccentricityReporter = (*Matrix)(nil)
	_ CapabilityWarmer     = (*Matrix)(nil)
)

// MaxMatrixVertices caps matrix indexes at ~1 GiB.
const MaxMatrixVertices = 16384

// NewMatrix precomputes all pairwise distances.
func NewMatrix(g *graph.Graph) (*Matrix, error) {
	if g.NumNodes() > MaxMatrixVertices {
		return nil, fmt.Errorf("%w: %d vertices for a distance matrix", ErrTooLarge, g.NumNodes())
	}
	return &Matrix{dist: sssp.AllPairs(g), g: g}, nil
}

// Distance looks up the precomputed entry. Out-of-range ids return
// Infinity: the serving doors pass client-supplied ids straight through,
// and a hostile id must degrade to "unreachable", never panic the
// process.
func (m *Matrix) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, len(m.dist)) {
		return graph.Infinity
	}
	return m.dist[u][v]
}

// inRange reports whether both ids name vertices of an n-vertex index.
func inRange(u, v graph.NodeID, n int) bool {
	return u >= 0 && int(u) < n && v >= 0 && int(v) < n
}

// SpaceBytes counts 4 bytes per matrix entry, doubled once the lazy
// next-hop matrix has been materialized by a path query.
func (m *Matrix) SpaceBytes() int64 {
	n := int64(len(m.dist))
	s := n * n * 4
	if m.nh.Load() != nil {
		s *= 2
	}
	return s
}

// nextHops materializes the next-hop matrix on first use: one search per
// source across the worker pool, reusing each tree's parent array.
func (m *Matrix) nextHops() [][]graph.NodeID {
	m.nhOnce.Do(func() {
		nh := make([][]graph.NodeID, len(m.dist))
		par.For(len(m.dist), func(s int) {
			nh[s] = sssp.Search(m.g, graph.NodeID(s)).Parent
		})
		m.nh.Store(&nh)
	})
	return *m.nh.Load()
}

// WarmPaths implements CapabilityWarmer: it materializes the next-hop
// matrix so the first path query served from a shared worker pays
// nothing.
func (m *Matrix) WarmPaths() { m.nextHops() }

// WarmEccentricity implements CapabilityWarmer (row scans need no
// auxiliary state).
func (m *Matrix) WarmEccentricity() {}

// AppendPath implements PathReporter by chasing next hops toward v.
func (m *Matrix) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	if !inRange(u, v, len(m.dist)) {
		return dst, fmt.Errorf("%w: (%d,%d) outside [0,%d)", graph.ErrVertexRange, u, v, len(m.dist))
	}
	if m.dist[u][v] >= graph.Infinity {
		return dst, nil
	}
	row := m.nextHops()[v]
	for x := u; ; x = row[x] {
		dst = append(dst, x)
		if x == v {
			return dst, nil
		}
	}
}

// Eccentricity implements EccentricityReporter with a row scan.
func (m *Matrix) Eccentricity(v graph.NodeID) (graph.Weight, error) {
	_, d, err := m.farthest(v)
	return d, err
}

// Farthest implements EccentricityReporter: the smallest-id vertex at
// maximum finite distance from v (v itself when nothing else is
// reachable).
func (m *Matrix) Farthest(v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	return m.farthest(v)
}

func (m *Matrix) farthest(v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	if !inRange(v, v, len(m.dist)) {
		return -1, 0, fmt.Errorf("%w: %d outside [0,%d)", graph.ErrVertexRange, v, len(m.dist))
	}
	far, ecc := v, graph.Weight(0)
	for u, d := range m.dist[v] {
		if d < graph.Infinity && d > ecc {
			far, ecc = graph.NodeID(u), d
		}
	}
	return far, ecc, nil
}

// Name implements Index.
func (m *Matrix) Name() string { return KindMatrix }

// Meta implements Index.
func (m *Matrix) Meta() Meta {
	return Meta{Kind: KindMatrix, Vertices: len(m.dist), QueryOps: 1, ResidentBytes: m.SpaceBytes()}
}

// HubLabels is the hub labeling point of the tradeoff. Queries run on a
// frozen hub.LabelStore — the expanded flat CSR form or the compact
// (rank-remapped, delta-encoded) form — so each Distance call is a
// zero-allocation merge, and DistanceBatch interleaves merges per loop.
// Every capability (distances, batches, paths, eccentricities) is
// representation-agnostic: the two forms answer byte-identically. A
// HubLabels index is the only backend with a persistent container form
// (see Load/Save).
type HubLabels struct {
	l *hub.Labeling // nil when loaded from a container
	s hub.LabelStore
	// containerBytes is the on-disk size of the container this index was
	// loaded from (0 for built indexes) — reported in Meta so operators
	// can compare the serving working set against the file.
	containerBytes int64
	// ecc is the inverted farthest-first hub index, built lazily on the
	// first eccentricity query (it costs one pass over the labels and is
	// dead weight for distance-only serving).
	eccOnce sync.Once
	ecc     *hub.EccIndex
}

var (
	_ Index                = (*HubLabels)(nil)
	_ Batcher              = (*HubLabels)(nil)
	_ PathReporter         = (*HubLabels)(nil)
	_ EccentricityReporter = (*HubLabels)(nil)
	_ CapabilityWarmer     = (*HubLabels)(nil)
	_ Releaser             = (*HubLabels)(nil)
)

// NewHubLabels builds a PLL-backed hub-label index.
func NewHubLabels(g *graph.Graph) (*HubLabels, error) {
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		return nil, err
	}
	return NewHubLabelsFrom(l), nil
}

// NewHubLabelsFrom wraps an existing labeling, freezing it if necessary.
func NewHubLabelsFrom(l *hub.Labeling) *HubLabels { return &HubLabels{l: l, s: l.Freeze()} }

// FromFlat wraps an already-frozen flat labeling (e.g. one loaded from a
// container) without ever materializing the mutable form.
func FromFlat(f *hub.FlatLabeling) *HubLabels { return &HubLabels{s: f} }

// FromStore wraps any frozen label store — expanded or compact — e.g.
// one loaded from a container in its native representation.
func FromStore(s hub.LabelStore) *HubLabels { return &HubLabels{s: s} }

// Distance decodes from the two labels. Out-of-range ids return
// Infinity rather than indexing outside the label offsets.
func (x *HubLabels) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, x.s.NumVertices()) {
		return graph.Infinity
	}
	d, ok := x.s.Query(u, v)
	if !ok {
		return graph.Infinity
	}
	return d
}

// DistanceBatch answers pairs[k] into out[k] with the interleaved merge.
// A batch containing out-of-range ids falls back to the bounds-checked
// scalar path (the common all-valid case pays one cheap scan).
func (x *HubLabels) DistanceBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	n := x.s.NumVertices()
	for _, p := range pairs {
		if !inRange(p[0], p[1], n) {
			for i, q := range pairs {
				out[i] = x.Distance(q[0], q[1])
			}
			return
		}
	}
	x.s.QueryBatch(pairs, out)
}

// AppendPath implements PathReporter by unpacking the meeting hub through
// the labeling's parent column. Indexes loaded from version-1 containers
// (no parent column) report hub.ErrNoParents.
func (x *HubLabels) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	return x.s.AppendPath(dst, u, v)
}

// eccIndex builds the farthest-first inverted index once.
func (x *HubLabels) eccIndex() *hub.EccIndex {
	x.eccOnce.Do(func() { x.ecc = hub.NewEccIndex(x.s) })
	return x.ecc
}

// WarmPaths implements CapabilityWarmer (the parent column needs no
// materialization).
func (x *HubLabels) WarmPaths() {}

// WarmEccentricity implements CapabilityWarmer: it builds the inverted
// eccentricity index up front.
func (x *HubLabels) WarmEccentricity() { x.eccIndex() }

// Eccentricity implements EccentricityReporter via the best-first refined
// hub scan (exact on any shortest-path cover).
func (x *HubLabels) Eccentricity(v graph.NodeID) (graph.Weight, error) {
	if !inRange(v, v, x.s.NumVertices()) {
		return 0, fmt.Errorf("%w: %d outside [0,%d)", graph.ErrVertexRange, v, x.s.NumVertices())
	}
	d, _ := x.eccIndex().Eccentricity(v)
	return d, nil
}

// Farthest implements EccentricityReporter.
func (x *HubLabels) Farthest(v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	if !inRange(v, v, x.s.NumVertices()) {
		return -1, 0, fmt.Errorf("%w: %d outside [0,%d)", graph.ErrVertexRange, v, x.s.NumVertices())
	}
	d, far := x.eccIndex().Eccentricity(v)
	return far, d, nil
}

// SpaceBytes counts the resident label storage exactly, as the store
// accounts it: for the expanded form, 4 bytes per CSR offset plus 8 per
// slot (sentinels included) plus the parent column; for the compact
// form, the remap and escape tables plus one (narrow) or two (wide)
// bytes per entry per column. An honest space report is the point: the
// compressed representation's SpaceBytes is what it actually keeps
// resident, not the expanded equivalent.
func (x *HubLabels) SpaceBytes() int64 { return x.s.SpaceBytes() }

// Name implements Index.
func (x *HubLabels) Name() string { return KindHubLabels }

// Meta implements Index. It is O(1): the average label size falls out of
// the array lengths, so metadata reads never scan the offsets.
func (x *HubLabels) Meta() Meta {
	n := x.s.NumVertices()
	var avg float64
	if n > 0 {
		avg = float64(x.s.NumHubs()) / float64(n)
	}
	return Meta{
		Kind:           KindHubLabels,
		Vertices:       n,
		QueryOps:       2 * avg,
		Representation: x.s.Representation(),
		ResidentBytes:  x.s.SpaceBytes(),
		ContainerBytes: x.containerBytes,
	}
}

// Owned reports whether the index's label storage is heap-owned. A
// mmap-loaded index (LoadMmap over an aligned or compact container)
// returns false: its columns alias the mapped file and carry the
// Release lifetime.
func (x *HubLabels) Owned() bool { return x.s.Owned() }

// Release implements Releaser: it unmaps a view-backed index's container
// (a no-op for heap-owned indexes). The caller owns the contract that no
// query is in flight or issued afterwards; serving layers enforce it by
// refcounting snapshots and releasing only after the last in-flight
// query drains.
func (x *HubLabels) Release() error { return x.s.Release() }

// Labeling exposes the underlying mutable labeling; it is nil for indexes
// loaded from a container (use Store instead).
func (x *HubLabels) Labeling() *hub.Labeling { return x.l }

// Store exposes the frozen label store the queries run on.
func (x *HubLabels) Store() hub.LabelStore { return x.s }

// Flat exposes the frozen flat labeling when the index serves the
// expanded representation; it is nil for a compact index (use Store,
// or Store().Thaw() for a mutable expanded copy).
func (x *HubLabels) Flat() *hub.FlatLabeling {
	f, _ := x.s.(*hub.FlatLabeling)
	return f
}

// Search is the S = O(m) endpoint: store only the graph, search per query.
type Search struct {
	g *graph.Graph
}

var (
	_ Index                = (*Search)(nil)
	_ PathReporter         = (*Search)(nil)
	_ EccentricityReporter = (*Search)(nil)
)

// NewSearch wraps the graph.
func NewSearch(g *graph.Graph) *Search { return &Search{g: g} }

// Distance runs a bidirectional search. Out-of-range ids return
// Infinity, matching the other backends.
func (x *Search) Distance(u, v graph.NodeID) graph.Weight {
	if !inRange(u, v, x.g.NumNodes()) {
		return graph.Infinity
	}
	return sssp.Distance(x.g, u, v)
}

// AppendPath implements PathReporter with its own traversal: one search
// rooted at v, whose parent pointers are next hops toward v, walked
// forward from u (so the path lands in dst already in u→v order).
func (x *Search) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	if !inRange(u, v, x.g.NumNodes()) {
		return dst, fmt.Errorf("%w: (%d,%d) outside [0,%d)", graph.ErrVertexRange, u, v, x.g.NumNodes())
	}
	r := sssp.Search(x.g, v)
	if r.Dist[u] >= graph.Infinity {
		return dst, nil
	}
	for w := u; ; w = r.Parent[w] {
		dst = append(dst, w)
		if w == v {
			return dst, nil
		}
	}
}

// Eccentricity implements EccentricityReporter with one search.
func (x *Search) Eccentricity(v graph.NodeID) (graph.Weight, error) {
	_, d, err := x.Farthest(v)
	return d, err
}

// Farthest implements EccentricityReporter: the smallest-id vertex at
// maximum finite distance from v.
func (x *Search) Farthest(v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	if !inRange(v, v, x.g.NumNodes()) {
		return -1, 0, fmt.Errorf("%w: %d outside [0,%d)", graph.ErrVertexRange, v, x.g.NumNodes())
	}
	r := sssp.Search(x.g, v)
	far, ecc := v, graph.Weight(0)
	for u, d := range r.Dist {
		if d < graph.Infinity && d > ecc {
			far, ecc = graph.NodeID(u), d
		}
	}
	return far, ecc, nil
}

// SpaceBytes counts the CSR arrays: 8 bytes per directed edge entry plus
// 4 per offset.
func (x *Search) SpaceBytes() int64 {
	return int64(x.g.NumEdges())*2*8 + int64(x.g.NumNodes()+1)*4
}

// Name implements Index.
func (x *Search) Name() string { return KindSearch }

// Meta implements Index.
func (x *Search) Meta() Meta {
	return Meta{
		Kind:          KindSearch,
		Vertices:      x.g.NumNodes(),
		QueryOps:      float64(2 * x.g.NumEdges()),
		ResidentBytes: x.SpaceBytes(),
	}
}
