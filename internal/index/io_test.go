package index

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hublab/internal/faultinject"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
)

// saveFixture builds a small hub-labels index worth persisting.
func saveFixture(t *testing.T) *HubLabels {
	t.Helper()
	g, err := gen.Gnm(120, 220, 7)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewHubLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestSaveCrashSafety pins the doc-comment contract of Save: a save that
// dies partway through (injected short write) never leaves a truncated
// container at the destination — the previous complete file keeps
// loading byte-identically, and no temp litter survives a subsequent
// CleanPartials.
func TestSaveCrashSafety(t *testing.T) {
	idx := saveFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.hli")

	// A good save first: this is the "previous complete file".
	if err := Save(path, idx, hub.ContainerOptions{}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash the next save after 100 bytes.
	if err := faultinject.Enable("index.save.write:shortwrite:n=100", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
	err = Save(path, idx, hub.ContainerOptions{})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("short-write save err = %v, want ErrInjected", err)
	}
	faultinject.Disable()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination vanished after crashed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("crashed save modified the destination (%d bytes -> %d)", len(before), len(after))
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("destination no longer loads after crashed save: %v", err)
	}

	// The crashed save's temp sibling was removed by Save's defer; even
	// if a hard crash had skipped the defer, CleanPartials must leave the
	// directory holding only complete containers.
	removed, err := CleanPartials(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Errorf("Save leaked temp files: %v", removed)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "labels.hli" {
		t.Errorf("directory not clean after crashed save: %v", entries)
	}
}

// TestCleanPartials pins that leftover ".hli-*" temp files (a crashed
// process that never ran Save's defer) are removed and real containers
// are untouched.
func TestCleanPartials(t *testing.T) {
	dir := t.TempDir()
	real := filepath.Join(dir, "labels.hli")
	junk := filepath.Join(dir, ".hli-12345")
	for _, p := range []string{real, junk} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := CleanPartials(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != junk {
		t.Fatalf("CleanPartials removed %v, want only %s", removed, junk)
	}
	if _, err := os.Stat(real); err != nil {
		t.Fatalf("CleanPartials touched the real container: %v", err)
	}
}

// TestQuarantine pins the corrupt-container flow: a torn file is
// detected as corrupt (IsCorrupt), moved aside by Quarantine, and a
// second quarantine of a recreated bad file replaces the first.
func TestQuarantine(t *testing.T) {
	idx := saveFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.hli")
	if err := Save(path, idx, hub.ContainerOptions{}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn write: the first half of a valid container.
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, lerr := Load(path)
	if lerr == nil {
		t.Fatal("torn container loaded successfully")
	}
	if !IsCorrupt(lerr) {
		t.Fatalf("torn container error %v not classified corrupt", lerr)
	}
	// Missing files are NOT corrupt — they must not be quarantined.
	if _, err := Load(filepath.Join(dir, "nope.hli")); err == nil || IsCorrupt(err) {
		t.Fatalf("missing file error misclassified: %v", err)
	}

	q, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("quarantined file still at %s", path)
	}
	qbytes, err := os.ReadFile(q)
	if err != nil || !bytes.Equal(qbytes, good[:len(good)/2]) {
		t.Fatalf("quarantine did not preserve the bytes: %v", err)
	}

	// A second bad file at the same path quarantines over the first.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Quarantine(path); err != nil {
		t.Fatal(err)
	}
	qbytes, err = os.ReadFile(q)
	if err != nil || string(qbytes) != "garbage" {
		t.Fatalf("second quarantine did not replace the first: %q, %v", qbytes, err)
	}
}

// TestLoadFaultPoint pins that the injectable read point fires for both
// load paths — the hook E22's corrupt-reload storm leans on.
func TestLoadFaultPoint(t *testing.T) {
	idx := saveFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.hli")
	if err := Save(path, idx, hub.ContainerOptions{Aligned: true}); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Enable("index.load:error:every=2", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
	var failed int
	for i := 0; i < 4; i++ {
		load := Load
		if i%2 == 1 {
			load = LoadMmap
		}
		x, err := load(path)
		if err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("load %d: %v", i, err)
			}
			failed++
			continue
		}
		x.Release()
	}
	if failed != 2 {
		t.Fatalf("every=2 failed %d of 4 loads", failed)
	}
}

// TestSaveStreamingByteIdentical pins that the streaming save path and
// the freeze-then-Save path put the same bytes on disk — for the plain,
// parent-carrying, and aligned container formats — and that the
// streamed file loads through every reader.
func TestSaveStreamingByteIdentical(t *testing.T) {
	g, err := gen.RoadLike(9, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.BuildUnfrozen(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := NewHubLabelsFrom(pllBuildFrozen(t, g))
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		opts hub.ContainerOptions
	}{
		{"v2", hub.ContainerOptions{}},
		{"v3", hub.ContainerOptions{Aligned: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := filepath.Join(dir, tc.name+"-ref.hli")
			got := filepath.Join(dir, tc.name+"-stream.hli")
			if err := Save(ref, idx, tc.opts); err != nil {
				t.Fatal(err)
			}
			if err := SaveStreaming(got, l, tc.opts); err != nil {
				t.Fatal(err)
			}
			refB, err := os.ReadFile(ref)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := os.ReadFile(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refB, gotB) {
				t.Fatalf("streamed save differs from Save (%d vs %d bytes)", len(gotB), len(refB))
			}
			x, err := Load(got)
			if err != nil {
				t.Fatalf("streamed container does not load: %v", err)
			}
			if err := VerifySampled(x, g, 200, 3); err != nil {
				t.Error(err)
			}
			if tc.opts.Aligned {
				m, err := LoadMmap(got)
				if err != nil {
					t.Fatalf("streamed aligned container does not mmap: %v", err)
				}
				m.Release()
			}
		})
	}
	// Gamma compression has no streaming form; the error must be
	// immediate, not a torn file.
	if err := SaveStreaming(filepath.Join(dir, "gz.hli"), l, hub.ContainerOptions{Compress: true}); err == nil {
		t.Error("SaveStreaming accepted Compress")
	}
	if _, err := os.Stat(filepath.Join(dir, "gz.hli")); !os.IsNotExist(err) {
		t.Error("rejected streaming save left a file behind")
	}
}

// pllBuildFrozen rebuilds the same labeling frozen, for the reference
// Save. (Both builds are deterministic, so the two labelings agree.)
func pllBuildFrozen(t *testing.T, g *graph.Graph) *hub.Labeling {
	t.Helper()
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSaveStreamingCrashSafety is TestSaveCrashSafety for the streaming
// path: a short write mid-stream must leave the previous complete file
// untouched and no litter behind.
func TestSaveStreamingCrashSafety(t *testing.T) {
	g, err := gen.Gnm(150, 280, 11)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pll.BuildUnfrozen(g, pll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.hli")
	if err := SaveStreaming(path, l, hub.ContainerOptions{Aligned: true}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Enable("index.save.write:shortwrite:n=100", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
	err = SaveStreaming(path, l, hub.ContainerOptions{Aligned: true})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("short-write streaming save err = %v, want ErrInjected", err)
	}
	faultinject.Disable()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination vanished after crashed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("crashed streaming save modified the destination")
	}
	removed, err := CleanPartials(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Errorf("SaveStreaming leaked temp files: %v", removed)
	}
}
