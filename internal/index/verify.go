package index

import (
	"fmt"
	"math/rand"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// VerifySampled spot-checks idx against bidirectional search on g: pairs
// random vertex pairs drawn from seed must agree exactly. It is the
// shared guard for serving loaded containers — a cache file that is
// stale, foreign, or forged can match on vertex count alone, and a
// mismatch here means idx does not describe g.
func VerifySampled(idx Index, g *graph.Graph, pairs int, seed int64) error {
	if pairs <= 0 {
		return fmt.Errorf("index: sample size must be positive, got %d", pairs)
	}
	n := g.NumNodes()
	if n == 0 {
		return fmt.Errorf("index: graph has no vertices")
	}
	if v := idx.Meta().Vertices; v != n {
		return fmt.Errorf("index: index has %d vertices, graph has %d", v, n)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < pairs; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if got, want := idx.Distance(u, v), sssp.Distance(g, u, v); got != want {
			return fmt.Errorf("index: disagrees with graph on (%d,%d): %d vs %d", u, v, got, want)
		}
	}
	return nil
}
