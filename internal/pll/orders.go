package pll

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"hublab/internal/graph"
)

// GridSeparatorOrder returns a landmark order for the rows×cols grid that
// mirrors the recursive balanced-separator hierarchy the paper credits for
// planar O(√n) hub labelings (GPPR04): the middle row/column of each
// recursive block comes before the block's two halves. Degree order cannot
// find this structure (all interior degrees are equal); this order makes
// PLL exploit it.
func GridSeparatorOrder(rows, cols int) ([]graph.NodeID, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d", ErrBadOrder, rows, cols)
	}
	order := make([]graph.NodeID, 0, rows*cols)
	emitted := make([]bool, rows*cols)
	emit := func(r, c int) {
		id := r*cols + c
		if !emitted[id] {
			emitted[id] = true
			order = append(order, graph.NodeID(id))
		}
	}
	// Breadth-first over recursion levels so that coarse separators of all
	// blocks precede finer ones.
	type block struct{ r0, r1, c0, c1 int } // half-open
	queue := []block{{0, rows, 0, cols}}
	for len(queue) > 0 {
		next := queue[:0:0]
		for _, bl := range queue {
			h, w := bl.r1-bl.r0, bl.c1-bl.c0
			if h <= 0 || w <= 0 {
				continue
			}
			if h >= w {
				mid := bl.r0 + h/2
				for c := bl.c0; c < bl.c1; c++ {
					emit(mid, c)
				}
				next = append(next, block{bl.r0, mid, bl.c0, bl.c1},
					block{mid + 1, bl.r1, bl.c0, bl.c1})
			} else {
				mid := bl.c0 + w/2
				for r := bl.r0; r < bl.r1; r++ {
					emit(r, mid)
				}
				next = append(next, block{bl.r0, bl.r1, bl.c0, mid},
					block{bl.r0, bl.r1, mid + 1, bl.c1})
			}
		}
		queue = next
	}
	return order, nil
}

// RoadHighwayOrder returns a landmark order for the RoadLike rows×cols
// generator: vertices on highway rows/columns (multiples of period) first —
// intersections of two highways before single-highway vertices — then the
// rest. This is the highway-dimension intuition (ADF+16) in executable
// form: shortest paths concentrate on the fast subnetwork, so its vertices
// make disproportionately good hubs.
func RoadHighwayOrder(rows, cols, period int) ([]graph.NodeID, error) {
	if rows < 1 || cols < 1 || period < 1 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d period=%d", ErrBadOrder, rows, cols, period)
	}
	n := rows * cols
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	rank := func(v graph.NodeID) int {
		r, c := int(v)/cols, int(v)%cols
		score := 0
		if r%period == 0 {
			score++
		}
		if c%period == 0 {
			score++
		}
		return score
	}
	sort.SliceStable(order, func(i, j int) bool { return rank(order[i]) > rank(order[j]) })
	return order, nil
}

// ---- pluggable order registry ----

// OrderFunc computes a landmark order for g: a permutation of V, highest
// priority first. seed drives any sampling or shuffling the order does;
// the same (g, seed) must always produce the same order, since the whole
// build pipeline (and its byte-equality guarantees) is deterministic.
type OrderFunc func(g *graph.Graph, seed int64) ([]graph.NodeID, error)

// ErrUnknownOrder reports an OrderByName lookup that matched nothing.
var ErrUnknownOrder = errors.New("pll: unknown order name")

var (
	orderMu       sync.RWMutex
	orderRegistry = map[string]OrderFunc{}
)

// RegisterOrder adds a named order to the registry (hubgen -order exposes
// every registered name). Built-ins: "degree", "random", "natural",
// "betweenness". Registering an empty name or a duplicate errors.
func RegisterOrder(name string, f OrderFunc) error {
	if name == "" || f == nil {
		return fmt.Errorf("pll: RegisterOrder needs a name and a function")
	}
	orderMu.Lock()
	defer orderMu.Unlock()
	if _, dup := orderRegistry[name]; dup {
		return fmt.Errorf("pll: order %q already registered", name)
	}
	orderRegistry[name] = f
	return nil
}

// OrderNames returns the registered order names, sorted.
func OrderNames() []string {
	orderMu.RLock()
	defer orderMu.RUnlock()
	names := make([]string, 0, len(orderRegistry))
	for name := range orderRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OrderByName computes the named registered order for g.
func OrderByName(g *graph.Graph, name string, seed int64) ([]graph.NodeID, error) {
	orderMu.RLock()
	f := orderRegistry[name]
	orderMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownOrder, name, OrderNames())
	}
	return f(g, seed)
}

func identityOrder(n int) []graph.NodeID {
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	return order
}

func init() {
	must := func(name string, f OrderFunc) {
		if err := RegisterOrder(name, f); err != nil {
			panic(err)
		}
	}
	must("degree", func(g *graph.Graph, _ int64) ([]graph.NodeID, error) {
		order := identityOrder(g.NumNodes())
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
		return order, nil
	})
	must("natural", func(g *graph.Graph, _ int64) ([]graph.NodeID, error) {
		return identityOrder(g.NumNodes()), nil
	})
	must("random", func(g *graph.Graph, seed int64) ([]graph.NodeID, error) {
		order := identityOrder(g.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order, nil
	})
	must("betweenness", BetweennessSketchOrder)
}
