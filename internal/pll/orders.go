package pll

import (
	"fmt"
	"sort"

	"hublab/internal/graph"
)

// GridSeparatorOrder returns a landmark order for the rows×cols grid that
// mirrors the recursive balanced-separator hierarchy the paper credits for
// planar O(√n) hub labelings (GPPR04): the middle row/column of each
// recursive block comes before the block's two halves. Degree order cannot
// find this structure (all interior degrees are equal); this order makes
// PLL exploit it.
func GridSeparatorOrder(rows, cols int) ([]graph.NodeID, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d", ErrBadOrder, rows, cols)
	}
	order := make([]graph.NodeID, 0, rows*cols)
	emitted := make([]bool, rows*cols)
	emit := func(r, c int) {
		id := r*cols + c
		if !emitted[id] {
			emitted[id] = true
			order = append(order, graph.NodeID(id))
		}
	}
	// Breadth-first over recursion levels so that coarse separators of all
	// blocks precede finer ones.
	type block struct{ r0, r1, c0, c1 int } // half-open
	queue := []block{{0, rows, 0, cols}}
	for len(queue) > 0 {
		next := queue[:0:0]
		for _, bl := range queue {
			h, w := bl.r1-bl.r0, bl.c1-bl.c0
			if h <= 0 || w <= 0 {
				continue
			}
			if h >= w {
				mid := bl.r0 + h/2
				for c := bl.c0; c < bl.c1; c++ {
					emit(mid, c)
				}
				next = append(next, block{bl.r0, mid, bl.c0, bl.c1},
					block{mid + 1, bl.r1, bl.c0, bl.c1})
			} else {
				mid := bl.c0 + w/2
				for r := bl.r0; r < bl.r1; r++ {
					emit(r, mid)
				}
				next = append(next, block{bl.r0, bl.r1, bl.c0, mid},
					block{bl.r0, bl.r1, mid + 1, bl.c1})
			}
		}
		queue = next
	}
	return order, nil
}

// RoadHighwayOrder returns a landmark order for the RoadLike rows×cols
// generator: vertices on highway rows/columns (multiples of period) first —
// intersections of two highways before single-highway vertices — then the
// rest. This is the highway-dimension intuition (ADF+16) in executable
// form: shortest paths concentrate on the fast subnetwork, so its vertices
// make disproportionately good hubs.
func RoadHighwayOrder(rows, cols, period int) ([]graph.NodeID, error) {
	if rows < 1 || cols < 1 || period < 1 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d period=%d", ErrBadOrder, rows, cols, period)
	}
	n := rows * cols
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	rank := func(v graph.NodeID) int {
		r, c := int(v)/cols, int(v)%cols
		score := 0
		if r%period == 0 {
			score++
		}
		if c%period == 0 {
			score++
		}
		return score
	}
	sort.SliceStable(order, func(i, j int) bool { return rank(order[i]) > rank(order[j]) })
	return order, nil
}
