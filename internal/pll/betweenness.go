package pll

import (
	"math/bits"
	"math/rand"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/par"
	"hublab/internal/pqueue"
)

// BetweennessSketchOrder ranks vertices by approximate betweenness
// centrality from ~4·log₂(n) sampled single-source shortest-path trees
// (Brandes dependency accumulation per sampled source). High-betweenness
// vertices sit on many shortest paths, which is exactly what makes a good
// hub — the ordering-approximation results of Angelidakis–Makarychev–
// Oparin (PAPERS.md) justify spending build time here: order quality is
// the main lever on label size.
//
// The sketch is deterministic for a given (g, seed): sources are drawn
// once from the seed, per-source dependency passes may run in parallel,
// but their float64 contributions are always reduced in source order, so
// the scores — and therefore the order — are bit-stable across runs,
// worker counts, and machines. Ties break toward lower vertex id.
//
// Zero-weight edges are ignored by the dependency DAG (only strict
// distance progress counts as a predecessor); the sketch stays
// well-defined and deterministic, just blind to 0-cost hops.
func BetweennessSketchOrder(g *graph.Graph, seed int64) ([]graph.NodeID, error) {
	n := g.NumNodes()
	order := identityOrder(n)
	if n <= 2 {
		return order, nil
	}
	k := 4 * bits.Len(uint(n))
	if k < 32 {
		k = 32
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	sources := rng.Perm(n)[:k]

	score := make([]float64, n)
	wave := par.Workers(k)
	if wave > 4 {
		wave = 4 // bound the n-sized per-slot scratch, not the CPU use
	}
	slots := make([]*brandesScratch, wave)
	for i := range slots {
		slots[i] = newBrandesScratch(n, g.Weighted())
	}
	for s := 0; s < k; s += wave {
		m := wave
		if s+m > k {
			m = k - s
		}
		par.ForN(wave, m, func(i int) {
			slots[i].dependencies(g, graph.NodeID(sources[s+i]))
		})
		// Reduce in source order, visited vertices only: unvisited slots
		// hold stale deltas from earlier waves that must not re-enter, and
		// a fixed summation order keeps the float64 totals deterministic.
		for i := 0; i < m; i++ {
			sl := slots[i]
			for _, v := range sl.order[1:] { // order[0] is the source itself
				score[v] += sl.delta[v]
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return score[order[i]] > score[order[j]] })
	return order, nil
}

// brandesScratch is one wave slot's reusable SSSP + dependency state.
type brandesScratch struct {
	dist    []graph.Weight
	sigma   []float64
	delta   []float64
	order   []graph.NodeID // settle order; doubles as the BFS queue
	touched []graph.NodeID // weighted only: every vertex with finite dist
	heap    *pqueue.IndexedHeap
}

func newBrandesScratch(n int, weighted bool) *brandesScratch {
	bs := &brandesScratch{
		dist:  make([]graph.Weight, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
	}
	for i := range bs.dist {
		bs.dist[i] = graph.Infinity
	}
	if weighted {
		bs.heap = pqueue.New(n)
		bs.touched = make([]graph.NodeID, 0, 64)
	}
	return bs
}

// dependencies runs one Brandes pass from s: after it returns, delta[v]
// holds s's dependency on every v in order[1:] (and order lists the
// settled vertices, source first). Scratch arrays are restored for reuse.
func (bs *brandesScratch) dependencies(g *graph.Graph, s graph.NodeID) {
	if bs.heap != nil {
		bs.forwardWeighted(g, s)
	} else {
		bs.forwardUnweighted(g, s)
	}
	for _, v := range bs.order {
		bs.delta[v] = 0
	}
	// Accumulate dependencies leaf-first. u is a DAG predecessor of v when
	// the edge closes a shortest path with strict progress; σ can be 0 for
	// vertices reachable only through ignored zero-weight hops — skip them.
	for i := len(bs.order) - 1; i >= 1; i-- {
		v := bs.order[i]
		if bs.sigma[v] <= 0 {
			continue
		}
		dv := bs.dist[v]
		coef := (1 + bs.delta[v]) / bs.sigma[v]
		ws := g.NeighborWeights(v)
		for j, u := range g.Neighbors(v) {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[j]
			}
			if bs.dist[u] < dv && bs.dist[u]+w == dv {
				bs.delta[u] += bs.sigma[u] * coef
			}
		}
	}
	if bs.heap != nil {
		for _, v := range bs.touched {
			bs.dist[v] = graph.Infinity
		}
	} else {
		for _, v := range bs.order {
			bs.dist[v] = graph.Infinity
		}
	}
}

func (bs *brandesScratch) forwardUnweighted(g *graph.Graph, s graph.NodeID) {
	bs.dist[s] = 0
	bs.sigma[s] = 1
	bs.order = append(bs.order[:0], s)
	for qi := 0; qi < len(bs.order); qi++ {
		u := bs.order[qi]
		du := bs.dist[u]
		for _, v := range g.Neighbors(u) {
			if bs.dist[v] == graph.Infinity {
				bs.dist[v] = du + 1
				bs.sigma[v] = 0
				bs.order = append(bs.order, v)
			}
			if bs.dist[v] == du+1 {
				bs.sigma[v] += bs.sigma[u]
			}
		}
	}
}

func (bs *brandesScratch) forwardWeighted(g *graph.Graph, s graph.NodeID) {
	bs.dist[s] = 0
	bs.sigma[s] = 1
	bs.order = bs.order[:0]
	bs.touched = append(bs.touched[:0], s)
	h := bs.heap
	h.Reset()
	h.Push(s, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > bs.dist[u] {
			continue
		}
		bs.order = append(bs.order, u)
		ws := g.NeighborWeights(u)
		for j, v := range g.Neighbors(u) {
			w := graph.Weight(1)
			if ws != nil {
				w = ws[j]
			}
			if w <= 0 {
				continue // zero-weight hops are outside the sketch's DAG
			}
			nd := du + w
			switch {
			case nd < bs.dist[v]:
				if bs.dist[v] == graph.Infinity {
					bs.touched = append(bs.touched, v)
				}
				bs.dist[v] = nd
				bs.sigma[v] = bs.sigma[u]
				h.Push(v, nd)
			case nd == bs.dist[v]:
				bs.sigma[v] += bs.sigma[u]
			}
		}
	}
}
