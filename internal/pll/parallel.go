package pll

import (
	"math/bits"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/pqueue"
)

// Batched shared-memory parallel PLL.
//
// Roots are processed in rank order, in batches of at most 64 (one bit per
// root in a machine word). Each batch runs three strictly separated
// phases, so no phase ever needs a lock:
//
//  1. Search (parallel): one pruned BFS/Dijkstra per batch root against
//     the snapshot of labels committed by all earlier batches, producing a
//     candidate list (vertex, true distance) per root. Labels are
//     read-only here, so any number of searches run concurrently; every
//     worker owns a reusable scratch (dist arrays, queue, heap), making
//     steady-state allocation ~0.
//  2. Commit (sequential, rank order): each root's candidates are
//     re-checked against the labels its *batch-mates* just committed — the
//     only certificates the snapshot search could not see — and the
//     survivors are appended. The membership of a batch root in a
//     vertex's fresh entries is tracked bit-parallel: commitMask[v] holds
//     one bit per batch root (64 roots per word), and the k-th set bit
//     maps to the k-th entry of the vertex's delta run
//     labels[v][deltaStart[v]:], so a re-check is a mask intersection
//     plus popcount-indexed loads instead of a label merge.
//  3. Parents (parallel): each root's kept entries receive their
//     order-canonical parent (canonicalPred) into slots reserved during
//     commit. The rule is a pure function of the kept set, so the phase
//     parallelizes over roots with no coordination.
//
// Rank-ordered commits make the kept set provably equal to the canonical
// labeling — which is also exactly what the sequential builder emits — so
// the two builders agree byte for byte after Canonicalize. DESIGN.md
// ("Parallel build: the commit-order invariant") gives the argument.

// maxBatch is the widest batch: one root per bit of a uint64.
const maxBatch = 64

// batchSize picks the batch width at a given rank. Early roots search
// nearly the whole graph (the snapshot has almost no labels to prune
// with), so wide early batches would multiply that near-full work per
// batch-mate and hold 64 near-n candidate lists at once; later roots are
// cheap and narrow batches would serialize them. Widths double from 8 as
// rank grows, never below the worker count (no idle workers), never above
// 64.
func batchSize(rank, workers int) int {
	s := maxBatch
	switch {
	case rank < 64:
		s = 8
	case rank < 256:
		s = 16
	case rank < 1024:
		s = 32
	}
	if s < workers {
		s = workers
	}
	if s > maxBatch {
		s = maxBatch
	}
	return s
}

// candidate is a vertex reached un-pruned by a root's snapshot search,
// with its true distance from the root.
type candidate struct {
	v graph.NodeID
	d graph.Weight
}

// keptRef records a committed entry for the parent phase: the vertex, its
// distance, and the slot of parents[v] reserved for the canonical parent.
type keptRef struct {
	v   graph.NodeID
	pos int32
	d   graph.Weight
}

// scratch is one worker's reusable search state. All arrays are n-sized
// and restored to their idle state (Infinity / stamped-out) after each
// search, so a worker allocates nothing after warm-up.
type scratch struct {
	rootDist  []graph.Weight // current root's label, scattered by hub id
	dist      []graph.Weight // tentative distances of the current search
	queue     []graph.NodeID // BFS queue (doubles as the visited list)
	visited   []graph.NodeID // Dijkstra visited list
	heap      *pqueue.IndexedHeap
	predDist  []graph.Weight // kept-entry distances for the parent phase
	predStamp []int32        // stamp[v] == global rank ⇔ v kept by that root
}

func newScratch(n int, weighted bool) *scratch {
	ws := &scratch{
		rootDist:  make([]graph.Weight, n),
		dist:      make([]graph.Weight, n),
		predDist:  make([]graph.Weight, n),
		predStamp: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		ws.rootDist[i] = graph.Infinity
		ws.dist[i] = graph.Infinity
		ws.predStamp[i] = -1
	}
	if weighted {
		ws.heap = pqueue.New(n)
		ws.visited = make([]graph.NodeID, 0, 64)
	}
	ws.queue = make([]graph.NodeID, 0, 64)
	return ws
}

// searchUnweighted runs the pruned BFS for one root against the committed
// snapshot, appending candidates (in nondecreasing distance) to out.
func (ws *scratch) searchUnweighted(g *graph.Graph, root graph.NodeID, labels [][]hub.Hub, out []candidate) []candidate {
	for _, h := range labels[root] {
		ws.rootDist[h.Node] = h.Dist
	}
	ws.dist[root] = 0
	ws.queue = append(ws.queue[:0], root)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		du := ws.dist[u]
		if certified(labels[u], ws.rootDist, du) {
			continue
		}
		out = append(out, candidate{v: u, d: du})
		for _, v := range g.Neighbors(u) {
			if ws.dist[v] == graph.Infinity {
				ws.dist[v] = du + 1
				ws.queue = append(ws.queue, v)
			}
		}
	}
	for _, h := range labels[root] {
		ws.rootDist[h.Node] = graph.Infinity
	}
	for _, v := range ws.queue {
		ws.dist[v] = graph.Infinity
	}
	return out
}

// searchWeighted is the pruned-Dijkstra twin of searchUnweighted.
func (ws *scratch) searchWeighted(g *graph.Graph, root graph.NodeID, labels [][]hub.Hub, out []candidate) []candidate {
	for _, e := range labels[root] {
		ws.rootDist[e.Node] = e.Dist
	}
	ws.dist[root] = 0
	ws.visited = append(ws.visited[:0], root)
	h := ws.heap
	h.Reset()
	h.Push(root, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > ws.dist[u] {
			continue
		}
		if certified(labels[u], ws.rootDist, du) {
			continue
		}
		out = append(out, candidate{v: u, d: du})
		wsl := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			w := graph.Weight(1)
			if wsl != nil {
				w = wsl[i]
			}
			if nd := du + w; nd < ws.dist[v] {
				if ws.dist[v] == graph.Infinity {
					ws.visited = append(ws.visited, v)
				}
				ws.dist[v] = nd
				h.Push(v, nd)
			}
		}
	}
	for _, e := range labels[root] {
		ws.rootDist[e.Node] = graph.Infinity
	}
	for _, v := range ws.visited {
		ws.dist[v] = graph.Infinity
	}
	return out
}

// assignPreds fills the reserved parent slots of one root's kept entries
// with their order-canonical parent. cur is the root's global rank — used
// as the stamp value, it never collides across roots, so the stamp array
// needs no clearing.
func (ws *scratch) assignPreds(g *graph.Graph, root graph.NodeID, kept []keptRef, cur int32, parents [][]graph.NodeID) {
	for _, k := range kept {
		ws.predStamp[k.v] = cur
		ws.predDist[k.v] = k.d
	}
	for _, k := range kept {
		if k.v == root {
			continue // self entry: the reserved slot already holds -1
		}
		parents[k.v][k.pos] = canonicalPred(g, k.v, k.d, ws.predDist, ws.predStamp, cur)
	}
}

// buildParallel is the batched engine behind Build for Workers ≥ 2. It
// returns raw (labels, parents) slices whose canonicalized form is
// byte-identical to buildSequential's for the same order.
func buildParallel(g *graph.Graph, order []graph.NodeID, workers int, progress func(Progress)) ([][]hub.Hub, [][]graph.NodeID) {
	n := g.NumNodes()
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	if n == 0 {
		return labels, parents
	}
	weighted := g.Weighted()
	if workers > n {
		workers = n
	}

	// Per-vertex commit tracking. epoch guards commitMask/deltaStart so
	// neither needs clearing between batches.
	epoch := make([]int32, n)
	deltaStart := make([]int32, n)
	commitMask := make([]uint64, n)
	for i := range epoch {
		epoch[i] = -1
	}

	// Worker scratches live in a channel; a phase task borrows one for its
	// duration. At most `workers` tasks run at once, so the channel never
	// blocks a running worker.
	pool := make(chan *scratch, workers)
	for i := 0; i < workers; i++ {
		pool <- newScratch(n, weighted)
	}

	cands := make([][]candidate, maxBatch)
	kept := make([][]keptRef, maxBatch)
	var total int64
	curEpoch := int32(-1)

	for start := 0; start < n; {
		size := batchSize(start, workers)
		if start+size > n {
			size = n - start
		}
		batch := order[start : start+size]
		curEpoch++

		// Phase 1 — snapshot searches, in parallel. labels is read-only
		// until every search of the batch has returned.
		par.ForN(workers, size, func(j int) {
			ws := <-pool
			defer func() { pool <- ws }()
			if weighted {
				cands[j] = ws.searchWeighted(g, batch[j], labels, cands[j][:0])
			} else {
				cands[j] = ws.searchUnweighted(g, batch[j], labels, cands[j][:0])
			}
		})

		// Phase 2 — rank-ordered commits with the bit-parallel intra-batch
		// re-check. Single goroutine; this is the only code that mutates
		// labels/parents structure.
		for j, rj := range batch {
			// Distances from each earlier batch-mate to this root, read off
			// this root's own delta run: the k-th set bit of commitMask[rj]
			// is the batch-mate whose entry is the k-th of the delta.
			var rd [maxBatch]graph.Weight
			var rdMask uint64
			if epoch[rj] == curEpoch {
				cm := commitMask[rj]
				base := int(deltaStart[rj])
				k := 0
				for mm := cm; mm != 0; mm &= mm - 1 {
					i := bits.TrailingZeros64(mm)
					rd[i] = labels[rj][base+k].Dist
					rdMask |= uint64(1) << i
					k++
				}
			}
			kj := kept[j][:0]
			for _, c := range cands[j] {
				v, d := c.v, c.d
				if epoch[v] == curEpoch {
					cm := commitMask[v]
					base := int(deltaStart[v])
					drop := false
					for mm := cm & rdMask; mm != 0; mm &= mm - 1 {
						i := bits.TrailingZeros64(mm)
						pos := base + bits.OnesCount64(cm&((uint64(1)<<i)-1))
						if rd[i]+labels[v][pos].Dist <= d {
							drop = true
							break
						}
					}
					if drop {
						continue
					}
				} else {
					epoch[v] = curEpoch
					commitMask[v] = 0
					deltaStart[v] = int32(len(labels[v]))
				}
				labels[v] = append(labels[v], hub.Hub{Node: rj, Dist: d})
				parents[v] = append(parents[v], -1)
				commitMask[v] |= uint64(1) << uint(j)
				kj = append(kj, keptRef{v: v, pos: int32(len(parents[v]) - 1), d: d})
			}
			kept[j] = kj
			total += int64(len(kj))
		}

		// Phase 3 — canonical parents, in parallel. Every task writes only
		// the slots reserved for its own root during commit.
		base := start
		par.ForN(workers, size, func(j int) {
			ws := <-pool
			defer func() { pool <- ws }()
			ws.assignPreds(g, batch[j], kept[j], int32(base+j), parents)
		})

		start += size
		if progress != nil {
			progress(Progress{RootsDone: start, Roots: n, Labels: total})
		}
	}
	return labels, parents
}
