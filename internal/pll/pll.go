// Package pll implements pruned landmark labeling (the 2-hop-cover
// construction of Akiba, Iwata and Yoshikawa), the standard practical hub
// labeling algorithm the paper's bounds speak to. Vertices are processed in
// a priority order; from each one a pruned BFS (or pruned Dijkstra on
// weighted graphs) adds the root as a hub exactly where the current labels
// cannot already certify the distance. The result is always a valid
// shortest-path cover, and is minimal with respect to the chosen order.
package pll

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pqueue"
)

// ErrBadOrder reports an order that is not a permutation of the vertices.
var ErrBadOrder = errors.New("pll: order is not a permutation of V")

// Order enumerates vertex orders for the landmark processing priority.
type Order int

// Supported orders. Degree order (hubs first at high-degree vertices) is the
// standard default; random and natural orders exist for ablations.
const (
	OrderDegree Order = iota + 1
	OrderRandom
	OrderNatural
)

// Options configures Build.
type Options struct {
	// Order selects the built-in processing order (default OrderDegree).
	Order Order
	// Seed drives OrderRandom.
	Seed int64
	// Custom, when non-nil, overrides Order: vertices are processed in the
	// given sequence, which must be a permutation of V.
	Custom []graph.NodeID
}

// Build computes a pruned landmark labeling of g.
func Build(g *graph.Graph, opts Options) (*hub.Labeling, error) {
	order, err := buildOrder(g, opts)
	if err != nil {
		return nil, err
	}
	if g.Weighted() {
		return buildWeighted(g, order), nil
	}
	return buildUnweighted(g, order), nil
}

func buildOrder(g *graph.Graph, opts Options) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if opts.Custom != nil {
		if len(opts.Custom) != n {
			return nil, fmt.Errorf("%w: got %d vertices, want %d", ErrBadOrder, len(opts.Custom), n)
		}
		seen := make([]bool, n)
		for _, v := range opts.Custom {
			if int(v) < 0 || int(v) >= n || seen[v] {
				return nil, fmt.Errorf("%w: bad or repeated vertex %d", ErrBadOrder, v)
			}
			seen[v] = true
		}
		return opts.Custom, nil
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	switch opts.Order {
	case OrderRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case OrderNatural:
		// keep as-is
	default: // OrderDegree
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
	}
	return order, nil
}

// buildUnweighted runs one pruned BFS per root in priority order.
//
// Labels are accumulated in root-rank order; since pruning only ever
// consults labels of already-ranked roots, a temporary array holding the
// current root's distances makes each prune check O(|label|).
//
// The BFS tree predecessor of each labeled vertex is recorded as the
// entry's parent (the next hop toward the root). Every vertex on the tree
// path from the root to a labeled vertex is itself labeled — a pruned
// vertex never expands, so it can never be an interior tree vertex — which
// is what makes the recorded hops unpackable into full paths.
func buildUnweighted(g *graph.Graph, order []graph.NodeID) *hub.Labeling {
	n := g.NumNodes()
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	rootDist := make([]graph.Weight, n) // distances from current root's label
	for i := range rootDist {
		rootDist[i] = graph.Infinity
	}
	dist := make([]graph.Weight, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	pred := make([]graph.NodeID, n)
	queue := make([]graph.NodeID, 0, n)
	visited := make([]graph.NodeID, 0, n)

	for _, root := range order {
		// Load the root's current label into rootDist for O(1) lookups.
		for _, h := range labels[root] {
			rootDist[h.Node] = h.Dist
		}
		dist[root] = 0
		pred[root] = -1
		queue = append(queue[:0], root)
		visited = append(visited[:0], root)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			du := dist[u]
			// Prune: can existing labels already certify dist(root,u) ≤ du?
			pruned := false
			for _, h := range labels[u] {
				if rd := rootDist[h.Node]; rd < graph.Infinity && rd+h.Dist <= du {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			labels[u] = append(labels[u], hub.Hub{Node: root, Dist: du})
			parents[u] = append(parents[u], pred[u])
			for _, v := range g.Neighbors(u) {
				if dist[v] == graph.Infinity {
					dist[v] = du + 1
					pred[v] = u
					queue = append(queue, v)
					visited = append(visited, v)
				}
			}
		}
		for _, h := range labels[root] {
			rootDist[h.Node] = graph.Infinity
		}
		for _, v := range visited {
			dist[v] = graph.Infinity
		}
	}
	return hub.FromSlicesParents(labels, parents)
}

// buildWeighted is the pruned Dijkstra variant (handles any non-negative
// weights, including the 0-weight auxiliary edges used by degree
// reduction).
func buildWeighted(g *graph.Graph, order []graph.NodeID) *hub.Labeling {
	n := g.NumNodes()
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	rootDist := make([]graph.Weight, n)
	for i := range rootDist {
		rootDist[i] = graph.Infinity
	}
	dist := make([]graph.Weight, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	pred := make([]graph.NodeID, n)
	h := pqueue.New(n)
	visited := make([]graph.NodeID, 0, n)

	for _, root := range order {
		for _, e := range labels[root] {
			rootDist[e.Node] = e.Dist
		}
		dist[root] = 0
		pred[root] = -1
		h.Reset()
		h.Push(root, 0)
		visited = append(visited[:0], root)
		for h.Len() > 0 {
			u, du := h.Pop()
			if du > dist[u] {
				continue
			}
			pruned := false
			for _, e := range labels[u] {
				if rd := rootDist[e.Node]; rd < graph.Infinity && rd+e.Dist <= du {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			labels[u] = append(labels[u], hub.Hub{Node: root, Dist: du})
			parents[u] = append(parents[u], pred[u])
			ws := g.NeighborWeights(u)
			for i, v := range g.Neighbors(u) {
				w := graph.Weight(1)
				if ws != nil {
					w = ws[i]
				}
				if nd := du + w; nd < dist[v] {
					if dist[v] == graph.Infinity {
						visited = append(visited, v)
					}
					dist[v] = nd
					pred[v] = u
					h.Push(v, nd)
				}
			}
		}
		for _, e := range labels[root] {
			rootDist[e.Node] = graph.Infinity
		}
		for _, v := range visited {
			dist[v] = graph.Infinity
		}
	}
	return hub.FromSlicesParents(labels, parents)
}
