// Package pll implements pruned landmark labeling (the 2-hop-cover
// construction of Akiba, Iwata and Yoshikawa), the standard practical hub
// labeling algorithm the paper's bounds speak to. Vertices are processed in
// a priority order; from each one a pruned BFS (or pruned Dijkstra on
// weighted graphs) adds the root as a hub exactly where the current labels
// cannot already certify the distance. The result is always a valid
// shortest-path cover, and is minimal with respect to the chosen order.
//
// Two builders produce that cover: a sequential reference (this file) and a
// batched shared-memory parallel engine (parallel.go) that processes roots
// in rank-ordered batches and commits them in rank order, so its output is
// byte-identical to the sequential one for the same order — see DESIGN.md
// ("Parallel build: the commit-order invariant") for why.
package pll

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/pqueue"
)

// ErrBadOrder reports an order that is not a permutation of the vertices.
var ErrBadOrder = errors.New("pll: order is not a permutation of V")

// Order enumerates vertex orders for the landmark processing priority.
type Order int

// Supported orders. Degree order (hubs first at high-degree vertices) is the
// standard default; random and natural orders exist for ablations.
const (
	OrderDegree Order = iota + 1
	OrderRandom
	OrderNatural
)

// Progress carries running counters of a build, delivered to
// Options.Progress so hour-scale builds are observable.
type Progress struct {
	RootsDone int   // roots fully committed so far
	Roots     int   // total roots (= vertices)
	Labels    int64 // label entries committed so far
}

// Options configures Build.
type Options struct {
	// Order selects the built-in processing order (default OrderDegree).
	Order Order
	// Seed drives OrderRandom and the seeded registry orders (OrderBy).
	Seed int64
	// OrderBy, when non-empty, selects a registered order by name
	// (RegisterOrder; built-ins: "degree", "random", "natural",
	// "betweenness") and takes precedence over Order.
	OrderBy string
	// Custom, when non-nil, overrides Order and OrderBy: vertices are
	// processed in the given sequence, which must be a permutation of V.
	Custom []graph.NodeID
	// Workers selects build parallelism: 0 uses the par pool default
	// (NumCPU, or the par.SetWorkers override), 1 forces the sequential
	// reference builder, ≥2 runs the batched parallel engine. Both
	// builders produce byte-identical labelings for the same order.
	Workers int
	// Progress, when non-nil, is called synchronously from the build loop
	// (after each committed batch / every few hundred sequential roots)
	// with running counters. Callers rate-limit display themselves.
	Progress func(Progress)
}

// Build computes a pruned landmark labeling of g, frozen to the flat query
// form.
func Build(g *graph.Graph, opts Options) (*hub.Labeling, error) {
	l, err := BuildUnfrozen(g, opts)
	if err != nil {
		return nil, err
	}
	l.Freeze()
	return l, nil
}

// BuildUnfrozen is Build without the final Freeze: the result is canonical
// (sorted, deduplicated labels with a parallel parent column) but carries
// no flat copy. It exists for the streaming emission path — hubgen builds
// a million-vertex labeling, streams it into a container with
// index.SaveStreaming, and never holds 2× the labeling in RAM. Freeze the
// result (or reload the container) to get the fast in-RAM query form.
func BuildUnfrozen(g *graph.Graph, opts Options) (*hub.Labeling, error) {
	order, err := buildOrder(g, opts)
	if err != nil {
		return nil, err
	}
	w := opts.Workers
	if w == 0 {
		w = par.Workers(g.NumNodes())
	}
	var labels [][]hub.Hub
	var parents [][]graph.NodeID
	if w <= 1 {
		labels, parents = buildSequential(g, order, opts.Progress)
	} else {
		labels, parents = buildParallel(g, order, w, opts.Progress)
	}
	return hub.AssembleSlicesParents(labels, parents), nil
}

func buildOrder(g *graph.Graph, opts Options) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if opts.Custom != nil {
		if len(opts.Custom) != n {
			return nil, fmt.Errorf("%w: got %d vertices, want %d", ErrBadOrder, len(opts.Custom), n)
		}
		seen := make([]bool, n)
		for _, v := range opts.Custom {
			if int(v) < 0 || int(v) >= n || seen[v] {
				return nil, fmt.Errorf("%w: bad or repeated vertex %d", ErrBadOrder, v)
			}
			seen[v] = true
		}
		return opts.Custom, nil
	}
	if opts.OrderBy != "" {
		return OrderByName(g, opts.OrderBy, opts.Seed)
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	switch opts.Order {
	case OrderRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case OrderNatural:
		// keep as-is
	default: // OrderDegree
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
	}
	return order, nil
}

// progressStride is how often (in roots) the sequential builder reports
// progress; the parallel engine reports per batch instead.
const progressStride = 256

func buildSequential(g *graph.Graph, order []graph.NodeID, progress func(Progress)) ([][]hub.Hub, [][]graph.NodeID) {
	if g.Weighted() {
		return buildWeighted(g, order, progress)
	}
	return buildUnweighted(g, order, progress)
}

// buildUnweighted runs one pruned BFS per root in priority order.
//
// Labels are accumulated in root-rank order; since pruning only ever
// consults labels of already-ranked roots, a temporary array holding the
// current root's distances makes each prune check O(|label|).
//
// Parents are assigned after each root's search by the order-canonical
// rule (canonicalPred), not from the BFS tree: the tree predecessor
// depends on traversal order, and the parent column must be a pure
// function of (graph, order) so the parallel engine can reproduce it
// exactly. Every vertex on a shortest path from the root to a labeled
// vertex is itself labeled — pruning it would prune the endpoint too —
// which is what makes the recorded hops unpackable into full paths.
func buildUnweighted(g *graph.Graph, order []graph.NodeID, progress func(Progress)) ([][]hub.Hub, [][]graph.NodeID) {
	n := g.NumNodes()
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	rootDist := make([]graph.Weight, n) // distances from current root's label
	for i := range rootDist {
		rootDist[i] = graph.Infinity
	}
	dist := make([]graph.Weight, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	stamp := make([]int32, n) // stamp[v] == rank ⇔ v labeled by this root
	for i := range stamp {
		stamp[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	visited := make([]graph.NodeID, 0, n)
	labeled := make([]graph.NodeID, 0, n)
	var total int64

	for rank, root := range order {
		// Load the root's current label into rootDist for O(1) lookups.
		for _, h := range labels[root] {
			rootDist[h.Node] = h.Dist
		}
		dist[root] = 0
		queue = append(queue[:0], root)
		visited = append(visited[:0], root)
		labeled = labeled[:0]
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			du := dist[u]
			if certified(labels[u], rootDist, du) {
				continue
			}
			labels[u] = append(labels[u], hub.Hub{Node: root, Dist: du})
			stamp[u] = int32(rank)
			labeled = append(labeled, u)
			for _, v := range g.Neighbors(u) {
				if dist[v] == graph.Infinity {
					dist[v] = du + 1
					queue = append(queue, v)
					visited = append(visited, v)
				}
			}
		}
		appendCanonicalPreds(g, root, labeled, dist, stamp, int32(rank), parents)
		total += int64(len(labeled))
		for _, h := range labels[root] {
			rootDist[h.Node] = graph.Infinity
		}
		for _, v := range visited {
			dist[v] = graph.Infinity
		}
		if progress != nil && (rank%progressStride == progressStride-1 || rank == n-1) {
			progress(Progress{RootsDone: rank + 1, Roots: n, Labels: total})
		}
	}
	return labels, parents
}

// buildWeighted is the pruned Dijkstra variant (handles any non-negative
// weights, including the 0-weight auxiliary edges used by degree
// reduction).
func buildWeighted(g *graph.Graph, order []graph.NodeID, progress func(Progress)) ([][]hub.Hub, [][]graph.NodeID) {
	n := g.NumNodes()
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	rootDist := make([]graph.Weight, n)
	for i := range rootDist {
		rootDist[i] = graph.Infinity
	}
	dist := make([]graph.Weight, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	h := pqueue.New(n)
	visited := make([]graph.NodeID, 0, n)
	labeled := make([]graph.NodeID, 0, n)
	var total int64

	for rank, root := range order {
		for _, e := range labels[root] {
			rootDist[e.Node] = e.Dist
		}
		dist[root] = 0
		h.Reset()
		h.Push(root, 0)
		visited = append(visited[:0], root)
		labeled = labeled[:0]
		for h.Len() > 0 {
			u, du := h.Pop()
			if du > dist[u] {
				continue
			}
			if certified(labels[u], rootDist, du) {
				continue
			}
			labels[u] = append(labels[u], hub.Hub{Node: root, Dist: du})
			stamp[u] = int32(rank)
			labeled = append(labeled, u)
			ws := g.NeighborWeights(u)
			for i, v := range g.Neighbors(u) {
				w := graph.Weight(1)
				if ws != nil {
					w = ws[i]
				}
				if nd := du + w; nd < dist[v] {
					if dist[v] == graph.Infinity {
						visited = append(visited, v)
					}
					dist[v] = nd
					h.Push(v, nd)
				}
			}
		}
		appendCanonicalPreds(g, root, labeled, dist, stamp, int32(rank), parents)
		total += int64(len(labeled))
		for _, e := range labels[root] {
			rootDist[e.Node] = graph.Infinity
		}
		for _, v := range visited {
			dist[v] = graph.Infinity
		}
		if progress != nil && (rank%progressStride == progressStride-1 || rank == n-1) {
			progress(Progress{RootsDone: rank + 1, Roots: n, Labels: total})
		}
	}
	return labels, parents
}
