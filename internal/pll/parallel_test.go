package pll_test

import (
	"bytes"
	"fmt"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index/indextest"
	"hublab/internal/pll"
)

// containerBytes freezes l and serializes it (parent column included) so
// two labelings can be compared byte for byte.
func containerBytes(t *testing.T, l *hub.Labeling) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := l.Freeze().WriteContainer(&buf, hub.ContainerOptions{}); err != nil {
		t.Fatalf("WriteContainer: %v", err)
	}
	return buf.Bytes()
}

// TestParallelBuildMatchesSequential pins the tentpole guarantee: the
// batched parallel engine emits a labeling byte-identical to the
// sequential reference — labels, distances and the parent column — for
// every harness family, order, and worker width. This is what lets Build
// route to the parallel engine by default without perturbing any
// downstream artifact (containers, golden benchmarks, served answers).
func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, pg := range indextest.PropertyGraphs(t, 7) {
		pg := pg
		t.Run(pg.Name, func(t *testing.T) {
			seq, err := pll.Build(pg.G, pll.Options{Workers: 1})
			if err != nil {
				t.Fatalf("sequential build: %v", err)
			}
			want := containerBytes(t, seq)
			for _, workers := range []int{2, 3, 8} {
				par, err := pll.Build(pg.G, pll.Options{Workers: workers})
				if err != nil {
					t.Fatalf("parallel build (w=%d): %v", workers, err)
				}
				if got := containerBytes(t, par); !bytes.Equal(got, want) {
					t.Errorf("w=%d: parallel container differs from sequential (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
			// The byte-equality pin is only meaningful if the common output
			// is a correct cover in the first place.
			if err := seq.VerifyCover(pg.G); err != nil {
				t.Fatalf("sequential labeling is not a cover: %v", err)
			}
		})
	}
}

// TestParallelBuildMatchesSequentialAcrossOrders re-pins byte-equality
// under every registered order, including the sampled betweenness sketch
// (whose own determinism across worker scheduling is part of the claim).
func TestParallelBuildMatchesSequentialAcrossOrders(t *testing.T) {
	g, err := gen.RoadLike(9, 9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pll.OrderNames() {
		t.Run(name, func(t *testing.T) {
			seq, err := pll.Build(g, pll.Options{OrderBy: name, Seed: 5, Workers: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := pll.Build(g, pll.Options{OrderBy: name, Seed: 5, Workers: 4})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
				t.Errorf("order %q: parallel differs from sequential", name)
			}
			if err := par.VerifyCover(g); err != nil {
				t.Errorf("order %q: %v", name, err)
			}
		})
	}
}

// TestParallelBuildLarger exercises the engine past the adaptive batch
// ramp (ranks ≥ 1024, full 64-wide batches) on both a weighted and an
// unweighted graph large enough that every commit-phase code path —
// intra-batch certificates included — actually fires.
func TestParallelBuildLarger(t *testing.T) {
	unweighted, err := gen.Gnm(2000, 3600, 3)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := gen.RoadLike(40, 40, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"gnm2000", unweighted}, {"road1600w", weighted}} {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := pll.Build(tc.g, pll.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := pll.Build(tc.g, pll.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
				t.Error("parallel container differs from sequential")
			}
			if err := par.VerifySampled(tc.g, 500, 9); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBuildProgress checks the observability contract both builders share:
// counters are monotone, and the final callback reports every root and
// exactly the committed label total.
func TestBuildProgress(t *testing.T) {
	g, err := gen.Gnm(600, 1100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var last pll.Progress
			calls := 0
			l, err := pll.Build(g, pll.Options{Workers: workers, Progress: func(p pll.Progress) {
				if p.RootsDone < last.RootsDone || p.Labels < last.Labels {
					t.Errorf("progress went backwards: %+v after %+v", p, last)
				}
				last = p
				calls++
			}})
			if err != nil {
				t.Fatal(err)
			}
			if calls == 0 {
				t.Fatal("progress callback never called")
			}
			if last.RootsDone != g.NumNodes() || last.Roots != g.NumNodes() {
				t.Errorf("final progress %+v, want all %d roots done", last, g.NumNodes())
			}
			if want := int64(l.ComputeStats().Total); last.Labels != want {
				t.Errorf("final labels %d, want %d", last.Labels, want)
			}
		})
	}
}

// TestOrderRegistry covers the registry surface hubgen -order sits on.
func TestOrderRegistry(t *testing.T) {
	g, err := gen.Gnm(50, 90, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"degree", "natural", "random", "betweenness"} {
		order, err := pll.OrderByName(g, name, 3)
		if err != nil {
			t.Fatalf("OrderByName(%q): %v", name, err)
		}
		if _, err := pll.Build(g, pll.Options{Custom: order}); err != nil {
			t.Errorf("order %q is not a permutation: %v", name, err)
		}
	}
	if _, err := pll.OrderByName(g, "nope", 0); err == nil {
		t.Error("unknown order name did not error")
	}
	if err := pll.RegisterOrder("degree", nil); err == nil {
		t.Error("re-registering a built-in did not error")
	}
	// Registration is process-global, so under -count>1 the second run
	// sees the first run's entry — only an error on a *fresh* name fails.
	err = pll.RegisterOrder("test-custom", func(g *graph.Graph, _ int64) ([]graph.NodeID, error) {
		return pll.OrderByName(g, "natural", 0)
	})
	if err != nil {
		if _, lookupErr := pll.OrderByName(g, "test-custom", 0); lookupErr != nil {
			t.Fatalf("RegisterOrder: %v (and not registered: %v)", err, lookupErr)
		}
	}
	if _, err := pll.OrderByName(g, "test-custom", 0); err != nil {
		t.Errorf("registered order not callable: %v", err)
	}
}
