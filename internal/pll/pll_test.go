package pll

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/sssp"
)

func TestBuildPathGraph(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Fatalf("VerifyCover: %v", err)
	}
	// PLL labels on a path should be far below the trivial n per vertex.
	if s := l.ComputeStats(); s.Avg > 6 {
		t.Errorf("path labels too large: avg %v", s.Avg)
	}
}

func TestBuildOrders(t *testing.T) {
	g, err := gen.Gnm(80, 160, 17)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"degree", Options{Order: OrderDegree}},
		{"random", Options{Order: OrderRandom, Seed: 3}},
		{"natural", Options{Order: OrderNatural}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := Build(g, tc.opts)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := l.VerifyCover(g); err != nil {
				t.Errorf("VerifyCover: %v", err)
			}
		})
	}
}

func TestBuildCustomOrder(t *testing.T) {
	g, err := gen.Cycle(6)
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	order := []graph.NodeID{3, 0, 4, 1, 5, 2}
	l, err := Build(g, Options{Custom: order})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	// First-ranked vertex 3 must appear in every label (it roots the first,
	// unpruned BFS).
	for v := graph.NodeID(0); v < 6; v++ {
		found := false
		for _, h := range l.Label(v) {
			if h.Node == 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %d lacks first landmark 3: %v", v, l.Label(v))
		}
	}
}

func TestBuildBadOrder(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	cases := [][]graph.NodeID{
		{0, 1, 2},          // too short
		{0, 1, 2, 2},       // repeated
		{0, 1, 2, 9},       // out of range
		{0, 1, 2, 3, 3, 3}, // too long
	}
	for _, order := range cases {
		if _, err := Build(g, Options{Custom: order}); !errors.Is(err, ErrBadOrder) {
			t.Errorf("order %v: err = %v, want ErrBadOrder", order, err)
		}
	}
}

func TestBuildWeighted(t *testing.T) {
	g, err := gen.RoadLike(8, 8, 4, 5)
	if err != nil {
		t.Fatalf("RoadLike: %v", err)
	}
	l, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestBuildZeroWeights(t *testing.T) {
	// Weight-0 edges (as used by degree reduction) must be handled.
	b := graph.NewBuilder(5, 5)
	b.AddWeightedEdge(0, 1, 0)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(2, 3, 0)
	b.AddWeightedEdge(3, 4, 2)
	b.AddWeightedEdge(0, 4, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if d, _ := l.Query(0, 4); d != 5 {
		t.Errorf("Query(0,4) = %d, want 5", d)
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(6, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if _, ok := l.Query(0, 5); ok {
		t.Error("cross-component query returned a finite distance")
	}
}

// TestPLLMatchesBFS is the main correctness property: on random sparse
// graphs every decoded distance equals the BFS distance.
func TestPLLMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g, err := gen.Gnm(n, n+rng.Intn(2*n), seed)
		if err != nil {
			return false
		}
		l, err := Build(g, Options{Order: OrderDegree})
		if err != nil {
			return false
		}
		return l.VerifyCover(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPLLWeightedMatchesDijkstra: same property on weighted graphs.
func TestPLLWeightedMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n, 3*n)
		for i := 0; i+1 < n; i++ {
			b.AddWeightedEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Weight(1+rng.Intn(9)))
		}
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), graph.Weight(rng.Intn(10)))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		l, err := Build(g, Options{Order: OrderRandom, Seed: seed})
		if err != nil {
			return false
		}
		return l.VerifyCover(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDegreeOrderBeatsRandomOnStars: on a star-like graph, degree order
// should produce smaller labels than random order most of the time — a
// sanity check of the ordering heuristic, not a theorem.
func TestDegreeOrderLabelQuality(t *testing.T) {
	// Star with 40 leaves: the center must be ranked first under degree
	// order, giving every leaf exactly hubs {center, self}.
	b := graph.NewBuilder(41, 40)
	for v := graph.NodeID(1); v <= 40; v++ {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := Build(g, Options{Order: OrderDegree})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := l.ComputeStats()
	if s.Max > 2 {
		t.Errorf("star max label size = %d, want 2", s.Max)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestGridDistancesSpotCheck(t *testing.T) {
	g, err := gen.Grid(9, 9)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	l, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := sssp.BFS(g, 0)
	for v := 0; v < g.NumNodes(); v += 7 {
		got, ok := l.Query(0, graph.NodeID(v))
		if !ok || got != r.Dist[v] {
			t.Errorf("Query(0,%d) = (%d,%v), want %d", v, got, ok, r.Dist[v])
		}
	}
}
