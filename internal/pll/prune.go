package pll

import (
	"hublab/internal/graph"
	"hublab/internal/hub"
)

// This file holds the pruning and parent logic shared by the sequential
// builders (pll.go) and the batched parallel engine (parallel.go). Both
// paths MUST go through these helpers: the parallel build's byte-equality
// guarantee rests on every path applying the exact same prune predicate
// and the exact same (order-canonical, traversal-independent) parent
// choice.

// certified reports whether the labels of a visited vertex, intersected
// with the current root's label (rootDist maps hub id → distance from the
// root, Infinity when absent), already certify a root distance ≤ du. This
// is the PLL prune predicate: when it holds the vertex gains no entry for
// this root and its search subtree is cut off.
func certified(label []hub.Hub, rootDist []graph.Weight, du graph.Weight) bool {
	for _, h := range label {
		if rd := rootDist[h.Node]; rd < graph.Infinity && rd+h.Dist <= du {
			return true
		}
	}
	return false
}

// canonicalPred returns the order-canonical parent (next hop toward the
// current root) of a labeled vertex v at distance dv: among the neighbors
// u that lie on a shortest root–v path (dist[u]+w(u,v) == dv) and were
// themselves labeled by this root (stamp[u] == cur), prefer those that
// make strict distance progress, then take the minimum id. The choice
// depends only on the graph and the set of labeled vertices — never on
// traversal order — which is what lets the parallel builder reproduce the
// sequential parent column bit for bit.
//
// Such a neighbor always exists: the last edge of any shortest root–v
// path ends at a vertex that is itself on a shortest path, and every
// vertex on a shortest path to a labeled vertex is labeled (pruning it
// would prune v too). Only a zero-weight last edge can force the
// non-strict fallback, matching the documented hub.ErrPathUnpack
// limitation for zero-weight graphs.
func canonicalPred(g *graph.Graph, v graph.NodeID, dv graph.Weight, dist []graph.Weight, stamp []int32, cur int32) graph.NodeID {
	best := graph.NodeID(-1)
	bestStrict := false
	ws := g.NeighborWeights(v)
	for i, u := range g.Neighbors(v) {
		if stamp[u] != cur {
			continue
		}
		w := graph.Weight(1)
		if ws != nil {
			w = ws[i]
		}
		if dist[u]+w != dv {
			continue
		}
		strict := dist[u] < dv
		if best < 0 || (strict && !bestStrict) || (strict == bestStrict && u < best) {
			best, bestStrict = u, strict
		}
	}
	return best
}

// appendCanonicalPreds appends one parent per vertex the current root just
// labeled, in `labeled` order: -1 for the root's self entry, the canonical
// predecessor otherwise. dist must hold the true root distance of every
// labeled vertex and stamp[v] == cur exactly for the labeled set — both
// builders maintain this invariant at the point of call.
func appendCanonicalPreds(g *graph.Graph, root graph.NodeID, labeled []graph.NodeID, dist []graph.Weight, stamp []int32, cur int32, parents [][]graph.NodeID) {
	for _, v := range labeled {
		if v == root {
			parents[v] = append(parents[v], -1)
			continue
		}
		parents[v] = append(parents[v], canonicalPred(g, v, dist[v], dist, stamp, cur))
	}
}
