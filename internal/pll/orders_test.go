package pll

import (
	"errors"
	"testing"

	"hublab/internal/gen"
)

func TestGridSeparatorOrderIsPermutation(t *testing.T) {
	for _, tc := range []struct{ rows, cols int }{{1, 1}, {2, 3}, {8, 8}, {7, 13}} {
		order, err := GridSeparatorOrder(tc.rows, tc.cols)
		if err != nil {
			t.Fatalf("GridSeparatorOrder(%d,%d): %v", tc.rows, tc.cols, err)
		}
		n := tc.rows * tc.cols
		if len(order) != n {
			t.Fatalf("(%d,%d): %d vertices, want %d", tc.rows, tc.cols, len(order), n)
		}
		seen := make([]bool, n)
		for _, v := range order {
			if int(v) < 0 || int(v) >= n || seen[v] {
				t.Fatalf("(%d,%d): invalid or repeated vertex %d", tc.rows, tc.cols, v)
			}
			seen[v] = true
		}
	}
	if _, err := GridSeparatorOrder(0, 3); !errors.Is(err, ErrBadOrder) {
		t.Errorf("GridSeparatorOrder(0,3) err = %v, want ErrBadOrder", err)
	}
}

func TestRoadHighwayOrderIsPermutation(t *testing.T) {
	order, err := RoadHighwayOrder(10, 10, 4)
	if err != nil {
		t.Fatalf("RoadHighwayOrder: %v", err)
	}
	if len(order) != 100 {
		t.Fatalf("len = %d, want 100", len(order))
	}
	// The first vertex must be a double-highway intersection.
	r, c := int(order[0])/10, int(order[0])%10
	if r%4 != 0 || c%4 != 0 {
		t.Errorf("first vertex (%d,%d) is not a highway intersection", r, c)
	}
	if _, err := RoadHighwayOrder(5, 5, 0); !errors.Is(err, ErrBadOrder) {
		t.Errorf("period 0 err = %v, want ErrBadOrder", err)
	}
}

// TestSeparatorOrderBeatsDegreeOnGrid is the E12 ablation in miniature:
// the separator order must produce meaningfully smaller labels on a grid.
func TestSeparatorOrderBeatsDegreeOnGrid(t *testing.T) {
	g, err := gen.Grid(16, 16)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	sep, err := GridSeparatorOrder(16, 16)
	if err != nil {
		t.Fatalf("GridSeparatorOrder: %v", err)
	}
	bySep, err := Build(g, Options{Custom: sep})
	if err != nil {
		t.Fatalf("Build(separator): %v", err)
	}
	if err := bySep.VerifyCover(g); err != nil {
		t.Fatalf("separator labeling invalid: %v", err)
	}
	byDeg, err := Build(g, Options{Order: OrderDegree})
	if err != nil {
		t.Fatalf("Build(degree): %v", err)
	}
	sepAvg := bySep.ComputeStats().Avg
	degAvg := byDeg.ComputeStats().Avg
	if sepAvg >= degAvg {
		t.Errorf("separator order avg %.1f not below degree order avg %.1f", sepAvg, degAvg)
	}
}

func TestHighwayOrderBeatsDegreeOnRoad(t *testing.T) {
	g, err := gen.RoadLike(16, 16, 4, 3)
	if err != nil {
		t.Fatalf("RoadLike: %v", err)
	}
	hwy, err := RoadHighwayOrder(16, 16, 4)
	if err != nil {
		t.Fatalf("RoadHighwayOrder: %v", err)
	}
	byHwy, err := Build(g, Options{Custom: hwy})
	if err != nil {
		t.Fatalf("Build(highway): %v", err)
	}
	if err := byHwy.VerifyCover(g); err != nil {
		t.Fatalf("highway labeling invalid: %v", err)
	}
	byDeg, err := Build(g, Options{Order: OrderDegree})
	if err != nil {
		t.Fatalf("Build(degree): %v", err)
	}
	if h, d := byHwy.ComputeStats().Avg, byDeg.ComputeStats().Avg; h >= d {
		t.Errorf("highway order avg %.1f not below degree order avg %.1f", h, d)
	}
}

func TestOrdersWorkOnMatchingGraph(t *testing.T) {
	// The custom orders must be valid PLL inputs for the exact graphs they
	// target (dimension mismatch should fail the permutation check).
	g, err := gen.Grid(4, 4)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	order, err := GridSeparatorOrder(5, 5) // wrong size for g
	if err != nil {
		t.Fatalf("GridSeparatorOrder: %v", err)
	}
	if _, err := Build(g, Options{Custom: order}); !errors.Is(err, ErrBadOrder) {
		t.Errorf("mismatched order err = %v, want ErrBadOrder", err)
	}
}
