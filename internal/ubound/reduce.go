package ubound

import (
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
)

// Reduced is the outcome of the paper's degree-reduction step: every vertex
// v of degree deg(v) is split into ⌈deg(v)/t⌉ copies of degree at most
// t+2, chained by weight-0 edges, with original edges (weight 1)
// distributed among the copies. Distances between representatives equal
// distances in the original graph.
type Reduced struct {
	// G is the reduced {0,1}-weighted graph.
	G *graph.Graph
	// Rep[v] is the representative copy of original vertex v.
	Rep []graph.NodeID
	// Orig[x] is the original vertex a copy x descends from.
	Orig []graph.NodeID
	// T is the per-copy edge budget used.
	T int
}

// ReduceDegree splits high-degree vertices. t is the per-copy budget for
// original edges; t = 0 selects ⌈2m/n⌉ (the paper's ⌈m/n⌉-flavoured choice,
// doubled because every undirected edge consumes budget at both
// endpoints), clamped to ≥ 1.
func ReduceDegree(g *graph.Graph, t int) (*Reduced, error) {
	n := g.NumNodes()
	if t < 0 {
		return nil, fmt.Errorf("%w: t=%d", ErrBadParam, t)
	}
	if t == 0 {
		if n > 0 {
			t = (2*g.NumEdges() + n - 1) / n
		}
		if t < 1 {
			t = 1
		}
	}
	red := &Reduced{Rep: make([]graph.NodeID, n), T: t}
	// Copies per vertex and base ids.
	base := make([]graph.NodeID, n)
	next := graph.NodeID(0)
	copies := make([]int, n)
	for v := 0; v < n; v++ {
		c := (g.Degree(graph.NodeID(v)) + t - 1) / t
		if c < 1 {
			c = 1
		}
		copies[v] = c
		base[v] = next
		red.Rep[v] = next
		next += graph.NodeID(c)
	}
	red.Orig = make([]graph.NodeID, next)
	for v := 0; v < n; v++ {
		for k := 0; k < copies[v]; k++ {
			red.Orig[int(base[v])+k] = graph.NodeID(v)
		}
	}
	b := graph.NewBuilder(int(next), g.NumEdges()+int(next))
	b.Grow(int(next))
	// Weight-0 chains between consecutive copies.
	for v := 0; v < n; v++ {
		for k := 0; k+1 < copies[v]; k++ {
			b.AddWeightedEdge(base[v]+graph.NodeID(k), base[v]+graph.NodeID(k+1), 0)
		}
	}
	// Distribute original edges: the i-th incident edge of v (in adjacency
	// order) attaches to copy ⌊i/t⌋. Each undirected edge is visited once
	// from each endpoint; remember the copy chosen at the first visit and
	// complete the edge at the second.
	counter := make([]int, n)
	pending := make(map[[2]graph.NodeID]graph.NodeID, g.NumEdges())
	for u := graph.NodeID(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			slot := counter[u]
			counter[u]++
			cu := base[u] + graph.NodeID(slot/t)
			if u < v {
				pending[[2]graph.NodeID{u, v}] = cu
			} else {
				b.AddWeightedEdge(pending[[2]graph.NodeID{v, u}], cu, 1)
			}
		}
	}
	rg, err := b.Build()
	if err != nil {
		return nil, err
	}
	red.G = rg
	return red, nil
}

// Project maps a labeling of the reduced graph back to the original graph:
// the label of an original vertex v is the label of its representative with
// every hub replaced by its original vertex. Weight-0 chains make the
// distances coincide.
func (r *Reduced) Project(l *hub.Labeling) (*hub.Labeling, error) {
	if l.NumVertices() != r.G.NumNodes() {
		return nil, fmt.Errorf("%w: labeling has %d vertices, reduced graph has %d",
			ErrBadParam, l.NumVertices(), r.G.NumNodes())
	}
	n := len(r.Rep)
	out := hub.NewLabeling(n)
	for v := 0; v < n; v++ {
		for _, h := range l.Label(r.Rep[v]) {
			out.Add(graph.NodeID(v), r.Orig[h.Node], h.Dist)
		}
	}
	out.Canonicalize()
	out.Freeze()
	return out, nil
}

// BuildForSparse is the Theorem 1.4 pipeline: reduce degree, run the
// Theorem 4.1 construction on the {0,1}-weighted reduced graph, and project
// the labeling back to the original average-degree-bounded graph.
func BuildForSparse(g *graph.Graph, opts Options) (*Result, *Reduced, error) {
	red, err := ReduceDegree(g, 0)
	if err != nil {
		return nil, nil, err
	}
	res, err := Build(red.G, opts)
	if err != nil {
		return nil, nil, err
	}
	projected, err := red.Project(res.Labeling)
	if err != nil {
		return nil, nil, err
	}
	res.Labeling = projected
	return res, red, nil
}
