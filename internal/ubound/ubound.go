// Package ubound implements the paper's upper-bound construction
// (Theorem 4.1): a hub labeling for bounded-degree graphs assembled from
// four ingredients, each mirroring a step of the proof:
//
//  1. a random hitting set S that covers every pair with ≥ D valid hubs
//     (|H_uv| ≥ D), plus exact fix-up sets Q_v for the pairs it misses;
//  2. a random D³-coloring of V with conflict sets R_v collecting the pairs
//     whose valid-hub set H_uv is not rainbow-colored;
//  3. for every (h, a, b) with 1 ≤ a+b ≤ D, the bipartite graph E^h_{a,b}
//     of remaining pairs (u,v) with h ∈ H_uv at split distances (a,b); a
//     maximal matching's endpoints form a vertex cover, and h joins F_v for
//     every cover vertex v (Lemma 4.2 bounds Σ|F_v| via the
//     Ruzsa–Szemerédi structure of the per-color unions G^c_{a,b});
//  4. the final hub sets H_v = {v} ∪ S ∪ Q_v ∪ R_v ∪ N(F_v).
//
// The package also provides the degree-reduction step (vertex splitting
// with weight-0 links) that extends the construction from maximum-degree to
// average-degree sparse graphs (Theorem 1.4).
package ubound

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/matching"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// MaxVertices bounds the graphs Build accepts: the pipeline computes all
// valid-hub sets H_uv, which is cubic work.
const MaxVertices = 1200

var (
	// ErrTooLarge reports a graph beyond MaxVertices.
	ErrTooLarge = errors.New("ubound: graph too large for the Theorem 4.1 pipeline")
	// ErrBadParam reports invalid options.
	ErrBadParam = errors.New("ubound: invalid parameter")
)

// Options configures Build.
type Options struct {
	// D is the hub-count threshold of the proof. Zero selects
	// max(2, round(|V|^{1/6})) following D = RS(n)^{1/6} with the Behrend
	// regime RS(n) ≈ n^{o(1)} replaced by a small polynomial proxy.
	D graph.Weight
	// Colors overrides the D³ color count (0 = D³).
	Colors int
	// Seed drives the random hitting set and coloring.
	Seed int64
	// UseKonig selects exact minimum vertex covers (König) instead of the
	// 2-approximate matched-endpoint covers used in the paper's accounting.
	UseKonig bool
}

// Result carries the labeling and the size decomposition matching the
// proof's accounting, plus Lemma 4.2's verified induced-matching evidence.
type Result struct {
	Labeling *hub.Labeling
	D        graph.Weight
	Colors   int
	// SharedSize = |S|.
	SharedSize int
	// QTotal = Σ|Q_v| (far pairs the random set missed).
	QTotal int
	// RTotal = Σ|R_v| (color-conflicted near pairs).
	RTotal int
	// FTotal = Σ|F_v| before neighborhood expansion.
	FTotal int
	// NFTotal = Σ|N(F_v)|.
	NFTotal int
	// InducedMatchings counts the maximal matchings MM^h_{a,b} that were
	// verified to be induced matchings of their per-color union G^c_{a,b}
	// (Lemma 4.2's claim); Violations counts failures (0 expected).
	InducedMatchings int
	Violations       int
}

// DefaultD returns the default threshold for an n-vertex graph.
func DefaultD(n int) graph.Weight {
	d := graph.Weight(math.Round(math.Pow(float64(n), 1.0/6)))
	if d < 2 {
		d = 2
	}
	return d
}

// Build runs the Theorem 4.1 pipeline on g (unweighted or {0,1}-weighted,
// per the paper's remark that the construction tolerates 0/1 weights).
func Build(g *graph.Graph, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (max %d)", ErrTooLarge, n, MaxVertices)
	}
	if sssp.MaxEdgeWeight(g) > 1 {
		return nil, fmt.Errorf("%w: edge weights must be 0 or 1", ErrBadParam)
	}
	d := opts.D
	if d == 0 {
		d = DefaultD(n)
	}
	if d < 2 {
		return nil, fmt.Errorf("%w: D=%d, want ≥ 2", ErrBadParam, d)
	}
	colors := opts.Colors
	if colors == 0 {
		colors = int(d * d * d)
	}
	if colors < 1 {
		return nil, fmt.Errorf("%w: colors=%d", ErrBadParam, colors)
	}
	res := &Result{D: d, Colors: colors}
	l := hub.NewLabeling(n)
	if n == 0 {
		res.Labeling = l
		return res, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	dist := sssp.AllPairs(g)

	// hubsOf enumerates H_uv = {x : d(u,x)+d(x,v) = d(u,v)}.
	hubsOf := func(u, v graph.NodeID) []graph.NodeID {
		var out []graph.NodeID
		for x := graph.NodeID(0); int(x) < n; x++ {
			if dist[u][x]+dist[x][v] == dist[u][v] {
				out = append(out, x)
			}
		}
		return out
	}

	// Classify pairs once: farPairs have |H_uv| ≥ D (handled by S ∪ Q),
	// nearPairs have |H_uv| < D; the paper overlaps the cases at
	// |H_uv| = D, and we send boundary pairs to the far side, which only
	// helps. Distance-0 pairs (possible under the 0-weight edges of degree
	// reduction) fall outside the proof's 1 ≤ a+b ≤ D window and are
	// covered directly.
	// Classification needs |H_uv| for all pairs — the cubic hot spot — so
	// rows fan out over the worker pool, each source writing its own
	// bucket; buckets are then concatenated in source order, preserving
	// the sequential pair order exactly.
	type pair struct{ u, v graph.NodeID }
	type classRow struct {
		far, near []pair
		zero      []graph.NodeID // v at distance 0 from the row's source
	}
	rows := make([]classRow, n)
	par.For(n, func(i int) {
		u := graph.NodeID(i)
		var row classRow
		for v := u + 1; int(v) < n; v++ {
			if dist[u][v] == graph.Infinity {
				continue
			}
			if dist[u][v] == 0 {
				row.zero = append(row.zero, v)
				continue
			}
			count := 0
			for x := graph.NodeID(0); int(x) < n; x++ {
				if dist[u][x]+dist[x][v] == dist[u][v] {
					count++
				}
			}
			if count >= int(d) {
				row.far = append(row.far, pair{u, v})
			} else {
				row.near = append(row.near, pair{u, v})
			}
		}
		rows[i] = row
	})
	var farPairs, nearPairs []pair
	for i := range rows {
		u := graph.NodeID(i)
		for _, v := range rows[i].zero {
			l.Add(v, u, 0) // common hub u with the self-hub of u
			res.QTotal++
		}
		farPairs = append(farPairs, rows[i].far...)
		nearPairs = append(nearPairs, rows[i].near...)
	}

	// Step 1: random hitting set S with |S| = ⌈(n/D)·ln(D+1)⌉ (the proof's
	// (n/D)·ln D sample), then exact Q fix-ups.
	sizeS := int(math.Ceil(float64(n) / float64(d) * math.Log(float64(d)+1)))
	if sizeS < 1 {
		sizeS = 1
	}
	if sizeS > n {
		sizeS = n
	}
	perm := rng.Perm(n)
	shared := make([]graph.NodeID, 0, sizeS)
	for i := 0; i < sizeS; i++ {
		shared = append(shared, graph.NodeID(perm[i]))
	}
	res.SharedSize = sizeS
	for v := graph.NodeID(0); int(v) < n; v++ {
		for _, h := range shared {
			if dist[v][h] < graph.Infinity {
				l.Add(v, h, dist[v][h])
			}
		}
		l.Add(v, v, 0)
	}
	for _, p := range farPairs {
		covered := false
		for _, h := range shared {
			if dist[p.u][h]+dist[h][p.v] == dist[p.u][p.v] {
				covered = true
				break
			}
		}
		if !covered {
			l.Add(p.u, p.v, dist[p.u][p.v]) // v ∈ Q_u; v carries itself
			res.QTotal++
		}
	}

	// Step 2: D³-coloring and conflict sets R.
	color := make([]int, n)
	for v := range color {
		color[v] = rng.Intn(colors)
	}
	conflicted := make([]bool, len(nearPairs))
	par.For(len(nearPairs), func(i int) {
		p := nearPairs[i]
		seen := make(map[int]bool, int(d))
		for _, x := range hubsOf(p.u, p.v) {
			if seen[color[x]] {
				conflicted[i] = true
				break
			}
			seen[color[x]] = true
		}
	})
	for i, p := range nearPairs {
		if conflicted[i] {
			l.Add(p.u, p.v, dist[p.u][p.v]) // v ∈ R_u
			res.RTotal++
		}
	}

	// Step 3: E^h_{a,b} bipartite graphs over the surviving near pairs.
	// Index pairs by (h, a) — b is determined as dist(u,v)-a — and run one
	// matching/vertex-cover per group. Lemma 4.2 is verified on the
	// per-color unions.
	type key struct {
		h graph.NodeID
		a graph.Weight
		b graph.Weight
	}
	groups := make(map[key][]pair)
	for i, p := range nearPairs {
		if conflicted[i] {
			continue
		}
		for _, h := range hubsOf(p.u, p.v) {
			a := dist[p.u][h]
			b := dist[h][p.v]
			if a+b < 1 || a+b > d {
				continue
			}
			groups[key{h, a, b}] = append(groups[key{h, a, b}], p)
		}
	}
	fSets := make([]map[graph.NodeID]bool, n)
	for v := range fSets {
		fSets[v] = map[graph.NodeID]bool{graph.NodeID(v): true} // v ∈ F_v
	}
	// For Lemma 4.2 verification, collect matchings per (color, a, b).
	type cab struct {
		c    int
		a, b graph.Weight
	}
	colorUnions := make(map[cab][][2]graph.NodeID)
	matchingsByGroup := make(map[key][][2]graph.NodeID)
	for k, pairs := range groups {
		bip := matching.NewBipartite(n, n)
		for _, p := range pairs {
			bip.AddEdge(int32(p.u), int32(p.v))
		}
		bip.Finish()
		var vc matching.VertexCover
		var mm []matching.MatchEdge
		if opts.UseKonig {
			vc = bip.MinimumVertexCover()
			mm = bip.MaximumMatching()
		} else {
			mm = bip.GreedyMaximalMatching()
			vc = matching.CoverFromMatching(mm)
		}
		for _, lv := range vc.Left {
			fSets[lv][k.h] = true
		}
		for _, rv := range vc.Right {
			fSets[rv][k.h] = true
		}
		edges := make([][2]graph.NodeID, 0, len(mm))
		for _, e := range mm {
			edges = append(edges, [2]graph.NodeID{graph.NodeID(e.L), graph.NodeID(e.R)})
		}
		matchingsByGroup[k] = edges
		ck := cab{color[k.h], k.a, k.b}
		colorUnions[ck] = append(colorUnions[ck], edges...)
	}
	// Lemma 4.2 check: each MM^h_{a,b} is an induced matching within its
	// color union G^c_{a,b}.
	unionEdgeSet := make(map[cab]map[[2]graph.NodeID]bool)
	for ck, edges := range colorUnions {
		set := make(map[[2]graph.NodeID]bool, len(edges))
		for _, e := range edges {
			set[e] = true
		}
		unionEdgeSet[ck] = set
	}
	for k, mm := range matchingsByGroup {
		if len(mm) == 0 {
			continue
		}
		ck := cab{color[k.h], k.a, k.b}
		set := unionEdgeSet[ck]
		induced := true
		for i := range mm {
			for j := range mm {
				if i != j && set[[2]graph.NodeID{mm[i][0], mm[j][1]}] {
					induced = false
				}
			}
		}
		if induced {
			res.InducedMatchings++
		} else {
			res.Violations++
		}
	}

	// Step 4: add N(F_v).
	for v := graph.NodeID(0); int(v) < n; v++ {
		res.FTotal += len(fSets[v])
		added := map[graph.NodeID]bool{}
		for h := range fSets[v] {
			if !added[h] && dist[v][h] < graph.Infinity {
				added[h] = true
				l.Add(v, h, dist[v][h])
			}
			for _, nb := range g.Neighbors(h) {
				if !added[nb] && dist[v][nb] < graph.Infinity {
					added[nb] = true
					l.Add(v, nb, dist[v][nb])
				}
			}
		}
		res.NFTotal += len(added)
	}
	l.Canonicalize()
	l.Freeze()
	res.Labeling = l
	return res, nil
}
