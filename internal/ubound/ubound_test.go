package ubound

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/sssp"
)

func TestBuildPathGraph(t *testing.T) {
	g, err := gen.Path(30)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	res, err := Build(g, Options{D: 3, Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if res.Violations != 0 {
		t.Errorf("Lemma 4.2 violations: %d", res.Violations)
	}
}

func TestBuildDegree3Random(t *testing.T) {
	g, err := gen.RandomRegular(120, 3, 5)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	for _, d := range []graph.Weight{2, 3, 4} {
		res, err := Build(g, Options{D: d, Seed: 9})
		if err != nil {
			t.Fatalf("Build(D=%d): %v", d, err)
		}
		if err := res.Labeling.VerifyCover(g); err != nil {
			t.Errorf("D=%d: VerifyCover: %v", d, err)
		}
		if res.Violations != 0 {
			t.Errorf("D=%d: Lemma 4.2 violations: %d of %d matchings",
				d, res.Violations, res.InducedMatchings+res.Violations)
		}
	}
}

func TestBuildKonigVariant(t *testing.T) {
	g, err := gen.Gnm(80, 120, 4)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	res, err := Build(g, Options{D: 3, Seed: 2, UseKonig: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestBuildDefaults(t *testing.T) {
	g, err := gen.Grid(7, 7)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	res, err := Build(g, Options{Seed: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.D != DefaultD(49) {
		t.Errorf("D = %d, want %d", res.D, DefaultD(49))
	}
	if res.Colors != int(res.D*res.D*res.D) {
		t.Errorf("Colors = %d, want D³ = %d", res.Colors, res.D*res.D*res.D)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	big := graph.NewBuilder(0, 0)
	big.Grow(MaxVertices + 1)
	bg, err := big.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Build(bg, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized err = %v, want ErrTooLarge", err)
	}
	wb := graph.NewBuilder(3, 2)
	wb.AddWeightedEdge(0, 1, 5)
	wg, err := wb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Build(wg, Options{}); !errors.Is(err, ErrBadParam) {
		t.Errorf("weight-5 err = %v, want ErrBadParam", err)
	}
	g, err := gen.Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := Build(g, Options{D: 1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("D=1 err = %v, want ErrBadParam", err)
	}
	if _, err := Build(g, Options{D: 2, Colors: -3}); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative colors err = %v, want ErrBadParam", err)
	}
}

func TestBuildEmptyAndDisconnected(t *testing.T) {
	empty, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	if _, err := Build(empty, Options{D: 2}); err != nil {
		t.Errorf("Build(empty): %v", err)
	}
	b := graph.NewBuilder(12, 10)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		b.AddEdge(graph.NodeID(6+i), graph.NodeID(6+(i+1)%6))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	res, err := Build(g, Options{D: 2, Seed: 7})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

// TestBuildIsCoverProperty: the pipeline yields a valid cover on random
// sparse graphs across seeds and D values.
func TestBuildIsCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		g, err := gen.Gnm(n, n+rng.Intn(n), seed)
		if err != nil {
			return false
		}
		d := graph.Weight(2 + rng.Intn(3))
		res, err := Build(g, Options{D: d, Seed: seed})
		if err != nil {
			return false
		}
		return res.Labeling.VerifyCover(g) == nil && res.Violations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBuildZeroOneWeights(t *testing.T) {
	b := graph.NewBuilder(10, 12)
	for i := 0; i < 9; i++ {
		b.AddWeightedEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Weight(i%2))
	}
	b.AddWeightedEdge(0, 5, 1)
	b.AddWeightedEdge(2, 8, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	res, err := Build(g, Options{D: 3, Seed: 11})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestReduceDegree(t *testing.T) {
	// Star with 12 leaves: center splits into ⌈12/t⌉ copies.
	b := graph.NewBuilder(13, 12)
	for v := graph.NodeID(1); v <= 12; v++ {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	red, err := ReduceDegree(g, 3)
	if err != nil {
		t.Fatalf("ReduceDegree: %v", err)
	}
	if red.G.MaxDegree() > 3+2 {
		t.Errorf("reduced MaxDegree = %d, want ≤ t+2 = 5", red.G.MaxDegree())
	}
	// Distances between representatives match the original.
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		want := sssp.BFS(g, u)
		got := sssp.ZeroOneBFS(red.G, red.Rep[u])
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if want.Dist[v] != got.Dist[red.Rep[v]] {
				t.Fatalf("dist(%d,%d): original %d, reduced %d",
					u, v, want.Dist[v], got.Dist[red.Rep[v]])
			}
		}
	}
}

func TestReduceDegreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g, err := gen.Gnm(n, n+rng.Intn(3*n), seed)
		if err != nil {
			return false
		}
		red, err := ReduceDegree(g, 0)
		if err != nil {
			return false
		}
		if red.G.MaxDegree() > red.T+2 {
			return false
		}
		// Orig/Rep are mutually consistent.
		for v := 0; v < n; v++ {
			if red.Orig[red.Rep[v]] != graph.NodeID(v) {
				return false
			}
		}
		// Sampled distance preservation.
		for i := 0; i < 5; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			want := sssp.BFS(g, u).Dist[v]
			got := sssp.ZeroOneBFS(red.G, red.Rep[u]).Dist[red.Rep[v]]
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReduceDegreeErrors(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := ReduceDegree(g, -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("t=-1 err = %v, want ErrBadParam", err)
	}
}

// TestBuildForSparse is the Theorem 1.4 end-to-end pipeline: high-degree
// sparse graph → degree reduction → Theorem 4.1 labeling → projection —
// and the projected labeling must exactly cover the ORIGINAL graph.
func TestBuildForSparse(t *testing.T) {
	// A graph with a few very high degree vertices but constant average
	// degree: two hubs connected to many leaves plus a sparse ring.
	b := graph.NewBuilder(60, 100)
	for v := graph.NodeID(2); v < 30; v++ {
		b.AddEdge(0, v)
	}
	for v := graph.NodeID(30); v < 58; v++ {
		b.AddEdge(1, v)
	}
	b.AddEdge(0, 1)
	for v := graph.NodeID(2); v < 59; v++ {
		b.AddEdge(v, v+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	res, red, err := BuildForSparse(g, Options{D: 3, Seed: 13})
	if err != nil {
		t.Fatalf("BuildForSparse: %v", err)
	}
	if red.G.MaxDegree() > red.T+2 {
		t.Errorf("reduced degree %d exceeds %d", red.G.MaxDegree(), red.T+2)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("projected labeling VerifyCover: %v", err)
	}
}

func TestProjectSizeMismatch(t *testing.T) {
	g, err := gen.Path(6)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	red, err := ReduceDegree(g, 1)
	if err != nil {
		t.Fatalf("ReduceDegree: %v", err)
	}
	bad := hub.NewLabeling(3)
	if _, err := red.Project(bad); !errors.Is(err, ErrBadParam) {
		t.Errorf("Project err = %v, want ErrBadParam", err)
	}
}
