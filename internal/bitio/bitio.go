// Package bitio implements bit-granular writers and readers plus the
// universal integer codes (unary, Elias gamma/delta) used to produce
// bit-exact distance labels.
package bitio

import (
	"errors"
	"math/bits"
)

var (
	// ErrOutOfBits reports a read past the end of the stream.
	ErrOutOfBits = errors.New("bitio: read past end of stream")
	// ErrBadValue reports a value outside a code's domain.
	ErrBadValue = errors.New("bitio: value outside code domain")
)

// Writer accumulates bits most-significant-first. The zero value is ready
// to use.
type Writer struct {
	buf  []byte
	nbit int
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the written stream padded with zero bits to a whole byte.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(bit uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if bit != 0 {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first (n ≤ 64).
func (w *Writer) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUnary appends v as v zero bits followed by a one bit.
func (w *Writer) WriteUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		w.WriteBit(0)
	}
	w.WriteBit(1)
}

// WriteGamma appends v ≥ 1 in Elias gamma code.
func (w *Writer) WriteGamma(v uint64) error {
	if v == 0 {
		return ErrBadValue
	}
	n := bits.Len64(v) // number of significant bits
	w.WriteUnary(uint64(n - 1))
	if n > 1 {
		w.WriteBits(v&((1<<uint(n-1))-1), n-1)
	}
	return nil
}

// WriteDelta appends v ≥ 1 in Elias delta code.
func (w *Writer) WriteDelta(v uint64) error {
	if v == 0 {
		return ErrBadValue
	}
	n := bits.Len64(v)
	if err := w.WriteGamma(uint64(n)); err != nil {
		return err
	}
	if n > 1 {
		w.WriteBits(v&((1<<uint(n-1))-1), n-1)
	}
	return nil
}

// Reader consumes bits most-significant-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // bit position
	nbit int // total available bits
}

// NewReader returns a reader over all bits of buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf, nbit: 8 * len(buf)}
}

// NewReaderBits returns a reader over exactly nbit bits of buf.
func NewReaderBits(buf []byte, nbit int) *Reader {
	if nbit > 8*len(buf) {
		nbit = 8 * len(buf)
	}
	return &Reader{buf: buf, nbit: nbit}
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos/8] >> (7 - uint(r.pos%8))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads n bits into the low bits of the result (n ≤ 64).
func (r *Reader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary-coded value.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return v, nil
		}
		v++
	}
}

// ReadGamma reads an Elias gamma coded value.
func (r *Reader) ReadGamma() (uint64, error) {
	n, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if n > 63 {
		return 0, ErrBadValue
	}
	rest, err := r.ReadBits(int(n))
	if err != nil {
		return 0, err
	}
	return 1<<n | rest, nil
}

// ReadDelta reads an Elias delta coded value.
func (r *Reader) ReadDelta() (uint64, error) {
	n, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	if n > 64 {
		return 0, ErrBadValue
	}
	rest, err := r.ReadBits(int(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | rest, nil
}

// GammaLen returns the bit length of the Elias gamma code of v ≥ 1.
func GammaLen(v uint64) int {
	n := bits.Len64(v)
	return 2*n - 1
}

// DeltaLen returns the bit length of the Elias delta code of v ≥ 1.
func DeltaLen(v uint64) int {
	n := bits.Len64(v)
	return GammaLen(uint64(n)) + n - 1
}

// ZigZag maps a signed integer to an unsigned one (0→0, -1→1, 1→2, ...),
// suitable for gamma/delta coding after adding 1.
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
