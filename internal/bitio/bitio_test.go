package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b1, 1)
	w.WriteBits(0xFF, 8)
	if w.Len() != 13 {
		t.Fatalf("Len = %d, want 13", w.Len())
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	v, err := r.ReadBits(4)
	if err != nil || v != 0b1011 {
		t.Errorf("ReadBits(4) = (%b,%v), want 1011", v, err)
	}
	b, err := r.ReadBit()
	if err != nil || b != 1 {
		t.Errorf("ReadBit = (%d,%v), want 1", b, err)
	}
	v, err = r.ReadBits(8)
	if err != nil || v != 0xFF {
		t.Errorf("ReadBits(8) = (%x,%v), want ff", v, err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrOutOfBits) {
		t.Errorf("read past end err = %v, want ErrOutOfBits", err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	var w Writer
	vals := []uint64{0, 1, 2, 5, 17}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil || got != want {
			t.Errorf("ReadUnary = (%d,%v), want %d", got, err, want)
		}
	}
}

func TestGammaRejectsZero(t *testing.T) {
	var w Writer
	if err := w.WriteGamma(0); !errors.Is(err, ErrBadValue) {
		t.Errorf("WriteGamma(0) err = %v, want ErrBadValue", err)
	}
	if err := w.WriteDelta(0); !errors.Is(err, ErrBadValue) {
		t.Errorf("WriteDelta(0) err = %v, want ErrBadValue", err)
	}
}

func TestGammaKnownCodes(t *testing.T) {
	// gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
	cases := []struct {
		v    uint64
		bits string
	}{
		{1, "1"},
		{2, "010"},
		{3, "011"},
		{4, "00100"},
		{9, "0001001"},
	}
	for _, tc := range cases {
		var w Writer
		if err := w.WriteGamma(tc.v); err != nil {
			t.Fatalf("WriteGamma(%d): %v", tc.v, err)
		}
		got := bitString(&w)
		if got != tc.bits {
			t.Errorf("gamma(%d) = %s, want %s", tc.v, got, tc.bits)
		}
		if GammaLen(tc.v) != len(tc.bits) {
			t.Errorf("GammaLen(%d) = %d, want %d", tc.v, GammaLen(tc.v), len(tc.bits))
		}
	}
}

func bitString(w *Writer) string {
	buf := w.Bytes()
	out := make([]byte, 0, w.Len())
	for i := 0; i < w.Len(); i++ {
		if buf[i/8]>>(7-uint(i%8))&1 == 1 {
			out = append(out, '1')
		} else {
			out = append(out, '0')
		}
	}
	return string(out)
}

func TestGammaDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		vals := make([]uint64, n)
		var w Writer
		for i := range vals {
			vals[i] = 1 + uint64(rng.Int63n(1<<40))
			if rng.Intn(2) == 0 {
				if err := w.WriteGamma(vals[i]); err != nil {
					return false
				}
				vals[i] |= 1 << 63 // tag as gamma
			} else {
				if err := w.WriteDelta(vals[i]); err != nil {
					return false
				}
			}
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for _, tagged := range vals {
			want := tagged &^ (1 << 63)
			var got uint64
			var err error
			if tagged&(1<<63) != 0 {
				got, err = r.ReadGamma()
			} else {
				got, err = r.ReadDelta()
			}
			if err != nil || got != want {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeltaLen(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 100, 1 << 20} {
		var w Writer
		if err := w.WriteDelta(v); err != nil {
			t.Fatalf("WriteDelta(%d): %v", v, err)
		}
		if w.Len() != DeltaLen(v) {
			t.Errorf("DeltaLen(%d) = %d, actual bits %d", v, DeltaLen(v), w.Len())
		}
	}
}

func TestZigZag(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {1 << 40, 1 << 41},
	}
	for _, tc := range cases {
		if got := ZigZag(tc.v); got != tc.u {
			t.Errorf("ZigZag(%d) = %d, want %d", tc.v, got, tc.u)
		}
		if got := UnZigZag(tc.u); got != tc.v {
			t.Errorf("UnZigZag(%d) = %d, want %d", tc.u, got, tc.v)
		}
	}
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyWriter(t *testing.T) {
	var w Writer
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Errorf("empty writer: Len=%d Bytes=%v", w.Len(), w.Bytes())
	}
	r := NewReader(nil)
	if _, err := r.ReadBit(); !errors.Is(err, ErrOutOfBits) {
		t.Errorf("empty reader err = %v, want ErrOutOfBits", err)
	}
}
