// Package oracle frames the paper's Section 1 discussion of centralized
// distance oracles: data structures using space S answering exact queries
// in time T, with the conjectured barrier S·T = Õ(n²) for sparse graphs.
// The three concrete points on the curve — the full distance matrix
// (S = n², T = O(1)), hub labels (S = Σ|S(v)|, T = |S(u)|+|S(v)|), and
// plain bidirectional search (S = O(m), T = Õ(m)) — are implemented as
// registered backends of internal/index; this package keeps the paper-
// facing names and builds the cross-checked S·T table.
package oracle

import (
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
)

// ErrTooLarge reports inputs beyond an implementation's size limit.
var ErrTooLarge = index.ErrTooLarge

// Oracle answers exact distance queries over a fixed graph. It is the
// index.Index interface under the paper's name.
type Oracle = index.Index

// The three tradeoff endpoints, now index backends.
type (
	// Matrix is the S = n² endpoint: the full distance matrix.
	Matrix = index.Matrix
	// Labels is the hub labeling point of the tradeoff.
	Labels = index.HubLabels
	// Search is the S = O(m) endpoint: search the stored graph per query.
	Search = index.Search
)

// maxMatrixVertices caps matrix oracles at ~1 GiB.
const maxMatrixVertices = index.MaxMatrixVertices

// NewMatrix precomputes all pairwise distances.
func NewMatrix(g *graph.Graph) (*Matrix, error) { return index.NewMatrix(g) }

// NewLabels builds a PLL-backed oracle.
func NewLabels(g *graph.Graph) (*Labels, error) { return index.NewHubLabels(g) }

// NewLabelsFrom wraps an existing labeling, freezing it if necessary.
func NewLabelsFrom(l *hub.Labeling) *Labels { return index.NewHubLabelsFrom(l) }

// NewSearch wraps the graph.
func NewSearch(g *graph.Graph) *Search { return index.NewSearch(g) }

// TradeoffPoint is one row of the S·T table.
type TradeoffPoint struct {
	Name string
	// SpaceBytes is the oracle's storage.
	SpaceBytes int64
	// AvgQueryOps approximates T: operations touched per query (matrix: 1;
	// labels: average merged label length; search: edges scanned estimate).
	AvgQueryOps float64
	// SpaceTimeProduct = SpaceBytes · AvgQueryOps, the S·T figure.
	SpaceTimeProduct float64
}

// tradeoffKinds fixes the table order: densest to sparsest storage.
var tradeoffKinds = []string{index.KindMatrix, index.KindHubLabels, index.KindSearch}

// Tradeoff builds all three registered oracle backends, cross-checks them
// against each other on sample pairs, and returns the S·T table.
func Tradeoff(g *graph.Graph, samplePairs int) ([]TradeoffPoint, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if samplePairs <= 0 {
		return nil, fmt.Errorf("oracle: samplePairs must be positive, got %d", samplePairs)
	}
	oracles := make([]Oracle, len(tradeoffKinds))
	for i, kind := range tradeoffKinds {
		o, err := index.Build(kind, g, index.Options{})
		if err != nil {
			return nil, err
		}
		oracles[i] = o
	}
	// Cross-check: all backends must agree with the matrix ground truth.
	truth := oracles[0]
	step := n*n/samplePairs + 1
	for idx := 0; idx < n*n; idx += step {
		u, v := graph.NodeID(idx/n), graph.NodeID(idx%n)
		want := truth.Distance(u, v)
		for _, o := range oracles[1:] {
			if got := o.Distance(u, v); got != want {
				return nil, fmt.Errorf("oracle: %s disagrees with %s on (%d,%d): %d vs %d",
					o.Name(), truth.Name(), u, v, got, want)
			}
		}
	}
	points := make([]TradeoffPoint, len(oracles))
	for i, o := range oracles {
		meta := o.Meta()
		points[i] = TradeoffPoint{
			Name:             o.Name(),
			SpaceBytes:       o.SpaceBytes(),
			AvgQueryOps:      meta.QueryOps,
			SpaceTimeProduct: float64(o.SpaceBytes()) * meta.QueryOps,
		}
	}
	return points, nil
}
