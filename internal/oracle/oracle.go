// Package oracle frames the paper's Section 1 discussion of centralized
// distance oracles: data structures using space S answering exact queries
// in time T, with the conjectured barrier S·T = Õ(n²) for sparse graphs.
// Three concrete points on the curve are provided — the full distance
// matrix (S = n², T = O(1)), hub labels (S = Σ|S(v)|, T = |S(u)|+|S(v)|),
// and plain bidirectional search (S = O(m), T = Õ(m)) — each with byte-
// accurate space accounting so experiments can chart the tradeoff.
package oracle

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// ErrTooLarge reports inputs beyond an implementation's size limit.
var ErrTooLarge = errors.New("oracle: graph too large")

// Oracle answers exact distance queries over a fixed graph.
type Oracle interface {
	// Distance returns the exact shortest-path distance (graph.Infinity if
	// unreachable).
	Distance(u, v graph.NodeID) graph.Weight
	// SpaceBytes returns the size of the query structure (excluding the
	// input graph unless the oracle retains it).
	SpaceBytes() int64
	// Name identifies the oracle for reports.
	Name() string
}

// Matrix is the S = n² endpoint: the full distance matrix.
type Matrix struct {
	dist [][]graph.Weight
}

var _ Oracle = (*Matrix)(nil)

// maxMatrixVertices caps matrix oracles at ~1 GiB.
const maxMatrixVertices = 16384

// NewMatrix precomputes all pairwise distances.
func NewMatrix(g *graph.Graph) (*Matrix, error) {
	if g.NumNodes() > maxMatrixVertices {
		return nil, fmt.Errorf("%w: %d vertices for a distance matrix", ErrTooLarge, g.NumNodes())
	}
	return &Matrix{dist: sssp.AllPairs(g)}, nil
}

// Distance looks up the precomputed entry.
func (m *Matrix) Distance(u, v graph.NodeID) graph.Weight { return m.dist[u][v] }

// SpaceBytes counts 4 bytes per matrix entry.
func (m *Matrix) SpaceBytes() int64 {
	n := int64(len(m.dist))
	return n * n * 4
}

// Name implements Oracle.
func (m *Matrix) Name() string { return "matrix" }

// Labels is the hub labeling point of the tradeoff. Queries run on the
// frozen flat CSR form, so each Distance call is a zero-allocation merge.
type Labels struct {
	l *hub.Labeling
	f *hub.FlatLabeling
}

var _ Oracle = (*Labels)(nil)

// NewLabels builds a PLL-backed oracle.
func NewLabels(g *graph.Graph) (*Labels, error) {
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		return nil, err
	}
	return NewLabelsFrom(l), nil
}

// NewLabelsFrom wraps an existing labeling, freezing it if necessary.
func NewLabelsFrom(l *hub.Labeling) *Labels { return &Labels{l: l, f: l.Freeze()} }

// Distance decodes from the two labels.
func (o *Labels) Distance(u, v graph.NodeID) graph.Weight {
	d, ok := o.f.Query(u, v)
	if !ok {
		return graph.Infinity
	}
	return d
}

// SpaceBytes counts the flat storage exactly: 4 bytes per CSR offset plus
// 8 bytes per slot (hub id + distance), sentinels included.
func (o *Labels) SpaceBytes() int64 {
	return o.f.SpaceBytes()
}

// Name implements Oracle.
func (o *Labels) Name() string { return "hub-labels" }

// Labeling exposes the underlying labeling.
func (o *Labels) Labeling() *hub.Labeling { return o.l }

// Search is the S = O(m) endpoint: store only the graph, search per query.
type Search struct {
	g *graph.Graph
}

var _ Oracle = (*Search)(nil)

// NewSearch wraps the graph.
func NewSearch(g *graph.Graph) *Search { return &Search{g: g} }

// Distance runs a bidirectional search.
func (o *Search) Distance(u, v graph.NodeID) graph.Weight {
	return sssp.Distance(o.g, u, v)
}

// SpaceBytes counts the CSR arrays: 8 bytes per directed edge entry plus
// 4 per offset.
func (o *Search) SpaceBytes() int64 {
	return int64(o.g.NumEdges())*2*8 + int64(o.g.NumNodes()+1)*4
}

// Name implements Oracle.
func (o *Search) Name() string { return "search" }

// TradeoffPoint is one row of the S·T table.
type TradeoffPoint struct {
	Name string
	// SpaceBytes is the oracle's storage.
	SpaceBytes int64
	// AvgQueryOps approximates T: operations touched per query (matrix: 1;
	// labels: average merged label length; search: edges scanned estimate).
	AvgQueryOps float64
	// SpaceTimeProduct = SpaceBytes · AvgQueryOps, the S·T figure.
	SpaceTimeProduct float64
}

// Tradeoff builds all three oracles, cross-checks them against each other
// on sample pairs, and returns the S·T table.
func Tradeoff(g *graph.Graph, samplePairs int) ([]TradeoffPoint, error) {
	matrix, err := NewMatrix(g)
	if err != nil {
		return nil, err
	}
	labels, err := NewLabels(g)
	if err != nil {
		return nil, err
	}
	search := NewSearch(g)
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	// Cross-check: all three oracles must agree.
	step := n*n/samplePairs + 1
	for idx := 0; idx < n*n; idx += step {
		u, v := graph.NodeID(idx/n), graph.NodeID(idx%n)
		dm := matrix.Distance(u, v)
		if dl := labels.Distance(u, v); dl != dm {
			return nil, fmt.Errorf("oracle: labels disagree with matrix on (%d,%d): %d vs %d", u, v, dl, dm)
		}
		if ds := search.Distance(u, v); ds != dm {
			return nil, fmt.Errorf("oracle: search disagrees with matrix on (%d,%d): %d vs %d", u, v, ds, dm)
		}
	}
	stats := labels.f.ComputeStats()
	points := []TradeoffPoint{
		{Name: matrix.Name(), SpaceBytes: matrix.SpaceBytes(), AvgQueryOps: 1},
		{Name: labels.Name(), SpaceBytes: labels.SpaceBytes(), AvgQueryOps: 2 * stats.Avg},
		{Name: search.Name(), SpaceBytes: search.SpaceBytes(),
			AvgQueryOps: float64(2 * g.NumEdges())},
	}
	for i := range points {
		points[i].SpaceTimeProduct = float64(points[i].SpaceBytes) * points[i].AvgQueryOps
	}
	return points, nil
}
