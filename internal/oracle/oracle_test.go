package oracle

import (
	"errors"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/sssp"
)

func TestOraclesAgree(t *testing.T) {
	g, err := gen.Gnm(120, 220, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	matrix, err := NewMatrix(g)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	labels, err := NewLabels(g)
	if err != nil {
		t.Fatalf("NewLabels: %v", err)
	}
	search := NewSearch(g)
	truth := sssp.AllPairs(g)
	for u := 0; u < 120; u += 7 {
		for v := 0; v < 120; v += 5 {
			want := truth[u][v]
			for _, o := range []Oracle{matrix, labels, search} {
				if got := o.Distance(graph.NodeID(u), graph.NodeID(v)); got != want {
					t.Fatalf("%s(%d,%d) = %d, want %d", o.Name(), u, v, got, want)
				}
			}
		}
	}
}

func TestOracleSpaceAccounting(t *testing.T) {
	g, err := gen.Gnm(100, 180, 3)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	matrix, err := NewMatrix(g)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if want := int64(100 * 100 * 4); matrix.SpaceBytes() != want {
		t.Errorf("matrix space = %d, want %d", matrix.SpaceBytes(), want)
	}
	labels, err := NewLabels(g)
	if err != nil {
		t.Fatalf("NewLabels: %v", err)
	}
	// Exact flat CSR accounting: 12 bytes per slot (hub id, distance and
	// next-hop parent; hub entries plus one sentinel per vertex) and 4
	// bytes per offset.
	stats := labels.Labeling().ComputeStats()
	if want := int64(stats.Total+100)*12 + int64(100+1)*4; labels.SpaceBytes() != want {
		t.Errorf("labels space = %d, want %d", labels.SpaceBytes(), want)
	}
	search := NewSearch(g)
	if search.SpaceBytes() <= 0 {
		t.Errorf("search space = %d", search.SpaceBytes())
	}
	// The expected ordering on a sparse graph: search < labels < matrix.
	if !(search.SpaceBytes() < labels.SpaceBytes() && labels.SpaceBytes() < matrix.SpaceBytes()) {
		t.Errorf("space ordering violated: search=%d labels=%d matrix=%d",
			search.SpaceBytes(), labels.SpaceBytes(), matrix.SpaceBytes())
	}
}

func TestTradeoffTable(t *testing.T) {
	g, err := gen.RandomRegular(150, 3, 9)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	points, err := Tradeoff(g, 300)
	if err != nil {
		t.Fatalf("Tradeoff: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for _, p := range points {
		if p.SpaceBytes <= 0 || p.AvgQueryOps <= 0 || p.SpaceTimeProduct <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	// Query-op ordering must be the reverse of the space ordering.
	if !(points[0].AvgQueryOps < points[1].AvgQueryOps &&
		points[1].AvgQueryOps < points[2].AvgQueryOps) {
		t.Errorf("query ordering violated: %+v", points)
	}
}

func TestMatrixTooLarge(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	b.Grow(maxMatrixVertices + 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := NewMatrix(g); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestTradeoffEmptyGraph(t *testing.T) {
	g, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Tradeoff(g, 10); err == nil {
		t.Error("Tradeoff(empty) succeeded")
	}
}

func TestSearchDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewSearch(g)
	if d := s.Distance(0, 3); d != graph.Infinity {
		t.Errorf("Distance across components = %d, want Infinity", d)
	}
	m, err := NewMatrix(g)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if d := m.Distance(0, 3); d != graph.Infinity {
		t.Errorf("matrix Distance across components = %d, want Infinity", d)
	}
}
