package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdering(t *testing.T) {
	h := New(10)
	keys := []int32{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for i, k := range keys {
		h.Push(int32(i), k)
	}
	var got []int32
	for h.Len() > 0 {
		_, k := h.Pop()
		got = append(got, k)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("pop order not sorted: %v", got)
	}
	if len(got) != 10 {
		t.Errorf("popped %d items, want 10", len(got))
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(2, 5) // decrease
	item, key := h.Pop()
	if item != 2 || key != 5 {
		t.Errorf("Pop = (%d,%d), want (2,5)", item, key)
	}
	h.Push(1, 25) // attempted increase must be ignored
	item, key = h.Pop()
	if item != 0 || key != 10 {
		t.Errorf("Pop = (%d,%d), want (0,10)", item, key)
	}
	item, key = h.Pop()
	if item != 1 || key != 20 {
		t.Errorf("Pop = (%d,%d), want (1,20) (increase ignored)", item, key)
	}
}

func TestContainsAndKey(t *testing.T) {
	h := New(4)
	if h.Contains(2) {
		t.Error("Contains(2) on empty heap")
	}
	h.Push(2, 7)
	if !h.Contains(2) || h.Key(2) != 7 {
		t.Errorf("Contains/Key = %v/%d, want true/7", h.Contains(2), h.Key(2))
	}
	h.Pop()
	if h.Contains(2) {
		t.Error("Contains(2) after Pop")
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	for i := int32(0); i < 5; i++ {
		h.Push(i, i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	for i := int32(0); i < 5; i++ {
		if h.Contains(i) {
			t.Errorf("Contains(%d) after Reset", i)
		}
	}
	h.Push(3, 1)
	if item, key := h.Pop(); item != 3 || key != 1 {
		t.Errorf("Pop after Reset = (%d,%d), want (3,1)", item, key)
	}
}

// TestHeapProperty: random workloads of pushes and decrease-keys always pop
// in non-decreasing key order, matching a reference sort.
func TestHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		h := New(n)
		best := make(map[int32]int32)
		ops := 3 * n
		for i := 0; i < ops; i++ {
			item := int32(rng.Intn(n))
			key := int32(rng.Intn(1000))
			h.Push(item, key)
			if old, ok := best[item]; !ok || key < old {
				best[item] = key
			}
		}
		var want []int32
		for _, k := range best {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int32
		seen := make(map[int32]bool)
		for h.Len() > 0 {
			item, key := h.Pop()
			if seen[item] {
				return false // duplicate pop
			}
			seen[item] = true
			if key != best[item] {
				return false // popped key must be the minimum pushed
			}
			got = append(got, key)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
