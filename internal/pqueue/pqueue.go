// Package pqueue implements an indexed binary min-heap keyed by int32
// priorities, specialized for Dijkstra-style graph searches over dense
// int32 vertex ids.
package pqueue

// IndexedHeap is a min-heap over items 0..n-1 with int32 keys supporting
// DecreaseKey. The zero value is not usable; call New.
type IndexedHeap struct {
	keys []int32 // key per item id; valid while item is queued
	heap []int32 // item ids in heap order
	pos  []int32 // pos[item] = index in heap, -1 if absent
}

// New returns a heap supporting item ids in [0, n).
func New(n int) *IndexedHeap {
	h := &IndexedHeap{
		keys: make([]int32, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of queued items.
func (h *IndexedHeap) Len() int { return len(h.heap) }

// Contains reports whether item is currently queued.
func (h *IndexedHeap) Contains(item int32) bool { return h.pos[item] >= 0 }

// Key returns the current key of a queued item. The result is undefined for
// items not in the heap.
func (h *IndexedHeap) Key(item int32) int32 { return h.keys[item] }

// Push inserts item with the given key, or decreases its key if it is
// already queued with a larger key. Pushing a queued item with a larger key
// is a no-op. This is the standard "lazy decrease" Dijkstra primitive.
func (h *IndexedHeap) Push(item int32, key int32) {
	if p := h.pos[item]; p >= 0 {
		if key < h.keys[item] {
			h.keys[item] = key
			h.up(int(p))
		}
		return
	}
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, item)
	h.up(len(h.heap) - 1)
}

// Peek returns the item with minimum key without removing it. It must not
// be called on an empty heap.
func (h *IndexedHeap) Peek() (item int32, key int32) {
	item = h.heap[0]
	return item, h.keys[item]
}

// Pop removes and returns the item with minimum key.
func (h *IndexedHeap) Pop() (item int32, key int32) {
	item = h.heap[0]
	key = h.keys[item]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// Reset empties the heap for reuse without reallocating.
func (h *IndexedHeap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

func (h *IndexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *IndexedHeap) less(i, j int) bool {
	return h.keys[h.heap[i]] < h.keys[h.heap[j]]
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
