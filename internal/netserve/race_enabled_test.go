//go:build race

package netserve

// raceEnabled reports whether the race detector is compiled in (see
// the server package's note on race-mode sync.Pool behavior).
const raceEnabled = true
