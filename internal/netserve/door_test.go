package netserve

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/server"
	"hublab/internal/wire"
)

func buildIndex(t testing.TB, n, m int, seed int64) (*graph.Graph, *index.HubLabels) {
	t.Helper()
	g, err := gen.Gnm(n, m, seed)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	idx, err := index.NewHubLabels(g)
	if err != nil {
		t.Fatalf("NewHubLabels: %v", err)
	}
	return g, idx
}

// startDoor runs a door for srv on a loopback listener and returns its
// address. Cleaned up with the test.
func startDoor(t testing.TB, srv *server.Server, opts Options) (*Door, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	d := New(srv, opts)
	go func() { _ = d.Serve(ln) }()
	t.Cleanup(d.Close)
	return d, ln.Addr().String()
}

type testConn struct {
	c   net.Conn
	br  *bufio.Reader
	buf []byte
}

func dialDoor(t testing.TB, addr string) *testConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return &testConn{c: c, br: bufio.NewReader(c)}
}

// roundTrip sends one request frame and decodes the reply.
func (tc *testConn) roundTrip(t testing.TB, id uint64, qs []wire.Query) []wire.Result {
	t.Helper()
	frame, err := wire.AppendRequest(nil, id, qs)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	kind, payload, err := wire.ReadFrame(tc.br, &tc.buf, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if kind != wire.FrameReply {
		t.Fatalf("reply kind = %d", kind)
	}
	kinds := make([]uint8, len(qs))
	for i := range qs {
		kinds[i] = qs[i].Kind
	}
	gotID, rs, err := wire.ParseReply(payload, kinds, nil)
	if err != nil {
		t.Fatalf("ParseReply: %v", err)
	}
	if gotID != id {
		t.Fatalf("reply id = %d, want %d", gotID, id)
	}
	return rs
}

// TestDoorAnswersMatchInProcess drives distance, path and eccentricity
// frames through a real loopback connection and checks every answer
// byte-identical to the in-process doors.
func TestDoorAnswersMatchInProcess(t *testing.T) {
	_, idx := buildIndex(t, 200, 380, 3)
	srv := server.New(idx, server.Options{Shards: 2})
	defer srv.Close()
	_, addr := startDoor(t, srv, Options{})
	tc := dialDoor(t, addr)

	// Mixed batch: distances, a path, an eccentricity.
	qs := []wire.Query{
		{Kind: wire.QDist, U: 3, V: 177},
		{Kind: wire.QDist, U: 0, V: 0},
		{Kind: wire.QPath, U: 5, V: 55},
		{Kind: wire.QEcc, U: 9},
		{Kind: wire.QDist, U: 198, V: 2},
	}
	rs := tc.roundTrip(t, 1, qs)
	for i, r := range rs {
		if r.Status != wire.StatusOK {
			t.Fatalf("slot %d: status %d", i, r.Status)
		}
	}
	for _, i := range []int{0, 1, 4} {
		want, err := srv.TryQuery("inproc", qs[i].U, qs[i].V)
		if err != nil {
			t.Fatal(err)
		}
		if rs[i].Dist != want {
			t.Fatalf("dist(%d,%d) = %d over the wire, %d in process", qs[i].U, qs[i].V, rs[i].Dist, want)
		}
	}
	wantPath, err := srv.TryPath("inproc", 5, 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[2].Path) != len(wantPath) {
		t.Fatalf("path length %d over the wire, %d in process", len(rs[2].Path), len(wantPath))
	}
	for i := range wantPath {
		if rs[2].Path[i] != wantPath[i] {
			t.Fatalf("path vertex %d: %d vs %d", i, rs[2].Path[i], wantPath[i])
		}
	}
	wantFar, wantEcc, err := srv.TryFarthest("inproc", 9)
	if err != nil {
		t.Fatal(err)
	}
	if rs[3].Dist != wantEcc || rs[3].Far != wantFar {
		t.Fatalf("ecc(9) = (%d,%d) over the wire, (%d,%d) in process", rs[3].Dist, rs[3].Far, wantEcc, wantFar)
	}

	// An all-distance frame (the batched fast path) on a second frame of
	// the same connection.
	big := make([]wire.Query, 32)
	for i := range big {
		big[i] = wire.Query{Kind: wire.QDist, U: graph.NodeID(i), V: graph.NodeID(199 - i)}
	}
	rs = tc.roundTrip(t, 2, big)
	for i := range big {
		want, _ := srv.TryQuery("inproc", big[i].U, big[i].V)
		if rs[i].Status != wire.StatusOK || rs[i].Dist != want {
			t.Fatalf("batched slot %d: status %d dist %d want %d", i, rs[i].Status, rs[i].Dist, want)
		}
	}

	// Out-of-range path/ecc queries answer StatusBadRequest, not a hang
	// or a panic.
	rs = tc.roundTrip(t, 3, []wire.Query{{Kind: wire.QPath, U: 5000, V: 1}, {Kind: wire.QEcc, U: 5000}})
	for i, r := range rs {
		if r.Status != wire.StatusBadRequest {
			t.Fatalf("out-of-range slot %d: status %d", i, r.Status)
		}
	}
}

// TestDoorHello checks that a hello frame renames the connection's
// admission identity: a flooder name carried over hello is shed even
// though the TCP peer is just 127.0.0.1.
func TestDoorHello(t *testing.T) {
	_, idx := buildIndex(t, 100, 200, 5)
	srv := server.New(idx, server.Options{
		Shards:    1,
		Admission: &flowctl.Options{MaxDrop: 1, Inc: 1},
	})
	defer srv.Close()
	srv.AdmissionController().OnQueueFull("flooder")
	_, addr := startDoor(t, srv, Options{})

	tc := dialDoor(t, addr)
	hello, err := wire.AppendHello(nil, "flooder")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Write(hello); err != nil {
		t.Fatal(err)
	}
	rs := tc.roundTrip(t, 1, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}})
	if rs[0].Status != wire.StatusOverloaded {
		t.Fatalf("flooder status = %d, want StatusOverloaded", rs[0].Status)
	}
	// A second connection without the hello is the default loopback
	// identity and sails through.
	tc2 := dialDoor(t, addr)
	rs = tc2.roundTrip(t, 1, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}})
	if rs[0].Status != wire.StatusOK {
		t.Fatalf("default identity status = %d, want OK", rs[0].Status)
	}
}

// TestDoorHostileInput checks that protocol garbage closes the
// connection with a deterministic error and a BadFrames count, and the
// door keeps serving new connections.
func TestDoorHostileInput(t *testing.T) {
	_, idx := buildIndex(t, 50, 100, 7)
	srv := server.New(idx, server.Options{Shards: 1})
	defer srv.Close()
	d, addr := startDoor(t, srv, Options{MaxFrame: 1 << 12})

	for _, hostile := range [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		// Valid header, forged huge length.
		{'h', 'W', wire.Version, wire.FrameRequest, 0xff, 0xff, 0xff, 0x7f},
	} {
		tc := dialDoor(t, addr)
		if _, err := tc.c.Write(hostile); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.br.ReadByte(); err != io.EOF {
			t.Fatalf("hostile conn not closed: %v", err)
		}
	}
	if st := d.Stats(); st.BadFrames < 3 {
		t.Fatalf("BadFrames = %d, want ≥3", st.BadFrames)
	}
	tc := dialDoor(t, addr)
	rs := tc.roundTrip(t, 1, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}})
	if rs[0].Status != wire.StatusOK {
		t.Fatalf("door wedged after hostile input: status %d", rs[0].Status)
	}
}

// TestDoorKill severs live connections abruptly (the chaos hook) and
// checks the next read fails fast while fresh connections keep being
// served.
func TestDoorKill(t *testing.T) {
	_, idx := buildIndex(t, 50, 100, 9)
	srv := server.New(idx, server.Options{Shards: 1})
	defer srv.Close()
	d, addr := startDoor(t, srv, Options{})
	tc := dialDoor(t, addr)
	if rs := tc.roundTrip(t, 1, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}}); rs[0].Status != wire.StatusOK {
		t.Fatal("warmup query failed")
	}
	d.Kill()
	frame, _ := wire.AppendRequest(nil, 2, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}})
	tc.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, _ = tc.c.Write(frame)
	if _, _, err := wire.ReadFrame(tc.br, &tc.buf, 0); err == nil {
		t.Fatal("killed connection still answering")
	}
	tc2 := dialDoor(t, addr)
	if rs := tc2.roundTrip(t, 3, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}}); rs[0].Status != wire.StatusOK {
		t.Fatal("door not serving after Kill")
	}
}

// TestDoorShedZeroAlloc pins satellite (e) for the binary door: a frame
// that admission sheds entirely is answered without a single heap
// allocation — no envelopes, no reply buffers, nothing.
func TestDoorShedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation counts are meaningless")
	}
	_, idx := buildIndex(t, 50, 100, 11)
	srv := server.New(idx, server.Options{
		Shards:    1,
		Admission: &flowctl.Options{MaxDrop: 1, Inc: 1},
	})
	defer srv.Close()
	srv.AdmissionController().OnQueueFull("flooder")
	d := New(srv, Options{})
	st := &connState{client: "flooder"}
	qs := make([]wire.Query, 16)
	for i := range qs {
		qs[i] = wire.Query{Kind: wire.QDist, U: 1, V: 2}
	}
	reqFrame, err := wire.AppendRequest(nil, 1, qs)
	if err != nil {
		t.Fatal(err)
	}
	payload := reqFrame[8:]
	serveFrame := func() {
		id, parsed, err := wire.ParseRequest(payload, st.qs[:0])
		if err != nil {
			t.Fatal(err)
		}
		st.qs = parsed
		d.answer(st, id, parsed)
		frame, err := wire.AppendReply(st.reply[:0], id, st.rs)
		if err != nil {
			t.Fatal(err)
		}
		st.reply = frame
	}
	serveFrame() // warm the scratch buffers
	for _, r := range st.rs {
		if r.Status != wire.StatusOverloaded {
			t.Fatalf("expected full shed, got status %d", r.Status)
		}
	}
	if allocs := testing.AllocsPerRun(200, serveFrame); allocs != 0 {
		t.Errorf("shed frame allocates %.1f/op, want 0", allocs)
	}
	// The served (non-shed) steady state is allocation-free too.
	st2 := &connState{client: "polite"}
	serve2 := func() {
		id, parsed, err := wire.ParseRequest(payload, st2.qs[:0])
		if err != nil {
			t.Fatal(err)
		}
		st2.qs = parsed
		d.answer(st2, id, parsed)
		frame, err := wire.AppendReply(st2.reply[:0], id, st2.rs)
		if err != nil {
			t.Fatal(err)
		}
		st2.reply = frame
	}
	serve2()
	if allocs := testing.AllocsPerRun(200, serve2); allocs != 0 {
		t.Errorf("served frame allocates %.1f/op, want 0", allocs)
	}
}

// TestGossipSharesShedState wires two nodes' controllers together with
// a Gossiper and checks the fleet property end to end: a flooder
// saturated on node A is shed on node B, which it never flooded, while
// a polite client stays admitted on both.
func TestGossipSharesShedState(t *testing.T) {
	_, idx := buildIndex(t, 50, 100, 13)
	admission := &flowctl.Options{Seed: 99, MaxDrop: 1, Inc: 1}
	srvA := server.New(idx, server.Options{Shards: 1, Admission: admission})
	defer srvA.Close()
	srvB := server.New(idx, server.Options{Shards: 1, Admission: admission})
	defer srvB.Close()
	_, addrB := startDoor(t, srvB, Options{})

	// Saturate the flooder on A only.
	for i := 0; i < 50; i++ {
		srvA.AdmissionController().OnQueueFull("flooder")
	}
	g := NewGossiper(srvA.AdmissionController(), []string{addrB}, 50*time.Millisecond)
	g.Tick()
	// The door merges on its reader goroutine; poll until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for srvB.AdmissionController().Probability("flooder") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("flooder probability on B = %v after gossip, want 1",
				srvB.AdmissionController().Probability("flooder"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p := srvB.AdmissionController().Probability("polite"); p != 0 {
		t.Fatalf("gossip throttled an innocent flow on B: %v", p)
	}
	// B now rejects the flooder at its own door.
	tc := dialDoor(t, addrB)
	hello, _ := wire.AppendHello(nil, "flooder")
	if _, err := tc.c.Write(hello); err != nil {
		t.Fatal(err)
	}
	rs := tc.roundTrip(t, 1, []wire.Query{{Kind: wire.QDist, U: 1, V: 2}})
	if rs[0].Status != wire.StatusOverloaded {
		t.Fatalf("flooder not shed on B: status %d", rs[0].Status)
	}
	if sent, failed := g.Stats(); sent == 0 || failed != 0 {
		t.Fatalf("gossiper stats sent=%d failed=%d", sent, failed)
	}
}

// TestGossipShapeMismatch checks that a gossip frame from a controller
// with a different seed is rejected as a protocol violation instead of
// corrupting local admission state.
func TestGossipShapeMismatch(t *testing.T) {
	_, idx := buildIndex(t, 50, 100, 15)
	srv := server.New(idx, server.Options{Shards: 1, Admission: &flowctl.Options{Seed: 1}})
	defer srv.Close()
	d, addr := startDoor(t, srv, Options{})
	tc := dialDoor(t, addr)
	frame, err := wire.AppendGossip(nil, 2 /* wrong seed */, 3, 256, []wire.GossipEntry{{Bucket: 0, Prob: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.br.ReadByte(); err != io.EOF {
		t.Fatalf("mismatched gossip conn not closed: %v", err)
	}
	if st := d.Stats(); st.BadFrames != 1 {
		t.Fatalf("BadFrames = %d, want 1", st.BadFrames)
	}
	if st := d.Stats(); st.GossipMerged != 0 {
		t.Fatalf("GossipMerged = %d, want 0", st.GossipMerged)
	}
}

// TestDoorPipelinedFrames writes several request frames back to back
// before reading, and checks the replies come back in order with
// matching ids.
func TestDoorPipelinedFrames(t *testing.T) {
	_, idx := buildIndex(t, 100, 200, 17)
	srv := server.New(idx, server.Options{Shards: 2})
	defer srv.Close()
	_, addr := startDoor(t, srv, Options{})
	tc := dialDoor(t, addr)
	var out bytes.Buffer
	const frames = 20
	for id := uint64(1); id <= frames; id++ {
		frame, err := wire.AppendRequest(nil, id, []wire.Query{{Kind: wire.QDist, U: graph.NodeID(id), V: graph.NodeID(id + 3)}})
		if err != nil {
			t.Fatal(err)
		}
		out.Write(frame)
	}
	if _, err := tc.c.Write(out.Bytes()); err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= frames; id++ {
		kind, payload, err := wire.ReadFrame(tc.br, &tc.buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		if kind != wire.FrameReply {
			t.Fatalf("frame %d: kind %d", id, kind)
		}
		gotID, rs, err := wire.ParseReply(payload, []uint8{wire.QDist}, nil)
		if err != nil || gotID != id || rs[0].Status != wire.StatusOK {
			t.Fatalf("frame %d: id=%d err=%v", id, gotID, err)
		}
	}
}
