package netserve

import (
	"net"
	"sync"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/wire"
)

// Gossiper periodically ships the local admission controller's bucket
// state to a static set of peer binary doors. Each round sends the
// buckets that rose since the last successful round (the deltas); every
// refreshEvery-th round sends all nonzero buckets instead, so a peer
// that restarted — or a round lost to a dropped connection — heals
// without any acknowledgement protocol. Max-merge on the receiving side
// makes resends idempotent and ordering irrelevant.
type Gossiper struct {
	ctl   *flowctl.Controller
	peers []string
	every time.Duration

	mu      sync.Mutex
	conns   map[string]net.Conn
	cur     []uint32
	last    []uint32
	entries []wire.GossipEntry
	buf     []byte
	round   int

	sent   uint64
	failed uint64
}

// refreshEvery is the cadence of full-state rounds (see type comment).
const refreshEvery = 10

// NewGossiper returns a gossiper that ships ctl's state to the peer
// addresses (host:port of their binary doors). It dials lazily and
// re-dials dropped peers on the next round.
func NewGossiper(ctl *flowctl.Controller, peers []string, every time.Duration) *Gossiper {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &Gossiper{
		ctl:   ctl,
		peers: peers,
		every: every,
		conns: make(map[string]net.Conn),
		last:  make([]uint32, ctl.Levels()*ctl.Buckets()),
	}
}

// Run gossips until stop closes, then hangs up on every peer.
func (g *Gossiper) Run(stop <-chan struct{}) {
	t := time.NewTicker(g.every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			g.mu.Lock()
			for addr, c := range g.conns {
				c.Close()
				delete(g.conns, addr)
			}
			g.mu.Unlock()
			return
		case <-t.C:
			g.Tick()
		}
	}
}

// Tick runs one gossip round: snapshot, diff, send. Exported so tests
// and single-shot tools can drive rounds without the ticker.
func (g *Gossiper) Tick() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur = g.ctl.Snapshot(g.cur[:0])
	full := g.round%refreshEvery == 0
	g.round++
	g.entries = g.entries[:0]
	for i, p := range g.cur {
		if p == 0 {
			continue
		}
		if full || p > g.last[i] {
			g.entries = append(g.entries, wire.GossipEntry{Bucket: uint32(i), Prob: p})
		}
	}
	if len(g.entries) == 0 {
		return
	}
	frame, err := wire.AppendGossip(g.buf[:0], g.ctl.Seed(), g.ctl.Levels(), g.ctl.Buckets(), g.entries)
	if err != nil {
		return // impossible for a well-shaped controller; drop the round
	}
	g.buf = frame
	delivered := false
	for _, addr := range g.peers {
		c := g.conns[addr]
		if c == nil {
			c, err = net.DialTimeout("tcp", addr, g.every)
			if err != nil {
				g.failed++
				continue
			}
			g.conns[addr] = c
		}
		c.SetWriteDeadline(time.Now().Add(g.every))
		if _, err := c.Write(frame); err != nil {
			c.Close()
			delete(g.conns, addr)
			g.failed++
			continue
		}
		delivered = true
		g.sent++
	}
	if delivered {
		copy(g.last, g.cur)
	}
}

// Stats reports gossip rounds delivered per peer-send and send
// failures (dial errors, write errors).
func (g *Gossiper) Stats() (sent, failed uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sent, g.failed
}
