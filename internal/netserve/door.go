// Package netserve is the binary network door of the serving layer: it
// speaks the internal/wire batch protocol over TCP (or any
// net.Listener) and rides the existing server.Server machinery — shard
// queues, fair admission, deadlines, hot cache — without adding any
// queueing of its own. One goroutine per connection reads a frame,
// answers it against the server, and writes one reply frame; batching
// lives inside the frame (up to wire.MaxBatch queries), so throughput
// scales with batch size while the per-connection state stays a pair of
// reused buffers.
//
// The door is also the fleet's gossip sink: FrameGossip frames from
// peer replicas merge remote flowctl bucket state into the local
// admission controller (max-merge, see flowctl.MergeMax), so a flooder
// shed elsewhere is shed here before it costs a queue slot.
package netserve

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/server"
	"hublab/internal/wire"
)

// Options tunes a Door.
type Options struct {
	// MaxFrame bounds accepted frame payloads (default
	// wire.DefaultMaxFrame). Oversized frames close the connection.
	MaxFrame int
}

// Door accepts wire-protocol connections against one server.
type Door struct {
	srv      *server.Server
	ctl      *flowctl.Controller
	maxFrame int

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	frames       atomic.Uint64
	queries      atomic.Uint64
	badFrames    atomic.Uint64
	gossipMerged atomic.Uint64
}

// Stats is a point-in-time view of door traffic.
type Stats struct {
	// Frames counts request frames answered; Queries the queries inside
	// them.
	Frames, Queries uint64
	// BadFrames counts connections dropped for protocol violations.
	BadFrames uint64
	// GossipMerged counts gossip entries that raised a local admission
	// bucket.
	GossipMerged uint64
	// Conns is the number of currently open connections.
	Conns int
}

// New returns a door serving srv. The door shares the server's
// admission controller (if any): request frames consult it through the
// normal Try* doors, and incoming gossip merges into it.
func New(srv *server.Server, opts Options) *Door {
	maxFrame := opts.MaxFrame
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	return &Door{
		srv:      srv,
		ctl:      srv.AdmissionController(),
		maxFrame: maxFrame,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close. It owns ln and always
// returns a non-nil error (net.ErrClosed after a clean Close).
func (d *Door) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	d.ln = ln
	d.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		d.conns[c] = struct{}{}
		d.wg.Add(1)
		d.mu.Unlock()
		go d.serveConn(c)
	}
}

// Close stops accepting, closes every open connection, and waits for
// the connection goroutines to drain. Safe to call more than once.
func (d *Door) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	ln := d.ln
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	d.wg.Wait()
}

// Kill abruptly closes every open connection (the listener keeps
// accepting) — the chaos hook that simulates a replica dropping its
// clients mid-batch without a graceful shutdown.
func (d *Door) Kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for c := range d.conns {
		c.Close()
	}
}

// Stats returns the door's traffic counters.
func (d *Door) Stats() Stats {
	d.mu.Lock()
	conns := len(d.conns)
	d.mu.Unlock()
	return Stats{
		Frames:       d.frames.Load(),
		Queries:      d.queries.Load(),
		BadFrames:    d.badFrames.Load(),
		GossipMerged: d.gossipMerged.Load(),
		Conns:        conns,
	}
}

// connState is the per-connection scratch: every buffer is reused
// across frames, so a connection serving any number of batches settles
// into zero allocations per frame — including frames that are entirely
// shed by admission.
type connState struct {
	client  string // admission identity: remote host until a hello renames it
	payload []byte
	reply   []byte
	qs      []wire.Query
	rs      []wire.Result
	pairs   [][2]graph.NodeID
	out     []graph.Weight
	errs    []error
	gossip  []wire.GossipEntry
}

func (d *Door) serveConn(c net.Conn) {
	defer d.wg.Done()
	defer func() {
		d.mu.Lock()
		delete(d.conns, c)
		d.mu.Unlock()
		c.Close()
	}()
	st := &connState{client: remoteHost(c)}
	br := bufio.NewReaderSize(c, 32<<10)
	bw := bufio.NewWriterSize(c, 32<<10)
	for {
		kind, payload, err := wire.ReadFrame(br, &st.payload, d.maxFrame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				d.badFrames.Add(1)
			}
			return
		}
		switch kind {
		case wire.FrameHello:
			name, err := wire.ParseHello(payload)
			if err != nil {
				d.badFrames.Add(1)
				return
			}
			if name != "" {
				st.client = name
			}
		case wire.FrameGossip:
			if !d.mergeGossip(st, payload) {
				d.badFrames.Add(1)
				return
			}
		case wire.FrameRequest:
			id, qs, err := wire.ParseRequest(payload, st.qs[:0])
			if err != nil {
				d.badFrames.Add(1)
				return
			}
			st.qs = qs
			d.frames.Add(1)
			d.queries.Add(uint64(len(qs)))
			d.answer(st, id, qs)
			frame, err := wire.AppendReply(st.reply[:0], id, st.rs)
			if err != nil {
				// Only possible for an over-long path; drop the
				// connection rather than desync the stream.
				d.badFrames.Add(1)
				return
			}
			st.reply = frame
			if _, err := bw.Write(frame); err != nil {
				return
			}
			if br.Buffered() > 0 {
				continue // more pipelined frames queued; flush once drained
			}
			if err := bw.Flush(); err != nil {
				return
			}
		default:
			// ParseReply-only kinds (FrameReply) are client-bound;
			// receiving one here is a protocol violation.
			d.badFrames.Add(1)
			return
		}
	}
}

// answer resolves one request frame into st.rs, reusing its storage.
// All-distance frames of more than one query take the batched queue
// door so shard coalescing engages across the frame.
func (d *Door) answer(st *connState, id uint64, qs []wire.Query) {
	if cap(st.rs) < len(qs) {
		st.rs = make([]wire.Result, len(qs))
		st.pairs = make([][2]graph.NodeID, len(qs))
		st.out = make([]graph.Weight, len(qs))
		st.errs = make([]error, len(qs))
	}
	st.rs = st.rs[:len(qs)]
	allDist := true
	for i := range qs {
		if qs[i].Kind != wire.QDist {
			allDist = false
			break
		}
	}
	if allDist && len(qs) > 1 {
		pairs, out, errs := st.pairs[:len(qs)], st.out[:len(qs)], st.errs[:len(qs)]
		for i := range qs {
			pairs[i] = [2]graph.NodeID{qs[i].U, qs[i].V}
		}
		d.srv.TryQueryBatch(st.client, pairs, out, errs)
		for i := range qs {
			st.rs[i] = wire.Result{Kind: wire.QDist, Status: statusFor(errs[i]), Dist: out[i], Far: -1}
		}
		return
	}
	n := graph.NodeID(d.srv.Meta().Vertices)
	for i := range qs {
		st.rs[i] = d.answerOne(st, qs[i], n, i)
	}
}

// answerOne resolves a single query of any kind. Path and eccentricity
// queries validate their vertices against the served snapshot first —
// distance queries need not (out-of-range answers Infinity by index
// contract), but a path backend is entitled to in-range input.
func (d *Door) answerOne(st *connState, q wire.Query, n graph.NodeID, slot int) wire.Result {
	r := wire.Result{Kind: q.Kind, Status: wire.StatusOK, Dist: graph.Infinity, Far: -1}
	switch q.Kind {
	case wire.QDist:
		dist, err := d.srv.TryQuery(st.client, q.U, q.V)
		r.Dist, r.Status = dist, statusFor(err)
	case wire.QPath:
		if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
			r.Status = wire.StatusBadRequest
			return r
		}
		// Reuse the previous frame's path storage at this slot.
		var dst []graph.NodeID
		if slot < cap(st.rs) {
			dst = st.rs[:cap(st.rs)][slot].Path[:0]
		}
		path, err := d.srv.TryPath(st.client, q.U, q.V, dst)
		r.Path, r.Status = path, statusFor(err)
	case wire.QEcc:
		if q.U < 0 || q.U >= n {
			r.Status = wire.StatusBadRequest
			return r
		}
		far, ecc, err := d.srv.TryFarthest(st.client, q.U)
		r.Far, r.Dist, r.Status = far, ecc, statusFor(err)
	}
	return r
}

// mergeGossip folds a peer's bucket deltas into the local admission
// controller. Frames whose controller shape or seed disagree with ours
// are protocol violations — merging across hash geometries would
// throttle unrelated flows.
func (d *Door) mergeGossip(st *connState, payload []byte) bool {
	seed, levels, buckets, entries, err := wire.ParseGossip(payload, st.gossip[:0])
	if err != nil {
		return false
	}
	st.gossip = entries
	if d.ctl == nil {
		return true // no controller: gossip is valid but moot
	}
	if seed != d.ctl.Seed() || levels != d.ctl.Levels() || buckets != d.ctl.Buckets() {
		return false
	}
	for _, e := range entries {
		changed, err := d.ctl.MergeMax(int(e.Bucket), e.Prob)
		if err != nil {
			return false
		}
		if changed {
			d.gossipMerged.Add(1)
		}
	}
	return true
}

// statusFor maps the server error taxonomy onto wire status codes.
func statusFor(err error) uint8 {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, server.ErrOverloaded):
		return wire.StatusOverloaded
	case errors.Is(err, server.ErrTimeout):
		return wire.StatusTimeout
	case errors.Is(err, server.ErrBackendFault):
		return wire.StatusBackendFault
	case errors.Is(err, server.ErrUnsupported), errors.Is(err, hub.ErrNoParents):
		return wire.StatusUnsupported
	case errors.Is(err, server.ErrClosed):
		return wire.StatusClosed
	default:
		return wire.StatusInternal
	}
}

// remoteHost is the fallback admission identity of a connection that
// never sent a hello: the remote address without the ephemeral port,
// so reconnecting does not reset a flow's admission state.
func remoteHost(c net.Conn) string {
	addr := c.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}
