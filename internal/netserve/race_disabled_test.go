//go:build !race

package netserve

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
