// Package sumindex implements the Sum-Index simultaneous-messages problem
// (Definition 1.5) and the paper's reduction from distance labeling
// (Theorem 1.6): Alice and Bob share a bit string S of length m and hold
// private indices a and b; each sends one message to a referee who must
// output S[(a+b) mod m].
//
// The graph protocol realizes the reduction concretely: both players build
// the graph G'_{b,ℓ} — the layered graph H_{b,ℓ} with every level-ℓ vertex
// v_{ℓ,y} removed when S[repr(y)] = 0 — compute the same deterministic
// distance labeling, and send the label of v_{0,2x} (Alice) and v_{2ℓ,2z}
// (Bob), where x and z are the (s/2)-ary digit vectors of a and b. The
// referee decodes the distance and compares it against the Lemma 2.2
// closed form: equality certifies that the midpoint v_{ℓ,x+z} is present,
// i.e. S[(a+b) mod m] = 1 (Observation 3.1).
package sumindex

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/lbound"
	"hublab/internal/pll"
)

var (
	// ErrBadParam reports invalid parameters.
	ErrBadParam = errors.New("sumindex: invalid parameter")
	// ErrBadMessage reports an undecodable protocol message.
	ErrBadMessage = errors.New("sumindex: malformed message")
)

// Instance is a shared Sum-Index input: M bits of S.
type Instance struct {
	S []byte // bit i of S is S[i/8]>>(7-i%8)&1
	M int
}

// NewInstance wraps a bit string of length m.
func NewInstance(bits []bool) Instance {
	data := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			data[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return Instance{S: data, M: len(bits)}
}

// Bit returns S[i].
func (in Instance) Bit(i int) byte {
	return in.S[i/8] >> (7 - uint(i%8)) & 1
}

// Transcript records one protocol execution.
type Transcript struct {
	// AliceBits and BobBits are the message sizes in bits (index included).
	AliceBits, BobBits int
	// Output is the referee's answer.
	Output byte
}

// Trivial runs the trivial protocol: Alice sends S and a, Bob sends b; the
// referee reads the bit directly. Message sizes m+log m and log m.
func Trivial(in Instance, a, b int) (Transcript, error) {
	if a < 0 || a >= in.M || b < 0 || b >= in.M {
		return Transcript{}, fmt.Errorf("%w: indices (%d,%d) outside [0,%d)", ErrBadParam, a, b, in.M)
	}
	idxBits := bitsFor(in.M)
	return Transcript{
		AliceBits: in.M + idxBits,
		BobBits:   idxBits,
		Output:    in.Bit((a + b) % in.M),
	}, nil
}

func bitsFor(m int) int {
	bits := 1
	for 1<<uint(bits) < m {
		bits++
	}
	return bits
}

// GraphProtocol is the Theorem 1.6 reduction for parameters (b, ℓ):
// m = (s/2)^ℓ with s = 2^b.
type GraphProtocol struct {
	params lbound.Params
	m      int
}

// NewGraphProtocol validates parameters and returns the protocol
// descriptor.
func NewGraphProtocol(b, l int) (*GraphProtocol, error) {
	p := lbound.Params{B: b, L: l}
	if _, err := lbound.BuildH(p); err != nil {
		return nil, err
	}
	m := 1
	half := p.Side() / 2
	for k := 0; k < l; k++ {
		m *= half
		if m > 1<<20 {
			return nil, fmt.Errorf("%w: m too large", ErrBadParam)
		}
	}
	if m < 2 {
		return nil, fmt.Errorf("%w: m=%d, want ≥ 2 (b ≥ 2 required)", ErrBadParam, m)
	}
	return &GraphProtocol{params: p, m: m}, nil
}

// M returns the Sum-Index length handled by this protocol.
func (gp *GraphProtocol) M() int { return gp.m }

// Params exposes the underlying construction parameters.
func (gp *GraphProtocol) Params() lbound.Params { return gp.params }

// Session holds the shared deterministic state both players compute from S:
// the pruned graph G'_{b,ℓ} (as its weighted H-equivalent) and its distance
// labeling.
type Session struct {
	gp       *GraphProtocol
	h        *lbound.Layered // the full H (for vertex naming)
	pruned   *graph.Graph    // H with W-removed level-ℓ vertices isolated
	labeling *hub.Labeling
	removed  []bool // removed[yIdx] for level-ℓ vectors
}

// NewSession builds the shared state for instance in. Both Alice and Bob
// run exactly this computation, so the labeling is part of the shared
// protocol description, not communication.
func (gp *GraphProtocol) NewSession(in Instance) (*Session, error) {
	if in.M != gp.m {
		return nil, fmt.Errorf("%w: instance has m=%d, protocol needs %d", ErrBadParam, in.M, gp.m)
	}
	h, err := lbound.BuildH(gp.params)
	if err != nil {
		return nil, err
	}
	s := gp.params.Side()
	half := s / 2
	layer := gp.params.LayerSize()
	removed := make([]bool, layer)
	// W(y) = [S_repr(y) = 1]; repr folds the s-ary vector with (s/2)-ary
	// weights mod m.
	for yIdx := 0; yIdx < layer; yIdx++ {
		vec := vectorOf(yIdx, s, gp.params.L)
		if in.Bit(repr(vec, half, gp.m)) == 0 {
			removed[yIdx] = true
		}
	}
	// Rebuild H without edges incident to removed level-ℓ vertices (the
	// vertices stay as isolated ids so the naming is unchanged).
	b := graph.NewBuilder(h.G.NumNodes(), h.G.NumEdges())
	b.Grow(h.G.NumNodes())
	midLevel := gp.params.L
	for _, e := range h.G.Edges() {
		if isRemovedMid(h, e.U, midLevel, removed, layer) ||
			isRemovedMid(h, e.V, midLevel, removed, layer) {
			continue
		}
		b.AddWeightedEdge(e.U, e.V, e.W)
	}
	pruned, err := b.Build()
	if err != nil {
		return nil, err
	}
	labeling, err := pll.Build(pruned, pll.Options{Order: pll.OrderDegree})
	if err != nil {
		return nil, err
	}
	return &Session{gp: gp, h: h, pruned: pruned, labeling: labeling, removed: removed}, nil
}

func isRemovedMid(h *lbound.Layered, v graph.NodeID, midLevel int, removed []bool, layer int) bool {
	if h.LevelOf(v) != midLevel {
		return false
	}
	return removed[int(v)%layer]
}

func vectorOf(idx, s, l int) []int {
	vec := make([]int, l)
	for k := 0; k < l; k++ {
		vec[k] = idx % s
		idx /= s
	}
	return vec
}

// repr folds a (possibly overflowing) digit vector with (s/2)-ary weights
// modulo m.
func repr(vec []int, half, m int) int {
	r := 0
	pow := 1
	for _, d := range vec {
		r = (r + d*pow) % m
		pow = (pow * half) % m
	}
	return r
}

// digits returns the ℓ-digit (s/2)-ary representation of a.
func digits(a, half, l int) []int {
	out := make([]int, l)
	for k := 0; k < l; k++ {
		out[k] = a % half
		a /= half
	}
	return out
}

// Message is one player's simultaneous message: the encoded distance label
// of their graph vertex plus their index.
type Message struct {
	Label   []byte
	BitLen  int
	Index   int
	idxBits int
}

// Bits returns the total message size in bits.
func (m Message) Bits() int { return m.BitLen + m.idxBits }

// AliceMessage builds Alice's message for index a.
func (s *Session) AliceMessage(a int) (Message, error) {
	return s.message(a, 0)
}

// BobMessage builds Bob's message for index b.
func (s *Session) BobMessage(b int) (Message, error) {
	return s.message(b, 2*s.gp.params.L)
}

func (s *Session) message(idx, level int) (Message, error) {
	if idx < 0 || idx >= s.gp.m {
		return Message{}, fmt.Errorf("%w: index %d outside [0,%d)", ErrBadParam, idx, s.gp.m)
	}
	half := s.gp.params.Side() / 2
	vec := digits(idx, half, s.gp.params.L)
	for k := range vec {
		vec[k] *= 2
	}
	v, err := s.h.VertexID(level, vec)
	if err != nil {
		return Message{}, err
	}
	data, bits, err := s.labeling.EncodeLabel(v)
	if err != nil {
		return Message{}, err
	}
	return Message{Label: data, BitLen: bits, Index: idx, idxBits: bitsFor(s.gp.m)}, nil
}

// Referee decodes the answer bit from the two messages alone (plus the
// public protocol parameters): it reconstructs x and z from the indices,
// decodes the distance from the two labels, and compares with the Lemma 2.2
// closed form for the intact graph.
func (gp *GraphProtocol) Referee(alice, bob Message) (byte, error) {
	la, err := hub.DecodeLabel(alice.Label, alice.BitLen)
	if err != nil {
		return 0, fmt.Errorf("%w: alice: %v", ErrBadMessage, err)
	}
	lb, err := hub.DecodeLabel(bob.Label, bob.BitLen)
	if err != nil {
		return 0, fmt.Errorf("%w: bob: %v", ErrBadMessage, err)
	}
	half := gp.params.Side() / 2
	x := digits(alice.Index, half, gp.params.L)
	z := digits(bob.Index, half, gp.params.L)
	// Closed form for the intact H between v_{0,2x} and v_{2ℓ,2z}:
	// 2ℓA + 2Σ(z_k-x_k)².
	want := graph.Weight(2*gp.params.L) * gp.params.BaseWeight()
	for k := 0; k < gp.params.L; k++ {
		d := graph.Weight(z[k] - x[k])
		want += 2 * d * d
	}
	got, ok := hub.MergeQuery(la, lb)
	if ok && got == want {
		return 1, nil
	}
	return 0, nil
}

// Run executes the protocol end to end for indices (a, b).
func (s *Session) Run(a, b int) (Transcript, error) {
	alice, err := s.AliceMessage(a)
	if err != nil {
		return Transcript{}, err
	}
	bob, err := s.BobMessage(b)
	if err != nil {
		return Transcript{}, err
	}
	out, err := s.gp.Referee(alice, bob)
	if err != nil {
		return Transcript{}, err
	}
	return Transcript{AliceBits: alice.Bits(), BobBits: bob.Bits(), Output: out}, nil
}

// VerifyAll checks the protocol output against the true bit for every index
// pair (a, b) ∈ [0,m)². It returns the number of pairs checked and the
// maximum message size observed.
func (s *Session) VerifyAll(in Instance) (pairs, maxBits int, err error) {
	for a := 0; a < s.gp.m; a++ {
		for b := 0; b < s.gp.m; b++ {
			tr, err := s.Run(a, b)
			if err != nil {
				return pairs, maxBits, err
			}
			want := in.Bit((a + b) % s.gp.m)
			if tr.Output != want {
				return pairs, maxBits, fmt.Errorf(
					"sumindex: referee wrong on (a=%d,b=%d): got %d, want %d", a, b, tr.Output, want)
			}
			pairs++
			if tr.AliceBits > maxBits {
				maxBits = tr.AliceBits
			}
			if tr.BobBits > maxBits {
				maxBits = tr.BobBits
			}
		}
	}
	return pairs, maxBits, nil
}
