package sumindex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInstance(m int, seed int64) Instance {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]bool, m)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return NewInstance(bits)
}

func TestInstanceBits(t *testing.T) {
	in := NewInstance([]bool{true, false, true, true, false})
	want := []byte{1, 0, 1, 1, 0}
	for i, w := range want {
		if got := in.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
	if in.M != 5 {
		t.Errorf("M = %d, want 5", in.M)
	}
}

func TestTrivialProtocol(t *testing.T) {
	in := randomInstance(16, 3)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			tr, err := Trivial(in, a, b)
			if err != nil {
				t.Fatalf("Trivial(%d,%d): %v", a, b, err)
			}
			if tr.Output != in.Bit((a+b)%16) {
				t.Errorf("Trivial(%d,%d) = %d, want %d", a, b, tr.Output, in.Bit((a+b)%16))
			}
			if tr.AliceBits != 16+4 || tr.BobBits != 4 {
				t.Errorf("message sizes = (%d,%d), want (20,4)", tr.AliceBits, tr.BobBits)
			}
		}
	}
	if _, err := Trivial(in, -1, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("Trivial(-1,0) err = %v, want ErrBadParam", err)
	}
	if _, err := Trivial(in, 0, 16); !errors.Is(err, ErrBadParam) {
		t.Errorf("Trivial(0,16) err = %v, want ErrBadParam", err)
	}
}

func TestNewGraphProtocol(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	if gp.M() != 4 {
		t.Errorf("M = %d, want (s/2)^ℓ = 4", gp.M())
	}
	gp3, err := NewGraphProtocol(3, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol(3,2): %v", err)
	}
	if gp3.M() != 16 {
		t.Errorf("M = %d, want 16", gp3.M())
	}
	if _, err := NewGraphProtocol(1, 2); !errors.Is(err, ErrBadParam) {
		t.Errorf("b=1 err = %v, want ErrBadParam (m would be 1)", err)
	}
	if _, err := NewGraphProtocol(0, 1); err == nil {
		t.Error("b=0 accepted")
	}
}

// TestGraphProtocolExhaustive is the executable Theorem 1.6: for random
// instances, the referee answers correctly on every (a, b) pair.
func TestGraphProtocolExhaustive(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	for seed := int64(0); seed < 4; seed++ {
		in := randomInstance(gp.M(), seed)
		sess, err := gp.NewSession(in)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		pairs, maxBits, err := sess.VerifyAll(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pairs != gp.M()*gp.M() {
			t.Errorf("checked %d pairs, want %d", pairs, gp.M()*gp.M())
		}
		if maxBits <= 0 {
			t.Errorf("maxBits = %d", maxBits)
		}
	}
}

func TestGraphProtocolAllZerosAllOnes(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	for _, value := range []bool{false, true} {
		bits := make([]bool, gp.M())
		for i := range bits {
			bits[i] = value
		}
		in := NewInstance(bits)
		sess, err := gp.NewSession(in)
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		if _, _, err := sess.VerifyAll(in); err != nil {
			t.Errorf("constant %v instance: %v", value, err)
		}
	}
}

func TestGraphProtocolLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("larger protocol instance")
	}
	gp, err := NewGraphProtocol(3, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	in := randomInstance(gp.M(), 7)
	sess, err := gp.NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, _, err := sess.VerifyAll(in); err != nil {
		t.Error(err)
	}
}

func TestSessionErrors(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	wrong := randomInstance(8, 1) // m mismatch
	if _, err := gp.NewSession(wrong); !errors.Is(err, ErrBadParam) {
		t.Errorf("mismatched instance err = %v, want ErrBadParam", err)
	}
	in := randomInstance(4, 1)
	sess, err := gp.NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := sess.AliceMessage(-1); !errors.Is(err, ErrBadParam) {
		t.Errorf("AliceMessage(-1) err = %v, want ErrBadParam", err)
	}
	if _, err := sess.BobMessage(99); !errors.Is(err, ErrBadParam) {
		t.Errorf("BobMessage(99) err = %v, want ErrBadParam", err)
	}
}

func TestRefereeRejectsGarbage(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	// An empty label stream cannot even encode the count.
	if _, err := gp.Referee(Message{Label: nil, BitLen: 0}, Message{Label: nil, BitLen: 0}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("Referee err = %v, want ErrBadMessage", err)
	}
}

// TestProtocolDeterminism: both players building the session independently
// produce identical messages — required for a simultaneous-message
// protocol with no shared randomness at run time.
func TestProtocolDeterminism(t *testing.T) {
	gp, err := NewGraphProtocol(2, 2)
	if err != nil {
		t.Fatalf("NewGraphProtocol: %v", err)
	}
	in := randomInstance(gp.M(), 11)
	s1, err := gp.NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s2, err := gp.NewSession(in)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for a := 0; a < gp.M(); a++ {
		m1, err := s1.AliceMessage(a)
		if err != nil {
			t.Fatalf("AliceMessage: %v", err)
		}
		m2, err := s2.AliceMessage(a)
		if err != nil {
			t.Fatalf("AliceMessage: %v", err)
		}
		if m1.BitLen != m2.BitLen || string(m1.Label) != string(m2.Label) {
			t.Errorf("index %d: sessions disagree", a)
		}
	}
}

// TestReprFolding: repr(x)+repr(z) ≡ repr(x+z) (mod m) — the identity the
// referee's index arithmetic relies on.
func TestReprFolding(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		half := 2 + rng.Intn(4)
		l := 1 + rng.Intn(3)
		m := 1
		for k := 0; k < l; k++ {
			m *= half
		}
		a := rng.Intn(m)
		b := rng.Intn(m)
		x := digits(a, half, l)
		z := digits(b, half, l)
		sum := make([]int, l)
		for k := range sum {
			sum[k] = x[k] + z[k]
		}
		return repr(sum, half, m) == (a+b)%m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
