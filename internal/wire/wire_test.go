package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"hublab/internal/graph"
)

func readOne(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	var buf []byte
	kind, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), &buf, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return kind, payload
}

func TestRequestRoundTrip(t *testing.T) {
	qs := []Query{
		{Kind: QDist, U: 0, V: 17},
		{Kind: QPath, U: 3, V: 499},
		{Kind: QEcc, U: 42},
		{Kind: QDist, U: math.MaxInt32, V: 0},
	}
	frame, err := AppendRequest(nil, 12345, qs)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload := readOne(t, frame)
	if kind != FrameRequest {
		t.Fatalf("kind = %d", kind)
	}
	id, got, err := ParseRequest(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 12345 {
		t.Fatalf("id = %d", id)
	}
	if len(got) != len(qs) {
		t.Fatalf("got %d queries", len(got))
	}
	for i := range qs {
		want := qs[i]
		if want.Kind == QEcc {
			want.V = 0 // not carried on the wire
		}
		if got[i] != want {
			t.Fatalf("query %d: got %+v want %+v", i, got[i], want)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	kinds := []uint8{QDist, QDist, QPath, QPath, QEcc, QDist}
	rs := []Result{
		{Kind: QDist, Status: StatusOK, Dist: 7},
		{Kind: QDist, Status: StatusOK, Dist: graph.Infinity},
		{Kind: QPath, Status: StatusOK, Path: []graph.NodeID{3, 9, 499}},
		{Kind: QPath, Status: StatusOK, Path: nil}, // unreachable
		{Kind: QEcc, Status: StatusOK, Dist: 11, Far: 64},
		{Kind: QDist, Status: StatusOverloaded},
	}
	frame, err := AppendReply(nil, 99, rs)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload := readOne(t, frame)
	if kind != FrameReply {
		t.Fatalf("kind = %d", kind)
	}
	id, got, err := ParseReply(payload, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 99 {
		t.Fatalf("id = %d", id)
	}
	if len(got) != len(rs) {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Dist != 7 || got[1].Dist != graph.Infinity {
		t.Fatalf("distances: %d, %d", got[0].Dist, got[1].Dist)
	}
	if len(got[2].Path) != 3 || got[2].Path[2] != 499 || len(got[3].Path) != 0 {
		t.Fatalf("paths: %v, %v", got[2].Path, got[3].Path)
	}
	if got[4].Dist != 11 || got[4].Far != 64 {
		t.Fatalf("ecc: %+v", got[4])
	}
	if got[5].Status != StatusOverloaded || !errors.Is(StatusError(got[5].Status), ErrOverloaded) {
		t.Fatalf("status: %+v", got[5])
	}
	// A shed result must carry the unreachable shape, never stale data.
	if got[5].Dist != graph.Infinity || got[5].Far != -1 {
		t.Fatalf("non-OK result leaked payload: %+v", got[5])
	}
}

// TestParseReplyReusesStorage pins the allocation contract: recycling
// the results slice across frames reuses its path storage.
func TestParseReplyReusesStorage(t *testing.T) {
	kinds := []uint8{QPath}
	rs := []Result{{Kind: QPath, Status: StatusOK, Path: []graph.NodeID{1, 2, 3, 4, 5}}}
	frame, err := AppendReply(nil, 1, rs)
	if err != nil {
		t.Fatal(err)
	}
	_, payload := readOne(t, frame)
	out, _, err := func() ([]Result, uint64, error) {
		_, o, e := ParseReply(payload, kinds, rs[:0])
		return o, 0, e
	}()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, o, err := ParseReply(payload, kinds, out[:0])
		if err != nil {
			t.Fatal(err)
		}
		out = o
	})
	if allocs != 0 {
		t.Fatalf("ParseReply with recycled results allocates %.1f/op", allocs)
	}
}

func TestGossipRoundTrip(t *testing.T) {
	entries := []GossipEntry{{Bucket: 0, Prob: 1 << 24}, {Bucket: 767, Prob: 12345}}
	frame, err := AppendGossip(nil, 42, 3, 256, entries)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload := readOne(t, frame)
	if kind != FrameGossip {
		t.Fatalf("kind = %d", kind)
	}
	seed, lv, bk, got, err := ParseGossip(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 || lv != 3 || bk != 256 || len(got) != 2 || got[1] != entries[1] {
		t.Fatalf("got seed=%d %dx%d %v", seed, lv, bk, got)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	frame, err := AppendHello(nil, "flooder-7")
	if err != nil {
		t.Fatal(err)
	}
	kind, payload := readOne(t, frame)
	if kind != FrameHello {
		t.Fatalf("kind = %d", kind)
	}
	name, err := ParseHello(payload)
	if err != nil || name != "flooder-7" {
		t.Fatalf("hello: %q, %v", name, err)
	}
	if _, err := AppendHello(nil, strings.Repeat("x", MaxHello+1)); err == nil {
		t.Fatal("oversized hello accepted")
	}
}

// TestHostileFrames drives the parsers over a catalogue of forged
// inputs; every case must answer a deterministic error, never panic.
func TestHostileFrames(t *testing.T) {
	good, err := AppendRequest(nil, 7, []Query{{Kind: QDist, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      good[:4],
		"bad magic":         append([]byte{'X', 'X'}, good[2:]...),
		"bad version":       append([]byte{magic0, magic1, 99}, good[3:]...),
		"bad kind":          append([]byte{magic0, magic1, Version, 200}, good[4:]...),
		"truncated payload": good[:len(good)-1],
	}
	for name, frame := range cases {
		t.Run(name, func(t *testing.T) {
			var buf []byte
			_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), &buf, 0)
			if err == nil {
				t.Fatal("hostile frame accepted")
			}
		})
	}

	// Forged length: header claims more than the reader's limit.
	forged := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(forged[4:8], 1<<30)
	var buf []byte
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(forged)), &buf, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("forged length: %v", err)
	}

	payloadCases := map[string][]byte{
		"empty":             {},
		"zero count":        {7, 0},
		"huge count":        append([]byte{7}, binary.AppendUvarint(nil, 1<<40)...),
		"truncated query":   {7, 2, QDist, 1, 2},
		"bad query kind":    {7, 1, 99, 1, 2},
		"trailing garbage":  append(mustRequestPayload(t), 0xff),
		"vertex over int32": append([]byte{7, 1, QDist}, binary.AppendUvarint(binary.AppendUvarint(nil, 1<<33), 0)...),
	}
	for name, payload := range payloadCases {
		t.Run("request/"+name, func(t *testing.T) {
			if _, _, err := ParseRequest(payload, nil); !errors.Is(err, ErrMalformed) {
				t.Fatalf("want ErrMalformed, got %v", err)
			}
		})
	}

	// Reply whose declared path length exceeds its backing bytes.
	evil := binary.AppendUvarint(nil, 1)                  // id
	evil = binary.AppendUvarint(evil, 1)                  // count
	evil = append(evil, StatusOK)                         // status
	evil = binary.AppendUvarint(evil, uint64(MaxPathLen)) // forged path length, no vertices
	if _, _, err := ParseReply(evil, []uint8{QPath}, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("forged path length: %v", err)
	}
	// Reply with the wrong result count for its request.
	okReply, err := AppendReply(nil, 1, []Result{{Kind: QDist, Status: StatusOK, Dist: 3}})
	if err != nil {
		t.Fatal(err)
	}
	_, payload := readOne(t, okReply)
	if _, _, err := ParseReply(payload, []uint8{QDist, QDist}, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("count mismatch: %v", err)
	}
}

func mustRequestPayload(t *testing.T) []byte {
	t.Helper()
	frame, err := AppendRequest(nil, 7, []Query{{Kind: QDist, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte{}, frame[headerSize:]...)
}

// TestReadFrameEOFKinds pins the EOF taxonomy transports rely on: a
// clean close between frames is io.EOF, a torn frame is
// io.ErrUnexpectedEOF.
func TestReadFrameEOFKinds(t *testing.T) {
	var buf []byte
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)), &buf, 0); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	frame, _ := AppendRequest(nil, 1, []Query{{Kind: QDist, U: 1, V: 2}})
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:len(frame)-2])), &buf, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn payload: %v", err)
	}
}

// FuzzWireFrame round-trips generator-built frames and hammers every
// parser with mutated bytes: parsers must never panic, and any frame
// our own encoders emit must parse back to what was encoded.
func FuzzWireFrame(f *testing.F) {
	req, _ := AppendRequest(nil, 9, []Query{{Kind: QDist, U: 4, V: 9}, {Kind: QPath, U: 0, V: 3}, {Kind: QEcc, U: 2}})
	rep, _ := AppendReply(nil, 9, []Result{
		{Kind: QDist, Status: StatusOK, Dist: 5},
		{Kind: QPath, Status: StatusOK, Path: []graph.NodeID{0, 1, 3}},
		{Kind: QEcc, Status: StatusTimeout},
	})
	gos, _ := AppendGossip(nil, 1, 3, 256, []GossipEntry{{Bucket: 5, Prob: 99}})
	hel, _ := AppendHello(nil, "fuzz")
	f.Add(req, uint8(0))
	f.Add(rep, uint8(1))
	f.Add(gos, uint8(2))
	f.Add(hel, uint8(3))
	f.Add([]byte{magic0, magic1, Version, FrameRequest, 0xff, 0xff, 0xff, 0x7f}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		var buf []byte
		kind, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)), &buf, 1<<16)
		if err != nil {
			return
		}
		// The payload parsers must tolerate any payload under any kind —
		// a hostile peer controls both bytes independently.
		switch which % 4 {
		case 0:
			if id, qs, err := ParseRequest(payload, nil); err == nil {
				// Round-trip: what parses must re-encode and re-parse
				// identically.
				frame2, err := AppendRequest(nil, id, qs)
				if err != nil {
					t.Fatalf("re-encode of parsed request failed: %v", err)
				}
				_, p2 := mustRead(t, frame2)
				id2, qs2, err := ParseRequest(p2, nil)
				if err != nil || id2 != id || len(qs2) != len(qs) {
					t.Fatalf("request round-trip diverged: %v", err)
				}
				for i := range qs {
					if qs[i] != qs2[i] {
						t.Fatalf("query %d: %+v vs %+v", i, qs[i], qs2[i])
					}
				}
			}
		case 1:
			kinds := []uint8{QDist, QPath, QEcc}
			_, _, _ = ParseReply(payload, kinds[:1+len(payload)%3], nil)
		case 2:
			_, _, _, _, _ = ParseGossip(payload, nil)
		case 3:
			_, _ = ParseHello(payload)
		}
		_ = kind
	})
}

func mustRead(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	var buf []byte
	kind, payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), &buf, 0)
	if err != nil {
		t.Fatalf("ReadFrame of own encoding: %v", err)
	}
	return kind, payload
}
