// Package wire is the compact binary batch protocol of the distributed
// serving layer: the frame format spoken between hubclient and the
// hubserve -binary door (internal/netserve). It exists because the
// per-query HTTP/JSON envelope dominates serving cost under real
// traffic — a hub-label merge answers in ~2-3 µs while an HTTP round
// trip costs tens of µs of parsing, header copying and allocation. The
// wire format amortizes the door: one length-prefixed frame carries a
// whole batch of queries, ids and distances travel as varints, and both
// sides parse into reused buffers, so the steady-state per-query door
// cost is a few bytes of varint work.
//
// Frame layout (all multi-byte integers little-endian or uvarint):
//
//	header (8 bytes): 'h' 'W' | version (1) | kind | payload length (uint32 LE)
//	payload (by kind):
//	  FrameRequest:  uvarint id, uvarint count,
//	                 count × { kind byte (QDist/QPath/QEcc), uvarint u [, uvarint v] }
//	  FrameReply:    uvarint id, uvarint count,
//	                 count × { status byte, status==StatusOK ? per-kind payload : nothing }
//	                 QDist: uvarint distance (graph.Infinity = unreachable)
//	                 QPath: uvarint len, len × uvarint vertex (len 0 = unreachable)
//	                 QEcc:  uvarint eccentricity, uvarint farthest vertex
//	  FrameGossip:   uvarint seed, uvarint levels, uvarint buckets, uvarint count,
//	                 count × { uvarint bucket index, uvarint fixed-point probability }
//	  FrameHello:    uvarint len, len bytes of client identity
//
// A reply echoes its request's frame id and answers the queries in
// request order, so correlation needs no per-query ids. Non-OK statuses
// map the serving error taxonomy (ErrOverloaded / ErrTimeout /
// ErrBackendFault / ErrUnsupported / ErrClosed) one code per error, and
// carry no payload — a shed reply for a 64-query batch is 64 bytes.
//
// Parsing is hostile-input safe by construction: every length is
// bounded before use (MaxFrame, MaxBatch, MaxPathLen, MaxHello), every
// varint is checked for truncation and overflow, vertex ids must fit
// int32, and trailing garbage after a well-formed payload is rejected.
// Malformed input always returns a deterministic error wrapping
// ErrMalformed — never a panic — pinned by FuzzWireFrame.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hublab/internal/graph"
)

// Version is the protocol version in every frame header. A reader
// rejects frames from a different version outright: the format is not
// self-describing beyond the header, so cross-version leniency would
// mean guessing at payload shapes.
const Version = 1

// headerSize is the fixed frame header length.
const headerSize = 8

// Magic bytes opening every frame.
const (
	magic0 = 'h'
	magic1 = 'W'
)

// Frame kinds.
const (
	// FrameRequest carries a batch of queries client → server.
	FrameRequest = 1
	// FrameReply carries the batch's answers server → client.
	FrameReply = 2
	// FrameGossip carries sparse admission-controller bucket deltas
	// between fleet peers (see internal/flowctl); it is one-way and
	// never answered.
	FrameGossip = 3
	// FrameHello names the connection's client identity for admission
	// control; sent once after connect, never answered. Without it the
	// server falls back to the remote host, which cannot tell two
	// processes on one machine apart.
	FrameHello = 4
)

// Query kinds inside a request frame.
const (
	// QDist asks for the exact distance between u and v.
	QDist = 0
	// QPath asks for one shortest u–v path (vertex list).
	QPath = 1
	// QEcc asks for v's eccentricity and a farthest vertex (u carries v;
	// the frame omits the second id).
	QEcc = 2
)

// Reply status codes — the wire image of the serving error taxonomy.
const (
	StatusOK           = 0
	StatusOverloaded   = 1 // server.ErrOverloaded: shed by admission or queue-full
	StatusTimeout      = 2 // server.ErrTimeout: missed the per-query deadline
	StatusBackendFault = 3 // server.ErrBackendFault: contained backend panic
	StatusUnsupported  = 4 // server.ErrUnsupported / hub.ErrNoParents
	StatusClosed       = 5 // server.ErrClosed: replica shutting down
	StatusBadRequest   = 6 // malformed query (vertex out of range)
	StatusInternal     = 7 // any other backend error
	statusMax          = StatusInternal
)

// Size bounds. Every reader rejects input beyond them before touching
// it, so a forged length can never drive an allocation or a loop.
const (
	// DefaultMaxFrame bounds a frame payload unless the reader says
	// otherwise.
	DefaultMaxFrame = 1 << 20
	// MaxBatch bounds the queries (and results) in one frame.
	MaxBatch = 4096
	// MaxPathLen bounds one reply path's vertex count.
	MaxPathLen = 1 << 22
	// MaxHello bounds the client identity string.
	MaxHello = 128
)

// ErrMalformed reports a frame or payload that violates the format:
// bad magic, wrong version, truncated or oversized varints, forged
// counts, trailing garbage. Every parse error wraps it.
var ErrMalformed = errors.New("wire: malformed frame")

// ErrTooLarge reports a frame whose declared payload length exceeds the
// reader's bound. It is distinct from ErrMalformed so transports can
// treat it as a policy violation rather than line noise.
var ErrTooLarge = errors.New("wire: frame exceeds size limit")

// Client-visible errors for the non-OK reply statuses. hubclient
// returns these; they mirror the server-side taxonomy one for one.
var (
	ErrOverloaded   = errors.New("wire: replica overloaded")
	ErrTimeout      = errors.New("wire: query deadline exceeded on replica")
	ErrBackendFault = errors.New("wire: backend fault on replica")
	ErrUnsupported  = errors.New("wire: query kind not supported by the served index")
	ErrClosed       = errors.New("wire: replica shutting down")
	ErrBadRequest   = errors.New("wire: bad query")
	ErrInternal     = errors.New("wire: internal error on replica")
)

// StatusError maps a reply status to its sentinel error (nil for
// StatusOK). Unknown statuses are impossible past ParseReply, which
// rejects them as malformed.
func StatusError(status uint8) error {
	switch status {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return ErrOverloaded
	case StatusTimeout:
		return ErrTimeout
	case StatusBackendFault:
		return ErrBackendFault
	case StatusUnsupported:
		return ErrUnsupported
	case StatusClosed:
		return ErrClosed
	case StatusBadRequest:
		return ErrBadRequest
	default:
		return ErrInternal
	}
}

// Query is one request in a batch frame.
type Query struct {
	// Kind is QDist, QPath or QEcc.
	Kind uint8
	// U and V are the query endpoints; QEcc uses only U.
	U, V graph.NodeID
}

// Result is one answer in a reply frame, in request order.
type Result struct {
	// Kind echoes the request's query kind (needed to encode/decode the
	// per-kind payload; the wire carries it implicitly by position).
	Kind uint8
	// Status is the wire status code; the payload fields below are
	// meaningful only for StatusOK.
	Status uint8
	// Dist is the distance (QDist) or eccentricity (QEcc).
	Dist graph.Weight
	// Far is the farthest vertex (QEcc only).
	Far graph.NodeID
	// Path is the path vertex list (QPath only); empty = unreachable.
	// Parsing appends into the slice the caller passes in, so reusing
	// Result values across frames reuses their path storage.
	Path []graph.NodeID
}

// beginFrame appends a frame header for kind with a zero length to
// patch later, returning the header's offset.
func beginFrame(dst []byte, kind byte) ([]byte, int) {
	start := len(dst)
	return append(dst, magic0, magic1, Version, kind, 0, 0, 0, 0), start
}

// endFrame patches the payload length into the header at start.
func endFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - headerSize
	if n > math.MaxUint32 {
		return dst, fmt.Errorf("%w: %d-byte payload", ErrTooLarge, n)
	}
	binary.LittleEndian.PutUint32(dst[start+4:start+8], uint32(n))
	return dst, nil
}

// AppendRequest appends one request frame carrying id and the queries
// to dst and returns the extended slice. It validates what the peer's
// parser would reject — an oversized batch, a negative vertex id, an
// unknown kind — so a malformed batch fails loudly at the sender.
func AppendRequest(dst []byte, id uint64, qs []Query) ([]byte, error) {
	if len(qs) == 0 || len(qs) > MaxBatch {
		return dst, fmt.Errorf("%w: %d queries in one frame (want 1..%d)", ErrMalformed, len(qs), MaxBatch)
	}
	dst, start := beginFrame(dst, FrameRequest)
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(qs)))
	for i := range qs {
		q := &qs[i]
		if q.Kind > QEcc {
			return dst[:start], fmt.Errorf("%w: query kind %d", ErrMalformed, q.Kind)
		}
		if q.U < 0 || (q.Kind != QEcc && q.V < 0) {
			return dst[:start], fmt.Errorf("%w: negative vertex id", ErrMalformed)
		}
		dst = append(dst, q.Kind)
		dst = binary.AppendUvarint(dst, uint64(q.U))
		if q.Kind != QEcc {
			dst = binary.AppendUvarint(dst, uint64(q.V))
		}
	}
	return endFrame(dst, start)
}

// uvarint decodes one bounded uvarint from p at offset i, returning the
// value and the next offset, or an error on truncation or a value
// beyond max.
func uvarint(p []byte, i int, max uint64) (uint64, int, error) {
	v, n := binary.Uvarint(p[i:])
	if n <= 0 {
		return 0, i, fmt.Errorf("%w: truncated or oversized varint at offset %d", ErrMalformed, i)
	}
	if v > max {
		return 0, i, fmt.Errorf("%w: varint %d exceeds bound %d at offset %d", ErrMalformed, v, max, i)
	}
	return v, i + n, nil
}

// ParseRequest decodes a request frame payload, appending the queries
// to qs (pass qs[:0] of a reused slice for allocation-free parsing in
// steady state). Trailing bytes after the declared batch are rejected.
func ParseRequest(payload []byte, qs []Query) (id uint64, out []Query, err error) {
	id, i, err := uvarint(payload, 0, math.MaxUint64)
	if err != nil {
		return 0, qs, err
	}
	count, i, err := uvarint(payload, i, MaxBatch)
	if err != nil {
		return 0, qs, err
	}
	if count == 0 {
		return 0, qs, fmt.Errorf("%w: empty batch", ErrMalformed)
	}
	for k := uint64(0); k < count; k++ {
		if i >= len(payload) {
			return 0, qs, fmt.Errorf("%w: batch truncated at query %d/%d", ErrMalformed, k, count)
		}
		kind := payload[i]
		i++
		if kind > QEcc {
			return 0, qs, fmt.Errorf("%w: query kind %d", ErrMalformed, kind)
		}
		var u, v uint64
		u, i, err = uvarint(payload, i, math.MaxInt32)
		if err != nil {
			return 0, qs, err
		}
		if kind != QEcc {
			v, i, err = uvarint(payload, i, math.MaxInt32)
			if err != nil {
				return 0, qs, err
			}
		}
		qs = append(qs, Query{Kind: kind, U: graph.NodeID(u), V: graph.NodeID(v)})
	}
	if i != len(payload) {
		return 0, qs, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(payload)-i)
	}
	return id, qs, nil
}

// AppendReply appends one reply frame for frame id, answering the
// results in order. Each Result's Kind must echo its request query.
func AppendReply(dst []byte, id uint64, rs []Result) ([]byte, error) {
	if len(rs) == 0 || len(rs) > MaxBatch {
		return dst, fmt.Errorf("%w: %d results in one frame (want 1..%d)", ErrMalformed, len(rs), MaxBatch)
	}
	dst, start := beginFrame(dst, FrameReply)
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		if r.Status > statusMax {
			return dst[:start], fmt.Errorf("%w: status %d", ErrMalformed, r.Status)
		}
		dst = append(dst, r.Status)
		if r.Status != StatusOK {
			continue
		}
		switch r.Kind {
		case QDist:
			if r.Dist < 0 {
				return dst[:start], fmt.Errorf("%w: negative distance", ErrMalformed)
			}
			dst = binary.AppendUvarint(dst, uint64(r.Dist))
		case QPath:
			if len(r.Path) > MaxPathLen {
				return dst[:start], fmt.Errorf("%w: %d-vertex path", ErrTooLarge, len(r.Path))
			}
			dst = binary.AppendUvarint(dst, uint64(len(r.Path)))
			for _, x := range r.Path {
				if x < 0 {
					return dst[:start], fmt.Errorf("%w: negative path vertex", ErrMalformed)
				}
				dst = binary.AppendUvarint(dst, uint64(x))
			}
		case QEcc:
			if r.Dist < 0 || r.Far < 0 {
				return dst[:start], fmt.Errorf("%w: negative eccentricity result", ErrMalformed)
			}
			dst = binary.AppendUvarint(dst, uint64(r.Dist))
			dst = binary.AppendUvarint(dst, uint64(r.Far))
		default:
			return dst[:start], fmt.Errorf("%w: result kind %d", ErrMalformed, r.Kind)
		}
	}
	return endFrame(dst, start)
}

// PeekReplyID decodes just the frame id of a reply payload, so a
// demultiplexer can route the frame to the request that knows its
// query kinds before paying for the full parse.
func PeekReplyID(payload []byte) (uint64, error) {
	id, _, err := uvarint(payload, 0, math.MaxUint64)
	return id, err
}

// ParseReply decodes a reply frame payload against the query kinds of
// the request it answers (the wire carries per-result payload shapes
// implicitly by position). Results are appended to rs; path storage is
// reused from the passed-in Result values at matching positions, so a
// client that recycles its results slice parses allocation-free in
// steady state. The result count must equal len(kinds) exactly.
func ParseReply(payload []byte, kinds []uint8, rs []Result) (id uint64, out []Result, err error) {
	id, i, err := uvarint(payload, 0, math.MaxUint64)
	if err != nil {
		return 0, rs, err
	}
	count, i, err := uvarint(payload, i, MaxBatch)
	if err != nil {
		return 0, rs, err
	}
	if count != uint64(len(kinds)) {
		return 0, rs, fmt.Errorf("%w: %d results for %d queries", ErrMalformed, count, len(kinds))
	}
	base := len(rs)
	for k := 0; k < len(kinds); k++ {
		if i >= len(payload) {
			return 0, rs, fmt.Errorf("%w: reply truncated at result %d/%d", ErrMalformed, k, count)
		}
		status := payload[i]
		i++
		if status > statusMax {
			return 0, rs, fmt.Errorf("%w: status %d", ErrMalformed, status)
		}
		// Grow rs by one, reusing the path slice already at this slot if
		// the caller recycled the storage.
		var keep []graph.NodeID
		if base+k < cap(rs) {
			keep = rs[:cap(rs)][base+k].Path[:0]
		}
		r := Result{Kind: kinds[k], Status: status, Dist: graph.Infinity, Far: -1, Path: keep}
		if status == StatusOK {
			var a, b uint64
			switch kinds[k] {
			case QDist:
				a, i, err = uvarint(payload, i, math.MaxInt32)
				if err != nil {
					return 0, rs, err
				}
				r.Dist = graph.Weight(a)
			case QPath:
				a, i, err = uvarint(payload, i, MaxPathLen)
				if err != nil {
					return 0, rs, err
				}
				// Bound the declared length by the bytes that can back it
				// (≥1 byte per vertex) before trusting it.
				if int(a) > len(payload)-i {
					return 0, rs, fmt.Errorf("%w: %d-vertex path in %d remaining bytes", ErrMalformed, a, len(payload)-i)
				}
				for j := uint64(0); j < a; j++ {
					b, i, err = uvarint(payload, i, math.MaxInt32)
					if err != nil {
						return 0, rs, err
					}
					r.Path = append(r.Path, graph.NodeID(b))
				}
			case QEcc:
				a, i, err = uvarint(payload, i, math.MaxInt32)
				if err != nil {
					return 0, rs, err
				}
				b, i, err = uvarint(payload, i, math.MaxInt32)
				if err != nil {
					return 0, rs, err
				}
				r.Dist = graph.Weight(a)
				r.Far = graph.NodeID(b)
			default:
				return 0, rs, fmt.Errorf("%w: query kind %d", ErrMalformed, kinds[k])
			}
		}
		rs = append(rs, r)
	}
	if i != len(payload) {
		return 0, rs, fmt.Errorf("%w: %d trailing bytes after reply", ErrMalformed, len(payload)-i)
	}
	return id, rs, nil
}

// GossipEntry is one admission bucket delta: the flat bucket index
// (level*buckets + bucket) and its fixed-point drop probability.
type GossipEntry struct {
	Bucket uint32
	Prob   uint32
}

// maxProbFixed mirrors flowctl's fixed-point probability scale (2^24 =
// probability 1.0); the wire bound keeps a forged gossip frame from
// smuggling out-of-range probabilities into a controller.
const maxProbFixed = 1 << 24

// AppendGossip appends one gossip frame carrying the controller shape
// (seed, levels, buckets after power-of-two rounding) and the sparse
// bucket entries. Receivers reject frames whose shape does not match
// their local controller — merging across different hash geometries
// would scatter one node's penalties onto unrelated clients.
func AppendGossip(dst []byte, seed uint64, levels, buckets int, entries []GossipEntry) ([]byte, error) {
	if levels <= 0 || buckets <= 0 || levels*buckets > 1<<24 {
		return dst, fmt.Errorf("%w: gossip shape %d×%d", ErrMalformed, levels, buckets)
	}
	if len(entries) > levels*buckets {
		return dst, fmt.Errorf("%w: %d gossip entries for %d buckets", ErrMalformed, len(entries), levels*buckets)
	}
	dst, start := beginFrame(dst, FrameGossip)
	dst = binary.AppendUvarint(dst, seed)
	dst = binary.AppendUvarint(dst, uint64(levels))
	dst = binary.AppendUvarint(dst, uint64(buckets))
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		if int(e.Bucket) >= levels*buckets {
			return dst[:start], fmt.Errorf("%w: gossip bucket %d out of %d×%d", ErrMalformed, e.Bucket, levels, buckets)
		}
		if e.Prob > maxProbFixed {
			return dst[:start], fmt.Errorf("%w: gossip probability %d above fixed-point 1.0", ErrMalformed, e.Prob)
		}
		dst = binary.AppendUvarint(dst, uint64(e.Bucket))
		dst = binary.AppendUvarint(dst, uint64(e.Prob))
	}
	return endFrame(dst, start)
}

// ParseGossip decodes a gossip frame payload, appending entries to the
// passed slice.
func ParseGossip(payload []byte, entries []GossipEntry) (seed uint64, levels, buckets int, out []GossipEntry, err error) {
	seed, i, err := uvarint(payload, 0, math.MaxUint64)
	if err != nil {
		return 0, 0, 0, entries, err
	}
	lv, i, err := uvarint(payload, i, 1<<12)
	if err != nil {
		return 0, 0, 0, entries, err
	}
	bk, i, err := uvarint(payload, i, 1<<24)
	if err != nil {
		return 0, 0, 0, entries, err
	}
	if lv == 0 || bk == 0 || lv*bk > 1<<24 {
		return 0, 0, 0, entries, fmt.Errorf("%w: gossip shape %d×%d", ErrMalformed, lv, bk)
	}
	count, i, err := uvarint(payload, i, lv*bk)
	if err != nil {
		return 0, 0, 0, entries, err
	}
	for k := uint64(0); k < count; k++ {
		var b, p uint64
		b, i, err = uvarint(payload, i, lv*bk-1)
		if err != nil {
			return 0, 0, 0, entries, err
		}
		p, i, err = uvarint(payload, i, maxProbFixed)
		if err != nil {
			return 0, 0, 0, entries, err
		}
		entries = append(entries, GossipEntry{Bucket: uint32(b), Prob: uint32(p)})
	}
	if i != len(payload) {
		return 0, 0, 0, entries, fmt.Errorf("%w: %d trailing bytes after gossip", ErrMalformed, len(payload)-i)
	}
	return seed, int(lv), int(bk), entries, nil
}

// AppendHello appends one hello frame naming the connection's client
// identity for admission control.
func AppendHello(dst []byte, name string) ([]byte, error) {
	if len(name) == 0 || len(name) > MaxHello {
		return dst, fmt.Errorf("%w: hello identity of %d bytes (want 1..%d)", ErrMalformed, len(name), MaxHello)
	}
	dst, start := beginFrame(dst, FrameHello)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	return endFrame(dst, start)
}

// ParseHello decodes a hello frame payload. It allocates the identity
// string — once per connection, not per request.
func ParseHello(payload []byte) (string, error) {
	n, i, err := uvarint(payload, 0, MaxHello)
	if err != nil {
		return "", err
	}
	if n == 0 || int(n) != len(payload)-i {
		return "", fmt.Errorf("%w: hello length %d with %d bytes", ErrMalformed, n, len(payload)-i)
	}
	return string(payload[i:]), nil
}

// ReadFrame reads one frame from br: header validation, size bound,
// then the payload into *buf (grown as needed and reused across
// calls). maxFrame ≤ 0 selects DefaultMaxFrame. A clean EOF before any
// header byte returns io.EOF; a torn header or payload returns
// io.ErrUnexpectedEOF; everything else wraps ErrMalformed/ErrTooLarge.
func ReadFrame(br *bufio.Reader, buf *[]byte, maxFrame int) (kind byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, nil, fmt.Errorf("%w: bad magic %x%x", ErrMalformed, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return 0, nil, fmt.Errorf("%w: version %d (speak %d)", ErrMalformed, hdr[2], Version)
	}
	kind = hdr[3]
	if kind < FrameRequest || kind > FrameHello {
		return 0, nil, fmt.Errorf("%w: frame kind %d", ErrMalformed, kind)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("%w: %d-byte payload (limit %d)", ErrTooLarge, n, maxFrame)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return kind, payload, nil
}
