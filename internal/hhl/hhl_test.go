package hhl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
)

func naturalOrder(n int) []graph.NodeID {
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	return order
}

func TestCanonicalIsCover(t *testing.T) {
	g, err := gen.Gnm(60, 110, 3)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	l, err := Canonical(g, naturalOrder(60))
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	ok, err := IsHierarchical(l, naturalOrder(60))
	if err != nil {
		t.Fatalf("IsHierarchical: %v", err)
	}
	if !ok {
		t.Error("canonical labeling is not hierarchical")
	}
}

// TestPLLEqualsCanonical is the central cross-validation: pruned landmark
// labeling with a given order must produce exactly the canonical
// hierarchical labeling of that order (the minimality theorem of ADGW12 /
// Akiba et al.). Two completely independent implementations must agree
// hub-for-hub.
func TestPLLEqualsCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g, err := gen.Gnm(n, n+rng.Intn(2*n), seed)
		if err != nil {
			return false
		}
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		fast, err := pll.Build(g, pll.Options{Custom: order})
		if err != nil {
			return false
		}
		reference, err := Canonical(g, order)
		if err != nil {
			return false
		}
		equal, _ := Equal(fast, reference)
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPLLEqualsCanonicalWeighted extends the equivalence to weighted
// graphs (pruned Dijkstra variant).
func TestPLLEqualsCanonicalWeighted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := graph.NewBuilder(n, 3*n)
		for i := 0; i+1 < n; i++ {
			b.AddWeightedEdge(graph.NodeID(i), graph.NodeID(i+1), graph.Weight(1+rng.Intn(7)))
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), graph.Weight(1+rng.Intn(7)))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		fast, err := pll.Build(g, pll.Options{Custom: order})
		if err != nil {
			return false
		}
		reference, err := Canonical(g, order)
		if err != nil {
			return false
		}
		equal, _ := Equal(fast, reference)
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalDisconnected(t *testing.T) {
	b := graph.NewBuilder(6, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := Canonical(g, naturalOrder(6))
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	// Cross-component hubs must not appear.
	for _, h := range l.Label(5) {
		if h.Node < 3 {
			t.Errorf("label(5) contains cross-component hub %d", h.Node)
		}
	}
}

func TestCanonicalErrors(t *testing.T) {
	big := graph.NewBuilder(0, 0)
	big.Grow(MaxVertices + 1)
	bg, err := big.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Canonical(bg, naturalOrder(MaxVertices+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized err = %v, want ErrTooLarge", err)
	}
	g, err := gen.Path(4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := Canonical(g, naturalOrder(3)); !errors.Is(err, ErrBadOrder) {
		t.Errorf("short order err = %v, want ErrBadOrder", err)
	}
	if _, err := Canonical(g, []graph.NodeID{0, 1, 2, 2}); !errors.Is(err, ErrBadOrder) {
		t.Errorf("repeated order err = %v, want ErrBadOrder", err)
	}
}

func TestIsHierarchicalDetectsViolation(t *testing.T) {
	g, err := gen.Path(3)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Canonical(g, naturalOrder(3))
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	// Inject a hub more important... less important than its owner: give
	// vertex 0 the hub 2 (rank 2 > rank 0).
	l.Add(0, 2, 2)
	l.Canonicalize()
	ok, err := IsHierarchical(l, naturalOrder(3))
	if err != nil {
		t.Fatalf("IsHierarchical: %v", err)
	}
	if ok {
		t.Error("violation not detected")
	}
}

func TestEqualReportsDifference(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	a, err := Canonical(g, naturalOrder(5))
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	b, err := Canonical(g, []graph.NodeID{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if equal, _ := Equal(a, a); !equal {
		t.Error("labeling not equal to itself")
	}
	if equal, diff := Equal(a, b); equal {
		t.Error("different orders produced identical labelings (unexpected on a path)")
	} else if diff == "" {
		t.Error("difference description empty")
	}
}

// TestCanonicalMinimality: the canonical labeling is the minimum-size
// hierarchical labeling for its order; in particular it can be no larger
// than PLL's output, and since they are equal, any strict subset must fail
// the cover property. We spot check: removing any non-self hub from a
// canonical labeling breaks coverage of some pair.
func TestCanonicalMinimality(t *testing.T) {
	g, err := gen.Gnm(18, 30, 5)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	order := naturalOrder(18)
	l, err := Canonical(g, order)
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	removals := 0
	for v := graph.NodeID(0); int(v) < 18 && removals < 12; v++ {
		hubs := l.Label(v)
		for i, h := range hubs {
			if h.Node == v {
				continue
			}
			// Build a copy without this hub.
			trimmed := make([]graph.NodeID, 0, len(hubs)-1)
			for j, hh := range hubs {
				if j != i {
					trimmed = append(trimmed, hh.Node)
				}
			}
			sets := make([][]graph.NodeID, 18)
			for u := graph.NodeID(0); int(u) < 18; u++ {
				if u == v {
					sets[u] = trimmed
					continue
				}
				for _, hh := range l.Label(u) {
					sets[u] = append(sets[u], hh.Node)
				}
			}
			cut, err := hub.FromSets(g, sets)
			if err != nil {
				t.Fatalf("FromSets: %v", err)
			}
			if cut.VerifyCover(g) == nil {
				t.Errorf("removing hub %d from label(%d) left a valid cover — canonical labeling not minimal", h.Node, v)
			}
			removals++
			if removals >= 12 {
				break
			}
		}
	}
}
