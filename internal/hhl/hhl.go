// Package hhl implements canonical hierarchical hub labelings (Abraham,
// Delling, Goldberg, Werneck, ESA 2012 — reference [ADGW12] of the paper).
//
// Fix a total order π on V (rank increasing = more important... here rank 0
// is the MOST important vertex, matching the processing order of pruned
// landmark labeling). The canonical labeling assigns h ∈ S(v) exactly when
// h is the most important vertex on the union of shortest h–v paths:
//
//	S(v) = { h : rank(h) = min over x with d(h,x)+d(x,v) = d(h,v) of rank(x) }.
//
// Canonical labelings are the minimal hierarchical labelings for their
// order, and pruned landmark labeling computes exactly the canonical
// labeling of its processing order — a fact this package's reference
// implementation lets the tests verify directly.
package hhl

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// MaxVertices bounds the graphs Canonical accepts (it inspects all hub
// candidates for all pairs: cubic work).
const MaxVertices = 1500

var (
	// ErrTooLarge reports a graph beyond MaxVertices.
	ErrTooLarge = errors.New("hhl: graph too large for the canonical reference construction")
	// ErrBadOrder reports an order that is not a permutation of V.
	ErrBadOrder = errors.New("hhl: order is not a permutation of V")
)

// Canonical computes the canonical hierarchical hub labeling for the given
// processing order (order[0] is the most important vertex). This is a
// reference implementation: O(n³)-ish, always correct, used to validate
// faster constructions.
func Canonical(g *graph.Graph, order []graph.NodeID) (*hub.Labeling, error) {
	n := g.NumNodes()
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (max %d)", ErrTooLarge, n, MaxVertices)
	}
	rank, err := ranks(n, order)
	if err != nil {
		return nil, err
	}
	dist := sssp.AllPairs(g)
	// Per-vertex hub selection is independent; fan it out over the worker
	// pool with each vertex writing its own label slot, then emit the
	// canonical frozen labeling in one pass. The distance matrix also
	// yields each entry's parent: the smallest neighbor of v on a tight
	// edge toward the hub (deterministic, and always a shortest-path hop).
	labels := make([][]hub.Hub, n)
	parents := make([][]graph.NodeID, n)
	par.For(n, func(i int) {
		v := graph.NodeID(i)
		var hubs []hub.Hub
		var pars []graph.NodeID
		for h := graph.NodeID(0); int(h) < n; h++ {
			dhv := dist[h][v]
			if dhv == graph.Infinity {
				continue
			}
			// h ∈ S(v) iff no strictly more important vertex lies on any
			// shortest h–v path.
			important := true
			for x := graph.NodeID(0); int(x) < n; x++ {
				if rank[x] < rank[h] && dist[h][x]+dist[x][v] == dhv {
					important = false
					break
				}
			}
			if important {
				hubs = append(hubs, hub.Hub{Node: h, Dist: dhv})
				pars = append(pars, nextHop(g, dist, v, h))
			}
		}
		labels[i] = hubs
		parents[i] = pars
	})
	return hub.FromSlicesParents(labels, parents), nil
}

// nextHop returns the first vertex after v on one shortest v–h path: the
// smallest neighbor x with w(v,x) + dist(x,h) = dist(v,h), or -1 when
// v == h.
func nextHop(g *graph.Graph, dist [][]graph.Weight, v, h graph.NodeID) graph.NodeID {
	if v == h {
		return -1
	}
	ws := g.NeighborWeights(v)
	for i, x := range g.Neighbors(v) {
		w := graph.Weight(1)
		if ws != nil {
			w = ws[i]
		}
		if w+dist[h][x] == dist[h][v] {
			return x
		}
	}
	return -1
}

// IsHierarchical reports whether the labeling respects the order in the
// ADGW12 sense: every hub of v is at least as important as v itself
// (rank(h) ≤ rank(v), with rank 0 most important). Canonical labelings
// always satisfy this — the union of shortest h–v paths contains v, so the
// most important vertex on it outranks v — and pruned landmark labeling
// inherits it by computing exactly the canonical labeling.
func IsHierarchical(l *hub.Labeling, order []graph.NodeID) (bool, error) {
	rank, err := ranks(l.NumVertices(), order)
	if err != nil {
		return false, err
	}
	for v := graph.NodeID(0); int(v) < l.NumVertices(); v++ {
		for _, h := range l.Label(v) {
			if rank[h.Node] > rank[v] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Equal reports whether two labelings contain exactly the same hub sets
// and distances, returning a description of the first difference.
func Equal(a, b *hub.Labeling) (bool, string) {
	if a.NumVertices() != b.NumVertices() {
		return false, fmt.Sprintf("vertex counts differ: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	for v := graph.NodeID(0); int(v) < a.NumVertices(); v++ {
		la, lb := a.Label(v), b.Label(v)
		if len(la) != len(lb) {
			return false, fmt.Sprintf("label(%d) sizes differ: %d vs %d", v, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				return false, fmt.Sprintf("label(%d)[%d] differs: %v vs %v", v, i, la[i], lb[i])
			}
		}
	}
	return true, ""
}

func ranks(n int, order []graph.NodeID) ([]int, error) {
	if len(order) != n {
		return nil, fmt.Errorf("%w: got %d vertices, want %d", ErrBadOrder, len(order), n)
	}
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, v := range order {
		if int(v) < 0 || int(v) >= n || rank[v] != -1 {
			return nil, fmt.Errorf("%w: bad or repeated vertex %d", ErrBadOrder, v)
		}
		rank[v] = i
	}
	return rank, nil
}
