package approx

import (
	"errors"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/pll"
)

func TestCollapseErrorAtMostTwo(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, err := gen.Gnm(150, 270, seed)
		if err != nil {
			t.Fatalf("Gnm: %v", err)
		}
		res, err := Collapse(g)
		if err != nil {
			t.Fatalf("Collapse: %v", err)
		}
		_, maxErr, err := VerifyError(g, res.Labeling)
		if err != nil {
			t.Fatalf("VerifyError: %v", err)
		}
		if maxErr > 2 {
			t.Errorf("seed %d: max error %d exceeds the guaranteed 2", seed, maxErr)
		}
	}
}

// TestCollapseErrorProperty: the +2 guarantee is a theorem of the
// construction; check it across random graphs.
func TestCollapseErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(uint64(seed)%60)
		g, err := gen.Gnm(n, 2*n, seed)
		if err != nil {
			return false
		}
		res, err := Collapse(g)
		if err != nil {
			return false
		}
		_, maxErr, err := VerifyError(g, res.Labeling)
		return err == nil && maxErr <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCollapseShrinksLabels(t *testing.T) {
	g, err := gen.RandomRegular(300, 3, 5)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	res, err := Collapse(g)
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if res.ApproxAvg >= res.ExactAvg {
		t.Errorf("collapsed labels (%.1f) not smaller than exact (%.1f)", res.ApproxAvg, res.ExactAvg)
	}
	// The dominating set must actually dominate.
	dominated := make([]bool, g.NumNodes())
	for _, r := range res.Dominators {
		dominated[r] = true
		for _, u := range g.Neighbors(r) {
			dominated[u] = true
		}
	}
	for v, ok := range dominated {
		if !ok {
			t.Errorf("vertex %d not dominated", v)
		}
	}
}

func TestCollapseRejectsWeighted(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 1, 4)
	wg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Collapse(wg); !errors.Is(err, ErrBadParam) {
		t.Errorf("weighted err = %v, want ErrBadParam", err)
	}
}

func TestSlackPLLRejectsBadInput(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := SlackPLL(g, Options{Slack: 0}); !errors.Is(err, ErrBadParam) {
		t.Errorf("slack 0 err = %v, want ErrBadParam", err)
	}
	b := graph.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 1, 4)
	wg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := SlackPLL(wg, Options{Slack: 2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("weighted err = %v, want ErrBadParam", err)
	}
}

func TestSlackPLLNeverUnderestimates(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(uint64(seed)%50)
		g, err := gen.Gnm(n, 2*n, seed)
		if err != nil {
			return false
		}
		l, err := SlackPLL(g, Options{Slack: 2})
		if err != nil {
			return false
		}
		_, _, err = VerifyError(g, l)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSlackPLLErrorDistribution pins the heuristic's measured behaviour:
// errors can exceed the slack for non-root pairs (this is why Collapse
// exists), but stay bounded on the tested family.
func TestSlackPLLErrorDistribution(t *testing.T) {
	g, err := gen.RandomRegular(200, 3, 7)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	const slack = 2
	l, err := SlackPLL(g, Options{Slack: slack})
	if err != nil {
		t.Fatalf("SlackPLL: %v", err)
	}
	hist, maxErr, err := VerifyError(g, l)
	if err != nil {
		t.Fatalf("VerifyError: %v", err)
	}
	if maxErr > 4*slack {
		t.Errorf("max error %d out of regression band (hist %v)", maxErr, hist)
	}
}

func TestSlackShrinksLabels(t *testing.T) {
	g, err := gen.RandomRegular(300, 3, 5)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	exact, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatalf("pll.Build: %v", err)
	}
	approx2, err := SlackPLL(g, Options{Slack: 2})
	if err != nil {
		t.Fatalf("SlackPLL(2): %v", err)
	}
	approx4, err := SlackPLL(g, Options{Slack: 4})
	if err != nil {
		t.Fatalf("SlackPLL(4): %v", err)
	}
	e, a2, a4 := exact.ComputeStats().Avg, approx2.ComputeStats().Avg, approx4.ComputeStats().Avg
	if a2 >= e {
		t.Errorf("slack-2 labels (%.1f) not smaller than exact (%.1f)", a2, e)
	}
	if a4 > a2 {
		t.Errorf("slack-4 labels (%.1f) larger than slack-2 (%.1f)", a4, a2)
	}
}

func TestCorrectionBits(t *testing.T) {
	if got := CorrectionBits(0, 2); got != 0 {
		t.Errorf("CorrectionBits(0,2) = %v, want 0", got)
	}
	// slack 2 → 2 bits per pair entry (values 0..2), (n-1)/2 pairs per
	// vertex on average.
	if got, want := CorrectionBits(101, 2), 50.0*2; got != want {
		t.Errorf("CorrectionBits(101,2) = %v, want %v", got, want)
	}
	if got, want := CorrectionBits(101, 1), 50.0*1; got != want {
		t.Errorf("CorrectionBits(101,1) = %v, want %v", got, want)
	}
}

func TestDisconnectedStaysCorrect(t *testing.T) {
	b := graph.NewBuilder(14, 12)
	for i := 0; i < 6; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		b.AddEdge(graph.NodeID(7+i), graph.NodeID(7+(i+1)%7))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := SlackPLL(g, Options{Slack: 2})
	if err != nil {
		t.Fatalf("SlackPLL: %v", err)
	}
	if _, _, err := VerifyError(g, l); err != nil {
		t.Errorf("VerifyError: %v", err)
	}
	res, err := Collapse(g)
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if _, maxErr, err := VerifyError(g, res.Labeling); err != nil || maxErr > 2 {
		t.Errorf("Collapse on disconnected: maxErr=%d err=%v", maxErr, err)
	}
}
