// Package approx implements additively-approximate hub labelings — the
// object the paper's Section 1.1 uses to assemble general-graph distance
// labels: "for each pair uv, there is w ∈ S(u) ∩ S(v) such that either w or
// some neighbor x ∈ N(w) is on a shortest uv path. This guarantees that the
// absolute error of estimation is either 0, 1 or 2", after which small
// exact correction tables restore exactness.
//
// Two constructions are provided:
//
//   - Collapse implements exactly that guarantee: every hub of an exact
//     labeling is replaced by a nearby representative from a dominating
//     set, so decoded distances satisfy d ≤ decode ≤ d+2 — provably.
//   - SlackPLL prunes landmark BFS with an additive slack; errors for
//     (root, v) pairs are at most the slack, but they can compound for
//     other pairs (the tests pin the measured distribution) — it is the
//     cheap heuristic counterpart.
package approx

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

// ErrBadParam reports invalid options.
var ErrBadParam = errors.New("approx: invalid parameter")

// CollapseResult carries the approximate labeling and its support.
type CollapseResult struct {
	Labeling *hub.Labeling
	// Dominators is the representative set R (every vertex is in R or
	// adjacent to a member).
	Dominators []graph.NodeID
	// ExactAvg and ApproxAvg record the label-size shrinkage.
	ExactAvg, ApproxAvg float64
}

// Collapse builds a +2-error hub labeling of an unweighted graph: compute
// an exact PLL labeling, pick a greedy dominating set R with representative
// map rep: V→R satisfying dist(v, rep(v)) ≤ 1, and replace every hub w by
// rep(w) with its true distance. For any pair, the exact cover's hub w on a
// shortest path yields the common hub rep(w) with
// d(u,rep(w)) + d(rep(w),v) ≤ d(u,v) + 2.
func Collapse(g *graph.Graph) (*CollapseResult, error) {
	if g.Weighted() {
		return nil, fmt.Errorf("%w: weighted graphs not supported", ErrBadParam)
	}
	exact, err := pll.Build(g, pll.Options{})
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	rep := make([]graph.NodeID, n)
	for i := range rep {
		rep[i] = -1
	}
	// Greedy dominating set by degree: high-degree vertices dominate more.
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var doms []graph.NodeID
	for _, v := range order {
		if rep[v] != -1 {
			continue
		}
		doms = append(doms, v)
		rep[v] = v
		for _, u := range g.Neighbors(v) {
			if rep[u] == -1 {
				rep[u] = v
			}
		}
	}
	// True distances from every dominator.
	distFrom := make(map[graph.NodeID][]graph.Weight, len(doms))
	for _, r := range doms {
		distFrom[r] = sssp.BFS(g, r).Dist
	}
	out := hub.NewLabeling(n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		for _, h := range exact.Label(v) {
			r := rep[h.Node]
			if d := distFrom[r][v]; d < graph.Infinity {
				out.Add(v, r, d)
			}
		}
	}
	out.Canonicalize()
	return &CollapseResult{
		Labeling:   out,
		Dominators: doms,
		ExactAvg:   exact.ComputeStats().Avg,
		ApproxAvg:  out.ComputeStats().Avg,
	}, nil
}

// Options configures SlackPLL.
type Options struct {
	// Slack is the pruning slack (≥ 1). Error is ≤ Slack for (root, v)
	// pairs and measured by VerifyError for the rest.
	Slack graph.Weight
}

// SlackPLL runs pruned landmark labeling with additive pruning slack on an
// unweighted graph, in degree order.
func SlackPLL(g *graph.Graph, opts Options) (*hub.Labeling, error) {
	if opts.Slack < 1 {
		return nil, fmt.Errorf("%w: slack=%d, want ≥ 1", ErrBadParam, opts.Slack)
	}
	if g.Weighted() {
		return nil, fmt.Errorf("%w: weighted graphs not supported", ErrBadParam)
	}
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	labels := make([][]hub.Hub, n)
	rootDist := make([]graph.Weight, n)
	dist := make([]graph.Weight, n)
	for i := range rootDist {
		rootDist[i] = graph.Infinity
		dist[i] = graph.Infinity
	}
	queue := make([]graph.NodeID, 0, n)
	visited := make([]graph.NodeID, 0, n)
	for _, root := range order {
		for _, h := range labels[root] {
			rootDist[h.Node] = h.Dist
		}
		dist[root] = 0
		queue = append(queue[:0], root)
		visited = append(visited[:0], root)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			du := dist[u]
			pruned := false
			for _, h := range labels[u] {
				if rd := rootDist[h.Node]; rd < graph.Infinity && rd+h.Dist <= du+opts.Slack {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			labels[u] = append(labels[u], hub.Hub{Node: root, Dist: du})
			for _, v := range g.Neighbors(u) {
				if dist[v] == graph.Infinity {
					dist[v] = du + 1
					queue = append(queue, v)
					visited = append(visited, v)
				}
			}
		}
		for _, h := range labels[root] {
			rootDist[h.Node] = graph.Infinity
		}
		for _, v := range visited {
			dist[v] = graph.Infinity
		}
	}
	l := hub.NewLabeling(n)
	for v := range labels {
		l.SetLabel(graph.NodeID(v), labels[v])
	}
	l.Canonicalize()
	return l, nil
}

// VerifyError measures the additive error over every pair. It fails if any
// pair underestimates (hub distances are real path lengths, so that would
// indicate corruption) or loses connectivity information, and returns the
// histogram of observed errors (index = error) together with the maximum.
func VerifyError(g *graph.Graph, l *hub.Labeling) (hist []int64, maxErr graph.Weight, err error) {
	hist = make([]int64, 1)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		r := sssp.BFS(g, u)
		for v := u; int(v) < g.NumNodes(); v++ {
			want := r.Dist[v]
			got, ok := l.Query(u, v)
			if want == graph.Infinity {
				if ok {
					return nil, 0, fmt.Errorf("approx: pair (%d,%d) decodes %d, should be unreachable", u, v, got)
				}
				continue
			}
			if !ok {
				return nil, 0, fmt.Errorf("approx: pair (%d,%d) has no common hub", u, v)
			}
			if got < want {
				return nil, 0, fmt.Errorf("approx: pair (%d,%d) underestimates: %d < %d", u, v, got, want)
			}
			e := got - want
			for int(e) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[e]++
			if e > maxErr {
				maxErr = e
			}
		}
	}
	return hist, maxErr, nil
}

// CorrectionBits returns the cost, in bits per vertex, of exact correction
// tables for a maximum error of slack: each pair stores log₂(slack+1) bits
// (the paper's log₂3 for error ≤ 2), with each pair charged to one
// endpoint.
func CorrectionBits(n int, slack graph.Weight) float64 {
	if n == 0 {
		return 0
	}
	bits := 0
	for v := slack; v > 0; v >>= 1 {
		bits++
	}
	pairsPerVertex := float64(n-1) / 2
	return pairsPerVertex * float64(bits)
}
