// Package gen provides deterministic, seeded synthetic graph generators for
// the workloads used across hublab's tests, examples and experiments: sparse
// random graphs, bounded-degree random graphs, grids and road-like networks,
// and random trees.
package gen

import (
	"errors"
	"fmt"
	"math/rand"

	"hublab/internal/graph"
)

// ErrBadParam reports an invalid generator parameter.
var ErrBadParam = errors.New("gen: invalid parameter")

// Gnm returns a uniform sparse random graph with n vertices and (about) m
// distinct edges, made connected by a random spanning path first.
func Gnm(n, m int, seed int64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	if m < n-1 {
		return nil, fmt.Errorf("%w: m=%d below spanning tree size %d", ErrBadParam, m, n-1)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
	}
	for k := n - 1; k < m; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

// RandomRegular returns a random d-regular-ish graph on n vertices via the
// configuration model with rejection of loops and duplicates; the result has
// maximum degree ≤ d and is connected by construction of a spanning cycle
// when d ≥ 2.
func RandomRegular(n, d int, seed int64) (*graph.Graph, error) {
	if n < 3 || d < 2 || d >= n {
		return nil, fmt.Errorf("%w: n=%d d=%d", ErrBadParam, n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, n*d/2)
	deg := make([]int, n)
	// Spanning cycle guarantees connectivity and consumes degree 2.
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		deg[u]++
		deg[v]++
	}
	// Fill remaining degree with random matchings over available stubs.
	stubs := make([]int, 0, n*(d-2))
	for v := 0; v < n; v++ {
		for deg[v] < d {
			stubs = append(stubs, v)
			deg[v]++
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph with unit weights.
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d", ErrBadParam, rows, cols)
	}
	b := graph.NewBuilder(rows*cols, 2*rows*cols)
	b.Grow(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RoadLike returns a weighted rows×cols grid modelling a road network:
// local streets get weights in [lo,hi], and every "highway" row and column
// (multiples of period) gets fast edges of weight lo. Diagonal shortcuts are
// absent, matching the paper's transportation-network discussion where
// highway-dimension-style structure keeps hub sets small.
func RoadLike(rows, cols, period int, seed int64) (*graph.Graph, error) {
	if rows < 2 || cols < 2 || period < 2 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d period=%d", ErrBadParam, rows, cols, period)
	}
	const lo, hi = 1, 9
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(rows*cols, 2*rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	weight := func(r1, c1, r2, c2 int) graph.Weight {
		onHighway := (r1 == r2 && r1%period == 0) || (c1 == c2 && c1%period == 0)
		if onHighway {
			return lo
		}
		return graph.Weight(lo + 1 + rng.Intn(hi-lo))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddWeightedEdge(id(r, c), id(r, c+1), weight(r, c, r, c+1))
			}
			if r+1 < rows {
				b.AddWeightedEdge(id(r, c), id(r+1, c), weight(r, c, r+1, c))
			}
		}
	}
	return b.Build()
}

// RMAT returns a recursive-matrix random graph with 2^scale vertices
// and about m distinct edges (Chakrabarti–Zhan–Faloutsos parameters
// a=0.57 b=c=0.19, the Graph500 mix), made connected by a random
// spanning path like Gnm. R-MAT's skewed degree distribution is the
// standard stand-in for social/web graphs, the regime where degree
// ordering shines and the parallel builder's early high-degree roots do
// the most work — which is exactly what the large-build CI smoke wants
// to stress.
func RMAT(scale, m int, seed int64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("%w: scale=%d", ErrBadParam, scale)
	}
	n := 1 << scale
	if m < n-1 {
		return nil, fmt.Errorf("%w: m=%d below spanning tree size %d", ErrBadParam, m, n-1)
	}
	const a, b, c = 0.57, 0.19, 0.19
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n, m)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		bld.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
	}
	for k := n - 1; k < m; k++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << bit
			case r < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return bld.Build()
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (random Prüfer sequence).
func RandomTree(n int, seed int64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	b := graph.NewBuilder(n, n-1)
	b.Grow(n)
	if n == 1 {
		return b.Build()
	}
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Build()
	}
	rng := rand.New(rand.NewSource(seed))
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = rng.Intn(n)
		deg[prufer[i]]++
	}
	// Standard Prüfer decoding with a pointer + leaf variable.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(graph.NodeID(leaf), graph.NodeID(v))
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(graph.NodeID(leaf), graph.NodeID(n-1))
	return b.Build()
}

// BalancedBinaryTree returns the complete binary tree with the given number
// of leaves (must be a power of two), rooted at vertex 0.
func BalancedBinaryTree(leaves int) (*graph.Graph, error) {
	if leaves < 1 || leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("%w: leaves=%d not a power of two", ErrBadParam, leaves)
	}
	n := 2*leaves - 1
	b := graph.NewBuilder(n, n-1)
	b.Grow(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.NodeID((v-1)/2), graph.NodeID(v))
	}
	return b.Build()
}

// Cycle returns the n-cycle.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	b := graph.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// Path returns the n-vertex path.
func Path(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	b := graph.NewBuilder(n, n-1)
	b.Grow(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}
