package gen

import (
	"errors"
	"testing"
	"testing/quick"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

func TestGnm(t *testing.T) {
	g, err := Gnm(100, 150, 42)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	if g.NumNodes() != 100 {
		t.Errorf("NumNodes = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() < 99 || g.NumEdges() > 150 {
		t.Errorf("NumEdges = %d, want in [99,150]", g.NumEdges())
	}
	if !sssp.Connected(g) {
		t.Error("Gnm graph not connected")
	}
}

func TestGnmDeterministic(t *testing.T) {
	g1, err := Gnm(50, 80, 7)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	g2, err := Gnm(50, 80, 7)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed produced different edges at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestGnmErrors(t *testing.T) {
	if _, err := Gnm(0, 5, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("Gnm(0,...) err = %v, want ErrBadParam", err)
	}
	if _, err := Gnm(10, 3, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("Gnm(10,3) err = %v, want ErrBadParam", err)
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(60, 3, 11)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	if g.MaxDegree() > 3 {
		t.Errorf("MaxDegree = %d, want ≤ 3", g.MaxDegree())
	}
	if !sssp.Connected(g) {
		t.Error("RandomRegular graph not connected")
	}
	// Spanning cycle guarantees min degree 2.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) < 2 {
			t.Errorf("Degree(%d) = %d, want ≥ 2", v, g.Degree(graph.NodeID(v)))
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	cases := []struct{ n, d int }{{2, 2}, {5, 1}, {5, 5}}
	for _, tc := range cases {
		if _, err := RandomRegular(tc.n, tc.d, 1); !errors.Is(err, ErrBadParam) {
			t.Errorf("RandomRegular(%d,%d) err = %v, want ErrBadParam", tc.n, tc.d, err)
		}
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 5)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if g.NumNodes() != 20 {
		t.Errorf("NumNodes = %d, want 20", g.NumNodes())
	}
	wantEdges := 4*4 + 3*5 // horizontal + vertical
	if g.NumEdges() != wantEdges {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if d := sssp.Diameter(g); d != 7 {
		t.Errorf("Diameter = %d, want 7", d)
	}
}

func TestRoadLike(t *testing.T) {
	g, err := RoadLike(10, 10, 4, 3)
	if err != nil {
		t.Fatalf("RoadLike: %v", err)
	}
	if !g.Weighted() {
		t.Error("RoadLike should be weighted")
	}
	if !sssp.Connected(g) {
		t.Error("RoadLike graph not connected")
	}
	// Highway edges (row 0) must have weight 1.
	for c := 0; c+1 < 10; c++ {
		w, ok := g.EdgeWeight(graph.NodeID(c), graph.NodeID(c+1))
		if !ok || w != 1 {
			t.Errorf("highway edge (%d,%d) weight = (%d,%v), want (1,true)", c, c+1, w, ok)
		}
	}
}

func TestRandomTree(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 + int(uint64(seed)%97)
		g, err := RandomTree(n, seed)
		if err != nil {
			return false
		}
		return g.NumNodes() == n && g.NumEdges() == n-1 && sssp.Connected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeSmall(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g, err := RandomTree(n, 1)
		if err != nil {
			t.Fatalf("RandomTree(%d): %v", n, err)
		}
		if g.NumNodes() != n || g.NumEdges() != n-1 {
			t.Errorf("RandomTree(%d): (%d,%d)", n, g.NumNodes(), g.NumEdges())
		}
	}
}

func TestBalancedBinaryTree(t *testing.T) {
	g, err := BalancedBinaryTree(8)
	if err != nil {
		t.Fatalf("BalancedBinaryTree: %v", err)
	}
	if g.NumNodes() != 15 || g.NumEdges() != 14 {
		t.Errorf("got (%d,%d), want (15,14)", g.NumNodes(), g.NumEdges())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	// Depth of a leaf is log2(8) = 3.
	r := sssp.BFS(g, 0)
	var maxD graph.Weight
	for _, d := range r.Dist {
		if d > maxD {
			maxD = d
		}
	}
	if maxD != 3 {
		t.Errorf("max depth = %d, want 3", maxD)
	}
	if _, err := BalancedBinaryTree(6); !errors.Is(err, ErrBadParam) {
		t.Errorf("BalancedBinaryTree(6) err = %v, want ErrBadParam", err)
	}
}

func TestCycleAndPath(t *testing.T) {
	c, err := Cycle(5)
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	if c.NumNodes() != 5 || c.NumEdges() != 5 || c.MaxDegree() != 2 {
		t.Errorf("Cycle(5): n=%d m=%d maxdeg=%d", c.NumNodes(), c.NumEdges(), c.MaxDegree())
	}
	p, err := Path(5)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if p.NumEdges() != 4 || sssp.Diameter(p) != 4 {
		t.Errorf("Path(5): m=%d diam=%d", p.NumEdges(), sssp.Diameter(p))
	}
	if _, err := Cycle(2); !errors.Is(err, ErrBadParam) {
		t.Errorf("Cycle(2) err = %v, want ErrBadParam", err)
	}
	if _, err := Path(0); !errors.Is(err, ErrBadParam) {
		t.Errorf("Path(0) err = %v, want ErrBadParam", err)
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 4096, 5)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if g.NumNodes() != 1024 {
		t.Errorf("NumNodes = %d, want 1024", g.NumNodes())
	}
	if g.NumEdges() < 1023 || g.NumEdges() > 4096 {
		t.Errorf("NumEdges = %d, want in [1023,4096]", g.NumEdges())
	}
	if !sssp.Connected(g) {
		t.Error("RMAT graph not connected")
	}
	// The recursive-matrix skew must actually show: the maximum degree of
	// an R-MAT graph is far above the Gnm value at the same density.
	ref, err := Gnm(1024, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() <= ref.MaxDegree() {
		t.Errorf("RMAT max degree %d not above Gnm's %d — skew missing", g.MaxDegree(), ref.MaxDegree())
	}
}

func TestRMATDeterministic(t *testing.T) {
	g1, err := RMAT(8, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(8, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("same seed produced different edge counts: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed produced different edges at %d", i)
		}
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(0, 10, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("RMAT(0,...) err = %v, want ErrBadParam", err)
	}
	if _, err := RMAT(31, 1<<31, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("RMAT(31,...) err = %v, want ErrBadParam", err)
	}
	if _, err := RMAT(4, 3, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("RMAT(4,3) err = %v, want ErrBadParam", err)
	}
}
