// Package lbound implements the paper's lower-bound constructions
// (Section 2): the weighted layered graph H_{b,ℓ} whose bottom-to-top
// shortest paths are unique and midpoint-determined (Lemma 2.2), its
// max-degree-3 expansion G_{b,ℓ} (Theorem 2.1), the triplet-counting
// certificate for the average hub set size, and the Figure 1 data.
//
// Vertex layout of H_{b,ℓ}: levels 0..2ℓ, each containing s^ℓ vertices
// (s = 2^b) identified with vectors in [0,s-1]^ℓ. Level i connects to level
// i+1 by edges between vectors that differ in at most the single coordinate
// c(i) — coordinate i for i < ℓ (0-based) and coordinate 2ℓ-i-1 for i ≥ ℓ —
// with weight A + (x_c - y_c)², A = 3ℓs².
package lbound

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// ErrBadParam reports invalid construction parameters.
var ErrBadParam = errors.New("lbound: invalid parameter")

// maxHVertices bounds the size of H constructions (s^ℓ·(2ℓ+1) vertices).
const maxHVertices = 1 << 22

// Params selects an instance: B is the side-length exponent (s = 2^B) and
// L the number of ascending levels (the graph has 2L+1 levels).
type Params struct {
	B, L int
}

func (p Params) validate() error {
	if p.B < 1 || p.L < 1 {
		return fmt.Errorf("%w: b=%d l=%d, want ≥ 1", ErrBadParam, p.B, p.L)
	}
	if p.B > 20 || p.L > 20 {
		return fmt.Errorf("%w: b=%d l=%d too large", ErrBadParam, p.B, p.L)
	}
	// s^l * (2l+1) must stay manageable.
	n := int64(2*p.L + 1)
	for i := 0; i < p.L; i++ {
		n *= int64(1) << uint(p.B)
		if n > maxHVertices {
			return fmt.Errorf("%w: b=%d l=%d yields more than %d vertices", ErrBadParam, p.B, p.L, maxHVertices)
		}
	}
	return nil
}

// Side returns s = 2^B.
func (p Params) Side() int { return 1 << uint(p.B) }

// LayerSize returns s^L, the number of vertices per level.
func (p Params) LayerSize() int {
	n := 1
	for i := 0; i < p.L; i++ {
		n <<= uint(p.B)
	}
	return n
}

// Levels returns the number of levels, 2L+1.
func (p Params) Levels() int { return 2*p.L + 1 }

// BaseWeight returns A = 3ℓs².
func (p Params) BaseWeight() graph.Weight {
	s := p.Side()
	return graph.Weight(3 * p.L * s * s)
}

// ChangingCoord returns the 0-based coordinate allowed to change between
// levels i and i+1: coordinate i on the way up (i < L), coordinate 2L-i-1
// on the way down.
func (p Params) ChangingCoord(i int) int {
	if i < p.L {
		return i
	}
	return 2*p.L - i - 1
}

// Layered is the weighted graph H_{b,ℓ}.
type Layered struct {
	Params
	// G is the underlying weighted graph.
	G *graph.Graph
	// A is the base edge weight 3ℓs².
	A graph.Weight
}

// BuildH constructs H_{b,ℓ}.
func BuildH(p Params) (*Layered, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	s := p.Side()
	layer := p.LayerSize()
	levels := p.Levels()
	n := layer * levels
	a := p.BaseWeight()

	// Edges per level pair: layer * s (each vertex connects to s vertices
	// above, including the same-vector one).
	b := graph.NewBuilder(n, layer*s*(levels-1))
	vec := make([]int, p.L)
	for level := 0; level+1 < levels; level++ {
		c := p.ChangingCoord(level)
		stride := 1
		for k := 0; k < c; k++ {
			stride *= s
		}
		for idx := 0; idx < layer; idx++ {
			decode(idx, s, p.L, vec)
			from := graph.NodeID(level*layer + idx)
			base := idx - vec[c]*stride
			for val := 0; val < s; val++ {
				toIdx := base + val*stride
				diff := graph.Weight(vec[c] - val)
				w := a + diff*diff
				b.AddWeightedEdge(from, graph.NodeID((level+1)*layer+toIdx), w)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Layered{Params: p, G: g, A: a}, nil
}

// decode writes the s-ary digits of idx into vec (coordinate k = digit k).
func decode(idx, s, l int, vec []int) {
	for k := 0; k < l; k++ {
		vec[k] = idx % s
		idx /= s
	}
}

// encode is the inverse of decode.
func encode(vec []int, s int) int {
	idx := 0
	for k := len(vec) - 1; k >= 0; k-- {
		idx = idx*s + vec[k]
	}
	return idx
}

// VertexID returns the id of v_{level,vec}.
func (h *Layered) VertexID(level int, vec []int) (graph.NodeID, error) {
	if level < 0 || level >= h.Levels() {
		return 0, fmt.Errorf("%w: level %d", ErrBadParam, level)
	}
	if len(vec) != h.L {
		return 0, fmt.Errorf("%w: vector has %d coordinates, want %d", ErrBadParam, len(vec), h.L)
	}
	s := h.Side()
	for _, x := range vec {
		if x < 0 || x >= s {
			return 0, fmt.Errorf("%w: coordinate %d outside [0,%d)", ErrBadParam, x, s)
		}
	}
	return graph.NodeID(level*h.LayerSize() + encode(vec, s)), nil
}

// LevelOf returns the level of a vertex id.
func (h *Layered) LevelOf(v graph.NodeID) int { return int(v) / h.LayerSize() }

// VectorOf returns the coordinate vector of a vertex id.
func (h *Layered) VectorOf(v graph.NodeID) []int {
	vec := make([]int, h.L)
	decode(int(v)%h.LayerSize(), h.Side(), h.L, vec)
	return vec
}

// ExpectedPathLength returns the Lemma 2.2 closed-form length of the unique
// shortest path from v_{0,x} to v_{2ℓ,z} when z-x is coordinate-wise even:
// 2ℓA + 2·Σ ((z_k-x_k)/2)².
func (h *Layered) ExpectedPathLength(x, z []int) graph.Weight {
	total := graph.Weight(2*h.L) * h.A
	for k := 0; k < h.L; k++ {
		d := graph.Weight(z[k]-x[k]) / 2
		total += 2 * d * d
	}
	return total
}

// LemmaReport is the outcome of verifying Lemma 2.2 on one pair.
type LemmaReport struct {
	X, Z       []int
	Length     graph.Weight // measured shortest-path length
	WantLength graph.Weight // closed form 2ℓA + 2Σδ²
	Unique     bool         // shortest path is unique
	ViaMid     bool         // the path passes through v_{ℓ,(x+z)/2}
}

// Ok reports whether all Lemma 2.2 claims hold for the pair.
func (r LemmaReport) Ok() bool {
	return r.Unique && r.ViaMid && r.Length == r.WantLength
}

// VerifyLemma22 checks Lemma 2.2 for the pair (x, z): the shortest path
// from v_{0,x} to v_{2ℓ,z} is unique, has the closed-form length, and
// passes through v_{ℓ,(x+z)/2}. The difference z-x must be coordinate-wise
// even.
func (h *Layered) VerifyLemma22(x, z []int) (LemmaReport, error) {
	for k := range x {
		if (z[k]-x[k])%2 != 0 {
			return LemmaReport{}, fmt.Errorf("%w: z-x odd at coordinate %d", ErrBadParam, k)
		}
	}
	src, err := h.VertexID(0, x)
	if err != nil {
		return LemmaReport{}, err
	}
	dst, err := h.VertexID(2*h.L, z)
	if err != nil {
		return LemmaReport{}, err
	}
	mid := make([]int, h.L)
	for k := range mid {
		mid[k] = (x[k] + z[k]) / 2
	}
	midID, err := h.VertexID(h.L, mid)
	if err != nil {
		return LemmaReport{}, err
	}
	res, counts := sssp.CountShortestPaths(h.G, src, 4)
	report := LemmaReport{
		X:          append([]int(nil), x...),
		Z:          append([]int(nil), z...),
		Length:     res.Dist[dst],
		WantLength: h.ExpectedPathLength(x, z),
		Unique:     counts[dst] == 1,
	}
	for _, v := range res.PathTo(dst) {
		if v == midID {
			report.ViaMid = true
			break
		}
	}
	return report, nil
}

// VerifyLemma22All verifies Lemma 2.2 over every valid (x, z) pair (both
// iterating over [0,s-1]^ℓ with z-x even). It returns the number of pairs
// checked and the first failing report, if any. Cost: one Dijkstra per x.
func (h *Layered) VerifyLemma22All() (checked int, firstBad *LemmaReport, err error) {
	s := h.Side()
	layer := h.LayerSize()
	x := make([]int, h.L)
	z := make([]int, h.L)
	mid := make([]int, h.L)
	for xi := 0; xi < layer; xi++ {
		decode(xi, s, h.L, x)
		src := graph.NodeID(xi)
		res, counts := sssp.CountShortestPaths(h.G, src, 4)
		for zi := 0; zi < layer; zi++ {
			decode(zi, s, h.L, z)
			even := true
			for k := 0; k < h.L; k++ {
				if (z[k]-x[k])%2 != 0 {
					even = false
					break
				}
			}
			if !even {
				continue
			}
			checked++
			dst := graph.NodeID(2*h.L*layer + zi)
			for k := 0; k < h.L; k++ {
				mid[k] = (x[k] + z[k]) / 2
			}
			midID := graph.NodeID(h.L*layer + encode(mid, s))
			report := LemmaReport{
				X:          append([]int(nil), x...),
				Z:          append([]int(nil), z...),
				Length:     res.Dist[dst],
				WantLength: h.ExpectedPathLength(x, z),
				Unique:     counts[dst] == 1,
			}
			for _, v := range res.PathTo(dst) {
				if v == midID {
					report.ViaMid = true
					break
				}
			}
			if !report.Ok() && firstBad == nil {
				r := report
				firstBad = &r
			}
		}
	}
	return checked, firstBad, nil
}
