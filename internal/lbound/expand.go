package lbound

import (
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// maxGVertices bounds the size of expanded constructions.
const maxGVertices = 1 << 24

// Expanded is the max-degree-3 graph G_{b,ℓ} of Theorem 2.1: every vertex v
// of H_{b,ℓ} becomes a center attached to two perfectly balanced binary
// trees T^in_v and T^out_v with s leaves each (depth b), and every weighted
// edge {u,v} of H becomes an unweighted path of length w(e)-2b-2 between
// the corresponding out-leaf of u and in-leaf of v, so that unweighted
// distances in G equal weighted distances in H on center vertices.
type Expanded struct {
	H *Layered
	// G is the unweighted max-degree-3 graph.
	G *graph.Graph
	// AuxVertices counts the subdivision vertices on edge paths.
	AuxVertices int
	// TreeVertices counts all vertices of the T^in/T^out trees.
	TreeVertices int

	centers []graph.NodeID // centers[hID] = center vertex id in G
	outBase []graph.NodeID // id of heap node 1 of T^out, -1 if absent
	inBase  []graph.NodeID // id of heap node 1 of T^in, -1 if absent
}

// BuildG constructs G_{b,ℓ}.
func BuildG(p Params) (*Expanded, error) {
	h, err := BuildH(p)
	if err != nil {
		return nil, err
	}
	return Expand(h)
}

// Expand converts an already-built H_{b,ℓ} into G_{b,ℓ}.
func Expand(h *Layered) (*Expanded, error) {
	s := h.Side()
	layer := h.LayerSize()
	levels := h.Levels()
	nH := layer * levels
	treeNodes := 2*s - 1

	// Vertex budget: centers + trees + subdivision vertices.
	edges := h.G.Edges()
	total := int64(nH)
	treeCount := 0
	for level := 0; level < levels; level++ {
		if level > 0 {
			treeCount += layer
		}
		if level < levels-1 {
			treeCount += layer
		}
	}
	total += int64(treeCount) * int64(treeNodes)
	pathLenSum := int64(0)
	for _, e := range edges {
		pathLenSum += int64(e.W) - int64(2*h.B) - 3
	}
	total += pathLenSum
	if total > maxGVertices {
		return nil, fmt.Errorf("%w: expansion would have %d vertices (max %d)", ErrBadParam, total, maxGVertices)
	}

	e := &Expanded{
		H:       h,
		centers: make([]graph.NodeID, nH),
		outBase: make([]graph.NodeID, nH),
		inBase:  make([]graph.NodeID, nH),
	}
	next := graph.NodeID(0)
	alloc := func(k int) graph.NodeID {
		id := next
		next += graph.NodeID(k)
		return id
	}

	gb := graph.NewBuilder(int(total), int(total)+nH*2)
	// Centers first (ids 0..nH-1 equal the H ids, which keeps mappings
	// trivial), then trees, then path vertices.
	alloc(nH)
	for v := 0; v < nH; v++ {
		e.centers[v] = graph.NodeID(v)
		e.outBase[v] = -1
		e.inBase[v] = -1
	}
	addTree := func(center graph.NodeID) graph.NodeID {
		base := alloc(treeNodes)
		// Heap node k lives at id base+k-1; root (k=1) links to the center.
		gb.AddEdge(center, base)
		for k := 2; k <= treeNodes; k++ {
			gb.AddEdge(base+graph.NodeID(k-1), base+graph.NodeID(k/2-1))
		}
		return base
	}
	for v := 0; v < nH; v++ {
		level := h.LevelOf(graph.NodeID(v))
		if level > 0 {
			e.inBase[v] = addTree(e.centers[v])
		}
		if level < levels-1 {
			e.outBase[v] = addTree(e.centers[v])
		}
		e.TreeVertices = int(next) - nH
	}
	// leaf for value val is heap node s+val.
	leafID := func(base graph.NodeID, val int) graph.NodeID {
		return base + graph.NodeID(s+val-1)
	}
	for _, he := range edges {
		u, v := he.U, he.V
		if h.LevelOf(u) > h.LevelOf(v) {
			u, v = v, u
		}
		c := h.ChangingCoord(h.LevelOf(u))
		uVec := h.VectorOf(u)
		vVec := h.VectorOf(v)
		start := leafID(e.outBase[u], vVec[c])
		end := leafID(e.inBase[v], uVec[c])
		pathEdges := int(he.W) - 2*h.B - 2
		prev := start
		for t := 0; t < pathEdges-1; t++ {
			aux := alloc(1)
			gb.AddEdge(prev, aux)
			prev = aux
			e.AuxVertices++
		}
		gb.AddEdge(prev, end)
	}
	g, err := gb.Build()
	if err != nil {
		return nil, err
	}
	e.G = g
	return e, nil
}

// Center returns the G vertex corresponding to H vertex v_{level,vec}.
func (e *Expanded) Center(level int, vec []int) (graph.NodeID, error) {
	id, err := e.H.VertexID(level, vec)
	if err != nil {
		return 0, err
	}
	return e.centers[id], nil
}

// CenterOf returns the G vertex for an H vertex id.
func (e *Expanded) CenterOf(hID graph.NodeID) graph.NodeID { return e.centers[hID] }

// NumCenters returns the number of center vertices (= |V(H)|).
func (e *Expanded) NumCenters() int { return len(e.centers) }

// VerifyLemma22 checks Lemma 2.2 directly on the expanded graph G_{b,ℓ}:
// the shortest path between the centers of v_{0,x} and v_{2ℓ,z} is unique,
// has the same length as in H, and passes through the center of
// v_{ℓ,(x+z)/2}. Cost: one BFS over G per call.
func (e *Expanded) VerifyLemma22(x, z []int) (LemmaReport, error) {
	h := e.H
	for k := range x {
		if (z[k]-x[k])%2 != 0 {
			return LemmaReport{}, fmt.Errorf("%w: z-x odd at coordinate %d", ErrBadParam, k)
		}
	}
	srcH, err := h.VertexID(0, x)
	if err != nil {
		return LemmaReport{}, err
	}
	dstH, err := h.VertexID(2*h.L, z)
	if err != nil {
		return LemmaReport{}, err
	}
	mid := make([]int, h.L)
	for k := range mid {
		mid[k] = (x[k] + z[k]) / 2
	}
	midH, err := h.VertexID(h.L, mid)
	if err != nil {
		return LemmaReport{}, err
	}
	src, dst, midG := e.CenterOf(srcH), e.CenterOf(dstH), e.CenterOf(midH)
	res, counts := sssp.CountShortestPaths(e.G, src, 4)
	report := LemmaReport{
		X:          append([]int(nil), x...),
		Z:          append([]int(nil), z...),
		Length:     res.Dist[dst],
		WantLength: h.ExpectedPathLength(x, z),
		Unique:     counts[dst] == 1,
	}
	for _, v := range res.PathTo(dst) {
		if v == midG {
			report.ViaMid = true
			break
		}
	}
	return report, nil
}
