package lbound

import (
	"errors"
	"math/rand"
	"testing"

	"hublab/internal/graph"
	"hublab/internal/pll"
	"hublab/internal/sssp"
)

func TestParamsValidation(t *testing.T) {
	cases := []Params{{0, 1}, {1, 0}, {-1, 2}, {21, 1}, {10, 10}}
	for _, p := range cases {
		if _, err := BuildH(p); !errors.Is(err, ErrBadParam) {
			t.Errorf("BuildH(%+v) err = %v, want ErrBadParam", p, err)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{B: 2, L: 2}
	if p.Side() != 4 {
		t.Errorf("Side = %d, want 4", p.Side())
	}
	if p.LayerSize() != 16 {
		t.Errorf("LayerSize = %d, want 16", p.LayerSize())
	}
	if p.Levels() != 5 {
		t.Errorf("Levels = %d, want 5", p.Levels())
	}
	if p.BaseWeight() != 96 {
		t.Errorf("BaseWeight = %d, want 96 (3·2·16)", p.BaseWeight())
	}
	if p.TripletCount() != 16*4 {
		t.Errorf("TripletCount = %v, want 64", p.TripletCount())
	}
}

func TestChangingCoord(t *testing.T) {
	p := Params{B: 1, L: 3}
	// Up: coords 0,1,2; down: 2,1,0.
	want := []int{0, 1, 2, 2, 1, 0}
	for i, w := range want {
		if got := p.ChangingCoord(i); got != w {
			t.Errorf("ChangingCoord(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBuildHStructure(t *testing.T) {
	h, err := BuildH(Params{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	if h.G.NumNodes() != 80 {
		t.Errorf("NumNodes = %d, want 80 (5 levels × 16)", h.G.NumNodes())
	}
	// Each of the 4 level pairs contributes 16·4 edges.
	if h.G.NumEdges() != 4*16*4 {
		t.Errorf("NumEdges = %d, want 256", h.G.NumEdges())
	}
	// Every vertex has s neighbors above and s below (except extremes).
	for v := graph.NodeID(0); int(v) < h.G.NumNodes(); v++ {
		level := h.LevelOf(v)
		want := 8
		if level == 0 || level == 4 {
			want = 4
		}
		if d := h.G.Degree(v); d != want {
			t.Fatalf("Degree(level %d vertex) = %d, want %d", level, d, want)
		}
	}
}

func TestVertexIDRoundTrip(t *testing.T) {
	h, err := BuildH(Params{B: 2, L: 3})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		level := rng.Intn(h.Levels())
		vec := []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
		id, err := h.VertexID(level, vec)
		if err != nil {
			t.Fatalf("VertexID: %v", err)
		}
		if h.LevelOf(id) != level {
			t.Fatalf("LevelOf = %d, want %d", h.LevelOf(id), level)
		}
		got := h.VectorOf(id)
		for k := range vec {
			if got[k] != vec[k] {
				t.Fatalf("VectorOf = %v, want %v", got, vec)
			}
		}
	}
}

func TestVertexIDErrors(t *testing.T) {
	h, err := BuildH(Params{B: 1, L: 2})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	if _, err := h.VertexID(-1, []int{0, 0}); !errors.Is(err, ErrBadParam) {
		t.Error("negative level accepted")
	}
	if _, err := h.VertexID(9, []int{0, 0}); !errors.Is(err, ErrBadParam) {
		t.Error("too-large level accepted")
	}
	if _, err := h.VertexID(0, []int{0}); !errors.Is(err, ErrBadParam) {
		t.Error("short vector accepted")
	}
	if _, err := h.VertexID(0, []int{0, 5}); !errors.Is(err, ErrBadParam) {
		t.Error("out-of-range coordinate accepted")
	}
}

func TestEdgeWeightsFormula(t *testing.T) {
	h, err := BuildH(Params{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	// Edge between (0,0) level 0 and (3,0) level 1 changes coord 0 by 3:
	// weight A + 9.
	u, err := h.VertexID(0, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.VertexID(1, []int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := h.G.EdgeWeight(u, v)
	if !ok || w != h.A+9 {
		t.Errorf("EdgeWeight = (%d,%v), want (%d,true)", w, ok, h.A+9)
	}
	// No edge when a non-changing coordinate differs.
	v2, err := h.VertexID(1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.G.HasEdge(u, v2) {
		t.Error("edge exists despite non-changing coordinate differing")
	}
	// Same-vector edges exist with weight exactly A.
	v3, err := h.VertexID(1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := h.G.EdgeWeight(u, v3); !ok || w != h.A {
		t.Errorf("same-vector edge = (%d,%v), want (%d,true)", w, ok, h.A)
	}
}

func TestLemma22SinglePair(t *testing.T) {
	h, err := BuildH(Params{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	rep, err := h.VerifyLemma22([]int{1, 0}, []int{3, 2})
	if err != nil {
		t.Fatalf("VerifyLemma22: %v", err)
	}
	if !rep.Ok() {
		t.Errorf("Lemma 2.2 fails: %+v", rep)
	}
	if rep.Length != 4*h.A+4 {
		t.Errorf("length = %d, want %d (4A+4)", rep.Length, 4*h.A+4)
	}
	if _, err := h.VerifyLemma22([]int{0, 0}, []int{1, 0}); !errors.Is(err, ErrBadParam) {
		t.Error("odd difference accepted")
	}
}

// TestLemma22Exhaustive verifies Lemma 2.2 on every valid pair of two
// instances — the core correctness result behind Theorem 2.1.
func TestLemma22Exhaustive(t *testing.T) {
	for _, p := range []Params{{B: 1, L: 1}, {B: 2, L: 1}, {B: 1, L: 2}, {B: 2, L: 2}} {
		h, err := BuildH(p)
		if err != nil {
			t.Fatalf("BuildH(%+v): %v", p, err)
		}
		checked, bad, err := h.VerifyLemma22All()
		if err != nil {
			t.Fatalf("VerifyLemma22All(%+v): %v", p, err)
		}
		if bad != nil {
			t.Errorf("params %+v: Lemma 2.2 violated: %+v", p, *bad)
		}
		// Valid pairs: for each coordinate, (s/2)·s ordered (x_k,z_k) pairs
		// with even difference... total (s²/2)^ℓ.
		s := p.Side()
		want := 1
		for k := 0; k < p.L; k++ {
			want *= s * s / 2
		}
		if checked != want {
			t.Errorf("params %+v: checked %d pairs, want %d", p, checked, want)
		}
	}
}

func TestExpandStructure(t *testing.T) {
	e, err := BuildG(Params{B: 1, L: 1})
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	if got := e.G.MaxDegree(); got > 3 {
		t.Errorf("MaxDegree = %d, want ≤ 3 (Theorem 2.1(ii))", got)
	}
	if e.NumCenters() != 6 {
		t.Errorf("NumCenters = %d, want 6", e.NumCenters())
	}
	if !sssp.Connected(e.G) {
		t.Error("expanded graph disconnected")
	}
}

// TestExpandPreservesDistances checks the distance relationships the
// paper's argument actually relies on:
//
//  1. dist_G ≤ dist_H for all center pairs (every H-path maps to a G-path
//     of the same total length);
//  2. dist_G = w(e) for every H-edge (adjacent levels);
//  3. dist_G = dist_H for all bottom-to-top pairs (v_{0,x}, v_{2ℓ,z}),
//     where shortest paths are monotone and cross every level cut.
//
// Arbitrary cross-level pairs may be strictly shorter in G: when no
// monotone route exists, H-paths must reverse level direction and G saves
// 2 hops per reversal by cutting through a leaf tree. The proof never uses
// such pairs.
func TestExpandPreservesDistances(t *testing.T) {
	for _, p := range []Params{{B: 1, L: 1}, {B: 2, L: 1}, {B: 1, L: 2}} {
		e, err := BuildG(p)
		if err != nil {
			t.Fatalf("BuildG(%+v): %v", p, err)
		}
		h := e.H
		nH := h.G.NumNodes()
		layer := p.LayerSize()
		for u := graph.NodeID(0); int(u) < nH; u++ {
			hd := sssp.Dijkstra(h.G, u)
			gd := sssp.BFS(e.G, e.CenterOf(u))
			for v := graph.NodeID(0); int(v) < nH; v++ {
				hDist, gDist := hd.Dist[v], gd.Dist[e.CenterOf(v)]
				if gDist > hDist {
					t.Fatalf("params %+v: pair (%d,%d): G=%d exceeds H=%d",
						p, u, v, gDist, hDist)
				}
				if w, ok := h.G.EdgeWeight(u, v); ok && gDist != w {
					t.Fatalf("params %+v: H-edge (%d,%d) weight %d, G distance %d",
						p, u, v, w, gDist)
				}
			}
			if h.LevelOf(u) == 0 {
				// Bottom-to-top pairs must match exactly.
				for zi := 0; zi < layer; zi++ {
					v := graph.NodeID(2*p.L*layer + zi)
					if hd.Dist[v] != gd.Dist[e.CenterOf(v)] {
						t.Fatalf("params %+v: bottom-top pair (%d,%d): H=%d G=%d",
							p, u, v, hd.Dist[v], gd.Dist[e.CenterOf(v)])
					}
				}
			}
		}
	}
}

// TestLemma22OnExpanded verifies Lemma 2.2 directly in the degree-3 graph
// G_{b,ℓ} for a sample of pairs.
func TestLemma22OnExpanded(t *testing.T) {
	e, err := BuildG(Params{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	pairs := [][2][]int{
		{{1, 0}, {3, 2}}, // the Figure 1 pair
		{{0, 0}, {0, 0}},
		{{0, 0}, {2, 2}},
		{{3, 3}, {1, 1}},
		{{2, 0}, {0, 2}},
	}
	for _, pr := range pairs {
		rep, err := e.VerifyLemma22(pr[0], pr[1])
		if err != nil {
			t.Fatalf("VerifyLemma22(%v,%v): %v", pr[0], pr[1], err)
		}
		if !rep.Ok() {
			t.Errorf("Lemma 2.2 fails in G for (%v,%v): %+v", pr[0], pr[1], rep)
		}
	}
	if _, err := e.VerifyLemma22([]int{0, 0}, []int{1, 0}); !errors.Is(err, ErrBadParam) {
		t.Error("odd difference accepted in G verifier")
	}
}

func TestExpandNodeCountBound(t *testing.T) {
	for _, p := range []Params{{B: 1, L: 1}, {B: 2, L: 1}, {B: 1, L: 2}, {B: 2, L: 2}} {
		e, err := BuildG(p)
		if err != nil {
			t.Fatalf("BuildG(%+v): %v", p, err)
		}
		s := p.Side()
		nH := p.LayerSize() * p.Levels()
		// Paper bound: |V(G)| ≤ 4s·|V(H)| + Σ w(e).
		bound := int64(4*s*nH) + e.H.G.TotalWeight()
		if int64(e.G.NumNodes()) > bound {
			t.Errorf("params %+v: |V(G)| = %d exceeds paper bound %d", p, e.G.NumNodes(), bound)
		}
	}
}

func TestCertificateH(t *testing.T) {
	h, err := BuildH(Params{B: 2, L: 2})
	if err != nil {
		t.Fatalf("BuildH: %v", err)
	}
	cert := h.CertificateH()
	if cert.Triplets != 64 {
		t.Errorf("Triplets = %v, want 64", cert.Triplets)
	}
	if cert.Vertices != 80 {
		t.Errorf("Vertices = %d, want 80", cert.Vertices)
	}
	if cert.HopBound < 2 || cert.HopBound > 8 {
		t.Errorf("HopBound = %d, want small (paths have ≤ ~2ℓ hops)", cert.HopBound)
	}
	if cert.AvgHubLB <= 0 {
		t.Errorf("AvgHubLB = %v, want > 0", cert.AvgHubLB)
	}
}

// TestCertificateAgainstPLL: the certified lower bound must hold for the
// PLL labeling (which is a valid hub labeling), i.e. measured average hub
// set size ≥ certified bound. This is the executable form of Theorem 1.1.
func TestCertificateAgainstPLL(t *testing.T) {
	for _, p := range []Params{{B: 2, L: 2}, {B: 3, L: 2}} {
		h, err := BuildH(p)
		if err != nil {
			t.Fatalf("BuildH(%+v): %v", p, err)
		}
		l, err := pll.Build(h.G, pll.Options{})
		if err != nil {
			t.Fatalf("pll.Build: %v", err)
		}
		if err := l.VerifySampled(h.G, 200, 1); err != nil {
			t.Fatalf("VerifySampled: %v", err)
		}
		cert := h.CertificateH()
		measured := l.ComputeStats().Avg
		if measured < cert.AvgHubLB {
			t.Errorf("params %+v: PLL average %v below certified bound %v — impossible",
				p, measured, cert.AvgHubLB)
		}
	}
}

func TestCertificateG(t *testing.T) {
	e, err := BuildG(Params{B: 1, L: 1})
	if err != nil {
		t.Fatalf("BuildG: %v", err)
	}
	cert := e.CertificateG()
	if cert.HopBound != (3*1+1)*2*2*4*1 {
		t.Errorf("HopBound = %d, want %d", cert.HopBound, 64)
	}
	if cert.Vertices != e.G.NumNodes() {
		t.Errorf("Vertices = %d, want %d", cert.Vertices, e.G.NumNodes())
	}
}

func TestFigureOne(t *testing.T) {
	fig, err := FigureOne()
	if err != nil {
		t.Fatalf("FigureOne: %v", err)
	}
	if fig.A != 96 {
		t.Errorf("A = %d, want 96", fig.A)
	}
	if fig.BlueLength != 4*fig.A+4 {
		t.Errorf("BlueLength = %d, want 4A+4 = %d", fig.BlueLength, 4*fig.A+4)
	}
	if fig.RedLength != 4*fig.A+8 {
		t.Errorf("RedLength = %d, want 4A+8 = %d", fig.RedLength, 4*fig.A+8)
	}
	if !fig.Unique || !fig.ViaMid {
		t.Errorf("blue path: Unique=%v ViaMid=%v, want true/true", fig.Unique, fig.ViaMid)
	}
	if len(fig.Blue) != 5 {
		t.Errorf("blue path has %d vertices, want 5 (4 hops)", len(fig.Blue))
	}
	// The blue path's middle vertex is the symmetry point v_{2,(2,1)}.
	if fig.Blue[2] != fig.Mid {
		t.Errorf("blue path midpoint = %d, want %d", fig.Blue[2], fig.Mid)
	}
}
