package lbound

import (
	"fmt"
	"math"

	"hublab/internal/graph"
	"hublab/internal/sssp"
)

// Certificate is the triplet-counting lower bound of Theorem 2.1 (iii) in
// executable form. The argument: for every triplet (x, y, z) with
// y = (x+z)/2, the unique shortest path from v_{0,x} to v_{2ℓ,z} passes
// through v_{ℓ,y} (Lemma 2.2), so y belongs to the monotone hub set S*_x or
// S*_z; distinct triplets charge distinct (vertex, hub) incidences, hence
// Σ_v |S*_v| ≥ #triplets, and Σ_v |S_v| ≥ #triplets / hopBound because
// |S*_v| ≤ hopBound·|S_v| along shortest-path trees.
type Certificate struct {
	// Triplets is s^ℓ · (s/2)^ℓ, the number of (x, y, z) charges.
	Triplets float64
	// Vertices is the vertex count of the certified graph.
	Vertices int
	// HopBound bounds the number of edges on any shortest path.
	HopBound int
	// AvgMonotoneLB = Triplets / Vertices lower-bounds the average monotone
	// hub set size Σ|S*_v|/n.
	AvgMonotoneLB float64
	// AvgHubLB = Triplets / (Vertices·HopBound) lower-bounds the average
	// hub set size of ANY hub labeling of the graph.
	AvgHubLB float64
}

// TripletCount returns s^ℓ·(s/2)^ℓ.
func (p Params) TripletCount() float64 {
	s := float64(p.Side())
	return math.Pow(s, float64(p.L)) * math.Pow(s/2, float64(p.L))
}

// CertificateH computes the certificate for H_{b,ℓ} with an exact hop
// bound derived from the weighted diameter: every edge weighs at least A,
// so no shortest path has more than diam/A edges.
func (h *Layered) CertificateH() Certificate {
	diam := sssp.Diameter(h.G)
	hops := int(diam / h.A)
	if hops < 1 {
		hops = 1
	}
	n := h.G.NumNodes()
	t := h.TripletCount()
	return Certificate{
		Triplets:      t,
		Vertices:      n,
		HopBound:      hops,
		AvgMonotoneLB: t / float64(n),
		AvgHubLB:      t / float64(n) / float64(hops),
	}
}

// CertificateG computes the certificate for the expanded G_{b,ℓ} using the
// paper's closed-form diameter bound diam(G) ≤ (3ℓ+1)s²·4ℓ (Eq. 1), which
// avoids an all-pairs computation on the large expanded graph.
func (e *Expanded) CertificateG() Certificate {
	p := e.H.Params
	s := p.Side()
	hops := (3*p.L + 1) * s * s * 4 * p.L
	n := e.G.NumNodes()
	t := p.TripletCount()
	return Certificate{
		Triplets:      t,
		Vertices:      n,
		HopBound:      hops,
		AvgMonotoneLB: t / float64(n),
		AvgHubLB:      t / float64(n) / float64(hops),
	}
}

// Figure1 reproduces the data of the paper's Figure 1 on H_{2,2}: the blue
// path from v_{0,(1,0)} to v_{4,(3,2)} of length 4A+4 through v_{2,(2,1)},
// and the red path of length 4A+8 that front-loads both coordinate changes.
type Figure1 struct {
	A graph.Weight
	// Blue is the unique shortest path (vertex ids in H_{2,2}).
	Blue []graph.NodeID
	// BlueLength = 4A+4.
	BlueLength graph.Weight
	// Mid is v_{2,(2,1)}, the blue path's point of symmetry.
	Mid graph.NodeID
	// Unique reports that the blue path is the only shortest path.
	Unique bool
	// ViaMid reports that the blue path passes through Mid.
	ViaMid bool
	// Red is the alternative path; RedLength = 4A+8.
	Red       []graph.NodeID
	RedLength graph.Weight
}

// FigureOne builds H_{2,2} and verifies the two paths drawn in Figure 1.
func FigureOne() (*Figure1, error) {
	h, err := BuildH(Params{B: 2, L: 2})
	if err != nil {
		return nil, err
	}
	x := []int{1, 0}
	z := []int{3, 2}
	rep, err := h.VerifyLemma22(x, z)
	if err != nil {
		return nil, err
	}
	src, err := h.VertexID(0, x)
	if err != nil {
		return nil, err
	}
	dst, err := h.VertexID(4, z)
	if err != nil {
		return nil, err
	}
	mid, err := h.VertexID(2, []int{2, 1})
	if err != nil {
		return nil, err
	}
	res := sssp.Dijkstra(h.G, src)
	fig := &Figure1{
		A:          h.A,
		Blue:       res.PathTo(dst),
		BlueLength: res.Dist[dst],
		Mid:        mid,
		Unique:     rep.Unique,
		ViaMid:     rep.ViaMid,
	}
	// Red path: change both coordinates fully on the way up
	// ((1,0) → (3,0) → (3,2)) and keep them on the way down.
	redVecs := [][]int{{1, 0}, {3, 0}, {3, 2}, {3, 2}, {3, 2}}
	var redLen graph.Weight
	red := make([]graph.NodeID, 0, len(redVecs))
	for level, vec := range redVecs {
		id, err := h.VertexID(level, vec)
		if err != nil {
			return nil, err
		}
		red = append(red, id)
	}
	for i := 0; i+1 < len(red); i++ {
		w, ok := h.G.EdgeWeight(red[i], red[i+1])
		if !ok {
			return nil, errNotEdge(red[i], red[i+1])
		}
		redLen += w
	}
	fig.Red = red
	fig.RedLength = redLen
	return fig, nil
}

func errNotEdge(u, v graph.NodeID) error {
	return fmt.Errorf("lbound: figure path step (%d,%d) is not an edge", u, v)
}
