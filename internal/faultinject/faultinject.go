// Package faultinject is a tiny fault-injection registry for chaos
// testing the serving and persistence stack: code under test declares
// named injection points (Fire, WrapWriter) at its liveness- and
// durability-critical seams, and a test or chaos harness arms triggers
// against those points — a panic, an added delay, an injected error, or
// a short write — with deterministic scheduling.
//
// The design constraint is the hot path: injection points sit inside
// the shard-worker dispatch and the container I/O loop, so a disabled
// registry must cost nothing measurable. Fire first reads one
// package-level atomic.Bool; until Enable has armed a spec, that load
// and a predicted branch are the entire cost (sub-nanosecond, pinned by
// BenchmarkE22FireDisabled). No map lookup, no lock, no allocation
// happens on the disabled path.
//
// Trigger scheduling is deterministic: probabilistic triggers draw from
// a splitmix64 stream seeded by the global seed XOR a hash of the point
// name, and count-based triggers (every=N, after=N, times=K) depend
// only on the visit sequence. Re-arming the same spec with the same
// seed replays the same fault schedule, which is what makes chaos runs
// debuggable.
//
// Spec grammar (Enable), clauses joined by ';':
//
//	point:kind[:key=value[,key=value...]]
//
// with kind one of panic | delay | error | shortwrite and keys
//
//	p=0.25     fire with probability p per visit (default: every visit)
//	every=N    fire on every Nth visit (deterministic; combines with after)
//	after=N    skip the first N visits
//	times=K    disarm after K fires
//	d=10ms     delay duration (kind delay)
//	n=4096     bytes written before the fault (kind shortwrite)
//
// Example: "server.worker:panic:every=50;index.save.write:shortwrite:n=100".
//
// Processes opt in via HUBLAB_FAULTS / HUBLAB_FAULTS_SEED (EnableFromEnv,
// called by the CLIs, which log loudly when a spec is armed) or
// programmatically via Enable. Production builds never arm anything.
package faultinject

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection-point names. Points are plain strings so packages
// can mint their own, but the seams the chaos harness relies on are
// named here in one place.
const (
	// PointServerWorker fires in the shard worker before serving a
	// coalesced group; a panic here exercises worker panic isolation,
	// a delay exercises query deadlines.
	PointServerWorker = "server.worker"
	// PointServerWarm fires inside capability warming (the lazy
	// next-hop / eccentricity-list builds), the classic stall seam.
	PointServerWarm = "server.warm"
	// PointContainerWrite wraps the container writer in index.Save;
	// shortwrite simulates a crash / disk-full mid-save.
	PointContainerWrite = "index.save.write"
	// PointContainerRead fires before a container load (index.Load,
	// index.LoadMmap).
	PointContainerRead = "index.load"
	// PointReload fires in the hubserve reload path before the swap.
	PointReload = "hubserve.reload"
)

// ErrInjected is the error returned by error and shortwrite triggers;
// tests assert on it with errors.Is.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// Kind is the fault class a trigger injects.
type Kind uint8

const (
	KindPanic Kind = iota
	KindDelay
	KindError
	KindShortWrite
)

var kindNames = map[string]Kind{
	"panic":      KindPanic,
	"delay":      KindDelay,
	"error":      KindError,
	"shortwrite": KindShortWrite,
}

// trigger is one armed clause. Counters are atomic so Fire can run from
// any number of goroutines without a lock.
type trigger struct {
	point string
	kind  Kind
	p     float64 // fire probability; 0 means unconditional
	every int64   // fire on every Nth visit (0 = every visit)
	after int64   // skip the first N visits
	times int64   // disarm after K fires (0 = unlimited)
	delay time.Duration
	limit int64 // shortwrite byte budget

	visits atomic.Int64
	fires  atomic.Int64
	rng    atomic.Uint64 // splitmix64 state
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	points  map[string][]*trigger
)

// splitmix64 advances the trigger's private deterministic stream.
func (t *trigger) next() uint64 {
	for {
		old := t.rng.Load()
		z := old + 0x9e3779b97f4a7c15
		if !t.rng.CompareAndSwap(old, z) {
			continue
		}
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// shouldFire applies the visit-count and probability gates and, when it
// returns true, has already claimed one of the trigger's fires.
func (t *trigger) shouldFire() bool {
	v := t.visits.Add(1)
	if v <= t.after {
		return false
	}
	if t.every > 1 && (v-t.after)%t.every != 0 {
		return false
	}
	if t.p > 0 && t.p < 1 {
		// 53-bit uniform in [0,1).
		if float64(t.next()>>11)/(1<<53) >= t.p {
			return false
		}
	}
	if t.times > 0 {
		if t.fires.Add(1) > t.times {
			return false
		}
		return true
	}
	t.fires.Add(1)
	return true
}

// Enable parses spec and arms the registry, replacing any previous
// arming. The seed makes probabilistic triggers reproducible. An empty
// spec disarms (same as Disable).
func Enable(spec string, seed uint64) error {
	pts := map[string][]*trigger{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		t, err := parseClause(clause, seed)
		if err != nil {
			return err
		}
		pts[t.point] = append(pts[t.point], t)
	}
	mu.Lock()
	points = pts
	mu.Unlock()
	enabled.Store(len(pts) > 0)
	return nil
}

// EnableFromEnv arms the registry from HUBLAB_FAULTS (and
// HUBLAB_FAULTS_SEED, default 1). It reports whether a spec was armed
// so callers can log the fact; a malformed spec is an error, not a
// silently fault-free run.
func EnableFromEnv() (string, bool, error) {
	spec := os.Getenv("HUBLAB_FAULTS")
	if spec == "" {
		return "", false, nil
	}
	seed := uint64(1)
	if s := os.Getenv("HUBLAB_FAULTS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return "", false, fmt.Errorf("faultinject: bad HUBLAB_FAULTS_SEED %q: %v", s, err)
		}
		seed = v
	}
	if err := Enable(spec, seed); err != nil {
		return "", false, err
	}
	return spec, true, nil
}

// Disable disarms every trigger; Fire returns to its zero-cost path.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// Enabled reports whether any trigger is armed. Exposed so callers with
// a non-trivial argument path (building a wrapped writer, say) can skip
// the work entirely in production.
func Enabled() bool { return enabled.Load() }

func parseClause(clause string, seed uint64) (*trigger, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("faultinject: clause %q: want point:kind[:params]", clause)
	}
	kind, ok := kindNames[parts[1]]
	if !ok {
		return nil, fmt.Errorf("faultinject: clause %q: unknown kind %q", clause, parts[1])
	}
	t := &trigger{point: parts[0], kind: kind, delay: time.Millisecond, limit: 0}
	t.rng.Store(seed ^ hashPoint(parts[0]))
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			k, v, found := strings.Cut(kv, "=")
			if !found {
				return nil, fmt.Errorf("faultinject: clause %q: bad param %q", clause, kv)
			}
			var err error
			switch k {
			case "p":
				t.p, err = strconv.ParseFloat(v, 64)
				if err == nil && (t.p < 0 || t.p > 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "every":
				t.every, err = strconv.ParseInt(v, 10, 64)
			case "after":
				t.after, err = strconv.ParseInt(v, 10, 64)
			case "times":
				t.times, err = strconv.ParseInt(v, 10, 64)
			case "d":
				t.delay, err = time.ParseDuration(v)
			case "n":
				t.limit, err = strconv.ParseInt(v, 10, 64)
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: clause %q: param %q: %v", clause, kv, err)
			}
		}
	}
	return t, nil
}

// hashPoint is FNV-1a, so per-point streams differ under one seed.
func hashPoint(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fire visits an injection point. Disabled (the production state) it is
// one atomic load. Armed, it applies every trigger on the point in
// order: a panic trigger panics with a recognizable message, a delay
// trigger sleeps, an error trigger returns ErrInjected (wrapped with
// the point name). Shortwrite triggers are inert here — they only act
// through WrapWriter.
func Fire(point string) error {
	if !enabled.Load() {
		return nil
	}
	return fire(point)
}

func fire(point string) error {
	mu.RLock()
	ts := points[point]
	mu.RUnlock()
	for _, t := range ts {
		if t.kind == KindShortWrite || !t.shouldFire() {
			continue
		}
		switch t.kind {
		case KindPanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s", point))
		case KindDelay:
			time.Sleep(t.delay)
		case KindError:
			return fmt.Errorf("%w at %s", ErrInjected, point)
		}
	}
	return nil
}

// Fired returns how many times any trigger on the point has fired —
// the assertion hook for chaos tests ("at least N panics were really
// injected").
func Fired(point string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	var n int64
	for _, t := range points[point] {
		f := t.fires.Load()
		if t.times > 0 && f > t.times {
			f = t.times
		}
		n += f
	}
	return n
}

// Points returns the armed point names, sorted — for the "faults armed"
// startup log line.
func Points() []string {
	mu.RLock()
	defer mu.RUnlock()
	var names []string
	for p := range points {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// WrapWriter returns w unless a shortwrite trigger on the point decides
// to fire, in which case the returned writer passes through limit bytes
// and then fails with ErrInjected — the observable shape of a crash or
// a full disk partway through a save. The decision is made once, at
// wrap time, so a non-firing visit costs nothing downstream.
func WrapWriter(point string, w io.Writer) io.Writer {
	if !enabled.Load() {
		return w
	}
	mu.RLock()
	ts := points[point]
	mu.RUnlock()
	for _, t := range ts {
		if t.kind != KindShortWrite || !t.shouldFire() {
			continue
		}
		return &shortWriter{w: w, left: t.limit, point: point}
	}
	return w
}

// shortWriter forwards up to left bytes, then fails every Write.
type shortWriter struct {
	w     io.Writer
	left  int64
	point string
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.left <= 0 {
		return 0, fmt.Errorf("%w: short write at %s", ErrInjected, s.point)
	}
	if int64(len(p)) <= s.left {
		n, err := s.w.Write(p)
		s.left -= int64(n)
		return n, err
	}
	n, err := s.w.Write(p[:s.left])
	s.left -= int64(n)
	if err == nil {
		err = fmt.Errorf("%w: short write at %s", ErrInjected, s.point)
	}
	return n, err
}

// WrapWriterAt is WrapWriter for positioned writers (the streaming
// container emitter saves through io.WriterAt): unless a shortwrite
// trigger on the point fires at wrap time, w is returned untouched;
// otherwise the returned writer passes through limit bytes in total —
// regardless of offset order — and then fails with ErrInjected.
func WrapWriterAt(point string, w io.WriterAt) io.WriterAt {
	if !enabled.Load() {
		return w
	}
	mu.RLock()
	ts := points[point]
	mu.RUnlock()
	for _, t := range ts {
		if t.kind != KindShortWrite || !t.shouldFire() {
			continue
		}
		return &shortWriterAt{w: w, point: point, left: t.limit}
	}
	return w
}

// shortWriterAt forwards up to left bytes of WriteAt traffic, then
// fails every call. The budget counts bytes written, not file extent,
// so it models a crash after N successful device writes no matter how
// the caller interleaves its column cursors.
type shortWriterAt struct {
	w     io.WriterAt
	point string
	mu    sync.Mutex
	left  int64
}

func (s *shortWriterAt) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.left <= 0 {
		return 0, fmt.Errorf("%w: short write at %s", ErrInjected, s.point)
	}
	if int64(len(p)) <= s.left {
		n, err := s.w.WriteAt(p, off)
		s.left -= int64(n)
		return n, err
	}
	n, err := s.w.WriteAt(p[:s.left], off)
	s.left -= int64(n)
	if err == nil {
		err = fmt.Errorf("%w: short write at %s", ErrInjected, s.point)
	}
	return n, err
}
