package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// arm is Enable with test cleanup, so no test leaks an armed registry
// into the rest of the run.
func arm(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := Enable(spec, seed); err != nil {
		t.Fatalf("Enable(%q): %v", spec, err)
	}
	t.Cleanup(Disable)
}

func TestDisabledFireIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable")
	}
	if err := Fire("anything"); err != nil {
		t.Fatalf("disabled Fire = %v", err)
	}
	var buf bytes.Buffer
	if w := WrapWriter("anything", &buf); w != &buf {
		t.Fatal("disabled WrapWriter did not pass the writer through")
	}
}

func TestErrorTriggerEveryN(t *testing.T) {
	arm(t, "p1:error:every=3", 1)
	var errs int
	for i := 0; i < 12; i++ {
		if err := Fire("p1"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			errs++
		}
	}
	if errs != 4 {
		t.Fatalf("every=3 fired %d of 12 visits, want 4", errs)
	}
	if Fired("p1") != 4 {
		t.Fatalf("Fired = %d, want 4", Fired("p1"))
	}
}

func TestAfterAndTimes(t *testing.T) {
	arm(t, "p2:error:after=5,times=2", 1)
	var errs int
	for i := 0; i < 20; i++ {
		if Fire("p2") != nil {
			errs++
			if i < 5 {
				t.Fatalf("fired at visit %d despite after=5", i)
			}
		}
	}
	if errs != 2 {
		t.Fatalf("times=2 fired %d times", errs)
	}
}

func TestPanicTrigger(t *testing.T) {
	arm(t, "p3:panic", 1)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic trigger did not panic")
		}
		if !strings.Contains(p.(string), "p3") {
			t.Fatalf("panic message %v does not name the point", p)
		}
	}()
	Fire("p3")
}

func TestDelayTrigger(t *testing.T) {
	arm(t, "p4:delay:d=30ms", 1)
	start := time.Now()
	if err := Fire("p4"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay trigger slept %v, want ≥ 30ms", d)
	}
}

// TestProbabilisticDeterminism pins that the same spec and seed replay
// the same fault schedule — the property that makes chaos runs
// debuggable — and that a different seed gives a different one.
func TestProbabilisticDeterminism(t *testing.T) {
	schedule := func(seed uint64) string {
		if err := Enable("p5:error:p=0.5", seed); err != nil {
			t.Fatal(err)
		}
		defer Disable()
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Fire("p5") != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := schedule(7), schedule(7)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	c := schedule(8)
	if a == c {
		t.Fatalf("different seeds, same schedule: %s", a)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 schedule is degenerate: %s", a)
	}
}

func TestShortWriteTrigger(t *testing.T) {
	arm(t, "pw:shortwrite:n=10", 1)
	var buf bytes.Buffer
	w := WrapWriter("pw", &buf)
	if w == &buf {
		t.Fatal("shortwrite trigger did not wrap the writer")
	}
	n, err := w.Write(bytes.Repeat([]byte{0xab}, 25))
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (10, ErrInjected)", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying writer got %d bytes, want 10", buf.Len())
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after exhaustion = %v, want ErrInjected", err)
	}
	// Subsequent wraps on a single-fire... shortwrite with no times cap
	// re-fires each wrap; with times=1 it must not.
	arm(t, "pw:shortwrite:n=10,times=1", 1)
	var b2 bytes.Buffer
	if w := WrapWriter("pw", &b2); w == &b2 {
		t.Fatal("first wrap after re-arm did not fire")
	}
	if w := WrapWriter("pw", &b2); w != &b2 {
		t.Fatal("times=1 shortwrite fired twice")
	}
}

func TestSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"nokind",
		"p:badkind",
		"p:error:junk",
		"p:error:p=1.5",
		"p:delay:d=notaduration",
		"p:error:wat=1",
	} {
		if err := Enable(spec, 1); err == nil {
			Disable()
			t.Errorf("Enable(%q) accepted a malformed spec", spec)
		}
	}
	if Enabled() {
		t.Fatal("failed Enable left the registry armed")
	}
}

func TestEnableFromEnv(t *testing.T) {
	t.Setenv("HUBLAB_FAULTS", "envpt:error:every=1")
	t.Setenv("HUBLAB_FAULTS_SEED", "9")
	spec, armed, err := EnableFromEnv()
	if err != nil || !armed || spec == "" {
		t.Fatalf("EnableFromEnv = (%q, %v, %v)", spec, armed, err)
	}
	t.Cleanup(Disable)
	if err := Fire("envpt"); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed point did not fire: %v", err)
	}
	if got := Points(); len(got) != 1 || got[0] != "envpt" {
		t.Fatalf("Points = %v", got)
	}
}

// TestConcurrentFire drives an armed point from many goroutines under
// the race detector: the registry must be lock-free-safe and the fire
// count exact.
func TestConcurrentFire(t *testing.T) {
	arm(t, "pc:error:every=10", 3)
	const goroutines, visits = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < visits; i++ {
				Fire("pc")
			}
		}()
	}
	wg.Wait()
	if got := Fired("pc"); got != goroutines*visits/10 {
		t.Fatalf("Fired = %d, want %d", got, goroutines*visits/10)
	}
}
