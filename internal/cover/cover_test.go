package cover

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/pll"
)

func TestGreedyPath(t *testing.T) {
	g, err := gen.Path(12)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Greedy(g)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestGreedyStarIsTiny(t *testing.T) {
	b := graph.NewBuilder(21, 20)
	for v := graph.NodeID(1); v <= 20; v++ {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, err := Greedy(g)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if err := l.VerifyCover(g); err != nil {
		t.Fatalf("VerifyCover: %v", err)
	}
	s := l.ComputeStats()
	// Center + self covers everything: average ≤ ~2.
	if s.Avg > 2.2 {
		t.Errorf("star greedy avg label = %v, want ≤ 2.2", s.Avg)
	}
}

func TestGreedyEmptyAndSingle(t *testing.T) {
	empty, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Greedy(empty); err != nil {
		t.Errorf("Greedy(empty): %v", err)
	}
	single, err := gen.Path(1)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	l, err := Greedy(single)
	if err != nil {
		t.Fatalf("Greedy(single): %v", err)
	}
	if err := l.VerifyCover(single); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestGreedyTooLarge(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	b.Grow(MaxVertices + 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Greedy(g); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Greedy err = %v, want ErrTooLarge", err)
	}
}

// TestGreedyIsCover: greedy always produces a valid shortest-path cover on
// random sparse graphs, including disconnected ones.
func TestGreedyIsCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n, 2*n)
		for k := 0; k < 2*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		b.Grow(n)
		g, err := b.Build()
		if err != nil {
			return false
		}
		l, err := Greedy(g)
		if err != nil {
			return false
		}
		return l.VerifyCover(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGreedyCompetitiveWithPLL: the greedy reference should not be wildly
// worse than PLL on small sparse graphs (within 2x total size).
func TestGreedyCompetitiveWithPLL(t *testing.T) {
	g, err := gen.Gnm(100, 160, 11)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	gl, err := Greedy(g)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	pl, err := pll.Build(g, pll.Options{})
	if err != nil {
		t.Fatalf("pll.Build: %v", err)
	}
	gs, ps := gl.ComputeStats(), pl.ComputeStats()
	if float64(gs.Total) > 2.0*float64(ps.Total) {
		t.Errorf("greedy total %d vs PLL total %d: ratio too large", gs.Total, ps.Total)
	}
}
