// Package cover implements a greedy 2-hop cover construction in the spirit
// of Cohen, Halperin, Kaplan and Zwick: hubs are chosen one at a time to
// maximize the number of still-uncovered vertex pairs they cover, and each
// chosen hub is added to the labels of both endpoints of every pair it
// covers. The result is a valid shortest-path cover whose total size serves
// as a near-optimal reference point for small graphs (it is not the exact
// optimum, which is NP-hard).
package cover

import (
	"errors"
	"fmt"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// MaxVertices bounds the graphs Greedy accepts; the algorithm holds the
// full distance matrix and iterates over all pairs per round.
const MaxVertices = 2000

// ErrTooLarge reports a graph beyond MaxVertices.
var ErrTooLarge = errors.New("cover: graph too large for greedy 2-hop cover")

// Greedy builds a 2-hop cover greedily. It is exact (always a valid cover)
// and intended for graphs with at most MaxVertices vertices.
func Greedy(g *graph.Graph) (*hub.Labeling, error) {
	n := g.NumNodes()
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (max %d)", ErrTooLarge, n, MaxVertices)
	}
	l := hub.NewLabeling(n)
	if n == 0 {
		return l, nil
	}
	d := sssp.AllPairs(g)

	// uncovered tracks pairs (u,v), u ≤ v, with finite distance that no
	// chosen hub covers yet. Self-pairs (u,u) are covered by self-hubs,
	// which the greedy discovers naturally (h=u covers (u,u)).
	type pairList struct {
		us, vs []graph.NodeID
	}
	uncovered := pairList{}
	for u := 0; u < n; u++ {
		for v := u; v < n; v++ {
			if d[u][v] < graph.Infinity {
				uncovered.us = append(uncovered.us, graph.NodeID(u))
				uncovered.vs = append(uncovered.vs, graph.NodeID(v))
			}
		}
	}

	covers := func(h graph.NodeID, u, v graph.NodeID) bool {
		return d[u][h]+d[h][v] == d[u][v]
	}

	counts := make([]int, n)
	for len(uncovered.us) > 0 {
		// Pick the hub covering the most uncovered pairs. Scoring each
		// candidate hub is independent, so it fans out over the worker
		// pool; the argmax scan stays sequential and takes the smallest id
		// among maxima, matching the sequential greedy exactly.
		par.For(n, func(h int) {
			count := 0
			for i := range uncovered.us {
				if covers(graph.NodeID(h), uncovered.us[i], uncovered.vs[i]) {
					count++
				}
			}
			counts[h] = count
		})
		bestH := graph.NodeID(-1)
		bestCount := -1
		for h := 0; h < n; h++ {
			if counts[h] > bestCount {
				bestCount = counts[h]
				bestH = graph.NodeID(h)
			}
		}
		if bestCount <= 0 {
			// Cannot happen on consistent metric data: h=u always covers
			// (u,v). Guard anyway to avoid a spin loop on corrupt input.
			return nil, errors.New("cover: greedy made no progress")
		}
		// Assign bestH to both endpoints of each covered pair; keep the rest.
		next := pairList{}
		touched := make(map[graph.NodeID]bool)
		for i := range uncovered.us {
			u, v := uncovered.us[i], uncovered.vs[i]
			if covers(bestH, u, v) {
				touched[u] = true
				touched[v] = true
			} else {
				next.us = append(next.us, u)
				next.vs = append(next.vs, v)
			}
		}
		for v := range touched {
			l.Add(v, bestH, d[v][bestH])
		}
		uncovered = next
	}
	l.Canonicalize()
	if err := l.ComputeParents(g); err != nil {
		return nil, err
	}
	l.Freeze()
	return l, nil
}
