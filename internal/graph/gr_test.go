package graph

import (
	"errors"
	"strings"
	"testing"
)

// A valid 4-vertex instance with both arc directions listed, the way
// the DIMACS road networks are published.
const grOK = `c tiny road fragment
p sp 4 8
a 1 2 3
a 2 1 3
a 2 3 1
a 3 2 1
a 3 4 2
a 4 3 2
a 1 4 9
a 4 1 9
`

func TestReadGr(t *testing.T) {
	g, err := ReadGr(strings.NewReader(grOK))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d, want n=4 m=4", g.NumNodes(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 3 {
		t.Errorf("edge {0,1} weight = %d,%v, want 3", w, ok)
	}
	if w, ok := g.EdgeWeight(0, 3); !ok || w != 9 {
		t.Errorf("edge {0,3} weight = %d,%v, want 9", w, ok)
	}
}

// TestReadGrAsymmetric pins the documented merge rule: an arc pair with
// unequal directional weights collapses to the cheaper one.
func TestReadGrAsymmetric(t *testing.T) {
	g, err := ReadGr(strings.NewReader("p sp 2 2\na 1 2 7\na 2 1 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 4 {
		t.Fatalf("asymmetric pair merged to %d,%v, want 4", w, ok)
	}
}

func TestReadGrSelfLoopsSkipped(t *testing.T) {
	g, err := ReadGr(strings.NewReader("p sp 2 3\na 1 1 5\na 1 2 2\na 2 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("got %d edges, want the self-loop dropped", g.NumEdges())
	}
}

func TestReadGrIsolatedTrailingVertex(t *testing.T) {
	g, err := ReadGr(strings.NewReader("p sp 5 2\na 1 2 1\na 2 1 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("got n=%d, want the header's 5 kept", g.NumNodes())
	}
}

// TestReadGrHostile walks the hostile-input corpus the fuzzer grew out
// of: every case must fail with ErrGrFormat, never a panic or a
// silently wrong graph.
func TestReadGrHostile(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"comments-only", "c nothing here\nc still nothing\n"},
		{"truncated-header", "p sp 4\na 1 2 3\n"},
		{"wrong-problem-kind", "p max 4 2\na 1 2 3\n"},
		{"header-junk-counts", "p sp four 8\n"},
		{"negative-n", "p sp -4 2\n"},
		{"arc-before-header", "a 1 2 3\np sp 4 1\n"},
		{"double-header", "p sp 2 0\np sp 2 0\n"},
		{"arc-count-under", "p sp 4 8\na 1 2 3\n"},
		{"arc-count-over", "p sp 2 1\na 1 2 3\na 2 1 3\n"},
		{"endpoint-zero", "p sp 4 1\na 0 2 3\n"},
		{"endpoint-past-n", "p sp 4 1\na 1 5 3\n"},
		{"endpoint-huge", "p sp 4 1\na 1 99999999999999999999 3\n"},
		{"negative-weight", "p sp 2 1\na 1 2 -5\n"},
		{"weight-at-infinity", "p sp 2 1\na 1 2 536870912\n"},
		{"weight-junk", "p sp 2 1\na 1 2 cheap\n"},
		{"short-arc", "p sp 2 1\na 1 2\n"},
		{"long-arc", "p sp 2 1\na 1 2 3 4\n"},
		{"unknown-record", "p sp 2 0\nq 1 2\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadGr(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("hostile input parsed into a %d-vertex graph", g.NumNodes())
			}
			if !errors.Is(err, ErrGrFormat) {
				t.Fatalf("error %v does not wrap ErrGrFormat", err)
			}
		})
	}
}

// FuzzReadGr asserts the parser's only failure mode is a clean error:
// no panic, no out-of-range structure on whatever parses.
func FuzzReadGr(f *testing.F) {
	f.Add(grOK)
	f.Add("p sp 2 2\na 1 2 7\na 2 1 4\n")
	f.Add("p sp 0 0\n")
	f.Add("c x\np sp 3 2\na 1 3 1\na 3 1 1\n")
	f.Add("p sp 4 8\na 1 2 3\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 2 1\na 1 2 -5\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGr(strings.NewReader(in))
		if err != nil {
			return
		}
		n := g.NumNodes()
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				if u < 0 || int(u) >= n {
					t.Fatalf("parsed graph has out-of-range neighbor %d (n=%d)", u, n)
				}
			}
		}
	})
}
