package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, n-1)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree = %d, want 0", g.MaxDegree())
	}
	if g.AvgDegree() != 0 {
		t.Errorf("AvgDegree = %v, want 0", g.AvgDegree())
	}
}

func TestIsolatedVertices(t *testing.T) {
	b := NewBuilder(0, 0)
	b.Grow(5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	for v := NodeID(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestPathGraphBasics(t *testing.T) {
	g := buildPath(t, 5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d, want 5, 4", g.NumNodes(), g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unit path should be unweighted")
	}
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(NodeID(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.6 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
}

func TestHasEdgeAndWeights(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 7)
	b.AddWeightedEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	tests := []struct {
		u, v NodeID
		w    Weight
		ok   bool
	}{
		{0, 1, 5, true},
		{1, 0, 5, true},
		{1, 2, 7, true},
		{2, 3, 1, true},
		{0, 2, 0, false},
		{3, 0, 0, false},
	}
	for _, tc := range tests {
		w, ok := g.EdgeWeight(tc.u, tc.v)
		if ok != tc.ok || w != tc.w {
			t.Errorf("EdgeWeight(%d,%d) = (%d,%v), want (%d,%v)", tc.u, tc.v, w, ok, tc.w, tc.ok)
		}
		if g.HasEdge(tc.u, tc.v) != tc.ok {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, !tc.ok, tc.ok)
		}
	}
}

func TestParallelEdgesKeepMinWeight(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddWeightedEdge(0, 1, 9)
	b.AddWeightedEdge(1, 0, 3)
	b.AddWeightedEdge(0, 1, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 3 {
		t.Errorf("EdgeWeight = %d, want min weight 3", w)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name string
		add  func(*Builder)
		want error
	}{
		{"self loop", func(b *Builder) { b.AddEdge(2, 2) }, ErrSelfLoop},
		{"negative vertex", func(b *Builder) { b.AddEdge(-1, 2) }, ErrVertexRange},
		{"negative weight", func(b *Builder) { b.AddWeightedEdge(0, 1, -4) }, ErrNegativeWeight},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(4, 1)
			tc.add(b)
			b.AddEdge(0, 1) // error must stick even after valid edges
			if _, err := b.Build(); !errors.Is(err, tc.want) {
				t.Errorf("Build err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6, 5)
	for _, v := range []NodeID{5, 2, 4, 1, 3} {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	adj := g.Neighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Errorf("Neighbors(0) not sorted: %v", adj)
	}
	if len(adj) != 5 {
		t.Errorf("len(Neighbors(0)) = %d, want 5", len(adj))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50, 100)
	seen := map[[2]NodeID]Weight{}
	for i := 0; i < 100; i++ {
		u, v := NodeID(rng.Intn(50)), NodeID(rng.Intn(50))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		w := Weight(1 + rng.Intn(20))
		if old, ok := seen[[2]NodeID{u, v}]; !ok || w < old {
			seen[[2]NodeID{u, v}] = w
		}
		b.AddWeightedEdge(u, v, w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != len(seen) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(seen))
	}
	for _, e := range g.Edges() {
		if want := seen[[2]NodeID{e.U, e.V}]; e.W != want {
			t.Errorf("edge {%d,%d} weight %d, want %d", e.U, e.V, e.W, want)
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"unweighted path", func() *Graph {
			b := NewBuilder(6, 5)
			for i := 0; i < 5; i++ {
				b.AddEdge(NodeID(i), NodeID(i+1))
			}
			return b.MustBuild()
		}},
		{"weighted triangle plus isolated", func() *Graph {
			b := NewBuilder(5, 3)
			b.AddWeightedEdge(0, 1, 2)
			b.AddWeightedEdge(1, 2, 3)
			b.AddWeightedEdge(0, 2, 10)
			b.Grow(5)
			return b.MustBuild()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			var buf bytes.Buffer
			if _, err := g.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			g2, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
				t.Fatalf("round trip: got (%d,%d), want (%d,%d)",
					g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			for _, e := range g.Edges() {
				w, ok := g2.EdgeWeight(e.U, e.V)
				if !ok || w != e.W {
					t.Errorf("edge {%d,%d}: got (%d,%v), want (%d,true)", e.U, e.V, w, ok, e.W)
				}
			}
		})
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"no problem line", "e 0 1\n"},
		{"empty", ""},
		{"bad record", "p 2 1 0\nx 0 1\n"},
		{"malformed edge", "p 2 1 0\ne 0\n"},
		{"bad weight", "p 2 1 1\ne 0 1 xyz\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader([]byte(tc.input))); err == nil {
				t.Error("Read succeeded, want error")
			}
		})
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "c a comment\np 3 1 0\n\nc another\ne 0 2\n"
	g, err := Read(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumNodes() != 3 || !g.HasEdge(0, 2) {
		t.Errorf("unexpected graph n=%d", g.NumNodes())
	}
}

// TestDegreeSumInvariant checks the handshake lemma on random graphs.
func TestDegreeSumInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n, 3*n)
		for i := 0; i < 3*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		sum := 0
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAdjacencySymmetry checks undirectedness: v in adj(u) iff u in adj(v).
func TestAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, 2*n)
		for i := 0; i < 2*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				b.AddWeightedEdge(u, v, Weight(1+rng.Intn(9)))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for u := NodeID(0); int(u) < n; u++ {
			for _, v := range g.Neighbors(u) {
				wu, _ := g.EdgeWeight(u, v)
				wv, ok := g.EdgeWeight(v, u)
				if !ok || wu != wv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Errorf("got (%d,%d), want (4,3)", g.NumNodes(), g.NumEdges())
	}
	if g.TotalWeight() != 6 {
		t.Errorf("TotalWeight = %d, want 6", g.TotalWeight())
	}
}
