package graph

import (
	"bytes"
	"testing"
)

// TestWriteReadRoundTrip round-trips graphs through the free-function
// Write/Read pair, including weights and isolated trailing vertices.
func TestWriteReadRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"unweighted", func() (*Graph, error) {
			b := NewBuilder(5, 4)
			b.AddEdge(0, 1)
			b.AddEdge(1, 2)
			b.AddEdge(2, 3)
			b.AddEdge(0, 4)
			return b.Build()
		}},
		{"weighted", func() (*Graph, error) {
			b := NewBuilder(4, 3)
			b.AddWeightedEdge(0, 1, 7)
			b.AddWeightedEdge(1, 2, 1)
			b.AddWeightedEdge(0, 3, 12)
			return b.Build()
		}},
		{"isolated vertices", func() (*Graph, error) {
			b := NewBuilder(6, 1)
			b.AddEdge(0, 1)
			b.Grow(6)
			return b.Build()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, g); err != nil {
				t.Fatalf("Write: %v", err)
			}
			g2, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
				t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d",
					g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			if g2.Weighted() != g.Weighted() {
				t.Errorf("round trip weighted=%v, want %v", g2.Weighted(), g.Weighted())
			}
			for _, e := range g.Edges() {
				w, ok := g2.EdgeWeight(e.U, e.V)
				if !ok || w != e.W {
					t.Errorf("edge {%d,%d} weight %d, ok=%v; want %d", e.U, e.V, w, ok, e.W)
				}
			}
		})
	}
}
