// Package graph provides immutable compressed-sparse-row (CSR) graph
// representations used throughout hublab.
//
// Graphs are undirected unless stated otherwise, may carry non-negative
// integer edge weights, and are identified by dense int32 vertex ids in
// [0, N). The zero value of Builder is ready to use.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a vertex. Valid ids are dense in [0, Graph.NumNodes()).
type NodeID = int32

// Weight is a non-negative integer edge weight or path length.
type Weight = int32

// Infinity is the sentinel distance for unreachable vertices. It is chosen
// well below the int32 overflow threshold so that Infinity+Infinity does not
// wrap around.
const Infinity Weight = 1 << 29

var (
	// ErrVertexRange reports an out-of-range vertex id.
	ErrVertexRange = errors.New("graph: vertex id out of range")
	// ErrNegativeWeight reports a negative edge weight.
	ErrNegativeWeight = errors.New("graph: negative edge weight")
	// ErrSelfLoop reports a self loop, which hub labelings do not support.
	ErrSelfLoop = errors.New("graph: self loop")
)

// Edge is an undirected edge with an optional weight (1 for unweighted use).
type Edge struct {
	U, V NodeID
	W    Weight
}

// Graph is an immutable undirected graph in CSR form. Construct via Builder
// or the helper constructors in this package.
type Graph struct {
	offsets []int32  // len n+1
	targets []NodeID // len 2m
	weights []Weight // len 2m, nil iff every edge has weight 1
	m       int      // number of undirected edges
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v sorted by target id. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v). It returns
// nil for unweighted graphs (every weight is 1). The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) NeighborWeights(v NodeID) []Weight {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u,v} if present.
func (g *Graph) EdgeWeight(u, v NodeID) (Weight, bool) {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i == len(adj) || adj[i] != v {
		return 0, false
	}
	if g.weights == nil {
		return 1, true
	}
	return g.weights[int(g.offsets[u])+i], true
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// TotalWeight returns the sum of all edge weights (m for unweighted graphs).
func (g *Graph) TotalWeight() int64 {
	if g.weights == nil {
		return int64(g.m)
	}
	var sum int64
	for _, w := range g.weights {
		sum += int64(w)
	}
	return sum / 2
}

// Edges returns all undirected edges with U < V, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		adj := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		for i, v := range adj {
			if u < v {
				w := Weight(1)
				if ws != nil {
					w = ws[i]
				}
				edges = append(edges, Edge{U: u, V: v, W: w})
			}
		}
	}
	return edges
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is ready to use; set N in advance with Grow for isolated trailing vertices.
type Builder struct {
	edges []Edge
	n     int
	err   error
}

// NewBuilder returns a builder pre-sized for n vertices and capacity for m
// edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{edges: make([]Edge, 0, m), n: n}
}

// Grow ensures the built graph has at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current number of vertices the built graph will have.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected unit-weight edge {u,v}.
func (b *Builder) AddEdge(u, v NodeID) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with weight w. Errors
// are deferred and reported by Build.
func (b *Builder) AddWeightedEdge(u, v NodeID, w Weight) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || v < 0:
		b.err = fmt.Errorf("%w: {%d,%d}", ErrVertexRange, u, v)
		return
	case u == v:
		b.err = fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
		return
	case w < 0:
		b.err = fmt.Errorf("%w: edge {%d,%d} weight %d", ErrNegativeWeight, u, v, w)
		return
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
}

// Build produces the immutable graph. Parallel edges are merged keeping the
// minimum weight. The builder may be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.n
	deg := make([]int32, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]NodeID, offsets[n])
	weights := make([]Weight, offsets[n])
	next := make([]int32, n)
	copy(next, offsets[:n])
	weighted := false
	for _, e := range b.edges {
		targets[next[e.U]] = e.V
		weights[next[e.U]] = e.W
		next[e.U]++
		targets[next[e.V]] = e.U
		weights[next[e.V]] = e.W
		next[e.V]++
		if e.W != 1 {
			weighted = true
		}
	}
	g := &Graph{offsets: offsets, targets: targets, weights: weights}
	g.sortAdjacency()
	g.dedupe()
	if !weighted {
		g.weights = nil
	}
	g.m = len(g.targets) / 2
	return g, nil
}

// MustBuild is Build for static program data; it panics on error and is
// intended for tests and internal constructions with validated inputs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) sortAdjacency() {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		adj := adjSorter{t: g.targets[lo:hi], w: g.weights[lo:hi]}
		sort.Sort(adj)
	}
}

// dedupe merges parallel edges in the sorted adjacency arrays keeping the
// minimum weight, rebuilding offsets in place.
func (g *Graph) dedupe() {
	n := g.NumNodes()
	newOffsets := make([]int32, n+1)
	out := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		newOffsets[v] = out
		prev := NodeID(-1)
		for i := lo; i < hi; i++ {
			t, w := g.targets[i], g.weights[i]
			if t == prev {
				if w < g.weights[out-1] {
					g.weights[out-1] = w
				}
				continue
			}
			g.targets[out] = t
			g.weights[out] = w
			prev = t
			out++
		}
	}
	newOffsets[n] = out
	g.offsets = newOffsets
	g.targets = g.targets[:out]
	g.weights = g.weights[:out]
}

type adjSorter struct {
	t []NodeID
	w []Weight
}

func (a adjSorter) Len() int           { return len(a.t) }
func (a adjSorter) Less(i, j int) bool { return a.t[i] < a.t[j] }
func (a adjSorter) Swap(i, j int) {
	a.t[i], a.t[j] = a.t[j], a.t[i]
	a.w[i], a.w[j] = a.w[j], a.w[i]
}

// FromEdges builds a graph over n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n, len(edges))
	for _, e := range edges {
		b.AddWeightedEdge(e.U, e.V, e.W)
	}
	return b.Build()
}
