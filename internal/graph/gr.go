package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrGrFormat reports a malformed DIMACS .gr input. All ReadGr parse
// failures wrap it so callers can distinguish "the file is broken" from
// plain I/O errors.
var ErrGrFormat = fmt.Errorf("graph: malformed .gr input")

// ReadGr parses the DIMACS shortest-path challenge ".gr" format (the 9th
// DIMACS Implementation Challenge road networks — see
// scripts/fetch_dimacs.sh and internal/dataset):
//
//	c <comment>
//	p sp <n> <m>
//	a <u> <v> <w>
//
// Arcs are 1-indexed and directed; road instances list each road segment
// in both directions. The result is hublab's undirected Graph: every arc
// becomes an undirected edge and parallel entries merge keeping the
// minimum weight (so an asymmetric pair collapses to its cheaper
// direction — the paper's setting is undirected, and for the published
// road graphs the directions agree anyway).
//
// The parser is strict about everything a hostile or truncated file can
// get wrong: a missing or malformed problem line, arcs before the
// header, a second header, endpoints outside [1,n], negative or
// unparsable weights, junk records, and an arc count that does not match
// the header all fail with a line-numbered error wrapping ErrGrFormat.
func ReadGr(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var (
		b     *Builder
		n     int
		m     int64
		arcs  int64
		line  int
		grErr = func(format string, args ...any) error {
			return fmt.Errorf("%w: line %d: %s", ErrGrFormat, line, fmt.Sprintf(format, args...))
		}
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if b != nil {
				return nil, grErr("second problem line %q", text)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, grErr("want %q, got %q", "p sp <n> <m>", text)
			}
			nv, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil || nv < 0 {
				return nil, grErr("bad vertex count %q", fields[2])
			}
			mv, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || mv < 0 {
				return nil, grErr("bad arc count %q", fields[3])
			}
			n, m = int(nv), mv
			// Road instances list both directions, so ~m/2 undirected
			// edges survive the merge; capacity is a hint, not a bound.
			b = NewBuilder(n, int(m/2))
			b.Grow(n)
		case "a":
			if b == nil {
				return nil, grErr("arc before problem line")
			}
			if len(fields) != 4 {
				return nil, grErr("want %q, got %q", "a <u> <v> <w>", text)
			}
			u, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, grErr("bad tail %q", fields[1])
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, grErr("bad head %q", fields[2])
			}
			if u < 1 || u > int64(n) || v < 1 || v > int64(n) {
				return nil, grErr("endpoint out of range: a %d %d (n=%d)", u, v, n)
			}
			w, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, grErr("bad weight %q", fields[3])
			}
			if w < 0 || w >= int64(Infinity) {
				return nil, grErr("weight %d outside [0, %d)", w, Infinity)
			}
			arcs++
			if arcs > m {
				return nil, grErr("more arcs than the header's %d", m)
			}
			if u == v {
				continue // self-loops carry no shortest-path information
			}
			b.AddWeightedEdge(NodeID(u-1), NodeID(v-1), Weight(w))
		default:
			return nil, grErr("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read .gr: %w", err)
	}
	if b == nil {
		line++
		return nil, grErr("missing problem line")
	}
	if arcs != m {
		line++
		return nil, grErr("header promised %d arcs, file has %d (truncated?)", m, arcs)
	}
	return b.Build()
}
