package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serializes g in a DIMACS-like text format:
//
//	p <n> <m> <weighted:0|1>
//	e <u> <v> [w]
//
// one edge per line with U < V.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	weighted := 0
	if g.Weighted() {
		weighted = 1
	}
	n, err := fmt.Fprintf(bw, "p %d %d %d\n", g.NumNodes(), g.NumEdges(), weighted)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, e := range g.Edges() {
		if g.Weighted() {
			n, err = fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.W)
		} else {
			n, err = fmt.Fprintf(bw, "e %d %d\n", e.U, e.V)
		}
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Write serializes g to w in the text format Read parses — the
// free-function mirror of Read, so generated graphs round-trip to disk
// and tools (hubgen -graphout, hubserve -graph) can share inputs.
func Write(w io.Writer, g *Graph) error {
	_, err := g.WriteTo(w)
	return err
}

// Read parses a graph in the format produced by WriteTo. Lines beginning
// with 'c' are comments and ignored.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed problem line %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %w", line, err)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %w", line, err)
			}
			b = NewBuilder(n, m)
			b.Grow(n)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", line)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", line, text)
			}
			u, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %w", line, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %w", line, err)
			}
			w := int64(1)
			if len(fields) >= 4 {
				w, err = strconv.ParseInt(fields[3], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight: %w", line, err)
				}
			}
			b.AddWeightedEdge(NodeID(u), NodeID(v), Weight(w))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return b.Build()
}
