// Package sparsehub implements the sparse-graph hub labeling scheme the
// paper's introduction attributes to Alstrup, Dahlgaard, Knudsen and Porat
// (ESA 2016) and Gawrychowski, Kosowski and Uznański (DISC 2016):
//
//   - a shared random hub set S of ≈ (n/D)·ln(coverage) vertices covers,
//     with high probability, every pair at distance ≥ D (any such pair has
//     ≥ D+1 valid hubs for S to hit);
//   - pairs the random set happens to miss are repaired exactly with
//     explicit per-vertex fix-up hubs (the Q_u sets of the paper's
//     Section 4 discussion);
//   - pairs at distance < D are covered by storing the radius-⌈D/2⌉ ball
//     around every vertex (the "store vertices closer than D" step).
//
// On bounded-degree graphs with D ≈ log n this yields the paper's
// O(n/log n · polyloglog) average hub set shape, which experiment E8
// measures.
package sparsehub

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/par"
	"hublab/internal/sssp"
)

// ErrBadParam reports invalid build parameters.
var ErrBadParam = errors.New("sparsehub: invalid parameter")

// Options configures Build.
type Options struct {
	// D is the near/far distance threshold. Zero selects a heuristic
	// balancing |S| against ball sizes.
	D graph.Weight
	// Seed drives the random hub sample.
	Seed int64
	// SkipFixup disables the exact far-pair repair pass (the scheme is then
	// correct only with high probability). Used by ablations.
	SkipFixup bool
}

// Result carries the labeling together with its size decomposition, so
// experiments can report each term of the paper's bound separately.
type Result struct {
	Labeling *hub.Labeling
	D        graph.Weight
	// SharedHubs is |S|, the shared random far-pair hub set size.
	SharedHubs int
	// BallTotal is Σ_v |ball(v, ⌈D/2⌉)|.
	BallTotal int
	// FixupTotal is Σ_v |Q_v|, the number of explicitly repaired far pairs.
	FixupTotal int
}

// ChooseD returns a heuristic threshold D ≈ log2(n), clamped to ≥ 2.
func ChooseD(n int) graph.Weight {
	if n < 4 {
		return 2
	}
	d := graph.Weight(math.Round(math.Log2(float64(n))))
	if d < 2 {
		d = 2
	}
	return d
}

// Build constructs the labeling. The exact fix-up pass runs one BFS per
// vertex plus an O(n·|S|) scan per vertex; intended for graphs up to a few
// thousand vertices (use SkipFixup beyond that).
func Build(g *graph.Graph, opts Options) (*Result, error) {
	if g.Weighted() {
		return nil, fmt.Errorf("%w: weighted graphs not supported (the scheme is defined for unweighted sparse graphs)", ErrBadParam)
	}
	n := g.NumNodes()
	if n == 0 {
		return &Result{Labeling: hub.NewLabeling(0), D: opts.D}, nil
	}
	d := opts.D
	if d == 0 {
		d = ChooseD(n)
	}
	if d < 2 {
		return nil, fmt.Errorf("%w: D=%d, want ≥ 2", ErrBadParam, d)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Shared random hub set S of the paper's size (n/D)·ln D: it covers
	// every far pair except an expected ≤ n²/D of them, and the fix-up
	// pass repairs the remainder exactly (the Q_u sets).
	sizeS := int(math.Ceil(float64(n) / float64(d) * math.Log(float64(d)+1)))
	if sizeS > n {
		sizeS = n
	}
	perm := rng.Perm(n)
	shared := make([]graph.NodeID, sizeS)
	inS := make([]bool, n)
	for i := 0; i < sizeS; i++ {
		shared[i] = graph.NodeID(perm[i])
		inS[perm[i]] = true
	}

	// Distances from every shared hub (used both for labels and fix-up),
	// one BFS per hub across the worker pool.
	sharedDist := make([][]graph.Weight, sizeS)
	par.For(sizeS, func(i int) {
		sharedDist[i] = sssp.BFS(g, shared[i]).Dist
	})

	// Per-vertex label assembly (shared hubs + radius-⌈D/2⌉ ball) is
	// independent across vertices; each writes only its own slot.
	res := &Result{D: d, SharedHubs: sizeS}
	radius := (d + 1) / 2
	labels := make([][]hub.Hub, n)
	ballSizes := make([]int, n)
	par.For(n, func(i int) {
		v := graph.NodeID(i)
		var hubs []hub.Hub
		for si, h := range shared {
			if sharedDist[si][v] < graph.Infinity {
				hubs = append(hubs, hub.Hub{Node: h, Dist: sharedDist[si][v]})
			}
		}
		nodes, dist := sssp.Truncated(g, v, radius)
		for k, u := range nodes {
			hubs = append(hubs, hub.Hub{Node: u, Dist: dist[k]})
		}
		ballSizes[i] = len(nodes)
		labels[i] = hubs
	})
	for _, b := range ballSizes {
		res.BallTotal += b
	}

	// Exact fix-up of far pairs the random set missed: one BFS plus an
	// O(n·|S|) scan per source, fanned out over sources; fix-ups land in
	// the source's slot and are appended in id order.
	if !opts.SkipFixup {
		fixes := make([][]hub.Hub, n)
		par.For(n, func(i int) {
			u := graph.NodeID(i)
			du := sssp.BFS(g, u).Dist
			var fx []hub.Hub
			for v := u + 1; int(v) < n; v++ {
				if du[v] == graph.Infinity || du[v] < d {
					continue
				}
				covered := false
				for si := range shared {
					if sharedDist[si][u]+sharedDist[si][v] == du[v] {
						covered = true
						break
					}
				}
				if !covered {
					// Store v directly in Q_u (represented as hub v for u
					// and self-hub for v).
					fx = append(fx, hub.Hub{Node: v, Dist: du[v]})
				}
			}
			fixes[i] = fx
		})
		for u, fx := range fixes {
			labels[u] = append(labels[u], fx...)
			res.FixupTotal += len(fx)
		}
	}
	res.Labeling = hub.FromSlices(labels)
	return res, nil
}
