package sparsehub

import (
	"errors"
	"math"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
)

func TestBuildIsCover(t *testing.T) {
	g, err := gen.RandomRegular(200, 3, 7)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	res, err := Build(g, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
	if res.SharedHubs <= 0 {
		t.Errorf("SharedHubs = %d, want > 0", res.SharedHubs)
	}
	if res.BallTotal < g.NumNodes() {
		t.Errorf("BallTotal = %d, want ≥ n (every ball contains its center)", res.BallTotal)
	}
}

func TestBuildExplicitD(t *testing.T) {
	g, err := gen.Gnm(150, 250, 3)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	for _, d := range []graph.Weight{2, 4, 8} {
		res, err := Build(g, Options{D: d, Seed: 5})
		if err != nil {
			t.Fatalf("Build(D=%d): %v", d, err)
		}
		if res.D != d {
			t.Errorf("res.D = %d, want %d", res.D, d)
		}
		if err := res.Labeling.VerifyCover(g); err != nil {
			t.Errorf("D=%d VerifyCover: %v", d, err)
		}
	}
}

func TestBuildRejectsWeighted(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Build(g, Options{}); !errors.Is(err, ErrBadParam) {
		t.Errorf("Build err = %v, want ErrBadParam", err)
	}
}

func TestBuildRejectsBadD(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if _, err := Build(g, Options{D: 1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("Build(D=1) err = %v, want ErrBadParam", err)
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := graph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	res, err := Build(g, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.Labeling.NumVertices() != 0 {
		t.Errorf("NumVertices = %d, want 0", res.Labeling.NumVertices())
	}
}

func TestBuildDisconnected(t *testing.T) {
	b := graph.NewBuilder(20, 18)
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		b.AddEdge(graph.NodeID(10+i), graph.NodeID(11+i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Build(g, Options{D: 3, Seed: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := res.Labeling.VerifyCover(g); err != nil {
		t.Errorf("VerifyCover: %v", err)
	}
}

func TestChooseD(t *testing.T) {
	if d := ChooseD(2); d != 2 {
		t.Errorf("ChooseD(2) = %d, want 2", d)
	}
	if d := ChooseD(1024); d != 10 {
		t.Errorf("ChooseD(1024) = %d, want 10", d)
	}
}

// TestScalingShape is a small-scale version of experiment E8: the average
// label size divided by n/log2(n) should stay within a constant band as n
// doubles on random 3-regular graphs.
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	var ratios []float64
	for _, n := range []int{128, 256, 512} {
		g, err := gen.RandomRegular(n, 3, int64(n))
		if err != nil {
			t.Fatalf("RandomRegular(%d): %v", n, err)
		}
		res, err := Build(g, Options{Seed: int64(n)})
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}
		if err := res.Labeling.VerifySampled(g, 300, 9); err != nil {
			t.Fatalf("VerifySampled(%d): %v", n, err)
		}
		avg := res.Labeling.ComputeStats().Avg
		ref := float64(n) / math.Log2(float64(n))
		ratios = append(ratios, avg/ref)
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 8*ratios[0] {
			t.Errorf("ratio blow-up across doublings: %v", ratios)
		}
	}
}
