// Package dataset locates and loads the real-world benchmark graphs the
// experiment suite runs against — today the 9th DIMACS Implementation
// Challenge road networks, the standard corpus for hub-labeling papers
// (the source paper's own road-network discussion is calibrated on
// them).
//
// The package never touches the network: scripts/fetch_dimacs.sh
// downloads instances into the cache directory once, and Load reads
// them from there (gzip-transparently, so the downloaded .gr.gz files
// need no unpacking). A missing file is a typed error (ErrNotFetched)
// with the fetch command in its message, so tests and experiments can
// skip cleanly on machines that never fetched anything.
package dataset

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hublab/internal/graph"
)

// ErrNotFetched reports that a known dataset is not in the local cache.
var ErrNotFetched = errors.New("dataset: not fetched")

// ErrUnknown reports a name that is not in the catalog.
var ErrUnknown = errors.New("dataset: unknown dataset")

// Info describes one catalog entry. Vertex/arc counts are the published
// instance sizes, recorded so tooling can size-gate without opening the
// file.
type Info struct {
	Name     string // catalog key, e.g. "rome99"
	File     string // filename under Dir(), e.g. "rome99.gr"
	Vertices int
	Arcs     int // directed arcs as published (undirected edges ≈ half)
	Desc     string
}

// catalog lists the distance-weighted ("d") USA road instances of the
// 9th DIMACS challenge, smallest first, plus the rome99 warm-up graph.
// scripts/fetch_dimacs.sh knows how to download exactly these.
var catalog = map[string]Info{
	"rome99":  {Name: "rome99", File: "rome99.gr", Vertices: 3353, Arcs: 8870, Desc: "Rome city center, 1999"},
	"usa-ny":  {Name: "usa-ny", File: "USA-road-d.NY.gr", Vertices: 264346, Arcs: 733846, Desc: "New York City"},
	"usa-bay": {Name: "usa-bay", File: "USA-road-d.BAY.gr", Vertices: 321270, Arcs: 800172, Desc: "San Francisco Bay Area"},
	"usa-col": {Name: "usa-col", File: "USA-road-d.COL.gr", Vertices: 435666, Arcs: 1057066, Desc: "Colorado"},
	"usa-fla": {Name: "usa-fla", File: "USA-road-d.FLA.gr", Vertices: 1070376, Arcs: 2712798, Desc: "Florida"},
}

// Names returns the catalog keys, sorted by instance size.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return catalog[names[i]].Vertices < catalog[names[j]].Vertices })
	return names
}

// Describe returns the catalog entry for name.
func Describe(name string) (Info, error) {
	info, ok := catalog[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, Names())
	}
	return info, nil
}

// Dir returns the dataset cache directory: $HUBLAB_DATA_DIR if set,
// else <user cache>/hublab/datasets, else ./.hublab-datasets for
// environments with no resolvable cache home.
func Dir() string {
	if d := os.Getenv("HUBLAB_DATA_DIR"); d != "" {
		return d
	}
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "hublab", "datasets")
	}
	return ".hublab-datasets"
}

// Path returns where name lives (or would live) in the cache: the plain
// file if present, else the .gz sibling if present, else the plain path
// (the spot the fetch script fills).
func Path(name string) (string, error) {
	info, err := Describe(name)
	if err != nil {
		return "", err
	}
	plain := filepath.Join(Dir(), info.File)
	if _, err := os.Stat(plain); err == nil {
		return plain, nil
	}
	if gz := plain + ".gz"; fileExists(gz) {
		return gz, nil
	}
	return plain, nil
}

// Fetched reports whether name is present in the cache.
func Fetched(name string) bool {
	p, err := Path(name)
	return err == nil && fileExists(p)
}

// Load reads a catalog dataset from the cache, decompressing .gz files
// transparently. A cache miss returns ErrNotFetched with the command
// that fills it.
func Load(name string) (*graph.Graph, error) {
	p, err := Path(name)
	if err != nil {
		return nil, err
	}
	if !fileExists(p) {
		return nil, fmt.Errorf("%w: %q not in %s — run scripts/fetch_dimacs.sh %s", ErrNotFetched, name, Dir(), name)
	}
	return LoadFile(p)
}

// LoadFile reads a .gr or .gr.gz file from an explicit path, outside
// the catalog — the hook for hubgen -in on hand-fetched instances.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	g, err := graph.ReadGr(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return g, nil
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}
