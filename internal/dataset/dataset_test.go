package dataset

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const tinyGr = "c test instance\np sp 3 4\na 1 2 2\na 2 1 2\na 2 3 5\na 3 2 5\n"

func TestCatalog(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	for i := 1; i < len(names); i++ {
		a, _ := Describe(names[i-1])
		b, _ := Describe(names[i])
		if a.Vertices > b.Vertices {
			t.Errorf("Names not size-sorted: %s(%d) before %s(%d)", a.Name, a.Vertices, b.Name, b.Vertices)
		}
	}
	if _, err := Describe("atlantis"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown dataset error = %v, want ErrUnknown", err)
	}
}

func TestLoadFromCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("HUBLAB_DATA_DIR", dir)

	// Miss: typed, with the fetch hint.
	_, err := Load("rome99")
	if !errors.Is(err, ErrNotFetched) {
		t.Fatalf("cache-miss error = %v, want ErrNotFetched", err)
	}
	if Fetched("rome99") {
		t.Fatal("Fetched true on an empty cache")
	}

	// Hit, plain file.
	if err := os.WriteFile(filepath.Join(dir, "rome99.gr"), []byte(tinyGr), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Load("rome99")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got n=%d m=%d, want n=3 m=2", g.NumNodes(), g.NumEdges())
	}
	if !Fetched("rome99") {
		t.Error("Fetched false after a successful Load")
	}
}

func TestLoadGzipTransparent(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("HUBLAB_DATA_DIR", dir)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(tinyGr)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "USA-road-d.NY.gr.gz"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Load("usa-ny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("gz load: n=%d, want 3", g.NumNodes())
	}
	// Corrupt gz bytes must error, not parse garbage.
	if err := os.WriteFile(filepath.Join(dir, "USA-road-d.NY.gr.gz"), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load("usa-ny"); err == nil {
		t.Error("corrupt gzip loaded successfully")
	}
}
