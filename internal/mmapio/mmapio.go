// Package mmapio provides read-only memory mappings of files and the
// safe reinterpretation of mapped bytes as typed column slices. It is
// the foundation of the zero-copy container serving path: a container
// file is mapped once, its little-endian int32 columns are pointed at
// directly (no decode, no second copy in anonymous memory), and the
// kernel page cache shares the physical pages between every process
// serving the same index.
//
// Two backing stores exist behind one Mapping type: a real mmap on unix
// hosts, and a plain heap buffer everywhere else (and for byte-slice
// inputs such as fuzzers). Callers never branch on which they got — the
// heap fallback simply forfeits page sharing, not correctness.
//
// Reinterpretation is strictly guarded: Int32s refuses (ok=false) when
// the host is big-endian, the base pointer is not 4-byte aligned, or the
// length is not a whole number of elements — the pure-copy CopyInt32s is
// the fallback for those hostile or exotic layouts. View composes the
// two, so column loading is zero-copy exactly when it is safe to be.
package mmapio

import (
	"sync/atomic"
	"unsafe"
)

// hostLittleEndian reports whether multi-byte loads on this host read
// little-endian byte order — the container wire order, and the
// precondition for pointing typed slices at raw file bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Mapping is a read-only byte view of a file (or of a caller-provided
// buffer). The bytes must be treated as immutable shared memory: they
// may be visible to other processes through the page cache, and writing
// through a real mapping faults (PROT_READ).
//
// Close unmaps; it is idempotent and safe for concurrent use, but the
// caller owns the harder contract that no slice derived from Bytes is
// touched afterwards — a labeling view enforces it with reference
// counting above this package.
type Mapping struct {
	data []byte
	live atomic.Bool
	heap bool // heap-backed: Close only drops the reference
}

// FromBytes wraps an in-memory buffer as a Mapping. It backs the
// non-unix fallback and lets parsers and fuzzers run the exact mapped
// code path without a file. The Mapping aliases b; the caller must not
// mutate it while the Mapping lives.
func FromBytes(b []byte) *Mapping {
	m := &Mapping{data: b, heap: true}
	m.live.Store(true)
	return m
}

// Bytes returns the mapped region, or nil after Close.
func (m *Mapping) Bytes() []byte {
	if !m.live.Load() {
		return nil
	}
	return m.data
}

// Len returns the mapped size in bytes (0 after Close).
func (m *Mapping) Len() int { return len(m.Bytes()) }

// Live reports whether the mapping is still established. Test harnesses
// use it to assert that no query ever observes an unmapped snapshot.
func (m *Mapping) Live() bool { return m.live.Load() }

// Close releases the mapping. Only the first call unmaps; later calls
// return nil. After Close every slice previously derived from Bytes is
// invalid — for real mappings, touching one faults the process.
func (m *Mapping) Close() error {
	if !m.live.CompareAndSwap(true, false) {
		return nil
	}
	data := m.data
	m.data = nil
	if m.heap {
		return nil
	}
	return munmap(data)
}

// Int32s reinterprets b as a little-endian []T without copying. ok is
// false — and the caller must use CopyInt32s instead — when the host is
// big-endian, b's base pointer is not 4-byte aligned, or len(b) is not a
// multiple of 4. The returned slice aliases b and inherits its lifetime.
func Int32s[T ~int32](b []byte) ([]T, bool) {
	if len(b)%4 != 0 || !hostLittleEndian {
		return nil, false
	}
	if len(b) == 0 {
		return []T{}, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(T(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// CopyInt32s decodes b (little-endian, len(b) must be a multiple of 4)
// into a freshly allocated []T — the pure-copy fallback for layouts
// Int32s refuses.
func CopyInt32s[T ~int32](b []byte) []T {
	out := make([]T, len(b)/4)
	for i := range out {
		out[i] = T(int32(uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24))
	}
	return out
}

// View returns b as a []T, zero-copy when Int32s allows it and by copy
// otherwise, along with whether the result aliases b. len(b) must be a
// multiple of 4.
func View[T ~int32](b []byte) (col []T, aliased bool) {
	if col, ok := Int32s[T](b); ok {
		return col, true
	}
	return CopyInt32s[T](b), false
}
