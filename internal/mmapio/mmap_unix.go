//go:build unix

package mmapio

import (
	"fmt"
	"os"
	"syscall"
)

// Open maps path read-only. The file descriptor is closed before
// returning — the mapping keeps the pages alive on its own — so an Open
// never pins an fd for the lifetime of an index. Mapping is MAP_SHARED:
// every process mapping the same container shares one set of physical
// pages through the page cache. An empty file yields an empty heap
// mapping (mmap rejects zero-length maps; callers fail on the header
// instead).
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return FromBytes(nil), nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: %d bytes exceed the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
	}
	m := &Mapping{data: data}
	m.live.Store(true)
	return m, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
