//go:build !unix

package mmapio

import "os"

// Open reads path into a heap buffer on hosts without mmap support. The
// zero-copy column casts still apply; only cross-process page sharing is
// forfeited.
func Open(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(data), nil
}

func munmap([]byte) error { return nil }
