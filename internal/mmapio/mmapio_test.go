package mmapio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func tempFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenAndClose maps a real file, checks the bytes, and pins the
// Close semantics: idempotent, Live flips once, Bytes goes nil.
func TestOpenAndClose(t *testing.T) {
	want := []byte("HUBLABIX mapping test payload 0123456789")
	m, err := Open(tempFile(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Live() {
		t.Fatal("fresh mapping not live")
	}
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("mapped %q, want %q", m.Bytes(), want)
	}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(want))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Live() || m.Bytes() != nil || m.Len() != 0 {
		t.Fatal("closed mapping still presents data")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestOpenEmptyFile: a zero-length file cannot be mmapped; it must
// degrade to an empty heap mapping, not an error.
func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(tempFile(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
}

// TestOpenMissing pins the error path.
func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

// TestInt32sAliasing: the zero-copy cast must read the little-endian
// values and alias the input (same backing memory).
func TestInt32sAliasing(t *testing.T) {
	buf := make([]byte, 16)
	vals := []int32{1, -2, 1 << 30, -(1 << 30)}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	got, ok := Int32s[int32](buf)
	if !ok {
		t.Skip("host refuses the zero-copy cast (big-endian or unaligned heap)")
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], v)
		}
	}
	// Aliasing: a write through the byte view must surface in the cast.
	binary.LittleEndian.PutUint32(buf[0:], 42)
	if got[0] != 42 {
		t.Fatal("Int32s copied instead of aliasing")
	}
}

// TestInt32sRefusals: misaligned bases, ragged lengths and empty input.
// (Go's tiny allocator hands byte buffers out at arbitrary alignment, so
// the misaligned window is found by inspection, not assumed.)
func TestInt32sRefusals(t *testing.T) {
	buf := make([]byte, 33)
	if _, ok := Int32s[int32](buf); ok {
		t.Fatal("accepted a length that is not a multiple of 4")
	}
	off := 0
	for uintptr(unsafe.Pointer(&buf[off]))%4 == 0 {
		off++
	}
	if _, ok := Int32s[int32](buf[off : off+12]); ok {
		t.Fatal("accepted a misaligned base pointer")
	}
	if col, ok := Int32s[int32](nil); !ok || len(col) != 0 {
		t.Fatalf("empty input: (%v, %v), want ([], true)", col, ok)
	}
}

// TestCopyInt32sAndView: the copy fallback decodes identically and View
// always returns correct values whichever branch it takes.
func TestCopyInt32sAndView(t *testing.T) {
	raw := make([]byte, 21)
	for i := range raw {
		raw[i] = byte(i * 7)
	}
	// A deliberately misaligned, 4-multiple window.
	b := raw[1:17]
	want := CopyInt32s[int32](b)
	got, aliased := View[int32](b)
	if len(got) != len(want) {
		t.Fatalf("View returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("View[%d] = %d, copy says %d (aliased=%v)", i, got[i], want[i], aliased)
		}
	}
}

// TestFromBytes pins the heap-backed mapping used by fallbacks and
// fuzzers.
func TestFromBytes(t *testing.T) {
	m := FromBytes([]byte{1, 2, 3})
	if !m.Live() || m.Len() != 3 {
		t.Fatal("heap mapping broken")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Live() {
		t.Fatal("heap mapping live after Close")
	}
}
