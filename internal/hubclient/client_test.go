package hubclient

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
	"hublab/internal/netserve"
	"hublab/internal/server"
	"hublab/internal/wire"
)

// startNode runs a server + binary door over idx on a loopback
// listener, returning the door (for chaos hooks) and its address.
func startNode(t testing.TB, idx index.Index, opts server.Options) (*server.Server, *netserve.Door, string) {
	t.Helper()
	srv := server.New(idx, opts)
	t.Cleanup(srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	d := netserve.New(srv, netserve.Options{})
	go func() { _ = d.Serve(ln) }()
	t.Cleanup(d.Close)
	return srv, d, ln.Addr().String()
}

// TestClientMatchesInProcess drives all three query kinds through a
// pooled client against a real index and compares with the in-process
// doors.
func TestClientMatchesInProcess(t *testing.T) {
	g, err := gen.Gnm(200, 380, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.NewHubLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, addr := startNode(t, idx, server.Options{Shards: 2})
	c, err := New(Options{Replicas: []string{addr}, Name: "tester"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		u, v := graph.NodeID(i%200), graph.NodeID((i*7+3)%200)
		got, err := c.Distance(u, v)
		if err != nil {
			t.Fatalf("Distance(%d,%d): %v", u, v, err)
		}
		want, _ := srv.TryQuery("inproc", u, v)
		if got != want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
	path, err := c.Path(5, 55, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPath, _ := srv.TryPath("inproc", 5, 55, nil)
	if len(path) != len(wantPath) {
		t.Fatalf("path %v, want %v", path, wantPath)
	}
	far, ecc, err := c.Eccentricity(9)
	if err != nil {
		t.Fatal(err)
	}
	wantFar, wantEcc, _ := srv.TryFarthest("inproc", 9)
	if far != wantFar || ecc != wantEcc {
		t.Fatalf("Eccentricity(9) = (%d,%d), want (%d,%d)", far, ecc, wantFar, wantEcc)
	}
}

// TestClientCoalesces checks the batching story: a burst of concurrent
// queries lands in far fewer frames than queries.
func TestClientCoalesces(t *testing.T) {
	idx := &indextest.Fixed{N: 100000, Delay: 200 * time.Microsecond}
	_, _, addr := startNode(t, idx, server.Options{Shards: 4, QueueDepth: 4096})
	c, err := New(Options{Replicas: []string{addr}, Name: "burst", MaxBatch: 512, QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const queries = 2000
	pairs := make([][2]graph.NodeID, queries)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(i), graph.NodeID(2 * i)}
	}
	out := make([]graph.Weight, queries)
	errs := make([]error, queries)
	c.DistanceBatch(pairs, out, errs)
	for i := range pairs {
		if errs[i] != nil {
			t.Fatalf("pair %d: %v", i, errs[i])
		}
		if want := graph.Weight(i); out[i] != want {
			t.Fatalf("pair %d: got %d want %d", i, out[i], want)
		}
	}
	st := c.Stats()
	if st.Frames == 0 || st.Frames >= st.Queries/4 {
		t.Errorf("poor coalescing: %d frames for %d queries", st.Frames, st.Queries)
	}
}

// stallServer accepts wire connections and reads frames forever without
// ever answering — the pathological slow replica.
func stallServer(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, c) }()
		}
	}()
	return ln.Addr().String()
}

// TestClientHedgesStalledReplica pins the hedging chaos case: one
// replica swallows requests, the other answers; hedges fire and every
// query still resolves correctly, exactly once.
func TestClientHedgesStalledReplica(t *testing.T) {
	idx := &indextest.Fixed{N: 100000}
	_, _, goodAddr := startNode(t, idx, server.Options{Shards: 2})
	stallAddr := stallServer(t)
	c, err := New(Options{
		Replicas:   []string{stallAddr, goodAddr},
		Name:       "hedger",
		Timeout:    5 * time.Second,
		HedgeAfter: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		u, v := graph.NodeID(i), graph.NodeID(3*i+7)
		got, err := c.Distance(u, v)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want := graph.Weight(2*i + 7); got != want {
			t.Fatalf("query %d: got %d want %d", i, got, want)
		}
	}
	st := c.Stats()
	if st.Hedges == 0 {
		t.Errorf("no hedges fired against a stalled replica (stats %+v)", st)
	}
	if st.HedgeWins == 0 {
		t.Errorf("no hedge wins recorded (stats %+v)", st)
	}
	if st.Queries != 10 {
		t.Errorf("queries = %d, want exactly 10 (exactly-once accounting)", st.Queries)
	}
}

// slowServer answers every distance query correctly (|u-v|) but only
// after delay — slow enough to lose every hedge race, so its late
// answers must be dropped by the exactly-once accounting.
func slowServer(t testing.TB, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				br := bufio.NewReader(c)
				var buf []byte
				var rs []wire.Result
				for {
					kind, payload, err := wire.ReadFrame(br, &buf, 0)
					if err != nil {
						return
					}
					if kind != wire.FrameRequest {
						continue
					}
					id, qs, err := wire.ParseRequest(payload, nil)
					if err != nil {
						return
					}
					time.Sleep(delay)
					rs = rs[:0]
					for _, q := range qs {
						d := q.V - q.U
						if d < 0 {
							d = -d
						}
						rs = append(rs, wire.Result{Kind: q.Kind, Status: wire.StatusOK, Dist: graph.Weight(d), Far: -1})
					}
					frame, err := wire.AppendReply(nil, id, rs)
					if err != nil {
						return
					}
					if _, err := c.Write(frame); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestClientLateAnswersDropped pairs a slow-but-correct replica with a
// fast one: hedges win, and the slow replica's late answers are counted
// as drops, never delivered twice.
func TestClientLateAnswersDropped(t *testing.T) {
	idx := &indextest.Fixed{N: 100000}
	_, _, fastAddr := startNode(t, idx, server.Options{Shards: 2})
	slowAddr := slowServer(t, 250*time.Millisecond)
	c, err := New(Options{
		Replicas:   []string{slowAddr, fastAddr},
		Name:       "dropper",
		Timeout:    5 * time.Second,
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 6; i++ {
		got, err := c.Distance(graph.NodeID(i), graph.NodeID(10*i))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want := graph.Weight(9 * i); got != want {
			t.Fatalf("query %d: got %d want %d", i, got, want)
		}
	}
	// The slow replica's answers arrive ~230ms after each hedge win;
	// wait for them to land and be dropped.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().LateDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no late drops recorded (stats %+v)", c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.Stats(); st.Queries != 6 {
		t.Errorf("queries = %d, want exactly 6", st.Queries)
	}
}

// TestClientReplicaKillMidBatch is the kill-chaos satellite: a single
// replica's connections are severed mid-traffic. Requirements pinned:
// zero wrong answers, and an error count bounded by the in-flight
// window around the kill (the client re-dials and keeps serving).
func TestClientReplicaKillMidBatch(t *testing.T) {
	idx := &indextest.Fixed{N: 1 << 20, Delay: 100 * time.Microsecond}
	_, door, addr := startNode(t, idx, server.Options{Shards: 4, QueueDepth: 1024})
	c, err := New(Options{Replicas: []string{addr}, Name: "chaos", Timeout: 3 * time.Second, QueueDepth: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers = 32
	var wrong, failed, ok atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := graph.NodeID((w*131071 + i*7919) % (1 << 20))
				v := graph.NodeID((w*524287 + i*104729) % (1 << 20))
				got, err := c.Distance(u, v)
				if err != nil {
					failed.Add(1)
					continue
				}
				want := v - u
				if want < 0 {
					want = -want
				}
				if got != graph.Weight(want) {
					wrong.Add(1)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	door.Kill() // sever every connection mid-batch
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d wrong answers after replica kill", wrong.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no queries succeeded")
	}
	// Bounded error rate: only requests in flight around the kill (≤ one
	// per worker, plus one collector batch) may fail; everything after
	// the re-dial must succeed.
	bound := uint64(workers + 2*64)
	if failed.Load() > bound {
		t.Errorf("%d failed queries, want ≤ %d (in-flight window)", failed.Load(), bound)
	}
	if failed.Load() == 0 {
		t.Log("note: kill landed between batches; no errors observed")
	}
	st := c.Stats()
	if st.TransportErrors == 0 {
		t.Errorf("kill left no transport-error trace (stats %+v)", st)
	}
}

// TestClientPoolExhaustionTyped pins the typed-error satellite: with a
// starved collector queue, surplus submissions answer ErrPoolExhausted
// immediately instead of blocking.
func TestClientPoolExhaustionTyped(t *testing.T) {
	stallAddr := stallServer(t)
	c, err := New(Options{
		Replicas:   []string{stallAddr},
		Name:       "exhauster",
		QueueDepth: 1,
		Timeout:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers = 64
	var exhausted atomic.Uint64
	var slowest atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := c.Distance(1, 2)
			el := time.Since(start)
			for {
				old := slowest.Load()
				if int64(el) <= old || slowest.CompareAndSwap(old, int64(el)) {
					break
				}
			}
			if errors.Is(err, ErrPoolExhausted) {
				exhausted.Add(1)
				if el > 200*time.Millisecond {
					t.Errorf("ErrPoolExhausted took %v, want immediate", el)
				}
			}
		}()
	}
	wg.Wait()
	if exhausted.Load() == 0 {
		t.Fatalf("no ErrPoolExhausted among %d concurrent submits on a depth-1 queue (stats %+v)", workers, c.Stats())
	}
	// Nothing may block past the client deadline — "instead of blocking
	// forever".
	if got := time.Duration(slowest.Load()); got > 2*time.Second {
		t.Errorf("slowest call %v, want bounded by the deadline", got)
	}
}

// TestClientNoReplicas checks the typed error when the whole replica
// set is unreachable.
func TestClientNoReplicas(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	c, err := New(Options{Replicas: []string{addr}, Name: "lost", Timeout: time.Second, DownFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First call eats the dial failure (a transport error)…
	if _, err := c.Distance(1, 2); err == nil {
		t.Fatal("query against nothing succeeded")
	}
	// …which marks the replica down; from then on it's the typed verdict.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Distance(1, 2)
		if errors.Is(err, ErrNoReplicas) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrNoReplicas, last err %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientOverloadSurfaces checks that a replica's admission verdict
// is final: the client reports wire.ErrOverloaded without retrying the
// other replica (hedging around shedding would defeat fleet-wide
// admission).
func TestClientOverloadSurfaces(t *testing.T) {
	idx := &indextest.Fixed{N: 1000}
	adm := &flowctl.Options{MaxDrop: 1, Inc: 1}
	srvA, _, addrA := startNode(t, idx, server.Options{Shards: 1, Admission: adm})
	_, _, addrB := startNode(t, idx, server.Options{Shards: 1, Admission: adm})
	srvA.AdmissionController().OnQueueFull("flooder")
	c, err := New(Options{Replicas: []string{addrA, addrB}, Name: "flooder", Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sawOverload := false
	for i := 0; i < 20 && !sawOverload; i++ {
		_, qerr := c.Distance(1, 2)
		sawOverload = errors.Is(qerr, wire.ErrOverloaded)
	}
	if !sawOverload {
		t.Fatal("flooder never saw wire.ErrOverloaded")
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("client retried an admission verdict: %d retries", st.Retries)
	}
}
