// Package hubclient is the Go client of the binary serving protocol
// (internal/wire): connection pooling per replica, automatic batching
// of concurrent requests into multi-query frames, per-request
// deadlines, and hedged retries across a replica set.
//
// Concurrency is the batching mechanism: every in-flight request joins
// its replica's collector queue, and the collector drains whatever is
// queued — up to Options.MaxBatch — into one frame. A single caller
// pays one frame per query; a thousand concurrent callers pay ~1/1000th
// of the framing and syscall cost each, with no explicit batch API
// needed (DistanceBatch is a convenience that fans out and joins).
//
// Every request resolves exactly once. A request may be in flight on
// two replicas at a time (a hedge fired, or a retry raced a slow first
// attempt); whichever answer arrives first wins an atomic CAS and later
// answers are dropped and counted (Stats.LateDrops) — never delivered
// twice, never silently lost.
package hubclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hublab/internal/graph"
	"hublab/internal/wire"
)

// Typed client-side errors. Server-side statuses surface as the wire
// sentinels (wire.ErrOverloaded and friends).
var (
	// ErrNoReplicas reports that every replica is marked down.
	ErrNoReplicas = errors.New("hubclient: no live replicas")
	// ErrPoolExhausted reports that every live replica's submit queue is
	// full — the typed answer to "the pool is saturated", returned
	// immediately instead of blocking the caller behind it.
	ErrPoolExhausted = errors.New("hubclient: connection pool exhausted")
	// ErrDeadline reports a request that outlived Options.Timeout
	// client-side (distinct from wire.ErrTimeout, the replica's own
	// deadline verdict).
	ErrDeadline = errors.New("hubclient: request deadline exceeded")
	// ErrClientClosed reports a request issued after Close.
	ErrClientClosed = errors.New("hubclient: client closed")
)

// transportError wraps connection-level failures (dial, read, write,
// replica hangup). Transport errors are retryable on another replica —
// the request may never have been seen — unlike a replica's explicit
// verdict, which is final.
type transportError struct{ err error }

func (e *transportError) Error() string { return "hubclient: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retryable reports whether err may be answered by trying another
// replica. wire.ErrClosed counts: the replica announced shutdown, so
// the query should fail over.
func retryable(err error) bool {
	var te *transportError
	return errors.As(err, &te) || errors.Is(err, wire.ErrClosed)
}

// Options configures a Client.
type Options struct {
	// Replicas is the replica set (host:port of binary doors). At least
	// one is required.
	Replicas []string
	// Name identifies this client to the fleet's admission controllers
	// (sent in a hello frame on every new connection). Unset, replicas
	// fall back to the connection's remote host — useless when many
	// clients share a machine, so set it.
	Name string
	// PoolSize is the number of connections kept per replica (default 2).
	PoolSize int
	// MaxBatch bounds queries per frame (default 64, capped at
	// wire.MaxBatch).
	MaxBatch int
	// QueueDepth is the per-replica collector queue (default 256). When
	// every live replica's queue is full, requests answer
	// ErrPoolExhausted immediately.
	QueueDepth int
	// Timeout is the per-request end-to-end deadline (default 2s).
	Timeout time.Duration
	// HedgeAfter, when positive, sends a request a second time — to a
	// different replica — if no answer arrived within this duration. The
	// first answer wins; the loser is dropped by the exactly-once CAS.
	HedgeAfter time.Duration
	// DownFor is how long a replica sits out after a dial failure
	// (default 1s). Read/write failures kill the connection but only a
	// failed dial marks the replica down.
	DownFor time.Duration
	// MaxFrame bounds accepted reply frames (default
	// wire.DefaultMaxFrame).
	MaxFrame int
}

// Stats counts client-side events since New.
type Stats struct {
	// Queries counts requests resolved (any outcome); Frames the request
	// frames written. Queries/Frames is the achieved batching factor.
	Queries, Frames uint64
	// Retries counts failovers after a retryable error; Hedges counts
	// hedge submissions, HedgeWins the requests a hedge answered first.
	Retries, Hedges, HedgeWins uint64
	// LateDrops counts answers that lost the exactly-once race (the
	// request had already resolved — by the other attempt, the deadline,
	// or a transport verdict).
	LateDrops uint64
	// PoolExhausted counts requests refused with ErrPoolExhausted;
	// TransportErrors counts connection-level failures observed.
	PoolExhausted, TransportErrors uint64
}

// Client is a pooled, hedging client over a replica set. Safe for
// concurrent use by any number of goroutines.
type Client struct {
	opts   Options
	reps   []*replica
	rr     atomic.Uint64
	closed atomic.Bool
	stop   chan struct{}
	// wgCollect tracks collector goroutines, wgConns reader goroutines;
	// Close drains them in that order (collectors first, so no new
	// connection can be dialed once the readers are being killed).
	wgCollect sync.WaitGroup
	wgConns   sync.WaitGroup

	queries       atomic.Uint64
	frames        atomic.Uint64
	retries       atomic.Uint64
	hedges        atomic.Uint64
	hedgeWins     atomic.Uint64
	lateDrops     atomic.Uint64
	poolExhausted atomic.Uint64
	transportErrs atomic.Uint64
}

// New returns a client over the replica set. It dials lazily: a replica
// that is down at New simply sits out until its cooldown expires.
func New(opts Options) (*Client, error) {
	if len(opts.Replicas) == 0 {
		return nil, errors.New("hubclient: no replicas configured")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 2
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.MaxBatch > wire.MaxBatch {
		opts.MaxBatch = wire.MaxBatch
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.DownFor <= 0 {
		opts.DownFor = time.Second
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = wire.DefaultMaxFrame
	}
	c := &Client{opts: opts, stop: make(chan struct{})}
	for _, addr := range opts.Replicas {
		rep := &replica{
			c:      c,
			addr:   addr,
			submit: make(chan attempt, opts.QueueDepth),
			conns:  make([]*rconn, opts.PoolSize),
		}
		c.reps = append(c.reps, rep)
		c.wgCollect.Add(1)
		go rep.collect()
	}
	return c, nil
}

// Close stops the collectors, hangs up every connection, and fails any
// still-queued requests. Safe to call twice.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	c.wgCollect.Wait()
	for _, rep := range c.reps {
		rep.mu.Lock()
		for i, rc := range rep.conns {
			if rc != nil {
				rc.kill(ErrClientClosed)
				rep.conns[i] = nil
			}
		}
		rep.mu.Unlock()
	}
	c.wgConns.Wait()
	// Fail requests still parked in the collector queues.
	for _, rep := range c.reps {
		for {
			select {
			case att := <-rep.submit:
				att.cl.failAttempt(c, ErrClientClosed)
			default:
				goto next
			}
		}
	next:
	}
}

// Stats returns the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Queries:         c.queries.Load(),
		Frames:          c.frames.Load(),
		Retries:         c.retries.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		LateDrops:       c.lateDrops.Load(),
		PoolExhausted:   c.poolExhausted.Load(),
		TransportErrors: c.transportErrs.Load(),
	}
}

// Distance asks the fleet for the exact distance u–v.
func (c *Client) Distance(u, v graph.NodeID) (graph.Weight, error) {
	r, err := c.do(wire.Query{Kind: wire.QDist, U: u, V: v})
	if err != nil {
		return graph.Infinity, err
	}
	return r.Dist, nil
}

// Path asks for a witness path u→v, appended to dst (nothing appended
// for unreachable pairs).
func (c *Client) Path(u, v graph.NodeID, dst []graph.NodeID) ([]graph.NodeID, error) {
	r, err := c.do(wire.Query{Kind: wire.QPath, U: u, V: v})
	if err != nil {
		return dst, err
	}
	return append(dst, r.Path...), nil
}

// Eccentricity asks for v's eccentricity and the farthest vertex
// attaining it.
func (c *Client) Eccentricity(v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	r, err := c.do(wire.Query{Kind: wire.QEcc, U: v})
	if err != nil {
		return -1, graph.Infinity, err
	}
	return r.Far, r.Dist, nil
}

// DistanceBatch resolves pairs[k] into out[k] with per-pair errors in
// errs[k], fanning the pairs out as concurrent requests (which the
// collectors coalesce into frames) and joining them all.
func (c *Client) DistanceBatch(pairs [][2]graph.NodeID, out []graph.Weight, errs []error) {
	if len(out) < len(pairs) || len(errs) < len(pairs) {
		panic("hubclient: DistanceBatch out/errs shorter than pairs")
	}
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = c.Distance(pairs[i][0], pairs[i][1])
		}(i)
	}
	wg.Wait()
}

// Request lifecycle states (call.state).
const (
	callPending int32 = iota
	callDone
)

// call is one in-flight request. It resolves exactly once: answers,
// transport verdicts and the client deadline all race on one CAS from
// callPending, and only the winner writes the result fields (before
// signaling done, so the waiter reads them race-free).
type call struct {
	q     wire.Query
	res   wire.Result
	err   error
	state atomic.Int32
	// attempts counts in-flight submissions. A transport failure only
	// resolves the call when it drops the last attempt — if a hedge is
	// still out there, its answer gets to win instead.
	attempts atomic.Int32
	// hedgeWon marks resolution by a hedge attempt (Stats.HedgeWins).
	hedgeWon bool
	done     chan struct{}
}

// attempt is one submission of a call to one replica; hedge marks the
// speculative second copy.
type attempt struct {
	cl    *call
	hedge bool
}

// complete resolves the call with a replica's answer. Reports whether
// this resolution won the exactly-once race.
func (cl *call) complete(c *Client, res wire.Result, hedge bool) bool {
	if !cl.state.CompareAndSwap(callPending, callDone) {
		c.lateDrops.Add(1)
		return false
	}
	cl.res = res
	cl.err = wire.StatusError(res.Status)
	cl.hedgeWon = hedge
	cl.done <- struct{}{}
	return true
}

// fail resolves the call with a client-side error.
func (cl *call) fail(c *Client, err error) bool {
	if !cl.state.CompareAndSwap(callPending, callDone) {
		c.lateDrops.Add(1)
		return false
	}
	cl.err = err
	cl.done <- struct{}{}
	return true
}

// failAttempt records that one submission of this call died in
// transport. The call resolves only when no other attempt remains in
// flight.
func (cl *call) failAttempt(c *Client, err error) {
	if cl.attempts.Add(-1) > 0 {
		return
	}
	var te *transportError
	if !errors.As(err, &te) && !errors.Is(err, ErrClientClosed) {
		err = &transportError{err: err}
	}
	cl.fail(c, err)
}

// do runs one request end to end: submit, await, hedge, fail over.
func (c *Client) do(q wire.Query) (wire.Result, error) {
	defer c.queries.Add(1)
	if c.closed.Load() {
		return wire.Result{}, ErrClientClosed
	}
	cl := &call{q: q, done: make(chan struct{}, 1)}
	start := int(c.rr.Add(1) % uint64(len(c.reps)))
	tried := 0
	if err := c.submit(cl, start, &tried, false); err != nil {
		return wire.Result{}, err
	}
	deadline := time.NewTimer(c.opts.Timeout)
	defer deadline.Stop()
	var hedge <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		ht := time.NewTimer(c.opts.HedgeAfter)
		defer ht.Stop()
		hedge = ht.C
	}
	for {
		select {
		case <-cl.done:
			err := cl.err
			if err != nil && retryable(err) && tried < len(c.reps) {
				// The replica never answered (transport) or announced
				// shutdown — fail over with a fresh call. The old one is
				// abandoned: a hedge still out on it resolves into the
				// dead envelope and is dropped, never racing the retry's
				// state machine.
				cl = &call{q: q, done: make(chan struct{}, 1)}
				if serr := c.submit(cl, start, &tried, false); serr != nil {
					return wire.Result{}, err // report the original failure
				}
				c.retries.Add(1)
				continue
			}
			if err != nil {
				return wire.Result{}, err
			}
			if cl.hedgeWon {
				c.hedgeWins.Add(1)
			}
			return cl.res, nil
		case <-hedge:
			hedge = nil
			if tried < len(c.reps) {
				if err := c.submit(cl, start, &tried, true); err == nil {
					c.hedges.Add(1)
				}
			}
		case <-deadline.C:
			if cl.fail(c, ErrDeadline) {
				return wire.Result{}, ErrDeadline
			}
			// Lost to a concurrent resolution: take that answer.
			<-cl.done
			if cl.err != nil {
				return wire.Result{}, cl.err
			}
			if cl.hedgeWon {
				c.hedgeWins.Add(1)
			}
			return cl.res, nil
		}
	}
}

// submit enqueues the call on the next live replica after start+tried,
// walking the ring until one accepts. Live replicas with full queues
// count toward pool exhaustion; a ring with no live replica at all is
// ErrNoReplicas.
func (c *Client) submit(cl *call, start int, tried *int, hedge bool) error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	sawLive := false
	for ; *tried < len(c.reps); *tried++ {
		rep := c.reps[(start+*tried)%len(c.reps)]
		if rep.isDown() {
			continue
		}
		sawLive = true
		cl.attempts.Add(1)
		select {
		case rep.submit <- attempt{cl: cl, hedge: hedge}:
			*tried++
			return nil
		default:
			cl.attempts.Add(-1)
		}
	}
	if sawLive {
		c.poolExhausted.Add(1)
		return ErrPoolExhausted
	}
	return ErrNoReplicas
}

// replica is one member of the replica set: a collector goroutine that
// drains the submit queue into frames, and a small connection pool.
type replica struct {
	c      *Client
	addr   string
	submit chan attempt

	mu    sync.Mutex
	conns []*rconn
	next  int

	downUntil atomic.Int64 // UnixNano; 0 = up
}

func (rep *replica) isDown() bool {
	d := rep.downUntil.Load()
	return d != 0 && time.Now().UnixNano() < d
}

func (rep *replica) markDown() {
	rep.downUntil.Store(time.Now().Add(rep.c.opts.DownFor).UnixNano())
}

// collect is the replica's batching loop: block for one submission,
// drain whatever else is queued (up to MaxBatch), ship one frame.
func (rep *replica) collect() {
	defer rep.c.wgCollect.Done()
	batch := make([]attempt, 0, rep.c.opts.MaxBatch)
	for {
		select {
		case <-rep.c.stop:
			return
		case att := <-rep.submit:
			batch = append(batch[:0], att)
		drain:
			for len(batch) < rep.c.opts.MaxBatch {
				select {
				case att2 := <-rep.submit:
					batch = append(batch, att2)
				default:
					break drain
				}
			}
			rep.send(batch)
		}
	}
}

// send ships one batch as a frame on a pooled connection. All attempt
// accounting for the batch happens here or in sendBatch — each
// submission is decremented exactly once on every path.
func (rep *replica) send(batch []attempt) {
	rc, err := rep.conn()
	if err != nil {
		rep.c.transportErrs.Add(1)
		rep.markDown()
		for _, att := range batch {
			att.cl.failAttempt(rep.c, err)
		}
		return
	}
	sent, err := rc.sendBatch(batch)
	if err != nil {
		rep.c.transportErrs.Add(1)
		rc.kill(err)
		return
	}
	if sent {
		rep.c.frames.Add(1)
	}
}

// conn returns a live pooled connection, dialing if the slot under the
// rotation cursor is empty or its occupant died.
func (rep *replica) conn() (*rconn, error) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.c.closed.Load() {
		return nil, ErrClientClosed
	}
	slot := rep.next % len(rep.conns)
	rep.next = slot + 1
	if rc := rep.conns[slot]; rc != nil && !rc.dead.Load() {
		return rc, nil
	}
	// The cursor landed on an empty or dead slot: dial its replacement,
	// growing the pool toward PoolSize so frames actually fan out over
	// that many connections. If the dial fails, fall back to any live
	// connection before giving up — a replica with one working
	// connection is degraded, not down.
	nc, err := net.DialTimeout("tcp", rep.addr, rep.c.opts.Timeout)
	if err != nil {
		for i := 0; i < len(rep.conns); i++ {
			if rc := rep.conns[(slot+1+i)%len(rep.conns)]; rc != nil && !rc.dead.Load() {
				return rc, nil
			}
		}
		return nil, err
	}
	rc := &rconn{
		rep:     rep,
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 32<<10),
		pending: make(map[uint64]*batchEntry),
	}
	if name := rep.c.opts.Name; name != "" {
		hello, herr := wire.AppendHello(nil, name)
		if herr != nil {
			nc.Close()
			return nil, herr
		}
		if _, werr := rc.bw.Write(hello); werr != nil {
			nc.Close()
			return nil, werr
		}
	}
	rep.conns[slot] = rc
	rep.c.wgConns.Add(1)
	go rc.readLoop()
	rep.downUntil.Store(0)
	return rc, nil
}

// batchEntry is one outstanding frame on a connection: the submissions
// it carries and their query kinds (the positional schema ParseReply
// needs).
type batchEntry struct {
	atts  []attempt
	kinds []uint8
}

// rconn is one pooled connection: a write path under a mutex, a
// pending-frame map, and a reader goroutine demultiplexing replies.
type rconn struct {
	rep  *replica
	nc   net.Conn
	dead atomic.Bool

	wmu sync.Mutex
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]*batchEntry
	nextID  uint64
}

// sendBatch registers the batch and writes its frame. Submissions whose
// call already resolved (deadline, a faster hedge) are dropped here —
// their slots would only waste reply bytes. Reports whether a frame was
// written; on error the batch's attempts are already failed.
func (rc *rconn) sendBatch(batch []attempt) (bool, error) {
	entry := &batchEntry{}
	for _, att := range batch {
		if att.cl.state.Load() != callPending {
			att.cl.attempts.Add(-1)
			continue
		}
		entry.atts = append(entry.atts, att)
		entry.kinds = append(entry.kinds, att.cl.q.Kind)
	}
	if len(entry.atts) == 0 {
		return false, nil
	}
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	rc.pmu.Lock()
	rc.nextID++
	id := rc.nextID & 0x7fffffff // wire ids are capped at MaxInt32
	rc.pending[id] = entry
	rc.pmu.Unlock()
	qs := make([]wire.Query, len(entry.atts))
	for i, att := range entry.atts {
		qs[i] = att.cl.q
	}
	// Bound the write so a stalled replica (reading nothing, TCP window
	// shut) cannot wedge the collector goroutine forever.
	_ = rc.nc.SetWriteDeadline(time.Now().Add(rc.rep.c.opts.Timeout))
	frame, err := wire.AppendRequest(nil, id, qs)
	if err == nil {
		_, err = rc.bw.Write(frame)
	}
	if err == nil {
		err = rc.bw.Flush()
	}
	if err != nil {
		rc.pmu.Lock()
		delete(rc.pending, id)
		rc.pmu.Unlock()
		rc.failEntry(entry, err)
		return false, err
	}
	return true, nil
}

// readLoop demultiplexes reply frames into their batch entries until
// the connection dies, then fails every outstanding attempt.
func (rc *rconn) readLoop() {
	defer rc.rep.c.wgConns.Done()
	br := bufio.NewReaderSize(rc.nc, 32<<10)
	var buf []byte
	var readErr error
	for {
		kind, payload, err := wire.ReadFrame(br, &buf, rc.rep.c.opts.MaxFrame)
		if err != nil {
			readErr = err
			break
		}
		if kind != wire.FrameReply {
			readErr = fmt.Errorf("wire: unexpected frame kind %d from replica", kind)
			break
		}
		id, err := wire.PeekReplyID(payload)
		if err != nil {
			readErr = err
			break
		}
		rc.pmu.Lock()
		entry := rc.pending[id]
		delete(rc.pending, id)
		rc.pmu.Unlock()
		if entry == nil {
			continue // reply to a frame we already gave up on
		}
		_, rs, err := wire.ParseReply(payload, entry.kinds, nil)
		if err != nil {
			readErr = err
			rc.failEntry(entry, err)
			break
		}
		for i, att := range entry.atts {
			att.cl.complete(rc.rep.c, rs[i], att.hedge)
			att.cl.attempts.Add(-1)
		}
	}
	rc.kill(readErr)
}

// failEntry fails one batch entry's attempts.
func (rc *rconn) failEntry(entry *batchEntry, err error) {
	for _, att := range entry.atts {
		att.cl.failAttempt(rc.rep.c, err)
	}
}

// kill marks the connection dead, closes it, and fails every pending
// frame. Idempotent.
func (rc *rconn) kill(err error) {
	if rc.dead.Swap(true) {
		return
	}
	if err == nil {
		err = net.ErrClosed
	}
	if !errors.Is(err, ErrClientClosed) {
		rc.rep.c.transportErrs.Add(1)
	}
	rc.nc.Close()
	rc.pmu.Lock()
	entries := make([]*batchEntry, 0, len(rc.pending))
	for id, e := range rc.pending {
		entries = append(entries, e)
		delete(rc.pending, id)
	}
	rc.pmu.Unlock()
	for _, e := range entries {
		rc.failEntry(e, err)
	}
}
