package server

import (
	"fmt"
	"sync/atomic"
	"time"
)

// HealthState is the server's fault-health: the answer to "is this
// process trustworthy to keep in the load-balancer rotation", distinct
// from overload (which the admission controller handles by design).
//
// The state is derived, not stored: recent panic and timeout events are
// counted over a sliding pair of windows, and the state is recomputed
// from those counts on every read. Recovery is therefore automatic — a
// server that stops faulting returns to Healthy within two windows,
// with no reset call to forget.
type HealthState int32

const (
	// Healthy: no recent faults worth acting on.
	Healthy HealthState = iota
	// Degraded: the server is still answering, but backend panics or
	// query timeouts occurred recently — route traffic away if possible
	// and investigate. hubserve /healthz answers 503 in this state.
	Degraded
	// Failed: fault rates high enough that answers can no longer be
	// considered reliable capacity; the process should be drained and
	// replaced.
	Failed
)

// String returns the lowercase wire form used by /stats and /healthz.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// HealthOptions tunes the fault-health thresholds. Each threshold is a
// count of events observed within the sliding window (current plus
// previous window, so roughly the last 1–2 windows of history). Zero
// fields take the defaults; thresholds compare with ≥, and panics are
// deliberately cheaper to trip than timeouts — one contained panic is
// already a correctness-adjacent event, while a handful of timeouts can
// be a transient stall.
type HealthOptions struct {
	// Window is the sliding-window width (default 10s).
	Window time.Duration
	// DegradedPanics / DegradedTimeouts trip Degraded (defaults 1, 8).
	DegradedPanics   int
	DegradedTimeouts int
	// FailedPanics / FailedTimeouts trip Failed (defaults 8, 64).
	FailedPanics   int
	FailedTimeouts int
}

const (
	defaultHealthWindow     = 10 * time.Second
	defaultDegradedPanics   = 1
	defaultDegradedTimeouts = 8
	defaultFailedPanics     = 8
	defaultFailedTimeouts   = 64
)

// healthTracker counts panic and timeout events into per-window epoch
// buckets, lock-free. Rotation is lazy: whichever recorder or reader
// first touches a new epoch shifts current → previous. The counts are a
// gauge feeding a three-state machine, so the benign races around a
// rotation (an event landing just before or after the shift) move a
// threshold comparison by at most one event and are accepted.
type healthTracker struct {
	window                                     int64 // ns
	degPanics, degTimeouts, failPan, failTimes uint64
	epoch                                      atomic.Int64
	curPanics, prevPanics                      atomic.Uint64
	curTimeouts, prevTimeouts                  atomic.Uint64
}

func newHealthTracker(o HealthOptions) *healthTracker {
	if o.Window <= 0 {
		o.Window = defaultHealthWindow
	}
	if o.DegradedPanics <= 0 {
		o.DegradedPanics = defaultDegradedPanics
	}
	if o.DegradedTimeouts <= 0 {
		o.DegradedTimeouts = defaultDegradedTimeouts
	}
	if o.FailedPanics <= 0 {
		o.FailedPanics = defaultFailedPanics
	}
	if o.FailedTimeouts <= 0 {
		o.FailedTimeouts = defaultFailedTimeouts
	}
	h := &healthTracker{
		window:      int64(o.Window),
		degPanics:   uint64(o.DegradedPanics),
		degTimeouts: uint64(o.DegradedTimeouts),
		failPan:     uint64(o.FailedPanics),
		failTimes:   uint64(o.FailedTimeouts),
	}
	h.epoch.Store(time.Now().UnixNano() / h.window)
	return h
}

// rotate advances the window buckets to the epoch containing now.
func (h *healthTracker) rotate() {
	e := time.Now().UnixNano() / h.window
	for {
		cur := h.epoch.Load()
		if cur >= e {
			return
		}
		if !h.epoch.CompareAndSwap(cur, e) {
			continue
		}
		if e == cur+1 {
			h.prevPanics.Store(h.curPanics.Swap(0))
			h.prevTimeouts.Store(h.curTimeouts.Swap(0))
		} else {
			// More than one quiet window passed: all history expired.
			h.prevPanics.Store(0)
			h.curPanics.Store(0)
			h.prevTimeouts.Store(0)
			h.curTimeouts.Store(0)
		}
		return
	}
}

func (h *healthTracker) notePanic() {
	h.rotate()
	h.curPanics.Add(1)
}

func (h *healthTracker) noteTimeout() {
	h.rotate()
	h.curTimeouts.Add(1)
}

// state recomputes the health from the windowed counts.
func (h *healthTracker) state() (HealthState, string) {
	h.rotate()
	panics := h.curPanics.Load() + h.prevPanics.Load()
	timeouts := h.curTimeouts.Load() + h.prevTimeouts.Load()
	switch {
	case panics >= h.failPan:
		return Failed, fmt.Sprintf("%d backend panics in the last %v", panics, 2*time.Duration(h.window))
	case timeouts >= h.failTimes:
		return Failed, fmt.Sprintf("%d query timeouts in the last %v", timeouts, 2*time.Duration(h.window))
	case panics >= h.degPanics:
		return Degraded, fmt.Sprintf("%d backend panics in the last %v", panics, 2*time.Duration(h.window))
	case timeouts >= h.degTimeouts:
		return Degraded, fmt.Sprintf("%d query timeouts in the last %v", timeouts, 2*time.Duration(h.window))
	}
	return Healthy, "ok"
}
