package server

import (
	"sync"
	"time"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
)

// This file is the pipelined queue door the network front end rides: a
// whole frame of distance queries enters the shard queues as one wave,
// so worker coalescing engages across the frame instead of each query
// paying a full submit round trip. The wave shares every property of
// TryQuery — per-query admission, non-blocking enqueue, the end-to-end
// deadline, exactly-once delivery arbitration — and the exact
// accounting identity (Served + Rejected + Shed + Faulted + Timeouts)
// holds query by query.

// wave is the reusable scratch of one TryQueryBatch call: the in-flight
// envelopes and the caller slots they answer. Pooled so the batch door
// allocates nothing in steady state regardless of batch size.
type wave struct {
	reqs  []*request
	slots []int
}

var wavePool = sync.Pool{New: func() any { return new(wave) }}

// AdmissionController returns the server's fair admission controller,
// or nil when Options.Admission was not set. Fleet gossip reads
// snapshots from it and merges remote bucket state into it; the
// serving path itself never needs this accessor.
func (s *Server) AdmissionController() *flowctl.Controller { return s.ctl }

// TryQueryBatch answers pairs[k] into out[k] with a per-query error in
// errs[k], pushing the whole wave through the shard queues under the
// same admission door, deadline, and hot cache as TryQuery. Unlike the
// direct QueryBatch door it never bypasses admission: each query flips
// its own shed coin and claims its own queue slot, so a flooder's
// batches are throttled exactly like its single queries would be.
// Enqueued queries proceed concurrently across shards and coalesce
// into merge groups there; one deadline bounds the whole wave. out and
// errs must each hold len(pairs) entries. Zero allocations in steady
// state.
func (s *Server) TryQueryBatch(client string, pairs [][2]graph.NodeID, out []graph.Weight, errs []error) {
	if len(pairs) == 0 {
		return
	}
	if len(out) < len(pairs) || len(errs) < len(pairs) {
		panic("server: TryQueryBatch out/errs shorter than pairs")
	}
	if !s.acquire() {
		for i := range pairs {
			out[i] = graph.Infinity
			errs[i] = ErrClosed
		}
		return
	}
	defer s.release()
	var deadline <-chan time.Time
	if s.timeout > 0 {
		t := getTimer(s.timeout)
		defer putTimer(t)
		deadline = t.C
	}
	w := wavePool.Get().(*wave)
	defer func() {
		w.reqs = w.reqs[:0]
		w.slots = w.slots[:0]
		wavePool.Put(w)
	}()
	for i := range pairs {
		out[i] = graph.Infinity
		errs[i] = nil
		if s.ctl != nil && s.ctl.Shed(client) {
			s.shed.Add(1)
			errs[i] = ErrOverloaded
			continue
		}
		r := s.pool.Get().(*request)
		r.op, r.u, r.v, r.path = opDistance, pairs[i][0], pairs[i][1], nil
		r.state.Store(stPending)
		sh := s.shards[s.rr.Add(1)%uint64(len(s.shards))]
		select {
		case sh.ch <- r:
			w.reqs = append(w.reqs, r)
			w.slots = append(w.slots, i)
		default:
			s.putRequest(r)
			s.rejected.Add(1)
			if s.ctl != nil {
				s.ctl.OnQueueFull(client)
			}
			errs[i] = ErrOverloaded
		}
	}
	// Collect in submission order. Once the shared deadline fires, every
	// still-pending envelope — including the one the select was waiting
	// on — is abandoned to its worker via the same CAS arbitration as
	// the single-query door (the timer channel yields exactly once, so
	// after expired flips we never select on it again).
	expired := false
	for k, r := range w.reqs {
		slot := w.slots[k]
		delivered := false
		if !expired {
			if deadline == nil {
				<-r.done
				delivered = true
			} else {
				select {
				case <-r.done:
					delivered = true
				case <-deadline:
					expired = true
				}
			}
		}
		if !delivered {
			if r.state.CompareAndSwap(stPending, stAbandoned) {
				s.timeouts.Add(1)
				s.health.noteTimeout()
				errs[slot] = ErrTimeout
				continue
			}
			// Lost the race: the worker delivered concurrently with the
			// deadline — consume the signal and keep the answer.
			<-r.done
		}
		out[slot], errs[slot] = r.d, r.err
		s.putRequest(r)
		if s.ctl != nil {
			s.ctl.OnServed(client)
		}
	}
}
