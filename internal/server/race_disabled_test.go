//go:build !race

package server

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
