package server

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/faultinject"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/index/indextest"
)

// goroutineBaseline snapshots the goroutine count and returns a checker
// that fails the test if the count has not returned to (or below) the
// baseline shortly after — the leak check for worker restarts, timeout
// abandonment and warm goroutines.
func goroutineBaseline(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for time.Now().Before(deadline) {
			runtime.GC()
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, now)
	}
}

// armFaults arms a spec with cleanup.
func armFaults(t *testing.T, spec string, seed uint64) {
	t.Helper()
	if err := faultinject.Enable(spec, seed); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disable)
}

// TestWorkerPanicRecoveryAccounting is the core containment pin: under a
// storm of injected worker panics, (1) no panic escapes to any client
// goroutine, (2) every submitted request resolves with an answer or a
// typed error and Served+Rejected+Shed+Faulted+Timeouts equals the
// submitted count exactly, (3) the same shards keep answering correctly
// once the faults stop, and (4) no goroutines leak through the
// panic-recovery restarts.
func TestWorkerPanicRecoveryAccounting(t *testing.T) {
	checkLeaks := goroutineBaseline(t)
	armFaults(t, "server.worker:panic:every=7", 42)

	srv := New(&indextest.Fixed{N: 64}, Options{Shards: 2, QueueDepth: 16})
	const clients, perClient = 8, 400
	var ok, faulted, overloaded, escaped atomic.Uint64
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					escaped.Add(1)
				}
			}()
			for i := 0; i < perClient; i++ {
				u := graph.NodeID(i % 64)
				v := graph.NodeID((i * 7) % 64)
				d, err := srv.TryQuery("client", u, v)
				switch {
				case err == nil:
					ok.Add(1)
					want := u - v
					if want < 0 {
						want = -want
					}
					if d != graph.Weight(want) {
						wrong.Add(1)
					}
				case errors.Is(err, ErrBackendFault):
					faulted.Add(1)
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()

	if escaped.Load() != 0 {
		t.Fatalf("%d panics escaped to client goroutines", escaped.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d served answers were wrong under fault storm", wrong.Load())
	}
	st := srv.Stats()
	submitted := uint64(clients * perClient)
	if got := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts; got != submitted {
		t.Fatalf("accounting: served %d + rejected %d + shed %d + faulted %d + timeouts %d = %d, want %d",
			st.Served, st.Rejected, st.Shed, st.Faulted, st.Timeouts, got, submitted)
	}
	// Client-side view must agree bucket by bucket.
	if st.Served != ok.Load() || st.Faulted != faulted.Load() || st.Rejected+st.Shed != overloaded.Load() {
		t.Fatalf("client/server bucket mismatch: ok %d vs served %d, fault %d vs %d, overloaded %d vs %d",
			ok.Load(), st.Served, faulted.Load(), st.Faulted, overloaded.Load(), st.Rejected+st.Shed)
	}
	if st.Panics == 0 || st.Faulted == 0 {
		t.Fatalf("fault storm injected nothing: panics=%d faulted=%d", st.Panics, st.Faulted)
	}
	if fired := faultinject.Fired(faultinject.PointServerWorker); uint64(fired) != st.Panics {
		t.Errorf("injected %d panics, Stats.Panics = %d", fired, st.Panics)
	}

	// Faults off: the very same workers must still answer exactly.
	faultinject.Disable()
	for i := 0; i < 50; i++ {
		u, v := graph.NodeID(i%64), graph.NodeID((i*3)%64)
		d, err := srv.TryQuery("after", u, v)
		if err != nil {
			t.Fatalf("post-storm query %d: %v", i, err)
		}
		want := u - v
		if want < 0 {
			want = -want
		}
		if d != graph.Weight(want) {
			t.Fatalf("post-storm answer %d–%d = %d, want %d", u, v, d, want)
		}
	}

	srv.Close()
	checkLeaks()
}

// TestQueryTimeout pins the deadline door: a request stuck behind a
// gated backend answers ErrTimeout at the deadline, the abandoned
// envelope is reclaimed by the worker (a later query reuses the pool
// without cross-talk), accounting stays exact, and nothing leaks.
func TestQueryTimeout(t *testing.T) {
	checkLeaks := goroutineBaseline(t)
	release := make(chan struct{})
	gate := &indextest.Fixed{N: 32, Gate: release}
	srv := New(gate, Options{Shards: 1, QueueDepth: 4, QueryTimeout: 60 * time.Millisecond})

	start := time.Now()
	d, err := srv.TryQuery("c", 1, 2)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("gated TryQuery = (%v, %v), want ErrTimeout", d, err)
	}
	if waited := time.Since(start); waited < 55*time.Millisecond || waited > 3*time.Second {
		t.Fatalf("deadline fired after %v, want ≈60ms", waited)
	}
	if d != graph.Infinity {
		t.Fatalf("timed-out distance = %v, want Infinity", d)
	}
	st := srv.Stats()
	if st.Timeouts != 1 || st.Served != 0 {
		t.Fatalf("after timeout: timeouts=%d served=%d", st.Timeouts, st.Served)
	}

	// Open the gate: the worker finishes the abandoned request, recycles
	// its envelope, and fresh queries are exact again.
	close(release)
	for i := 0; i < 20; i++ {
		d, err := srv.TryQuery("c", 3, 10)
		if err != nil || d != 7 {
			t.Fatalf("post-gate query = (%v, %v), want (7, nil)", d, err)
		}
	}
	st = srv.Stats()
	total := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts
	if total != 21 {
		t.Fatalf("accounting after timeout: %+v sums to %d, want 21", st, total)
	}
	// The abandoned request must NOT have been counted served.
	if st.Served != 20 || st.Timeouts != 1 {
		t.Fatalf("served=%d timeouts=%d, want 20/1", st.Served, st.Timeouts)
	}
	srv.Close()
	checkLeaks()
}

// warmable is a capability-bearing fake whose warm can be gated or made
// to panic, for exercising the bounded-warm machinery.
type warmable struct {
	indextest.Fixed
	warmGate  <-chan struct{}
	warmPanic bool
	warms     atomic.Uint64
}

func (w *warmable) WarmPaths()        { w.doWarm() }
func (w *warmable) WarmEccentricity() { w.doWarm() }
func (w *warmable) doWarm() {
	w.warms.Add(1)
	if w.warmPanic {
		panic("warm exploded")
	}
	if w.warmGate != nil {
		<-w.warmGate
	}
}

func (w *warmable) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	return append(dst, u, v), nil
}

var _ index.CapabilityWarmer = (*warmable)(nil)
var _ index.PathReporter = (*warmable)(nil)

// TestWarmTimeoutAndPanic pins that a stalled capability warm no longer
// blocks callers forever (ErrTimeout at the deadline; the warm finishes
// in the background and later requests take the warmed fast path), and
// that a panicking warm is contained as ErrBackendFault.
func TestWarmTimeoutAndPanic(t *testing.T) {
	checkLeaks := goroutineBaseline(t)
	gate := make(chan struct{})
	w := &warmable{Fixed: indextest.Fixed{N: 16}, warmGate: gate}
	srv := New(w, Options{Shards: 1, QueryTimeout: 50 * time.Millisecond})

	if _, err := srv.TryPath("c", 1, 2, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled warm: err = %v, want ErrTimeout", err)
	}
	close(gate)
	// The background warm completes and flips the snapshot's warmed
	// flag; subsequent path queries are served without a new warm.
	var path []graph.NodeID
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		path, err = srv.TryPath("c", 1, 2, nil)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil || len(path) != 2 {
		t.Fatalf("post-warm TryPath = (%v, %v)", path, err)
	}
	if w.warms.Load() != 1 {
		t.Fatalf("warm ran %d times, want once", w.warms.Load())
	}
	srv.Close()

	wp := &warmable{Fixed: indextest.Fixed{N: 16}, warmPanic: true}
	srv2 := New(wp, Options{Shards: 1})
	if _, err := srv2.TryPath("c", 1, 2, nil); !errors.Is(err, ErrBackendFault) {
		t.Fatalf("panicking warm: err = %v, want ErrBackendFault", err)
	}
	st := srv2.Stats()
	if st.Panics != 1 || st.Faulted != 1 {
		t.Fatalf("panicking warm stats: panics=%d faulted=%d, want 1/1", st.Panics, st.Faulted)
	}
	srv2.Close()
	checkLeaks()
}

// TestHealthStateMachine drives the windowed health: panics degrade then
// fail, a quiet period recovers, and plain overload never moves it.
func TestHealthStateMachine(t *testing.T) {
	opts := Options{Shards: 1, QueueDepth: 2, Health: HealthOptions{
		Window:           80 * time.Millisecond,
		DegradedPanics:   1,
		FailedPanics:     5,
		DegradedTimeouts: 4,
		FailedTimeouts:   1 << 30,
	}}
	srv := New(&indextest.Fixed{N: 16}, opts)
	defer srv.Close()

	if h, reason := srv.Health(); h != Healthy {
		t.Fatalf("fresh server health = %v (%s)", h, reason)
	}

	// One contained panic → Degraded.
	armFaults(t, "server.worker:panic:times=1", 1)
	if _, err := srv.TryQuery("c", 1, 2); !errors.Is(err, ErrBackendFault) {
		t.Fatalf("injected panic: %v", err)
	}
	if h, reason := srv.Health(); h != Degraded {
		t.Fatalf("after 1 panic: health = %v (%s), want degraded", h, reason)
	}

	// Four more within the window → Failed.
	armFaults(t, "server.worker:panic:times=4", 1)
	for i := 0; i < 4; i++ {
		if _, err := srv.TryQuery("c", 1, 2); !errors.Is(err, ErrBackendFault) {
			t.Fatalf("injected panic %d: %v", i, err)
		}
	}
	if h, reason := srv.Health(); h != Failed {
		t.Fatalf("after 5 panics: health = %v (%s), want failed", h, reason)
	}

	// Quiet for > 2 windows → Healthy again, no reset call.
	faultinject.Disable()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h, _ := srv.Health(); h == Healthy {
			break
		}
		if time.Now().After(deadline) {
			h, reason := srv.Health()
			t.Fatalf("health never recovered: %v (%s)", h, reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.Stats(); st.Panics != 5 {
		t.Fatalf("cumulative panics = %d, want 5 (health recovery must not erase counters)", st.Panics)
	}
}

// TestOverloadStaysHealthy pins the design split between shedding and
// faults: saturating the queues produces Rejected/Shed, and the health
// state must remain healthy through all of it.
func TestOverloadStaysHealthy(t *testing.T) {
	release := make(chan struct{})
	gate := &indextest.Fixed{N: 16, Gate: release}
	srv := New(gate, Options{Shards: 1, QueueDepth: 1})
	defer srv.Close()
	var wg sync.WaitGroup
	for gate.Started.Load() == 0 || srv.Stats().Queued < 1 {
		wg.Add(1)
		go func() { defer wg.Done(); srv.TryQuery("filler", 0, 1) }()
		time.Sleep(time.Millisecond)
	}
	var rejected int
	for i := 0; i < 50; i++ {
		if _, err := srv.TryQuery("c", 1, 2); errors.Is(err, ErrOverloaded) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("saturation produced no rejections")
	}
	if h, reason := srv.Health(); h != Healthy {
		t.Fatalf("health = %v (%s) under plain overload, want healthy", h, reason)
	}
	close(release)
	wg.Wait()
}

// TestChaosStorm is the CI chaos shard: a race-detector-friendly storm
// mixing worker panics, injected worker latency and query deadlines
// under concurrent clients and hot swaps, asserting exact accounting
// and zero escaped panics at the end.
func TestChaosStorm(t *testing.T) {
	checkLeaks := goroutineBaseline(t)
	armFaults(t, "server.worker:panic:every=11;server.worker:delay:p=0.05,d=2ms", 7)
	srv := New(&indextest.Fixed{N: 128}, Options{
		Shards: 4, QueueDepth: 8, QueryTimeout: 20 * time.Millisecond,
	})
	const clients, perClient = 8, 250
	var submitted, resolved, escaped atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					escaped.Add(1)
				}
			}()
			for i := 0; i < perClient; i++ {
				submitted.Add(1)
				_, err := srv.TryQuery("c", graph.NodeID(i%128), graph.NodeID((i*13)%128))
				if err == nil || errors.Is(err, ErrBackendFault) || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrTimeout) {
					resolved.Add(1)
				}
			}
		}()
	}
	// Hot swaps during the storm: snapshots must retire cleanly under
	// faults too.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 10; i++ {
			srv.Swap(&indextest.Fixed{N: 128})
			time.Sleep(3 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-swapDone
	if escaped.Load() != 0 {
		t.Fatalf("%d panics escaped", escaped.Load())
	}
	if resolved.Load() != submitted.Load() {
		t.Fatalf("resolved %d of %d submitted", resolved.Load(), submitted.Load())
	}
	st := srv.Stats()
	if got := st.Served + st.Rejected + st.Shed + st.Faulted + st.Timeouts; got != submitted.Load() {
		t.Fatalf("accounting: %d buckets vs %d submitted (%+v)", got, submitted.Load(), st)
	}
	if st.Panics == 0 {
		t.Fatal("storm injected no panics")
	}
	srv.Close()
	checkLeaks()
}
