package server

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/hub"
	"hublab/internal/index"
	"hublab/internal/pll"
)

// The mmap lifecycle tests: a served snapshot backed by a memory-mapped
// container must never be unmapped while a query can still touch it, and
// every mapping the server owned must be released by the time Close
// returns. The viewIndex wrapper instruments a real mmap-loaded index
// with refcount hooks — every query entry/exit is counted, and Release
// (the munmap) records any violation it could observe: a release racing
// an in-flight query, a double release, or a query arriving after
// release. The queries also genuinely touch the mapped arrays, so an
// early munmap would crash the test outright.

// alignedContainerPath builds a PLL labeling (with parents) over a small
// Gnm and writes it as an aligned (v3) container.
func alignedContainerPath(tb testing.TB) string {
	tb.Helper()
	g, err := gen.Gnm(150, 280, 11)
	if err != nil {
		tb.Fatal(err)
	}
	l, err := pll.Build(g, pll.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "view.hli")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := l.Freeze().WriteContainer(f, hub.ContainerOptions{Aligned: true}); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path
}

// viewIndex wraps a view-backed HubLabels with lifecycle instrumentation.
type viewIndex struct {
	x        *index.HubLabels
	gate     <-chan struct{} // optional: holds every Distance open
	started  atomic.Int64
	inFlight atomic.Int64
	released atomic.Bool
	// violations counts every observable lifecycle break; the test
	// asserts it stays zero.
	violations *atomic.Int64
}

func openViewIndex(tb testing.TB, path string, violations *atomic.Int64) *viewIndex {
	tb.Helper()
	x, err := index.LoadMmap(path)
	if err != nil {
		tb.Fatal(err)
	}
	if x.Owned() {
		tb.Fatal("LoadMmap of an aligned container returned an owned index")
	}
	return &viewIndex{x: x, violations: violations}
}

func (w *viewIndex) enter() {
	w.started.Add(1)
	if w.released.Load() {
		w.violations.Add(1)
	}
	w.inFlight.Add(1)
}

func (w *viewIndex) exit() {
	w.inFlight.Add(-1)
	if w.released.Load() {
		w.violations.Add(1)
	}
}

func (w *viewIndex) Distance(u, v graph.NodeID) graph.Weight {
	w.enter()
	defer w.exit()
	if w.gate != nil {
		<-w.gate
	}
	return w.x.Distance(u, v)
}

func (w *viewIndex) DistanceBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	w.enter()
	defer w.exit()
	w.x.DistanceBatch(pairs, out)
}

func (w *viewIndex) AppendPath(dst []graph.NodeID, u, v graph.NodeID) ([]graph.NodeID, error) {
	w.enter()
	defer w.exit()
	return w.x.AppendPath(dst, u, v)
}

func (w *viewIndex) SpaceBytes() int64 { return w.x.SpaceBytes() }
func (w *viewIndex) Name() string      { return w.x.Name() }
func (w *viewIndex) Meta() index.Meta  { return w.x.Meta() }

// Release implements index.Releaser: the server must call it exactly
// once, with nothing in flight.
func (w *viewIndex) Release() error {
	if w.inFlight.Load() != 0 {
		w.violations.Add(1)
	}
	if w.released.Swap(true) {
		w.violations.Add(1) // double release
	}
	return w.x.Release()
}

var (
	_ index.Index        = (*viewIndex)(nil)
	_ index.Batcher      = (*viewIndex)(nil)
	_ index.PathReporter = (*viewIndex)(nil)
	_ index.Releaser     = (*viewIndex)(nil)
)

// TestSwapRetireReleasesAfterDrain is the deterministic half of the
// lifecycle contract: a SwapRetire while a query is verifiably inside
// the old snapshot must not release it; the release must land after that
// query drains, and Close must release the final snapshot.
func TestSwapRetireReleasesAfterDrain(t *testing.T) {
	path := alignedContainerPath(t)
	var violations atomic.Int64
	gate := make(chan struct{})
	old := openViewIndex(t, path, &violations)
	old.gate = gate
	srv := New(old, Options{Shards: 1, OwnIndex: true})

	done := make(chan graph.Weight, 1)
	go func() {
		d, _ := srv.TryQuery("c", 0, 17)
		done <- d
	}()
	waitFor(t, "query to enter the old snapshot", func() bool { return old.started.Load() == 1 })

	next := openViewIndex(t, path, &violations)
	srv.SwapRetire(next)
	// The old snapshot has a pinned in-flight query: it must not release.
	time.Sleep(20 * time.Millisecond)
	if old.released.Load() {
		t.Fatal("old snapshot released while a query was inside it")
	}
	close(gate)
	d := <-done
	waitFor(t, "old snapshot to release after the drain", func() bool { return old.released.Load() })

	// The new snapshot serves, and Close releases it.
	d2, err := srv.TryQuery("c", 0, 17)
	if err != nil || d2 != d {
		t.Fatalf("after retire: TryQuery = (%d,%v), want (%d,nil)", d2, err, d)
	}
	srv.Close()
	if !next.released.Load() {
		t.Fatal("Close left the owned final snapshot mapped")
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d lifecycle violations", v)
	}
}

// TestMmapSwapRetireUnderLoad is the hammer: many clients stream
// TryQuery/TryPath against view-backed snapshots while a swapper
// replaces the served mapping dozens of times, then the server closes.
// Every answer must match the decode-loaded reference (all snapshots
// serve the same container), no mapping may be released with a query in
// flight, and after Close every mapping the server owned must be
// released exactly once. CI runs this with -race -count=2.
func TestMmapSwapRetireUnderLoad(t *testing.T) {
	path := alignedContainerPath(t)
	ref, err := index.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	n := ref.Meta().Vertices

	var violations atomic.Int64
	var created []*viewIndex
	srv := New(openViewIndexTracked(t, path, &violations, &created), Options{Shards: 4, OwnIndex: true})

	const clients = 8
	stop := make(chan struct{})
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			var buf []graph.NodeID
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if d, err := srv.TryQuery("c", u, v); err == nil && d != ref.Distance(u, v) {
					wrong.Add(1)
				}
				var err error
				buf, err = srv.TryPath("c", u, v, buf[:0])
				if err == nil && len(buf) > 0 && (buf[0] != u || buf[len(buf)-1] != v) {
					wrong.Add(1)
				}
			}
		}(c)
	}

	for i := 0; i < 40; i++ {
		srv.SwapRetire(openViewIndexTracked(t, path, &violations, &created))
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	srv.Close()

	for i, w := range created {
		if !w.released.Load() {
			t.Errorf("snapshot %d of %d never released: mapping leaked past Close", i, len(created))
		}
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d lifecycle violations (release racing queries / double release)", v)
	}
	if w := wrong.Load(); w != 0 {
		t.Errorf("%d answers disagreed with the decode-loaded reference", w)
	}
}

// openViewIndexTracked is openViewIndex plus bookkeeping of every
// wrapper ever installed, so the leak check after Close is exhaustive.
// The slice is only appended from the test goroutine (New and the
// swapper loop), so no lock is needed.
func openViewIndexTracked(t *testing.T, path string, violations *atomic.Int64, created *[]*viewIndex) *viewIndex {
	w := openViewIndex(t, path, violations)
	*created = append(*created, w)
	return w
}

// waitFor polls cond with a deadline, for lifecycle transitions driven
// by other goroutines.
func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", desc)
		case <-time.After(time.Millisecond):
		}
	}
}
