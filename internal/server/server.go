// Package server is the in-process concurrent query service over an
// index.Index: client goroutines submit (u,v) pairs, the server shards
// them across worker goroutines, and each worker coalesces adjacent
// requests into groups of three to feed the interleaved merge of the
// hub-label batch path. The served index is held behind an atomic
// snapshot pointer, so a rebuilt or freshly loaded index can be swapped
// in under live traffic without pausing queries.
//
// The per-query hot path performs zero allocations in steady state:
// request envelopes (including their reply channels) are pooled, shard
// routing is a single atomic round-robin tick, and every worker reuses
// its batch buffers across groups.
//
// Two doors exist. Query blocks until served and is for trusted
// in-process callers; TryQuery never blocks on a full queue and never
// panics — it returns ErrOverloaded/ErrClosed — and, with
// Options.Admission set, consults a constant-memory fair admission
// controller (internal/flowctl) so overload is shed per-client instead
// of starving whoever queues last.
//
// Beyond scalar distances, witness-path and eccentricity queries flow
// through the same queues and the same admission door (TryPath,
// TryEccentricity, TryFarthest): a worker group may mix kinds, with the
// all-distance common case still taking the interleaved-merge batch
// path. Capabilities are resolved per snapshot, so swapping in an index
// without path support degrades those requests to ErrUnsupported rather
// than breaking the server.
package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/par"
)

// ErrOverloaded reports that a request was not admitted: either its
// shard queue was full, or the admission controller shed it to protect
// the queues. Callers should back off (HTTP front ends translate it to
// 429 + Retry-After).
var ErrOverloaded = errors.New("server: overloaded")

// ErrClosed reports a request issued after (or concurrent with) Close.
var ErrClosed = errors.New("server: closed")

// ErrUnsupported reports a query kind (path, eccentricity) the currently
// served index does not implement. The capability is re-checked per
// snapshot, so a Swap to a capable index clears the condition without a
// restart.
var ErrUnsupported = errors.New("server: query kind not supported by the served index")

// batchSize is how many adjacent requests a shard coalesces into one
// DistanceBatch call. Three matches the stream count of the interleaved
// merge in hub.QueryBatch — more would queue behind the merge, fewer
// wastes pipeline overlap.
const batchSize = 3

// Options configures a Server.
type Options struct {
	// Shards is the number of worker goroutines (and request queues).
	// 0 means the par worker bound (runtime.NumCPU(), or the par.SetWorkers
	// override — so pinning the pool pins the server too).
	Shards int
	// QueueDepth is the per-shard request buffer (default 64).
	QueueDepth int
	// Admission, when non-nil, attaches a flowctl fair admission
	// controller to the TryQuery door: clients whose traffic overflows
	// the shard queues are probabilistically shed at the door (counted in
	// Stats.Shed) instead of racing everyone else for queue slots.
	// Blocking Query calls bypass the controller.
	Admission *flowctl.Options
}

// Server shards query streams over worker goroutines against an
// atomically swappable index snapshot.
type Server struct {
	snap    atomic.Pointer[snapshot]
	shards  []*shard
	rr      atomic.Uint64
	pool    sync.Pool
	wg      sync.WaitGroup
	closing atomic.Bool
	// active counts submissions between acquire and release; Close waits
	// for it to drain before closing the shard channels, so a submit can
	// never race a channel close (drained carries the wake-up signal).
	active  atomic.Int64
	drained chan struct{}
	// ctl is the optional fair admission controller of the TryQuery door.
	ctl      *flowctl.Controller
	rejected atomic.Uint64
	shed     atomic.Uint64
	// Traffic through the direct QueryBatch door, which bypasses the
	// shard queues and their per-shard counters.
	direct        atomic.Uint64
	directBatches atomic.Uint64
}

// snapshot pairs an index with its (possibly nil) capability fast paths
// so one atomic load fetches all of them.
type snapshot struct {
	idx   index.Index
	batch index.Batcher
	paths index.PathReporter
	ecc   index.EccentricityReporter
	warm  index.CapabilityWarmer
}

// Request kinds flowing through the shard queues. Distance requests keep
// the interleaved-merge batch path; path and eccentricity requests share
// the same queues, workers and admission door but are answered one by
// one.
const (
	opDistance = iota
	opPath
	opEcc
	opFarthest
)

type request struct {
	op   uint8
	u, v graph.NodeID
	d    graph.Weight
	// path carries the caller's destination buffer in and the appended
	// path out (opPath only); the envelope drops the reference before
	// returning to the pool, so the buffer's ownership stays with the
	// caller.
	path []graph.NodeID
	far  graph.NodeID
	err  error
	done chan struct{}
}

type shard struct {
	ch chan *request
	// Reusable per-shard batch buffers: the worker is the only goroutine
	// touching them, so groups recycle the same storage forever.
	reqs    [batchSize]*request
	pairs   [batchSize][2]graph.NodeID
	out     [batchSize]graph.Weight
	served  atomic.Uint64
	batches atomic.Uint64
}

// New starts a server over idx. Callers must Close it to release the
// worker goroutines.
func New(idx index.Index, opts Options) *Server {
	shards := opts.Shards
	if shards <= 0 {
		shards = par.Workers(math.MaxInt32)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	s := &Server{shards: make([]*shard, shards), drained: make(chan struct{}, 1)}
	if opts.Admission != nil {
		s.ctl = flowctl.New(*opts.Admission)
	}
	s.snap.Store(newSnapshot(idx))
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i := range s.shards {
		sh := &shard{ch: make(chan *request, depth)}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.run(sh)
	}
	return s
}

func newSnapshot(idx index.Index) *snapshot {
	ns := &snapshot{idx: idx}
	if b, ok := idx.(index.Batcher); ok {
		ns.batch = b
	}
	if p, ok := idx.(index.PathReporter); ok {
		ns.paths = p
	}
	if e, ok := idx.(index.EccentricityReporter); ok {
		ns.ecc = e
	}
	if w, ok := idx.(index.CapabilityWarmer); ok {
		ns.warm = w
	}
	return ns
}

// acquire registers a submission against the close gate. It returns
// false when the server is closing: after closing flips, every acquire
// backs out, so once active drains to zero no submission can ever touch
// the shard channels again and Close may close them safely.
func (s *Server) acquire() bool {
	if s.closing.Load() {
		return false
	}
	s.active.Add(1)
	if s.closing.Load() { // re-check: Close may have begun between the two
		s.release()
		return false
	}
	return true
}

// release undoes acquire and wakes a draining Close when the last
// in-flight submission leaves.
func (s *Server) release() {
	if s.active.Add(-1) == 0 && s.closing.Load() {
		select {
		case s.drained <- struct{}{}:
		default:
		}
	}
}

// Query answers one exact distance query, blocking until a shard worker
// serves it — even when that means waiting for a queue slot. It is safe
// for any number of concurrent callers and allocates nothing in steady
// state. Calling Query after (or concurrent with) Close is a programmer
// error and panics with a descriptive message; servers exposed to
// traffic they do not control should use TryQuery, which returns
// ErrClosed instead.
func (s *Server) Query(u, v graph.NodeID) graph.Weight {
	r, err := s.submit("", opDistance, u, v, nil, true)
	if err != nil {
		panic("server: Query called after Close (use TryQuery for a graceful ErrClosed)")
	}
	d := r.d
	s.putRequest(r)
	return d
}

// TryQuery is the non-blocking admission door for untrusted traffic: it
// never waits for a queue slot and never panics. client identifies the
// caller for fair load shedding (remote address, connection id, tenant —
// any stable string). It returns ErrOverloaded when the request was shed
// by the admission controller or found its shard queue full, and
// ErrClosed after Close; an admitted request still blocks until its
// answer is computed. Zero allocations in steady state.
func (s *Server) TryQuery(client string, u, v graph.NodeID) (graph.Weight, error) {
	r, err := s.submit(client, opDistance, u, v, nil, false)
	if err != nil {
		return graph.Infinity, err
	}
	d := r.d
	s.putRequest(r)
	return d, nil
}

// TryPath answers one witness-path query through the same shard queues
// and admission door as TryQuery: the path vertices (u→v inclusive) are
// appended to dst, whose ownership stays with the caller — reusing it
// keeps the door allocation-free apart from the path storage itself.
// Nothing is appended for unreachable pairs. Backends without the path
// capability answer ErrUnsupported; a hub-label index served from a
// version-1 container reports hub.ErrNoParents.
func (s *Server) TryPath(client string, u, v graph.NodeID, dst []graph.NodeID) ([]graph.NodeID, error) {
	r, err := s.submit(client, opPath, u, v, dst, false)
	if err != nil {
		return dst, err
	}
	path, qerr := r.path, r.err
	s.putRequest(r)
	return path, qerr
}

// TryEccentricity answers one eccentricity query under the admission
// door. Backends without the capability answer ErrUnsupported.
func (s *Server) TryEccentricity(client string, v graph.NodeID) (graph.Weight, error) {
	r, err := s.submit(client, opEcc, v, v, nil, false)
	if err != nil {
		return graph.Infinity, err
	}
	d, qerr := r.d, r.err
	s.putRequest(r)
	return d, qerr
}

// TryFarthest answers one farthest-vertex query (the vertex attaining
// Eccentricity(v), and that distance) under the admission door.
func (s *Server) TryFarthest(client string, v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	r, err := s.submit(client, opFarthest, v, v, nil, false)
	if err != nil {
		return -1, graph.Infinity, err
	}
	far, d, qerr := r.far, r.d, r.err
	s.putRequest(r)
	return far, d, qerr
}

// putRequest scrubs an answered envelope and returns it to the pool. The
// path buffer belongs to the caller, so the reference must not survive
// into the pool.
func (s *Server) putRequest(r *request) {
	r.path = nil
	r.err = nil
	s.pool.Put(r)
}

// submit is the common door: gate against Close, optionally consult the
// admission controller, enqueue (blocking or not), await the answer. On
// success the caller owns the returned envelope and must release it with
// putRequest after copying the answer out.
func (s *Server) submit(client string, op uint8, u, v graph.NodeID, dst []graph.NodeID, block bool) (*request, error) {
	if !s.acquire() {
		return nil, ErrClosed
	}
	defer s.release()
	if !block && s.ctl != nil && s.ctl.Shed(client) {
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	// Lazily materialized capability state (the matrix next-hop table,
	// the inverted eccentricity lists) is warmed here, in the submitting
	// goroutine: the one-time build blocks only this caller, never a
	// shard worker with other clients' requests queued behind it. Once
	// built these are sync.Once fast paths.
	if snap := s.snap.Load(); snap.warm != nil {
		switch op {
		case opPath:
			snap.warm.WarmPaths()
		case opEcc, opFarthest:
			snap.warm.WarmEccentricity()
		}
	}
	r := s.pool.Get().(*request)
	r.op, r.u, r.v, r.path = op, u, v, dst
	sh := s.shards[s.rr.Add(1)%uint64(len(s.shards))]
	if block {
		sh.ch <- r
	} else {
		select {
		case sh.ch <- r:
		default:
			s.putRequest(r)
			s.rejected.Add(1)
			if s.ctl != nil {
				s.ctl.OnQueueFull(client)
			}
			return nil, ErrOverloaded
		}
	}
	<-r.done
	if !block && s.ctl != nil {
		s.ctl.OnServed(client)
	}
	return r, nil
}

// QueryBatch answers pairs[k] into out[k] directly on the current
// snapshot, bypassing the shard queues — the batch is already a group, so
// it goes straight to the index's interleaved merge (or a scalar loop for
// backends without one). Zero allocations. It never touches the shard
// channels, so unlike Query it stays safe (and keeps answering on the
// final snapshot) during and after Close.
func (s *Server) QueryBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	if len(pairs) == 0 {
		return
	}
	s.direct.Add(uint64(len(pairs)))
	s.directBatches.Add(1)
	snap := s.snap.Load()
	if snap.batch != nil {
		snap.batch.DistanceBatch(pairs, out)
		return
	}
	for i, p := range pairs {
		out[i] = snap.idx.Distance(p[0], p[1])
	}
}

// Index returns the currently served index snapshot.
func (s *Server) Index() index.Index { return s.snap.Load().idx }

// Swap atomically replaces the served index and returns the previous one.
// In-flight groups finish on the snapshot they started with; every
// request picked up afterwards is served by next. The two indexes may
// cover different graphs — callers own that transition.
func (s *Server) Swap(next index.Index) index.Index {
	old := s.snap.Swap(newSnapshot(next))
	return old.idx
}

// Stats is a point-in-time view of served traffic.
type Stats struct {
	// Shards is the worker count.
	Shards int
	// Served is the total number of requests answered.
	Served uint64
	// Batches is the number of DistanceBatch groups issued; Served /
	// Batches approximates the achieved coalescing factor (≤ 3 via the
	// shard queues; direct QueryBatch calls count as one group each).
	Batches uint64
	// Rejected counts TryQuery requests turned away because their shard
	// queue was full at arrival.
	Rejected uint64
	// Shed counts TryQuery requests dropped at the door by the fair
	// admission controller (always 0 without Options.Admission).
	Shed uint64
	// PerClientHot estimates the number of distinct client flows the
	// admission controller is currently throttling (0 without a
	// controller).
	PerClientHot int
	// Queued is the instantaneous number of admitted requests waiting in
	// the shard queues (a pressure gauge, not a counter).
	Queued int
	// PerShard is the served count of each shard. Queries answered
	// through the direct QueryBatch door are counted in Served and
	// Batches but belong to no shard.
	PerShard []uint64
}

// Stats returns a snapshot of the served-traffic counters. A request's
// outcome is visible here no later than its reply: every TryQuery has
// been counted exactly once across Served/Rejected/Shed by the time it
// returns without error or with ErrOverloaded.
func (s *Server) Stats() Stats {
	st := Stats{Shards: len(s.shards), PerShard: make([]uint64, len(s.shards))}
	for i, sh := range s.shards {
		n := sh.served.Load()
		st.PerShard[i] = n
		st.Served += n
		st.Batches += sh.batches.Load()
		st.Queued += len(sh.ch)
	}
	st.Served += s.direct.Load()
	st.Batches += s.directBatches.Load()
	st.Rejected = s.rejected.Load()
	st.Shed = s.shed.Load()
	if s.ctl != nil {
		st.PerClientHot = s.ctl.Stats().HotFlows
	}
	return st
}

// Close stops the workers and waits for them to drain. It is safe to
// call concurrently with TryQuery (submissions that lose the race get
// ErrClosed) and with in-flight Query calls, which are answered before
// the workers exit; only the first caller performs the drain, later
// calls return immediately. Stats and QueryBatch remain usable on the
// final snapshot after Close.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	// Wait for every submission that passed the gate to leave before
	// closing the channels — a send can then never hit a closed channel.
	for s.active.Load() != 0 {
		<-s.drained
	}
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
}

// run is the shard worker loop: block for one request, opportunistically
// coalesce up to batchSize-1 more that are already queued, answer the
// group on one snapshot, reply.
func (s *Server) run(sh *shard) {
	defer s.wg.Done()
	for {
		r, ok := <-sh.ch
		if !ok {
			return
		}
		sh.reqs[0] = r
		n := 1
	coalesce:
		for n < batchSize {
			select {
			case r2, ok2 := <-sh.ch:
				if !ok2 {
					break coalesce
				}
				sh.reqs[n] = r2
				n++
			default:
				break coalesce
			}
		}
		snap := s.snap.Load()
		allDist := true
		for i := 0; i < n; i++ {
			if sh.reqs[i].op != opDistance {
				allDist = false
				break
			}
		}
		if snap.batch != nil && n > 1 && allDist {
			for i := 0; i < n; i++ {
				sh.pairs[i] = [2]graph.NodeID{sh.reqs[i].u, sh.reqs[i].v}
			}
			snap.batch.DistanceBatch(sh.pairs[:n], sh.out[:n])
			for i := 0; i < n; i++ {
				sh.reqs[i].d = sh.out[i]
			}
		} else {
			for i := 0; i < n; i++ {
				serveOne(snap, sh.reqs[i])
			}
		}
		// Count before replying: once done is signaled, callers may observe
		// the query as served, and Stats() must not lag behind them.
		sh.served.Add(uint64(n))
		sh.batches.Add(1)
		for i := 0; i < n; i++ {
			sh.reqs[i].done <- struct{}{}
			sh.reqs[i] = nil
		}
	}
}

// serveOne answers a single request of any kind on one snapshot. Requests
// against capabilities the snapshot lacks degrade to ErrUnsupported —
// never a panic, and re-evaluated per snapshot so Swap can add or remove
// capabilities under live traffic.
func serveOne(snap *snapshot, r *request) {
	switch r.op {
	case opPath:
		if snap.paths == nil {
			r.err = ErrUnsupported
			return
		}
		r.path, r.err = snap.paths.AppendPath(r.path, r.u, r.v)
	case opEcc:
		if snap.ecc == nil {
			r.err = ErrUnsupported
			return
		}
		r.d, r.err = snap.ecc.Eccentricity(r.u)
	case opFarthest:
		if snap.ecc == nil {
			r.err = ErrUnsupported
			return
		}
		r.far, r.d, r.err = snap.ecc.Farthest(r.u)
	default:
		r.d = snap.idx.Distance(r.u, r.v)
	}
}

// String summarizes the server for logs.
func (s *Server) String() string {
	st := s.Stats()
	meta := s.Index().Meta()
	return fmt.Sprintf("server{%s n=%d shards=%d served=%d batches=%d}",
		meta.Kind, meta.Vertices, st.Shards, st.Served, st.Batches)
}
