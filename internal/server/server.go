// Package server is the in-process concurrent query service over an
// index.Index: client goroutines submit (u,v) pairs, the server shards
// them across worker goroutines, and each worker coalesces adjacent
// requests into groups of three to feed the interleaved merge of the
// hub-label batch path. The served index is held behind an atomic
// snapshot pointer, so a rebuilt or freshly loaded index can be swapped
// in under live traffic without pausing queries.
//
// The per-query hot path performs zero allocations in steady state:
// request envelopes (including their reply channels) are pooled, shard
// routing is a single atomic round-robin tick, and every worker reuses
// its batch buffers across groups.
//
// Two doors exist. Query blocks until served and is for trusted
// in-process callers; TryQuery never blocks on a full queue and never
// panics — it returns ErrOverloaded/ErrClosed — and, with
// Options.Admission set, consults a constant-memory fair admission
// controller (internal/flowctl) so overload is shed per-client instead
// of starving whoever queues last.
//
// Beyond scalar distances, witness-path and eccentricity queries flow
// through the same queues and the same admission door (TryPath,
// TryEccentricity, TryFarthest): a worker group may mix kinds, with the
// all-distance common case still taking the interleaved-merge batch
// path. Capabilities are resolved per snapshot, so swapping in an index
// without path support degrades those requests to ErrUnsupported rather
// than breaking the server.
//
// Snapshots are reference-counted, which is what makes serving
// view-backed (mmap-loaded) indexes safe: every use — a worker group, a
// direct QueryBatch, a capability warm — pins the snapshot it runs on,
// and an index installed as owned (Options.OwnIndex, SwapRetire) is
// released (for a view, unmapped) only when the retired snapshot's last
// pin drops. Hot reload is therefore one SwapRetire: new queries land on
// the new mapping immediately, in-flight queries finish on the old one,
// and the old container unmaps the instant the last of them drains —
// zero dropped queries, zero stop-the-world.
package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hublab/internal/faultinject"
	"hublab/internal/flowctl"
	"hublab/internal/graph"
	"hublab/internal/hotcache"
	"hublab/internal/index"
	"hublab/internal/par"
)

// ErrOverloaded reports that a request was not admitted: either its
// shard queue was full, or the admission controller shed it to protect
// the queues. Callers should back off (HTTP front ends translate it to
// 429 + Retry-After).
var ErrOverloaded = errors.New("server: overloaded")

// ErrClosed reports a request issued after (or concurrent with) Close.
var ErrClosed = errors.New("server: closed")

// ErrUnsupported reports a query kind (path, eccentricity) the currently
// served index does not implement. The capability is re-checked per
// snapshot, so a Swap to a capable index clears the condition without a
// restart.
var ErrUnsupported = errors.New("server: query kind not supported by the served index")

// ErrBackendFault reports that the backend panicked (or raised an
// injected fault) while computing this request's group. The panic was
// contained: the worker recovered, failed the in-flight group with this
// error, and resumed serving — the process never crashes and completions
// never hang. Counted in Stats.Faulted (the panic events themselves in
// Stats.Panics).
var ErrBackendFault = errors.New("server: backend fault while serving the request")

// ErrTimeout reports a request that outlived Options.QueryTimeout
// before its answer was delivered — stuck behind a stalled backend, a
// never-finishing capability warm, or a queue the workers stopped
// draining. The caller is unblocked and the abandoned envelope is
// reclaimed by whichever worker eventually touches it; timed-out
// requests are counted in Stats.Timeouts and drive the health state
// machine, never Served.
var ErrTimeout = errors.New("server: query deadline exceeded")

// maxBatch bounds the per-shard group buffers; batchSize may be
// re-tuned below it without resizing shards.
const maxBatch = 8

// batchSize is how many adjacent requests a shard coalesces into one
// DistanceBatch call. Three matches the stream count of the interleaved
// merge in hub.QueryBatch, and the value is pinned by measurement, not
// inheritance: the env-gated sweep in batchsize_sweep_test.go measures
// both the serving envelope and the bare merge across sizes 1–8 —
// groups of 1–2 fall back to the scalar merge (~3.1 µs/q on gnm10k),
// 3 fills the interleave (2.3 µs/q), and everything past 3 sits on the
// same plateau because the interleave refills its streams continuously
// regardless of group length. 3 is the smallest size on the plateau;
// deeper coalescing buys no merge throughput and only adds queueing
// delay for the requests at the back of a group. A var only so the
// sweep harness can set it; nothing else may write it.
var batchSize = 3

// Options configures a Server.
type Options struct {
	// Shards is the number of worker goroutines (and request queues).
	// 0 means the par worker bound (runtime.NumCPU(), or the par.SetWorkers
	// override — so pinning the pool pins the server too).
	Shards int
	// QueueDepth is the per-shard request buffer (default 64).
	QueueDepth int
	// Admission, when non-nil, attaches a flowctl fair admission
	// controller to the TryQuery door: clients whose traffic overflows
	// the shard queues are probabilistically shed at the door (counted in
	// Stats.Shed) instead of racing everyone else for queue slots.
	// Blocking Query calls bypass the controller.
	Admission *flowctl.Options
	// OwnIndex transfers ownership of the initial index to the server:
	// when the snapshot retires (replaced by SwapRetire, removed by Swap,
	// or at Close), its resources are released (index.Releaser) once the
	// last in-flight query drains. Required for view-backed (mmap)
	// indexes the caller will not release manually; harmless for
	// heap-owned ones, whose Release is a no-op.
	OwnIndex bool
	// QueryTimeout, when positive, bounds every non-blocking request
	// (TryQuery, TryPath, TryEccentricity, TryFarthest) end to end —
	// capability warming, queueing and service. A request that misses the
	// deadline answers ErrTimeout immediately instead of accumulating
	// blocked callers behind a stuck backend. Blocking Query calls are
	// exempt (trusted in-process callers own their own patience).
	QueryTimeout time.Duration
	// HotCache, when positive, attaches a per-shard hotcache.Cache of at
	// least this many entries (rounded up to power-of-two sets) to every
	// shard worker: distance requests probe it before the batch merge,
	// and computed answers are inserted after. The cache is invalidated
	// wholesale on Swap/SwapRetire via the snapshot generation, so a hit
	// can never survive a reload. 0 disables caching. The direct
	// QueryBatch door never consults the cache — bulk scans would evict
	// the genuinely hot pairs, and the door has no owning worker to keep
	// the single-writer arrays safe.
	HotCache int
	// Health tunes the fault-health state machine (healthy → degraded →
	// failed, driven by recent panic and timeout counts). The zero value
	// applies the package defaults; overload (Rejected/Shed) never moves
	// the health state — shedding is the designed response to load, not a
	// fault.
	Health HealthOptions
}

// Server shards query streams over worker goroutines against an
// atomically swappable index snapshot.
type Server struct {
	snap    atomic.Pointer[snapshot]
	shards  []*shard
	rr      atomic.Uint64
	pool    sync.Pool
	wg      sync.WaitGroup
	closing atomic.Bool
	// active counts submissions between acquire and release; Close waits
	// for it to drain before closing the shard channels, so a submit can
	// never race a channel close (drained carries the wake-up signal).
	active  atomic.Int64
	drained chan struct{}
	// ctl is the optional fair admission controller of the TryQuery door.
	ctl      *flowctl.Controller
	rejected atomic.Uint64
	shed     atomic.Uint64
	// Traffic through the direct QueryBatch door, which bypasses the
	// shard queues and their per-shard counters.
	direct        atomic.Uint64
	directBatches atomic.Uint64
	// gen issues snapshot generation numbers: every installed snapshot
	// (New, Swap, SwapRetire) gets the next value. Shard workers compare
	// the generation of the snapshot they pinned against their hot
	// cache's fill generation and discard stale contents before probing
	// (hotcache.ResetIfStale) — tagging contents by the pinned snapshot,
	// not by a counter read racily beside the swap, is what makes a
	// cached answer provably from the snapshot it is served against.
	gen atomic.Uint64
	// timeout is Options.QueryTimeout; zero disables deadlines.
	timeout time.Duration
	// Fault containment: panics counts recovered worker/warm panics
	// (events), faulted counts requests failed with ErrBackendFault, and
	// timeouts counts requests abandoned at their deadline. Every
	// submitted request lands in exactly one of Served / Rejected / Shed
	// / Faulted / Timeouts.
	panics   atomic.Uint64
	faulted  atomic.Uint64
	timeouts atomic.Uint64
	health   *healthTracker
}

// snapshot pairs an index with its (possibly nil) capability fast paths
// so one atomic load fetches all of them, plus the reference count that
// makes retiring a snapshot safe under live traffic.
//
// refs starts at 1 — the "installed" reference the Server itself holds —
// and every use (a worker group, a direct QueryBatch, a capability warm)
// pins it for the duration of the touch. Retiring drops the installed
// reference; whoever drops refs to zero runs the release, so a
// view-backed (mmap) index is unmapped exactly once, strictly after the
// last in-flight query on it finishes, without any stop-the-world drain.
type snapshot struct {
	idx   index.Index
	batch index.Batcher
	paths index.PathReporter
	ecc   index.EccentricityReporter
	warm  index.CapabilityWarmer
	refs  atomic.Int64
	// pathsWarm / eccWarm single-flight the capability warms, so
	// steady-state path/ecc requests skip the bounded-warm machinery (one
	// atomic load) and concurrent cold requests share one warm attempt.
	pathsWarm warmFlight
	eccWarm   warmFlight
	// gen is this snapshot's generation number (see Server.gen); shard
	// hot caches are valid for exactly one gen.
	gen uint64
	// owned records that the server must release the index's resources
	// (index.Releaser) when the snapshot retires — set by Options.OwnIndex
	// and SwapRetire, never by plain Swap, whose caller keeps the old
	// index.
	owned bool
}

// pin acquires a reference on the current snapshot, retrying against
// concurrent swaps. The CAS-from-nonzero loop closes the classic race:
// between loading the pointer and incrementing, the snapshot may retire
// and drop to zero — a dead snapshot is never resurrected, the loop
// simply reloads the (by then replaced) pointer. It returns nil only
// when the server is closed and its final snapshot already retired.
func (s *Server) pin() *snapshot {
	for {
		snap := s.snap.Load()
		n := snap.refs.Load()
		if n <= 0 {
			if s.closing.Load() && s.snap.Load() == snap {
				return nil
			}
			continue
		}
		if snap.refs.CompareAndSwap(n, n+1) {
			return snap
		}
	}
}

// unpin releases a pin; the dropper of the last reference releases the
// snapshot's resources.
func (snap *snapshot) unpin() {
	if snap.refs.Add(-1) == 0 {
		snap.release()
	}
}

// retire drops the installed reference a snapshot was created with.
func (snap *snapshot) retire() { snap.unpin() }

// release frees an owned snapshot's resources (the munmap of a
// view-backed index). It runs exactly once, on whichever goroutine
// dropped the last reference.
func (snap *snapshot) release() {
	if !snap.owned {
		return
	}
	if r, ok := snap.idx.(index.Releaser); ok {
		r.Release() // serving cannot surface this; Release errors are terminal for the mapping only
	}
}

// Request kinds flowing through the shard queues. Distance requests keep
// the interleaved-merge batch path; path and eccentricity requests share
// the same queues, workers and admission door but are answered one by
// one.
const (
	opDistance = iota
	opPath
	opEcc
	opFarthest
)

// Envelope delivery states: exactly one side — the worker delivering an
// answer, or a waiter abandoning at its deadline — wins the CAS from
// pending, so a request resolves exactly once and a timed-out envelope
// is recycled by the worker instead of racing a pooled reuse.
const (
	stPending int32 = iota
	stDelivered
	stAbandoned
)

type request struct {
	op   uint8
	u, v graph.NodeID
	d    graph.Weight
	// path carries the caller's destination buffer in and the appended
	// path out (opPath only); the envelope drops the reference before
	// returning to the pool, so the buffer's ownership stays with the
	// caller.
	path []graph.NodeID
	far  graph.NodeID
	err  error
	// state arbitrates delivery against deadline abandonment (see the
	// st* constants).
	state atomic.Int32
	done  chan struct{}
}

type shard struct {
	ch chan *request
	// Reusable per-shard batch buffers: the worker is the only goroutine
	// touching them, so groups recycle the same storage forever.
	reqs    [maxBatch]*request
	pairs   [maxBatch][2]graph.NodeID
	out     [maxBatch]graph.Weight
	served  atomic.Uint64
	batches atomic.Uint64
	// cache is the shard's private Zipf-hot result cache (nil when
	// Options.HotCache is 0). Only this shard's worker touches its
	// key/value arrays — see hotcache's package comment.
	cache *hotcache.Cache
}

// New starts a server over idx. Callers must Close it to release the
// worker goroutines.
func New(idx index.Index, opts Options) *Server {
	shards := opts.Shards
	if shards <= 0 {
		shards = par.Workers(math.MaxInt32)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	s := &Server{shards: make([]*shard, shards), drained: make(chan struct{}, 1)}
	s.timeout = opts.QueryTimeout
	s.health = newHealthTracker(opts.Health)
	if opts.Admission != nil {
		s.ctl = flowctl.New(*opts.Admission)
	}
	first := newSnapshot(idx, opts.OwnIndex)
	first.gen = s.gen.Add(1)
	s.snap.Store(first)
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i := range s.shards {
		sh := &shard{ch: make(chan *request, depth), cache: hotcache.New(opts.HotCache)}
		s.shards[i] = sh
		s.wg.Add(1)
		go s.run(sh)
	}
	return s
}

func newSnapshot(idx index.Index, owned bool) *snapshot {
	ns := &snapshot{idx: idx, owned: owned}
	ns.refs.Store(1)
	if b, ok := idx.(index.Batcher); ok {
		ns.batch = b
	}
	if p, ok := idx.(index.PathReporter); ok {
		ns.paths = p
	}
	if e, ok := idx.(index.EccentricityReporter); ok {
		ns.ecc = e
	}
	if w, ok := idx.(index.CapabilityWarmer); ok {
		ns.warm = w
	}
	return ns
}

// acquire registers a submission against the close gate. It returns
// false when the server is closing: after closing flips, every acquire
// backs out, so once active drains to zero no submission can ever touch
// the shard channels again and Close may close them safely.
func (s *Server) acquire() bool {
	if s.closing.Load() {
		return false
	}
	s.active.Add(1)
	if s.closing.Load() { // re-check: Close may have begun between the two
		s.release()
		return false
	}
	return true
}

// release undoes acquire and wakes a draining Close when the last
// in-flight submission leaves.
func (s *Server) release() {
	if s.active.Add(-1) == 0 && s.closing.Load() {
		select {
		case s.drained <- struct{}{}:
		default:
		}
	}
}

// Query answers one exact distance query, blocking until a shard worker
// serves it — even when that means waiting for a queue slot. It is safe
// for any number of concurrent callers and allocates nothing in steady
// state. Calling Query after (or concurrent with) Close is a programmer
// error and panics with a descriptive message; servers exposed to
// traffic they do not control should use TryQuery, which returns
// ErrClosed instead. If the backend faults mid-group (a contained
// panic), Query answers Infinity — the blocking door has no error
// channel; fault-aware callers should use TryQuery.
func (s *Server) Query(u, v graph.NodeID) graph.Weight {
	r, err := s.submit("", opDistance, u, v, nil, true)
	if err != nil {
		panic("server: Query called after Close (use TryQuery for a graceful ErrClosed)")
	}
	d := r.d
	s.putRequest(r)
	return d
}

// TryQuery is the non-blocking admission door for untrusted traffic: it
// never waits for a queue slot and never panics. client identifies the
// caller for fair load shedding (remote address, connection id, tenant —
// any stable string). It returns ErrOverloaded when the request was shed
// by the admission controller or found its shard queue full, ErrClosed
// after Close, ErrTimeout past Options.QueryTimeout, and ErrBackendFault
// when a contained backend panic failed the request's group; an admitted
// request still blocks until its answer is computed or the deadline
// fires. Zero allocations in steady state.
func (s *Server) TryQuery(client string, u, v graph.NodeID) (graph.Weight, error) {
	r, err := s.submit(client, opDistance, u, v, nil, false)
	if err != nil {
		return graph.Infinity, err
	}
	d, qerr := r.d, r.err
	s.putRequest(r)
	return d, qerr
}

// TryPath answers one witness-path query through the same shard queues
// and admission door as TryQuery: the path vertices (u→v inclusive) are
// appended to dst, whose ownership stays with the caller — reusing it
// keeps the door allocation-free apart from the path storage itself.
// Nothing is appended for unreachable pairs. Backends without the path
// capability answer ErrUnsupported; a hub-label index served from a
// version-1 container reports hub.ErrNoParents.
func (s *Server) TryPath(client string, u, v graph.NodeID, dst []graph.NodeID) ([]graph.NodeID, error) {
	r, err := s.submit(client, opPath, u, v, dst, false)
	if err != nil {
		return dst, err
	}
	path, qerr := r.path, r.err
	s.putRequest(r)
	return path, qerr
}

// TryEccentricity answers one eccentricity query under the admission
// door. Backends without the capability answer ErrUnsupported.
func (s *Server) TryEccentricity(client string, v graph.NodeID) (graph.Weight, error) {
	r, err := s.submit(client, opEcc, v, v, nil, false)
	if err != nil {
		return graph.Infinity, err
	}
	d, qerr := r.d, r.err
	s.putRequest(r)
	return d, qerr
}

// TryFarthest answers one farthest-vertex query (the vertex attaining
// Eccentricity(v), and that distance) under the admission door.
func (s *Server) TryFarthest(client string, v graph.NodeID) (graph.NodeID, graph.Weight, error) {
	r, err := s.submit(client, opFarthest, v, v, nil, false)
	if err != nil {
		return -1, graph.Infinity, err
	}
	far, d, qerr := r.far, r.d, r.err
	s.putRequest(r)
	return far, d, qerr
}

// putRequest scrubs an answered envelope and returns it to the pool. The
// path buffer belongs to the caller, so the reference must not survive
// into the pool.
func (s *Server) putRequest(r *request) {
	r.path = nil
	r.err = nil
	s.pool.Put(r)
}

// timerPool recycles deadline timers across requests so the QueryTimeout
// path stays allocation-free in steady state.
var timerPool = sync.Pool{New: func() any { return time.NewTimer(time.Hour) }}

func getTimer(d time.Duration) *time.Timer {
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	return t
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// submit is the common door: gate against Close, optionally consult the
// admission controller, enqueue (blocking or not), await the answer or
// the deadline. On success the caller owns the returned envelope and
// must release it with putRequest after copying the answer out; the
// envelope's err field carries per-request backend faults.
func (s *Server) submit(client string, op uint8, u, v graph.NodeID, dst []graph.NodeID, block bool) (*request, error) {
	if !s.acquire() {
		return nil, ErrClosed
	}
	defer s.release()
	if !block && s.ctl != nil && s.ctl.Shed(client) {
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	// The deadline timer (if any) is armed before capability warming:
	// QueryTimeout bounds the request end to end, and a stalled warm is
	// exactly the kind of hang it exists to shed.
	var deadline <-chan time.Time
	if !block && s.timeout > 0 {
		t := getTimer(s.timeout)
		defer putTimer(t)
		deadline = t.C
	}
	// Lazily materialized capability state (the matrix next-hop table,
	// the inverted eccentricity lists) is warmed here, on the submitting
	// side: the one-time build blocks only this caller, never a shard
	// worker with other clients' requests queued behind it. The warm is
	// panic-contained and deadline-bounded (warmFor); once a snapshot is
	// warmed the check is one atomic load.
	if op != opDistance {
		if err := s.warmFor(op, deadline); err != nil {
			return nil, err
		}
	}
	r := s.pool.Get().(*request)
	r.op, r.u, r.v, r.path = op, u, v, dst
	r.state.Store(stPending)
	sh := s.shards[s.rr.Add(1)%uint64(len(s.shards))]
	if block {
		sh.ch <- r
	} else {
		select {
		case sh.ch <- r:
		default:
			s.putRequest(r)
			s.rejected.Add(1)
			if s.ctl != nil {
				s.ctl.OnQueueFull(client)
			}
			return nil, ErrOverloaded
		}
	}
	if deadline == nil {
		<-r.done
	} else {
		select {
		case <-r.done:
		case <-deadline:
			if r.state.CompareAndSwap(stPending, stAbandoned) {
				// The envelope is now the worker's to reclaim; it must
				// not return to the pool through this path.
				s.timeouts.Add(1)
				s.health.noteTimeout()
				return nil, ErrTimeout
			}
			// Lost the race: the worker delivered concurrently with the
			// deadline — the answer arrived, consume its signal and
			// treat the request as served.
			<-r.done
		}
	}
	if !block && s.ctl != nil {
		s.ctl.OnServed(client)
	}
	return r, nil
}

// warmFlight single-flights one capability warm per snapshot. The first
// cold request starts the warm in a goroutine and every concurrent cold
// request waits on the same broadcast channel, each bounded by its own
// deadline; a failed attempt resets to cold so the next request retries
// instead of the failure poisoning the snapshot, while a completed warm
// flips the fast-path flag for good.
type warmFlight struct {
	warmed atomic.Bool
	mu     sync.Mutex
	// done broadcasts the in-flight attempt's completion; nil when no
	// attempt is running. err is the attempt's outcome, written before
	// the close so waiters read it race-free after the channel fires.
	done chan struct{}
	err  error
}

// warmFor runs the capability warm for op, bounded by the deadline and
// contained against panics. The common case — the snapshot has already
// warmed this capability — is one atomic load; cold requests join the
// snapshot's single warm attempt so their waits can be abandoned at the
// deadline (the warm itself keeps running and completes the snapshot
// for everyone behind it).
func (s *Server) warmFor(op uint8, deadline <-chan time.Time) error {
	snap := s.pin()
	if snap == nil {
		return ErrClosed
	}
	if snap.warm == nil {
		snap.unpin()
		return nil
	}
	w := &snap.eccWarm
	if op == opPath {
		w = &snap.pathsWarm
	}
	if w.warmed.Load() {
		snap.unpin()
		return nil
	}
	w.mu.Lock()
	ch := w.done
	if ch == nil {
		if w.warmed.Load() {
			w.mu.Unlock()
			snap.unpin()
			return nil
		}
		ch = make(chan struct{})
		w.done = ch
		// A second reference for the warm goroutine: the caller's pin
		// holds refs nonzero, so a plain Add cannot resurrect a retired
		// snapshot here.
		snap.refs.Add(1)
		go s.runWarm(snap, op, w, ch)
	}
	w.mu.Unlock()
	if deadline != nil {
		select {
		case <-ch:
		case <-deadline:
			snap.unpin()
			s.timeouts.Add(1)
			s.health.noteTimeout()
			return ErrTimeout
		}
	} else {
		<-ch
	}
	// Relock to read the outcome: a retry attempt may already be
	// rewriting err, and the mutex orders that rewrite against this read.
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	snap.unpin()
	if err != nil {
		s.faulted.Add(1)
	}
	return err
}

// runWarm executes one capability warm attempt, contained against
// panics. It owns one snapshot reference and the flight's broadcast
// channel.
func (s *Server) runWarm(snap *snapshot, op uint8, w *warmFlight, ch chan struct{}) {
	defer snap.unpin()
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.health.notePanic()
				err = ErrBackendFault
			}
		}()
		if ferr := faultinject.Fire(faultinject.PointServerWarm); ferr != nil {
			return ErrBackendFault
		}
		if op == opPath {
			snap.warm.WarmPaths()
		} else {
			snap.warm.WarmEccentricity()
		}
		return nil
	}()
	w.mu.Lock()
	w.err = err
	if err == nil {
		w.warmed.Store(true)
	}
	w.done = nil
	w.mu.Unlock()
	close(ch)
}

// QueryBatch answers pairs[k] into out[k] directly on the current
// snapshot, bypassing the shard queues — the batch is already a group, so
// it goes straight to the index's interleaved merge (or a scalar loop for
// backends without one). Zero allocations. It never touches the shard
// channels, so unlike Query it stays safe (and keeps answering on the
// final snapshot) during and after Close — except when that final
// snapshot was owned (Options.OwnIndex, SwapRetire) and has therefore
// been released by Close, in which case every pair answers Infinity.
func (s *Server) QueryBatch(pairs [][2]graph.NodeID, out []graph.Weight) {
	if len(pairs) == 0 {
		return
	}
	s.direct.Add(uint64(len(pairs)))
	s.directBatches.Add(1)
	snap := s.pin()
	if snap == nil {
		for i := range pairs {
			out[i] = graph.Infinity
		}
		return
	}
	defer snap.unpin()
	if snap.batch != nil {
		snap.batch.DistanceBatch(pairs, out)
		return
	}
	for i, p := range pairs {
		out[i] = snap.idx.Distance(p[0], p[1])
	}
}

// Index returns the currently served index snapshot. The reference is
// unpinned: an index installed as owned (OwnIndex, SwapRetire) may be
// released as soon as a reload retires it, so callers must not retain
// the return value across swaps — use Meta for per-request metadata.
func (s *Server) Index() index.Index { return s.snap.Load().idx }

// Meta returns the currently served index's metadata under a snapshot
// pin, so it stays safe against a concurrent retire of a view-backed
// index. After Close of an owned final snapshot it returns the zero
// Meta.
func (s *Server) Meta() index.Meta {
	snap := s.pin()
	if snap == nil {
		return index.Meta{}
	}
	defer snap.unpin()
	return snap.idx.Meta()
}

// Swap atomically replaces the served index and returns the previous one.
// In-flight groups finish on the snapshot they started with; every
// request picked up afterwards is served by next. The two indexes may
// cover different graphs — callers own that transition, and the caller
// keeps the returned index: Swap never takes ownership of next and never
// releases the old index on its own. (If the old index was installed as
// owned — OwnIndex or SwapRetire — that standing obligation still fires
// once in-flight queries drain; the returned value is then only good
// until that moment. Don't mix the two styles on the same index.)
func (s *Server) Swap(next index.Index) index.Index {
	ns := newSnapshot(next, false)
	ns.gen = s.gen.Add(1)
	old := s.snap.Swap(ns)
	idx := old.idx
	old.retire()
	return idx
}

// SwapRetire atomically replaces the served index with next, taking
// ownership of it, and retires the previous snapshot: once the last
// in-flight query on it drains, its resources are released
// (index.Releaser — for a view-backed index, the munmap). No query is
// ever dropped or served from unmapped memory: in-flight groups hold
// pins, and the release runs on whichever goroutine drops the last one.
// This is the hot-reload door (hubserve /reload, SIGHUP).
func (s *Server) SwapRetire(next index.Index) {
	ns := newSnapshot(next, true)
	ns.gen = s.gen.Add(1)
	old := s.snap.Swap(ns)
	old.retire()
}

// Stats is a point-in-time view of served traffic.
type Stats struct {
	// Shards is the worker count.
	Shards int
	// Served is the total number of requests answered.
	Served uint64
	// Batches is the number of DistanceBatch groups issued; Served /
	// Batches approximates the achieved coalescing factor (≤ 3 via the
	// shard queues; direct QueryBatch calls count as one group each).
	Batches uint64
	// Rejected counts TryQuery requests turned away because their shard
	// queue was full at arrival.
	Rejected uint64
	// Shed counts TryQuery requests dropped at the door by the fair
	// admission controller (always 0 without Options.Admission).
	Shed uint64
	// PerClientHot estimates the number of distinct client flows the
	// admission controller is currently throttling (0 without a
	// controller).
	PerClientHot int
	// Queued is the instantaneous number of admitted requests waiting in
	// the shard queues (a pressure gauge, not a counter).
	Queued int
	// Panics counts recovered backend panics (events, not requests): a
	// worker that panics mid-group recovers, fails the group with
	// ErrBackendFault, and resumes; a capability warm that panics counts
	// here too. A nonzero value means the backend misbehaved and the
	// server contained it.
	Panics uint64
	// Faulted counts requests that resolved with ErrBackendFault. One
	// panic event may fault up to batchSize requests.
	Faulted uint64
	// Timeouts counts requests abandoned at Options.QueryTimeout.
	Timeouts uint64
	// Direct and DirectBatches count queries and calls through the
	// direct QueryBatch door, which bypasses the shard queues, the
	// admission controller, and the hot cache. Direct traffic is
	// included in Served and DirectBatches in Batches, so the exact
	// accounting identity reads: Served + Rejected + Shed + Faulted +
	// Timeouts == (requests submitted through the queue doors) +
	// Direct. Subtract Direct from Served to reason about queue-door
	// traffic alone.
	Direct        uint64
	DirectBatches uint64
	// HotHits / HotMisses / HotEvicts aggregate the per-shard hot
	// result caches (all zero when Options.HotCache is 0). A hit is a
	// distance request answered without touching the index; hits are
	// counted in Served like any other answer but never in Batches,
	// so Served/Batches can exceed the coalescing factor on cache-warm
	// workloads. HotHits + HotMisses equals the number of distance
	// requests that probed a cache.
	HotHits   uint64
	HotMisses uint64
	HotEvicts uint64
	// Health is the fault-health state (healthy / degraded / failed),
	// derived from recent panic and timeout counts — never from
	// Rejected/Shed, because shedding under overload is the designed
	// behavior, not a fault. HealthReason says which threshold tripped.
	Health       HealthState
	HealthReason string
	// PerShard is the served count of each shard. Queries answered
	// through the direct QueryBatch door are counted in Served and
	// Batches but belong to no shard.
	PerShard []uint64
}

// Stats returns a snapshot of the served-traffic counters. A request's
// outcome is visible here no later than its reply: every TryQuery has
// been counted exactly once across Served / Rejected / Shed / Faulted /
// Timeouts by the time it returns, and those five buckets sum exactly
// to the submitted-request count plus Direct — queries through the
// direct QueryBatch door are Served without ever being submitted to a
// queue, and the Direct field makes that contribution explicit rather
// than leaving the identity silently violated.
func (s *Server) Stats() Stats {
	st := Stats{Shards: len(s.shards), PerShard: make([]uint64, len(s.shards))}
	for i, sh := range s.shards {
		n := sh.served.Load()
		st.PerShard[i] = n
		st.Served += n
		st.Batches += sh.batches.Load()
		st.Queued += len(sh.ch)
	}
	for _, sh := range s.shards {
		if sh.cache != nil {
			h, m, e := sh.cache.Stats()
			st.HotHits += h
			st.HotMisses += m
			st.HotEvicts += e
		}
	}
	st.Direct = s.direct.Load()
	st.DirectBatches = s.directBatches.Load()
	st.Served += st.Direct
	st.Batches += st.DirectBatches
	st.Rejected = s.rejected.Load()
	st.Shed = s.shed.Load()
	st.Panics = s.panics.Load()
	st.Faulted = s.faulted.Load()
	st.Timeouts = s.timeouts.Load()
	st.Health, st.HealthReason = s.health.state()
	if s.ctl != nil {
		st.PerClientHot = s.ctl.Stats().HotFlows
	}
	return st
}

// Health returns the current fault-health state and the reason it is
// not healthy ("ok" when it is) — the /healthz hook.
func (s *Server) Health() (HealthState, string) { return s.health.state() }

// Close stops the workers and waits for them to drain. It is safe to
// call concurrently with TryQuery (submissions that lose the race get
// ErrClosed) and with in-flight Query calls, which are answered before
// the workers exit; only the first caller performs the drain, later
// calls return immediately. Stats remains usable after Close, and so
// does QueryBatch on the final snapshot — unless that snapshot was owned
// (Options.OwnIndex, SwapRetire), in which case Close retires it too,
// releasing its resources after the workers drain so an owned mapping
// can never outlive the server.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	// Wait for every submission that passed the gate to leave before
	// closing the channels — a send can then never hit a closed channel.
	for s.active.Load() != 0 {
		<-s.drained
	}
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
	// Workers are gone and no submission can pass the gate: retiring the
	// final snapshot now releases an owned index with nothing in flight.
	// Un-owned snapshots keep their installed reference so QueryBatch
	// stays answerable forever (release would be a no-op anyway, but the
	// pin must keep succeeding).
	if snap := s.snap.Load(); snap.owned {
		snap.retire()
	}
}

// run is the shard worker loop: block for one request, opportunistically
// coalesce up to batchSize-1 more that are already queued, answer the
// group on one snapshot, reply. All computation and delivery happens
// inside serveGroup, which contains backend panics — a worker survives
// any number of faults and keeps draining its queue.
func (s *Server) run(sh *shard) {
	defer s.wg.Done()
	for {
		r, ok := <-sh.ch
		if !ok {
			return
		}
		sh.reqs[0] = r
		n := 1
	coalesce:
		for n < batchSize {
			select {
			case r2, ok2 := <-sh.ch:
				if !ok2 {
					break coalesce
				}
				sh.reqs[n] = r2
				n++
			default:
				break coalesce
			}
		}
		s.serveGroup(sh, n)
		for i := 0; i < n; i++ {
			sh.reqs[i] = nil
		}
	}
}

// serveGroup answers one coalesced group on one snapshot, probing the
// shard's hot cache (when enabled) for distance requests before paying
// for the merge and feeding computed answers back in. A panic out of
// the backend — or an injected worker fault — is recovered here: every
// undelivered request in the group fails with ErrBackendFault (counted
// in Faulted, the panic event in Panics), completions are still
// signaled so no caller ever hangs, and the worker loop resumes. The
// snapshot pin is dropped on every path, so fault containment never
// leaks a reference that would keep a retired mmap view mapped.
func (s *Server) serveGroup(sh *shard, n int) {
	// Pin the snapshot for the whole group: a concurrent SwapRetire
	// can replace the pointer at any time, but the old index is only
	// released once this pin (and every other) is dropped — the group
	// always finishes on mapped memory. pin cannot return nil here:
	// the submitters of these requests hold the close gate, so the
	// final snapshot cannot have retired yet.
	snap := s.pin()
	defer func() {
		snap.unpin()
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.health.notePanic()
			for i := 0; i < n; i++ {
				if r := sh.reqs[i]; r != nil {
					s.failRequest(r)
				}
			}
		}
	}()
	if err := faultinject.Fire(faultinject.PointServerWorker); err != nil {
		// An injected non-panic backend error fails the group the same
		// way a contained panic does, minus the panic accounting.
		for i := 0; i < n; i++ {
			s.failRequest(sh.reqs[i])
		}
		return
	}
	if sh.cache != nil {
		// Validate the cache against the snapshot this group is pinned
		// to, then answer distance hits immediately and compact the
		// misses to the front. ResetIfStale keys on the pinned
		// snapshot's generation, so a hit is by construction an answer
		// this exact snapshot once computed — a Swap racing this group
		// cannot smuggle an old index's answer past the reset.
		sh.cache.ResetIfStale(snap.gen)
		m := 0
		for i := 0; i < n; i++ {
			r := sh.reqs[i]
			sh.reqs[i] = nil
			if r.op == opDistance {
				if d, ok := sh.cache.Lookup(hotcache.Key(r.u, r.v)); ok {
					r.d = d
					s.deliver(sh, r)
					continue
				}
			}
			sh.reqs[m] = r
			m++
		}
		n = m
		if n == 0 {
			return
		}
	}
	allDist := true
	for i := 0; i < n; i++ {
		if sh.reqs[i].op != opDistance {
			allDist = false
			break
		}
	}
	if snap.batch != nil && n > 1 && allDist {
		for i := 0; i < n; i++ {
			sh.pairs[i] = [2]graph.NodeID{sh.reqs[i].u, sh.reqs[i].v}
		}
		snap.batch.DistanceBatch(sh.pairs[:n], sh.out[:n])
		for i := 0; i < n; i++ {
			sh.reqs[i].d = sh.out[i]
		}
	} else {
		for i := 0; i < n; i++ {
			serveOne(snap, sh.reqs[i])
		}
	}
	if sh.cache != nil {
		// Computed distances (including Infinity for unreachable pairs)
		// go into the cache before delivery, so an immediate repeat of
		// the same pair hits even under adversarial timing.
		for i := 0; i < n; i++ {
			if r := sh.reqs[i]; r.op == opDistance && r.err == nil {
				sh.cache.Insert(hotcache.Key(r.u, r.v), r.d)
			}
		}
	}
	// Count before replying: once done is signaled, callers may observe
	// the query as served, and Stats() must not lag behind them.
	sh.batches.Add(1)
	for i := 0; i < n; i++ {
		s.deliver(sh, sh.reqs[i])
	}
}

// deliver hands an answered request back to its waiter — unless the
// waiter abandoned it at the deadline, in which case the worker owns the
// envelope and recycles it. Exactly one of the two happens (the state
// CAS arbitrates), so a request is counted exactly once and a pooled
// envelope can never be signaled twice.
func (s *Server) deliver(sh *shard, r *request) {
	if r.state.CompareAndSwap(stPending, stDelivered) {
		sh.served.Add(1)
		r.done <- struct{}{}
		return
	}
	s.putRequest(r)
}

// failRequest resolves a request with ErrBackendFault (or recycles it if
// its waiter already timed out). The answer fields are forced to the
// unreachable shape so a pooled envelope's stale values can never leak
// into a fault reply.
func (s *Server) failRequest(r *request) {
	r.err = ErrBackendFault
	r.d = graph.Infinity
	r.far = -1
	if r.state.CompareAndSwap(stPending, stDelivered) {
		s.faulted.Add(1)
		r.done <- struct{}{}
		return
	}
	s.putRequest(r)
}

// serveOne answers a single request of any kind on one snapshot. Requests
// against capabilities the snapshot lacks degrade to ErrUnsupported —
// never a panic, and re-evaluated per snapshot so Swap can add or remove
// capabilities under live traffic.
func serveOne(snap *snapshot, r *request) {
	switch r.op {
	case opPath:
		if snap.paths == nil {
			r.err = ErrUnsupported
			return
		}
		r.path, r.err = snap.paths.AppendPath(r.path, r.u, r.v)
	case opEcc:
		if snap.ecc == nil {
			r.err = ErrUnsupported
			return
		}
		r.d, r.err = snap.ecc.Eccentricity(r.u)
	case opFarthest:
		if snap.ecc == nil {
			r.err = ErrUnsupported
			return
		}
		r.far, r.d, r.err = snap.ecc.Farthest(r.u)
	default:
		r.d = snap.idx.Distance(r.u, r.v)
	}
}

// String summarizes the server for logs.
func (s *Server) String() string {
	st := s.Stats()
	meta := s.Meta()
	return fmt.Sprintf("server{%s n=%d shards=%d served=%d batches=%d}",
		meta.Kind, meta.Vertices, st.Shards, st.Served, st.Batches)
}
