//go:build race

package server

// raceEnabled reports whether the race detector is compiled in.
// Allocation assertions are skipped under it: the race-mode sync.Pool
// deliberately drops a fraction of Puts, so pooled hot paths show
// phantom allocations there.
const raceEnabled = true
