package server

import (
	"sync"
	"testing"

	"hublab/internal/gen"
	"hublab/internal/graph"
	"hublab/internal/index"
	"hublab/internal/sssp"
)

func buildIndex(t testing.TB, n, m int, seed int64) (*graph.Graph, *index.HubLabels) {
	t.Helper()
	g, err := gen.Gnm(n, m, seed)
	if err != nil {
		t.Fatalf("Gnm: %v", err)
	}
	idx, err := index.NewHubLabels(g)
	if err != nil {
		t.Fatalf("NewHubLabels: %v", err)
	}
	return g, idx
}

// TestServerMatchesBFS pushes concurrent query streams through the server
// and checks every answer against ground-truth BFS distances.
func TestServerMatchesBFS(t *testing.T) {
	g, idx := buildIndex(t, 300, 540, 3)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 4})
	defer srv.Close()
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 600; k++ {
				u := graph.NodeID((c*131 + k*17) % 300)
				v := graph.NodeID((c*37 + k*101) % 300)
				if got := srv.Query(u, v); got != truth[u][v] {
					select {
					case errCh <- &mismatch{u, v, got, truth[u][v]}:
					default:
					}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := srv.Stats()
	if st.Served != clients*600 {
		t.Errorf("served %d requests, want %d", st.Served, clients*600)
	}
	if st.Batches == 0 || st.Batches > st.Served {
		t.Errorf("implausible batch count %d for %d served", st.Batches, st.Served)
	}
}

type mismatch struct {
	u, v      graph.NodeID
	got, want graph.Weight
}

func (m *mismatch) Error() string {
	return "server mismatch"
}

// TestServerQueryBatch checks the direct batch path against the scalar
// path on both batch-capable and scalar-only backends.
func TestServerQueryBatch(t *testing.T) {
	g, idx := buildIndex(t, 200, 360, 7)
	for _, backend := range []index.Index{idx, index.NewSearch(g)} {
		srv := New(backend, Options{Shards: 2})
		pairs := make([][2]graph.NodeID, 40)
		for i := range pairs {
			pairs[i] = [2]graph.NodeID{graph.NodeID(i * 5 % 200), graph.NodeID(i * 13 % 200)}
		}
		out := make([]graph.Weight, len(pairs))
		srv.QueryBatch(pairs, out)
		for i, p := range pairs {
			if want := backend.Distance(p[0], p[1]); out[i] != want {
				t.Fatalf("%s: batch[%d] = %d, want %d", backend.Name(), i, out[i], want)
			}
		}
		if st := srv.Stats(); st.Served != uint64(len(pairs)) || st.Batches != 1 {
			t.Fatalf("%s: batch-door stats served=%d batches=%d, want %d/1",
				backend.Name(), st.Served, st.Batches, len(pairs))
		}
		srv.Close()
	}
}

// TestServerSwapUnderTraffic rebuilds the index while clients hammer the
// server; every response must be correct under either snapshot (both
// indexes cover the same graph), and after the swap new queries must hit
// the new index.
func TestServerSwapUnderTraffic(t *testing.T) {
	g, idx := buildIndex(t, 250, 450, 9)
	truth := sssp.AllPairs(g)
	srv := New(idx, Options{Shards: 3})
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan struct{}, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				u := graph.NodeID((c*19 + k*7) % 250)
				v := graph.NodeID((c*3 + k*23) % 250)
				if got := srv.Query(u, v); got != truth[u][v] {
					select {
					case fail <- struct{}{}:
					default:
					}
					return
				}
			}
		}(c)
	}
	// Swap in freshly built replacements (and one container round-trip
	// style FromFlat wrap) while traffic flows.
	for i := 0; i < 5; i++ {
		replacement, err := index.NewHubLabels(g)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		old := srv.Swap(index.FromFlat(replacement.Flat()))
		if old == nil {
			t.Fatal("Swap returned nil previous index")
		}
	}
	close(stop)
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("query mismatch during snapshot swaps")
	default:
	}
	if srv.Index().Meta().Kind != index.KindHubLabels {
		t.Errorf("served index kind = %q", srv.Index().Meta().Kind)
	}
}

// TestServerScalarBackend runs the server over a backend without a batch
// path (bidirectional search) to exercise the scalar group branch.
func TestServerScalarBackend(t *testing.T) {
	g, _ := buildIndex(t, 120, 210, 5)
	truth := sssp.AllPairs(g)
	srv := New(index.NewSearch(g), Options{Shards: 2, QueueDepth: 4})
	defer srv.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < 150; k++ {
				u := graph.NodeID((c + k*11) % 120)
				v := graph.NodeID((c*29 + k) % 120)
				if got := srv.Query(u, v); got != truth[u][v] {
					t.Errorf("search backend (%d,%d) = %d, want %d", u, v, got, truth[u][v])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	_, idx := buildIndex(t, 50, 90, 1)
	srv := New(idx, Options{})
	srv.Close()
	srv.Close()
}

// TestServerZeroAllocQuery asserts the steady-state per-query hot path
// does not allocate.
func TestServerZeroAllocQuery(t *testing.T) {
	_, idx := buildIndex(t, 200, 360, 13)
	srv := New(idx, Options{Shards: 1})
	defer srv.Close()
	// Warm the request pool.
	for i := 0; i < 100; i++ {
		srv.Query(graph.NodeID(i%200), graph.NodeID((i*7)%200))
	}
	avg := testing.AllocsPerRun(500, func() {
		srv.Query(3, 177)
	})
	if avg > 0.05 {
		t.Errorf("Query allocates %.2f objects/op, want 0", avg)
	}
}
